#!/usr/bin/env python3
"""clang-tidy delta gate: fail only on warnings new against the baseline.

Usage:
    check_tidy.py --build-dir <dir> [--update] [--jobs N]
                  [--baseline tools/tidy_baseline.txt]

Runs clang-tidy (checks come from the repo's .clang-tidy) over every
tracked .cpp under src/ using the compile database in --build-dir (needs
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON). Warnings are counted per check and
compared with the checked-in baseline:

  - A check whose count exceeds its baseline entry fails the gate: new
    warnings are errors, pre-existing ones are tolerated.
  - Counts below baseline print a ratchet hint; run with --update to
    lower (or initially record) the baseline.

The baseline file holds "count<TAB>check-name" lines; '#' comments and
blank lines are ignored.
"""

import collections
import os
import re
import subprocess
import sys

WARNING_RE = re.compile(r"warning: .* \[([A-Za-z0-9.,_-]+)\]\s*$")


def repo_root():
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def source_files():
    out = subprocess.run(
        ["git", "ls-files", "src/**/*.cpp", "src/*.cpp"],
        cwd=repo_root(), capture_output=True, text=True, check=True)
    return [f for f in out.stdout.splitlines() if f]


def run_tidy(build_dir, files, jobs):
    """Returns {check-name: count} over all files' clang-tidy warnings."""
    counts = collections.Counter()
    # Batch to keep command lines short but startup cost amortized.
    batch = max(1, len(files) // max(jobs, 1) + 1)
    procs = []
    for i in range(0, len(files), batch):
        procs.append(subprocess.Popen(
            ["clang-tidy", "-p", build_dir, "--quiet"]
            + files[i:i + batch],
            cwd=repo_root(), stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, text=True))
    for proc in procs:
        stdout, _ = proc.communicate()
        for line in stdout.splitlines():
            m = WARNING_RE.search(line)
            if m:
                # A diagnostic may list several checks ("a,b"): count
                # it once under the first (primary) check.
                counts[m.group(1).split(",")[0]] += 1
    return counts


def load_baseline(path):
    counts = {}
    if not os.path.exists(path):
        return counts
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2 or not parts[0].isdigit():
                raise SystemExit(
                    f"error: {path}:{lineno}: expected 'count check'")
            counts[parts[1]] = int(parts[0])
    return counts


def write_baseline(path, counts):
    with open(path, "w") as f:
        f.write("# clang-tidy warning baseline: one 'count check' line "
                "per check.\n")
        f.write("# Regenerate with: "
                "python3 tools/check_tidy.py --build-dir build --update\n")
        for check in sorted(counts):
            if counts[check]:
                f.write(f"{counts[check]}\t{check}\n")


def main(argv):
    build_dir = None
    update = False
    jobs = os.cpu_count() or 2
    baseline_path = os.path.join(repo_root(), "tools", "tidy_baseline.txt")
    it = iter(argv[1:])
    for arg in it:
        if arg == "--build-dir":
            build_dir = next(it, None)
        elif arg == "--update":
            update = True
        elif arg == "--jobs":
            jobs = int(next(it, "2"))
        elif arg == "--baseline":
            baseline_path = next(it, None)
        else:
            raise SystemExit(__doc__)
    if not build_dir:
        raise SystemExit(__doc__)
    if not os.path.exists(os.path.join(build_dir,
                                       "compile_commands.json")):
        raise SystemExit(f"error: {build_dir}/compile_commands.json "
                         "missing (configure with "
                         "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)")

    files = source_files()
    print(f"clang-tidy over {len(files)} files...")
    counts = run_tidy(build_dir, files, jobs)

    if update:
        write_baseline(baseline_path, counts)
        print(f"baseline updated: {sum(counts.values())} warning(s) "
              f"across {len(counts)} check(s)")
        return 0

    baseline = load_baseline(baseline_path)
    failures = 0
    for check in sorted(set(counts) | set(baseline)):
        got = counts.get(check, 0)
        allowed = baseline.get(check, 0)
        if got > allowed:
            print(f"FAIL {check}: {got} warning(s), baseline allows "
                  f"{allowed}")
            failures += 1
        elif got < allowed:
            print(f"NOTE {check}: {got} < baseline {allowed} -- ratchet "
                  f"down with --update")
        else:
            print(f"PASS {check}: {got}")

    if failures:
        print(f"\n{failures} check(s) grew new warnings; fix them or, "
              f"for accepted debt, refresh tools/tidy_baseline.txt "
              f"with --update")
        return 1
    print(f"\nno new clang-tidy warnings "
          f"({sum(counts.values())} tolerated)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
