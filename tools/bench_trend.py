#!/usr/bin/env python3
"""Append a bench run's headline metrics to the CI perf-trend JSONL.

Usage:
    bench_trend.py <trend.jsonl> <bench-name> <bench-output> \
        --metrics a.b,c.d [--better lower] [--commit SHA]

The bench output is parsed exactly like check_bench.py does (a bare JSON
file or the ``json: {...}`` stdout line) and flattened to dotted paths.
One JSON line per requested metric is appended to the trend file:

    {"bench": ..., "metric": ..., "value": ..., "commit": ...}

``--better lower`` tags every appended point for check_bench.py --trend
(times regress upward; the default direction is higher-is-better).
check_bench.py --trend consumes the accumulated file.
"""

import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from check_bench import flatten_json, load_result  # noqa: E402


def main(argv):
    args = argv[1:]
    positional = []
    metrics = []
    better = None
    commit = None
    it = iter(args)
    for arg in it:
        if arg == "--metrics":
            metrics = [m for m in next(it, "").split(",") if m]
        elif arg == "--better":
            better = next(it, None)
        elif arg == "--commit":
            commit = next(it, None)
        else:
            positional.append(arg)
    if len(positional) != 3 or not metrics:
        raise SystemExit(__doc__)
    trend_path, bench, out_path = positional

    flat = flatten_json(load_result(out_path))
    lines = []
    for metric in metrics:
        if metric not in flat:
            raise SystemExit(
                f"error: metric '{metric}' missing from {out_path}")
        value = flat[metric]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise SystemExit(
                f"error: metric '{metric}' is not numeric: {value!r}")
        point = {"bench": bench, "metric": metric, "value": value}
        if better is not None:
            point["better"] = better
        if commit is not None:
            point["commit"] = commit
        lines.append(json.dumps(point, sort_keys=True))

    with open(trend_path, "a") as f:
        for line in lines:
            f.write(line + "\n")
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
