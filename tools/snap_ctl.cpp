/**
 * @file
 * Checkpoint control CLI for the SMCK format (src/snap/): offline
 * inspection of checkpoint files plus a self-contained run/resume
 * harness the crash-recovery CI job drives.
 *
 * Subcommands:
 *   inspect <file>       Print header, kMeta and the section table.
 *   validate <file>      Full structural + CRC validation; exit 1 on
 *                        any problem.
 *   diff <a> <b>         Section-level comparison; exit 1 when the
 *                        files differ.
 *   run [flags]          Run the deterministic torture workload with
 *                        periodic checkpoints, then dump stats/trace.
 *   resume [flags]       Restore the latest checkpoint (or --from) and
 *                        continue the interrupted run to completion;
 *                        with the same flags the outputs are
 *                        byte-identical to an uninterrupted `run`.
 *
 * Run/resume flags:
 *   --spec AxBxC  --seed N  --ops N  --lines N  --max-instructions N
 *   --threads N  --quantum N          phased engine shape
 *   --interval N  --dir D  --keep N   checkpoint cadence/retention
 *   --stats-json F  --trace F         deterministic output files
 *   --kill-at CYCLE                   SIGKILL this process at the first
 *                                     quantum barrier >= CYCLE
 *   --watchdog-stall N --watchdog-action report|panic|recover
 *   --wedge-node N --wedge-after K    deterministically hang node N at
 *                                     its K-th barrier (watchdog prey)
 *   --from FILE                       resume source (default: newest
 *                                     checkpoint in --dir)
 */

#include <cerrno>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "check/torture.hpp"
#include "platform/prototype.hpp"
#include "sim/log.hpp"
#include "snap/snapshot.hpp"

using namespace smappic;

namespace
{

struct Options
{
    std::string command;
    std::vector<std::string> files;

    std::string spec = "2x1x2";
    std::uint64_t seed = 1;
    std::uint32_t ops = 96;
    std::uint32_t lines = 4;
    std::uint64_t maxInstructions = 2'000'000;
    std::uint32_t threads = 1;
    Cycles quantum = 63;
    Cycles interval = 20'000;
    std::string dir = "checkpoints";
    std::uint32_t keep = 2;
    std::string statsJson;
    std::string tracePath;
    Cycles killAt = 0;
    Cycles watchdogStall = 0;
    sim::WatchdogAction watchdogAction = sim::WatchdogAction::kRecover;
    bool wedge = false;
    std::uint32_t wedgeNode = 0;
    std::uint64_t wedgeAfter = 0;
    std::string from;
};

int
usage()
{
    std::fprintf(
        stderr,
        "usage: snap_ctl inspect <file> | validate <file> | "
        "diff <a> <b> |\n"
        "       snap_ctl run|resume [--spec AxBxC] [--seed N] [--ops N] "
        "[--lines N]\n"
        "           [--max-instructions N] [--threads N] [--quantum N]\n"
        "           [--interval N] [--dir D] [--keep N] "
        "[--stats-json F] [--trace F]\n"
        "           [--kill-at CYCLE] [--watchdog-stall N] "
        "[--watchdog-action report|panic|recover]\n"
        "           [--wedge-node N] [--wedge-after K] [--from FILE]\n");
    return 2;
}

std::uint64_t
parseU64(const char *s)
{
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "bad numeric value '%s'\n", s);
        std::exit(usage());
    }
    return v;
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    if (argc < 2)
        return false;
    opt.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                std::exit(usage());
            }
            return argv[++i];
        };
        if (a == "--spec") opt.spec = next();
        else if (a == "--seed") opt.seed = parseU64(next());
        else if (a == "--ops")
            opt.ops = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--lines")
            opt.lines = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--max-instructions")
            opt.maxInstructions = parseU64(next());
        else if (a == "--threads")
            opt.threads = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--quantum") opt.quantum = parseU64(next());
        else if (a == "--interval") opt.interval = parseU64(next());
        else if (a == "--dir") opt.dir = next();
        else if (a == "--keep")
            opt.keep = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--stats-json") opt.statsJson = next();
        else if (a == "--trace") opt.tracePath = next();
        else if (a == "--kill-at") opt.killAt = parseU64(next());
        else if (a == "--watchdog-stall")
            opt.watchdogStall = parseU64(next());
        else if (a == "--watchdog-action") {
            std::string v = next();
            if (v == "report")
                opt.watchdogAction = sim::WatchdogAction::kReport;
            else if (v == "panic")
                opt.watchdogAction = sim::WatchdogAction::kPanic;
            else if (v == "recover")
                opt.watchdogAction = sim::WatchdogAction::kRecover;
            else {
                std::fprintf(stderr, "unknown watchdog action '%s'\n",
                             v.c_str());
                return false;
            }
        } else if (a == "--wedge-node") {
            opt.wedge = true;
            opt.wedgeNode = static_cast<std::uint32_t>(parseU64(next()));
        } else if (a == "--wedge-after")
            opt.wedgeAfter = parseU64(next());
        else if (a == "--from") opt.from = next();
        else if (!a.empty() && a[0] != '-')
            opt.files.push_back(a);
        else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            return false;
        }
    }
    return true;
}

int
cmdInspect(const std::string &path)
{
    snap::SnapshotInfo info = snap::inspect(path);
    std::printf("checkpoint: %s\n", path.c_str());
    std::printf("  format v%u, config hash %016llx\n", info.version,
                static_cast<unsigned long long>(info.configHash));
    std::printf("  prototype %s, seed %llu, %u nodes x %u tiles\n",
                info.configName.c_str(),
                static_cast<unsigned long long>(info.seed), info.nodes,
                info.tilesPerNode);
    std::printf("  cycle %llu, %llu instructions committed\n",
                static_cast<unsigned long long>(info.cycle),
                static_cast<unsigned long long>(info.instret));
    std::printf("  %zu sections:\n", info.sections.size());
    for (const auto &s : info.sections) {
        std::printf("    tag %2u  %8llu bytes  crc %08x\n", s.tag,
                    static_cast<unsigned long long>(s.size), s.crc);
    }
    return 0;
}

int
cmdValidate(const std::string &path)
{
    std::string error;
    if (!snap::validate(path, &error)) {
        std::fprintf(stderr, "invalid: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    std::printf("valid: %s\n", path.c_str());
    return 0;
}

int
cmdDiff(const std::string &a, const std::string &b)
{
    std::vector<std::string> lines = snap::diff(a, b);
    for (const std::string &l : lines)
        std::printf("%s\n", l.c_str());
    if (lines.empty()) {
        std::printf("checkpoints are equivalent\n");
        return 0;
    }
    return 1;
}

/** Deterministic stats dump: counters exactly, summaries via their raw
 *  accumulators with full round-trip precision. Byte-identical output
 *  is the whole point — the recovery CI job compares with cmp. */
void
dumpStatsJson(const sim::StatRegistry &stats, const std::string &path)
{
    std::ofstream os(path);
    fatalIf(!os, strfmt("cannot write '%s'", path.c_str()));
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : stats.counters()) {
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": " << c.value();
        first = false;
    }
    os << "\n  },\n  \"summaries\": {";
    first = true;
    char buf[64];
    for (const auto &[name, s] : stats.summaries()) {
        std::snprintf(buf, sizeof buf, "%.17g", s.sum());
        os << (first ? "" : ",") << "\n    \"" << name
           << "\": {\"count\": " << s.count() << ", \"sum\": " << buf
           << "}";
        first = false;
    }
    os << "\n  }\n}\n";
    fatalIf(!os.good(), strfmt("write to '%s' failed", path.c_str()));
}

platform::PrototypeConfig
buildConfig(const Options &opt)
{
    platform::PrototypeConfig cfg =
        platform::PrototypeConfig::parse(opt.spec);
    cfg.seed = opt.seed;
    cfg.parallel.threads = opt.threads;
    cfg.parallel.quantum = opt.quantum;
    cfg.snapshot.interval = opt.interval;
    cfg.snapshot.dir = opt.dir;
    cfg.snapshot.keep = opt.keep;
    cfg.watchdog.stallCycles = opt.watchdogStall;
    cfg.watchdog.action = opt.watchdogAction;
    if (!opt.tracePath.empty()) {
        cfg.trace.enabled = true;
        cfg.trace.path = opt.tracePath;
    }
    if (opt.wedge) {
        sim::FaultRule rule;
        rule.site = strfmt("node.wedge.node%u", opt.wedgeNode);
        rule.kind = sim::FaultKind::kDrop;
        rule.probability = 1.0;
        rule.firstEvent = opt.wedgeAfter;
        cfg.faultPlan.seed = opt.seed;
        cfg.faultPlan.add(rule);
    }
    return cfg;
}

int
cmdRun(const Options &opt, bool resume)
{
    platform::PrototypeConfig cfg = buildConfig(opt);
    platform::Prototype proto(cfg);

    // The workload is a pure function of (seed, ops, lines, harts):
    // run and resume regenerate the identical program.
    check::TortureConfig tcfg;
    tcfg.spec = opt.spec;
    tcfg.seed = opt.seed;
    tcfg.opsPerCore = opt.ops;
    tcfg.sharedLines = opt.lines;
    check::TortureProgram gen = check::generateTorture(tcfg);
    proto.loadSource(gen.source);

    if (resume) {
        std::string from = opt.from.empty()
                               ? snap::latestCheckpoint(opt.dir)
                               : opt.from;
        if (from.empty()) {
            std::fprintf(stderr, "resume: no checkpoint in '%s'\n",
                         opt.dir.c_str());
            return 1;
        }
        std::printf("resuming from %s\n", from.c_str());
        proto.restore(from);
    }

    if (opt.killAt > 0) {
        proto.setBarrierProbe([&](Cycles boundary) {
            // SIGKILL, not exit(): the run must die without destructors,
            // flushes or any other graceful-shutdown help.
            if (boundary >= opt.killAt)
                std::raise(SIGKILL);
        });
    }

    std::vector<GlobalTileId> gids;
    for (std::uint32_t c = 0; c < proto.coreCount(); ++c)
        gids.push_back(c);
    proto.runCores(gids, opt.maxInstructions);

    std::printf(
        "run complete: cycle %llu, %llu checkpoints, %llu recoveries\n",
        static_cast<unsigned long long>(proto.eventQueue().now()),
        static_cast<unsigned long long>(
            proto.stats().counters().count("snap.checkpoints")
                ? proto.stats().counter("snap.checkpoints").value()
                : 0),
        static_cast<unsigned long long>(
            proto.stats().counters().count("watchdog.recoveries")
                ? proto.stats().counter("watchdog.recoveries").value()
                : 0));

    if (!opt.statsJson.empty())
        dumpStatsJson(proto.stats(), opt.statsJson);
    if (!opt.tracePath.empty())
        proto.writeTrace(opt.tracePath);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseOptions(argc, argv, opt))
        return usage();
    try {
        if (opt.command == "inspect" && opt.files.size() == 1)
            return cmdInspect(opt.files[0]);
        if (opt.command == "validate" && opt.files.size() == 1)
            return cmdValidate(opt.files[0]);
        if (opt.command == "diff" && opt.files.size() == 2)
            return cmdDiff(opt.files[0], opt.files[1]);
        if (opt.command == "run" && opt.files.empty())
            return cmdRun(opt, false);
        if (opt.command == "resume" && opt.files.empty())
            return cmdRun(opt, true);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    } catch (const PanicError &e) {
        std::fprintf(stderr, "panic: %s\n", e.what());
        return 1;
    }
    return usage();
}
