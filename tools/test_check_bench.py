#!/usr/bin/env python3
"""Unit tests for check_bench.py (stdlib unittest; run directly from CI).

Covers the baseline checker -- including the zero-baseline case, where
the tolerance must act as an absolute bound instead of degenerating to an
exact match -- and the --trend rolling-median regression gate, including
the headline case of a synthetic 15% regression against a stable history.
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench  # noqa: E402


def run_baseline(baseline, result):
    with redirect_stdout(io.StringIO()):
        return check_bench.check_baseline(baseline, result)


def run_trend(points, **kwargs):
    with redirect_stdout(io.StringIO()):
        return check_bench.check_trend(points, **kwargs)


class BaselineTest(unittest.TestCase):
    def test_relative_tolerance_passes_and_fails(self):
        baseline = {"cycles": {"value": 100, "tol": 0.10}}
        self.assertEqual(run_baseline(baseline, {"cycles": 105}), 0)
        self.assertEqual(run_baseline(baseline, {"cycles": 120}), 1)

    def test_zero_baseline_uses_absolute_tolerance(self):
        # The regression this guards: tol * |0| == 0 used to make any
        # non-zero result fail even when a tolerance was given.
        baseline = {"drift": {"value": 0, "tol": 0.1}}
        self.assertEqual(run_baseline(baseline, {"drift": 0}), 0)
        self.assertEqual(run_baseline(baseline, {"drift": 0.05}), 0)
        self.assertEqual(run_baseline(baseline, {"drift": -0.05}), 0)
        self.assertEqual(run_baseline(baseline, {"drift": 0.2}), 1)

    def test_zero_baseline_without_tolerance_is_exact(self):
        baseline = {"drift": {"value": 0}}
        self.assertEqual(run_baseline(baseline, {"drift": 0}), 0)
        self.assertEqual(run_baseline(baseline, {"drift": 0.01}), 1)

    def test_min_floor_and_hw_skip(self):
        baseline = {"speedup": {"min": 1.5, "min_hw": 4}}
        self.assertEqual(
            run_baseline(baseline, {"speedup": 1.7, "hw_concurrency": 8}),
            0)
        self.assertEqual(
            run_baseline(baseline, {"speedup": 1.2, "hw_concurrency": 8}),
            1)
        # Starved host: reported but not enforced.
        self.assertEqual(
            run_baseline(baseline, {"speedup": 1.2, "hw_concurrency": 2}),
            0)

    def test_bools_and_missing_metrics(self):
        baseline = {"ok": {"value": True}, "gone": {"value": 1}}
        self.assertEqual(
            run_baseline(baseline, {"ok": True, "gone": 1}), 0)
        self.assertEqual(run_baseline(baseline, {"ok": False, "gone": 1}),
                         1)
        self.assertEqual(run_baseline(baseline, {"ok": True}), 1)

    def test_nested_paths_flatten(self):
        baseline = {"runs.1.cycles": {"value": 7}}
        self.assertEqual(
            run_baseline(baseline, {"runs": [{"cycles": 3},
                                             {"cycles": 7}]}), 0)

    def test_json_line_extraction(self):
        with tempfile.NamedTemporaryFile("w", suffix=".out",
                                         delete=False) as f:
            f.write("noise\njson: {\"x\": 3}\nmore noise\n")
            path = f.name
        try:
            self.assertEqual(check_bench.load_result(path), {"x": 3})
        finally:
            os.unlink(path)


def trend_points(values, bench="b", metric="m", **extra):
    return [dict(bench=bench, metric=metric, value=v, **extra)
            for v in values]


class TrendTest(unittest.TestCase):
    def test_stable_series_passes(self):
        pts = trend_points([10.0, 10.2, 9.9, 10.1, 10.0, 10.05])
        self.assertEqual(run_trend(pts), 0)

    def test_fifteen_percent_regression_fails(self):
        # The acceptance case: a synthetic 15% drop against a stable
        # rolling median must trip the 10% gate.
        pts = trend_points([10.0, 10.1, 9.9, 10.0, 10.0, 8.5])
        self.assertEqual(run_trend(pts), 1)

    def test_regression_within_threshold_passes(self):
        pts = trend_points([10.0, 10.0, 10.0, 10.0, 10.0, 9.5])
        self.assertEqual(run_trend(pts), 0)

    def test_no_history_passes(self):
        self.assertEqual(run_trend(trend_points([10.0])), 0)
        self.assertEqual(run_trend([]), 0)

    def test_short_history_reports_without_enforcing(self):
        # 1 and 2 preceding samples: a 50% regression is printed but
        # never gates -- the "median" of so few points is one noisy run.
        self.assertEqual(run_trend(trend_points([10.0, 5.0])), 0)
        self.assertEqual(run_trend(trend_points([10.0, 10.0, 5.0])), 0)

    def test_min_history_boundary_enforces(self):
        # Exactly min_history (default 3) preceding samples: the gate
        # turns on, so the same regression now fails ...
        pts = trend_points([10.0, 10.0, 10.0, 5.0])
        self.assertEqual(run_trend(pts), 1)
        # ... and a healthy latest point still passes.
        good = trend_points([10.0, 10.0, 10.0, 10.0])
        self.assertEqual(run_trend(good), 0)

    def test_min_history_override(self):
        # --min-history 1 re-enables enforcement on a single sample;
        # raising it above the history length disables the gate.
        self.assertEqual(
            run_trend(trend_points([10.0, 5.0]), min_history=1), 1)
        pts = trend_points([10.0, 10.0, 10.0, 5.0])
        self.assertEqual(run_trend(pts, min_history=4), 0)

    def test_short_history_lower_is_better(self):
        # The report-only degradation applies to both directions.
        pts = trend_points([100.0, 100.0, 150.0], better="lower")
        self.assertEqual(run_trend(pts), 0)

    def test_window_limits_history(self):
        # Old slow points must age out of the 5-point window: the median
        # is taken over the recent fast points, so the final slow point
        # is a regression even though it matches ancient history.
        pts = trend_points([5.0, 5.0, 10.0, 10.0, 10.0, 10.0, 10.0, 5.0])
        self.assertEqual(run_trend(pts, window=5), 1)

    def test_lower_is_better_direction(self):
        good = trend_points([100.0, 101.0, 99.0, 100.0, 95.0],
                            better="lower")
        self.assertEqual(run_trend(good), 0)
        bad = trend_points([100.0, 101.0, 99.0, 100.0, 120.0],
                           better="lower")
        self.assertEqual(run_trend(bad), 1)

    def test_independent_series_are_separate(self):
        pts = (trend_points([10.0, 10.0, 10.0, 8.0], metric="a") +
               trend_points([7.0, 7.0, 7.0, 7.1], metric="b"))
        self.assertEqual(run_trend(pts), 1)

    def test_trend_file_round_trip(self):
        pts = trend_points([10.0, 10.0, 10.0, 8.0], commit="abc")
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as f:
            for p in pts:
                f.write(json.dumps(p) + "\n")
            path = f.name
        try:
            loaded = check_bench.load_trend(path)
            self.assertEqual(loaded, pts)
            self.assertEqual(run_trend(loaded), 1)
        finally:
            os.unlink(path)

    def test_malformed_lines_are_rejected(self):
        with tempfile.NamedTemporaryFile("w", suffix=".jsonl",
                                         delete=False) as f:
            f.write("{\"bench\": \"b\", \"metric\": \"m\"}\n")
            path = f.name
        try:
            with self.assertRaises(SystemExit):
                check_bench.load_trend(path)
        finally:
            os.unlink(path)


if __name__ == "__main__":
    unittest.main()
