/**
 * @file
 * CLI front end for the correctness harness (src/check/): runs the
 * standard litmus suite or the memory torture generator on a real
 * prototype and prints a machine-greppable report. The CI litmus job
 * runs fixed seeds on every PR; the nightly job sweeps random seeds and
 * uploads any failing repro line as an artifact.
 *
 * Usage:
 *   litmus_run --litmus [--spec AxBxC] [--seed N] [--iters N]
 *              [--threads N --quantum N]
 *   litmus_run --torture [--spec AxBxC] [--seed N] [--ops N]
 *              [--lines N] [--threads N --quantum N] [--faulty]
 *              [--minimize]
 *   litmus_run --torture-sweep N   (N random seeds; stops on failure)
 *
 * Exit code 0 = everything passed; 1 = a forbidden outcome, golden
 * mismatch or checker violation (the repro command is printed).
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/litmus.hpp"
#include "check/torture.hpp"

using namespace smappic;

namespace
{

void
printUsage()
{
    std::fprintf(stderr,
                 "usage: litmus_run "
                 "--litmus|--torture|--torture-sweep N "
                 "[--spec AxBxC] [--seed N] [--iters N] [--ops N]"
                 " [--lines N] [--threads N] [--quantum N] "
                 "[--faulty] [--minimize] [--no-data-fastpath] "
                 "[--no-idle-skip]\n");
}

struct Options
{
    bool litmus = false;
    bool torture = false;
    std::uint64_t sweep = 0;
    std::string spec = "2x1x2";
    std::uint64_t seed = 1;
    std::uint32_t iters = 8;
    std::uint32_t ops = 64;
    std::uint32_t lines = 4;
    std::uint32_t threads = 0;
    Cycles quantum = 0;
    bool faulty = false;
    bool minimize = false;
    bool dataFastPath = true;
    bool idleSkip = true;
};

/** Strict numeric parse: the whole operand must be a number, and it
 *  must fit — "12x", "" or an overflowing literal are usage errors, not
 *  silently-misread zeros. */
std::uint64_t
parseU64(const char *s)
{
    char *end = nullptr;
    errno = 0;
    std::uint64_t v = std::strtoull(s, &end, 0);
    if (end == s || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "bad numeric value '%s'\n", s);
        printUsage();
        std::exit(2);
    }
    return v;
}

int
runLitmusSuite(const Options &opt)
{
    check::LitmusConfig cfg;
    cfg.spec = opt.spec;
    cfg.seed = opt.seed;
    cfg.iterations = opt.iters;
    cfg.dataFastPath = opt.dataFastPath;
    cfg.idleSkip = opt.idleSkip;
    if (opt.threads > 0) {
        cfg.parallel.threads = opt.threads;
        cfg.parallel.quantum = opt.quantum ? opt.quantum : 63;
    }

    int failures = 0;
    for (const check::LitmusTest &t : check::standardLitmusSuite()) {
        check::LitmusResult r = check::runLitmus(t, cfg);
        std::printf("litmus %-10s %s  outcomes: %s  violations: %llu\n",
                    t.name.c_str(), r.passed ? "PASS" : "FAIL",
                    r.histogram().c_str(),
                    static_cast<unsigned long long>(r.checkerViolations));
        if (!r.passed) {
            ++failures;
            std::printf("repro: litmus_run --litmus --spec %s --seed "
                        "%llu --iters %u%s\n",
                        opt.spec.c_str(),
                        static_cast<unsigned long long>(opt.seed),
                        opt.iters,
                        opt.threads
                            ? (" --threads " + std::to_string(opt.threads))
                                  .c_str()
                            : "");
        }
    }
    return failures ? 1 : 0;
}

check::TortureConfig
tortureConfig(const Options &opt, std::uint64_t seed)
{
    check::TortureConfig cfg;
    cfg.spec = opt.spec;
    cfg.seed = seed;
    cfg.opsPerCore = opt.ops;
    cfg.sharedLines = opt.lines;
    if (opt.threads > 0) {
        cfg.parallel.threads = opt.threads;
        cfg.parallel.quantum = opt.quantum ? opt.quantum : 63;
    }
    if (opt.faulty) {
        cfg.faultPlan.seed = seed ^ 0xfau;
        cfg.faultPlan.drop("bridge.tx", 0.02);
        cfg.faultPlan.corrupt("bridge.tx", 0.02);
        cfg.reliability.enabled = true;
    }
    return cfg;
}

void
printReport(const check::TortureReport &rep)
{
    std::printf("torture seed %llu ops %u lines %u: %s  violations: "
                "%llu  mismatches: %zu\n",
                static_cast<unsigned long long>(rep.seed), rep.opsPerCore,
                rep.sharedLines, rep.passed ? "PASS" : "FAIL",
                static_cast<unsigned long long>(rep.checkerViolations),
                rep.mismatches.size());
    for (const std::string &m : rep.mismatches)
        std::printf("  mismatch: %s\n", m.c_str());
    if (!rep.passed)
        std::printf("repro: %s\n", rep.repro.c_str());
}

int
runTortureOnce(const Options &opt)
{
    check::TortureConfig cfg = tortureConfig(opt, opt.seed);
    check::TortureReport rep = opt.minimize ? check::runAndMinimize(cfg)
                                            : check::runTorture(cfg);
    printReport(rep);
    if (opt.minimize && rep.shrinkSteps)
        std::printf("minimized in %u steps\n", rep.shrinkSteps);
    return rep.passed ? 0 : 1;
}

int
runTortureSweep(const Options &opt)
{
    for (std::uint64_t i = 0; i < opt.sweep; ++i) {
        check::TortureConfig cfg = tortureConfig(opt, opt.seed + i);
        check::TortureReport rep = check::runTorture(cfg);
        printReport(rep);
        if (!rep.passed) {
            // Minimize the failing seed before reporting it.
            check::TortureReport min = check::runAndMinimize(cfg);
            std::printf("minimized repro: %s\n", min.repro.c_str());
            return 1;
        }
    }
    std::printf("torture sweep: %llu seeds passed\n",
                static_cast<unsigned long long>(opt.sweep));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", a.c_str());
                printUsage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--litmus") opt.litmus = true;
        else if (a == "--torture") opt.torture = true;
        else if (a == "--torture-sweep") opt.sweep = parseU64(next());
        else if (a == "--spec") opt.spec = next();
        else if (a == "--seed") opt.seed = parseU64(next());
        else if (a == "--iters")
            opt.iters = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--ops")
            opt.ops = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--lines")
            opt.lines = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--threads")
            opt.threads = static_cast<std::uint32_t>(parseU64(next()));
        else if (a == "--quantum") opt.quantum = parseU64(next());
        else if (a == "--faulty") opt.faulty = true;
        else if (a == "--minimize") opt.minimize = true;
        else if (a == "--no-data-fastpath") opt.dataFastPath = false;
        else if (a == "--no-idle-skip") opt.idleSkip = false;
        else {
            std::fprintf(stderr, "unknown option %s\n", a.c_str());
            printUsage();
            return 2;
        }
    }

    try {
        int rc = 0;
        if (opt.litmus)
            rc |= runLitmusSuite(opt);
        if (opt.torture)
            rc |= runTortureOnce(opt);
        if (opt.sweep)
            rc |= runTortureSweep(opt);
        if (!opt.litmus && !opt.torture && !opt.sweep) {
            std::fprintf(stderr, "nothing to do: pass --litmus, "
                                 "--torture or --torture-sweep N\n");
            return 2;
        }
        return rc;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "litmus_run: %s\n", e.what());
        return 1;
    }
}
