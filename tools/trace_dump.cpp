/**
 * @file
 * Trace inspection CLI for the binary traces written by
 * Prototype::writeTrace() (see obs/trace_io.hpp).
 *
 * Default action prints the file header and a per-kind latency breakdown
 * (count, mean, p50, p99 over event durations). Options:
 *
 *   --check            Validate structure (magic/version/record integrity,
 *                      kind/component consistency, node bounds) and print
 *                      a one-line summary; exit 1 on any violation.
 *   --json <out>       Export the (filtered) events as Chrome trace_event
 *                      JSON, loadable in chrome://tracing or Perfetto.
 *   --node <N>         Keep only events originating on node N.
 *   --component <LIST> Comma list of cache,noc,pcie,bridge,core.
 *   --window <A:B>     Keep only events in the half-open window
 *                      [A, B): start inclusive, end exclusive, so
 *                      adjacent windows <A:B> <B:C> tile a trace with
 *                      no overlap. An event at exactly cycle B is
 *                      dropped; A >= B selects nothing.
 *
 * Usage: trace_dump <trace.bin> [options]
 */

#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "sim/log.hpp"
#include "sim/stats.hpp"

using namespace smappic;

namespace
{

struct Options
{
    std::string input;
    std::string jsonOut;
    bool check = false;
    bool filterNode = false;
    std::uint16_t node = 0;
    bool filterComponents = false;
    std::uint32_t componentMask = 0;
    bool filterWindow = false;
    Cycles windowFrom = 0;
    Cycles windowTo = 0;
};

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s <trace.bin> [--check] [--json <out>] "
                 "[--node <N>] [--component <LIST>] [--window <A:B>]\n"
                 "  --window keeps events with A <= cycle < B "
                 "(half-open: A inclusive,\n"
                 "  B exclusive, so <A:B> <B:C> tile without overlap)\n",
                 argv0);
    return 2;
}

/** Strict numeric parse: rejects empty, trailing garbage and overflow
 *  instead of silently reading them as 0. */
bool
parseU64Strict(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "bad numeric value '%s'\n", s);
        return false;
    }
    return true;
}

bool
parseComponentList(const std::string &list, std::uint32_t &mask)
{
    mask = 0;
    std::size_t at = 0;
    while (at <= list.size()) {
        std::size_t comma = list.find(',', at);
        if (comma == std::string::npos)
            comma = list.size();
        std::string name = list.substr(at, comma - at);
        bool found = false;
        for (std::uint32_t c = 0; c < obs::kNumComponents; ++c) {
            auto comp = static_cast<obs::Component>(c);
            if (name == obs::componentName(comp)) {
                mask |= obs::componentBit(comp);
                found = true;
            }
        }
        if (!found) {
            std::fprintf(stderr, "unknown component '%s'\n", name.c_str());
            return false;
        }
        at = comma + 1;
    }
    return mask != 0;
}

bool
parseOptions(int argc, char **argv, Options &opt)
{
    auto takesValue = [](const std::string &a) {
        return a == "--json" || a == "--node" || a == "--component" ||
               a == "--window";
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (takesValue(arg) && i + 1 >= argc) {
            std::fprintf(stderr, "%s needs a value\n", arg.c_str());
            return false;
        }
        if (arg == "--check") {
            opt.check = true;
        } else if (arg == "--json") {
            opt.jsonOut = argv[++i];
        } else if (arg == "--node") {
            std::uint64_t node = 0;
            if (!parseU64Strict(argv[++i], node) || node > 0xffff) {
                std::fprintf(stderr, "--node wants a node index\n");
                return false;
            }
            opt.filterNode = true;
            opt.node = static_cast<std::uint16_t>(node);
        } else if (arg == "--component") {
            opt.filterComponents = true;
            if (!parseComponentList(argv[++i], opt.componentMask))
                return false;
        } else if (arg == "--window") {
            std::string w = argv[++i];
            std::size_t colon = w.find(':');
            if (colon == std::string::npos ||
                !parseU64Strict(w.substr(0, colon).c_str(),
                                opt.windowFrom) ||
                !parseU64Strict(w.c_str() + colon + 1, opt.windowTo)) {
                std::fprintf(stderr, "--window wants <from>:<to> "
                                     "(half-open: from <= cycle < to)\n");
                return false;
            }
            opt.filterWindow = true;
        } else if (!arg.empty() && arg[0] != '-' && opt.input.empty()) {
            opt.input = arg;
        } else {
            std::fprintf(stderr, "bad argument '%s'\n", arg.c_str());
            return false;
        }
    }
    if (opt.input.empty()) {
        std::fprintf(stderr, "missing <trace.bin> operand\n");
        return false;
    }
    return true;
}

bool
keep(const Options &opt, const obs::TraceEvent &ev)
{
    if (opt.filterNode && ev.node != opt.node)
        return false;
    if (opt.filterComponents &&
        (opt.componentMask & (1u << ev.component)) == 0)
        return false;
    if (opt.filterWindow &&
        !obs::cycleInWindow(ev.cycle, opt.windowFrom, opt.windowTo))
        return false;
    return true;
}

/** Structural validation behind --check. Returns the number of errors. */
std::uint64_t
check(const obs::TraceData &data)
{
    std::uint64_t errors = 0;
    std::uint64_t held = 0;
    for (std::uint64_t h : data.perNodeHeld)
        held += h;
    if (held != data.events.size()) {
        std::fprintf(stderr,
                     "check: header holds %" PRIu64
                     " events but file carries %zu\n",
                     held, data.events.size());
        ++errors;
    }
    for (std::size_t i = 0; i < data.events.size(); ++i) {
        const obs::TraceEvent &ev = data.events[i];
        if (ev.kind >= obs::kNumEventKinds) {
            std::fprintf(stderr, "check: event %zu has bad kind %u\n", i,
                         ev.kind);
            ++errors;
            continue;
        }
        auto kind = static_cast<obs::EventKind>(ev.kind);
        auto comp = static_cast<std::uint8_t>(obs::kindComponent(kind));
        if (ev.component != comp) {
            std::fprintf(stderr,
                         "check: event %zu kind %s carries component %u, "
                         "expected %u\n",
                         i, obs::kindName(kind), ev.component, comp);
            ++errors;
        }
        // PCIe events are tagged with the source FPGA, which is always a
        // valid node index (fpgas <= nodes in every AxBxC config).
        if (ev.node >= data.nodes) {
            std::fprintf(stderr, "check: event %zu has node %u of %u\n",
                         i, ev.node, data.nodes);
            ++errors;
        }
        if (ev.pad != 0) {
            std::fprintf(stderr, "check: event %zu has nonzero pad\n", i);
            ++errors;
        }
    }
    return errors;
}

void
printBreakdown(const std::vector<obs::TraceEvent> &events)
{
    // One histogram per kind, width scaled to the kind's observed max so
    // p50/p99 stay meaningful for both 1-cycle hops and 10k-cycle misses.
    std::uint32_t maxDur[obs::kNumEventKinds] = {};
    std::uint64_t counts[obs::kNumEventKinds] = {};
    for (const obs::TraceEvent &ev : events) {
        counts[ev.kind] += 1;
        if (ev.duration > maxDur[ev.kind])
            maxDur[ev.kind] = ev.duration;
    }
    std::vector<sim::Histogram> hists;
    constexpr std::size_t kBuckets = 128;
    for (std::uint32_t k = 0; k < obs::kNumEventKinds; ++k) {
        double width = maxDur[k] / static_cast<double>(kBuckets) + 1.0;
        hists.emplace_back(kBuckets, width);
    }
    for (const obs::TraceEvent &ev : events)
        hists[ev.kind].sample(ev.duration);

    std::printf("%-12s %-12s %10s %10s %8s %8s\n", "component", "kind",
                "count", "mean", "p50", "p99");
    for (std::uint32_t k = 0; k < obs::kNumEventKinds; ++k) {
        if (counts[k] == 0)
            continue;
        auto kind = static_cast<obs::EventKind>(k);
        std::printf("%-12s %-12s %10" PRIu64 " %10.1f %8.0f %8.0f\n",
                    obs::componentName(obs::kindComponent(kind)),
                    obs::kindName(kind), counts[k],
                    hists[k].summary().mean(), hists[k].percentile(0.50),
                    hists[k].percentile(0.99));
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    if (!parseOptions(argc, argv, opt))
        return usage(argv[0]);

    obs::TraceData data;
    try {
        std::ifstream is(opt.input, std::ios::binary);
        if (!is) {
            std::fprintf(stderr, "cannot open '%s'\n", opt.input.c_str());
            return 1;
        }
        data = obs::readBinary(is);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "malformed trace: %s\n", e.what());
        return 1;
    }

    if (opt.check) {
        std::uint64_t errors = check(data);
        std::printf("check: %s: %zu events, %u nodes, %" PRIu64
                    " dropped, %" PRIu64 " errors\n",
                    opt.input.c_str(), data.events.size(), data.nodes,
                    data.dropped(), errors);
        return errors == 0 ? 0 : 1;
    }

    std::vector<obs::TraceEvent> events;
    events.reserve(data.events.size());
    for (const obs::TraceEvent &ev : data.events) {
        if (keep(opt, ev))
            events.push_back(ev);
    }

    if (!opt.jsonOut.empty()) {
        std::ofstream os(opt.jsonOut);
        if (!os) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         opt.jsonOut.c_str());
            return 1;
        }
        obs::writeChromeJson(events, os);
        if (!os.good()) {
            std::fprintf(stderr, "write to '%s' failed\n",
                         opt.jsonOut.c_str());
            return 1;
        }
    }

    std::printf("trace: %s version %u, %u nodes, %zu/%zu events "
                "selected, %" PRIu64 " dropped at capture\n",
                opt.input.c_str(), data.version, data.nodes,
                events.size(), data.events.size(), data.dropped());
    for (std::uint32_t n = 0; n < data.nodes; ++n) {
        std::printf("  node %u: held %" PRIu64 " dropped %" PRIu64 "\n",
                    n, data.perNodeHeld[n], data.perNodeDropped[n]);
    }
    printBreakdown(events);
    return 0;
}
