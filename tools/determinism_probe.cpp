/**
 * @file
 * Determinism probe for the phased parallel engine, built for CI diffing.
 *
 * Runs a fixed cross-node workload (MSIP ping-pong between node 0 and the
 * last node, plus a node-local compute loop on every other hart) on a
 * given config with a given worker count and quantum, then prints a
 * machine-diffable report: per-hart exit codes, an FNV-1a fingerprint of
 * every node's guest-visible data region, and the full stat registry.
 *
 * The CI determinism job runs this binary with threads = 1, 2 and 4 at
 * the same quantum and diffs the outputs byte for byte: any divergence —
 * a stat, an exit code, a single guest byte — fails the build.
 *
 * Usage: determinism_probe <AxBxC> <threads> <quantum> [budget]
 *                          [--trace <path>]
 *
 * With --trace, the run also records a full platform trace and writes it
 * to <path> in the binary format; the trace CI job diffs these files
 * across worker counts the same way (they are bit-identical by design).
 */

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "platform/prototype.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

/** Workload template; @LAST@ is replaced with the highest hart id. */
constexpr const char *kWorkloadTemplate = R"(
_start:
    csrr t0, 0xf14       # mhartid
    li t1, @LAST@
    beq t0, zero, pinger
    beq t0, t1, ponger
compute:                 # Node-local work on every other hart.
    li t2, 0
    li t3, 0
    li t4, 3000
loop:
    add t3, t3, t2
    addi t2, t2, 1
    bne t2, t4, loop
    la t5, sum
    sd t3, 0(t5)
    andi a0, t3, 0x3f
    li a7, 93
    ecall
pinger:
    la t0, h0
    csrw 0x305, t0       # mtvec
    li t2, 0x8
    csrw 0x304, t2       # mie.MSIE
    csrr t3, 0x300
    ori t3, t3, 8
    csrw 0x300, t3       # mstatus.MIE
    li t1, @LAST@
    slli t1, t1, 2
    li t2, 0x02000000    # CLINT MSIP of the last hart
    add t1, t1, t2
    li t2, 1
    sw t2, 0(t1)
w0: wfi
    j w0
h0:
    li a0, 5
    li a7, 93
    ecall
ponger:
    la t0, h1
    csrw 0x305, t0
    li t2, 0x8
    csrw 0x304, t2
    csrr t3, 0x300
    ori t3, t3, 8
    csrw 0x300, t3
w1: wfi
    j w1
h1:
    la t3, flag
    li t4, 1
    sd t4, 0(t3)
    li t1, 0x02000000    # CLINT MSIP of hart 0
    li t2, 1
    sw t2, 0(t1)
    li a0, 7
    li a7, 93
    ecall

.data
.align 3
flag: .dword 0
sum:  .dword 0
)";

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4) {
        std::fprintf(stderr,
                     "usage: %s <AxBxC> <threads> <quantum> [budget] "
                     "[--trace <path>]\n",
                     argv[0]);
        return 2;
    }
    const std::string spec = argv[1];
    const std::uint32_t threads =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
    const Cycles quantum = std::strtoull(argv[3], nullptr, 10);
    std::uint64_t budget = 500'000;
    std::string trace_path;
    for (int i = 4; i < argc; ++i) {
        if (std::string(argv[i]) == "--trace" && i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            budget = std::strtoull(argv[i], nullptr, 10);
        }
    }

    PrototypeConfig cfg = PrototypeConfig::parse(spec);
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = quantum;
    if (!trace_path.empty()) {
        cfg.trace.enabled = true;
        cfg.trace.path = trace_path;
    }
    Prototype proto(cfg);

    std::string source = kWorkloadTemplate;
    const std::string token = "@LAST@";
    const std::string last = std::to_string(cfg.totalTiles() - 1);
    for (std::size_t at = source.find(token); at != std::string::npos;
         at = source.find(token, at + last.size()))
        source.replace(at, token.size(), last);

    riscv::Program prog = proto.loadSourceReplicated(source);
    std::vector<GlobalTileId> gids;
    for (GlobalTileId g = 0; g < cfg.totalTiles(); ++g)
        gids.push_back(g);
    proto.runCores(gids, budget);
    if (!trace_path.empty())
        proto.writeTrace();

    // The report deliberately omits the threads/quantum arguments so that
    // outputs from different worker counts diff clean.
    std::printf("config: %s harts: %u\n", spec.c_str(), cfg.totalTiles());
    for (GlobalTileId g = 0; g < cfg.totalTiles(); ++g) {
        std::printf("hart %u: exited=%d code=%" PRId64 "\n", g,
                    proto.core(g).exited() ? 1 : 0,
                    proto.core(g).exitCode());
    }

    // Fingerprint each node's replica of the program data region.
    const Addr data_base = prog.symbol("flag") & ~Addr{0xfff};
    for (NodeId n = 0; n < cfg.totalNodes(); ++n) {
        std::uint64_t h = 0xcbf29ce484222325ULL;
        Addr base = data_base + n * cfg.memPerNode;
        for (Addr a = base; a < base + 0x1000; a += 8)
            h = fnv1a(h, proto.memory().load(a, 8));
        std::printf("node %u data fingerprint: %016" PRIx64 "\n", n, h);
    }

    std::printf("--- stats ---\n");
    std::ostringstream os;
    proto.stats().dump(os);
    std::fputs(os.str().c_str(), stdout);
    return 0;
}
