/**
 * @file
 * Lockstep differential-fuzzing CLI (see src/check/isa_fuzz.hpp and
 * docs/INTERNALS.md "Differential testing").
 *
 * Generates a seeded random RV64 program, runs it on a Prototype with
 * the golden-model lockstep checker attached, and reports divergences.
 * A run is a pure function of its command line: re-running the printed
 * `repro:` line reproduces the divergence exactly.
 *
 * Options:
 *
 *   --spec <FxNxT>      Prototype geometry (default 1x1x2).
 *   --seed <N>          Base RNG seed (default 1).
 *   --runs <N>          Consecutive seeds starting at --seed (default 1).
 *   --count <N>         Instruction slots per hart (default 256).
 *   --mix <M>           alu|mul|mem|amo|csr|all|smc (default all).
 *   --shared            Sprinkle cross-hart shared-line accesses.
 *   --threads <N>       Phased engine with N workers (default:
 *                       sequential engine).
 *   --quantum <N>       Phased quantum in cycles (default 256).
 *   --no-decode-cache   Disable the decoded-instruction cache.
 *   --no-data-fastpath  Disable the L1D hit fast path.
 *   --no-idle-skip      Disable the uncore event-horizon idle skip.
 *   --defect <D>        Arm a test-only defect: mulh | stale-decode.
 *                       Inverts the exit code: 0 = the checker caught
 *                       it (and prints the minimized repro), 1 = missed.
 *   --minimize          Shrink a diverging run before reporting.
 *
 * Exit codes: 0 = clean (or defect detected with --defect), 1 =
 * divergence (or defect missed), 2 = usage error.
 */

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "check/isa_fuzz.hpp"
#include "sim/log.hpp"

using namespace smappic;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--spec <FxNxT>] [--seed <N>] [--runs <N>] "
        "[--count <N>] [--mix <M>] [--shared] [--threads <N>] "
        "[--quantum <N>] [--no-decode-cache] [--no-data-fastpath] "
        "[--no-idle-skip] [--defect <D>] [--minimize]\n",
        argv0);
    return 2;
}

/** Strict numeric parse: rejects empty, trailing garbage and overflow
 *  instead of silently reading them as 0. */
bool
parseU64Strict(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    errno = 0;
    out = std::strtoull(s, &end, 10);
    if (end == s || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "bad numeric value '%s'\n", s);
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    check::FuzzConfig cfg;
    std::uint64_t runs = 1;
    bool minimize = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto value = [&](const char *name) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                return nullptr;
            }
            return argv[++i];
        };
        std::uint64_t n = 0;
        if (arg == "--spec") {
            const char *v = value("--spec");
            if (v == nullptr)
                return usage(argv[0]);
            cfg.spec = v;
        } else if (arg == "--seed") {
            const char *v = value("--seed");
            if (v == nullptr || !parseU64Strict(v, cfg.seed))
                return usage(argv[0]);
        } else if (arg == "--runs") {
            const char *v = value("--runs");
            if (v == nullptr || !parseU64Strict(v, runs) || runs == 0)
                return usage(argv[0]);
        } else if (arg == "--count") {
            const char *v = value("--count");
            if (v == nullptr || !parseU64Strict(v, n) || n == 0 ||
                n > 100000)
                return usage(argv[0]);
            cfg.count = static_cast<std::uint32_t>(n);
        } else if (arg == "--mix") {
            const char *v = value("--mix");
            if (v == nullptr)
                return usage(argv[0]);
            try {
                cfg.mix = check::parseMix(v);
            } catch (const FatalError &e) {
                std::fprintf(stderr, "%s\n", e.what());
                return usage(argv[0]);
            }
        } else if (arg == "--shared") {
            cfg.shared = true;
        } else if (arg == "--threads") {
            const char *v = value("--threads");
            if (v == nullptr || !parseU64Strict(v, n) || n == 0 ||
                n > 64)
                return usage(argv[0]);
            cfg.threads = static_cast<std::uint32_t>(n);
        } else if (arg == "--quantum") {
            const char *v = value("--quantum");
            if (v == nullptr || !parseU64Strict(v, n) || n == 0)
                return usage(argv[0]);
            cfg.quantum = n;
        } else if (arg == "--no-decode-cache") {
            cfg.decodeCache = false;
        } else if (arg == "--no-data-fastpath") {
            cfg.dataFastPath = false;
        } else if (arg == "--no-idle-skip") {
            cfg.idleSkip = false;
        } else if (arg == "--defect") {
            const char *v = value("--defect");
            if (v == nullptr)
                return usage(argv[0]);
            if (std::strcmp(v, "mulh") == 0) {
                cfg.defect = riscv::CoreTestMutation::kMulhCorrupt;
            } else if (std::strcmp(v, "stale-decode") == 0) {
                cfg.defect = riscv::CoreTestMutation::kStaleDecode;
            } else {
                std::fprintf(stderr, "unknown defect '%s'\n", v);
                return usage(argv[0]);
            }
        } else if (arg == "--minimize") {
            minimize = true;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", arg.c_str());
            return usage(argv[0]);
        }
    }

    // An armed defect needs a mix that actually exercises it.
    if (cfg.defect == riscv::CoreTestMutation::kStaleDecode) {
        cfg.mix = check::FuzzMix::kSmc;
    } else if (cfg.defect == riscv::CoreTestMutation::kMulhCorrupt &&
               cfg.mix != check::FuzzMix::kMul &&
               cfg.mix != check::FuzzMix::kAll) {
        cfg.mix = check::FuzzMix::kMul;
    }
    bool defectMode = cfg.defect != riscv::CoreTestMutation::kNone;

    std::uint64_t diverging = 0;
    try {
        for (std::uint64_t r = 0; r < runs; ++r) {
            check::FuzzConfig run = cfg;
            run.seed = cfg.seed + r;
            check::FuzzResult res;
            std::string repro = "repro: " + check::reproCommand(run);
            if (minimize || defectMode) {
                check::MinimizeResult m = check::runFuzzAndMinimize(run);
                res = m.result;
                if (res.diverged)
                    repro = m.repro;
            } else {
                res = check::runFuzz(run);
            }

            std::printf("seed %llu: %llu commits, %zu divergence(s)%s\n",
                        static_cast<unsigned long long>(run.seed),
                        static_cast<unsigned long long>(res.commits),
                        res.divergences.size(),
                        res.exitedCleanly ? "" : " [no clean exit]");
            if (res.diverged) {
                ++diverging;
                for (const auto &d : res.divergences)
                    std::printf("%s\n", d.message.c_str());
                std::printf("%s\n", repro.c_str());
            }
            if (!res.exitedCleanly && !res.diverged) {
                // A hung program with no divergence is a harness bug.
                std::fprintf(stderr,
                             "seed %llu: program did not exit\n",
                             static_cast<unsigned long long>(run.seed));
                return 1;
            }
        }
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    if (defectMode) {
        if (diverging == runs) {
            std::printf("defect detected in %llu/%llu run(s)\n",
                        static_cast<unsigned long long>(diverging),
                        static_cast<unsigned long long>(runs));
            return 0;
        }
        std::fprintf(stderr,
                     "defect MISSED: %llu/%llu run(s) diverged\n",
                     static_cast<unsigned long long>(diverging),
                     static_cast<unsigned long long>(runs));
        return 1;
    }
    return diverging == 0 ? 0 : 1;
}
