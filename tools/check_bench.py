#!/usr/bin/env python3
"""Perf gate: compare a bench's JSON output against a checked-in baseline.

Usage: check_bench.py <baseline.json> <bench-output-file>

The bench output may be the raw stdout of a bench binary (the script then
extracts the machine block from its ``json: {...}`` line) or a bare JSON
file. The result object is flattened to dotted paths (lists become numeric
components), and every entry of the baseline is checked against the value
at the same path:

    {"value": v, "tol": 0.15}    |result - v| <= tol * |v|  (tol 0 = exact;
                                 also the form for exact bools/strings)
    {"min": v}                   result >= v
    {"min": v, "min_hw": n}      as above, but skipped (reported, not
                                 enforced) when the result's top-level
                                 hw_concurrency is below n -- speedup
                                 floors are meaningless on starved hosts

Exits 0 when every enforced check passes, 1 otherwise.
"""

import json
import sys


def load_result(path):
    with open(path) as f:
        text = f.read()
    try:
        return json.loads(text)
    except ValueError:
        pass
    for line in text.splitlines():
        if line.startswith("json: "):
            return json.loads(line[len("json: "):])
    raise SystemExit(f"error: no JSON object or 'json: ' line in {path}")


def flatten_json(obj, prefix=""):
    """Flattens dicts/lists into {dotted.path: scalar}."""
    out = {}
    if isinstance(obj, dict):
        items = obj.items()
    elif isinstance(obj, list):
        items = ((str(i), v) for i, v in enumerate(obj))
    else:
        out[prefix.rstrip(".")] = obj
        return out
    for k, v in items:
        out.update(flatten_json(v, f"{prefix}{k}."))
    return out


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    baseline = json.load(open(sys.argv[1]))
    result = load_result(sys.argv[2])
    flat = flatten_json(result)
    hw = result.get("hw_concurrency")

    failures = 0
    for path, spec in sorted(baseline.items()):
        if not isinstance(spec, dict) or ("min" not in spec and
                                          "value" not in spec):
            raise SystemExit(
                f"error: baseline {sys.argv[1]}: metric '{path}' must be "
                f"an object with a 'value' or 'min' key")
        if path not in flat:
            print(f"FAIL {path}: missing from bench output")
            failures += 1
            continue
        got = flat[path]
        if "min" in spec:
            min_hw = spec.get("min_hw", 0)
            if hw is not None and hw < min_hw:
                print(f"SKIP {path}: {got} (floor {spec['min']} needs "
                      f">={min_hw} hw threads, host has {hw})")
                continue
            ok = isinstance(got, (int, float)) and got >= spec["min"]
            print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                  f">= {spec['min']}")
            failures += 0 if ok else 1
        else:
            want = spec["value"]
            tol = spec.get("tol", 0)
            if isinstance(want, bool) or not isinstance(
                    want, (int, float)) or tol == 0:
                ok = got == want
                print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                      f"== {want}")
            else:
                ok = isinstance(got, (int, float)) and \
                    abs(got - want) <= tol * abs(want)
                print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                      f"within {tol:.0%} of {want}")
            failures += 0 if ok else 1

    if failures:
        print(f"\n{failures} check(s) failed")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
