#!/usr/bin/env python3
"""Perf gate: compare a bench's JSON output against a checked-in baseline.

Usage:
    check_bench.py <baseline.json> <bench-output-file>
    check_bench.py --trend <trend.jsonl> [--window N] [--threshold F]
                   [--min-history N]

Baseline mode
-------------
The bench output may be the raw stdout of a bench binary (the script then
extracts the machine block from its ``json: {...}`` line) or a bare JSON
file. The result object is flattened to dotted paths (lists become numeric
components), and every entry of the baseline is checked against the value
at the same path:

    {"value": v, "tol": 0.15}    |result - v| <= tol * |v|  (tol 0 = exact;
                                 also the form for exact bools/strings).
                                 When v is 0 the tolerance is absolute --
                                 |result| <= tol -- because a relative band
                                 around zero would degenerate to exact.
    {"min": v}                   result >= v
    {"min": v, "min_hw": n}      as above, but skipped (reported, not
                                 enforced) when the result's top-level
                                 hw_concurrency is below n -- speedup
                                 floors are meaningless on starved hosts

Trend mode
----------
The trend file is JSONL appended by the CI perf-trend job: one object per
metric per run, ``{"bench": ..., "metric": ..., "value": ...}`` plus any
context keys (commit, run id). An optional ``"better": "lower"`` marks
metrics where smaller is better (times); the default is higher-is-better
(throughputs, speedups). For every (bench, metric) series the newest point
is compared against the rolling median of up to --window (default 5)
preceding points; it fails when it regresses by more than --threshold
(default 0.10, i.e. 10%). Series with no history pass, and series with
fewer than --min-history (default 3) preceding points are reported but
not enforced: a 1-or-2-sample "median" is a single noisy run, and gating
on it would fail pushes on startup noise right after a new metric lands.

Exits 0 when every enforced check passes, 1 otherwise.
"""

import json
import statistics
import sys


def load_result(path):
    with open(path) as f:
        text = f.read()
    try:
        return json.loads(text)
    except ValueError:
        pass
    for line in text.splitlines():
        if line.startswith("json: "):
            return json.loads(line[len("json: "):])
    raise SystemExit(f"error: no JSON object or 'json: ' line in {path}")


def flatten_json(obj, prefix=""):
    """Flattens dicts/lists into {dotted.path: scalar}."""
    out = {}
    if isinstance(obj, dict):
        items = obj.items()
    elif isinstance(obj, list):
        items = ((str(i), v) for i, v in enumerate(obj))
    else:
        out[prefix.rstrip(".")] = obj
        return out
    for k, v in items:
        out.update(flatten_json(v, f"{prefix}{k}."))
    return out


def check_baseline(baseline, result, baseline_name="baseline"):
    """Returns the number of failed checks, printing one line per check."""
    flat = flatten_json(result)
    hw = result.get("hw_concurrency")

    failures = 0
    for path, spec in sorted(baseline.items()):
        if not isinstance(spec, dict) or ("min" not in spec and
                                          "value" not in spec):
            raise SystemExit(
                f"error: baseline {baseline_name}: metric '{path}' must be "
                f"an object with a 'value' or 'min' key")
        if path not in flat:
            print(f"FAIL {path}: missing from bench output")
            failures += 1
            continue
        got = flat[path]
        if "min" in spec:
            min_hw = spec.get("min_hw", 0)
            if hw is not None and hw < min_hw:
                print(f"SKIP {path}: {got} (floor {spec['min']} needs "
                      f">={min_hw} hw threads, host has {hw})")
                continue
            ok = isinstance(got, (int, float)) and got >= spec["min"]
            print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                  f">= {spec['min']}")
            failures += 0 if ok else 1
        else:
            want = spec["value"]
            tol = spec.get("tol", 0)
            if isinstance(want, bool) or not isinstance(
                    want, (int, float)) or tol == 0:
                ok = got == want
                print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                      f"== {want}")
            elif want == 0:
                # A relative band around zero is an exact match in
                # disguise; use the tolerance as an absolute bound.
                ok = isinstance(got, (int, float)) and abs(got) <= tol
                print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                      f"within +/-{tol} of 0")
                failures += 0 if ok else 1
                continue
            else:
                ok = isinstance(got, (int, float)) and \
                    abs(got - want) <= tol * abs(want)
                print(f"{'PASS' if ok else 'FAIL'} {path}: {got} "
                      f"within {tol:.0%} of {want}")
            failures += 0 if ok else 1

    return failures


def load_trend(path):
    """Parses a JSONL trend file into a list of point dicts."""
    points = []
    with open(path) as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                point = json.loads(line)
            except ValueError:
                raise SystemExit(f"error: {path}:{lineno}: not JSON")
            for key in ("bench", "metric", "value"):
                if key not in point:
                    raise SystemExit(
                        f"error: {path}:{lineno}: missing '{key}'")
            points.append(point)
    return points


def check_trend(points, window=5, threshold=0.10, min_history=3):
    """Returns the number of regressed series, printing one line each.

    For every (bench, metric) series, in file order, the newest point is
    compared against the median of up to ``window`` preceding points. A
    higher-is-better metric fails below median * (1 - threshold); a
    ``"better": "lower"`` metric fails above median * (1 + threshold).
    A series with fewer than ``min_history`` preceding points degrades
    gracefully: the comparison is printed for the record but never
    enforced, because the median of one or two samples is just a noisy
    run dressed up as a trend.
    """
    series = {}
    for point in points:
        series.setdefault((point["bench"], point["metric"]),
                          []).append(point)

    failures = 0
    for (bench, metric), pts in sorted(series.items()):
        latest = pts[-1]
        history = [p["value"] for p in pts[:-1]][-window:]
        name = f"{bench}.{metric}"
        if not history:
            print(f"PASS {name}: {latest['value']} (no history)")
            continue
        median = statistics.median(history)
        lower_is_better = latest.get("better") == "lower"
        if lower_is_better:
            bound = median * (1 + threshold)
            ok = latest["value"] <= bound
            rel = "<="
        else:
            bound = median * (1 - threshold)
            ok = latest["value"] >= bound
            rel = ">="
        if len(history) < min_history:
            print(f"PASS {name}: {latest['value']} (only {len(history)} "
                  f"of {min_history} history samples -- median "
                  f"{median:.4g} reported, not enforced)")
            continue
        print(f"{'PASS' if ok else 'FAIL'} {name}: {latest['value']} "
              f"{rel} {bound:.4g} (median {median:.4g} of last "
              f"{len(history)}, threshold {threshold:.0%})")
        failures += 0 if ok else 1

    return failures


def main(argv):
    if len(argv) >= 2 and argv[1] == "--trend":
        args = argv[2:]
        path = None
        window = 5
        threshold = 0.10
        min_history = 3
        it = iter(args)
        for arg in it:
            if arg == "--window":
                window = int(next(it, "5"))
            elif arg == "--threshold":
                threshold = float(next(it, "0.10"))
            elif arg == "--min-history":
                min_history = int(next(it, "3"))
            elif path is None:
                path = arg
            else:
                raise SystemExit(__doc__)
        if path is None:
            raise SystemExit(__doc__)
        failures = check_trend(load_trend(path), window, threshold,
                               min_history)
    elif len(argv) == 3:
        baseline = json.load(open(argv[1]))
        result = load_result(argv[2])
        failures = check_baseline(baseline, result, argv[1])
    else:
        raise SystemExit(__doc__)

    if failures:
        print(f"\n{failures} check(s) failed")
        return 1
    print("\nall checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
