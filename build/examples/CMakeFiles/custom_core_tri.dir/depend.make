# Empty dependencies file for custom_core_tri.
# This may be replaced when dependencies are built.
