file(REMOVE_RECURSE
  "CMakeFiles/custom_core_tri.dir/custom_core_tri.cpp.o"
  "CMakeFiles/custom_core_tri.dir/custom_core_tri.cpp.o.d"
  "custom_core_tri"
  "custom_core_tri.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_core_tri.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
