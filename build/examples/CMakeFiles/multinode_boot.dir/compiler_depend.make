# Empty compiler generated dependencies file for multinode_boot.
# This may be replaced when dependencies are built.
