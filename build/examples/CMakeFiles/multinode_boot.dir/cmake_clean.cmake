file(REMOVE_RECURSE
  "CMakeFiles/multinode_boot.dir/multinode_boot.cpp.o"
  "CMakeFiles/multinode_boot.dir/multinode_boot.cpp.o.d"
  "multinode_boot"
  "multinode_boot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinode_boot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
