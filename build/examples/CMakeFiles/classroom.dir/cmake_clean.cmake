file(REMOVE_RECURSE
  "CMakeFiles/classroom.dir/classroom.cpp.o"
  "CMakeFiles/classroom.dir/classroom.cpp.o.d"
  "classroom"
  "classroom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classroom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
