# Empty dependencies file for cloud_pipeline.
# This may be replaced when dependencies are built.
