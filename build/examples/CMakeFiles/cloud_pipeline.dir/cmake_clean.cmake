file(REMOVE_RECURSE
  "CMakeFiles/cloud_pipeline.dir/cloud_pipeline.cpp.o"
  "CMakeFiles/cloud_pipeline.dir/cloud_pipeline.cpp.o.d"
  "cloud_pipeline"
  "cloud_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
