# Empty dependencies file for accelerator_gng.
# This may be replaced when dependencies are built.
