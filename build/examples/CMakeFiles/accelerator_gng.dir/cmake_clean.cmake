file(REMOVE_RECURSE
  "CMakeFiles/accelerator_gng.dir/accelerator_gng.cpp.o"
  "CMakeFiles/accelerator_gng.dir/accelerator_gng.cpp.o.d"
  "accelerator_gng"
  "accelerator_gng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_gng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
