
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/gng.cpp" "src/CMakeFiles/smappic.dir/accel/gng.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/accel/gng.cpp.o.d"
  "/root/repo/src/accel/maple.cpp" "src/CMakeFiles/smappic.dir/accel/maple.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/accel/maple.cpp.o.d"
  "/root/repo/src/axi/crossbar.cpp" "src/CMakeFiles/smappic.dir/axi/crossbar.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/axi/crossbar.cpp.o.d"
  "/root/repo/src/bridge/inter_node_bridge.cpp" "src/CMakeFiles/smappic.dir/bridge/inter_node_bridge.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/bridge/inter_node_bridge.cpp.o.d"
  "/root/repo/src/cache/cache_array.cpp" "src/CMakeFiles/smappic.dir/cache/cache_array.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/cache/cache_array.cpp.o.d"
  "/root/repo/src/cache/coherent_system.cpp" "src/CMakeFiles/smappic.dir/cache/coherent_system.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/cache/coherent_system.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/smappic.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/fpga/resource_model.cpp" "src/CMakeFiles/smappic.dir/fpga/resource_model.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/fpga/resource_model.cpp.o.d"
  "/root/repo/src/io/sd_card.cpp" "src/CMakeFiles/smappic.dir/io/sd_card.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/io/sd_card.cpp.o.d"
  "/root/repo/src/io/serial_net.cpp" "src/CMakeFiles/smappic.dir/io/serial_net.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/io/serial_net.cpp.o.d"
  "/root/repo/src/io/uart16550.cpp" "src/CMakeFiles/smappic.dir/io/uart16550.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/io/uart16550.cpp.o.d"
  "/root/repo/src/io/uart_tunnel.cpp" "src/CMakeFiles/smappic.dir/io/uart_tunnel.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/io/uart_tunnel.cpp.o.d"
  "/root/repo/src/mem/axi_dram.cpp" "src/CMakeFiles/smappic.dir/mem/axi_dram.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/mem/axi_dram.cpp.o.d"
  "/root/repo/src/mem/main_memory.cpp" "src/CMakeFiles/smappic.dir/mem/main_memory.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/mem/main_memory.cpp.o.d"
  "/root/repo/src/mem/noc_axi_memctrl.cpp" "src/CMakeFiles/smappic.dir/mem/noc_axi_memctrl.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/mem/noc_axi_memctrl.cpp.o.d"
  "/root/repo/src/noc/network.cpp" "src/CMakeFiles/smappic.dir/noc/network.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/noc/network.cpp.o.d"
  "/root/repo/src/noc/packet.cpp" "src/CMakeFiles/smappic.dir/noc/packet.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/noc/packet.cpp.o.d"
  "/root/repo/src/os/guest_system.cpp" "src/CMakeFiles/smappic.dir/os/guest_system.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/os/guest_system.cpp.o.d"
  "/root/repo/src/pcie/pcie_fabric.cpp" "src/CMakeFiles/smappic.dir/pcie/pcie_fabric.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/pcie/pcie_fabric.cpp.o.d"
  "/root/repo/src/platform/node_chipset.cpp" "src/CMakeFiles/smappic.dir/platform/node_chipset.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/platform/node_chipset.cpp.o.d"
  "/root/repo/src/platform/prototype.cpp" "src/CMakeFiles/smappic.dir/platform/prototype.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/platform/prototype.cpp.o.d"
  "/root/repo/src/platform/tri.cpp" "src/CMakeFiles/smappic.dir/platform/tri.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/platform/tri.cpp.o.d"
  "/root/repo/src/riscv/assembler.cpp" "src/CMakeFiles/smappic.dir/riscv/assembler.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/riscv/assembler.cpp.o.d"
  "/root/repo/src/riscv/core.cpp" "src/CMakeFiles/smappic.dir/riscv/core.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/riscv/core.cpp.o.d"
  "/root/repo/src/riscv/decoder.cpp" "src/CMakeFiles/smappic.dir/riscv/decoder.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/riscv/decoder.cpp.o.d"
  "/root/repo/src/riscv/disasm.cpp" "src/CMakeFiles/smappic.dir/riscv/disasm.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/riscv/disasm.cpp.o.d"
  "/root/repo/src/riscv/interrupts.cpp" "src/CMakeFiles/smappic.dir/riscv/interrupts.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/riscv/interrupts.cpp.o.d"
  "/root/repo/src/riscv/plic.cpp" "src/CMakeFiles/smappic.dir/riscv/plic.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/riscv/plic.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/smappic.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/log.cpp" "src/CMakeFiles/smappic.dir/sim/log.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/sim/log.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/smappic.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/sim/stats.cpp.o.d"
  "/root/repo/src/workload/dae_kernels.cpp" "src/CMakeFiles/smappic.dir/workload/dae_kernels.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/workload/dae_kernels.cpp.o.d"
  "/root/repo/src/workload/intsort.cpp" "src/CMakeFiles/smappic.dir/workload/intsort.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/workload/intsort.cpp.o.d"
  "/root/repo/src/workload/noise.cpp" "src/CMakeFiles/smappic.dir/workload/noise.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/workload/noise.cpp.o.d"
  "/root/repo/src/workload/stream.cpp" "src/CMakeFiles/smappic.dir/workload/stream.cpp.o" "gcc" "src/CMakeFiles/smappic.dir/workload/stream.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
