# Empty compiler generated dependencies file for smappic.
# This may be replaced when dependencies are built.
