file(REMOVE_RECURSE
  "libsmappic.a"
)
