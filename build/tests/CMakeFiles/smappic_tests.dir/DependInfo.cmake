
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache_array.cpp" "tests/CMakeFiles/smappic_tests.dir/test_cache_array.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_cache_array.cpp.o.d"
  "/root/repo/tests/test_coherent_system.cpp" "tests/CMakeFiles/smappic_tests.dir/test_coherent_system.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_coherent_system.cpp.o.d"
  "/root/repo/tests/test_core_models.cpp" "tests/CMakeFiles/smappic_tests.dir/test_core_models.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_core_models.cpp.o.d"
  "/root/repo/tests/test_disasm_stream.cpp" "tests/CMakeFiles/smappic_tests.dir/test_disasm_stream.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_disasm_stream.cpp.o.d"
  "/root/repo/tests/test_failure_injection.cpp" "tests/CMakeFiles/smappic_tests.dir/test_failure_injection.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_failure_injection.cpp.o.d"
  "/root/repo/tests/test_fpga_cost.cpp" "tests/CMakeFiles/smappic_tests.dir/test_fpga_cost.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_fpga_cost.cpp.o.d"
  "/root/repo/tests/test_guest_os.cpp" "tests/CMakeFiles/smappic_tests.dir/test_guest_os.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_guest_os.cpp.o.d"
  "/root/repo/tests/test_interrupts.cpp" "tests/CMakeFiles/smappic_tests.dir/test_interrupts.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_interrupts.cpp.o.d"
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/smappic_tests.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_io.cpp.o.d"
  "/root/repo/tests/test_main_memory.cpp" "tests/CMakeFiles/smappic_tests.dir/test_main_memory.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_main_memory.cpp.o.d"
  "/root/repo/tests/test_memctrl.cpp" "tests/CMakeFiles/smappic_tests.dir/test_memctrl.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_memctrl.cpp.o.d"
  "/root/repo/tests/test_noc.cpp" "tests/CMakeFiles/smappic_tests.dir/test_noc.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_noc.cpp.o.d"
  "/root/repo/tests/test_node_chipset.cpp" "tests/CMakeFiles/smappic_tests.dir/test_node_chipset.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_node_chipset.cpp.o.d"
  "/root/repo/tests/test_param_sweeps.cpp" "tests/CMakeFiles/smappic_tests.dir/test_param_sweeps.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_param_sweeps.cpp.o.d"
  "/root/repo/tests/test_pcie_bridge.cpp" "tests/CMakeFiles/smappic_tests.dir/test_pcie_bridge.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_pcie_bridge.cpp.o.d"
  "/root/repo/tests/test_platform.cpp" "tests/CMakeFiles/smappic_tests.dir/test_platform.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_platform.cpp.o.d"
  "/root/repo/tests/test_plic.cpp" "tests/CMakeFiles/smappic_tests.dir/test_plic.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_plic.cpp.o.d"
  "/root/repo/tests/test_riscv_core.cpp" "tests/CMakeFiles/smappic_tests.dir/test_riscv_core.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_riscv_core.cpp.o.d"
  "/root/repo/tests/test_riscv_torture.cpp" "tests/CMakeFiles/smappic_tests.dir/test_riscv_torture.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_riscv_torture.cpp.o.d"
  "/root/repo/tests/test_serial_net.cpp" "tests/CMakeFiles/smappic_tests.dir/test_serial_net.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_serial_net.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/smappic_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_tri.cpp" "tests/CMakeFiles/smappic_tests.dir/test_tri.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_tri.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/smappic_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/smappic_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/smappic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
