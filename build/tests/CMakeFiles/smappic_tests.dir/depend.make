# Empty dependencies file for smappic_tests.
# This may be replaced when dependencies are built.
