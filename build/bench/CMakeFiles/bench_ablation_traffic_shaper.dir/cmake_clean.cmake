file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_traffic_shaper.dir/bench_ablation_traffic_shaper.cpp.o"
  "CMakeFiles/bench_ablation_traffic_shaper.dir/bench_ablation_traffic_shaper.cpp.o.d"
  "bench_ablation_traffic_shaper"
  "bench_ablation_traffic_shaper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_traffic_shaper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
