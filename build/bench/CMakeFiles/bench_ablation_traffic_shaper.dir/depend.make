# Empty dependencies file for bench_ablation_traffic_shaper.
# This may be replaced when dependencies are built.
