file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_cloud_vs_onprem.dir/bench_fig14_cloud_vs_onprem.cpp.o"
  "CMakeFiles/bench_fig14_cloud_vs_onprem.dir/bench_fig14_cloud_vs_onprem.cpp.o.d"
  "bench_fig14_cloud_vs_onprem"
  "bench_fig14_cloud_vs_onprem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_cloud_vs_onprem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
