# Empty compiler generated dependencies file for bench_fig14_cloud_vs_onprem.
# This may be replaced when dependencies are built.
