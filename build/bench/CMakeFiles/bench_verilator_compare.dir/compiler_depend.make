# Empty compiler generated dependencies file for bench_verilator_compare.
# This may be replaced when dependencies are built.
