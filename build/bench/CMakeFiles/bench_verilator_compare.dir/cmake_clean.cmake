file(REMOVE_RECURSE
  "CMakeFiles/bench_verilator_compare.dir/bench_verilator_compare.cpp.o"
  "CMakeFiles/bench_verilator_compare.dir/bench_verilator_compare.cpp.o.d"
  "bench_verilator_compare"
  "bench_verilator_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_verilator_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
