# Empty dependencies file for bench_fig8_numa_scaling.
# This may be replaced when dependencies are built.
