# Empty compiler generated dependencies file for bench_fig9_thread_alloc.
# This may be replaced when dependencies are built.
