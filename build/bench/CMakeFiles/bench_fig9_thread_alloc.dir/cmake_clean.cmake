file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_thread_alloc.dir/bench_fig9_thread_alloc.cpp.o"
  "CMakeFiles/bench_fig9_thread_alloc.dir/bench_fig9_thread_alloc.cpp.o.d"
  "bench_fig9_thread_alloc"
  "bench_fig9_thread_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_thread_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
