file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gng.dir/bench_fig10_gng.cpp.o"
  "CMakeFiles/bench_fig10_gng.dir/bench_fig10_gng.cpp.o.d"
  "bench_fig10_gng"
  "bench_fig10_gng.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gng.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
