# Empty compiler generated dependencies file for bench_fig13_modeling_cost.
# This may be replaced when dependencies are built.
