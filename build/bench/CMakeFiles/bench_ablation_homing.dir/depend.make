# Empty dependencies file for bench_ablation_homing.
# This may be replaced when dependencies are built.
