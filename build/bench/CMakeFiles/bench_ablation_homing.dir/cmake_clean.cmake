file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_homing.dir/bench_ablation_homing.cpp.o"
  "CMakeFiles/bench_ablation_homing.dir/bench_ablation_homing.cpp.o.d"
  "bench_ablation_homing"
  "bench_ablation_homing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_homing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
