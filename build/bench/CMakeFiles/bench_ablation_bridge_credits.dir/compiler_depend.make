# Empty compiler generated dependencies file for bench_ablation_bridge_credits.
# This may be replaced when dependencies are built.
