file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bridge_credits.dir/bench_ablation_bridge_credits.cpp.o"
  "CMakeFiles/bench_ablation_bridge_credits.dir/bench_ablation_bridge_credits.cpp.o.d"
  "bench_ablation_bridge_credits"
  "bench_ablation_bridge_credits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bridge_credits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
