# Empty dependencies file for bench_fig11_maple.
# This may be replaced when dependencies are built.
