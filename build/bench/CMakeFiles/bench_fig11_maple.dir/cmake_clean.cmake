file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_maple.dir/bench_fig11_maple.cpp.o"
  "CMakeFiles/bench_fig11_maple.dir/bench_fig11_maple.cpp.o.d"
  "bench_fig11_maple"
  "bench_fig11_maple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_maple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
