/**
 * @file
 * Lockstep differential checker tests (src/ref/ + src/check/).
 *
 * Four layers:
 *  - bare-core wiring: clean programs produce zero divergences, and the
 *    two test-only defeat switches (CoreTestMutation::kMulhCorrupt and
 *    kStaleDecode) are each caught within a bounded number of commits;
 *  - pinned regressions for the CSR WARL and word-AMO defects the golden
 *    model originally flagged in RvCore (mstatus field mask + MPP
 *    legalization, mtvec mode legalization, mepc IALIGN mask, satp
 *    reserved-mode ignore, amomaxu.w upper-bit truncation);
 *  - the seeded ISA fuzzer: fixed-seed runs across the sequential and
 *    phased engines, shared-line variants, decode cache on/off — all
 *    clean — plus defect runs that must minimize to a `repro:` line;
 *  - prototype integration: a platform with config().lockstep.enabled
 *    checks a multi-hart program transparently.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "check/isa_fuzz.hpp"
#include "check/lockstep.hpp"
#include "platform/prototype.hpp"
#include "riscv/assembler.hpp"
#include "riscv/core.hpp"
#include "support/flat_port.hpp"

namespace smappic::check
{
namespace
{

using riscv::CoreTestMutation;
using riscv::HaltReason;
using test::FlatPort;

/** One bare core + checker over a FlatPort, ready to run @p src. */
struct Harness
{
    FlatPort port;
    riscv::Program prog;
    std::unique_ptr<riscv::RvCore> core;
    std::unique_ptr<LockstepChecker> checker;

    explicit Harness(const std::string &src,
                     CoreTestMutation mutation = CoreTestMutation::kNone)
    {
        riscv::Assembler as;
        prog = as.assemble(src);
        test::loadProgram(port.memory, prog);
        riscv::CoreConfig cfg;
        cfg.resetPc = prog.entry;
        core = std::make_unique<riscv::RvCore>(cfg, port);
        test::installExitHandler(*core);
        core->setTestMutation(mutation);

        checker = std::make_unique<LockstepChecker>(LockstepConfig{});
        checker->attach(*core);
        for (const auto &seg : prog.segments)
            checker->loadImage(seg.base, seg.bytes.data(),
                               seg.bytes.size());
    }

    HaltReason run(std::uint64_t budget = 20000)
    {
        return core->run(budget);
    }
};

constexpr const char *kExitStub = "  li a0, 0\n  li a7, 93\n  ecall\n";

TEST(Lockstep, CleanProgramHasNoDivergences)
{
    std::ostringstream src;
    src << "_start:\n"
        << "  li x5, 123456789\n"
        << "  li x6, -987654321\n"
        << "  mulh x7, x5, x6\n"
        << "  divu x20, x6, x5\n"
        << "  li x8, 0x80004000\n"
        << "  sd x7, 0(x8)\n"
        << "  ld x21, 0(x8)\n"
        << "  beq x21, x7, skip\n"
        << "  addi x22, x22, 1\n"
        << "skip:\n"
        << "  csrw 0x340, x21\n"
        << "  csrr x23, 0x340\n"
        << kExitStub;
    Harness h(src.str());
    ASSERT_EQ(h.run(), HaltReason::kExited);
    EXPECT_GT(h.checker->commits(), 10u);
    EXPECT_TRUE(h.checker->divergences().empty()) << h.checker->report();
}

TEST(Lockstep, MulhCorruptionIsCaughtWithinBoundedCommits)
{
    std::ostringstream src;
    src << "_start:\n"
        << "  li x5, -1\n"
        << "  li x6, 7\n"
        << "  mulh x7, x5, x6\n"
        << kExitStub;
    Harness h(src.str(), CoreTestMutation::kMulhCorrupt);
    ASSERT_EQ(h.run(), HaltReason::kExited);
    auto divs = h.checker->divergences();
    ASSERT_FALSE(divs.empty());
    // li expands to a handful of instructions; the corrupt mulh is the
    // first divergence and must surface immediately, not at exit.
    EXPECT_LE(divs[0].commitIndex, 12u);
    EXPECT_NE(divs[0].message.find("x7"), std::string::npos)
        << divs[0].message;
}

/** Self-modifying patch loop: each round stores `addi x20, x20, k` over
 *  the patch point before executing it (k = 1..4). */
std::string
smcProgram()
{
    auto word = [](std::uint32_t k) {
        return 0x13u | (20u << 7) | (20u << 15) | (k << 20);
    };
    std::ostringstream src;
    src << "_start:\n"
        << "  la x8, words\n"
        << "  la x9, patch\n"
        << "  li x20, 0\n"
        << "  li x21, 0\n"
        << "  li x22, 4\n"
        << "loop:\n"
        << "  slli x23, x21, 2\n"
        << "  add x23, x23, x8\n"
        << "  lw x24, 0(x23)\n"
        << "  sw x24, 0(x9)\n"
        << "patch:\n"
        << "  addi x20, x20, 1\n"
        << "  addi x21, x21, 1\n"
        << "  blt x21, x22, loop\n"
        << kExitStub
        << "words:\n";
    for (std::uint32_t k = 1; k <= 4; ++k)
        src << "  .word " << word(k) << "\n";
    return src.str();
}

TEST(Lockstep, SmcLoopIsCleanWithoutMutation)
{
    Harness h(smcProgram());
    ASSERT_EQ(h.run(), HaltReason::kExited);
    EXPECT_TRUE(h.checker->divergences().empty()) << h.checker->report();
    // x20 accumulated every patched increment: 1 + 2 + 3 + 4.
    EXPECT_EQ(h.core->reg(20), 10u);
    // The stamp machinery did real work: the patched entry was dropped.
    EXPECT_GT(h.core->decodeCache().stats().invalidations, 0u);
}

TEST(Lockstep, StaleDecodeIsCaughtWithinBoundedCommits)
{
    Harness h(smcProgram(), CoreTestMutation::kStaleDecode);
    ASSERT_EQ(h.run(), HaltReason::kExited);
    auto divs = h.checker->divergences();
    ASSERT_FALSE(divs.empty()) << "stale decode not detected";
    // Round 2 is the first one served from a stale entry; the whole
    // program is well under 60 commits by then.
    EXPECT_LE(divs[0].commitIndex, 60u);
    EXPECT_NE(divs[0].message.find("stale decode"), std::string::npos)
        << divs[0].message;
    // The defeat switch suppressed the invalidation path entirely.
    EXPECT_EQ(h.core->decodeCache().stats().invalidations, 0u);
}

// ---------------------------------------------------------------------
// Pinned regressions for the DUT defects the golden model flagged.
// Each was a real mismatch between RvCore and the spec before the
// lockstep work landed; the WARL choices now live in riscv/isa.hpp and
// are shared by both interpreters.

/** Runs @p body on a bare core and returns the final value of csr @p n. */
std::uint64_t
csrAfter(const std::string &body, std::uint16_t n)
{
    Harness h("_start:\n" + body + kExitStub);
    EXPECT_EQ(h.run(), HaltReason::kExited);
    EXPECT_TRUE(h.checker->divergences().empty()) << h.checker->report();
    return h.core->csr(n);
}

TEST(LockstepCsrRegression, MstatusWriteKeepsOnlyWritableFields)
{
    std::uint64_t v = csrAfter("  li x5, -1\n  csrw 0x300, x5\n",
                               riscv::kCsrMstatus);
    // All-ones lands on the writable mask (MPP = 3 is legal).
    EXPECT_EQ(v, riscv::kMstatusWritableMask);
}

TEST(LockstepCsrRegression, MstatusReservedMppIsLegalized)
{
    // MPP = 2 (hypervisor) is reserved; writing it must not stick —
    // an mret through MPP = 2 would land the core in a privilege mode
    // that does not exist.
    std::uint64_t mpp2 = 2ULL << riscv::kMstatusMppShift;
    std::ostringstream body;
    body << "  li x5, " << (mpp2 | riscv::kMstatusMie) << "\n"
         << "  csrw 0x300, x5\n";
    std::uint64_t v = csrAfter(body.str(), riscv::kCsrMstatus);
    EXPECT_EQ(v, riscv::kMstatusMie);
}

TEST(LockstepCsrRegression, MepcWriteMasksIalignBits)
{
    // IALIGN = 32 (no compressed): mepc[1:0] must read back zero; the
    // old mask only cleared bit 0.
    std::uint64_t v = csrAfter(
        "  li x5, 0x80000006\n  csrw 0x341, x5\n", riscv::kCsrMepc);
    EXPECT_EQ(v, 0x80000004u);
}

TEST(LockstepCsrRegression, MtvecReservedModeIsLegalized)
{
    std::uint64_t v = csrAfter(
        "  li x5, 0x80000003\n  csrw 0x305, x5\n", riscv::kCsrMtvec);
    EXPECT_EQ(v & 3, 0u); // Reserved mode 3 falls back to direct.
    std::uint64_t vectored = csrAfter(
        "  li x5, 0x80000001\n  csrw 0x305, x5\n", riscv::kCsrMtvec);
    EXPECT_EQ(vectored & 3, 1u); // Mode 1 (vectored) is preserved.
}

TEST(LockstepCsrRegression, SatpReservedModeWriteIsIgnored)
{
    // Mode 5 is reserved: the whole write is discarded (WARL keeps the
    // old value), it must not store the raw bits.
    std::uint64_t v = csrAfter(
        "  li x5, 0x5000000000001234\n  csrw 0x180, x5\n",
        riscv::kCsrSatp);
    EXPECT_EQ(v, 0u);
}

TEST(LockstepAmoRegression, WordAmoIgnoresUpperSourceBits)
{
    // amomaxu.w must compare 32-bit values: rs2's dirty upper half made
    // the old implementation see 0xffffffff00000003 > 5 and clobber
    // memory with 3.
    std::ostringstream src;
    src << "_start:\n"
        << "  li x8, 0x80004000\n"
        << "  li x5, 5\n"
        << "  sw x5, 0(x8)\n"
        << "  li x6, -4294967293\n" // 0xffffffff_00000003
        << "  amomaxu.w x7, x6, (x8)\n"
        << "  lw x20, 0(x8)\n"
        << kExitStub;
    Harness h(src.str());
    ASSERT_EQ(h.run(), HaltReason::kExited);
    EXPECT_TRUE(h.checker->divergences().empty()) << h.checker->report();
    EXPECT_EQ(h.core->reg(7), 5u);  // Old value, sign-extended.
    EXPECT_EQ(h.core->reg(20), 5u); // max32(5, 3) = 5 stays in place.
}

// ---------------------------------------------------------------------
// Seeded fuzzer, fixed-seed matrix (the CI job runs the same shapes
// through the diff_run CLI).

TEST(LockstepFuzz, FixedSeedSequentialIsClean)
{
    FuzzConfig cfg;
    cfg.seed = 7;
    cfg.count = 128;
    FuzzResult r = runFuzz(cfg);
    EXPECT_FALSE(r.diverged);
    EXPECT_TRUE(r.exitedCleanly);
    EXPECT_GT(r.commits, 2u * cfg.count);
}

TEST(LockstepFuzz, FixedSeedPhasedWorkersAreClean)
{
    for (std::uint32_t workers : {1u, 2u, 4u}) {
        FuzzConfig cfg;
        cfg.spec = "1x2x1";
        cfg.seed = 11;
        cfg.count = 96;
        cfg.threads = workers;
        FuzzResult r = runFuzz(cfg);
        EXPECT_FALSE(r.diverged) << "workers " << workers;
        EXPECT_TRUE(r.exitedCleanly) << "workers " << workers;
    }
}

TEST(LockstepFuzz, FixedSeedSharedLinesAreClean)
{
    FuzzConfig cfg;
    cfg.seed = 13;
    cfg.count = 128;
    cfg.shared = true;
    FuzzResult r = runFuzz(cfg);
    EXPECT_FALSE(r.diverged);
    EXPECT_TRUE(r.exitedCleanly);
}

TEST(LockstepFuzz, DecodeCacheOffIsClean)
{
    FuzzConfig cfg;
    cfg.seed = 17;
    cfg.count = 128;
    cfg.decodeCache = false;
    FuzzResult r = runFuzz(cfg);
    EXPECT_FALSE(r.diverged);
    EXPECT_TRUE(r.exitedCleanly);
}

TEST(LockstepFuzz, DataFastPathOnAndOffReachIdenticalFinalState)
{
    // Memory-heavy mix so the fast path actually fires, sequential and
    // phased at 2/4 workers. Both variants run the identical program
    // under the golden-model checker: zero divergences each, and equal
    // commit counts pin the final architectural state as identical
    // (every commit was already golden-verified). Both harts live on
    // one node: with cross-hart sharing enabled, the phased engine only
    // guarantees run-to-run determinism for node-confined footprints —
    // cross-node miss races resolve in worker-interleaving order.
    for (std::uint32_t workers : {0u, 2u, 4u}) {
        FuzzConfig cfg;
        cfg.spec = "1x1x2";
        cfg.seed = 23;
        cfg.count = 128;
        cfg.mix = FuzzMix::kMem;
        cfg.shared = true;
        cfg.threads = workers;

        cfg.dataFastPath = true;
        FuzzResult on = runFuzz(cfg);
        cfg.dataFastPath = false;
        FuzzResult off = runFuzz(cfg);

        EXPECT_FALSE(on.diverged) << "fastpath on, workers " << workers;
        EXPECT_FALSE(off.diverged) << "fastpath off, workers " << workers;
        EXPECT_TRUE(on.exitedCleanly) << "workers " << workers;
        EXPECT_TRUE(off.exitedCleanly) << "workers " << workers;
        EXPECT_EQ(on.commits, off.commits) << "workers " << workers;
    }
}

TEST(LockstepFuzz, RunsAreDeterministic)
{
    FuzzConfig cfg;
    cfg.seed = 23;
    cfg.count = 96;
    FuzzResult a = runFuzz(cfg);
    FuzzResult b = runFuzz(cfg);
    EXPECT_EQ(a.commits, b.commits);
    EXPECT_EQ(a.diverged, b.diverged);
    EXPECT_EQ(generateFuzzProgram(cfg, 2), generateFuzzProgram(cfg, 2));
}

TEST(LockstepFuzz, MulhDefectMinimizesToRepro)
{
    FuzzConfig cfg;
    cfg.seed = 29;
    cfg.count = 256;
    cfg.mix = FuzzMix::kMul;
    cfg.defect = CoreTestMutation::kMulhCorrupt;
    MinimizeResult m = runFuzzAndMinimize(cfg);
    ASSERT_TRUE(m.result.diverged);
    EXPECT_LE(m.minimized.count, cfg.count / 2); // It actually shrank.
    EXPECT_EQ(m.repro.rfind("repro: diff_run", 0), 0u) << m.repro;
    EXPECT_NE(m.repro.find("--defect mulh"), std::string::npos);
}

TEST(LockstepFuzz, StaleDecodeDefectIsDetected)
{
    FuzzConfig cfg;
    cfg.seed = 31;
    cfg.count = 128;
    cfg.mix = FuzzMix::kSmc;
    cfg.defect = CoreTestMutation::kStaleDecode;
    MinimizeResult m = runFuzzAndMinimize(cfg);
    ASSERT_TRUE(m.result.diverged);
    EXPECT_NE(m.repro.find("--mix smc"), std::string::npos) << m.repro;

    // Control: the same config without the defeat switch is clean.
    cfg.defect = CoreTestMutation::kNone;
    EXPECT_FALSE(runFuzz(cfg).diverged);
}

TEST(LockstepFuzz, ReproCommandRoundTrips)
{
    FuzzConfig cfg;
    cfg.spec = "1x2x1";
    cfg.seed = 99;
    cfg.count = 64;
    cfg.mix = FuzzMix::kAmo;
    cfg.shared = true;
    cfg.threads = 2;
    cfg.decodeCache = false;
    EXPECT_EQ(reproCommand(cfg),
              "diff_run --spec 1x2x1 --seed 99 --count 64 --mix amo "
              "--shared --threads 2 --quantum 256 --no-decode-cache");
}

// ---------------------------------------------------------------------
// Prototype integration: config().lockstep.enabled wires everything.

TEST(LockstepPrototype, MultiHartProgramIsCheckedTransparently)
{
    platform::PrototypeConfig pcfg = platform::PrototypeConfig::parse(
        "1x1x2");
    pcfg.lockstep.enabled = true;
    platform::Prototype proto(pcfg);
    ASSERT_NE(proto.lockstep(), nullptr);

    proto.loadSource("_start:\n"
                     "  csrr x5, 0xf14\n"
                     "  li x6, 100\n"
                     "  mul x7, x5, x6\n"
                     "  li x8, 0x80005000\n"
                     "  slli x9, x5, 3\n"
                     "  add x8, x8, x9\n"
                     "  sd x7, 0(x8)\n"
                     "  ld x20, 0(x8)\n"
                     "  li a0, 0\n  li a7, 93\n  ecall\n");
    proto.runCores({0, 1});
    EXPECT_GT(proto.lockstep()->commits(), 0u);
    EXPECT_TRUE(proto.lockstep()->divergences().empty())
        << proto.lockstep()->report();
    // No divergence -> the lazy stat was never created.
    EXPECT_EQ(proto.core(0).exited(), true);
}

TEST(LockstepPrototype, DisabledByDefault)
{
    platform::PrototypeConfig pcfg = platform::PrototypeConfig::parse(
        "1x1x1");
    platform::Prototype proto(pcfg);
    EXPECT_EQ(proto.lockstep(), nullptr);
}

} // namespace
} // namespace smappic::check
