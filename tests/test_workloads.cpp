/**
 * @file
 * Tests for the evaluation workloads: integer sort correctness and NUMA
 * sensitivity (Fig 8 shape), DAE kernels with mode-independent results and
 * MAPLE benefit (Fig 11 shape), and GNG noise workloads (Fig 10 shape).
 */

#include <gtest/gtest.h>

#include "platform/prototype.hpp"
#include "workload/dae_kernels.hpp"
#include "workload/intsort.hpp"
#include "workload/noise.hpp"

namespace smappic::workload
{
namespace
{

std::vector<GlobalTileId>
firstTiles(std::uint32_t count, std::uint32_t stride = 1)
{
    std::vector<GlobalTileId> v;
    for (std::uint32_t i = 0; i < count; ++i)
        v.push_back(i * stride);
    return v;
}

TEST(IntSort, SortsCorrectly)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("2x1x4"));
    auto guest = proto.makeGuest(os::NumaMode::kOn);
    IntSortConfig cfg;
    cfg.keys = 1 << 14;
    auto r = runIntSort(*guest, firstTiles(8), cfg);
    EXPECT_TRUE(r.sorted);
    EXPECT_GT(r.cycles, 0u);
}

TEST(IntSort, SingleWorkerWorks)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    auto guest = proto.makeGuest(os::NumaMode::kOn);
    IntSortConfig cfg;
    cfg.keys = 4096;
    auto r = runIntSort(*guest, {0}, cfg);
    EXPECT_TRUE(r.sorted);
}

TEST(IntSort, NumaOnBeatsNumaOffMultiNode)
{
    // Fig 8's central claim at one thread count: with threads spread over
    // 4 nodes, a NUMA-aware kernel beats an oblivious one substantially.
    IntSortConfig cfg;
    cfg.keys = 1 << 15;

    platform::Prototype p_on(platform::PrototypeConfig::parse("4x1x4"));
    auto g_on = p_on.makeGuest(os::NumaMode::kOn);
    auto tiles = firstTiles(16);
    auto r_on = runIntSort(*g_on, tiles, cfg);

    platform::Prototype p_off(platform::PrototypeConfig::parse("4x1x4"));
    auto g_off = p_off.makeGuest(os::NumaMode::kOff);
    auto r_off = runIntSort(*g_off, tiles, cfg);

    ASSERT_TRUE(r_on.sorted);
    ASSERT_TRUE(r_off.sorted);
    double speedup = static_cast<double>(r_off.cycles) /
                     static_cast<double>(r_on.cycles);
    // Paper: 1.6x - 2.8x depending on thread count.
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 4.0);
    // The mechanism: NUMA-off services far more misses remotely.
    EXPECT_GT(r_off.remoteFraction, r_on.remoteFraction + 0.2);
}

TEST(IntSort, MoreThreadsFaster)
{
    IntSortConfig cfg;
    cfg.keys = 1 << 14;
    platform::Prototype p1(platform::PrototypeConfig::parse("4x1x4"));
    auto g1 = p1.makeGuest(os::NumaMode::kOn);
    auto r1 = runIntSort(*g1, firstTiles(2), cfg);

    platform::Prototype p2(platform::PrototypeConfig::parse("4x1x4"));
    auto g2 = p2.makeGuest(os::NumaMode::kOn);
    auto r2 = runIntSort(*g2, firstTiles(16), cfg);

    EXPECT_LT(r2.cycles, r1.cycles);
}

TEST(DaeKernels, ChecksumIndependentOfMode)
{
    DaeConfig cfg;
    cfg.elements = 3000;
    cfg.tableSize = 1 << 12;
    for (DaeKernel k : {DaeKernel::kSpmv, DaeKernel::kSpmm,
                        DaeKernel::kSdhp, DaeKernel::kBfs}) {
        std::uint64_t sums[3];
        int i = 0;
        for (DaeMode m : {DaeMode::kSingleThread, DaeMode::kMaple,
                          DaeMode::kTwoThreads}) {
            platform::Prototype proto(
                platform::PrototypeConfig::parse("1x1x6"));
            auto &maple = proto.addMaple(2);
            auto guest = proto.makeGuest(os::NumaMode::kOn);
            auto r = runDaeKernel(*guest, k, m, {0, 1}, &maple, cfg);
            sums[i++] = r.checksum;
        }
        EXPECT_EQ(sums[0], sums[1]) << daeKernelName(k);
        EXPECT_EQ(sums[0], sums[2]) << daeKernelName(k);
    }
}

TEST(DaeKernels, MapleSpeedsUpIrregularKernels)
{
    // Fig 11 shape: MAPLE accelerates the latency-bound kernels over a
    // single thread.
    DaeConfig cfg;
    cfg.elements = 4000;
    cfg.tableSize = 1 << 14;
    for (DaeKernel k : {DaeKernel::kSpmv, DaeKernel::kSdhp}) {
        platform::Prototype p1(platform::PrototypeConfig::parse("1x1x6"));
        auto &m1 = p1.addMaple(2);
        auto g1 = p1.makeGuest(os::NumaMode::kOn);
        auto base = runDaeKernel(*g1, k, DaeMode::kSingleThread, {0, 1},
                                 &m1, cfg);

        platform::Prototype p2(platform::PrototypeConfig::parse("1x1x6"));
        auto &m2 = p2.addMaple(2);
        auto g2 = p2.makeGuest(os::NumaMode::kOn);
        auto withm = runDaeKernel(*g2, k, DaeMode::kMaple, {0, 1}, &m2,
                                  cfg);

        double speedup = static_cast<double>(base.cycles) /
                         static_cast<double>(withm.cycles);
        EXPECT_GT(speedup, 1.3) << daeKernelName(k);
        EXPECT_LT(speedup, 4.0) << daeKernelName(k);
    }
}

TEST(DaeKernels, TwoThreadsHelpToo)
{
    DaeConfig cfg;
    cfg.elements = 4000;
    platform::Prototype p1(platform::PrototypeConfig::parse("1x1x6"));
    auto &m1 = p1.addMaple(2);
    auto g1 = p1.makeGuest(os::NumaMode::kOn);
    auto base = runDaeKernel(*g1, DaeKernel::kSpmm, DaeMode::kSingleThread,
                             {0, 1}, &m1, cfg);

    platform::Prototype p2(platform::PrototypeConfig::parse("1x1x6"));
    auto &m2 = p2.addMaple(2);
    auto g2 = p2.makeGuest(os::NumaMode::kOn);
    auto two = runDaeKernel(*g2, DaeKernel::kSpmm, DaeMode::kTwoThreads,
                            {0, 1}, &m2, cfg);

    double speedup = static_cast<double>(base.cycles) /
                     static_cast<double>(two.cycles);
    EXPECT_GT(speedup, 1.4);
    EXPECT_LT(speedup, 2.3);
}

TEST(Noise, HardwareBeatsSoftwareAndPackingHelps)
{
    NoiseConfig cfg;
    cfg.samples = 1 << 12;

    Cycles t[4];
    int i = 0;
    for (GngMode m : {GngMode::kSoftware, GngMode::kFetch1,
                      GngMode::kFetch2, GngMode::kFetch4}) {
        platform::Prototype proto(
            platform::PrototypeConfig::parse("1x1x2"));
        proto.addGng(1);
        auto guest = proto.makeGuest(os::NumaMode::kOn);
        NoiseConfig c = cfg;
        c.deviceBase = proto.accelWindow(1);
        t[i++] = runNoiseGenerator(*guest, 0, m, c).cycles;
    }
    // Monotonic improvement: SW > 1 > 2 > 4 fetch.
    EXPECT_GT(t[0], t[1]);
    EXPECT_GT(t[1], t[2]);
    EXPECT_GT(t[2], t[3]);
    // Paper's mode-1 speedup is ~12x; accept a generous band.
    double s1 = static_cast<double>(t[0]) / static_cast<double>(t[1]);
    EXPECT_GT(s1, 5.0);
    EXPECT_LT(s1, 30.0);
}

TEST(Noise, ApplierSpeedupSmallerThanGenerator)
{
    // Fig 10: benchmark B accelerates less because less of its time is in
    // noise generation.
    NoiseConfig cfg;
    cfg.samples = 1 << 12;

    auto run = [&](GngMode m, bool applier) {
        platform::Prototype proto(
            platform::PrototypeConfig::parse("1x1x2"));
        proto.addGng(1);
        auto guest = proto.makeGuest(os::NumaMode::kOn);
        NoiseConfig c = cfg;
        c.deviceBase = proto.accelWindow(1);
        return applier ? runNoiseApplier(*guest, 0, m, c).cycles
                       : runNoiseGenerator(*guest, 0, m, c).cycles;
    };

    double gen_speedup =
        static_cast<double>(run(GngMode::kSoftware, false)) /
        static_cast<double>(run(GngMode::kFetch4, false));
    double apply_speedup =
        static_cast<double>(run(GngMode::kSoftware, true)) /
        static_cast<double>(run(GngMode::kFetch4, true));
    EXPECT_GT(gen_speedup, apply_speedup);
    EXPECT_GT(apply_speedup, 2.0);
}

TEST(Gng, SampleStatisticsAreGaussianLike)
{
    accel::GngAccelerator gng(5);
    double sum = 0;
    double sumsq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = static_cast<double>(gng.nextSample()) /
                   (1 << accel::GngAccelerator::kFracBits);
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Gng, PackedLoadsReturnDistinctSamples)
{
    accel::GngAccelerator gng(9);
    Cycles service = 0;
    std::uint64_t packed = gng.ncLoad(0, 8, 0, service);
    EXPECT_EQ(gng.samplesServed(), 4u);
    // Extremely unlikely that all four samples coincide.
    std::uint16_t s0 = packed & 0xffff;
    bool all_same = true;
    for (int i = 1; i < 4; ++i)
        all_same = all_same && ((packed >> (16 * i)) & 0xffff) == s0;
    EXPECT_FALSE(all_same);
}

TEST(Maple, EngineRunsAheadOfConsumer)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x4"));
    auto &maple = proto.addMaple(2);
    auto &cs = proto.memorySystem();

    std::vector<Addr> pattern;
    for (int i = 0; i < 64; ++i)
        pattern.push_back(platform::kDramBase + 0x100000 +
                          static_cast<Addr>(i) * 4096);
    maple.program(pattern, 0);

    // Consume late: everything is ready, pops are cheap.
    Cycles total = 0;
    for (int i = 0; i < 64; ++i) {
        Cycles lat = 0;
        maple.consume(0, 1'000'000 + static_cast<Cycles>(i) * 50, lat);
        total += lat;
    }
    Cycles direct = 0;
    for (int i = 0; i < 64; ++i) {
        auto r = cs.access(0,
                           platform::kDramBase + 0x200000 +
                               static_cast<Addr>(i) * 4096,
                           cache::AccessType::kLoad, 8, 2'000'000);
        direct += r.latency;
    }
    EXPECT_LT(total, direct / 2);
}

} // namespace
} // namespace smappic::workload
