/**
 * @file
 * Tests for the Transaction-Response Interface: request semantics across
 * all operation classes, coherence visibility between a TRI client and a
 * RISC-V core, and the trace-replay compute unit.
 */

#include <gtest/gtest.h>

#include "platform/prototype.hpp"
#include "platform/tri.hpp"

namespace smappic::platform
{
namespace
{

TEST(TriPort, LoadStoreRoundTrip)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    TriPort port(proto.memorySystem(), 1);

    TriRequest st{TriOp::kStore, kDramBase + 0x1000, 8, 0xdeadbeef};
    auto r1 = port.request(st, 0);
    EXPECT_GT(r1.latency, 0u);

    TriRequest ld{TriOp::kLoad, kDramBase + 0x1000, 8, 0};
    auto r2 = port.request(ld, 1000);
    EXPECT_EQ(r2.data, 0xdeadbeefULL);
    // Second load hits the private hierarchy.
    auto r3 = port.request(ld, 2000);
    EXPECT_EQ(r3.level, cache::ServiceLevel::kL1);
    EXPECT_EQ(port.transactions(), 3u);
}

TEST(TriPort, AmoReturnsOldValue)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    TriPort port(proto.memorySystem(), 0);
    port.request(TriRequest{TriOp::kStore, kDramBase + 0x40, 8, 10}, 0);
    auto r = port.request(TriRequest{TriOp::kAmo, kDramBase + 0x40, 8, 99},
                          1000);
    EXPECT_EQ(r.data, 10u);
    auto r2 = port.request(TriRequest{TriOp::kLoad, kDramBase + 0x40, 8, 0},
                           2000);
    EXPECT_EQ(r2.data, 99u);
}

TEST(TriPort, CoherentWithRiscvCore)
{
    // A TRI-attached unit (tile 1) produces data that the Ariane core
    // (tile 0) consumes — the BYOC accelerator-integration story.
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    TriPort port(proto.memorySystem(), 1);
    port.request(
        TriRequest{TriOp::kStore, kDramBase + 0x200000, 8, 4242}, 0);

    proto.loadSource(R"(
_start:
    li t0, 0x80200000
    ld a0, 0(t0)
    li a7, 93
    ecall
)");
    proto.runCore(0);
    EXPECT_EQ(proto.core(0).exitCode(), 4242);
}

TEST(TriPort, NcAccessesReachDevices)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    auto &gng = proto.addGng(1);
    TriPort port(proto.memorySystem(), 0);
    auto r = port.request(
        TriRequest{TriOp::kNcLoad, proto.accelWindow(1), 4, 0}, 0);
    EXPECT_EQ(r.level, cache::ServiceLevel::kDevice);
    EXPECT_EQ(gng.samplesServed(), 2u);
}

TEST(TraceCore, ReplaysAndAccountsTime)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    std::vector<TraceCore::Entry> trace;
    for (int i = 0; i < 16; ++i)
        trace.push_back(TraceCore::Entry{
            TriOp::kStore, kDramBase + 0x3000 + static_cast<Addr>(i) * 64,
            8, static_cast<std::uint64_t>(i), 5});
    for (int i = 0; i < 16; ++i)
        trace.push_back(TraceCore::Entry{
            TriOp::kLoad, kDramBase + 0x3000 + static_cast<Addr>(i) * 64,
            8, 0, 5});

    TraceCore core(trace, "writer-reader");
    TriPort port(proto.memorySystem(), 0);
    Cycles finish = core.run(port, 0);

    ASSERT_EQ(core.responses().size(), 32u);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(core.responses()[16 + i].data,
                  static_cast<std::uint64_t>(i));
    // Total time = gaps + memory; memory dominated by the 16 cold misses.
    EXPECT_EQ(finish, 32u * 5u + core.memoryCycles());
    EXPECT_GT(core.memoryCycles(), 16u * 100u);
    // Re-reads hit the private cache: far cheaper than the writes.
    Cycles reread = 0;
    for (int i = 0; i < 16; ++i)
        reread += core.responses()[16 + i].latency;
    EXPECT_LT(reread, core.memoryCycles() / 4);
}

TEST(TraceCore, TwoClientsShareCoherently)
{
    // Producer trace on tile 0, consumer trace on tile 1: the consumer
    // observes every producer value through the coherence protocol.
    Prototype proto(PrototypeConfig::parse("1x1x4"));
    std::vector<TraceCore::Entry> prod;
    std::vector<TraceCore::Entry> cons;
    for (int i = 0; i < 8; ++i) {
        Addr a = kDramBase + 0x5000 + static_cast<Addr>(i) * 64;
        prod.push_back(TraceCore::Entry{TriOp::kStore, a, 8,
                                        0x100u + static_cast<unsigned>(i),
                                        2});
        cons.push_back(TraceCore::Entry{TriOp::kLoad, a, 8, 0, 2});
    }
    TriPort p0(proto.memorySystem(), 0);
    TriPort p1(proto.memorySystem(), 1);
    TraceCore producer(prod, "producer");
    TraceCore consumer(cons, "consumer");
    Cycles t = producer.run(p0, 0);
    consumer.run(p1, t);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(consumer.responses()[static_cast<std::size_t>(i)].data,
                  0x100u + static_cast<unsigned>(i));
    // Consumer misses were serviced by owner-forward or LLC, not DRAM.
    EXPECT_GT(
        proto.stats().counterValue("cs.dir.downgrades") +
            proto.stats().counterValue("cs.serviced.llcLocal"),
        0u);
}

} // namespace
} // namespace smappic::platform
