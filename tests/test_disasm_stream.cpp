/**
 * @file
 * Tests for the disassembler + core trace hook, the STREAM workload, and
 * the AXI-Lite crossbar.
 */

#include <gtest/gtest.h>

#include <vector>

#include "axi/crossbar.hpp"
#include "platform/prototype.hpp"
#include "riscv/disasm.hpp"
#include "workload/stream.hpp"

namespace smappic
{
namespace
{

// ---------------- disassembler ----------------

TEST(Disasm, RendersCommonForms)
{
    using riscv::decode;
    using riscv::disassemble;
    EXPECT_EQ(disassemble(decode(0xffd10093)), "addi ra, sp, -3");
    EXPECT_EQ(disassemble(decode(0x005201b3)), "add gp, tp, t0");
    EXPECT_EQ(disassemble(decode(0x00000073)), "ecall");
    EXPECT_EQ(disassemble(decode(0x10500073)), "wfi");
    EXPECT_EQ(disassemble(decode(0xdeadbeef)).substr(0, 3), "jal");
    EXPECT_EQ(disassemble(decode(0x00000000)), "illegal 0x00000000");
}

TEST(Disasm, RoundTripsThroughAssembler)
{
    // Assemble a program, decode each word, re-render: every mnemonic
    // must match the source instruction's mnemonic.
    riscv::Assembler as;
    auto prog = as.assemble(R"(
_start:
    addi t0, t0, 1
    sub a0, a1, a2
    ld s2, 8(sp)
    sd s2, 16(sp)
    beq t0, t1, _start
    amoadd.d t2, t3, (t4)
    csrrw zero, 0x305, t0
    mulw s3, s4, s5
)");
    const char *expected[] = {"addi", "sub", "ld", "sd",
                              "beq",  "amoadd.d", "csrrw", "mulw"};
    const auto &text = prog.segments.at(0).bytes;
    for (std::size_t i = 0; i < std::size(expected); ++i) {
        std::uint32_t word = 0;
        std::memcpy(&word, text.data() + i * 4, 4);
        std::string da = riscv::disassemble(riscv::decode(word));
        EXPECT_EQ(da.substr(0, std::string(expected[i]).size()),
                  expected[i])
            << da;
    }
}

TEST(Disasm, RegNames)
{
    EXPECT_STREQ(riscv::regName(0), "zero");
    EXPECT_STREQ(riscv::regName(2), "sp");
    EXPECT_STREQ(riscv::regName(10), "a0");
    EXPECT_STREQ(riscv::regName(31), "t6");
}

TEST(Disasm, CoreTraceHookFires)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
_start:
    li t0, 5
    addi t0, t0, 1
    li a7, 93
    li a0, 0
    ecall
)");
    std::vector<std::string> trace;
    proto.core(0).setTraceFn(
        [&](Addr pc, const riscv::DecodedInst &d) {
            trace.push_back(strfmt("%llx: %s",
                                   static_cast<unsigned long long>(pc),
                                   riscv::disassemble(d).c_str()));
        });
    proto.runCore(0);
    ASSERT_GE(trace.size(), 5u);
    EXPECT_NE(trace[0].find("addi t0, zero, 5"), std::string::npos);
    EXPECT_NE(trace[1].find("addi t0, t0, 1"), std::string::npos);
    EXPECT_NE(trace.back().find("ecall"), std::string::npos);
}

// ---------------- STREAM ----------------

TEST(Stream, AllKernelsCorrect)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x4"));
    auto guest = proto.makeGuest(os::NumaMode::kOn);
    workload::StreamConfig cfg;
    cfg.elementsPerThread = 1 << 10;
    for (auto k : {workload::StreamKernel::kCopy,
                   workload::StreamKernel::kScale,
                   workload::StreamKernel::kAdd,
                   workload::StreamKernel::kTriad}) {
        auto r = workload::runStream(*guest, {0, 1, 2, 3}, k, cfg);
        EXPECT_TRUE(r.correct) << workload::streamKernelName(k);
        EXPECT_GT(r.bytesPerCycle, 0.0);
    }
}

TEST(Stream, NumaOnDeliversMoreBandwidthThanOff)
{
    // The canonical NUMA measurement: local streams beat scattered ones.
    workload::StreamConfig cfg;
    cfg.elementsPerThread = 1 << 12;
    std::vector<GlobalTileId> tiles;
    for (std::uint32_t i = 0; i < 8; ++i)
        tiles.push_back((i % 4) * 12 + i / 4);

    platform::Prototype p_on(platform::PrototypeConfig::parse("4x1x12"));
    auto g_on = p_on.makeGuest(os::NumaMode::kOn);
    auto on = workload::runStream(*g_on, tiles,
                                  workload::StreamKernel::kTriad, cfg);

    platform::Prototype p_off(platform::PrototypeConfig::parse("4x1x12"));
    auto g_off = p_off.makeGuest(os::NumaMode::kOff);
    auto off = workload::runStream(*g_off, tiles,
                                   workload::StreamKernel::kTriad, cfg);

    EXPECT_TRUE(on.correct);
    EXPECT_TRUE(off.correct);
    EXPECT_GT(on.bytesPerCycle, off.bytesPerCycle * 1.3);
}

TEST(Stream, MoreThreadsMoreAggregateBandwidth)
{
    workload::StreamConfig cfg;
    cfg.elementsPerThread = 1 << 12;
    platform::Prototype p1(platform::PrototypeConfig::parse("4x1x12"));
    auto g1 = p1.makeGuest(os::NumaMode::kOn);
    auto one = workload::runStream(*g1, {0}, workload::StreamKernel::kCopy,
                                   cfg);
    platform::Prototype p8(platform::PrototypeConfig::parse("4x1x12"));
    auto g8 = p8.makeGuest(os::NumaMode::kOn);
    std::vector<GlobalTileId> tiles;
    for (std::uint32_t i = 0; i < 8; ++i)
        tiles.push_back((i % 4) * 12 + i / 4);
    auto eight = workload::runStream(*g8, tiles,
                                     workload::StreamKernel::kCopy, cfg);
    EXPECT_GT(eight.bytesPerCycle, one.bytesPerCycle * 3);
}

// ---------------- AXI-Lite crossbar ----------------

TEST(LiteCrossbar, RoutesWindowRelative)
{
    class Reg : public axi::LiteTarget
    {
      public:
        axi::Resp
        writeReg(const axi::LiteWrite &w) override
        {
            last = w.addr;
            value = w.data;
            return axi::Resp::kOkay;
        }
        axi::Resp
        readReg(Addr addr, std::uint32_t &data) override
        {
            last = addr;
            data = value;
            return axi::Resp::kOkay;
        }
        Addr last = 0;
        std::uint32_t value = 0;
    };

    Reg a;
    Reg b;
    axi::LiteCrossbar xbar;
    xbar.addWindow(0x1000, 0x100, &a, "a");
    xbar.addWindow(0x2000, 0x100, &b, "b");

    EXPECT_EQ(xbar.writeReg({0x1010, 42, 0xf}), axi::Resp::kOkay);
    EXPECT_EQ(a.last, 0x10u); // Window-relative address.
    EXPECT_EQ(a.value, 42u);

    std::uint32_t data = 0;
    EXPECT_EQ(xbar.readReg(0x2004, data), axi::Resp::kOkay);
    EXPECT_EQ(b.last, 0x4u);

    EXPECT_EQ(xbar.writeReg({0x3000, 1, 0xf}), axi::Resp::kDecErr);
    EXPECT_THROW(xbar.addWindow(0x1080, 0x100, &b, "overlap"),
                 FatalError);
}

} // namespace
} // namespace smappic
