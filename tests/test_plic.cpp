/**
 * @file
 * Tests for the PLIC: priorities, thresholds, enables, claim/complete,
 * level-triggered gateways, and integration with the interrupt
 * packetizer path.
 */

#include <gtest/gtest.h>

#include <vector>

#include "riscv/interrupts.hpp"
#include "riscv/plic.hpp"
#include "sim/log.hpp"

namespace smappic::riscv
{
namespace
{

TEST(Plic, BasicClaimComplete)
{
    PlicController plic(4, 2);
    plic.write(kPlicPriorityBase + 4 * 1, 5);      // src 1 prio 5.
    plic.write(kPlicEnableBase + 0, 1u << 1);      // hart 0 enables src 1.

    EXPECT_EQ(plic.bestPending(0), 0u);
    plic.setSourceLevel(1, true);
    EXPECT_EQ(plic.bestPending(0), 1u);
    EXPECT_EQ(plic.bestPending(1), 0u); // Hart 1 didn't enable it.

    EXPECT_EQ(plic.claim(0), 1u);
    EXPECT_EQ(plic.bestPending(0), 0u); // In service.
    plic.setSourceLevel(1, false);
    plic.complete(0, 1);
    EXPECT_EQ(plic.bestPending(0), 0u);
}

TEST(Plic, PriorityOrderingAndThreshold)
{
    PlicController plic(8, 1);
    plic.write(kPlicPriorityBase + 4 * 2, 3);
    plic.write(kPlicPriorityBase + 4 * 5, 7);
    plic.write(kPlicPriorityBase + 4 * 6, 7); // Tie with 5.
    plic.write(kPlicEnableBase, 0xff);

    plic.setSourceLevel(2, true);
    plic.setSourceLevel(5, true);
    plic.setSourceLevel(6, true);
    EXPECT_EQ(plic.bestPending(0), 5u); // Highest prio, lowest id on tie.

    // Threshold masks low-priority sources.
    plic.write(kPlicContextBase + 0, 6);
    EXPECT_EQ(plic.claim(0), 5u);
    EXPECT_EQ(plic.bestPending(0), 6u);
    EXPECT_EQ(plic.claim(0), 6u);
    EXPECT_EQ(plic.bestPending(0), 0u); // src 2 below threshold.
    plic.write(kPlicContextBase + 0, 0);
    EXPECT_EQ(plic.bestPending(0), 2u);
}

TEST(Plic, LevelTriggeredRelatchesAfterComplete)
{
    PlicController plic(2, 1);
    plic.write(kPlicPriorityBase + 4, 1);
    plic.write(kPlicEnableBase, 0x2);
    plic.setSourceLevel(1, true);
    EXPECT_EQ(plic.claim(0), 1u);
    // Device still asserting: completing re-latches pending.
    plic.write(kPlicContextBase + 4, 1); // Complete via MMIO.
    EXPECT_EQ(plic.bestPending(0), 1u);
    // Device deasserts; claim then complete clears it for good.
    EXPECT_EQ(plic.claim(0), 1u);
    plic.setSourceLevel(1, false);
    plic.complete(0, 1);
    EXPECT_EQ(plic.bestPending(0), 0u);
}

TEST(Plic, WireCallbackOnLevelChanges)
{
    PlicController plic(3, 2);
    std::vector<std::pair<std::uint32_t, bool>> edges;
    plic.setWireFn([&](std::uint32_t h, bool l) {
        edges.emplace_back(h, l);
    });
    plic.write(kPlicPriorityBase + 4 * 2, 1);
    plic.write(kPlicEnableBase + kPlicEnableStride, 1u << 2); // Hart 1.

    plic.setSourceLevel(2, true);
    ASSERT_EQ(edges.size(), 1u);
    EXPECT_EQ(edges[0], std::make_pair(1u, true));

    plic.claim(1);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[1], std::make_pair(1u, false));
}

TEST(Plic, ClaimViaMmioReadAndPendingBits)
{
    PlicController plic(4, 1);
    plic.write(kPlicPriorityBase + 4 * 3, 2);
    plic.write(kPlicEnableBase, 0x8);
    plic.setSourceLevel(3, true);
    EXPECT_EQ(plic.read(kPlicPendingBase), 0x8u);
    EXPECT_EQ(plic.read(kPlicContextBase + 4), 3u); // Claim.
    EXPECT_EQ(plic.read(kPlicPendingBase), 0x0u);
}

TEST(Plic, FeedsTheInterruptPacketizer)
{
    // PLIC wire changes ride the same NoC-packet path as the CLINT's
    // (section 3.3): external interrupts scale across tiles and nodes.
    std::vector<noc::Packet> sent;
    IrqPacketizer pkz(
        0, [&](const noc::Packet &p) { sent.push_back(p); },
        [](std::uint32_t hart) {
            return std::make_pair<NodeId, TileId>(hart / 4, hart % 4);
        });
    PlicController plic(2, 8);
    plic.setWireFn([&](std::uint32_t h, bool l) {
        pkz.onWireChange(h, kIrqMei, l);
    });
    plic.write(kPlicPriorityBase + 4, 1);
    plic.write(kPlicEnableBase + 6 * kPlicEnableStride, 0x2); // Hart 6.
    plic.setSourceLevel(1, true);

    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].dstNode, 1u);
    EXPECT_EQ(sent[0].dstTile, 2u);
    auto d = IrqDepacketizer::decode(sent[0]);
    EXPECT_EQ(d.irq, kIrqMei);
    EXPECT_TRUE(d.level);
}

TEST(Plic, RejectsBadGeometry)
{
    EXPECT_THROW(PlicController(0, 1), FatalError);
    EXPECT_THROW(PlicController(64, 1), FatalError);
    EXPECT_THROW(PlicController(4, 0), FatalError);
    PlicController plic(4, 1);
    EXPECT_THROW(plic.setSourceLevel(0, true), PanicError);
    EXPECT_THROW(plic.setSourceLevel(9, true), PanicError);
}

} // namespace
} // namespace smappic::riscv
