/**
 * @file
 * Tests for the RISC-V decoder, assembler and core: programs are assembled
 * from source, loaded into a flat test memory and executed, checking both
 * architectural results and timing behaviour (BHT, TLB, load latencies).
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hpp"
#include "riscv/assembler.hpp"
#include "riscv/core.hpp"
#include "riscv/isa.hpp"
#include "sim/log.hpp"
#include "support/flat_port.hpp"

namespace smappic::riscv
{
namespace
{

using test::FlatPort;
using test::loadProgram;

/** Assembles, runs to completion (ecall a7=93), returns the core. */
struct RunResult
{
    std::int64_t exitCode;
    Cycles cycles;
    std::uint64_t instret;
};

RunResult
runProgram(const std::string &src, FlatPort &port,
           std::uint64_t budget = 2'000'000)
{
    Assembler as;
    Program prog = as.assemble(src);
    loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    test::installExitHandler(core);
    HaltReason r = core.run(budget);
    EXPECT_EQ(r, HaltReason::kExited) << "program did not exit";
    return RunResult{core.exitCode(), core.cycles(), core.instret()};
}

RunResult
runProgram(const std::string &src)
{
    FlatPort port;
    return runProgram(src, port);
}

// ---------- decoder ----------

TEST(Decoder, BasicFormats)
{
    // addi x1, x2, -3
    DecodedInst d = decode(0xffd10093);
    EXPECT_EQ(d.op, Op::kAddi);
    EXPECT_EQ(d.rd, 1);
    EXPECT_EQ(d.rs1, 2);
    EXPECT_EQ(d.imm, -3);

    // add x3, x4, x5
    d = decode(0x005201b3);
    EXPECT_EQ(d.op, Op::kAdd);
    EXPECT_EQ(d.rd, 3);
    EXPECT_EQ(d.rs1, 4);
    EXPECT_EQ(d.rs2, 5);

    // lui x6, 0x12345
    d = decode(0x12345337);
    EXPECT_EQ(d.op, Op::kLui);
    EXPECT_EQ(d.imm, 0x12345000);

    // ecall / ebreak / mret / wfi
    EXPECT_EQ(decode(0x00000073).op, Op::kEcall);
    EXPECT_EQ(decode(0x00100073).op, Op::kEbreak);
    EXPECT_EQ(decode(0x30200073).op, Op::kMret);
    EXPECT_EQ(decode(0x10500073).op, Op::kWfi);
}

TEST(Decoder, IllegalEncodings)
{
    EXPECT_EQ(decode(0x00000000).op, Op::kIllegal);
    EXPECT_EQ(decode(0xffffffff).op, Op::kIllegal);
}

TEST(Decoder, ClassPredicates)
{
    EXPECT_TRUE(decode(0x0000b303).isLoad()); // ld
    EXPECT_TRUE(decode(0x0062b423).isStore()); // sd
    EXPECT_TRUE(decode(0x00628263).isBranch()); // beq
}

// ---------- assembler + execution ----------

TEST(AsmExec, ArithmeticChain)
{
    auto r = runProgram(R"(
_start:
    li a0, 10
    li a1, 32
    add a0, a0, a1    # 42
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 42);
}

TEST(AsmExec, Li64BitConstants)
{
    auto r = runProgram(R"(
_start:
    li t0, 0x123456789abcdef0
    li t1, 0x123456789abcdef0
    bne t0, t1, fail
    srli a0, t0, 32      # 0x12345678
    li t2, 0x12345678
    bne a0, t2, fail
    li a0, 0
    j done
fail:
    li a0, 1
done:
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, LoadsAndStoresAllWidths)
{
    auto r = runProgram(R"(
.data
buf: .space 64
.text
_start:
    la t0, buf
    li t1, -2
    sb t1, 0(t0)
    sh t1, 8(t0)
    sw t1, 16(t0)
    sd t1, 24(t0)
    lb a0, 0(t0)       # -2 sign extended
    lbu a1, 0(t0)      # 0xfe
    lh a2, 8(t0)
    lhu a3, 8(t0)      # 0xfffe
    lw a4, 16(t0)
    lwu a5, 16(t0)
    ld a6, 24(t0)
    # Check: a0 == -2, a1 == 0xfe, a3 == 0xfffe, a6 == -2.
    li t2, -2
    bne a0, t2, fail
    li t2, 0xfe
    bne a1, t2, fail
    li t2, 0xfffe
    bne a3, t2, fail
    li t2, -2
    bne a6, t2, fail
    bne a4, a6, fail   # lw sign-extends
    li a0, 0
    j done
fail:
    li a0, 1
done:
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, BranchesAndLoop)
{
    // Sum 1..100 = 5050; exit code 5050 % 256 checked via register instead.
    auto r = runProgram(R"(
_start:
    li t0, 0          # sum
    li t1, 1          # i
    li t2, 100
loop:
    add t0, t0, t1
    addi t1, t1, 1
    ble t1, t2, loop
    li t3, 5050
    sub a0, t0, t3    # 0 when correct
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, MulDivRemEdgeCases)
{
    auto r = runProgram(R"(
_start:
    li t0, -7
    li t1, 2
    div t2, t0, t1     # -3
    rem t3, t0, t1     # -1
    li t4, -3
    bne t2, t4, fail
    li t4, -1
    bne t3, t4, fail
    # Division by zero: quotient all ones, remainder = dividend.
    li t1, 0
    div t2, t0, t1
    li t4, -1
    bne t2, t4, fail
    rem t3, t0, t1
    bne t3, t0, fail
    # mulh of large values.
    li t0, 0x4000000000000000
    li t1, 4
    mulh t2, t0, t1    # == 1
    li t4, 1
    bne t2, t4, fail
    li a0, 0
    j done
fail:
    li a0, 1
done:
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, Word32Operations)
{
    auto r = runProgram(R"(
_start:
    li t0, 0x7fffffff
    addiw t1, t0, 1       # overflows to -2^31 (sign extended)
    li t2, -2147483648
    bne t1, t2, fail
    li t0, 0xffffffff
    srliw t1, t0, 4       # 0x0fffffff
    li t2, 0x0fffffff
    bne t1, t2, fail
    sraiw t1, t0, 4       # -1
    li t2, -1
    bne t1, t2, fail
    li a0, 0
    j done
fail:
    li a0, 1
done:
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, FunctionCallAndStack)
{
    auto r = runProgram(R"(
_start:
    li sp, 0x80800000
    li a0, 5
    call square
    # a0 = 25
    li t0, 25
    sub a0, a0, t0
    li a7, 93
    ecall
square:
    addi sp, sp, -16
    sd ra, 8(sp)
    mul a0, a0, a0
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, AtomicsAmoAndLrSc)
{
    auto r = runProgram(R"(
.data
.align 3
counter: .dword 10
.text
_start:
    la t0, counter
    li t1, 5
    amoadd.d t2, t1, (t0)   # t2 = 10, mem = 15
    li t3, 10
    bne t2, t3, fail
    ld t4, 0(t0)
    li t3, 15
    bne t4, t3, fail
    # amomax
    li t1, 100
    amomax.d t2, t1, (t0)   # mem = 100
    ld t4, 0(t0)
    bne t4, t1, fail
    # LR/SC success path.
retry:
    lr.d t2, (t0)
    addi t2, t2, 1
    sc.d t5, t2, (t0)
    bnez t5, retry
    ld t4, 0(t0)
    li t3, 101
    bne t4, t3, fail
    li a0, 0
    j done
fail:
    li a0, 1
done:
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, CsrAccessAndHartid)
{
    auto r = runProgram(R"(
_start:
    csrr a0, 0xf14        # mhartid == 0
    csrw 0x340, a0        # mscratch
    li t0, 77
    csrw 0x340, t0
    csrr a0, 0x340        # 77
    li t1, 77
    sub a0, a0, t1
    li a7, 93
    ecall
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, TrapHandlerEcall)
{
    // Install a trap handler, take an unhandled ecall from M-mode,
    // observe mcause == 11 and mret back.
    auto r = runProgram(R"(
_start:
    la t0, handler
    csrw 0x305, t0      # mtvec
    ecall               # traps (no handler registered for a7=0)
after:
    li a7, 93
    ecall               # exits via the test's ecall hook? No: a7=93.
    j after
handler:
    csrr t1, 0x342      # mcause == 11 (ecall from M)
    li t2, 11
    bne t1, t2, bad
    csrr t3, 0x341      # mepc
    addi t3, t3, 4
    csrw 0x341, t3
    li a0, 0
    mret
bad:
    li a0, 1
    csrr t3, 0x341
    addi t3, t3, 4
    csrw 0x341, t3
    mret
)");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(AsmExec, IllegalInstructionTraps)
{
    FlatPort port;
    Assembler as;
    Program prog = as.assemble(R"(
_start:
    la t0, handler
    csrw 0x305, t0
    .word 0xffffffff    # illegal
    li a0, 99
    li a7, 93
    ecall
handler:
    csrr a0, 0x342      # mcause == 2
    li a7, 93
    ecall
)");
    loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    core.setEcallHandler([](RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(static_cast<std::int64_t>(c.reg(10)));
            return true;
        }
        return false;
    });
    core.run(1000);
    EXPECT_TRUE(core.exited());
    EXPECT_EQ(core.exitCode(), 2); // kCauseIllegalInst.
}

TEST(AsmExec, EbreakHalts)
{
    FlatPort port;
    Assembler as;
    Program prog = as.assemble("_start:\n ebreak\n");
    loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    EXPECT_EQ(core.run(100), HaltReason::kEbreak);
}

// ---------- timing ----------

TEST(CoreTiming, BranchPredictorLearnsLoop)
{
    // A long loop: after warmup the backward branch predicts taken, so
    // cycles per iteration approach the instruction count.
    FlatPort port;
    auto r = runProgram(R"(
_start:
    li t0, 0
    li t1, 1000
loop:
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
)", port);
    // 2 instructions per iteration; mispredicts only at warmup and exit.
    double cpi = static_cast<double>(r.cycles) /
                 static_cast<double>(r.instret);
    EXPECT_LT(cpi, 1.6);
}

TEST(CoreTiming, MemoryLatencyShowsUpInCycles)
{
    FlatPort fast(1);
    FlatPort slow(100);
    const char *src = R"(
.data
buf: .space 8
.text
_start:
    la t0, buf
    li t1, 0
    li t2, 100
loop:
    ld t3, 0(t0)
    addi t1, t1, 1
    blt t1, t2, loop
    li a0, 0
    li a7, 93
    ecall
)";
    auto rf = runProgram(src, fast);
    auto rs = runProgram(src, slow);
    EXPECT_GT(rs.cycles, rf.cycles + 99 * 90);
}

TEST(CoreTiming, WfiStallsUntilInterrupt)
{
    FlatPort port;
    Assembler as;
    Program prog = as.assemble(R"(
_start:
    wfi
    li a0, 7
    li a7, 93
    ecall
)");
    loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    core.setEcallHandler([](RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(static_cast<std::int64_t>(c.reg(10)));
            return true;
        }
        return false;
    });
    EXPECT_EQ(core.run(100), HaltReason::kWfi);
    // Raise a timer interrupt line: wfi completes even with MIE=0
    // because wfi resumes on pending (not enabled) interrupts.
    core.setCsr(kCsrMie, 1ULL << kIrqMti);
    core.setIrqLine(kIrqMti, true);
    core.setCsr(kCsrMie, 0); // Keep it pending-only so no trap is taken.
    EXPECT_EQ(core.run(100), HaltReason::kWfi); // mie=0: still waits.
    core.setCsr(kCsrMie, 1ULL << kIrqMti);
    core.setCsr(kCsrMtvec, 0x80000000); // Handler = _start; irrelevant.
    // With the interrupt enabled the core traps instead of exiting; just
    // check it makes progress now.
    Cycles before = core.cycles();
    core.run(10);
    EXPECT_GT(core.cycles(), before);
}

// ---------- Sv39 ----------

TEST(Sv39, IdentityMapTranslatesAndFaults)
{
    FlatPort port;
    // Build a one-level gigapage table at 0x1000 mapping VA 0 -> PA 0
    // (R/W/X/U) in entry 0 and leaving entry 1 invalid.
    std::uint64_t root = 0x1000;
    std::uint64_t pte0 = (0ULL << 10) | 0xdf; // V R W X U A D, ppn=0.
    port.memory.store(root + 0, 8, pte0);
    // Identity gigapage for the code region at 0x80000000 (VPN[2] = 2).
    std::uint64_t pte2 = ((0x80000000ULL >> 12) << 10) | 0xdf;
    port.memory.store(root + 16, 8, pte2);

    Assembler as;
    Program prog = as.assemble(R"(
_start:
    la t0, handler
    csrw 0x305, t0        # mtvec
    # satp: mode=8, ppn = 0x1 (root at 0x1000).
    li t1, 0x8000000000000001
    csrw 0x180, t1
    # Drop to U-mode at user_code: mstatus.MPP=0, mepc=user_code.
    la t2, user_code
    csrw 0x341, t2        # mepc
    csrr t3, 0x300
    li t4, 0x1800
    not t4, t4
    and t3, t3, t4        # clear MPP
    csrw 0x300, t3
    mret
user_code:
    # Runs translated (identity gigapage). Touch memory, then fault by
    # loading from the second (unmapped) gigapage.
    li t0, 0x100000
    li t1, 1234
    sd t1, 0(t0)
    ld t2, 0(t0)
    bne t1, t2, user_fail
    li t0, 0x40000000     # 1 GiB: unmapped -> load page fault (13).
    ld t3, 0(t0)
user_fail:
    .word 0xffffffff
handler:
    csrr a0, 0x342        # mcause
    li a7, 93
    ecall
)");
    loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    core.setEcallHandler([](RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(static_cast<std::int64_t>(c.reg(10)));
            return true;
        }
        return false;
    });
    core.run(10000);
    ASSERT_TRUE(core.exited());
    EXPECT_EQ(core.exitCode(),
              static_cast<std::int64_t>(kCauseLoadPageFault));
}

// ---------- interrupts end to end ----------

TEST(Interrupts, TimerInterruptVectorsToHandler)
{
    FlatPort port;
    Assembler as;
    Program prog = as.assemble(R"(
_start:
    la t0, handler
    csrw 0x305, t0
    li t1, 0x80          # mie.MTIE
    csrw 0x304, t1
    csrr t2, 0x300
    ori t2, t2, 8        # mstatus.MIE
    csrw 0x300, t2
spin:
    j spin
handler:
    csrr a0, 0x342       # mcause = interrupt bit | 7
    li a7, 93
    ecall
)");
    loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    core.setEcallHandler([](RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(static_cast<std::int64_t>(c.reg(10)));
            return true;
        }
        return false;
    });
    core.run(50); // Enter the spin loop.
    EXPECT_FALSE(core.exited());
    core.setIrqLine(kIrqMti, true);
    core.run(100);
    ASSERT_TRUE(core.exited());
    EXPECT_EQ(static_cast<std::uint64_t>(core.exitCode()),
              kInterruptBit | kIrqMti);
}

TEST(Assembler, ErrorsAreLineNumbered)
{
    Assembler as;
    try {
        as.assemble("_start:\n  bogus x1, x2\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
    EXPECT_THROW(as.assemble("_start:\n  addi x1, x2, 10000\n"), FatalError);
    EXPECT_THROW(as.assemble("lab:\nlab:\n"), FatalError);
}

TEST(Assembler, DataDirectivesAndSymbols)
{
    Assembler as;
    Program p = as.assemble(R"(
.data
vals: .word 1, 2, 3
str:  .asciiz "hi"
.align 3
big:  .dword 0xdeadbeefcafebabe
.text
_start:
    nop
)");
    EXPECT_EQ(p.symbol("vals") + 12, p.symbol("str"));
    EXPECT_EQ(p.symbol("big") % 8, 0u);
    // Find the data segment and verify contents.
    bool checked = false;
    for (const auto &seg : p.segments) {
        if (seg.base != 0x80400000)
            continue;
        EXPECT_EQ(seg.bytes[0], 1);
        EXPECT_EQ(seg.bytes[4], 2);
        std::size_t stroff = p.symbol("str") - seg.base;
        EXPECT_EQ(seg.bytes[stroff], 'h');
        EXPECT_EQ(seg.bytes[stroff + 1], 'i');
        EXPECT_EQ(seg.bytes[stroff + 2], 0);
        checked = true;
    }
    EXPECT_TRUE(checked);
}

} // namespace
} // namespace smappic::riscv
