/**
 * @file
 * Tests of the observability layer: Tracer ring/merge semantics, the
 * binary container and Chrome JSON exporter, and the platform-level
 * contract that binary traces are bit-identical across phased worker
 * counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "obs/tracer.hpp"
#include "platform/prototype.hpp"
#include "sim/log.hpp"
#include "sim/parallel.hpp"

namespace smappic::obs
{
namespace
{

TraceConfig
enabledConfig(std::size_t capacity = 64)
{
    TraceConfig cfg;
    cfg.enabled = true;
    cfg.ringCapacity = capacity;
    return cfg;
}

TraceEvent
eventAt(EventKind kind, Cycles cycle, std::uint16_t node = 0)
{
    TraceEvent ev = event(kind);
    ev.cycle = cycle;
    ev.node = node;
    return ev;
}

TEST(Tracer, DisabledTracerIsInert)
{
    Tracer t;
    t.configure(TraceConfig{}, 2);
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.handleFor(Component::kCache), nullptr);
    EXPECT_EQ(t.handleFor(Component::kCore), nullptr);
    t.record(eventAt(EventKind::kCacheMiss, 1));
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_TRUE(t.merged().empty());
}

TEST(Tracer, HandleForRespectsComponentMask)
{
    Tracer t;
    TraceConfig cfg = enabledConfig();
    cfg.components = componentBit(Component::kNoc) |
                     componentBit(Component::kCore);
    t.configure(cfg, 1);
    EXPECT_EQ(t.handleFor(Component::kNoc), &t);
    EXPECT_EQ(t.handleFor(Component::kCore), &t);
    EXPECT_EQ(t.handleFor(Component::kCache), nullptr);
    EXPECT_EQ(t.handleFor(Component::kPcie), nullptr);
    EXPECT_EQ(t.handleFor(Component::kBridge), nullptr);
}

TEST(Tracer, EveryKindMapsToItsComponent)
{
    for (std::uint32_t k = 0; k < kNumEventKinds; ++k) {
        auto kind = static_cast<EventKind>(k);
        TraceEvent ev = event(kind);
        EXPECT_EQ(ev.kind, k);
        EXPECT_EQ(ev.component,
                  static_cast<std::uint8_t>(kindComponent(kind)));
        EXPECT_NE(kindName(kind), nullptr);
        EXPECT_NE(componentName(kindComponent(kind)), nullptr);
    }
}

TEST(Tracer, FullRingOverwritesOldestAndCountsDrops)
{
    Tracer t;
    t.configure(enabledConfig(4), 1);
    for (Cycles c = 0; c < 6; ++c)
        t.record(eventAt(EventKind::kNocHop, c));
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.heldOn(0), 4u);
    EXPECT_EQ(t.dropped(), 2u);
    EXPECT_EQ(t.droppedOn(0), 2u);
    std::vector<TraceEvent> got = t.merged();
    ASSERT_EQ(got.size(), 4u);
    // Oldest retained first: cycles 2..5.
    for (std::size_t i = 0; i < got.size(); ++i)
        EXPECT_EQ(got[i].cycle, i + 2);
}

TEST(Tracer, SerialContextUsesEventNodeTag)
{
    Tracer t;
    t.configure(enabledConfig(), 2);
    t.record(eventAt(EventKind::kCacheMiss, 1, 0));
    t.record(eventAt(EventKind::kCacheMiss, 2, 1));
    // Off-range tags (e.g. an FPGA id in a weird config) clamp to the
    // last ring instead of dying.
    t.record(eventAt(EventKind::kPcieWrite, 3, 7));
    EXPECT_EQ(t.heldOn(0), 1u);
    EXPECT_EQ(t.heldOn(1), 2u);
    std::vector<TraceEvent> got = t.merged();
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].cycle, 1u);
    EXPECT_EQ(got[1].cycle, 2u);
    EXPECT_EQ(got[2].cycle, 3u);
}

TEST(Tracer, NodePhaseRecordsLandInActingNodesRing)
{
    Tracer t;
    t.configure(enabledConfig(), 2);
    {
        // Inside node 1's phase even node-0-tagged events stay in ring 1:
        // one writer per ring per phase is the determinism invariant.
        sim::ActingNodeScope acting(1);
        t.record(eventAt(EventKind::kNocPath, 5, 0));
    }
    EXPECT_EQ(t.heldOn(0), 0u);
    EXPECT_EQ(t.heldOn(1), 1u);
}

TEST(Tracer, ClearKeepsConfiguration)
{
    Tracer t;
    t.configure(enabledConfig(), 2);
    t.record(eventAt(EventKind::kCoreCommit, 1));
    t.clear();
    EXPECT_TRUE(t.enabled());
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_TRUE(t.merged().empty());
    t.record(eventAt(EventKind::kCoreCommit, 2));
    EXPECT_EQ(t.recorded(), 1u);
}

TEST(TraceIo, BinaryRoundTripPreservesEverything)
{
    Tracer t;
    t.configure(enabledConfig(4), 2);
    TraceEvent ev = event(EventKind::kCacheMiss);
    ev.cycle = 0x1122334455667788ULL;
    ev.arg = 0x8000abcd;
    ev.duration = 97;
    ev.extra = 3;
    ev.node = 0;
    ev.tile = 1;
    ev.flags = 1;
    t.record(ev);
    for (Cycles c = 0; c < 6; ++c)
        t.record(eventAt(EventKind::kCoreCommit, c, 1)); // Wraps ring 1.

    std::ostringstream os;
    writeBinary(t, os);
    std::istringstream is(os.str());
    TraceData td = readBinary(is);

    EXPECT_EQ(td.version, kTraceFormatVersion);
    EXPECT_EQ(td.nodes, 2u);
    ASSERT_EQ(td.perNodeHeld.size(), 2u);
    EXPECT_EQ(td.perNodeHeld[0], 1u);
    EXPECT_EQ(td.perNodeHeld[1], 4u);
    EXPECT_EQ(td.perNodeDropped[0], 0u);
    EXPECT_EQ(td.perNodeDropped[1], 2u);
    EXPECT_EQ(td.dropped(), 2u);
    ASSERT_EQ(td.events.size(), 5u);
    EXPECT_EQ(td.events[0].cycle, ev.cycle);
    EXPECT_EQ(td.events[0].arg, ev.arg);
    EXPECT_EQ(td.events[0].duration, ev.duration);
    EXPECT_EQ(td.events[0].extra, ev.extra);
    EXPECT_EQ(td.events[0].tile, ev.tile);
    EXPECT_EQ(td.events[0].flags, ev.flags);
    EXPECT_EQ(td.events[0].kind,
              static_cast<std::uint8_t>(EventKind::kCacheMiss));
    EXPECT_EQ(td.events[1].cycle, 2u); // Ring 1's oldest retained event.
}

TEST(TraceIo, RejectsMalformedInput)
{
    std::istringstream bad_magic("XXXX----------------");
    EXPECT_THROW(readBinary(bad_magic), FatalError);

    Tracer t;
    t.configure(enabledConfig(), 1);
    t.record(eventAt(EventKind::kNocHop, 1));
    std::ostringstream os;
    writeBinary(t, os);
    std::string bytes = os.str();
    std::istringstream truncated(bytes.substr(0, bytes.size() - 7));
    EXPECT_THROW(readBinary(truncated), FatalError);
}

/** The --window predicate shared with trace_dump is half-open [A, B):
 *  the start cycle is in, the end cycle is out, adjacent windows tile
 *  a trace exactly, and an empty/inverted window selects nothing. */
TEST(TraceIo, WindowPredicateIsHalfOpenOnBoundaryCycles)
{
    EXPECT_TRUE(cycleInWindow(10, 10, 20));  // from is inclusive
    EXPECT_TRUE(cycleInWindow(19, 10, 20));  // last cycle inside
    EXPECT_FALSE(cycleInWindow(20, 10, 20)); // to is exclusive
    EXPECT_FALSE(cycleInWindow(9, 10, 20));

    // Adjacent windows <A:B> <B:C> partition: every boundary cycle is
    // claimed by exactly one of the two.
    for (Cycles c = 8; c <= 22; ++c)
        EXPECT_EQ(cycleInWindow(c, 8, 22),
                  cycleInWindow(c, 8, 15) != cycleInWindow(c, 15, 22))
            << "cycle " << c;

    EXPECT_FALSE(cycleInWindow(10, 10, 10)); // empty window
    EXPECT_FALSE(cycleInWindow(10, 20, 10)); // inverted window
    EXPECT_TRUE(cycleInWindow(0, 0, 1));     // cycle 0 is reachable
}

TEST(TraceIo, ChromeJsonEmitsSlicesAndInstants)
{
    TraceEvent slice = event(EventKind::kCacheMiss);
    slice.cycle = 100;
    slice.duration = 42;
    slice.node = 1;
    slice.tile = 3;
    TraceEvent instant = event(EventKind::kNocHop);
    instant.cycle = 7;

    std::ostringstream os;
    writeChromeJson({slice, instant}, os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"cacheMiss\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":42"), std::string::npos);
    EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
    EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_EQ(json.find(",}"), std::string::npos);
    EXPECT_EQ(json.find(",]"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

} // namespace
} // namespace smappic::obs

namespace smappic::platform
{
namespace
{

/** The parallel-executor test's cross-node ping-pong (see
 *  test_parallel_executor.cpp for the walkthrough). */
constexpr const char *kPingPongSource = R"(
_start:
    csrr t0, 0xf14
    li t1, 2
    beq t0, zero, pinger
    beq t0, t1, ponger
compute:
    li t2, 0
    li t3, 0
    li t4, 2000
loop:
    add t3, t3, t2
    addi t2, t2, 1
    bne t2, t4, loop
    la t5, sum
    sd t3, 0(t5)
    andi a0, t3, 0x3f
    li a7, 93
    ecall
pinger:
    la t0, h0
    csrw 0x305, t0
    li t2, 0x8
    csrw 0x304, t2
    csrr t3, 0x300
    ori t3, t3, 8
    csrw 0x300, t3
    li t1, 0x02000008
    li t2, 1
    sw t2, 0(t1)
w0: wfi
    j w0
h0:
    li a0, 5
    li a7, 93
    ecall
ponger:
    la t0, h1
    csrw 0x305, t0
    li t2, 0x8
    csrw 0x304, t2
    csrr t3, 0x300
    ori t3, t3, 8
    csrw 0x300, t3
w1: wfi
    j w1
h1:
    la t3, flag
    li t4, 1
    sd t4, 0(t3)
    li t1, 0x02000000
    li t2, 1
    sw t2, 0(t1)
    li a0, 7
    li a7, 93
    ecall

.data
.align 3
flag: .dword 0
sum:  .dword 0
)";

/** Runs the ping-pong with tracing on and returns the binary trace. */
std::string
tracedPingPong(std::uint32_t threads, Cycles quantum)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = quantum;
    cfg.trace.enabled = true;
    Prototype proto(cfg);
    proto.loadSourceReplicated(kPingPongSource);
    proto.runCores({0, 1, 2, 3}, 500000);
    std::ostringstream os;
    obs::writeBinary(proto.tracer(), os);
    return os.str();
}

TEST(PlatformTrace, CapturesCoreCacheAndNocEvents)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.trace.enabled = true;
    Prototype proto(cfg);
    proto.loadSourceReplicated(kPingPongSource);
    proto.runCores({0, 1, 2, 3}, 500000);

    EXPECT_GT(proto.tracer().recorded(), 0u);
    std::uint64_t perKind[obs::kNumEventKinds] = {};
    for (const obs::TraceEvent &ev : proto.tracer().merged()) {
        ASSERT_LT(ev.kind, obs::kNumEventKinds);
        perKind[ev.kind] += 1;
    }
    auto count = [&](obs::EventKind k) {
        return perKind[static_cast<std::uint32_t>(k)];
    };
    EXPECT_GT(count(obs::EventKind::kCoreCommit), 0u);
    EXPECT_GT(count(obs::EventKind::kCoreStall), 0u);
    EXPECT_GT(count(obs::EventKind::kCacheMiss), 0u);
    EXPECT_GT(count(obs::EventKind::kNocPath), 0u);
}

TEST(PlatformTrace, BridgeTrafficEmitsBridgeAndPcieEvents)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.trace.enabled = true;
    Prototype proto(cfg);
    proto.bridge(1).setDeliverFn([](const noc::Packet &) {});

    noc::Packet p;
    p.noc = noc::NocIndex::kNoc1;
    p.srcNode = 0;
    p.srcTile = 0;
    p.dstNode = 1;
    p.dstTile = 1;
    p.type = noc::MsgType::kDataResp;
    p.addr = 0x80001000;
    p.payload.push_back(7);
    // Enough packets to outrun the per-NoC credit window, so the sender
    // must issue credit-return reads across the fabric.
    for (std::uint64_t i = 0; i < 40; ++i)
        proto.bridge(0).sendPacket(p);
    proto.eventQueue().run();

    std::uint64_t perKind[obs::kNumEventKinds] = {};
    for (const obs::TraceEvent &ev : proto.tracer().merged())
        perKind[ev.kind] += 1;
    auto count = [&](obs::EventKind k) {
        return perKind[static_cast<std::uint32_t>(k)];
    };
    EXPECT_GT(count(obs::EventKind::kBridgeTx), 0u);
    EXPECT_GT(count(obs::EventKind::kBridgeRx), 0u);
    EXPECT_GT(count(obs::EventKind::kPcieWrite), 0u);
    // Credit-return polls show up as fabric reads.
    EXPECT_GT(count(obs::EventKind::kPcieRead), 0u);
}

TEST(PlatformTrace, ComponentMaskLimitsWhatIsRecorded)
{
    PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
    cfg.trace.enabled = true;
    cfg.trace.components = obs::componentBit(obs::Component::kCache);
    Prototype proto(cfg);
    proto.loadSource("_start: li a0, 0\n li a7, 93\n ecall\n");
    proto.runCore(0);

    for (const obs::TraceEvent &ev : proto.tracer().merged()) {
        EXPECT_EQ(ev.component,
                  static_cast<std::uint8_t>(obs::Component::kCache));
    }
}

TEST(PlatformTrace, WriteTraceProducesReadableFile)
{
    PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
    cfg.trace.enabled = true;
    cfg.trace.path = "test_tracer_out.smtr";
    Prototype proto(cfg);
    proto.loadSource("_start: li a0, 0\n li a7, 93\n ecall\n");
    proto.runCore(0);
    proto.writeTrace();

    std::ifstream is(cfg.trace.path, std::ios::binary);
    ASSERT_TRUE(is.good());
    obs::TraceData td = obs::readBinary(is);
    EXPECT_EQ(td.nodes, 1u);
    EXPECT_EQ(td.events.size(), proto.tracer().merged().size());
    std::remove(cfg.trace.path.c_str());
}

TEST(PlatformTrace, WriteTraceWithoutTracingFails)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    EXPECT_THROW(proto.writeTrace("nowhere.smtr"), FatalError);
}

TEST(PlatformTrace, BinaryTraceBitIdenticalAcrossWorkerCounts)
{
    // The tentpole acceptance contract: same seed, same quantum, phased
    // workers in {1, 2, 4} — the serialized trace must match byte for
    // byte, not just event for event.
    std::string ref = tracedPingPong(1, 63);
    EXPECT_FALSE(ref.empty());
    for (std::uint32_t threads : {2u, 4u}) {
        std::string got = tracedPingPong(threads, 63);
        EXPECT_EQ(got, ref) << "trace diverged at " << threads
                            << " workers";
    }
}

} // namespace
} // namespace smappic::platform
