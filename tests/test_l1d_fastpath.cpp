/**
 * @file
 * L1D fast-path tests: side-effect parity of MemPort::loadFastHit /
 * storeFastHit against the full CoherentSystem::access() walk. The
 * fast path must be observably invisible — stats, traces and SMCK
 * checkpoints byte-identical with the fast path on or off, across the
 * sequential and phased engines at 1/2/4 workers — including the
 * bail-heavy regimes where the audit looked for double side effects:
 * shared-line bounces (the fast path attempts and bails mid-run),
 * armed test mutations and attached coherence observers (the fast path
 * must not engage at all).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "cache/coherent_system.hpp"
#include "obs/trace_io.hpp"
#include "platform/prototype.hpp"
#include "snap/snapshot.hpp"

namespace smappic
{
namespace
{

namespace fs = std::filesystem;

fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("l1dfp_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                     std::istreambuf_iterator<char>());
}

/** Private-line streaming plus a shared-line RMW every iteration: the
 *  private slots keep the fast path engaged (steady-state L1D/BPC-M
 *  hits) while the shared line bounces between harts, forcing the fast
 *  path to attempt and bail around every recall. All access widths are
 *  naturally aligned; sub-dword widths (lb/lh/lw, sb/sh/sw) keep the
 *  width plumbing honest. */
constexpr const char *kShareMixSource = R"(
_start:
    csrr t0, 0xf14
    andi t0, t0, 3
    slli t1, t0, 7       # 128-byte private stride per hart
    la t6, buf
    add t6, t6, t1
    la a5, shared
    li t2, 0
loop:
    ld t3, 0(t6)
    add t3, t3, t2
    sd t3, 0(t6)
    lw t4, 8(t6)
    addw t4, t4, t3
    sw t4, 8(t6)
    lh t5, 12(t6)
    sh t5, 12(t6)
    lb a1, 14(t6)
    sb a1, 14(t6)
    ld a2, 0(a5)         # shared-line bounce
    add a2, a2, t3
    sd a2, 0(a5)
    addi t2, t2, 1
    j loop

.data
.align 7
buf:    .dword 1
        .dword 2
        .dword 3
        .dword 4
.align 7
        .dword 5
        .dword 6
        .dword 7
        .dword 8
.align 7
        .dword 9
        .dword 10
        .dword 11
        .dword 12
.align 7
        .dword 13
        .dword 14
        .dword 15
        .dword 16
.align 7
shared: .dword 100
)";

platform::PrototypeConfig
mixConfig(bool fastPath, std::uint32_t threads)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("2x1x2");
    cfg.core.dataFastPath = fastPath;
    cfg.parallel.threads = threads;
    if (threads > 0)
        cfg.parallel.quantum = 63; // threads == 0: sequential engine.
    return cfg;
}

struct Surface
{
    std::string stats;
    std::string trace;
    std::string snapshot;
};

Surface
runSurface(bool fastPath, std::uint32_t threads, const fs::path &dir)
{
    platform::PrototypeConfig cfg = mixConfig(fastPath, threads);
    if (threads == 0) {
        cfg.parallel.threads = 1;
        cfg.parallel.quantum = 63;
    }
    cfg.trace.enabled = true;
    platform::Prototype proto(cfg);
    proto.loadSourceReplicated(kShareMixSource);
    proto.runCores({0, 1, 2, 3}, 20'000);

    Surface out;
    std::ostringstream stats;
    proto.stats().dump(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    obs::writeBinary(proto.tracer(), trace);
    out.trace = trace.str();
    std::string snap = (dir / "surface.smck").string();
    proto.checkpoint(snap);
    auto bytes = slurp(snap);
    out.snapshot.assign(bytes.begin(), bytes.end());
    return out;
}

TEST(L1dFastPathIdentity, StatsTraceAndCheckpointMatchOffAcrossWorkers)
{
    fs::path dir = scratchDir("surface");
    Surface ref = runSurface(true, 1, dir);
    EXPECT_FALSE(ref.stats.empty());
    EXPECT_FALSE(ref.trace.empty());
    EXPECT_FALSE(ref.snapshot.empty());
    for (bool fastPath : {true, false}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            if (fastPath && threads == 1)
                continue; // The reference itself.
            Surface got = runSurface(fastPath, threads, dir);
            EXPECT_EQ(got.stats, ref.stats)
                << "fastpath " << fastPath << ", " << threads << " workers";
            EXPECT_EQ(got.trace == ref.trace, true)
                << "fastpath " << fastPath << ", " << threads << " workers";
            EXPECT_EQ(got.snapshot == ref.snapshot, true)
                << "fastpath " << fastPath << ", " << threads << " workers";
        }
    }
}

platform::PrototypeConfig
resumeConfig(bool fastPath, const std::string &dir)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("2x1x2");
    cfg.core.dataFastPath = fastPath;
    cfg.parallel.threads = 2;
    cfg.parallel.quantum = 63;
    cfg.snapshot.interval = 4000;
    cfg.snapshot.dir = dir;
    cfg.snapshot.keep = 0;
    return cfg;
}

TEST(L1dFastPathIdentity, CheckpointsInterchangeBetweenOnAndOff)
{
    // A fast-path-on run's mid-run checkpoint restores into a
    // fast-path-off prototype (and the final states match byte for
    // byte): the fast path is pure replay of the hit path, outside the
    // checkpoint and outside the config fingerprint.
    fs::path dir_a = scratchDir("interchange_a");
    fs::path dir_b = scratchDir("interchange_b");

    platform::Prototype a(resumeConfig(true, dir_a.string()));
    a.loadSourceReplicated(kShareMixSource);
    a.runCores({0, 1, 2, 3}, 30'000);
    std::string final_a = (dir_a / "final.smck").string();
    a.checkpoint(final_a);

    auto mids = snap::listCheckpoints(dir_a.string());
    ASSERT_GE(mids.size(), 2u) << "workload too short to checkpoint";

    platform::Prototype b(resumeConfig(false, dir_b.string()));
    b.loadSourceReplicated(kShareMixSource);
    b.restore(mids[mids.size() / 2]);
    b.runCores({0, 1, 2, 3}, 30'000);
    std::string final_b = (dir_b / "final.smck").string();
    b.checkpoint(final_b);

    EXPECT_EQ(slurp(final_a), slurp(final_b));
}

// ------------------------------------------ bail-parity (audit pins)

/** Audit pin: a bailing fast-path attempt must leave no side effect
 *  behind before the slow path re-runs the same access. The shared
 *  line bounces between harts, so store attempts bail on every
 *  post-recall iteration; any LRU touch or counter bump leaked by a
 *  failed attempt would shift the stats dump. */
TEST(L1dFastPathBail, SharedLineBounceStatsMatchOff)
{
    auto dumpFor = [](bool fastPath) {
        platform::Prototype proto(mixConfig(fastPath, 0));
        proto.loadSourceReplicated(kShareMixSource);
        proto.runCores({0, 1, 2, 3}, 40'000);
        std::ostringstream os;
        proto.stats().dump(os);
        return os.str();
    };
    EXPECT_EQ(dumpFor(true), dumpFor(false));
}

/** Audit pin: an armed TestMutation must force every access down the
 *  slow path (the stale-copy bookkeeping lives there), and the armed
 *  runs must be stats-identical with the fast path on or off. */
TEST(L1dFastPathBail, ArmedMutationStatsMatchOff)
{
    auto runFor = [](bool fastPath) {
        platform::Prototype proto(mixConfig(fastPath, 0));
        riscv::Program prog = proto.loadSourceReplicated(kShareMixSource);
        Addr shared = 0;
        for (const auto &sym : prog.symbols) {
            if (sym.first == "shared")
                shared = sym.second;
        }
        EXPECT_NE(shared, 0u);
        proto.memorySystem().setTestMutation(
            cache::TestMutation::kLostInvalidation, shared);
        proto.runCores({0, 1, 2, 3}, 40'000);
        std::ostringstream os;
        proto.stats().dump(os);
        return std::make_pair(os.str(),
                              proto.memorySystem().staleCopyActive());
    };
    auto on = runFor(true);
    auto off = runFor(false);
    EXPECT_EQ(on.first, off.first);
    EXPECT_EQ(on.second, off.second);
}

/** Audit pin: with a coherence checker attached the fast path must not
 *  engage (observers contract to see full transitions), and the run
 *  stays stats-identical and violation-free either way. */
TEST(L1dFastPathBail, AttachedCheckerStatsMatchOff)
{
    auto runFor = [](bool fastPath) {
        platform::PrototypeConfig cfg = mixConfig(fastPath, 0);
        cfg.check.enabled = true;
        platform::Prototype proto(cfg);
        proto.loadSourceReplicated(kShareMixSource);
        proto.runCores({0, 1, 2, 3}, 40'000);
        EXPECT_EQ(proto.checker()->violations().size(), 0u);
        std::ostringstream os;
        proto.stats().dump(os);
        return os.str();
    };
    EXPECT_EQ(runFor(true), runFor(false));
}

/** Direct unit probe of the bail contract: a missing line returns
 *  false having mutated nothing — the subsequent access() must behave
 *  exactly as on a system that never saw the fast-path attempt. */
TEST(L1dFastPathUnit, FailedAttemptLeavesNoTrace)
{
    auto build = [] {
        cache::Geometry geo;
        geo.nodes = 1;
        geo.tilesPerNode = 2;
        geo.dramBase = 0x8000'0000;
        geo.memPerNode = 1ull << 20;
        geo.llcSliceBytes = 1ull << 16;
        return geo;
    };
    sim::StatRegistry stats_a;
    sim::StatRegistry stats_b;
    cache::TimingParams timing;
    cache::CoherentSystem a(build(), timing,
                            cache::HomingPolicy::kAddressNode, &stats_a);
    cache::CoherentSystem b(build(), timing,
                            cache::HomingPolicy::kAddressNode, &stats_b);

    // `a` suffers a barrage of failed fast-path attempts, `b` none.
    Cycles lat = 0;
    for (int i = 0; i < 16; ++i) {
        EXPECT_FALSE(a.loadFastHit(0, 0x8000'0000, lat));
        EXPECT_FALSE(a.storeFastHit(0, 0x8000'0000, lat));
    }

    // Identical access sequences from here on must produce identical
    // timing and identical stats on both systems.
    for (cache::AccessType t :
         {cache::AccessType::kLoad, cache::AccessType::kStore,
          cache::AccessType::kLoad}) {
        auto ra = a.access(0, 0x8000'0000, t, 8, 100);
        auto rb = b.access(0, 0x8000'0000, t, 8, 100);
        EXPECT_EQ(ra.latency, rb.latency);
    }
    std::ostringstream da;
    std::ostringstream db;
    stats_a.dump(da);
    stats_b.dump(db);
    EXPECT_EQ(da.str(), db.str());

    // And a successful fast hit replays the slow hit exactly.
    Cycles fast_lat = 0;
    ASSERT_TRUE(a.loadFastHit(0, 0x8000'0000, fast_lat));
    auto slow = b.access(0, 0x8000'0000, cache::AccessType::kLoad, 8, 200);
    EXPECT_EQ(fast_lat, slow.latency);
    ASSERT_TRUE(a.storeFastHit(0, 0x8000'0000, fast_lat));
    auto slow_st =
        b.access(0, 0x8000'0000, cache::AccessType::kStore, 8, 300);
    EXPECT_EQ(fast_lat, slow_st.latency);
    std::ostringstream da2;
    std::ostringstream db2;
    stats_a.dump(da2);
    stats_b.dump(db2);
    EXPECT_EQ(da2.str(), db2.str());
}

} // namespace
} // namespace smappic
