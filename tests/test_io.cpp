/**
 * @file
 * Tests for the UART16550 model/tunnel and the virtual SD card.
 */

#include <gtest/gtest.h>

#include "io/sd_card.hpp"
#include "io/uart16550.hpp"
#include "sim/log.hpp"

namespace smappic::io
{
namespace
{

TEST(Uart, TransmitCapturesBytes)
{
    Uart16550 uart;
    VirtualSerial serial;
    serial.attach(uart);
    for (char c : std::string("boot ok\n"))
        uart.writeReg({kUartRbrThr, static_cast<std::uint32_t>(c), 1});
    EXPECT_EQ(serial.captured(), "boot ok\n");
    EXPECT_EQ(uart.bytesTransmitted(), 8u);
    EXPECT_EQ(serial.lines().size(), 1u);
    EXPECT_EQ(serial.lines()[0], "boot ok");
}

TEST(Uart, ReceivePathAndLsr)
{
    Uart16550 uart;
    std::uint32_t lsr = 0;
    uart.readReg(kUartLsr, lsr);
    EXPECT_EQ(lsr & kLsrDataReady, 0u);
    EXPECT_NE(lsr & kLsrThrEmpty, 0u);

    uart.pushRxString("hi");
    uart.readReg(kUartLsr, lsr);
    EXPECT_NE(lsr & kLsrDataReady, 0u);

    std::uint32_t b = 0;
    uart.readReg(kUartRbrThr, b);
    EXPECT_EQ(b, static_cast<std::uint32_t>('h'));
    uart.readReg(kUartRbrThr, b);
    EXPECT_EQ(b, static_cast<std::uint32_t>('i'));
    uart.readReg(kUartLsr, lsr);
    EXPECT_EQ(lsr & kLsrDataReady, 0u);
}

TEST(Uart, DivisorLatchAccess)
{
    Uart16550 uart;
    // Set DLAB, program divisor 0x1b2, clear DLAB.
    uart.writeReg({kUartLcr, 0x83, 1});
    uart.writeReg({kUartRbrThr, 0xb2, 1});
    uart.writeReg({kUartIer, 0x01, 1});
    uart.writeReg({kUartLcr, 0x03, 1});
    EXPECT_EQ(uart.divisor(), 0x1b2);
    // With DLAB clear, THR writes transmit rather than touch the divisor.
    uart.writeReg({kUartRbrThr, 'x', 1});
    EXPECT_EQ(uart.divisor(), 0x1b2);
    EXPECT_EQ(uart.bytesTransmitted(), 1u);
}

TEST(Uart, RxInterruptLevel)
{
    Uart16550 uart;
    bool level = false;
    uart.setIrqFn([&](bool l) { level = l; });
    uart.writeReg({kUartIer, 0x1, 1}); // Enable RX interrupt.
    EXPECT_FALSE(level);
    uart.pushRx('a');
    EXPECT_TRUE(level);
    std::uint32_t b = 0;
    uart.readReg(kUartRbrThr, b);
    EXPECT_FALSE(level);
}

TEST(Uart, OverclockedDataUartIsFaster)
{
    Uart16550 console(115200);
    Uart16550 data(1'000'000);
    // The paper's overclocked device moves bytes ~8.7x faster.
    EXPECT_GT(console.byteTime(), data.byteTime() * 8);
}

TEST(SdCard, BlockReadWriteRoundTrip)
{
    mem::MainMemory memory;
    VirtualSdCard sd(memory, 0x10000000, 1 << 20);
    EXPECT_EQ(sd.blocks(), (1u << 20) / 512);

    std::vector<std::uint8_t> block(512);
    for (int i = 0; i < 512; ++i)
        block[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(i * 3);
    sd.writeBlock(7, block);
    std::vector<std::uint8_t> back;
    sd.readBlock(7, back);
    EXPECT_EQ(back, block);
}

TEST(SdCard, MmioCommandsDma)
{
    mem::MainMemory memory;
    VirtualSdCard sd(memory, 0x10000000, 1 << 20);
    std::vector<std::uint8_t> block(512, 0x5a);
    sd.writeBlock(2, block);

    Cycles service = 0;
    sd.ncStore(kSdRegLba, 8, 2, 0, service);
    sd.ncStore(kSdRegBuffer, 8, 0x1000, 0, service);
    sd.ncStore(kSdRegCommand, 8, kSdCmdRead, 0, service);
    EXPECT_EQ(sd.ncLoad(kSdRegStatus, 8, 0, service), 1u);
    EXPECT_EQ(memory.load(0x1000, 1), 0x5au);
    EXPECT_EQ(memory.load(0x11ff, 1), 0x5au);

    // Write path: modify the buffer, write back to block 4.
    memory.store(0x1000, 1, 0x77);
    sd.ncStore(kSdRegLba, 8, 4, 0, service);
    sd.ncStore(kSdRegCommand, 8, kSdCmdWrite, 0, service);
    std::vector<std::uint8_t> back;
    sd.readBlock(4, back);
    EXPECT_EQ(back[0], 0x77);
    EXPECT_EQ(sd.commandsServed(), 2u);
}

TEST(SdCard, OutOfRangeCommandSetsErrorStatus)
{
    mem::MainMemory memory;
    VirtualSdCard sd(memory, 0x10000000, 1 << 20);
    Cycles service = 0;
    sd.ncStore(kSdRegLba, 8, sd.blocks() + 5, 0, service);
    sd.ncStore(kSdRegCommand, 8, kSdCmdRead, 0, service);
    EXPECT_EQ(sd.ncLoad(kSdRegStatus, 8, 0, service), 0u);
}

TEST(SdCard, RejectsBadGeometry)
{
    mem::MainMemory memory;
    EXPECT_THROW(VirtualSdCard(memory, 0, 100), FatalError);
}

} // namespace
} // namespace smappic::io
