/**
 * @file
 * Parameterized property sweeps (TEST_P): cache-geometry invariants,
 * NoC-size delivery/credit properties, coherent-system invariants across
 * system shapes, and prototype configurations end to end.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "cache/coherent_system.hpp"
#include "noc/network.hpp"
#include "platform/prototype.hpp"
#include "sim/random.hpp"

namespace smappic
{
namespace
{

// ---------------- CacheArray geometry sweep ----------------

using CacheGeom = std::tuple<std::uint64_t, std::uint32_t>; // bytes, ways.

class CacheArraySweep : public ::testing::TestWithParam<CacheGeom>
{
};

TEST_P(CacheArraySweep, MirrorsReferenceModelUnderRandomTraffic)
{
    auto [bytes, ways] = GetParam();
    cache::CacheArray c(bytes, ways);
    // Reference model: set of resident lines, bounded by capacity.
    std::set<Addr> resident;
    sim::Xoroshiro rng(bytes * 31 + ways);
    std::uint64_t capacity = c.sets() * c.ways();

    for (int i = 0; i < 20000; ++i) {
        Addr line = rng.below(1 << 16) * 64;
        bool hit = c.lookup(line);
        EXPECT_EQ(hit, resident.count(line) > 0) << "iteration " << i;
        if (!hit) {
            auto victim = c.insert(line);
            resident.insert(line);
            if (victim)
                resident.erase(victim->line);
        }
        ASSERT_LE(resident.size(), capacity);
        ASSERT_EQ(c.occupancy(), resident.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheArraySweep,
    ::testing::Values(CacheGeom{1 << 10, 1}, CacheGeom{4 << 10, 2},
                      CacheGeom{8 << 10, 4}, CacheGeom{16 << 10, 4},
                      CacheGeom{64 << 10, 4}, CacheGeom{64 << 10, 8},
                      CacheGeom{128 << 10, 16}));

// ---------------- Mesh network size sweep ----------------

using MeshParam = std::tuple<std::uint32_t, std::uint32_t>; // tiles, depth.

class MeshSweep : public ::testing::TestWithParam<MeshParam>
{
};

TEST_P(MeshSweep, AllPacketsDeliveredAndBuffersBounded)
{
    auto [tiles, depth] = GetParam();
    noc::MeshNetwork net(noc::MeshTopology(tiles), depth);
    sim::Xoroshiro rng(tiles * 7 + depth);
    std::map<TileId, int> got;
    for (TileId t = 0; t < tiles; ++t)
        net.setDeliverFn(t, [&got, t](const noc::Packet &) { got[t]++; });

    const int kPackets = 150;
    std::map<TileId, int> expected;
    for (int i = 0; i < kPackets; ++i) {
        noc::Packet p;
        p.srcTile = static_cast<TileId>(rng.below(tiles));
        p.dstTile = static_cast<TileId>(rng.below(tiles));
        p.type = noc::MsgType::kDataResp;
        p.addr = rng.next();
        p.payload.assign(rng.below(8), 0x5a);
        net.inject(p);
        expected[p.dstTile]++;
    }

    std::uint64_t cap = static_cast<std::uint64_t>(tiles) * noc::kNumDirs *
                        depth;
    for (int c = 0; c < 30000 && !net.idle(); ++c) {
        net.tick();
        ASSERT_LE(net.bufferedFlits(), cap);
    }
    EXPECT_TRUE(net.idle());
    for (auto &[t, n] : expected)
        EXPECT_EQ(got[t], n) << "tile " << t;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MeshSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 5u, 9u, 12u, 16u),
                       ::testing::Values(2u, 4u, 8u)));

// ---------------- Coherent-system shape sweep ----------------

using SysShape = std::tuple<std::uint32_t, std::uint32_t,
                            cache::HomingPolicy>;

class CoherentSweep : public ::testing::TestWithParam<SysShape>
{
};

TEST_P(CoherentSweep, InvariantsHoldUnderRandomSharing)
{
    auto [nodes, tiles, homing] = GetParam();
    cache::Geometry geo;
    geo.nodes = nodes;
    geo.tilesPerNode = tiles;
    geo.memPerNode = 64ULL << 20;
    geo.bpcBytes = 1 << 10;
    geo.l1dBytes = 512;
    geo.l1iBytes = 512;
    geo.llcSliceBytes = 2 << 10;
    cache::CoherentSystem cs(geo, cache::TimingParams{}, homing);

    sim::Xoroshiro rng(nodes * 131 + tiles * 7 +
                       static_cast<std::uint64_t>(homing));
    Cycles now = 0;
    std::uint32_t total = geo.totalTiles();
    for (int i = 0; i < 4000; ++i) {
        auto gid = static_cast<GlobalTileId>(rng.below(total));
        Addr addr =
            rng.below(256) * 64 + rng.below(nodes) * geo.memPerNode;
        cache::AccessType type =
            rng.chance(0.3)
                ? cache::AccessType::kStore
                : (rng.chance(0.1) ? cache::AccessType::kAtomic
                                   : cache::AccessType::kLoad);
        now += 25;
        auto r = cs.access(gid, addr, type, 8, now);
        ASSERT_GT(r.latency, 0u);
        if (i % 400 == 0) {
            ASSERT_TRUE(cs.checkInclusion());
            ASSERT_TRUE(cs.checkDirectory());
        }
    }
    EXPECT_TRUE(cs.checkInclusion());
    EXPECT_TRUE(cs.checkDirectory());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoherentSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(1u, 2u, 6u, 12u),
                       ::testing::Values(cache::HomingPolicy::kAddressNode,
                                         cache::HomingPolicy::kGlobalHash,
                                         cache::HomingPolicy::kNode0)));

// ---------------- Prototype configuration sweep ----------------

class ConfigSweep : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ConfigSweep, BootsRunsAndProbes)
{
    platform::Prototype proto(platform::PrototypeConfig::parse(GetParam()));
    proto.loadSource(R"(
_start:
    csrr t0, 0xf14
    addi a0, t0, 1
    li a7, 93
    ecall
)");
    // Every core can run the image and sees its own hart id.
    for (GlobalTileId g = 0; g < proto.coreCount(); ++g) {
        auto r = proto.runCore(g, 100000);
        ASSERT_EQ(r, riscv::HaltReason::kExited) << "core " << g;
        ASSERT_EQ(proto.core(g).exitCode(),
                  static_cast<std::int64_t>(g) + 1);
    }
    // Latency probe is sane on every config with at least 2 tiles.
    if (proto.coreCount() >= 2) {
        Cycles rt = proto.measureRoundTrip(0, 1);
        EXPECT_GT(rt, 20u);
        EXPECT_LT(rt, 2000u);
    }
}

INSTANTIATE_TEST_SUITE_P(Configs, ConfigSweep,
                         ::testing::Values("1x1x1", "1x1x2", "1x2x2",
                                           "1x4x2", "2x1x4", "2x2x2",
                                           "4x1x2", "1x1x12", "4x1x12"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (auto &c : n)
                                 if (c == 'x')
                                     c = '_';
                             return n;
                         });

// ---------------- Bridge credit sweep ----------------

class BridgeCreditSweep : public ::testing::TestWithParam<std::uint32_t>
{
};

TEST_P(BridgeCreditSweep, LosslessAtAnyWindowDepth)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    bridge::BridgeConfig cfg;
    cfg.creditsPerNoc = GetParam();
    cfg.creditPollInterval = 24;
    bridge::InterNodeBridge a(0, 0, 0x0, eq, fabric, cfg, &stats);
    bridge::InterNodeBridge b(1, 1, 0x1000000, eq, fabric, cfg, &stats);
    a.addPeer(1, b.windowBase());
    b.addPeer(0, a.windowBase());
    int delivered = 0;
    b.setDeliverFn([&](const noc::Packet &) { ++delivered; });

    for (int i = 0; i < 60; ++i) {
        noc::Packet p;
        p.srcNode = 0;
        p.dstNode = 1;
        p.dstTile = 3;
        p.type = noc::MsgType::kReqRd;
        p.addr = static_cast<Addr>(i) * 64;
        p.payload.assign(i % 9, 1);
        a.sendPacket(p);
    }
    eq.run();
    EXPECT_EQ(delivered, 60);
    EXPECT_TRUE(a.sendIdle());
}

INSTANTIATE_TEST_SUITE_P(Depths, BridgeCreditSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u, 64u));

} // namespace
} // namespace smappic
