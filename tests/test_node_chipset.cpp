/**
 * @file
 * Full-stack packet-level integration tests: memory transactions travel
 * as real flits through mesh routers, the chipset hub, the NoC-AXI4
 * memory controller and DRAM — and, across nodes, through the inter-node
 * bridge's AXI4 encapsulation and the PCIe fabric. This validates the
 * complete section 3.1/3.2 data path end to end.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "platform/node_chipset.hpp"
#include "riscv/interrupts.hpp"
#include "sim/random.hpp"

namespace smappic::platform
{
namespace
{

/** Single-node harness: chipset + memctrl + DRAM. */
struct OneNode
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    mem::MainMemory memory;
    mem::AxiDram dram;
    mem::NocAxiMemController memctrl;
    NodeChipset chipset;
    std::map<TileId, std::vector<noc::Packet>> at;

    explicit OneNode(std::uint32_t tiles = 4)
        : dram(eq, memory, 0, 1 << 30, mem::DramTiming{}),
          memctrl(0, eq, dram, mem::MemCtrlConfig{}, &stats),
          chipset(0, tiles, eq, memctrl, nullptr)
    {
        for (TileId t = 0; t < tiles; ++t)
            chipset.setTileDeliverFn(t, [this, t](const noc::Packet &p) {
                at[t].push_back(p);
            });
    }

    noc::Packet
    memRead(TileId src, Addr addr, std::uint8_t mshr)
    {
        noc::Packet p;
        p.noc = noc::NocIndex::kNoc1;
        p.srcNode = 0;
        p.srcTile = src;
        p.dstNode = 0;
        p.dstTile = noc::kOffChipTile;
        p.type = noc::MsgType::kMemRd;
        p.mshr = mshr;
        p.sizeLog2 = 6;
        p.addr = addr;
        return p;
    }
};

TEST(NodeChipset, FlitLevelMemoryReadRoundTrip)
{
    OneNode h;
    h.memory.store(0x4000, 8, 0xfeedfacecafef00dULL);
    h.chipset.injectFromTile(h.memRead(3, 0x4000, 9));
    ASSERT_TRUE(h.chipset.runUntilIdle());

    ASSERT_EQ(h.at[3].size(), 1u);
    const noc::Packet &r = h.at[3][0];
    EXPECT_EQ(r.type, noc::MsgType::kMemRdResp);
    EXPECT_EQ(r.mshr, 9);
    EXPECT_EQ(r.noc, noc::NocIndex::kNoc2); // Responses use NoC2.
    ASSERT_EQ(r.payload.size(), 8u);
    EXPECT_EQ(r.payload[0], 0xfeedfacecafef00dULL);
    EXPECT_EQ(h.chipset.packetsToMemory(), 1u);
    // Latency sanity: mesh traversal + DRAM.
    EXPECT_GT(h.chipset.now(), mem::DramTiming{}.latency);
}

TEST(NodeChipset, FlitLevelMemoryWriteThenRead)
{
    OneNode h;
    noc::Packet w = h.memRead(1, 0x8000, 2);
    w.type = noc::MsgType::kMemWr;
    w.payload.assign(8, 0x1111111111111111ULL);
    h.chipset.injectFromTile(w);
    ASSERT_TRUE(h.chipset.runUntilIdle());
    ASSERT_EQ(h.at[1].size(), 1u);
    EXPECT_EQ(h.at[1][0].type, noc::MsgType::kMemWrResp);
    EXPECT_EQ(h.memory.load(0x8000, 8), 0x1111111111111111ULL);

    h.chipset.injectFromTile(h.memRead(2, 0x8000, 3));
    ASSERT_TRUE(h.chipset.runUntilIdle());
    ASSERT_EQ(h.at[2].size(), 1u);
    EXPECT_EQ(h.at[2][0].payload[0], 0x1111111111111111ULL);
}

TEST(NodeChipset, ManyOutstandingRequestsAllReturn)
{
    OneNode h(9);
    sim::Xoroshiro rng(4);
    int expected = 0;
    for (int i = 0; i < 40; ++i) {
        Addr addr = 0x10000 + static_cast<Addr>(i) * 64;
        h.memory.store(addr, 8, addr);
        h.chipset.injectFromTile(
            h.memRead(static_cast<TileId>(rng.below(9)), addr,
                      static_cast<std::uint8_t>(i)));
        ++expected;
    }
    ASSERT_TRUE(h.chipset.runUntilIdle());
    int got = 0;
    for (auto &[tile, pkts] : h.at) {
        for (const auto &p : pkts) {
            EXPECT_EQ(p.payload[0], p.addr); // Data matches request addr.
            ++got;
        }
    }
    EXPECT_EQ(got, expected);
}

/** Two-node harness: two chipsets joined by bridges over a PCIe fabric. */
struct TwoNodes
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    mem::MainMemory memory;
    pcie::PcieFabric fabric;
    mem::AxiDram dram0, dram1;
    mem::NocAxiMemController mc0, mc1;
    bridge::InterNodeBridge b0, b1;
    NodeChipset n0, n1;
    std::map<int, std::vector<noc::Packet>> at; // node*100+tile.

    TwoNodes()
        : fabric(eq, 63, 16.0, &stats),
          dram0(eq, memory, 0, 1 << 28, mem::DramTiming{}),
          dram1(eq, memory, 1 << 28, 1 << 28, mem::DramTiming{}),
          mc0(0, eq, dram0, mem::MemCtrlConfig{}, &stats),
          mc1(1, eq, dram1, mem::MemCtrlConfig{}, &stats),
          b0(0, 0, 0x0, eq, fabric, bridge::BridgeConfig{}, &stats),
          b1(1, 1, 0x1000000, eq, fabric, bridge::BridgeConfig{}, &stats),
          n0(0, 4, eq, mc0, &b0), n1(1, 4, eq, mc1, &b1)
    {
        b0.addPeer(1, b1.windowBase());
        b1.addPeer(0, b0.windowBase());
        for (int node = 0; node < 2; ++node) {
            NodeChipset &c = node == 0 ? n0 : n1;
            for (TileId t = 0; t < 4; ++t)
                c.setTileDeliverFn(
                    t, [this, node, t](const noc::Packet &p) {
                        at[node * 100 + static_cast<int>(t)].push_back(p);
                    });
        }
    }

    /** Ticks both chipsets in lockstep until both are idle. */
    bool
    run(Cycles max_cycles = 200000)
    {
        for (Cycles c = 0; c < max_cycles; ++c) {
            n0.tick();
            n1.tick();
            bool idle = eq.empty() && mc0.idle() && mc1.idle() &&
                        b0.sendIdle() && b1.sendIdle();
            idle = idle && n0.network(noc::NocIndex::kNoc1).idle() &&
                   n1.network(noc::NocIndex::kNoc1).idle() &&
                   n0.network(noc::NocIndex::kNoc2).idle() &&
                   n1.network(noc::NocIndex::kNoc2).idle();
            if (idle)
                return true;
        }
        return false;
    }
};

TEST(NodeChipset, CrossNodeMemoryReadThroughBridge)
{
    TwoNodes h;
    // Tile 2 on node 0 reads an address served by node 1's controller:
    // mesh -> hub -> bridge -> AXI4/PCIe -> bridge -> memctrl -> back.
    Addr addr = (1 << 28) + 0x2000;
    h.memory.store(addr, 8, 0xabcdef0123456789ULL);

    noc::Packet p;
    p.noc = noc::NocIndex::kNoc1;
    p.srcNode = 0;
    p.srcTile = 2;
    p.dstNode = 1;
    p.dstTile = noc::kOffChipTile;
    p.type = noc::MsgType::kMemRd;
    p.mshr = 5;
    p.sizeLog2 = 6;
    p.addr = addr;
    h.n0.injectFromTile(p);

    ASSERT_TRUE(h.run());
    ASSERT_EQ(h.at[2].size(), 1u); // Node 0, tile 2.
    const noc::Packet &r = h.at[2][0];
    EXPECT_EQ(r.type, noc::MsgType::kMemRdResp);
    EXPECT_EQ(r.mshr, 5);
    EXPECT_EQ(r.payload[0], 0xabcdef0123456789ULL);
    EXPECT_EQ(h.n0.packetsToBridge(), 1u);
    EXPECT_EQ(h.n1.packetsFromOffChip(), 1u);
    // The whole path crossed PCIe twice (request + response).
    EXPECT_GE(h.eq.now(), 2u * 63u);
}

TEST(NodeChipset, CrossNodeTileToTileMessage)
{
    TwoNodes h;
    noc::Packet p;
    p.noc = noc::NocIndex::kNoc2;
    p.srcNode = 0;
    p.srcTile = 1;
    p.dstNode = 1;
    p.dstTile = 3;
    p.type = noc::MsgType::kDataResp;
    p.addr = 0x1234;
    p.payload.assign(8, 0x77);
    h.n0.injectFromTile(p);

    ASSERT_TRUE(h.run());
    ASSERT_EQ(h.at[103].size(), 1u); // Node 1, tile 3.
    EXPECT_EQ(h.at[103][0], p);
}

TEST(NodeChipset, BidirectionalCrossNodeStress)
{
    TwoNodes h;
    sim::Xoroshiro rng(11);
    std::map<int, int> expected;
    for (int i = 0; i < 60; ++i) {
        int src_node = static_cast<int>(rng.below(2));
        noc::Packet p;
        p.noc = static_cast<noc::NocIndex>(rng.below(3));
        p.srcNode = static_cast<NodeId>(src_node);
        p.srcTile = static_cast<TileId>(rng.below(4));
        p.dstNode = static_cast<NodeId>(1 - src_node);
        p.dstTile = static_cast<TileId>(rng.below(4));
        p.type = noc::MsgType::kDataResp;
        p.addr = rng.next();
        p.payload.assign(rng.below(8), i);
        (src_node == 0 ? h.n0 : h.n1).injectFromTile(p);
        expected[(1 - src_node) * 100 + static_cast<int>(p.dstTile)] += 1;
    }
    ASSERT_TRUE(h.run());
    for (auto &[key, n] : expected)
        EXPECT_EQ(static_cast<int>(h.at[key].size()), n) << "sink " << key;
}

TEST(NodeChipset, InterruptPacketCrossesNodes)
{
    TwoNodes h;
    noc::Packet irq =
        riscv::IrqPacketizer::encode(0, 1, 2, 6, riscv::kIrqMsi, true);
    h.n0.injectFromTile([&] {
        noc::Packet p = irq;
        p.srcTile = 0; // Enters at tile 0 (the CLINT's packetizer).
        return p;
    }());
    ASSERT_TRUE(h.run());
    ASSERT_EQ(h.at[102].size(), 1u);
    auto d = riscv::IrqDepacketizer::decode(h.at[102][0]);
    EXPECT_EQ(d.hart, 6u);
    EXPECT_TRUE(d.level);
}

} // namespace
} // namespace smappic::platform
