/**
 * @file
 * Tests for the CLINT controller and the interrupt packetizer/depacketizer
 * (SMAPPIC section 3.3): wire-change detection, packet encoding round
 * trips, and delivery onto core interrupt lines.
 */

#include <gtest/gtest.h>

#include <vector>

#include "riscv/interrupts.hpp"
#include "sim/log.hpp"

namespace smappic::riscv
{
namespace
{

TEST(Clint, MsipRegisterRaisesWire)
{
    ClintController clint(4);
    std::vector<std::tuple<std::uint32_t, std::uint32_t, bool>> changes;
    clint.setWireFn([&](std::uint32_t h, std::uint32_t irq, bool l) {
        changes.emplace_back(h, irq, l);
    });

    clint.write(kClintMsipBase + 4 * 2, 1, 4);
    EXPECT_TRUE(clint.msip(2));
    EXPECT_FALSE(clint.msip(0));
    ASSERT_EQ(changes.size(), 1u);
    EXPECT_EQ(changes[0], std::make_tuple(2u, kIrqMsi, true));

    // Rewriting the same value produces no edge.
    clint.write(kClintMsipBase + 4 * 2, 1, 4);
    EXPECT_EQ(changes.size(), 1u);

    clint.write(kClintMsipBase + 4 * 2, 0, 4);
    EXPECT_FALSE(clint.msip(2));
    EXPECT_EQ(changes.size(), 2u);
}

TEST(Clint, TimerComparatorFires)
{
    ClintController clint(2);
    int edges = 0;
    clint.setWireFn([&](std::uint32_t, std::uint32_t irq, bool) {
        if (irq == kIrqMti)
            ++edges;
    });
    clint.write(kClintMtimecmpBase + 8, 1000, 8);
    clint.setTime(999);
    EXPECT_FALSE(clint.mtip(1));
    clint.setTime(1000);
    EXPECT_TRUE(clint.mtip(1));
    EXPECT_FALSE(clint.mtip(0)); // cmp still ~0 for hart 0.
    // Pushing the comparator forward deasserts.
    clint.write(kClintMtimecmpBase + 8, 5000, 8);
    EXPECT_FALSE(clint.mtip(1));
    EXPECT_EQ(edges, 2);
}

TEST(Clint, RegisterReadback)
{
    ClintController clint(2);
    clint.write(kClintMtimecmpBase, 12345, 8);
    EXPECT_EQ(clint.read(kClintMtimecmpBase), 12345u);
    clint.setTime(777);
    EXPECT_EQ(clint.read(kClintMtime), 777u);
    clint.write(kClintMsipBase, 1, 4);
    EXPECT_EQ(clint.read(kClintMsipBase), 1u);
}

TEST(Clint, ExternalLines)
{
    ClintController clint(2);
    clint.setExternal(0, true);
    EXPECT_TRUE(clint.meip(0));
    clint.setExternal(0, false);
    EXPECT_FALSE(clint.meip(0));
}

TEST(IrqPacketizer, EncodeDecodeRoundTrip)
{
    noc::Packet pkt = IrqPacketizer::encode(0, 3, 7, 41, kIrqMsi, true);
    EXPECT_EQ(pkt.type, noc::MsgType::kInterrupt);
    EXPECT_EQ(pkt.dstNode, 3u);
    EXPECT_EQ(pkt.dstTile, 7u);
    auto d = IrqDepacketizer::decode(pkt);
    EXPECT_EQ(d.hart, 41u);
    EXPECT_EQ(d.irq, kIrqMsi);
    EXPECT_TRUE(d.level);

    // Survives flit serialization (the inter-node path).
    noc::Packet wire = noc::deserialize(noc::serialize(pkt));
    auto d2 = IrqDepacketizer::decode(wire);
    EXPECT_EQ(d2.hart, 41u);
    EXPECT_EQ(d2.irq, kIrqMsi);
}

TEST(IrqPacketizer, WireChangesBecomePackets)
{
    std::vector<noc::Packet> sent;
    // Harts 0..23 across two 12-tile nodes.
    IrqPacketizer pkz(
        0, [&](const noc::Packet &p) { sent.push_back(p); },
        [](std::uint32_t hart) {
            return std::make_pair<NodeId, TileId>(hart / 12, hart % 12);
        });
    ClintController clint(24);
    clint.setWireFn([&](std::uint32_t h, std::uint32_t irq, bool l) {
        pkz.onWireChange(h, irq, l);
    });

    clint.write(kClintMsipBase + 4 * 15, 1, 4); // Hart 15: node 1, tile 3.
    ASSERT_EQ(sent.size(), 1u);
    EXPECT_EQ(sent[0].dstNode, 1u);
    EXPECT_EQ(sent[0].dstTile, 3u);
    auto d = IrqDepacketizer::decode(sent[0]);
    EXPECT_EQ(d.hart, 15u);
    EXPECT_TRUE(d.level);
}

TEST(IrqDepacketizer, DrivesCoreWire)
{
    struct NullPort : MemPort
    {
        std::uint64_t load(Addr, std::uint32_t, Cycles,
                           Cycles &lat) override
        {
            lat = 1;
            return 0;
        }
        void store(Addr, std::uint32_t, std::uint64_t, Cycles,
                   Cycles &lat) override
        {
            lat = 1;
        }
        std::uint32_t fetch(Addr, Cycles, Cycles &lat) override
        {
            lat = 1;
            return 0x13; // nop
        }
        std::uint64_t
        atomic(Addr, std::uint32_t,
               const std::function<std::uint64_t(std::uint64_t)> &, Cycles,
               Cycles &lat) override
        {
            lat = 1;
            return 0;
        }
    };

    NullPort port;
    RvCore core(CoreConfig{}, port);
    core.setCsr(kCsrMie, 1ULL << kIrqMsi);
    core.setCsr(kCsrMstatus, 1ULL << 3); // MIE.
    EXPECT_FALSE(core.interruptPending());

    noc::Packet pkt = IrqPacketizer::encode(0, 0, 0, 0, kIrqMsi, true);
    IrqDepacketizer::apply(pkt, core);
    EXPECT_TRUE(core.interruptPending());

    noc::Packet clear = IrqPacketizer::encode(0, 0, 0, 0, kIrqMsi, false);
    IrqDepacketizer::apply(clear, core);
    EXPECT_FALSE(core.interruptPending());
}

TEST(IrqDepacketizer, RejectsWrongPacketType)
{
    noc::Packet pkt;
    pkt.type = noc::MsgType::kReqRd;
    EXPECT_THROW(IrqDepacketizer::decode(pkt), PanicError);
}

} // namespace
} // namespace smappic::riscv
