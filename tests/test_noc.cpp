/**
 * @file
 * Tests for the NoC packet encoding and the flit-level mesh network:
 * serialization round trips, XY routing, wormhole integrity, credit-based
 * backpressure and off-chip hub routing.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "noc/network.hpp"
#include "noc/packet.hpp"
#include "noc/topology.hpp"
#include "sim/random.hpp"

namespace smappic::noc
{
namespace
{

Packet
makePacket(TileId src, TileId dst, std::size_t payload_flits = 0)
{
    Packet p;
    p.noc = NocIndex::kNoc1;
    p.srcNode = 0;
    p.srcTile = src;
    p.dstNode = 0;
    p.dstTile = dst;
    p.type = MsgType::kReqRd;
    p.mshr = 7;
    p.addr = 0xdeadbeef000ULL;
    for (std::size_t i = 0; i < payload_flits; ++i)
        p.payload.push_back(0x1111111100000000ULL + i);
    return p;
}

TEST(NocPacket, SerializeRoundTrip)
{
    Packet p = makePacket(3, 9, 8);
    p.type = MsgType::kDataResp;
    p.sizeLog2 = 3;
    auto flits = serialize(p);
    EXPECT_EQ(flits.size(), 10u);
    EXPECT_TRUE(flits.front().head);
    EXPECT_TRUE(flits.back().tail);
    Packet q = deserialize(flits);
    EXPECT_EQ(p, q);
}

TEST(NocPacket, RoundTripAllMessageTypes)
{
    for (int t = 0; t <= 17; ++t) {
        Packet p = makePacket(0, 1, static_cast<std::size_t>(t % 9));
        p.type = static_cast<MsgType>(t);
        p.srcNode = 3;
        p.dstNode = 2;
        EXPECT_EQ(deserialize(serialize(p)), p) << "type " << t;
    }
}

TEST(NocPacket, HeaderOnlyPacketHasTwoFlits)
{
    Packet p = makePacket(0, 1, 0);
    auto flits = serialize(p);
    EXPECT_EQ(flits.size(), 2u);
    EXPECT_TRUE(flits[1].tail);
}

TEST(NocPacket, MalformedFramingPanics)
{
    Packet p = makePacket(0, 1, 2);
    auto flits = serialize(p);
    flits.pop_back();
    EXPECT_THROW(deserialize(flits), PanicError);
    std::vector<std::uint64_t> words{1, 2, 3};
    // Header says 0 payload flits but 1 extra word present.
    EXPECT_THROW(deserializeWords(words), PanicError);
}

TEST(MeshTopology, GeometryAndHops)
{
    MeshTopology t(12);
    EXPECT_EQ(t.cols(), 4u);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.hops(0, 0), 0u);
    EXPECT_EQ(t.hops(0, 3), 3u);   // Same row.
    EXPECT_EQ(t.hops(0, 11), 5u);  // Opposite corner: 3 + 2.
    EXPECT_EQ(t.hops(5, 5), 0u);
    EXPECT_EQ(t.hopsToOffChip(0), 1u);
    EXPECT_EQ(t.hopsToOffChip(11), 6u);
}

TEST(MeshTopology, PartialLastRow)
{
    MeshTopology t(5); // 3x2 grid, last row has 2 tiles.
    EXPECT_EQ(t.cols(), 3u);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.hops(4, 0), 2u);
}

TEST(MeshNetwork, SingleHopDelivery)
{
    MeshNetwork net(MeshTopology(4));
    std::vector<Packet> delivered;
    net.setDeliverFn(1, [&](const Packet &p) { delivered.push_back(p); });
    Packet p = makePacket(0, 1, 2);
    net.inject(p);
    net.run(50);
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], p);
    EXPECT_TRUE(net.idle());
}

TEST(MeshNetwork, DeliveryToEveryTile)
{
    MeshNetwork net(MeshTopology(12));
    std::map<TileId, int> received;
    for (TileId t = 0; t < 12; ++t)
        net.setDeliverFn(t, [&received, t](const Packet &) {
            received[t] += 1;
        });
    for (TileId t = 1; t < 12; ++t)
        net.inject(makePacket(0, t, 3));
    net.run(500);
    for (TileId t = 1; t < 12; ++t)
        EXPECT_EQ(received[t], 1) << "tile " << t;
    EXPECT_TRUE(net.idle());
}

TEST(MeshNetwork, FartherTilesTakeLonger)
{
    MeshNetwork net(MeshTopology(16));
    Cycles t_near = 0;
    Cycles t_far = 0;
    net.setDeliverFn(1, [&](const Packet &) { t_near = net.now(); });
    net.setDeliverFn(15, [&](const Packet &) { t_far = net.now(); });
    net.inject(makePacket(0, 1));
    net.inject(makePacket(0, 15));
    net.run(200);
    ASSERT_GT(t_near, 0u);
    ASSERT_GT(t_far, 0u);
    EXPECT_GT(t_far, t_near);
}

TEST(MeshNetwork, WormholePacketsDoNotInterleave)
{
    // Two tiles send multi-flit packets to the same destination; the
    // deliver callback only fires with complete, well-formed packets, so
    // any interleaving would fail deserialization inside the network.
    MeshNetwork net(MeshTopology(9));
    int delivered = 0;
    net.setDeliverFn(4, [&](const Packet &p) {
        ++delivered;
        EXPECT_EQ(p.payload.size(), 8u);
    });
    net.inject(makePacket(0, 4, 8));
    net.inject(makePacket(8, 4, 8));
    net.inject(makePacket(2, 4, 8));
    net.inject(makePacket(6, 4, 8));
    net.run(500);
    EXPECT_EQ(delivered, 4);
    EXPECT_TRUE(net.idle());
}

TEST(MeshNetwork, OffChipHubReceivesNorthboundTraffic)
{
    MeshNetwork net(MeshTopology(12));
    std::vector<Packet> hub;
    net.setDeliverFn(kOffChipTile, [&](const Packet &p) {
        hub.push_back(p);
    });
    Packet p = makePacket(11, kOffChipTile, 4);
    p.dstNode = 2; // Remote node: must exit via the hub.
    net.inject(p);
    net.run(200);
    ASSERT_EQ(hub.size(), 1u);
    EXPECT_EQ(hub[0].dstNode, 2u);
    EXPECT_TRUE(net.idle());
}

TEST(MeshNetwork, OffChipHubCanInjectIntoMesh)
{
    MeshNetwork net(MeshTopology(12));
    std::vector<Packet> got;
    net.setDeliverFn(7, [&](const Packet &p) { got.push_back(p); });
    Packet p = makePacket(0, 7, 8);
    p.srcTile = kOffChipTile;
    net.injectFromOffChip(p);
    net.run(200);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload.size(), 8u);
}

TEST(MeshNetwork, HeavyRandomTrafficAllDelivered)
{
    sim::Xoroshiro rng(55);
    MeshNetwork net(MeshTopology(16), 2); // Shallow buffers: backpressure.
    int delivered = 0;
    for (TileId t = 0; t < 16; ++t)
        net.setDeliverFn(t, [&](const Packet &) { ++delivered; });

    const int kPackets = 400;
    for (int i = 0; i < kPackets; ++i) {
        auto src = static_cast<TileId>(rng.below(16));
        auto dst = static_cast<TileId>(rng.below(16));
        if (dst == src)
            dst = (dst + 1) % 16;
        net.inject(makePacket(src, dst, rng.below(8)));
    }
    net.run(20000);
    EXPECT_EQ(delivered, kPackets);
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.deliveredPackets(), static_cast<std::uint64_t>(kPackets));
}

TEST(MeshNetwork, CreditBackpressureBoundsBuffering)
{
    // Saturate a single destination: buffered flits must never exceed the
    // total buffer capacity (credit conservation).
    MeshNetwork net(MeshTopology(9), 4);
    int delivered = 0;
    net.setDeliverFn(8, [&](const Packet &) { ++delivered; });
    for (int i = 0; i < 50; ++i)
        net.inject(makePacket(0, 8, 8));
    std::uint64_t capacity = 9ULL * kNumDirs * 4;
    for (int c = 0; c < 4000; ++c) {
        net.tick();
        ASSERT_LE(net.bufferedFlits(), capacity);
    }
    EXPECT_EQ(delivered, 50);
}

TEST(MeshNetwork, SingleTileMeshLocalDelivery)
{
    MeshNetwork net(MeshTopology(1));
    int got = 0;
    net.setDeliverFn(0, [&](const Packet &) { ++got; });
    Packet p = makePacket(0, 0, 1);
    net.inject(p);
    net.run(20);
    EXPECT_EQ(got, 1);
}

} // namespace
} // namespace smappic::noc
