/**
 * @file
 * Shared test helpers: a flat golden-memory MemPort plus program-loading
 * and bare-core construction glue, factored out of the per-file copies
 * that used to live in test_riscv_core.cpp and test_riscv_torture.cpp.
 */

#pragma once

#include <functional>

#include "mem/main_memory.hpp"
#include "riscv/assembler.hpp"
#include "riscv/core.hpp"

namespace smappic::test
{

/**
 * A MemPort over one flat MainMemory: every access completes in a fixed
 * latency and hits functional memory directly — the golden data plane
 * tests compare real cache hierarchies against. Counts loads/stores so
 * timing tests can assert traffic shapes.
 */
class FlatPort : public riscv::MemPort
{
  public:
    explicit FlatPort(Cycles mem_lat = 1) : memLat_(mem_lat) {}

    std::uint64_t
    load(Addr addr, std::uint32_t bytes, Cycles, Cycles &lat) override
    {
        lat = memLat_;
        ++loads_;
        return memory.load(addr, bytes);
    }

    void
    store(Addr addr, std::uint32_t bytes, std::uint64_t value, Cycles,
          Cycles &lat) override
    {
        lat = memLat_;
        ++stores_;
        memory.store(addr, bytes, value);
    }

    std::uint32_t
    fetch(Addr addr, Cycles, Cycles &lat) override
    {
        lat = 1;
        return static_cast<std::uint32_t>(memory.load(addr, 4));
    }

    std::uint64_t
    atomic(Addr addr, std::uint32_t bytes,
           const std::function<std::uint64_t(std::uint64_t)> &rmw, Cycles,
           Cycles &lat) override
    {
        lat = memLat_;
        std::uint64_t old = memory.load(addr, bytes);
        memory.store(addr, bytes, rmw(old));
        return old;
    }

    // Every fetch through this port "hits" at latency 1 (see fetch()),
    // so the decode-cache fast path is timing-identical here. Wiring
    // these up lets bare-core tests exercise the cache — including the
    // kStaleDecode defeat switch — without a cache hierarchy.
    bool
    fetchFastHit(Addr, Cycles, Cycles &lat) override
    {
        lat = 1;
        return true;
    }

    riscv::CodeRef
    codeRef(Addr addr) override
    {
        riscv::CodeRef ref;
        const auto &stamp = memory.pageWriteStamp(addr);
        ref.stamp = &stamp;
        ref.seen = stamp.load(std::memory_order_acquire);
        return ref;
    }

    // Every data access through this port "hits" at the fixed latency
    // (see load()/store()), so the data fast path is timing-identical
    // here: same latency, same traffic counters, same memory effect.
    bool
    loadFastHit(Addr addr, std::uint32_t bytes, Cycles, Cycles &lat,
                std::uint64_t &value) override
    {
        lat = memLat_;
        ++loads_;
        value = memory.load(addr, bytes);
        return true;
    }

    bool
    storeFastHit(Addr addr, std::uint32_t bytes, std::uint64_t value,
                 Cycles, Cycles &lat) override
    {
        lat = memLat_;
        ++stores_;
        memory.store(addr, bytes, value);
        return true;
    }

    mem::MainMemory memory;
    std::uint64_t loads_ = 0;
    std::uint64_t stores_ = 0;

  private:
    Cycles memLat_;
};

/** Copies every program segment into @p mem. */
inline void
loadProgram(mem::MainMemory &mem, const riscv::Program &prog)
{
    for (const auto &seg : prog.segments)
        mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
}

/** Installs the standard `ecall a7=93 -> exit(a0)` test handler. */
inline void
installExitHandler(riscv::RvCore &core)
{
    core.setEcallHandler([](riscv::RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(static_cast<std::int64_t>(c.reg(10)));
            return true;
        }
        return false;
    });
}

} // namespace smappic::test
