/**
 * @file
 * Tests for the selectable core models (the BYOC multi-core story):
 * presets differ in the right directions and plug into prototypes.
 */

#include <gtest/gtest.h>

#include "platform/prototype.hpp"
#include "riscv/core_models.hpp"

namespace smappic::riscv
{
namespace
{

Cycles
runOn(CoreModel model, const char *src)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse(
        "1x1x2");
    cfg.coreModel = model;
    platform::Prototype proto(cfg);
    proto.loadSource(src);
    EXPECT_EQ(proto.runCore(0), HaltReason::kExited);
    EXPECT_EQ(proto.core(0).exitCode(), 0);
    return proto.core(0).cycles();
}

const char *kComputeLoop = R"(
_start:
    li t0, 0
    li t1, 500
loop:
    addi t0, t0, 1
    mul t2, t0, t0
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
)";

TEST(CoreModels, PicoIsMuchSlowerThanAriane)
{
    Cycles ariane = runOn(CoreModel::kAriane, kComputeLoop);
    Cycles pico = runOn(CoreModel::kPicoRv32, kComputeLoop);
    // Multi-cycle FSM core with a 32-cycle multiplier: >4x slower.
    EXPECT_GT(pico, ariane * 4);
}

TEST(CoreModels, RelativeOrderOnBranchyCode)
{
    // Alternating-direction branches defeat 2-bit counters in every
    // model; the application cores stay within a pipeline's difference
    // of each other while the FSM core trails far behind.
    const char *branchy = R"(
_start:
    li t0, 0
    li t1, 2000
    li t3, 0
loop:
    andi t2, t0, 1
    beqz t2, even
    addi t3, t3, 2
    j next
even:
    addi t3, t3, 1
next:
    addi t0, t0, 1
    blt t0, t1, loop
    li a0, 0
    li a7, 93
    ecall
)";
    Cycles ariane = runOn(CoreModel::kAriane, branchy);
    Cycles bp = runOn(CoreModel::kBlackParrot, branchy);
    Cycles pico = runOn(CoreModel::kPicoRv32, branchy);
    EXPECT_LT(bp, ariane * 13 / 10);
    EXPECT_GT(bp, ariane * 7 / 10);
    EXPECT_GT(pico, ariane * 2);
}

TEST(CoreModels, AllModelsAreFunctionallyIdentical)
{
    // Timing presets must never change architectural results.
    const char *program = R"(
_start:
    li t0, 123456789
    li t1, 987
    mul t2, t0, t1
    div t3, t2, t1
    sub a0, t3, t0     # 0 when correct
    li a7, 93
    ecall
)";
    for (CoreModel m : {CoreModel::kAriane, CoreModel::kPicoRv32,
                        CoreModel::kBlackParrot}) {
        platform::PrototypeConfig cfg =
            platform::PrototypeConfig::parse("1x1x2");
        cfg.coreModel = m;
        platform::Prototype proto(cfg);
        proto.loadSource(program);
        proto.runCore(0);
        EXPECT_EQ(proto.core(0).exitCode(), 0) << coreModelName(m);
    }
}

TEST(CoreModels, NamesAreStable)
{
    EXPECT_EQ(coreModelName(CoreModel::kAriane), "ariane");
    EXPECT_EQ(coreModelName(CoreModel::kPicoRv32), "picorv32");
    EXPECT_EQ(coreModelName(CoreModel::kBlackParrot), "blackparrot");
}

} // namespace
} // namespace smappic::riscv
