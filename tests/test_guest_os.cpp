/**
 * @file
 * Tests for the guest-OS model: page placement under both NUMA modes,
 * explicit policies, phase scheduling, and the placement effects the
 * paper's Figs 8-9 rely on.
 */

#include <gtest/gtest.h>

#include "os/guest_system.hpp"
#include "sim/log.hpp"

namespace smappic::os
{
namespace
{

cache::Geometry
geo4x4()
{
    cache::Geometry g;
    g.nodes = 4;
    g.tilesPerNode = 4;
    g.memPerNode = 256ULL << 20;
    return g;
}

TEST(GuestSystem, FirstTouchPlacesLocally)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);
    Addr va = os.vmAlloc(4 * GuestSystem::kPageBytes);

    // Touch page 0 from node 0, page 1 from node 2.
    GlobalTileId t_node0 = 0;
    GlobalTileId t_node2 = 9; // Node 2, tile 1.
    os.parallelPhase({t_node0}, [&](Worker &w) { w.load(va); });
    os.parallelPhase({t_node2}, [&](Worker &w) {
        w.load(va + GuestSystem::kPageBytes);
    });

    EXPECT_EQ(os.pageNode(va), 0);
    EXPECT_EQ(os.pageNode(va + GuestSystem::kPageBytes), 2);
    EXPECT_EQ(os.pageNode(va + 3 * GuestSystem::kPageBytes), -1);
}

TEST(GuestSystem, NumaOffIgnoresToucher)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOff, 7);
    Addr va = os.vmAlloc(256 * GuestSystem::kPageBytes);
    // All touches from node 0; pages should still scatter.
    os.parallelPhase({0}, [&](Worker &w) {
        for (int p = 0; p < 256; ++p)
            w.load(va + static_cast<Addr>(p) * GuestSystem::kPageBytes);
    });
    auto per_node = os.pagesPerNode();
    int nodes_used = 0;
    for (auto n : per_node)
        nodes_used += n > 0 ? 1 : 0;
    EXPECT_EQ(nodes_used, 4);
}

TEST(GuestSystem, ExplicitPolicies)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);

    Addr on3 = os.vmAlloc(8 * GuestSystem::kPageBytes,
                          AllocPolicy::kOnNode, 3);
    for (int p = 0; p < 8; ++p)
        EXPECT_EQ(os.pageNode(on3 + static_cast<Addr>(p) *
                                        GuestSystem::kPageBytes),
                  3);

    Addr il = os.vmAlloc(8 * GuestSystem::kPageBytes,
                         AllocPolicy::kInterleave);
    int seen[4] = {0, 0, 0, 0};
    for (int p = 0; p < 8; ++p)
        seen[os.pageNode(il + static_cast<Addr>(p) *
                                  GuestSystem::kPageBytes)] += 1;
    for (int n = 0; n < 4; ++n)
        EXPECT_EQ(seen[n], 2);
}

TEST(GuestSystem, OnNodeFramesArePhysicallyContiguous)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);
    Addr va = os.vmAlloc(4 * GuestSystem::kPageBytes, AllocPolicy::kOnNode,
                         1);
    Addr pa0 = os.translate(va, 1);
    for (int p = 1; p < 4; ++p) {
        Addr pa = os.translate(va + static_cast<Addr>(p) *
                                        GuestSystem::kPageBytes,
                               1);
        EXPECT_EQ(pa, pa0 + static_cast<Addr>(p) * GuestSystem::kPageBytes);
    }
}

TEST(GuestSystem, LocalAccessFasterThanRemote)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);
    Addr local = os.vmAlloc(GuestSystem::kPageBytes, AllocPolicy::kOnNode,
                            0);
    Addr remote = os.vmAlloc(GuestSystem::kPageBytes, AllocPolicy::kOnNode,
                             3);
    Cycles t_local = 0;
    Cycles t_remote = 0;
    os.parallelPhase({0}, [&](Worker &w) {
        Cycles before = w.now();
        w.load(local);
        t_local = w.now() - before;
        before = w.now();
        w.load(remote);
        t_remote = w.now() - before;
    });
    EXPECT_GT(t_remote, t_local + 100);
}

TEST(GuestSystem, PhaseBarrierTakesMaxOfClocks)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);
    os.setBarrierCost(100);
    Cycles before = os.elapsed();
    os.parallelPhase({0, 1}, [&](Worker &w) {
        w.compute(w.tile() == 0 ? 1000 : 5000);
    });
    EXPECT_EQ(os.elapsed() - before, 5100u);
}

TEST(GuestSystem, UnmappedAccessIsFatal)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);
    EXPECT_THROW(
        os.parallelPhase({0}, [&](Worker &w) { w.load(0xdead0000); }),
        FatalError);
}

TEST(GuestSystem, AmoAddIsAtomicFunctionally)
{
    cache::CoherentSystem cs(geo4x4(), cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    GuestSystem os(cs, NumaMode::kOn);
    Addr ctr = os.vmAlloc(8);
    std::vector<GlobalTileId> tiles = {0, 4, 8, 12};
    os.parallelPhase(tiles, [&](Worker &w) {
        for (int i = 0; i < 10; ++i)
            w.amoAdd(ctr, 1);
    });
    os.parallelPhase({0}, [&](Worker &w) {
        EXPECT_EQ(w.load(ctr), 40u);
    });
}

} // namespace
} // namespace smappic::os
