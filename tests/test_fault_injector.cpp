/**
 * @file
 * Unit tests for the platform-wide fault injector: CRC32 correctness,
 * seeded determinism, firing rates, event windows, site-prefix matching,
 * single-bit corruption and stat accounting — plus the fabric-level hooks
 * (drop -> SLVERR completion timeout, corrupt, delay).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "pcie/pcie_fabric.hpp"
#include "sim/fault.hpp"
#include "sim/log.hpp"

namespace smappic
{
namespace
{

TEST(Crc32, MatchesIeeeReference)
{
    // The canonical check value: CRC-32("123456789") = 0xcbf43926.
    const char *msg = "123456789";
    EXPECT_EQ(sim::crc32(reinterpret_cast<const std::uint8_t *>(msg), 9),
              0xcbf43926u);
}

TEST(Crc32, SeedChainingEqualsConcatenation)
{
    std::uint8_t data[16];
    for (std::size_t i = 0; i < sizeof(data); ++i)
        data[i] = static_cast<std::uint8_t>(i * 37 + 5);
    std::uint32_t whole = sim::crc32(data, 16);
    std::uint32_t chained = sim::crc32(data + 7, 9, sim::crc32(data, 7));
    EXPECT_EQ(whole, chained);
}

TEST(Crc32, DetectsSingleBitFlip)
{
    std::uint8_t data[32] = {};
    std::uint32_t clean = sim::crc32(data, sizeof(data));
    for (std::size_t bit = 0; bit < sizeof(data) * 8; bit += 17) {
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_NE(sim::crc32(data, sizeof(data)), clean) << "bit " << bit;
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
}

TEST(FaultInjector, EmptyPlanNeverFires)
{
    sim::FaultInjector fi(sim::FaultPlan{});
    EXPECT_FALSE(fi.enabled());
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(static_cast<bool>(fi.decide("pcie.write")));
    EXPECT_EQ(fi.dropsInjected(), 0u);
}

TEST(FaultInjector, SameSeedSameDecisions)
{
    sim::FaultPlan plan;
    plan.seed = 42;
    plan.drop("pcie", 0.1).corrupt("dram", 0.2);

    sim::FaultInjector a(plan);
    sim::FaultInjector b(plan);
    for (int i = 0; i < 2000; ++i) {
        const char *site = (i % 3 == 0) ? "dram.read" : "pcie.write";
        sim::FaultDecision da = a.decide(site);
        sim::FaultDecision db = b.decide(site);
        EXPECT_EQ(da.drop, db.drop);
        EXPECT_EQ(da.corrupt, db.corrupt);
    }
    EXPECT_EQ(a.dropsInjected(), b.dropsInjected());
    EXPECT_EQ(a.corruptionsInjected(), b.corruptionsInjected());
}

TEST(FaultInjector, SiteStreamsAreIndependentOfInterleaving)
{
    sim::FaultPlan plan;
    plan.seed = 7;
    plan.drop("a", 0.5).drop("b", 0.5);

    // Injector 1 alternates sites; injector 2 does all of "a" then all of
    // "b". The per-site decision sequences must match regardless.
    sim::FaultInjector alt(plan);
    sim::FaultInjector seq(plan);
    std::vector<bool> alt_a, alt_b, seq_a, seq_b;
    for (int i = 0; i < 200; ++i) {
        alt_a.push_back(alt.decide("a").drop);
        alt_b.push_back(alt.decide("b").drop);
    }
    for (int i = 0; i < 200; ++i)
        seq_a.push_back(seq.decide("a").drop);
    for (int i = 0; i < 200; ++i)
        seq_b.push_back(seq.decide("b").drop);
    EXPECT_EQ(alt_a, seq_a);
    EXPECT_EQ(alt_b, seq_b);
}

TEST(FaultInjector, FiringRateTracksProbability)
{
    sim::FaultPlan plan;
    plan.drop("link", 0.01);
    sim::FaultInjector fi(plan);
    int fired = 0;
    for (int i = 0; i < 100000; ++i)
        fired += fi.decide("link").drop;
    // 1% of 100k = 1000 expected; allow a generous +/-30% band.
    EXPECT_GT(fired, 700);
    EXPECT_LT(fired, 1300);
    EXPECT_EQ(fi.dropsInjected(), static_cast<std::uint64_t>(fired));
}

TEST(FaultInjector, WindowBoundsFiring)
{
    sim::FaultPlan plan;
    plan.slvErr("mem", 1.0, 5, 9); // Stuck-SLVERR for events 5..9 only.
    sim::FaultInjector fi(plan);
    int fired = 0;
    for (std::uint64_t i = 0; i < 20; ++i) {
        bool f = fi.decide("mem.read").slvErr;
        fired += f;
        EXPECT_EQ(f, i >= 5 && i <= 9) << "event " << i;
    }
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(fi.siteEvents("mem.read"), 20u);
}

TEST(FaultInjector, PrefixMatchScopesRules)
{
    sim::FaultPlan plan;
    plan.drop("pcie.", 1.0);
    sim::FaultInjector fi(plan);
    EXPECT_TRUE(fi.decide("pcie.write").drop);
    EXPECT_TRUE(fi.decide("pcie.read").drop);
    EXPECT_FALSE(fi.decide("dram.read").drop);
    EXPECT_FALSE(fi.decide("pci").drop); // Shorter than the prefix.
}

TEST(FaultInjector, CorruptBytesFlipsExactlyOneBit)
{
    sim::FaultPlan plan;
    plan.corrupt("x", 1.0);
    sim::FaultInjector fi(plan);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint8_t> buf(24, 0);
        fi.corruptBytes("x", buf.data(), buf.size());
        int flipped = 0;
        for (std::uint8_t byte : buf)
            flipped += __builtin_popcount(byte);
        EXPECT_EQ(flipped, 1);
    }
}

TEST(FaultInjector, DelayAccumulatesAndCounts)
{
    sim::FaultPlan plan;
    plan.delay("lnk", 1.0, 100).delay("lnk", 1.0, 20);
    sim::StatRegistry stats;
    sim::FaultInjector fi(plan, &stats);
    sim::FaultDecision d = fi.decide("lnk.tx");
    EXPECT_EQ(d.extraDelay, 120u);
    EXPECT_EQ(fi.delaysInjected(), 2u);
    EXPECT_EQ(stats.counterValue("fault.delay"), 2u);
}

TEST(FaultInjector, RejectsBadRules)
{
    sim::FaultPlan plan;
    EXPECT_THROW(plan.drop("x", 1.5), FatalError);
    EXPECT_THROW(plan.drop("", 0.5), FatalError);
    sim::FaultPlan inverted;
    inverted.slvErr("x", 1.0, 9, 5); // last < first.
    EXPECT_THROW(sim::FaultInjector{inverted}, FatalError);
}

/** Recording AXI target for fabric hook tests. */
class Recorder : public axi::Target
{
  public:
    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        writes.push_back(req);
        return {axi::Resp::kOkay, req.id};
    }
    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        axi::ReadResp r;
        r.id = req.id;
        r.data.assign(req.bytes, 0xab);
        return r;
    }
    std::vector<axi::WriteReq> writes;
};

TEST(FaultInjector, FabricDropCompletesSlvErrAfterTimeout)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 50, 0.0, nullptr);
    Recorder target;
    fabric.addWindow(0x0, 0x1000, &target, 1, "t");

    sim::FaultPlan plan;
    plan.drop("pcie.write", 1.0);
    sim::FaultInjector fi(plan);
    fabric.setFaultInjector(&fi);

    bool completed = false;
    Cycles when = 0;
    fabric.write(0, axi::WriteReq{0x100, {1, 2, 3}, 0},
                 [&](pcie::Completion c) {
                     completed = true;
                     when = eq.now();
                     EXPECT_EQ(c.resp, axi::Resp::kSlvErr);
                 });
    eq.run();
    // The request never reached the target, but the issuer still got a
    // completion (a PCIe completion timeout), so nothing can wedge.
    ASSERT_TRUE(completed);
    EXPECT_TRUE(target.writes.empty());
    EXPECT_GE(when, fabric.completionTimeout());
}

TEST(FaultInjector, FabricCorruptFlipsOneWritePayloadBit)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 10, 0.0, nullptr);
    Recorder target;
    fabric.addWindow(0x0, 0x1000, &target, 1, "t");

    sim::FaultPlan plan;
    plan.corrupt("pcie.write", 1.0);
    sim::FaultInjector fi(plan);
    fabric.setFaultInjector(&fi);

    std::vector<std::uint8_t> payload(16, 0);
    fabric.write(0, axi::WriteReq{0x0, payload, 0}, nullptr);
    eq.run();
    ASSERT_EQ(target.writes.size(), 1u);
    int flipped = 0;
    for (std::uint8_t b : target.writes[0].data)
        flipped += __builtin_popcount(b);
    EXPECT_EQ(flipped, 1);
}

TEST(FaultInjector, FabricDelayPostponesDelivery)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 10, 0.0, nullptr);
    Recorder target;
    fabric.addWindow(0x0, 0x1000, &target, 1, "t");

    sim::FaultPlan plan;
    plan.delay("pcie.write", 1.0, 500);
    sim::FaultInjector fi(plan);
    fabric.setFaultInjector(&fi);

    Cycles when = 0;
    fabric.write(0, axi::WriteReq{0x0, {1}, 0},
                 [&](pcie::Completion) { when = eq.now(); });
    eq.run();
    EXPECT_GE(when, 500u + 2u * 10u);
}

} // namespace
} // namespace smappic
