/**
 * @file
 * Uncore idle-skip tests: the event-horizon queries every skip decision
 * rests on, the active-router mesh worklist against the reference
 * full-sweep tick, the sequential engine's parked-core bookkeeping, and
 * the replicate-or-change-nothing contract — stats, traces and SMCK
 * checkpoints byte-identical with uncore.idleSkip on or off, for the
 * sequential and phased engines at 1/2/4 workers, including runs where
 * the watchdog and periodic checkpoints are live at skipped barriers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "mem/noc_axi_memctrl.hpp"
#include "noc/network.hpp"
#include "obs/trace_io.hpp"
#include "platform/prototype.hpp"
#include "riscv/interrupts.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/watchdog.hpp"
#include "snap/snapshot.hpp"

namespace smappic
{
namespace
{

namespace fs = std::filesystem;

fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("idleskip_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                     std::istreambuf_iterator<char>());
}

// ------------------------------------------------- horizon queries

TEST(IdleSkipHorizon, EventQueueNextDeadline)
{
    sim::EventQueue eq;
    EXPECT_EQ(eq.nextDeadline(), sim::kNoDeadline);
    int fired = 0;
    eq.schedule(40, [&] { ++fired; });
    eq.schedule(10, [&] { ++fired; });
    EXPECT_EQ(eq.nextDeadline(), 10u);
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.nextDeadline(), 40u);
    eq.runUntil(100);
    EXPECT_EQ(eq.nextDeadline(), sim::kNoDeadline);
}

TEST(IdleSkipHorizon, ClintNextTimerCycle)
{
    riscv::ClintController clint(2);
    // Reset mtimecmp (~0) never counts as an armed timer.
    EXPECT_EQ(clint.nextTimerCycle(), sim::kNoDeadline);
    clint.write(riscv::kClintMtimecmpBase, 500, 8);
    clint.write(riscv::kClintMtimecmpBase + 8, 300, 8);
    EXPECT_EQ(clint.nextTimerCycle(), 300u);
    clint.setTime(300); // Hart 1's timer fires; hart 0's still pending.
    EXPECT_EQ(clint.nextTimerCycle(), 500u);
    clint.setTime(600);
    EXPECT_EQ(clint.nextTimerCycle(), sim::kNoDeadline);
}

TEST(IdleSkipHorizon, MeshNextBusyCycleAndAdvance)
{
    noc::MeshNetwork net(noc::MeshTopology(4));
    int delivered = 0;
    for (TileId t = 0; t < 4; ++t)
        net.setDeliverFn(t, [&](const noc::Packet &) { ++delivered; });
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.nextBusyCycle(), sim::kNoDeadline);

    net.advance(1000);
    EXPECT_EQ(net.now(), 1000u);
    EXPECT_TRUE(net.idle());

    noc::Packet p;
    p.srcTile = 0;
    p.dstTile = 3;
    p.payload.assign(4, 9);
    net.inject(p);
    EXPECT_FALSE(net.idle());
    EXPECT_EQ(net.nextBusyCycle(), net.now());
    net.run(100);
    EXPECT_EQ(delivered, 1);
    EXPECT_TRUE(net.idle());
    EXPECT_EQ(net.nextBusyCycle(), sim::kNoDeadline);
}

TEST(IdleSkipHorizon, WatchdogNextDeadline)
{
    sim::WatchdogConfig cfg;
    cfg.stallCycles = 100;
    sim::Watchdog wd(cfg, 2, nullptr);
    EXPECT_EQ(wd.nextDeadline(), sim::kNoDeadline); // Unprimed.
    wd.observe(50, {10, 20}, {true, true});
    EXPECT_EQ(wd.nextDeadline(), 150u);
    // Node 0 commits at 120: its window re-arms; node 1 doesn't.
    wd.observe(120, {15, 20}, {true, true});
    EXPECT_EQ(wd.nextDeadline(), 150u);
    auto verdict = wd.observe(150, {15, 20}, {true, true});
    EXPECT_TRUE(verdict.stallDetected);
    ASSERT_EQ(verdict.stalledNodes.size(), 1u);
    EXPECT_EQ(verdict.stalledNodes[0], 1u);
    EXPECT_EQ(wd.nextDeadline(), 220u); // Node 1 rebased at the fire.
}

// --------------------------- active-router worklist vs full sweep

/** Drives two identically configured meshes — one on the active-router
 *  worklist, one forced onto the reference full sweep — through the
 *  same randomized schedule of bursts and idle gaps, diffing the entire
 *  observable surface every cycle: delivery log, hop/delivery counters,
 *  buffered-flit occupancy, idle() and the binary trace. */
TEST(IdleSkipMeshEquivalence, RandomTrafficMatchesFullSweep)
{
    constexpr std::uint32_t kTiles = 12;
    noc::MeshNetwork active{noc::MeshTopology(kTiles)};
    noc::MeshNetwork sweep{noc::MeshTopology(kTiles)};
    sweep.setSweepTick(true);

    obs::Tracer activeTracer;
    obs::Tracer sweepTracer;
    obs::TraceConfig tc;
    tc.enabled = true;
    activeTracer.configure(tc, 1);
    sweepTracer.configure(tc, 1);
    active.setTracer(&activeTracer);
    sweep.setTracer(&sweepTracer);

    std::vector<std::string> activeLog;
    std::vector<std::string> sweepLog;
    auto logTo = [](std::vector<std::string> &log, TileId tile) {
        return [&log, tile](const noc::Packet &p) {
            std::ostringstream os;
            os << tile << ":" << p.srcTile << ":" << int(p.mshr) << ":"
               << p.payload.size();
            log.push_back(os.str());
        };
    };
    for (TileId t = 0; t < kTiles; ++t) {
        active.setDeliverFn(t, logTo(activeLog, t));
        sweep.setDeliverFn(t, logTo(sweepLog, t));
    }

    sim::Xoroshiro rng(1234);
    std::uint8_t mshr = 0;
    for (int step = 0; step < 400; ++step) {
        // Random burst: 0-3 packets with random endpoints and lengths,
        // with occasional multi-hundred-cycle idle gaps to force the
        // worklist through drain/compact/reactivate transitions.
        std::uint64_t burst = rng.below(4);
        for (std::uint64_t i = 0; i < burst; ++i) {
            noc::Packet p;
            p.srcTile = static_cast<TileId>(rng.below(kTiles));
            p.dstTile = static_cast<TileId>(rng.below(kTiles));
            if (p.dstTile == p.srcTile)
                p.dstTile = (p.dstTile + 1) % kTiles;
            p.mshr = mshr++;
            p.payload.assign(rng.below(9), 0x5a);
            active.inject(p);
            sweep.inject(p);
        }
        Cycles gap = rng.below(10) == 0 ? 200 + rng.below(300)
                                        : 1 + rng.below(4);
        for (Cycles c = 0; c < gap; ++c) {
            active.tick();
            sweep.tick();
            ASSERT_EQ(active.now(), sweep.now());
            ASSERT_EQ(active.idle(), sweep.idle());
            ASSERT_EQ(active.bufferedFlits(), sweep.bufferedFlits());
            ASSERT_EQ(active.deliveredPackets(), sweep.deliveredPackets());
            ASSERT_EQ(active.flitHops(), sweep.flitHops());
        }
        ASSERT_EQ(activeLog, sweepLog) << "diverged at step " << step;
    }
    // Drain whatever is still in flight and compare the final surface.
    active.run(2000);
    sweep.run(2000);
    EXPECT_TRUE(active.idle());
    EXPECT_TRUE(sweep.idle());
    EXPECT_EQ(activeLog, sweepLog);
    EXPECT_GT(activeLog.size(), 100u) << "workload too light to mean much";

    std::ostringstream activeBin;
    std::ostringstream sweepBin;
    obs::writeBinary(activeTracer, activeBin);
    obs::writeBinary(sweepTracer, sweepBin);
    EXPECT_EQ(activeBin.str() == sweepBin.str(), true)
        << "hop/delivery traces diverged";
}

/** Bulk advance over an idle span is exactly the same as ticking the
 *  cycles away — including for traffic injected afterwards. */
TEST(IdleSkipMeshEquivalence, AdvanceMatchesIdleTicks)
{
    noc::MeshNetwork jumped(noc::MeshTopology(6));
    noc::MeshNetwork ticked(noc::MeshTopology(6));
    std::vector<std::string> jumpedLog;
    std::vector<std::string> tickedLog;
    auto logTo = [](std::vector<std::string> &log, TileId tile) {
        return [&log, tile](const noc::Packet &p) {
            log.push_back(std::to_string(tile) + ":" +
                          std::to_string(int(p.mshr)));
        };
    };
    for (TileId t = 0; t < 6; ++t) {
        jumped.setDeliverFn(t, logTo(jumpedLog, t));
        ticked.setDeliverFn(t, logTo(tickedLog, t));
    }

    jumped.advance(5000);
    for (Cycles c = 0; c < 5000; ++c)
        ticked.tick();
    ASSERT_EQ(jumped.now(), ticked.now());

    noc::Packet p;
    p.srcTile = 5;
    p.dstTile = 0;
    p.mshr = 42;
    p.payload.assign(6, 1);
    jumped.inject(p);
    ticked.inject(p);
    jumped.run(200);
    ticked.run(200);
    EXPECT_EQ(jumpedLog, tickedLog);
    EXPECT_EQ(jumped.flitHops(), ticked.flitHops());
    EXPECT_EQ(jumped.now(), ticked.now());
}

// ------------------------------- sequential engine parked cores

/** Regression for the historical all-wfi predicate: hart 0 sleeps on a
 *  timer set far past hart 1's exit. The old bookkeeping classified the
 *  run as all-idle the moment hart 0 was the only live core, advanced
 *  device time by a token 1000 cycles and marked hart 0 done without
 *  ever delivering its interrupt; the parked flag plus the horizon
 *  fast-forward must instead wake it and let it exit. */
constexpr const char *kParkedRegressionSource = R"(
_start:
    csrr t0, 0xf14
    bnez t0, hart1
    la t0, handler
    csrw 0x305, t0       # mtvec
    li t1, 0x80
    csrw 0x304, t1       # mie.MTIE
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2       # mstatus.MIE
    li t3, 0x02004000    # mtimecmp[0] = 500000, long after hart 1 exits
    li t4, 500000
    sd t4, 0(t3)
idle:
    wfi
    j idle
handler:
    li a0, 55
    li a7, 93
    ecall
hart1:
    li t5, 100           # Short compute loop, then exit.
busy:
    addi t5, t5, -1
    bnez t5, busy
    li a0, 7
    li a7, 93
    ecall
)";

class IdleSkipSequential : public ::testing::TestWithParam<bool>
{
};

TEST_P(IdleSkipSequential, ParkedCoreWakesAfterSiblingExits)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("1x1x2");
    cfg.uncore.idleSkip = GetParam();
    platform::Prototype proto(cfg);
    proto.loadSource(kParkedRegressionSource);
    proto.runCores({0, 1}, 50'000);
    EXPECT_EQ(proto.core(1).exitCode(), 7);
    EXPECT_EQ(proto.core(0).exitCode(), 55)
        << "parked hart was never woken by its timer";
    // (No mtime assertion: after the wake the engine re-syncs mtime to
    // the max core clock, deliberately preserving the historical
    // rewind behavior — identical with the skip on or off.)
}

INSTANTIATE_TEST_SUITE_P(OnAndOff, IdleSkipSequential,
                         ::testing::Values(true, false));

// -------------------------------------- replicate-or-change-nothing

/** Timer-driven WFI workload exercising every skip site: hart 0 sleeps
 *  between CLINT timer interrupts (20 wakeups, 8000 cycles apart), all
 *  other harts exit immediately — so sequential runs sit in the
 *  waitForWake() horizon loop and phased runs cross long runs of idle
 *  barriers. */
constexpr const char *kWfiTimerSource = R"(
_start:
    csrr t0, 0xf14
    bnez t0, finish
    la t0, handler
    csrw 0x305, t0
    li t1, 0x80
    csrw 0x304, t1
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2
    li s0, 0
    li s1, 20
    li s2, 0x0200bff8
    li s3, 0x02004000
    li s4, 8000
    ld t3, 0(s2)
    add t3, t3, s4
    sd t3, 0(s3)
idle:
    wfi
    j idle
handler:
    addi s0, s0, 1
    bge s0, s1, last
    ld t3, 0(s2)
    add t3, t3, s4
    sd t3, 0(s3)
    mret
last:
    la t3, finish
    csrw 0x341, t3
    li t3, -1
    sd t3, 0(s3)
    mret
finish:
    li a0, 0
    li a7, 93
    ecall
)";

struct Surface
{
    std::string stats;
    std::string trace;
    std::string snapshot;
};

/** The full observable surface of one run. threads == 0 selects the
 *  sequential engine; otherwise the phased engine with that many
 *  workers. */
Surface
runSurface(bool idleSkip, std::uint32_t threads, const fs::path &dir)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("2x1x2");
    cfg.uncore.idleSkip = idleSkip;
    if (threads > 0) {
        cfg.parallel.threads = threads;
        cfg.parallel.quantum = 63;
    }
    cfg.trace.enabled = true;
    platform::Prototype proto(cfg);
    proto.loadSourceReplicated(kWfiTimerSource);
    proto.runCores({0, 1, 2, 3}, 60'000);

    Surface out;
    std::ostringstream stats;
    proto.stats().dump(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    obs::writeBinary(proto.tracer(), trace);
    out.trace = trace.str();
    std::string snap = (dir / "surface.smck").string();
    proto.checkpoint(snap);
    auto bytes = slurp(snap);
    out.snapshot.assign(bytes.begin(), bytes.end());
    return out;
}

TEST(IdleSkipIdentity, SequentialStatsTraceAndCheckpointMatchOff)
{
    fs::path dir = scratchDir("seq");
    Surface on = runSurface(true, 0, dir);
    Surface off = runSurface(false, 0, dir);
    EXPECT_FALSE(on.stats.empty());
    EXPECT_EQ(on.stats, off.stats);
    EXPECT_EQ(on.trace == off.trace, true);
    EXPECT_EQ(on.snapshot == off.snapshot, true);
}

TEST(IdleSkipIdentity, PhasedStatsTraceAndCheckpointMatchOffAcrossWorkers)
{
    fs::path dir = scratchDir("phased");
    Surface ref = runSurface(true, 1, dir);
    EXPECT_FALSE(ref.stats.empty());
    EXPECT_FALSE(ref.trace.empty());
    EXPECT_FALSE(ref.snapshot.empty());
    for (bool idleSkip : {true, false}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            if (idleSkip && threads == 1)
                continue; // The reference itself.
            Surface got = runSurface(idleSkip, threads, dir);
            EXPECT_EQ(got.stats, ref.stats)
                << "idleSkip " << idleSkip << ", " << threads << " workers";
            EXPECT_EQ(got.trace == ref.trace, true)
                << "idleSkip " << idleSkip << ", " << threads << " workers";
            EXPECT_EQ(got.snapshot == ref.snapshot, true)
                << "idleSkip " << idleSkip << ", " << threads << " workers";
        }
    }
}

/** The skip must see the watchdog's deadline: a live node whose only
 *  core is parked commits nothing for whole stall windows, so report-
 *  mode stall verdicts fire at idle barriers — the exact barriers a
 *  naive skip would jump over. The verdict sequence (and so the stats
 *  dump) must be identical with the skip on or off. */
TEST(IdleSkipIdentity, WatchdogVerdictsMatchOff)
{
    auto dumpFor = [](bool idleSkip) {
        platform::PrototypeConfig cfg =
            platform::PrototypeConfig::parse("2x1x2");
        cfg.uncore.idleSkip = idleSkip;
        cfg.parallel.threads = 2;
        cfg.parallel.quantum = 63;
        cfg.watchdog.stallCycles = 4000;
        cfg.watchdog.action = sim::WatchdogAction::kReport;
        platform::Prototype proto(cfg);
        proto.loadSourceReplicated(kWfiTimerSource);
        proto.runCores({0, 1, 2, 3}, 60'000);
        std::ostringstream os;
        proto.stats().dump(os);
        return std::make_pair(
            os.str(),
            proto.stats().counterValue("watchdog.stallsDetected"));
    };
    auto on = dumpFor(true);
    auto off = dumpFor(false);
    EXPECT_EQ(on.first, off.first);
    EXPECT_EQ(on.second, off.second);
    EXPECT_GT(on.second, 0u) << "workload never tripped the watchdog — "
                                "the deadline interaction went untested";
}

/** Periodic checkpoints land on interval marks the skip must not jump
 *  past: the mid-run checkpoint sets must be byte-identical on/off. */
TEST(IdleSkipIdentity, PeriodicCheckpointsMatchOff)
{
    auto checkpointsFor = [](bool idleSkip, const fs::path &dir) {
        platform::PrototypeConfig cfg =
            platform::PrototypeConfig::parse("2x1x2");
        cfg.uncore.idleSkip = idleSkip;
        cfg.parallel.threads = 2;
        cfg.parallel.quantum = 63;
        cfg.snapshot.interval = 20'000;
        cfg.snapshot.dir = dir.string();
        cfg.snapshot.keep = 0;
        platform::Prototype proto(cfg);
        proto.loadSourceReplicated(kWfiTimerSource);
        proto.runCores({0, 1, 2, 3}, 60'000);
        return snap::listCheckpoints(dir.string());
    };
    fs::path dir_on = scratchDir("snap_on");
    fs::path dir_off = scratchDir("snap_off");
    auto on = checkpointsFor(true, dir_on);
    auto off = checkpointsFor(false, dir_off);
    ASSERT_GE(on.size(), 2u) << "workload too short to checkpoint";
    ASSERT_EQ(on.size(), off.size());
    for (std::size_t i = 0; i < on.size(); ++i) {
        EXPECT_EQ(fs::path(on[i]).filename(), fs::path(off[i]).filename());
        EXPECT_EQ(slurp(on[i]) == slurp(off[i]), true)
            << "checkpoint " << i << " diverged";
    }
}

/** A skip-on run's mid-run checkpoint restores into a skip-off
 *  prototype and the final states match byte for byte: the knob lives
 *  outside the checkpoint and outside the config fingerprint. */
TEST(IdleSkipIdentity, CheckpointsInterchangeBetweenOnAndOff)
{
    auto configFor = [](bool idleSkip, const std::string &dir) {
        platform::PrototypeConfig cfg =
            platform::PrototypeConfig::parse("2x1x2");
        cfg.uncore.idleSkip = idleSkip;
        cfg.parallel.threads = 2;
        cfg.parallel.quantum = 63;
        cfg.snapshot.interval = 20'000;
        cfg.snapshot.dir = dir;
        cfg.snapshot.keep = 0;
        return cfg;
    };
    fs::path dir_a = scratchDir("interchange_a");
    fs::path dir_b = scratchDir("interchange_b");

    platform::Prototype a(configFor(true, dir_a.string()));
    a.loadSourceReplicated(kWfiTimerSource);
    a.runCores({0, 1, 2, 3}, 60'000);
    std::string final_a = (dir_a / "final.smck").string();
    a.checkpoint(final_a);

    auto mids = snap::listCheckpoints(dir_a.string());
    ASSERT_GE(mids.size(), 2u) << "workload too short to checkpoint";

    platform::Prototype b(configFor(false, dir_b.string()));
    b.loadSourceReplicated(kWfiTimerSource);
    b.restore(mids[mids.size() / 2]);
    b.runCores({0, 1, 2, 3}, 60'000);
    std::string final_b = (dir_b / "final.smck").string();
    b.checkpoint(final_b);

    EXPECT_EQ(slurp(final_a), slurp(final_b));
}

/** A run whose parked core has no wake source at all ends through the
 *  idle-epoch give-up; the skip collapses the idle barrier walk into
 *  one jump, and the observable surface must not notice. */
constexpr const char *kNoWakeSource = R"(
_start:
    csrr t0, 0xf14
    bnez t0, finish
    wfi                  # No timer, no handler: parked forever.
    j _start
finish:
    li a0, 0
    li a7, 93
    ecall
)";

TEST(IdleSkipIdentity, GiveUpAfterIdleBudgetMatchesOff)
{
    auto surfaceFor = [](bool idleSkip, const fs::path &dir) {
        platform::PrototypeConfig cfg =
            platform::PrototypeConfig::parse("2x1x2");
        cfg.uncore.idleSkip = idleSkip;
        cfg.parallel.threads = 2;
        cfg.parallel.quantum = 63;
        platform::Prototype proto(cfg);
        proto.loadSourceReplicated(kNoWakeSource);
        proto.runCores({0, 1, 2, 3}, 20'000);
        Surface out;
        std::ostringstream stats;
        proto.stats().dump(stats);
        out.stats = stats.str();
        std::string snap = (dir / "giveup.smck").string();
        proto.checkpoint(snap);
        auto bytes = slurp(snap);
        out.snapshot.assign(bytes.begin(), bytes.end());
        return out;
    };
    fs::path dir = scratchDir("giveup");
    Surface on = surfaceFor(true, dir);
    Surface off = surfaceFor(false, dir);
    EXPECT_EQ(on.stats, off.stats);
    EXPECT_EQ(on.snapshot == off.snapshot, true);
}

} // namespace
} // namespace smappic
