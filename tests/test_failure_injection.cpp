/**
 * @file
 * Failure-injection tests: fabric decode errors, flaky AXI targets, DRAM
 * range errors and protocol-violation panics. The platform must either
 * recover (transient errors) or fail loudly (invariant violations) —
 * never hang or silently corrupt.
 */

#include <gtest/gtest.h>

#include "axi/crossbar.hpp"
#include "bridge/inter_node_bridge.hpp"
#include "mem/noc_axi_memctrl.hpp"
#include "pcie/pcie_fabric.hpp"
#include "sim/fault.hpp"

#include <cstring>
#include "sim/log.hpp"

namespace smappic
{
namespace
{

/** AXI target that fails the first N credit reads, then recovers. */
class FlakyBridgeProxy : public axi::Target
{
  public:
    FlakyBridgeProxy(axi::Target &inner, int failures)
        : inner_(inner), failuresLeft_(failures)
    {
    }

    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        return inner_.write(req);
    }

    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        if (failuresLeft_ > 0) {
            --failuresLeft_;
            return axi::ReadResp{axi::Resp::kSlvErr, {}, req.id};
        }
        return inner_.read(req);
    }

  private:
    axi::Target &inner_;
    int failuresLeft_;
};

TEST(FailureInjection, BridgeSurvivesFailedCreditReads)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);

    bridge::BridgeConfig cfg;
    cfg.creditsPerNoc = 4; // Force credit stalls -> credit reads.
    cfg.creditPollInterval = 16;
    // Receiver bridge registers at a window the sender never sees; the
    // sender's window points at a flaky proxy wrapping the receiver.
    bridge::InterNodeBridge rx(1, 1, 0x2000000, eq, fabric, cfg, &stats);
    FlakyBridgeProxy proxy(rx, 3); // First 3 credit reads fail.
    fabric.addWindow(0x1000000, cfg.windowSize, &proxy, 1, "rx-proxy");
    bridge::InterNodeBridge tx(0, 0, 0x0, eq, fabric, cfg, &stats);
    tx.addPeer(1, 0x1000000);
    rx.addPeer(0, tx.windowBase());

    int delivered = 0;
    rx.setDeliverFn([&](const noc::Packet &) { ++delivered; });

    for (int i = 0; i < 20; ++i) {
        noc::Packet p;
        p.srcNode = 0;
        p.dstNode = 1;
        p.dstTile = 1;
        p.type = noc::MsgType::kDataResp;
        p.addr = static_cast<Addr>(i);
        p.payload.assign(6, 9);
        tx.sendPacket(p);
    }
    eq.run();
    // Despite 3 failed credit reads, every packet eventually arrives.
    EXPECT_EQ(delivered, 20);
    EXPECT_TRUE(tx.sendIdle());
    EXPECT_GT(tx.creditReadsSent(), 3u);
}

TEST(FailureInjection, FabricDecodeErrorCompletesWithDecErr)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 10, 0.0, nullptr);
    int decerrs = 0;
    fabric.read(0, axi::ReadReq{0xbad00000, 8, 0},
                [&](pcie::Completion c) {
                    decerrs += c.resp == axi::Resp::kDecErr;
                });
    fabric.write(0, axi::WriteReq{0xbad00040, {1, 2}, 0},
                 [&](pcie::Completion c) {
                     decerrs += c.resp == axi::Resp::kDecErr;
                 });
    eq.run();
    EXPECT_EQ(decerrs, 2);
    EXPECT_EQ(fabric.decodeErrors(), 2u);
}

TEST(FailureInjection, MemControllerPanicsOnDramError)
{
    // A DRAM range error behind the memory controller is an integration
    // bug (the platform sizes windows to match); it must panic, not
    // return garbage data.
    sim::EventQueue eq;
    sim::StatRegistry stats;
    mem::MainMemory memory;
    mem::AxiDram dram(eq, memory, 0, 0x1000, mem::DramTiming{});
    mem::NocAxiMemController ctrl(0, eq, dram, mem::MemCtrlConfig{},
                                  &stats);
    ctrl.setSendFn([](const noc::Packet &) {});

    noc::Packet p;
    p.srcNode = 0;
    p.srcTile = 1;
    p.dstNode = 0;
    p.dstTile = noc::kOffChipTile;
    p.type = noc::MsgType::kMemRd;
    p.sizeLog2 = 6;
    p.addr = 0x100000; // Past the 4 KiB DRAM window.
    ctrl.handlePacket(p);
    EXPECT_THROW(eq.run(), PanicError);
}

TEST(FailureInjection, BridgeReceiveOverflowPanics)
{
    // A sender violating the credit protocol (writing more flits than the
    // window allows) must be detected, not absorbed.
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 1, 0.0, &stats);
    bridge::BridgeConfig cfg;
    cfg.creditsPerNoc = 2;
    bridge::InterNodeBridge rx(1, 1, 0x0, eq, fabric, cfg, &stats);

    // Forge raw bridge writes that ignore credits.
    axi::WriteReq req;
    req.addr = (0ULL << 12) | (0x1ULL << 8); // src node 0, NoC1 valid.
    req.data.assign(24, 0);
    // Craft a never-completing packet header so flits pile up: claim a
    // 200-flit payload.
    std::uint64_t header = (200ULL << 10) | (1ULL << 56); // dstNode=1.
    std::memcpy(req.data.data(), &header, 8);
    rx.write(req);
    rx.write(req);
    EXPECT_THROW(rx.write(req), PanicError);
}

TEST(FailureInjection, CrossbarDecodeErrors)
{
    axi::Crossbar xbar;
    auto w = xbar.write(axi::WriteReq{0x1234, {1}, 0});
    EXPECT_EQ(w.resp, axi::Resp::kDecErr);
    auto r = xbar.read(axi::ReadReq{0x1234, 8, 0});
    EXPECT_EQ(r.resp, axi::Resp::kDecErr);
    EXPECT_EQ(xbar.decodeErrors(), 2u);
}

TEST(FailureInjection, OverlappingWindowsRejected)
{
    axi::Crossbar xbar;
    class Null : public axi::Target
    {
        axi::WriteResp
        write(const axi::WriteReq &r) override
        {
            return {axi::Resp::kOkay, r.id};
        }
        axi::ReadResp
        read(const axi::ReadReq &r) override
        {
            return {axi::Resp::kOkay, {}, r.id};
        }
    } null_target;
    xbar.addWindow(0x1000, 0x1000, &null_target, "a");
    EXPECT_THROW(xbar.addWindow(0x1800, 0x1000, &null_target, "b"),
                 FatalError);
    EXPECT_NO_THROW(xbar.addWindow(0x2000, 0x1000, &null_target, "c"));
}

/** Echo target that records writes and reads back constant data. */
class EchoTarget : public axi::Target
{
  public:
    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        lastWrite = req;
        ++writes;
        return {axi::Resp::kOkay, req.id};
    }
    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        axi::ReadResp r;
        r.id = req.id;
        r.data.assign(req.bytes, 0x55);
        return r;
    }
    axi::WriteReq lastWrite;
    int writes = 0;
};

TEST(FailureInjection, CrossbarStuckSlvErrWindow)
{
    // A stuck-SLVERR fault (probability 1 inside an event window) makes
    // the crossbar answer SLVERR without routing, then heals.
    sim::FaultPlan plan;
    plan.slvErr("xbar.write", 1.0, 0, 2);
    sim::FaultInjector fi(plan);

    axi::Crossbar xbar;
    EchoTarget target;
    xbar.addWindow(0x0, 0x1000, &target, "mem");
    xbar.setFaultInjector(&fi);

    for (int i = 0; i < 3; ++i) {
        auto w = xbar.write(axi::WriteReq{0x100, {1, 2}, 0});
        EXPECT_EQ(w.resp, axi::Resp::kSlvErr) << "event " << i;
    }
    EXPECT_EQ(target.writes, 0); // Never routed while stuck.
    auto w = xbar.write(axi::WriteReq{0x100, {1, 2}, 0});
    EXPECT_EQ(w.resp, axi::Resp::kOkay);
    EXPECT_EQ(target.writes, 1);
    EXPECT_EQ(xbar.faultedAccesses(), 3u);
}

TEST(FailureInjection, CrossbarCorruptionRoutesFlippedPayload)
{
    sim::FaultPlan plan;
    plan.corrupt("xbar.write", 1.0);
    sim::FaultInjector fi(plan);

    axi::Crossbar xbar;
    EchoTarget target;
    xbar.addWindow(0x0, 0x1000, &target, "mem");
    xbar.setFaultInjector(&fi);

    std::vector<std::uint8_t> clean(8, 0);
    auto w = xbar.write(axi::WriteReq{0x0, clean, 0});
    EXPECT_EQ(w.resp, axi::Resp::kOkay);
    int flipped = 0;
    for (std::uint8_t b : target.lastWrite.data)
        flipped += __builtin_popcount(b);
    EXPECT_EQ(flipped, 1); // Exactly one bit differs from the original.
}

TEST(FailureInjection, DramSlvErrFaultPanicsThroughMemController)
{
    // The DRAM path is below the bridge's CRC domain: a faulted DRAM
    // response is an unrecoverable platform error and the controller
    // must panic rather than forward garbage.
    sim::FaultPlan plan;
    plan.slvErr("dram.read", 1.0);
    sim::FaultInjector fi(plan);

    sim::EventQueue eq;
    sim::StatRegistry stats;
    mem::MainMemory memory;
    mem::AxiDram dram(eq, memory, 0, 1 << 20, mem::DramTiming{});
    dram.setFaultInjector(&fi);
    mem::NocAxiMemController ctrl(0, eq, dram, mem::MemCtrlConfig{},
                                  &stats);
    ctrl.setSendFn([](const noc::Packet &) {});

    noc::Packet p;
    p.srcNode = 0;
    p.srcTile = 1;
    p.dstNode = 0;
    p.dstTile = noc::kOffChipTile;
    p.type = noc::MsgType::kMemRd;
    p.sizeLog2 = 6;
    p.addr = 0x1000;
    ctrl.handlePacket(p);
    EXPECT_THROW(eq.run(), PanicError);
    EXPECT_EQ(fi.slvErrsInjected(), 1u);
}

TEST(FailureInjection, DramDelayFaultPostponesCompletion)
{
    sim::FaultPlan plan;
    plan.delay("dram.read", 1.0, 1000);
    sim::FaultInjector fi(plan);

    sim::EventQueue eq;
    mem::MainMemory memory;
    mem::AxiDram dram(eq, memory, 0, 1 << 20, mem::DramTiming{});
    dram.setFaultInjector(&fi);

    Cycles when = 0;
    dram.read(axi::ReadReq{0x0, 64, 0}, [&](axi::ReadResp resp) {
        when = eq.now();
        EXPECT_EQ(resp.resp, axi::Resp::kOkay);
    });
    eq.run();
    EXPECT_GE(when, 1000u);
}

} // namespace
} // namespace smappic
