/**
 * @file
 * Tests for the online coherence invariant checker (src/check/): clean
 * traffic produces zero violations, the LineView inspection API reflects
 * real cache/directory state, and each test mutation — a dropped owner
 * update and a lost invalidation — is caught, the latter including the
 * stale-data side channel litmus tests rely on.
 */

#include <gtest/gtest.h>

#include "cache/coherent_system.hpp"
#include "check/coherence_checker.hpp"
#include "sim/random.hpp"

namespace smappic::check
{
namespace
{

using cache::AccessType;
using cache::CoherentSystem;
using cache::Geometry;
using cache::HomingPolicy;
using cache::TimingParams;

Geometry
smallGeo(std::uint32_t nodes, std::uint32_t tiles)
{
    Geometry g;
    g.nodes = nodes;
    g.tilesPerNode = tiles;
    g.memPerNode = 1ULL << 30;
    return g;
}

TEST(CoherenceChecker, CleanRandomTrafficHasNoViolations)
{
    CoherentSystem cs(smallGeo(2, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    CoherenceChecker chk(cs, CheckConfig{true, false, 64});
    cs.setObserver(&chk);

    sim::Xoroshiro rng(42);
    for (int i = 0; i < 4000; ++i) {
        GlobalTileId g = static_cast<GlobalTileId>(rng.below(4));
        Addr addr = 0x1000 + rng.below(64) * 64;
        AccessType t =
            rng.chance(0.4) ? AccessType::kStore : AccessType::kLoad;
        cs.access(g, addr, t, 8, static_cast<Cycles>(i) * 10);
    }

    EXPECT_GT(chk.eventsChecked(), 0u);
    EXPECT_EQ(chk.violationCount(), 0u);
    EXPECT_EQ(chk.sweep(), 0u);
    EXPECT_TRUE(chk.ok());
}

TEST(CoherenceChecker, InspectLineReflectsRealState)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    cs.access(0, 0x2000, AccessType::kLoad, 8, 0);
    cs.access(1, 0x2000, AccessType::kLoad, 8, 100);

    cache::LineView v = cs.inspectLine(0x2000);
    ASSERT_TRUE(v.hasDirEntry);
    EXPECT_EQ(v.owner, -1);
    EXPECT_EQ(v.sharers, 0b11u);
    EXPECT_TRUE(v.inLlc);
    EXPECT_TRUE(v.homeSliceHolds);
    ASSERT_EQ(v.tiles.size(), 2u);
    for (int g = 0; g < 2; ++g) {
        EXPECT_TRUE(v.tiles[g].inBpc);
        EXPECT_TRUE(v.tiles[g].inL1d);
        EXPECT_EQ(v.tiles[g].bpcState, CoherentSystem::kLineShared);
    }

    cs.access(0, 0x2000, AccessType::kStore, 8, 200);
    v = cs.inspectLine(0x2000);
    EXPECT_EQ(v.owner, 0);
    EXPECT_EQ(v.sharers, 0u);
    EXPECT_TRUE(v.tiles[0].inBpc);
    EXPECT_EQ(v.tiles[0].bpcState, CoherentSystem::kLineModified);
    EXPECT_FALSE(v.tiles[1].inBpc);
}

TEST(CoherenceChecker, ForEachKnownLineSeesTouchedLines)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    cs.access(0, 0x3000, AccessType::kLoad, 8, 0);
    cs.access(1, 0x3440, AccessType::kStore, 8, 10);

    std::vector<Addr> lines;
    cs.forEachKnownLine([&](Addr l) { lines.push_back(l); });
    EXPECT_NE(std::find(lines.begin(), lines.end(), 0x3000), lines.end());
    EXPECT_NE(std::find(lines.begin(), lines.end(), 0x3440), lines.end());
}

TEST(CoherenceChecker, DropOwnerUpdateIsCaught)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    CoherenceChecker chk(cs, CheckConfig{true, false, 64});
    cs.setObserver(&chk);

    const Addr line = 0x4000;
    cs.setTestMutation(cache::TestMutation::kDropOwnerUpdate, line);
    // A store miss should record tile 0 as owner — the mutation drops
    // that directory update while the BPC still goes modified.
    cs.access(0, line, AccessType::kStore, 8, 0);

    EXPECT_GT(chk.violationCount(), 0u);
    ASSERT_FALSE(chk.violations().empty());
    EXPECT_EQ(chk.violations()[0].line, line);
    EXPECT_GE(cs.stats().counterValue("cs.mutation.droppedOwnerUpdates"),
              1u);
}

TEST(CoherenceChecker, LostInvalidationIsCaughtAndServesStaleData)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    CoherenceChecker chk(cs, CheckConfig{true, false, 64});
    cs.setObserver(&chk);

    const Addr line = 0x5000;
    cs.memory().store(line, 8, 0x1111);
    cs.setTestMutation(cache::TestMutation::kLostInvalidation, line);

    // Tile 1 takes a shared copy; tile 0's store must invalidate it —
    // the mutation loses exactly that invalidation.
    cs.access(1, line, AccessType::kLoad, 8, 0);
    cs.memory().store(line, 8, 0x2222); // what CorePort::store does
    cs.access(0, line, AccessType::kStore, 8, 100);

    EXPECT_TRUE(cs.staleCopyActive());
    EXPECT_GT(chk.violationCount(), 0u);
    EXPECT_GE(cs.stats().counterValue("cs.mutation.lostInvalidations"),
              1u);

    // The victim's next load of the line is served the frozen pre-store
    // image (0x1111), not memory's 0x2222.
    auto r = cs.access(1, line, AccessType::kLoad, 8, 200);
    ASSERT_NE(r.staleData, nullptr);
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b)
        v |= static_cast<std::uint64_t>(r.staleData[b]) << (8 * b);
    EXPECT_EQ(v, 0x1111u);

    // A non-victim tile sees fresh data (no stale pointer).
    auto r0 = cs.access(0, line, AccessType::kLoad, 8, 300);
    EXPECT_EQ(r0.staleData, nullptr);
}

TEST(CoherenceChecker, PanicModeThrowsOnFirstViolation)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    CoherenceChecker chk(cs, CheckConfig{true, true, 64});
    cs.setObserver(&chk);

    cs.setTestMutation(cache::TestMutation::kDropOwnerUpdate, 0x6000);
    EXPECT_THROW(cs.access(0, 0x6000, AccessType::kStore, 8, 0),
                 PanicError);
}

TEST(CoherenceChecker, ResetForgetsRecordedState)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    CoherenceChecker chk(cs, CheckConfig{true, false, 64});
    cs.setObserver(&chk);
    cs.setTestMutation(cache::TestMutation::kDropOwnerUpdate, 0x7000);
    cs.access(0, 0x7000, AccessType::kStore, 8, 0);
    ASSERT_GT(chk.violationCount(), 0u);

    chk.reset();
    EXPECT_EQ(chk.violationCount(), 0u);
    EXPECT_TRUE(chk.violations().empty());
    EXPECT_EQ(chk.eventsChecked(), 0u);
}

} // namespace
} // namespace smappic::check
