/**
 * @file
 * Tests for the FPGA resource model (Table 4) and the cost model
 * (Tables 1 and 3, Figs 13-14, Verilator comparison).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cost/cost_model.hpp"
#include "fpga/resource_model.hpp"
#include "sim/log.hpp"

namespace smappic
{
namespace
{

TEST(ResourceModel, ReproducesTable4Utilization)
{
    fpga::ResourceModel model;
    struct Row
    {
        std::uint32_t b, c;
        double util;
        std::uint32_t freq;
    };
    // Paper Table 4.
    const Row rows[] = {
        {1, 12, 0.97, 75}, {1, 10, 0.83, 100}, {2, 4, 0.73, 100},
        {2, 5, 0.88, 75},  {4, 2, 0.87, 100},
    };
    for (const Row &r : rows) {
        auto e = model.estimate(r.b, r.c);
        EXPECT_TRUE(e.fits);
        EXPECT_NEAR(e.utilization, r.util, 0.05)
            << r.b << "x" << r.c;
        EXPECT_EQ(e.freqMhz, r.freq) << r.b << "x" << r.c;
    }
}

TEST(ResourceModel, TwelveTilesIsTheLimit)
{
    // Paper section 4.8: F1 fits at most 12 Ariane tiles (at 75 MHz).
    fpga::ResourceModel model;
    EXPECT_EQ(model.maxTilesPerNode(75), 12u);
    EXPECT_FALSE(model.estimate(1, 14).fits);
    EXPECT_EQ(model.maxTilesPerNode(100), 10u);
}

TEST(ResourceModel, UtilizationMonotonicInTilesAndNodes)
{
    fpga::ResourceModel model;
    double prev = 0;
    for (std::uint32_t c = 1; c <= 12; ++c) {
        double u = model.estimate(1, c).utilization;
        EXPECT_GT(u, prev);
        prev = u;
    }
    EXPECT_GT(model.estimate(2, 4).utilization,
              model.estimate(1, 4).utilization);
}

TEST(BuildFlow, MatchesPaperTimes)
{
    fpga::BuildFlow flow;
    EXPECT_NEAR(flow.totalHours(), 4.0, 0.01);
    EXPECT_EQ(flow.bitstreamLoadSeconds, 10.0);
    EXPECT_EQ(flow.synthesisMemoryGb, 32.0);
}

TEST(CostModel, Table1InstanceCatalog)
{
    const auto &f1 = cost::instanceNamed("f1.2xlarge");
    EXPECT_EQ(f1.vcpus, 8u);
    EXPECT_EQ(f1.fpgas, 1u);
    EXPECT_DOUBLE_EQ(f1.pricePerHour, 1.65);
    EXPECT_DOUBLE_EQ(f1.hardwarePrice, 8000);

    const auto &f16 = cost::instanceNamed("f1.16xlarge");
    EXPECT_EQ(f16.fpgas, 8u);
    EXPECT_DOUBLE_EQ(f16.pricePerHour, 13.20);
    // $1.65 per FPGA-hour across the family.
    EXPECT_NEAR(f16.pricePerHour / f16.fpgas, 1.65, 0.001);
}

TEST(CostModel, Table3CheapestInstances)
{
    // Sniper: 2 vCPU / 8 GB / no FPGA -> t3 class.
    EXPECT_EQ(cost::cheapestInstanceFor(2, 8, 0).name, "t3.large");
    // gem5: 64 GB -> r5.2xlarge.
    EXPECT_EQ(cost::cheapestInstanceFor(1, 64, 0).name, "r5.2xlarge");
    // SMAPPIC/FireSim: one FPGA -> f1.2xlarge.
    EXPECT_EQ(cost::cheapestInstanceFor(1, 8, 1).name, "f1.2xlarge");
    EXPECT_THROW(cost::cheapestInstanceFor(1, 8, 100), FatalError);
}

TEST(CostModel, Fig13CostOrdering)
{
    const auto &smappic = cost::toolNamed("SMAPPIC");
    const auto &fs_single = cost::toolNamed("FireSim single-node");
    const auto &fs_super = cost::toolNamed("FireSim supernode");
    const auto &gem5 = cost::toolNamed("gem5");

    for (const auto &b : cost::specint2017()) {
        double c_smappic = cost::modelingCostDollars(smappic, b);
        double c_single = cost::modelingCostDollars(fs_single, b);
        double c_super = cost::modelingCostDollars(fs_super, b);
        double c_gem5 = cost::modelingCostDollars(gem5, b);

        // SMAPPIC is the cheapest FPGA method; FireSim single-node costs
        // about 4x more (paper: "about four times better").
        EXPECT_LT(c_smappic, c_single) << b.name;
        EXPECT_NEAR(c_single / c_smappic, 4.0, 0.8) << b.name;
        // Supernode sits between.
        EXPECT_GT(c_super, c_smappic) << b.name;
        EXPECT_LT(c_super, c_single) << b.name;
        // gem5 is 4-5 orders of magnitude worse than SMAPPIC.
        double orders = std::log10(c_gem5 / c_smappic);
        EXPECT_GE(orders, 2.5) << b.name;
    }
}

TEST(CostModel, Gem5McfNeedsHugeHost)
{
    const auto &gem5 = cost::toolNamed("gem5");
    const cost::Benchmark *mcf = nullptr;
    for (const auto &b : cost::specint2017()) {
        if (b.name == "mcf")
            mcf = &b;
    }
    ASSERT_NE(mcf, nullptr);
    // mcf cannot fit in 64 GB: the chosen instance must have >= 350 GB.
    double cost_mcf = cost::modelingCostDollars(gem5, *mcf);
    double time_h = cost::modelingTimeHours(gem5, *mcf);
    EXPECT_GT(cost_mcf / time_h, 3.0); // $/hr of a 384+ GB instance.
}

TEST(CostModel, Fig14CrossoverAround200Days)
{
    double days = cost::crossoverDays();
    EXPECT_NEAR(days, 202.0, 3.0); // 8000 / (24 * 1.65).
    EXPECT_LT(cost::cloudCostDollars(100), cost::onPremCostDollars(100));
    EXPECT_GT(cost::cloudCostDollars(300), cost::onPremCostDollars(300));
}

TEST(CostModel, VerilatorComparisonAround1600x)
{
    EXPECT_DOUBLE_EQ(cost::verilatorHelloSeconds(), 65.0);
    EXPECT_DOUBLE_EQ(cost::smappicHelloSeconds(), 0.004);
    double ratio = cost::verilatorCostEfficiencyRatio();
    EXPECT_GT(ratio, 1200);
    EXPECT_LT(ratio, 2100);
}

TEST(CostModel, SmallBenchmarksAreCheapOnSniper)
{
    // Fig 13 shows Sniper under $0.01 for the smallest test workloads.
    const auto &sniper = cost::toolNamed("Sniper");
    const cost::Benchmark *omnetpp = nullptr;
    for (const auto &b : cost::specint2017()) {
        if (b.name == "omnetpp")
            omnetpp = &b;
    }
    ASSERT_NE(omnetpp, nullptr);
    EXPECT_LT(cost::modelingCostDollars(sniper, *omnetpp), 0.02);
}

} // namespace
} // namespace smappic
