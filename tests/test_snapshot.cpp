/**
 * @file
 * Tests of the checkpoint/restore subsystem (src/snap/) and the
 * watchdog-driven crash recovery built on it: SMCK container
 * round-trips and corruption detection, MainMemory page/epoch state,
 * worker-count-invariant checkpoint bytes, restore-and-resume equality
 * against an uninterrupted run, the Watchdog state machine, and the
 * wedged-node recovery path. Also covers the FaultPlan edge cases the
 * recovery machinery leans on (zero-rate and saturating-rate plans).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "check/torture.hpp"
#include "mem/main_memory.hpp"
#include "platform/prototype.hpp"
#include "sim/fault.hpp"
#include "sim/log.hpp"
#include "sim/watchdog.hpp"
#include "snap/snapshot.hpp"
#include "snap/state_io.hpp"

namespace smappic
{
namespace
{

namespace fs = std::filesystem;

/** Fresh per-test scratch directory under the gtest temp root. */
fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("snap_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------- SMCK

TEST(StateIo, PrimitiveRoundTrip)
{
    fs::path dir = scratchDir("prim");
    std::string path = (dir / "a.smck").string();
    {
        std::ofstream os(path, std::ios::binary);
        snap::Writer w(os);
        w.setConfigHash(0xdeadbeefcafef00dULL);
        w.begin(snap::Section::kMeta);
        w.u8(7);
        w.u16(300);
        w.u32(70'000);
        w.u64(1ULL << 40);
        w.f64(-2.5);
        w.boolean(true);
        w.str("hello");
        w.end();
        w.begin(snap::Section::kMemory);
        const std::uint8_t raw[4] = {1, 2, 3, 4};
        w.bytes(raw, sizeof raw);
        w.end();
        w.finish();
    }
    snap::Reader r(path);
    EXPECT_EQ(r.version(), snap::kSmckVersion);
    EXPECT_EQ(r.configHash(), 0xdeadbeefcafef00dULL);
    ASSERT_EQ(r.sections().size(), 2u);
    EXPECT_TRUE(r.has(snap::Section::kMeta));
    EXPECT_TRUE(r.has(snap::Section::kMemory));
    EXPECT_FALSE(r.has(snap::Section::kCores));

    r.open(snap::Section::kMeta);
    EXPECT_EQ(r.u8(), 7u);
    EXPECT_EQ(r.u16(), 300u);
    EXPECT_EQ(r.u32(), 70'000u);
    EXPECT_EQ(r.u64(), 1ULL << 40);
    EXPECT_EQ(r.f64(), -2.5);
    EXPECT_TRUE(r.boolean());
    EXPECT_EQ(r.str(), "hello");
    EXPECT_EQ(r.remaining(), 0u);

    r.open(snap::Section::kMemory);
    std::uint8_t raw[4] = {};
    r.bytes(raw, sizeof raw);
    EXPECT_EQ(raw[3], 4u);
}

TEST(StateIo, CorruptionIsDetected)
{
    fs::path dir = scratchDir("crc");
    std::string path = (dir / "a.smck").string();
    {
        std::ofstream os(path, std::ios::binary);
        snap::Writer w(os);
        w.begin(snap::Section::kMeta);
        for (int i = 0; i < 64; ++i)
            w.u64(static_cast<std::uint64_t>(i));
        w.end();
        w.finish();
    }
    // Flip one payload byte: open() must reject the section.
    {
        std::fstream f(path,
                       std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(-1, std::ios::end);
        f.put(static_cast<char>(0xa5));
    }
    snap::Reader r(path);
    EXPECT_THROW(r.open(snap::Section::kMeta), FatalError);

    // Truncation must fail header or section parsing, not crash.
    std::vector<std::uint8_t> bytes = slurp(path);
    std::string trunc = (dir / "t.smck").string();
    {
        std::ofstream os(trunc, std::ios::binary);
        os.write(reinterpret_cast<const char *>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size() / 2));
    }
    EXPECT_THROW(snap::Reader{trunc}, FatalError);
}

TEST(StateIo, ReadPastSectionEndThrows)
{
    fs::path dir = scratchDir("bounds");
    std::string path = (dir / "a.smck").string();
    {
        std::ofstream os(path, std::ios::binary);
        snap::Writer w(os);
        w.begin(snap::Section::kMeta);
        w.u32(1);
        w.end();
        w.finish();
    }
    snap::Reader r(path);
    r.open(snap::Section::kMeta);
    EXPECT_EQ(r.u32(), 1u);
    EXPECT_THROW(r.u32(), FatalError);
}

TEST(Snapshot, FileNamingAndRetention)
{
    EXPECT_EQ(snap::checkpointFileName(5040), "smck-000000005040.smck");

    fs::path dir = scratchDir("retention");
    for (Cycles c : {100, 200, 300, 400}) {
        std::ofstream os(dir / snap::checkpointFileName(c),
                         std::ios::binary);
        os << "x";
    }
    EXPECT_EQ(snap::listCheckpoints(dir.string()).size(), 4u);
    EXPECT_EQ(fs::path(snap::latestCheckpoint(dir.string())).filename(),
              snap::checkpointFileName(400));

    snap::pruneCheckpoints(dir.string(), 2);
    auto left = snap::listCheckpoints(dir.string());
    ASSERT_EQ(left.size(), 2u);
    EXPECT_EQ(fs::path(left.front()).filename(),
              snap::checkpointFileName(300));

    snap::pruneCheckpoints(dir.string(), 0); // 0 keeps everything.
    EXPECT_EQ(snap::listCheckpoints(dir.string()).size(), 2u);
}

// -------------------------------------------------------- MainMemory

TEST(MainMemorySnap, RoundTripAndDirtyEpochs)
{
    mem::MainMemory a;
    a.store(0x1000, 8, 0x1122334455667788ULL);
    a.store(0x40'0000, 8, 7);
    EXPECT_EQ(a.pagesDirtySince(0), 2u);

    std::uint64_t epoch = a.beginEpoch();
    EXPECT_EQ(a.pagesDirtySince(epoch), 0u);
    a.store(0x1008, 8, 9); // Same page as 0x1000: re-dirties it.
    EXPECT_EQ(a.pagesDirtySince(epoch), 1u);
    EXPECT_EQ(a.pagesDirtySince(0), 2u);

    fs::path dir = scratchDir("mem");
    std::string path = (dir / "m.smck").string();
    {
        std::ofstream os(path, std::ios::binary);
        snap::Writer w(os);
        w.begin(snap::Section::kMemory);
        a.saveState(w);
        w.end();
        w.finish();
    }

    mem::MainMemory b;
    b.store(0x9000, 8, 42); // Must vanish on restore.
    snap::Reader r(path);
    r.open(snap::Section::kMemory);
    b.restoreState(r);
    EXPECT_EQ(b.load(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(b.load(0x1008, 8), 9u);
    EXPECT_EQ(b.load(0x40'0000, 8), 7u);
    EXPECT_EQ(b.load(0x9000, 8), 0u);
}

// ------------------------------------------------ platform checkpoints

platform::PrototypeConfig
tortureProtoConfig(std::uint32_t threads, Cycles interval,
                   const std::string &dir)
{
    platform::PrototypeConfig cfg =
        platform::PrototypeConfig::parse("2x1x2");
    cfg.seed = 11;
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = 63;
    cfg.snapshot.interval = interval;
    cfg.snapshot.dir = dir;
    cfg.snapshot.keep = 0; // Keep everything: the tests diff the sets.
    return cfg;
}

check::TortureProgram
tortureWorkload()
{
    check::TortureConfig tcfg;
    tcfg.spec = "2x1x2";
    tcfg.seed = 11;
    tcfg.opsPerCore = 48;
    tcfg.sharedLines = 4;
    return check::generateTorture(tcfg);
}

void
runWorkload(platform::Prototype &proto)
{
    std::vector<GlobalTileId> gids;
    for (std::uint32_t c = 0; c < proto.coreCount(); ++c)
        gids.push_back(c);
    proto.runCores(gids, 100'000);
}

TEST(PlatformSnap, CheckpointsAreWorkerCountInvariant)
{
    std::vector<std::string> dirs;
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        fs::path dir =
            scratchDir("workers" + std::to_string(threads));
        platform::Prototype proto(
            tortureProtoConfig(threads, 4000, dir.string()));
        proto.loadSource(tortureWorkload().source);
        runWorkload(proto);
        dirs.push_back(dir.string());
    }
    auto ref = snap::listCheckpoints(dirs[0]);
    ASSERT_GE(ref.size(), 2u) << "workload too short to checkpoint";
    for (std::size_t d = 1; d < dirs.size(); ++d) {
        auto got = snap::listCheckpoints(dirs[d]);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i) {
            EXPECT_EQ(fs::path(ref[i]).filename(),
                      fs::path(got[i]).filename());
            EXPECT_EQ(slurp(ref[i]), slurp(got[i]))
                << ref[i] << " vs " << got[i];
        }
    }
}

TEST(PlatformSnap, RestoreAndResumeMatchesUninterruptedRun)
{
    fs::path dir_a = scratchDir("resume_a");
    fs::path dir_b = scratchDir("resume_b");
    check::TortureProgram prog = tortureWorkload();

    // Reference: uninterrupted run, then a final explicit checkpoint
    // capturing cores + memory + caches + stats in one comparable blob.
    platform::Prototype a(tortureProtoConfig(2, 4000, dir_a.string()));
    a.loadSource(prog.source);
    runWorkload(a);
    std::string final_a = (dir_a / "final.smck").string();
    a.checkpoint(final_a);

    auto mids = snap::listCheckpoints(dir_a.string());
    ASSERT_GE(mids.size(), 2u);

    // Resume from a mid-run checkpoint in a fresh prototype; worker
    // count deliberately differs from the writer's.
    platform::Prototype b(tortureProtoConfig(4, 4000, dir_b.string()));
    b.loadSource(prog.source);
    b.restore(mids[mids.size() / 2]);
    runWorkload(b);
    std::string final_b = (dir_b / "final.smck").string();
    b.checkpoint(final_b);

    EXPECT_EQ(slurp(final_a), slurp(final_b));
    EXPECT_EQ(b.eventQueue().now(), a.eventQueue().now());
    EXPECT_EQ(b.stats().counter("snap.checkpoints").value(),
              a.stats().counter("snap.checkpoints").value());
}

TEST(PlatformSnap, RestoreRejectsMismatchedConfig)
{
    fs::path dir = scratchDir("mismatch");
    platform::Prototype a(tortureProtoConfig(1, 0, dir.string()));
    a.loadSource(tortureWorkload().source);
    std::string path = (dir / "a.smck").string();
    a.checkpoint(path);

    platform::PrototypeConfig other =
        tortureProtoConfig(1, 0, dir.string());
    other.seed = 99; // Different seed -> different fingerprint.
    platform::Prototype b(other);
    EXPECT_THROW(b.restore(path), FatalError);

    snap::SnapshotInfo info = snap::inspect(path);
    EXPECT_EQ(info.configName, "2x1x2");
    EXPECT_EQ(info.nodes, 2u);
    EXPECT_EQ(info.tilesPerNode, 2u);
    std::string error;
    EXPECT_TRUE(snap::validate(path, &error)) << error;
    EXPECT_TRUE(snap::diff(path, path).empty());
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, PrimesThenFiresOnFlatCommits)
{
    sim::StatRegistry stats;
    sim::WatchdogConfig cfg;
    cfg.stallCycles = 100;
    sim::Watchdog wd(cfg, 2, &stats);

    std::vector<std::uint64_t> committed{10, 10};
    std::vector<bool> live{true, true};

    // First observation primes; it can never fire.
    EXPECT_FALSE(wd.observe(1000, committed, live).stallDetected);
    // Progress on node 0 only; node 1 flat but under threshold.
    committed[0] = 20;
    EXPECT_FALSE(wd.observe(1050, committed, live).stallDetected);
    // Node 1 crosses the threshold, node 0 keeps committing.
    committed[0] = 30;
    auto v = wd.observe(1150, committed, live);
    ASSERT_TRUE(v.stallDetected);
    ASSERT_EQ(v.stalledNodes.size(), 1u);
    EXPECT_EQ(v.stalledNodes[0], 1u);
    EXPECT_EQ(wd.stallsDetected(), 1u);
    EXPECT_EQ(stats.counter("watchdog.stallsDetected").value(), 1u);

    // The firing rebased node 1's mark: no immediate re-fire.
    EXPECT_FALSE(wd.observe(1200, committed, live).stallDetected);
    // ...but another full window of silence fires again.
    EXPECT_TRUE(wd.observe(1260, committed, live).stallDetected);
}

TEST(Watchdog, DoneNodesAndDisabledConfigNeverStall)
{
    sim::StatRegistry stats;
    sim::WatchdogConfig off; // stallCycles = 0.
    sim::Watchdog disabled(off, 1, &stats);
    std::vector<std::uint64_t> committed{5};
    std::vector<bool> live{true};
    EXPECT_FALSE(disabled.observe(1'000'000, committed, live)
                     .stallDetected);

    sim::WatchdogConfig cfg;
    cfg.stallCycles = 10;
    sim::Watchdog wd(cfg, 1, &stats);
    live[0] = false; // Node finished: flat commits are fine forever.
    wd.observe(0, committed, live);
    EXPECT_FALSE(wd.observe(1'000'000, committed, live).stallDetected);

    // rebase() forgets the marks: the next observe re-primes.
    live[0] = true;
    wd.rebase();
    EXPECT_FALSE(wd.observe(2'000'000, committed, live).stallDetected);
}

platform::PrototypeConfig
wedgedConfig(const std::string &dir, sim::WatchdogAction action)
{
    platform::PrototypeConfig cfg =
        platform::PrototypeConfig::parse("2x1x2");
    cfg.seed = 11;
    cfg.parallel.threads = 2;
    cfg.parallel.quantum = 63;
    cfg.snapshot.interval = 1000;
    cfg.snapshot.dir = dir;
    cfg.snapshot.keep = 2;
    // Commits arrive in ~100-instruction bursts whose spacing is set by
    // miss latency; the threshold must exceed the burst period or a
    // healthy node trips it.
    cfg.watchdog.stallCycles = 8000;
    cfg.watchdog.action = action;
    sim::FaultRule rule;
    rule.site = "node.wedge.node1";
    rule.kind = sim::FaultKind::kDrop;
    rule.probability = 1.0;
    rule.firstEvent = 30; // Wedge node 1 at its 31st barrier.
    cfg.faultPlan.seed = 11;
    cfg.faultPlan.add(rule);
    return cfg;
}

TEST(WatchdogRecovery, WedgedNodeRollsBackAndCompletes)
{
    fs::path dir = scratchDir("recover");
    platform::Prototype proto(
        wedgedConfig(dir.string(), sim::WatchdogAction::kRecover));
    check::TortureProgram prog = tortureWorkload();
    proto.loadSource(prog.source);
    runWorkload(proto);

    // The wedge fired, the watchdog saw it, and recovery rolled the run
    // back far enough to finish the workload anyway.
    EXPECT_EQ(proto.stats().counter("fault.nodeWedge").value(), 1u);
    EXPECT_GE(proto.stats().counter("watchdog.stallsDetected").value(),
              1u);
    EXPECT_GE(proto.stats().counter("watchdog.recoveries").value(), 1u);

    // Completion check: every core ran to the same exit a clean
    // (wedge-free) run reaches.
    platform::Prototype clean(tortureProtoConfig(2, 0, dir.string()));
    clean.loadSource(prog.source);
    runWorkload(clean);
    for (std::uint32_t c = 0; c < proto.coreCount(); ++c)
        EXPECT_EQ(proto.core(c).exitCode(), clean.core(c).exitCode())
            << "core " << c;
}

TEST(WatchdogRecovery, ReportActionOnlyCounts)
{
    fs::path dir = scratchDir("report");
    platform::Prototype proto(
        wedgedConfig(dir.string(), sim::WatchdogAction::kReport));
    proto.loadSource(tortureWorkload().source);
    runWorkload(proto); // Must terminate via the idle-epoch limit.
    EXPECT_GE(proto.stats().counter("watchdog.stallsDetected").value(),
              1u);
    EXPECT_EQ(proto.stats().counter("watchdog.recoveries").value(), 0u);
}

TEST(WatchdogRecovery, PanicActionThrows)
{
    fs::path dir = scratchDir("panic");
    platform::Prototype proto(
        wedgedConfig(dir.string(), sim::WatchdogAction::kPanic));
    proto.loadSource(tortureWorkload().source);
    EXPECT_THROW(runWorkload(proto), PanicError);
}

// ------------------------------------------------- FaultPlan edge cases

noc::Packet
bridgePacket(NodeId src, NodeId dst, std::uint64_t seq)
{
    noc::Packet p;
    p.noc = noc::NocIndex::kNoc1;
    p.srcNode = src;
    p.srcTile = 0;
    p.dstNode = dst;
    p.dstTile = 1;
    p.type = noc::MsgType::kDataResp;
    p.addr = seq;
    p.payload.push_back(seq);
    return p;
}

TEST(FaultPlanEdges, ZeroRatePlanInjectsNothing)
{
    // A plan full of zero-probability rules must behave exactly like no
    // plan: sites are consulted but nothing ever fires.
    platform::PrototypeConfig cfg =
        platform::PrototypeConfig::parse("2x1x2");
    cfg.seed = 11;
    cfg.faultPlan.seed = 11;
    cfg.faultPlan.corrupt("bridge.tx", 0.0);
    cfg.faultPlan.drop("bridge.creditRead", 0.0);
    cfg.faultPlan.drop("pcie.write", 0.0);
    cfg.reliability.enabled = true;
    platform::Prototype proto(cfg);
    ASSERT_NE(proto.faultInjector(), nullptr);

    std::vector<noc::Packet> at1;
    proto.bridge(1).setDeliverFn(
        [&](const noc::Packet &p) { at1.push_back(p); });
    for (std::uint64_t i = 0; i < 50; ++i)
        proto.bridge(0).sendPacket(bridgePacket(0, 1, i));
    proto.eventQueue().run();

    EXPECT_EQ(at1.size(), 50u); // Exactly once, nothing lost.
    EXPECT_EQ(proto.faultInjector()->dropsInjected(), 0u);
    EXPECT_EQ(proto.faultInjector()->corruptionsInjected(), 0u);
    EXPECT_EQ(proto.stats().counter("fault.drop").value(), 0u);
    EXPECT_EQ(proto.stats().counter("fault.corrupt").value(), 0u);
    EXPECT_EQ(proto.stats().counter("bridge.retransmits").value(), 0u);
    EXPECT_EQ(proto.stats().counter("bridge.crcErrors").value(), 0u);
    EXPECT_EQ(proto.stats().counter("bridge.peerDegraded").value(), 0u);
}

TEST(FaultPlanEdges, SaturatingDropsDegradeDeterministically)
{
    // Every credit read dropped forever: the reliable link must not
    // spin on the wire — accumulated poll failures deterministically
    // mark the peer degraded within a bounded horizon. The degraded
    // peer keeps probing while traffic waits, so the horizon is
    // enforced with runUntil rather than run().
    platform::PrototypeConfig cfg =
        platform::PrototypeConfig::parse("2x1x2");
    cfg.seed = 11;
    cfg.faultPlan.seed = 11;
    cfg.faultPlan.drop("bridge.creditRead", 1.0);
    cfg.reliability.enabled = true;

    std::uint64_t degraded[2] = {0, 0};
    std::uint64_t drops[2] = {0, 0};
    for (int round = 0; round < 2; ++round) {
        platform::Prototype proto(cfg);
        std::vector<noc::Packet> at1;
        proto.bridge(1).setDeliverFn(
            [&](const noc::Packet &p) { at1.push_back(p); });
        // More packets than the per-NoC credit pool: the sender runs
        // out of credits and has to poll.
        for (std::uint64_t i = 0; i < 64; ++i)
            proto.bridge(0).sendPacket(bridgePacket(0, 1, i));
        proto.eventQueue().runUntil(2'000'000);

        EXPECT_TRUE(proto.bridge(0).peerDegraded(1));
        EXPECT_LT(at1.size(), 64u); // The tail is stuck behind credits.
        degraded[round] =
            proto.stats().counter("bridge.peerDegraded").value();
        drops[round] = proto.stats().counter("fault.drop").value();
        EXPECT_GE(degraded[round], 1u);
        EXPECT_GE(drops[round], 1u);
    }
    // Deterministic verdict: both rounds fail identically.
    EXPECT_EQ(degraded[0], degraded[1]);
    EXPECT_EQ(drops[0], drops[1]);
}

} // namespace
} // namespace smappic
