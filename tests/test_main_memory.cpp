/**
 * @file
 * Tests for the sparse functional backing store.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "mem/main_memory.hpp"
#include "sim/log.hpp"

namespace smappic::mem
{
namespace
{

TEST(MainMemory, ZeroInitialized)
{
    MainMemory m;
    EXPECT_EQ(m.load(0x1234, 8), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

TEST(MainMemory, StoreLoadRoundTrip)
{
    MainMemory m;
    m.store(0x1000, 8, 0x1122334455667788ULL);
    EXPECT_EQ(m.load(0x1000, 8), 0x1122334455667788ULL);
    EXPECT_EQ(m.load(0x1000, 4), 0x55667788ULL);
    EXPECT_EQ(m.load(0x1004, 4), 0x11223344ULL);
    EXPECT_EQ(m.load(0x1000, 1), 0x88ULL);
}

TEST(MainMemory, SubByteWidths)
{
    MainMemory m;
    m.store(0x10, 1, 0xab);
    m.store(0x11, 2, 0xcdef);
    EXPECT_EQ(m.load(0x10, 1), 0xabULL);
    EXPECT_EQ(m.load(0x11, 2), 0xcdefULL);
    EXPECT_THROW(m.load(0x10, 0), PanicError);
    EXPECT_THROW(m.load(0x10, 9), PanicError);
}

TEST(MainMemory, CrossPageAccess)
{
    MainMemory m;
    Addr boundary = MainMemory::kPageBytes - 4;
    m.store(boundary, 8, 0xdeadbeefcafebabeULL);
    EXPECT_EQ(m.load(boundary, 8), 0xdeadbeefcafebabeULL);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(MainMemory, BulkReadWrite)
{
    MainMemory m;
    std::vector<std::uint8_t> data(10000);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    m.writeBytes(0x100000, data.data(), data.size());
    std::vector<std::uint8_t> back(data.size());
    m.readBytes(0x100000, back.data(), back.size());
    EXPECT_EQ(data, back);
}

TEST(MainMemory, SparseFootprint)
{
    MainMemory m;
    // Touch two bytes 1 GiB apart: only two pages materialize.
    m.store(0, 1, 1);
    m.store(1ULL << 30, 1, 1);
    EXPECT_EQ(m.pagesAllocated(), 2u);
}

TEST(MainMemory, ClearDropsContents)
{
    MainMemory m;
    m.store(0x40, 8, 42);
    m.clear();
    EXPECT_EQ(m.load(0x40, 8), 0u);
    EXPECT_EQ(m.pagesAllocated(), 0u);
}

} // namespace
} // namespace smappic::mem
