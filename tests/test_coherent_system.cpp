/**
 * @file
 * Tests for the transaction-level coherent memory system: hit/miss walks,
 * MESI directory transitions, SMAPPIC homing policies, inter-node latency
 * structure, and randomized invariant checking.
 */

#include <gtest/gtest.h>

#include "cache/coherent_system.hpp"
#include "sim/random.hpp"

namespace smappic::cache
{
namespace
{

Geometry
smallGeo(std::uint32_t nodes, std::uint32_t tiles)
{
    Geometry g;
    g.nodes = nodes;
    g.tilesPerNode = tiles;
    g.memPerNode = 1ULL << 30;
    return g;
}

TEST(CoherentSystem, ColdMissThenHits)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    auto miss = cs.access(0, 0x1000, AccessType::kLoad, 8, 0);
    EXPECT_GT(miss.latency, cs.timing().dramLatency);
    EXPECT_TRUE(miss.level == ServiceLevel::kDramLocal);

    auto hit = cs.access(0, 0x1008, AccessType::kLoad, 8, 1000);
    EXPECT_EQ(hit.level, ServiceLevel::kL1);
    EXPECT_EQ(hit.latency, cs.timing().l1HitLatency);
}

TEST(CoherentSystem, SecondTileHitsLlc)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    cs.access(0, 0x2000, AccessType::kLoad, 8, 0);
    // Tile 1 misses privately but the line is now in the LLC.
    auto r = cs.access(1, 0x2000, AccessType::kLoad, 8, 1000);
    EXPECT_EQ(r.level, ServiceLevel::kLlcLocal);
    EXPECT_LT(r.latency, cs.timing().dramLatency + 100);
}

TEST(CoherentSystem, StoreInvalidatesSharers)
{
    CoherentSystem cs(smallGeo(1, 4), TimingParams{},
                      HomingPolicy::kAddressNode);
    // All four tiles share the line.
    for (GlobalTileId g = 0; g < 4; ++g)
        cs.access(g, 0x3000, AccessType::kLoad, 8, 0);
    EXPECT_TRUE(cs.checkDirectory());

    // Tile 0 writes: everyone else must lose the line.
    cs.access(0, 0x3000, AccessType::kStore, 8, 10000);
    EXPECT_TRUE(cs.checkDirectory());
    EXPECT_GE(cs.stats().counterValue("cs.dir.invalidations"), 3u);

    // Sharers re-miss after the invalidation.
    auto r = cs.access(1, 0x3000, AccessType::kLoad, 8, 20000);
    EXPECT_NE(r.level, ServiceLevel::kL1);
    EXPECT_NE(r.level, ServiceLevel::kPrivate);
}

TEST(CoherentSystem, LoadFromOwnerForwardsAndDowngrades)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    cs.access(0, 0x4000, AccessType::kStore, 8, 0);
    auto r = cs.access(1, 0x4000, AccessType::kLoad, 8, 10000);
    EXPECT_EQ(cs.stats().counterValue("cs.dir.downgrades"), 1u);
    EXPECT_EQ(r.level, ServiceLevel::kLlcLocal);
    EXPECT_TRUE(cs.checkDirectory());

    // Former owner can still read at L1 speed (downgraded, not dropped).
    auto r0 = cs.access(0, 0x4000, AccessType::kLoad, 8, 20000);
    EXPECT_EQ(r0.level, ServiceLevel::kL1);
}

TEST(CoherentSystem, StoreHitInModifiedIsFast)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    cs.access(0, 0x5000, AccessType::kStore, 8, 0);
    auto r = cs.access(0, 0x5000, AccessType::kStore, 8, 1000);
    EXPECT_EQ(r.latency, cs.timing().l1HitLatency);
}

TEST(CoherentSystem, UpgradeFromSharedCostsATransaction)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    cs.access(0, 0x6000, AccessType::kLoad, 8, 0);
    auto r = cs.access(0, 0x6000, AccessType::kStore, 8, 1000);
    EXPECT_GT(r.latency, cs.timing().l1HitLatency * 10);
    EXPECT_TRUE(cs.checkDirectory());
}

TEST(CoherentSystem, HomingPolicies)
{
    Geometry geo = smallGeo(4, 4);
    {
        CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kAddressNode);
        // Address in node 2's DRAM region must home on node 2.
        Addr a = 2 * geo.memPerNode + 0x1000;
        EXPECT_EQ(cs.homeOf(a).first, 2u);
        EXPECT_EQ(cs.addrNode(a), 2u);
    }
    {
        CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kNode0);
        Addr a = 3 * geo.memPerNode + 0x1000;
        EXPECT_EQ(cs.homeOf(a).first, 0u);
    }
    {
        CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kGlobalHash);
        // Hash homing spreads lines across all nodes.
        bool node_seen[4] = {false, false, false, false};
        for (Addr a = 0; a < 256 * 64; a += 64)
            node_seen[cs.homeOf(a).first] = true;
        EXPECT_TRUE(node_seen[0] && node_seen[1] && node_seen[2] &&
                    node_seen[3]);
    }
}

TEST(CoherentSystem, InterNodeLatencyMatchesPaperShape)
{
    // Fig 7: intra-node round trips ~100 cycles, inter-node ~250 (2.5x).
    Geometry geo = smallGeo(4, 12);
    CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kAddressNode);

    // Warm the LLC so the measured path is requester -> home LLC -> back.
    Addr local = 0x10000;              // Node 0 DRAM.
    Addr remote = geo.memPerNode + 0x10000; // Node 1 DRAM.
    cs.access(1, local, AccessType::kLoad, 8, 0);
    cs.access(1, remote, AccessType::kLoad, 8, 5000);
    cs.flushPrivate(1);

    auto intra = cs.access(1, local, AccessType::kLoad, 8, 100000);
    cs.flushPrivate(1);
    auto inter = cs.access(1, remote, AccessType::kLoad, 8, 200000);

    EXPECT_EQ(intra.level, ServiceLevel::kLlcLocal);
    EXPECT_EQ(inter.level, ServiceLevel::kLlcRemote);
    EXPECT_TRUE(inter.crossedNode);

    // Paper shape: intra in [70, 140], inter/intra in [2.0, 3.0].
    EXPECT_GE(intra.latency, 70u);
    EXPECT_LE(intra.latency, 140u);
    double ratio = static_cast<double>(inter.latency) /
                   static_cast<double>(intra.latency);
    EXPECT_GE(ratio, 2.0);
    EXPECT_LE(ratio, 3.0);
}

TEST(CoherentSystem, RemoteDramCostsMoreThanLocal)
{
    Geometry geo = smallGeo(2, 2);
    CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kAddressNode);
    auto local = cs.access(0, 0x1000, AccessType::kLoad, 8, 0);
    auto remote = cs.access(0, geo.memPerNode + 0x1000, AccessType::kLoad, 8,
                            10000);
    EXPECT_EQ(local.level, ServiceLevel::kDramLocal);
    EXPECT_EQ(remote.level, ServiceLevel::kDramRemote);
    EXPECT_GT(remote.latency, local.latency + cs.timing().pcieRtt / 2);
}

TEST(CoherentSystem, AtomicsSerializeAtHome)
{
    CoherentSystem cs(smallGeo(1, 4), TimingParams{},
                      HomingPolicy::kAddressNode);
    for (GlobalTileId g = 0; g < 4; ++g)
        cs.access(g, 0x7000, AccessType::kLoad, 8, 0);
    auto r = cs.access(0, 0x7000, AccessType::kAtomic, 8, 10000);
    EXPECT_GT(r.latency, cs.timing().llcLatency);
    EXPECT_TRUE(cs.checkDirectory());
    // After the atomic nobody holds a private copy.
    auto r2 = cs.access(0, 0x7000, AccessType::kLoad, 8, 20000);
    EXPECT_NE(r2.level, ServiceLevel::kL1);
}

TEST(CoherentSystem, DramChannelCongestionQueues)
{
    Geometry geo = smallGeo(1, 4);
    CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kAddressNode);
    // Hammer distinct lines at the same instant: the single DRAM channel
    // must serialize them.
    for (int i = 0; i < 64; ++i)
        cs.access(static_cast<GlobalTileId>(i % 4),
                  0x100000 + static_cast<Addr>(i) * 4096,
                  AccessType::kLoad, 8, 0);
    EXPECT_GT(cs.dramQueuedCycles(0), 0u);
}

TEST(CoherentSystem, InstructionFetchFillsL1I)
{
    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    auto miss = cs.access(0, 0x8000, AccessType::kFetch, 4, 0);
    EXPECT_NE(miss.level, ServiceLevel::kL1);
    auto hit = cs.access(0, 0x8000, AccessType::kFetch, 4, 1000);
    EXPECT_EQ(hit.level, ServiceLevel::kL1);
    // Fetch and load streams are separate L1 arrays.
    auto dmiss = cs.access(0, 0x8000, AccessType::kLoad, 8, 2000);
    EXPECT_EQ(dmiss.level, ServiceLevel::kPrivate); // BPC holds the line.
}

TEST(CoherentSystem, DeviceWindowRoutesToDevice)
{
    struct Echo : NcDevice
    {
        std::uint64_t
        ncLoad(Addr off, std::uint32_t, Cycles, Cycles &service) override
        {
            service = 5;
            return off + 100;
        }
        void
        ncStore(Addr, std::uint32_t, std::uint64_t value, Cycles,
                Cycles &service) override
        {
            service = 5;
            last = value;
        }
        std::uint64_t last = 0;
    };

    CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                      HomingPolicy::kAddressNode);
    Echo dev;
    cs.addDevice(0xf0000000, 0x1000, 1, &dev);

    auto r = cs.access(0, 0xf0000008, AccessType::kNcLoad, 8, 0);
    EXPECT_EQ(r.level, ServiceLevel::kDevice);
    EXPECT_EQ(cs.memory().load(0xf0000008, 8), 108u);

    cs.memory().store(0xf0000010, 8, 77);
    cs.access(0, 0xf0000010, AccessType::kNcStore, 8, 100);
    EXPECT_EQ(dev.last, 77u);
}

TEST(CoherentSystem, PropertyRandomizedInvariants)
{
    sim::Xoroshiro rng(2024);
    Geometry geo = smallGeo(2, 4);
    geo.bpcBytes = 1 << 10; // Small caches force evictions/recalls.
    geo.l1dBytes = 512;
    geo.l1iBytes = 512;
    geo.llcSliceBytes = 4 << 10;
    CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kAddressNode);

    Cycles now = 0;
    for (int i = 0; i < 8000; ++i) {
        auto gid = static_cast<GlobalTileId>(rng.below(8));
        Addr addr = (rng.below(512) * 64) +
                    (rng.chance(0.5) ? geo.memPerNode : 0);
        AccessType type;
        switch (rng.below(4)) {
          case 0:
            type = AccessType::kStore;
            break;
          case 3:
            type = AccessType::kAtomic;
            break;
          default:
            type = AccessType::kLoad;
            break;
        }
        now += 20;
        cs.access(gid, addr, type, 8, now);
        if (i % 500 == 0) {
            ASSERT_TRUE(cs.checkInclusion()) << "iteration " << i;
            ASSERT_TRUE(cs.checkDirectory()) << "iteration " << i;
        }
    }
    EXPECT_TRUE(cs.checkInclusion());
    EXPECT_TRUE(cs.checkDirectory());
    EXPECT_GT(cs.stats().counterValue("cs.llc.evictions"), 0u);
    EXPECT_GT(cs.stats().counterValue("cs.bpc.writebacks"), 0u);
}

TEST(CoherentSystem, GlobalHashHomingCrossesForFills)
{
    // Under kGlobalHash a line whose DRAM is local can be homed remotely;
    // the ablation bench quantifies this, here we check it happens.
    Geometry geo = smallGeo(4, 4);
    CoherentSystem cs(geo, TimingParams{}, HomingPolicy::kGlobalHash);
    std::uint64_t crossings = 0;
    for (int i = 0; i < 64; ++i) {
        auto r = cs.access(0, static_cast<Addr>(i) * 64, AccessType::kLoad,
                           8, static_cast<Cycles>(i) * 1000);
        crossings += r.crossedNode ? 1 : 0;
    }
    EXPECT_GT(crossings, 0u);
}

TEST(CoherentSystem, RejectsOversizedSystems)
{
    EXPECT_THROW(CoherentSystem(smallGeo(8, 12), TimingParams{},
                                HomingPolicy::kAddressNode),
                 FatalError);
}

} // namespace
} // namespace smappic::cache

namespace smappic::cache
{
namespace
{

TEST(CoherentSystem, CdrRestrictsCachingToTheDomain)
{
    Geometry geo;
    geo.nodes = 2;
    geo.tilesPerNode = 2;
    geo.memPerNode = 1ULL << 30;
    CoherentSystem cs(geo, TimingParams{},
                      HomingPolicy::kCoherenceDomains);

    // In-domain accesses cache normally.
    cs.access(0, 0x1000, AccessType::kLoad, 8, 0);
    auto hit = cs.access(0, 0x1000, AccessType::kLoad, 8, 1000);
    EXPECT_EQ(hit.level, ServiceLevel::kL1);

    // Out-of-domain accesses are uncached every time.
    Addr remote = geo.memPerNode + 0x1000;
    auto r1 = cs.access(0, remote, AccessType::kLoad, 8, 2000);
    auto r2 = cs.access(0, remote, AccessType::kLoad, 8, 10000);
    EXPECT_EQ(r1.level, ServiceLevel::kDramRemote);
    EXPECT_EQ(r2.level, ServiceLevel::kDramRemote); // Never a cache hit.
    EXPECT_TRUE(r2.crossedNode);
    EXPECT_EQ(cs.stats().counterValue("cs.cdr.uncachedRemote"), 2u);
    // The domain's own tiles are unaffected.
    auto local_other = cs.access(2, remote, AccessType::kLoad, 8, 20000);
    (void)local_other;
    auto local_hit = cs.access(2, remote, AccessType::kLoad, 8, 30000);
    EXPECT_EQ(local_hit.level, ServiceLevel::kL1);
}

TEST(CoherentSystem, CdrSlowerThanSmappicHomingOnSharedData)
{
    // The quantitative version of "works out of the box": cross-node
    // sharing under CDR pays an uncached round trip per access.
    Geometry geo;
    geo.nodes = 2;
    geo.tilesPerNode = 2;
    geo.memPerNode = 1ULL << 30;

    auto total = [&](HomingPolicy policy) {
        CoherentSystem cs(geo, TimingParams{}, policy);
        Cycles sum = 0;
        Addr base = geo.memPerNode + 0x4000; // Node 1 memory.
        for (int i = 0; i < 32; ++i) {
            auto r = cs.access(0, base + static_cast<Addr>(i % 4) * 8,
                               AccessType::kLoad, 8,
                               static_cast<Cycles>(i) * 1000);
            sum += r.latency;
        }
        return sum;
    };

    Cycles smappic = total(HomingPolicy::kAddressNode);
    Cycles cdr = total(HomingPolicy::kCoherenceDomains);
    EXPECT_GT(cdr, smappic * 5); // Reuse caches under SMAPPIC, never CDR.
}

// ---------- table-driven MESI directory transitions ----------

/** Compact directory-state descriptor for one line, derived from the
 *  inspection API: "I" (no entry), "M<g>" (owned), "S{a,b}" (shared),
 *  "L" (resident at home with no private copies — post-atomic/recall). */
std::string
dirState(CoherentSystem &cs, Addr line)
{
    cache::LineView v = cs.inspectLine(line);
    if (!v.hasDirEntry)
        return "I";
    if (v.owner >= 0)
        return "M" + std::to_string(v.owner);
    if (v.sharers != 0) {
        std::string s = "S{";
        bool first = true;
        for (std::uint32_t g = 0; g < v.tiles.size(); ++g) {
            if (!((v.sharers >> g) & 1))
                continue;
            s += (first ? "" : ",") + std::to_string(g);
            first = false;
        }
        return s + "}";
    }
    return "L";
}

TEST(CoherentSystem, MesiTransitionTableCrossProduct)
{
    // Written-down expected-next-state table: every reachable directory
    // start state x every request shape on a 1x2 system. Start states
    // are established by a setup access sequence on a fresh system.
    using Op = std::pair<GlobalTileId, AccessType>;
    struct Start
    {
        const char *name;
        std::vector<Op> setup;
    };
    const std::vector<Start> starts = {
        {"I", {}},
        {"S{0}", {{0, AccessType::kLoad}}},
        {"S{0,1}", {{0, AccessType::kLoad}, {1, AccessType::kLoad}}},
        {"M0", {{0, AccessType::kStore}}},
        {"L", {{0, AccessType::kAtomic}}},
    };
    const std::vector<Op> requests = {
        {0, AccessType::kLoad},  {1, AccessType::kLoad},
        {0, AccessType::kStore}, {1, AccessType::kStore},
        {1, AccessType::kFetch}, {1, AccessType::kAtomic},
    };
    // expected[start][request]: rows in `starts` order, columns in
    // `requests` order.
    const char *expected[5][6] = {
        // 0:load    1:load    0:store 1:store 1:fetch   1:atomic
        {"S{0}", "S{1}", "M0", "M1", "S{1}", "L"},     // from I
        {"S{0}", "S{0,1}", "M0", "M1", "S{0,1}", "L"}, // from S0
        {"S{0,1}", "S{0,1}", "M0", "M1", "S{0,1}", "L"}, // from S01
        {"M0", "S{0,1}", "M0", "M1", "S{0,1}", "L"},   // from M0
        {"S{0}", "S{1}", "M0", "M1", "S{1}", "L"},     // from L
    };

    const Addr line = 0x8000;
    for (std::size_t si = 0; si < starts.size(); ++si) {
        for (std::size_t ri = 0; ri < requests.size(); ++ri) {
            CoherentSystem cs(smallGeo(1, 2), TimingParams{},
                              HomingPolicy::kAddressNode);
            Cycles t = 0;
            for (const Op &op : starts[si].setup)
                cs.access(op.first, line, op.second, 8, t += 1000);
            ASSERT_EQ(dirState(cs, line), starts[si].name)
                << "setup for " << starts[si].name;

            cs.access(requests[ri].first, line, requests[ri].second, 8,
                      t += 1000);
            EXPECT_EQ(dirState(cs, line), expected[si][ri])
                << "from " << starts[si].name << ", request "
                << static_cast<int>(requests[ri].second) << " by tile "
                << requests[ri].first;
            EXPECT_TRUE(cs.checkDirectory());
        }
    }
}

} // namespace
} // namespace smappic::cache
