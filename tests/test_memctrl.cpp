/**
 * @file
 * Tests for the NoC-AXI4 memory controller and the AXI DRAM channel:
 * alignment, byte selection, MSHR/ID management, non-blocking operation
 * and response integrity.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "mem/noc_axi_memctrl.hpp"
#include "sim/random.hpp"

namespace smappic::mem
{
namespace
{

struct Harness
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    MainMemory memory;
    AxiDram dram;
    NocAxiMemController ctrl;
    std::vector<noc::Packet> responses;

    explicit Harness(MemCtrlConfig cfg = {})
        : dram(eq, memory, 0, 1ULL << 30, DramTiming{}),
          ctrl(0, eq, dram, cfg, &stats)
    {
        ctrl.setSendFn(
            [this](const noc::Packet &p) { responses.push_back(p); });
    }

    noc::Packet
    readReq(Addr addr, std::uint8_t size_log2, std::uint8_t mshr = 1,
            TileId src_tile = 4)
    {
        noc::Packet p;
        p.noc = noc::NocIndex::kNoc1;
        p.srcNode = 0;
        p.srcTile = src_tile;
        p.dstNode = 0;
        p.dstTile = noc::kOffChipTile;
        p.type = noc::MsgType::kMemRd;
        p.mshr = mshr;
        p.sizeLog2 = size_log2;
        p.addr = addr;
        return p;
    }

    noc::Packet
    writeReq(Addr addr, std::uint8_t size_log2,
             const std::vector<std::uint64_t> &data)
    {
        noc::Packet p = readReq(addr, size_log2);
        p.type = noc::MsgType::kMemWr;
        p.payload = data;
        return p;
    }
};

TEST(NocAxiMemCtrl, FullLineRead)
{
    Harness h;
    h.memory.store(0x1000, 8, 0x1122334455667788ULL);
    h.ctrl.handlePacket(h.readReq(0x1000, 6));
    h.eq.run();
    ASSERT_EQ(h.responses.size(), 1u);
    const auto &r = h.responses[0];
    EXPECT_EQ(r.type, noc::MsgType::kMemRdResp);
    EXPECT_EQ(r.dstTile, 4u);
    EXPECT_EQ(r.mshr, 1u);
    ASSERT_EQ(r.payload.size(), 8u);
    EXPECT_EQ(r.payload[0], 0x1122334455667788ULL);
}

TEST(NocAxiMemCtrl, SubLineReadSelectsBytes)
{
    Harness h;
    h.memory.store(0x1038, 8, 0xcafebabe12345678ULL);
    // 8-byte read at an address 0x38 into the line: the controller aligns
    // the AXI burst to 64 B and selects the requested window back out.
    h.ctrl.handlePacket(h.readReq(0x1038, 3));
    h.eq.run();
    ASSERT_EQ(h.responses.size(), 1u);
    ASSERT_EQ(h.responses[0].payload.size(), 1u);
    EXPECT_EQ(h.responses[0].payload[0], 0xcafebabe12345678ULL);
}

TEST(NocAxiMemCtrl, CrossLineReadAlignsToTwoLines)
{
    Harness h;
    h.memory.store(0x10fc, 4, 0xaabbccdd);
    h.memory.store(0x1100, 4, 0x11223344);
    h.ctrl.handlePacket(h.readReq(0x10fc, 3)); // Crosses a 64B boundary.
    h.eq.run();
    ASSERT_EQ(h.responses.size(), 1u);
    EXPECT_EQ(h.responses[0].payload[0], 0x11223344aabbccddULL);
}

TEST(NocAxiMemCtrl, WritePersistsAndAcks)
{
    Harness h;
    h.ctrl.handlePacket(h.writeReq(0x2000, 6,
                                   {1, 2, 3, 4, 5, 6, 7, 8}));
    h.eq.run();
    ASSERT_EQ(h.responses.size(), 1u);
    EXPECT_EQ(h.responses[0].type, noc::MsgType::kMemWrResp);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(h.memory.load(0x2000 + 8 * i, 8),
                  static_cast<std::uint64_t>(i + 1));
}

TEST(NocAxiMemCtrl, SubLineWriteDoesNotClobberNeighbors)
{
    Harness h;
    h.memory.store(0x3000, 8, 0xaaaaaaaaaaaaaaaaULL);
    h.memory.store(0x3010, 8, 0xbbbbbbbbbbbbbbbbULL);
    h.ctrl.handlePacket(h.writeReq(0x3008, 3, {0x1234}));
    h.eq.run();
    EXPECT_EQ(h.memory.load(0x3000, 8), 0xaaaaaaaaaaaaaaaaULL);
    EXPECT_EQ(h.memory.load(0x3008, 8), 0x1234ULL);
    EXPECT_EQ(h.memory.load(0x3010, 8), 0xbbbbbbbbbbbbbbbbULL);
}

TEST(NocAxiMemCtrl, LatencyAtLeastDram)
{
    Harness h;
    h.ctrl.handlePacket(h.readReq(0x0, 6));
    h.eq.run();
    EXPECT_GE(h.eq.now(), DramTiming{}.latency);
}

TEST(NocAxiMemCtrl, NonBlockingOverlapsRequests)
{
    // 16 MSHRs: 16 independent reads should overlap, finishing far sooner
    // than 16 serial DRAM latencies.
    Harness h;
    for (int i = 0; i < 16; ++i)
        h.ctrl.handlePacket(
            h.readReq(static_cast<Addr>(i) * 64, 6,
                      static_cast<std::uint8_t>(i)));
    h.eq.run();
    EXPECT_EQ(h.responses.size(), 16u);
    EXPECT_EQ(h.ctrl.peakMshrsInUse(), 16u);
    EXPECT_LT(h.eq.now(), 16u * DramTiming{}.latency);
}

TEST(NocAxiMemCtrl, MshrLimitThrottlesButServesAll)
{
    MemCtrlConfig cfg;
    cfg.mshrs = 2;
    cfg.axiIds = 2;
    Harness h(cfg);
    for (int i = 0; i < 20; ++i)
        h.ctrl.handlePacket(h.readReq(static_cast<Addr>(i) * 64, 6));
    h.eq.run();
    EXPECT_EQ(h.responses.size(), 20u);
    EXPECT_LE(h.ctrl.peakMshrsInUse(), 2u);
    EXPECT_TRUE(h.ctrl.idle());
}

TEST(NocAxiMemCtrl, MshrTagsPreservedAcrossReordering)
{
    Harness h;
    std::map<std::uint8_t, Addr> issued;
    for (int i = 0; i < 10; ++i) {
        auto tag = static_cast<std::uint8_t>(100 + i);
        Addr addr = 0x4000 + static_cast<Addr>(i) * 64;
        h.memory.store(addr, 8, addr);
        h.ctrl.handlePacket(h.readReq(addr, 3, tag));
        issued[tag] = addr;
    }
    h.eq.run();
    ASSERT_EQ(h.responses.size(), 10u);
    for (const auto &r : h.responses) {
        ASSERT_TRUE(issued.count(r.mshr));
        EXPECT_EQ(r.payload[0], issued[r.mshr]); // Data matches the tag.
        EXPECT_EQ(r.addr, issued[r.mshr]);
    }
}

TEST(NocAxiMemCtrl, NcAccessesGetNcResponses)
{
    Harness h;
    h.ctrl.handlePacket([&] {
        auto p = h.readReq(0x5000, 3);
        p.type = noc::MsgType::kNcLoad;
        return p;
    }());
    h.ctrl.handlePacket([&] {
        auto p = h.writeReq(0x5008, 3, {42});
        p.type = noc::MsgType::kNcStore;
        return p;
    }());
    h.eq.run();
    ASSERT_EQ(h.responses.size(), 2u);
    EXPECT_EQ(h.responses[0].type, noc::MsgType::kNcLoadResp);
    EXPECT_EQ(h.responses[1].type, noc::MsgType::kNcStoreResp);
    EXPECT_EQ(h.memory.load(0x5008, 8), 42u);
}

TEST(NocAxiMemCtrl, RejectsNonMemoryPackets)
{
    Harness h;
    auto p = h.readReq(0x0, 6);
    p.type = noc::MsgType::kInterrupt;
    EXPECT_THROW(h.ctrl.handlePacket(p), PanicError);
}

TEST(AxiDram, OutOfWindowAccessErrors)
{
    sim::EventQueue eq;
    MainMemory memory;
    AxiDram dram(eq, memory, 0x1000, 0x1000, DramTiming{});
    axi::Resp got = axi::Resp::kOkay;
    dram.read(axi::ReadReq{0x5000, 64, 0},
              [&](axi::ReadResp r) { got = r.resp; });
    eq.run();
    EXPECT_EQ(got, axi::Resp::kSlvErr);
}

TEST(AxiDram, BandwidthSerializesBursts)
{
    sim::EventQueue eq;
    MainMemory memory;
    DramTiming timing;
    timing.latency = 10;
    timing.bytesPerCycle = 8.0;
    AxiDram dram(eq, memory, 0, 1 << 20, timing);
    Cycles last = 0;
    for (int i = 0; i < 4; ++i) {
        dram.read(axi::ReadReq{static_cast<Addr>(i) * 64, 64, 0},
                  [&](axi::ReadResp) { last = eq.now(); });
    }
    eq.run();
    // 4 x 64B at 8 B/cycle = 32 cycles of channel + 10 latency.
    EXPECT_GE(last, 42u);
}

} // namespace
} // namespace smappic::mem
