/**
 * @file
 * Integration tests for the Prototype: AxBxC parsing, program execution on
 * cores against the coherent memory system, console I/O through the
 * tunnelled UART, CLINT interrupt delivery via packetizer, virtual SD
 * card, and the Fig-7 latency probe.
 */

#include <gtest/gtest.h>

#include "platform/prototype.hpp"
#include "sim/log.hpp"

namespace smappic::platform
{
namespace
{

TEST(PrototypeConfig, ParseAndName)
{
    auto c = PrototypeConfig::parse("4x1x12");
    EXPECT_EQ(c.fpgas, 4u);
    EXPECT_EQ(c.nodesPerFpga, 1u);
    EXPECT_EQ(c.tilesPerNode, 12u);
    EXPECT_EQ(c.totalNodes(), 4u);
    EXPECT_EQ(c.totalTiles(), 48u);
    EXPECT_EQ(c.name(), "4x1x12");

    EXPECT_THROW(PrototypeConfig::parse("4x1"), FatalError);
    EXPECT_THROW(PrototypeConfig::parse("axbxc"), FatalError);
    EXPECT_THROW(PrototypeConfig::parse("8x1x2"), FatalError);  // >4 FPGAs.
    EXPECT_THROW(PrototypeConfig::parse("1x8x2"), FatalError);  // >4 nodes.
    EXPECT_THROW(PrototypeConfig::parse("0x1x2"), FatalError);
}

TEST(Prototype, RunsProgramOnCore)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
_start:
    li a0, 11
    li a1, 31
    add a0, a0, a1
    li a7, 93
    ecall
)");
    auto r = proto.runCore(0);
    EXPECT_EQ(r, riscv::HaltReason::kExited);
    EXPECT_EQ(proto.core(0).exitCode(), 42);
    // Memory traffic went through the coherent system.
    EXPECT_GT(proto.stats().counterValue("cs.bpc.misses"), 0u);
}

TEST(Prototype, ConsoleOutputThroughUart)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
.data
msg: .asciiz "hello, smappic\n"
.text
_start:
    li a0, 1
    la a1, msg
    li a2, 15
    li a7, 64      # write
    ecall
    li a0, 0
    li a7, 93
    ecall
)");
    proto.runCore(0);
    EXPECT_EQ(proto.console(0).captured(), "hello, smappic\n");
    EXPECT_EQ(proto.consoleUart(0).bytesTransmitted(), 15u);
}

TEST(Prototype, ConsoleInputReadBack)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.console(0).type(proto.consoleUart(0), "ok");
    proto.loadSource(R"(
.data
buf: .space 16
.text
_start:
    li a0, 0
    la a1, buf
    li a2, 2
    li a7, 63      # read
    ecall
    la a1, buf
    lb a0, 0(a1)   # 'o' == 111
    li a7, 93
    ecall
)");
    proto.runCore(0);
    EXPECT_EQ(proto.core(0).exitCode(), 'o');
}

TEST(Prototype, GuestProgramDrivesUartRegistersDirectly)
{
    // MMIO path: the guest writes the THR register of the tunnelled
    // 16550 itself (no syscall), like a real bare-metal driver.
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
_start:
    li t0, 0x10000000   # node 0 console UART, THR
    li t1, 65           # 'A'
    sb t1, 0(t0)
    li t1, 10           # '\n'
    sb t1, 0(t0)
    li a7, 93
    li a0, 0
    ecall
)");
    proto.runCore(0);
    EXPECT_EQ(proto.console(0).captured(), "A\n");
}

TEST(Prototype, ClintTimerInterruptsCore)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
_start:
    la t0, handler
    csrw 0x305, t0
    li t1, 0x80
    csrw 0x304, t1       # mie.MTIE
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2       # mstatus.MIE
    # mtimecmp[0] = 2000 (hart 0).
    li t3, 0x02004000
    li t4, 2000
    sd t4, 0(t3)
spin:
    j spin
handler:
    li a0, 55
    li a7, 93
    ecall
)");
    auto r = proto.runCore(0, 1'000'000);
    EXPECT_EQ(r, riscv::HaltReason::kExited);
    EXPECT_EQ(proto.core(0).exitCode(), 55);
    EXPECT_GT(proto.stats().counterValue("platform.irqPackets"), 0u);
}

TEST(Prototype, SoftwareInterruptAcrossCores)
{
    // Core 0 rings core 1's MSIP doorbell through the CLINT; core 1 sits
    // in wfi until the interrupt packet arrives.
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    auto prog = proto.loadSource(R"(
_start:
    csrr t0, 0xf14       # mhartid
    bnez t0, core1
    # Core 0: set MSIP for hart 1, then exit.
    li t1, 0x02000004
    li t2, 1
    sw t2, 0(t1)
    li a0, 0
    li a7, 93
    ecall
core1:
    la t0, handler
    csrw 0x305, t0
    li t1, 0x8
    csrw 0x304, t1       # mie.MSIE
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2
wait:
    wfi
    j wait
handler:
    li a0, 77
    li a7, 93
    ecall
)");
    (void)prog;
    proto.runCores({0, 1}, 100000);
    EXPECT_EQ(proto.core(0).exitCode(), 0);
    EXPECT_TRUE(proto.core(1).exited());
    EXPECT_EQ(proto.core(1).exitCode(), 77);
}

TEST(Prototype, SharedMemoryBetweenCores)
{
    // Core 0 spins on a flag core 1 sets: coherence keeps them in sync.
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
.data
.align 3
flag: .dword 0
.text
_start:
    csrr t0, 0xf14
    la t1, flag
    bnez t0, setter
spinner:
    ld t2, 0(t1)
    beqz t2, spinner
    mv a0, t2
    li a7, 93
    ecall
setter:
    li t2, 123
    sd t2, 0(t1)
    li a0, 0
    li a7, 93
    ecall
)");
    proto.runCores({0, 1}, 200000);
    EXPECT_TRUE(proto.core(0).exited());
    EXPECT_EQ(proto.core(0).exitCode(), 123);
}

TEST(Prototype, VirtualSdCardGuestAccess)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    // Pre-load block 3 of the card (as the host driver would).
    std::vector<std::uint8_t> block(io::VirtualSdCard::kBlockBytes, 0);
    block[0] = 0xab;
    block[1] = 0xcd;
    proto.sdCard(0).writeBlock(3, block);

    proto.loadSource(R"(
_start:
    li t0, 0x03000000    # SD MMIO
    li t1, 3
    sd t1, 0(t0)         # LBA = 3
    li t2, 0x80500000
    sd t2, 8(t0)         # buffer
    li t3, 1
    sd t3, 16(t0)        # CMD read
    li t4, 0x80500000
    lhu a0, 0(t4)        # first two bytes: 0xcdab
    li a7, 93
    ecall
)");
    proto.runCore(0);
    EXPECT_EQ(proto.core(0).exitCode(), 0xcdab);
    EXPECT_EQ(proto.sdCard(0).commandsServed(), 1u);
}

TEST(Prototype, HostSdLoaderThroughFabric)
{
    Prototype proto(PrototypeConfig::parse("2x1x2"));
    io::HostSdLoader loader(proto.fabric(), 0x100000000ULL);
    std::vector<std::uint8_t> image(2048);
    for (std::size_t i = 0; i < image.size(); ++i)
        image[i] = static_cast<std::uint8_t>(i);
    loader.loadImage(image);
    proto.eventQueue().run();
    EXPECT_EQ(loader.bytesWritten(), image.size());

    std::vector<std::uint8_t> block;
    proto.sdCard(0).readBlock(1, block);
    EXPECT_EQ(block[0], static_cast<std::uint8_t>(512));
    EXPECT_EQ(block[5], static_cast<std::uint8_t>(517));
}

TEST(Prototype, Fig7LatencyShape)
{
    Prototype proto(PrototypeConfig::parse("2x1x4"));
    Cycles intra = proto.measureRoundTrip(0, 2); // Same node.
    Cycles inter = proto.measureRoundTrip(0, 5); // Other node.
    EXPECT_GE(intra, 60u);
    EXPECT_LE(intra, 150u);
    double ratio = static_cast<double>(inter) /
                   static_cast<double>(intra);
    EXPECT_GE(ratio, 1.8);
    EXPECT_LE(ratio, 3.2);
}

TEST(Prototype, MultiNodeInterruptCrossesNodes)
{
    // Hart 3 lives on node 1 in a 2x1x2 config; raising its MSIP sends an
    // interrupt packet across the node boundary.
    Prototype proto(PrototypeConfig::parse("2x1x2"));
    proto.clint().write(riscv::kClintMsipBase + 4 * 3, 1, 4);
    EXPECT_TRUE(
        (proto.core(3).csr(riscv::kCsrMip) >> riscv::kIrqMsi) & 1);
    EXPECT_FALSE(
        (proto.core(0).csr(riscv::kCsrMip) >> riscv::kIrqMsi) & 1);
}

TEST(Prototype, AcceleratorRegistration)
{
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    auto &gng = proto.addGng(1);
    Addr win = proto.accelWindow(1);
    EXPECT_EQ(win, kAccelBase);

    // Guest fetches a packed sample pair.
    auto r = proto.memorySystem().access(0, win, cache::AccessType::kNcLoad,
                                         4, 0);
    EXPECT_EQ(r.level, cache::ServiceLevel::kDevice);
    EXPECT_EQ(gng.samplesServed(), 2u);
}

} // namespace
} // namespace smappic::platform

namespace smappic::platform
{
namespace
{

TEST(Prototype, UartRxInterruptWakesCore)
{
    // Interrupt-driven console: the guest enables the UART RX interrupt
    // and the machine-external line, then sleeps in wfi until the host
    // types; the ISR echoes the byte as its exit code.
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
_start:
    la t0, handler
    csrw 0x305, t0
    li t1, 0x800         # mie.MEIE
    csrw 0x304, t1
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2
    # Enable the UART's RX-data-available interrupt (IER bit 0).
    li t3, 0x10000001
    li t4, 1
    sb t4, 0(t3)
sleep:
    wfi
    j sleep
handler:
    li t3, 0x10000000
    lbu a0, 0(t3)        # Pop the byte (drops the IRQ level).
    li a7, 93
    ecall
)");
    // Run until the guest parks in wfi.
    auto r = proto.runCore(0, 200);
    EXPECT_EQ(r, riscv::HaltReason::kWfi);
    EXPECT_FALSE(proto.core(0).exited());

    proto.console(0).type(proto.consoleUart(0), "Z");
    proto.runCore(0, 1000);
    ASSERT_TRUE(proto.core(0).exited());
    EXPECT_EQ(proto.core(0).exitCode(), 'Z');
}

} // namespace
} // namespace smappic::platform

namespace smappic::platform
{
namespace
{

TEST(Prototype, PlicClaimCompleteFromGuest)
{
    // Full external-interrupt protocol: wfi -> MEI -> claim from the
    // PLIC, service the UART, complete, and return.
    Prototype proto(PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
_start:
    la t0, handler
    csrw 0x305, t0
    li t1, 0x800         # mie.MEIE
    csrw 0x304, t1
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2
    li t3, 0x10000001    # UART IER: RX interrupt on.
    li t4, 1
    sb t4, 0(t3)
sleep:
    wfi
    j sleep
handler:
    li t3, 0x0c200004    # PLIC claim register (hart 0 context).
    lwu t5, 0(t3)        # Claim: source id.
    li t6, 0x10000000
    lbu a0, 0(t6)        # Service: pop the UART byte.
    sw t5, 0(t3)         # Complete.
    # Check the claim was source 1 (node 0 console).
    li t6, 1
    bne t5, t6, bad
    li a7, 93
    ecall
bad:
    li a0, 255
    li a7, 93
    ecall
)");
    auto r = proto.runCore(0, 300);
    EXPECT_EQ(r, riscv::HaltReason::kWfi);
    proto.console(0).type(proto.consoleUart(0), "Q");
    proto.runCore(0, 2000);
    ASSERT_TRUE(proto.core(0).exited());
    EXPECT_EQ(proto.core(0).exitCode(), 'Q');
    // The PLIC source is fully retired.
    EXPECT_EQ(proto.plic().bestPending(0), 0u);
}

} // namespace
} // namespace smappic::platform
