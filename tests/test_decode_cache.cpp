/**
 * @file
 * Decode-cache tests: the DecodeCache container itself (fill / find /
 * flush / write-stamp invalidation), self-modifying-code correctness
 * through a hart's own store port and through a second hart over the
 * coherent path — under the sequential and phased engines at 1/2/4
 * workers — and the observability contract: stats, traces and SMCK
 * checkpoints are byte-identical with the cache on or off, checkpoints
 * interchange freely between on and off, and restore leaves no stale
 * decoded state behind.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "platform/prototype.hpp"
#include "riscv/decode_cache.hpp"
#include "riscv/isa.hpp"
#include "sim/log.hpp"
#include "snap/snapshot.hpp"

namespace smappic
{
namespace
{

namespace fs = std::filesystem;

fs::path
scratchDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("dcache_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir;
}

std::vector<std::uint8_t>
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(is),
                                     std::istreambuf_iterator<char>());
}

// ------------------------------------------------------- the container

constexpr std::uint32_t kAddiWord = 0x00138393; // addi t2, t2, 1

riscv::DecodeCache
makeCache(std::uint32_t sets = 16)
{
    riscv::DecodeCacheConfig cfg;
    cfg.sets = sets;
    return riscv::DecodeCache(cfg);
}

TEST(DecodeCacheUnit, FillFindAndStats)
{
    std::atomic<std::uint64_t> stamp{7};
    riscv::DecodeCache dc = makeCache();
    riscv::CodeRef ref{&stamp, stamp.load()};
    dc.fill(0x8000'0000, kAddiWord, riscv::decode(kAddiWord), ref);
    EXPECT_EQ(dc.stats().fills, 1u);

    const riscv::DecodeCache::Entry *e = dc.find(0x8000'0000);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->word, kAddiWord);
    dc.countHit();
    EXPECT_EQ(dc.stats().hits, 1u);

    // A different pc in a different set is a plain miss.
    EXPECT_EQ(dc.find(0x8000'0004), nullptr);
    EXPECT_EQ(dc.stats().misses, 1u);
}

TEST(DecodeCacheUnit, StampBumpInvalidates)
{
    std::atomic<std::uint64_t> stamp{0};
    riscv::DecodeCache dc = makeCache();
    riscv::CodeRef ref{&stamp, stamp.load()};
    dc.fill(0x1000, kAddiWord, riscv::decode(kAddiWord), ref);
    ASSERT_NE(dc.find(0x1000), nullptr);

    // The owning page was written: the entry must die on next lookup.
    stamp.fetch_add(1, std::memory_order_release);
    EXPECT_EQ(dc.find(0x1000), nullptr);
    EXPECT_EQ(dc.stats().invalidations, 1u);

    // Refilled with the fresh stamp value it is live again.
    dc.fill(0x1000, kAddiWord, riscv::decode(kAddiWord),
            riscv::CodeRef{&stamp, stamp.load()});
    EXPECT_NE(dc.find(0x1000), nullptr);
}

TEST(DecodeCacheUnit, FlushInvalidatesEverything)
{
    std::atomic<std::uint64_t> stamp{0};
    riscv::DecodeCache dc = makeCache();
    riscv::CodeRef ref{&stamp, stamp.load()};
    for (Addr pc = 0x1000; pc < 0x1040; pc += 4)
        dc.fill(pc, kAddiWord, riscv::decode(kAddiWord), ref);
    ASSERT_NE(dc.find(0x1000), nullptr);

    dc.flush();
    EXPECT_EQ(dc.stats().flushes, 1u);
    for (Addr pc = 0x1000; pc < 0x1040; pc += 4)
        EXPECT_EQ(dc.find(pc), nullptr) << std::hex << pc;
}

TEST(DecodeCacheUnit, NullStampRefIsNeverCached)
{
    riscv::DecodeCache dc = makeCache();
    dc.fill(0x1000, kAddiWord, riscv::decode(kAddiWord), riscv::CodeRef{});
    EXPECT_EQ(dc.find(0x1000), nullptr);
    EXPECT_EQ(dc.stats().fills, 0u);
}

TEST(DecodeCacheUnit, DisabledCacheIsInert)
{
    std::atomic<std::uint64_t> stamp{0};
    riscv::DecodeCacheConfig cfg;
    cfg.enabled = false;
    riscv::DecodeCache dc(cfg);
    EXPECT_FALSE(dc.enabled());
    dc.fill(0x1000, kAddiWord, riscv::decode(kAddiWord),
            riscv::CodeRef{&stamp, stamp.load()});
    EXPECT_EQ(dc.find(0x1000), nullptr);
    EXPECT_EQ(dc.stats().fills, 0u);
}

TEST(DecodeCacheUnit, ConflictingPcEvictsTheOldEntry)
{
    std::atomic<std::uint64_t> stamp{0};
    riscv::DecodeCache dc = makeCache(16);
    riscv::CodeRef ref{&stamp, stamp.load()};
    const Addr a = 0x1000;
    const Addr b = a + 16 * 4; // Same set, different tag.
    dc.fill(a, kAddiWord, riscv::decode(kAddiWord), ref);
    dc.fill(b, kAddiWord, riscv::decode(kAddiWord), ref);
    EXPECT_NE(dc.find(b), nullptr);
    EXPECT_EQ(dc.find(a), nullptr);
}

TEST(DecodeCacheUnit, NonPowerOfTwoSetCountFatals)
{
    riscv::DecodeCacheConfig cfg;
    cfg.sets = 3;
    EXPECT_THROW(riscv::DecodeCache dc(cfg), FatalError);
    cfg.sets = 0;
    EXPECT_THROW(riscv::DecodeCache dc(cfg), FatalError);
}

// --------------------------------------------- self-modifying programs

/** A hart patches the instruction at `site` through its own store port
 *  and executes it on the very next fetch, 2000 times with alternating
 *  encodings. The 1000 even iterations add 5 and the 1000 odd ones add
 *  1: exit code 6000 — any stale decoded instruction shifts the sum.
 *  Long enough that a 4000-cycle snapshot interval fires mid-run. */
constexpr const char *kOwnStoreSmc = R"(
_start:
    li t1, 2000
    li t2, 0
    la t3, site
    li a2, 0x00138393    # addi t2, t2, 1
    li a4, 0x00538393    # addi t2, t2, 5
loop:
    andi a1, t1, 1
    bne a1, zero, odd
    sw a4, 0(t3)
    j site
odd:
    sw a2, 0(t3)
site:
    addi t2, t2, 0       # patched before every execution
    addi t1, t1, -1
    bne t1, zero, loop
    addi a0, t2, 0
    li a7, 93
    ecall
)";

constexpr std::int64_t kOwnStoreExit = 1000 * 5 + 1000 * 1;

/** Hart 0 spins executing the instruction at `site` until it produces a
 *  non-zero a0; hart 1 patches that instruction over the coherent path
 *  after a delay long enough for hart 0 to have decoded and cached the
 *  original. Hart 0 must observe the new encoding and exit 42. */
constexpr const char *kCrossHartSmc = R"(
_start:
    csrr t0, 0xf14
    andi t0, t0, 1
    bne t0, zero, writer
site:
    addi a0, zero, 0     # patched to addi a0, zero, 42 by hart 1
    beq a0, zero, site
    li a7, 93
    ecall
writer:
    li t1, 1000
w_delay:
    addi t1, t1, -1
    bne t1, zero, w_delay
    la t2, site
    li t3, 0x02A00513    # addi a0, zero, 42
    sw t3, 0(t2)
    li a0, 0
    li a7, 93
    ecall
)";

platform::PrototypeConfig
smcConfig(bool cacheOn, std::uint32_t threads)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("1x1x2");
    cfg.core.decodeCache.enabled = cacheOn;
    cfg.parallel.threads = threads;
    if (threads > 0)
        cfg.parallel.quantum = 63; // threads == 0: sequential engine.
    return cfg;
}

TEST(DecodeCacheSmc, OwnStorePatchIsObserved)
{
    // threads == 0 is the sequential engine; 1/2/4 the phased engine.
    for (std::uint32_t threads : {0u, 1u, 2u, 4u}) {
        platform::Prototype proto(smcConfig(true, threads));
        proto.loadSource(kOwnStoreSmc);
        proto.runCores({0}, 100'000);
        ASSERT_TRUE(proto.core(0).exited()) << threads << " threads";
        EXPECT_EQ(proto.core(0).exitCode(), kOwnStoreExit)
            << threads << " threads";
        EXPECT_GT(proto.core(0).decodeCache().stats().invalidations, 0u)
            << "the patched page never invalidated a cached decode";
    }
}

TEST(DecodeCacheSmc, OwnStoreStatsMatchCacheOff)
{
    auto dumpFor = [](bool cacheOn) {
        platform::Prototype proto(smcConfig(cacheOn, 0));
        proto.loadSource(kOwnStoreSmc);
        proto.runCores({0}, 100'000);
        std::ostringstream os;
        proto.stats().dump(os);
        return os.str();
    };
    EXPECT_EQ(dumpFor(true), dumpFor(false));
}

TEST(DecodeCacheSmc, BypassHeavyLoopStatsMatchCacheOff)
{
    // Audit pin for the bail path: a straight-line loop bigger than the
    // L1I keeps decode entries alive while fetchFastHit misses, so the
    // core takes the find-hit/fast-miss bypass on most fetches. A
    // failed fast attempt that leaked an LRU touch or an "cs.l1.hits"
    // bump before the slow fetch re-ran the access would shift the
    // stats dump against the cache-off run.
    std::ostringstream src;
    src << "_start:\n";
    for (int i = 0; i < 6000; ++i) // 24 KiB of code vs a 16 KiB L1I.
        src << "  addi t0, t0, 1\n";
    src << "  j _start\n";

    std::uint64_t bypasses = 0;
    auto dumpFor = [&](bool cacheOn) {
        platform::Prototype proto(smcConfig(cacheOn, 0));
        proto.loadSource(src.str());
        proto.runCores({0}, 40'000);
        if (cacheOn)
            bypasses = proto.core(0).decodeCache().stats().bypasses;
        std::ostringstream os;
        proto.stats().dump(os);
        return os.str();
    };
    EXPECT_EQ(dumpFor(true), dumpFor(false));
    EXPECT_GT(bypasses, 0u)
        << "the loop never exercised the fast-miss bypass under audit";
}

TEST(DecodeCacheSmc, CrossHartPatchIsObserved)
{
    for (std::uint32_t threads : {0u, 1u, 2u, 4u}) {
        platform::Prototype proto(smcConfig(true, threads));
        proto.loadSource(kCrossHartSmc);
        proto.runCores({0, 1}, 200'000);
        ASSERT_TRUE(proto.core(0).exited()) << threads << " threads";
        ASSERT_TRUE(proto.core(1).exited()) << threads << " threads";
        EXPECT_EQ(proto.core(0).exitCode(), 42) << threads << " threads";
        EXPECT_EQ(proto.core(1).exitCode(), 0) << threads << " threads";
        EXPECT_GT(proto.core(0).decodeCache().stats().invalidations, 0u)
            << "hart 0 kept executing a stale decode of the patched site";
    }
}

// --------------------------------------------- the observable surface

/** Budget-bounded workload mixing ALU work, loads and stores (the
 *  stores keep the page-stamp machinery busy on the data page). */
constexpr const char *kMixSource = R"(
_start:
    csrr t0, 0xf14
    andi t0, t0, 3
    slli t0, t0, 3
    la t1, buf
    add t1, t1, t0
    li t2, 0
loop:
    ld t3, 0(t1)
    add t3, t3, t2
    sd t3, 0(t1)
    xor t2, t2, t3
    andi t2, t2, 2047
    addi t2, t2, 1
    j loop

.data
.align 3
buf: .dword 1
     .dword 2
     .dword 3
     .dword 4
)";

struct Surface
{
    std::string stats;
    std::string trace;
    std::string snapshot;
};

Surface
runSurface(bool cacheOn, std::uint32_t threads, const fs::path &dir)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("2x1x2");
    cfg.core.decodeCache.enabled = cacheOn;
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = 63;
    cfg.trace.enabled = true;
    platform::Prototype proto(cfg);
    proto.loadSourceReplicated(kMixSource);
    proto.runCores({0, 1, 2, 3}, 20'000);

    Surface out;
    std::ostringstream stats;
    proto.stats().dump(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    obs::writeBinary(proto.tracer(), trace);
    out.trace = trace.str();
    std::string snap = (dir / "surface.smck").string();
    proto.checkpoint(snap);
    auto bytes = slurp(snap);
    out.snapshot.assign(bytes.begin(), bytes.end());
    return out;
}

TEST(DecodeCacheIdentity, StatsTraceAndCheckpointMatchCacheOffAcrossWorkers)
{
    fs::path dir = scratchDir("surface");
    Surface ref = runSurface(true, 1, dir);
    EXPECT_FALSE(ref.stats.empty());
    EXPECT_FALSE(ref.trace.empty());
    EXPECT_FALSE(ref.snapshot.empty());
    for (bool cacheOn : {true, false}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            if (cacheOn && threads == 1)
                continue; // The reference itself.
            Surface got = runSurface(cacheOn, threads, dir);
            EXPECT_EQ(got.stats, ref.stats)
                << "cache " << cacheOn << ", " << threads << " workers";
            EXPECT_EQ(got.trace == ref.trace, true)
                << "cache " << cacheOn << ", " << threads << " workers";
            EXPECT_EQ(got.snapshot == ref.snapshot, true)
                << "cache " << cacheOn << ", " << threads << " workers";
        }
    }
}

platform::PrototypeConfig
resumeConfig(bool cacheOn, const std::string &dir)
{
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("2x1x2");
    cfg.core.decodeCache.enabled = cacheOn;
    cfg.parallel.threads = 2;
    cfg.parallel.quantum = 63;
    cfg.snapshot.interval = 4000;
    cfg.snapshot.dir = dir;
    cfg.snapshot.keep = 0;
    return cfg;
}

TEST(DecodeCacheIdentity, CheckpointsInterchangeBetweenOnAndOff)
{
    // A cache-on run's mid-run checkpoint restores into a cache-off
    // prototype (and the final states match byte for byte): the decode
    // cache is transient state outside the checkpoint and outside the
    // config fingerprint.
    fs::path dir_a = scratchDir("interchange_a");
    fs::path dir_b = scratchDir("interchange_b");

    platform::Prototype a(resumeConfig(true, dir_a.string()));
    a.loadSourceReplicated(kMixSource);
    a.runCores({0, 1, 2, 3}, 30'000);
    std::string final_a = (dir_a / "final.smck").string();
    a.checkpoint(final_a);

    auto mids = snap::listCheckpoints(dir_a.string());
    ASSERT_GE(mids.size(), 2u) << "workload too short to checkpoint";

    platform::Prototype b(resumeConfig(false, dir_b.string()));
    b.loadSourceReplicated(kMixSource);
    b.restore(mids[mids.size() / 2]);
    b.runCores({0, 1, 2, 3}, 30'000);
    std::string final_b = (dir_b / "final.smck").string();
    b.checkpoint(final_b);

    EXPECT_EQ(slurp(final_a), slurp(final_b));
}

TEST(DecodeCacheIdentity, RestoreDropsDecodesOfTheOverwrittenImage)
{
    // Warm a cache-on prototype on one program, then restore a
    // checkpoint of a *different* program into it: the cores must run
    // the restored image's instructions, not stale decodes of the old
    // one at the same PCs.
    fs::path dir_ref = scratchDir("restore_ref");
    fs::path dir_got = scratchDir("restore_got");

    platform::Prototype ref(resumeConfig(true, dir_ref.string()));
    ref.loadSource(kOwnStoreSmc);
    ref.runCores({0}, 30'000);
    std::string final_ref = (dir_ref / "final.smck").string();
    ref.checkpoint(final_ref);
    auto mids = snap::listCheckpoints(dir_ref.string());
    ASSERT_GE(mids.size(), 2u);

    platform::Prototype got(resumeConfig(true, dir_got.string()));
    got.loadSource(kMixSource); // Different code at the same PCs.
    got.runCores({0}, 20'000);  // Warm its decode cache.
    got.restore(mids[mids.size() / 2]);
    got.runCores({0}, 30'000);
    std::string final_got = (dir_got / "final.smck").string();
    got.checkpoint(final_got);

    EXPECT_EQ(slurp(final_ref), slurp(final_got));
    ASSERT_TRUE(got.core(0).exited());
    EXPECT_EQ(got.core(0).exitCode(), kOwnStoreExit);
}

} // namespace
} // namespace smappic
