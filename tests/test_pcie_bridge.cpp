/**
 * @file
 * Tests for the PCIe fabric model and the inter-node bridge: encapsulation
 * round trips, credit-based flow control (including saturation without
 * overflow), latency structure, and multi-node delivery through the fabric.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bridge/inter_node_bridge.hpp"
#include "pcie/pcie_fabric.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic
{
namespace
{

/** AXI target recording everything it sees. */
class Recorder : public axi::Target
{
  public:
    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        writes.push_back(req);
        return {axi::Resp::kOkay, req.id};
    }
    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        reads.push_back(req);
        axi::ReadResp r;
        r.id = req.id;
        r.data.assign(req.bytes, 0xab);
        return r;
    }
    std::vector<axi::WriteReq> writes;
    std::vector<axi::ReadReq> reads;
};

TEST(PcieFabric, WriteRoutedWithLatency)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 63, 0.0, nullptr);
    Recorder target;
    fabric.addWindow(0x10000, 0x1000, &target, 1, "fpga1");

    bool completed = false;
    Cycles completion_time = 0;
    axi::WriteReq req;
    req.addr = 0x10040;
    req.data = {1, 2, 3, 4};
    fabric.write(0, req, [&](pcie::Completion c) {
        completed = true;
        completion_time = eq.now();
        EXPECT_EQ(c.resp, axi::Resp::kOkay);
    });
    eq.run();
    ASSERT_TRUE(completed);
    ASSERT_EQ(target.writes.size(), 1u);
    EXPECT_EQ(target.writes[0].data.size(), 4u);
    // One way there, one way back: a full PCIe round trip.
    EXPECT_GE(completion_time, 2u * 63u);
}

TEST(PcieFabric, UnmappedAddressDecErr)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 10, 0.0, nullptr);
    bool got = false;
    fabric.write(0, axi::WriteReq{0xdead0000, {1}, 0},
                 [&](pcie::Completion c) {
                     got = true;
                     EXPECT_EQ(c.resp, axi::Resp::kDecErr);
                 });
    eq.run();
    EXPECT_TRUE(got);
    EXPECT_EQ(fabric.decodeErrors(), 1u);
}

TEST(PcieFabric, ReadReturnsData)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 20, 0.0, nullptr);
    Recorder target;
    fabric.addWindow(0x0, 0x1000, &target, 2, "fpga2");
    std::vector<std::uint8_t> data;
    fabric.read(0, axi::ReadReq{0x100, 16, 5}, [&](pcie::Completion c) {
        data = c.data;
    });
    eq.run();
    EXPECT_EQ(data.size(), 16u);
    EXPECT_EQ(data[0], 0xab);
}

TEST(PcieFabric, BandwidthCapSerializesTransfers)
{
    sim::EventQueue eq;
    pcie::PcieFabric fabric(eq, 10, 1.0, nullptr); // 1 byte/cycle.
    Recorder target;
    fabric.addWindow(0x0, 0x100000, &target, 1, "fpga1");
    Cycles last = 0;
    int done = 0;
    for (int i = 0; i < 4; ++i) {
        axi::WriteReq req;
        req.addr = static_cast<Addr>(i) * 0x100;
        req.data.assign(100, 0);
        fabric.write(0, req, [&](pcie::Completion) {
            ++done;
            last = eq.now();
        });
    }
    eq.run();
    EXPECT_EQ(done, 4);
    // 4 transfers x (100+32) bytes at 1 B/cycle >= 528 cycles of link time.
    EXPECT_GE(last, 4u * 132u);
}

/** Harness wiring two bridges through a fabric. */
struct TwoNodeHarness
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric;
    bridge::BridgeConfig cfg;
    bridge::InterNodeBridge bridge0;
    bridge::InterNodeBridge bridge1;
    std::vector<noc::Packet> at0;
    std::vector<noc::Packet> at1;

    explicit TwoNodeHarness(std::uint32_t credits = 32)
        : fabric(eq, 63, 16.0, &stats), cfg(makeCfg(credits)),
          bridge0(0, 0, 0x0000000, eq, fabric, cfg, &stats),
          bridge1(1, 1, 0x1000000, eq, fabric, cfg, &stats)
    {
        bridge0.addPeer(1, bridge1.windowBase());
        bridge1.addPeer(0, bridge0.windowBase());
        bridge0.setDeliverFn(
            [this](const noc::Packet &p) { at0.push_back(p); });
        bridge1.setDeliverFn(
            [this](const noc::Packet &p) { at1.push_back(p); });
    }

    static bridge::BridgeConfig
    makeCfg(std::uint32_t credits)
    {
        bridge::BridgeConfig c;
        c.creditsPerNoc = credits;
        c.creditPollInterval = 16;
        return c;
    }

    noc::Packet
    makePacket(NodeId src, NodeId dst, std::size_t payload,
               noc::NocIndex idx = noc::NocIndex::kNoc1)
    {
        noc::Packet p;
        p.noc = idx;
        p.srcNode = src;
        p.srcTile = 3;
        p.dstNode = dst;
        p.dstTile = 5;
        p.type = noc::MsgType::kReqRd;
        p.addr = 0xabc000;
        for (std::size_t i = 0; i < payload; ++i)
            p.payload.push_back(i);
        return p;
    }
};

TEST(InterNodeBridge, PacketRoundTripsThroughFabric)
{
    TwoNodeHarness h;
    noc::Packet p = h.makePacket(0, 1, 8);
    h.bridge0.sendPacket(p);
    h.eq.run();
    ASSERT_EQ(h.at1.size(), 1u);
    EXPECT_EQ(h.at1[0], p);
    EXPECT_EQ(h.bridge0.flitsSent(), 10u);
    EXPECT_EQ(h.bridge1.flitsReceived(), 10u);
    EXPECT_TRUE(h.bridge0.sendIdle());
}

TEST(InterNodeBridge, DeliveryLatencyIncludesPcie)
{
    TwoNodeHarness h;
    h.bridge0.sendPacket(h.makePacket(0, 1, 0));
    h.eq.run();
    ASSERT_EQ(h.at1.size(), 1u);
    // At minimum the one-way PCIe latency (63 cycles).
    EXPECT_GE(h.eq.now(), 63u);
}

TEST(InterNodeBridge, BidirectionalTraffic)
{
    TwoNodeHarness h;
    for (int i = 0; i < 10; ++i) {
        h.bridge0.sendPacket(h.makePacket(0, 1, 4));
        h.bridge1.sendPacket(h.makePacket(1, 0, 4));
    }
    h.eq.run();
    EXPECT_EQ(h.at0.size(), 10u);
    EXPECT_EQ(h.at1.size(), 10u);
}

TEST(InterNodeBridge, ThreeNocsMultiplexedIntoOneWriteStream)
{
    TwoNodeHarness h;
    // One packet on each physical NoC: flits share AXI writes (up to 3
    // flits per write), so the write count is far below the flit count.
    h.bridge0.sendPacket(h.makePacket(0, 1, 6, noc::NocIndex::kNoc1));
    h.bridge0.sendPacket(h.makePacket(0, 1, 6, noc::NocIndex::kNoc2));
    h.bridge0.sendPacket(h.makePacket(0, 1, 6, noc::NocIndex::kNoc3));
    h.eq.run();
    EXPECT_EQ(h.at1.size(), 3u);
    EXPECT_EQ(h.bridge0.flitsSent(), 24u);
    EXPECT_EQ(h.bridge0.axiWritesSent(), 8u); // ceil(24/3) with 3 NoCs.
}

TEST(InterNodeBridge, CreditExhaustionStallsThenRecovers)
{
    TwoNodeHarness h(4); // Only 4 credits per NoC.
    // 20 packets x 6 flits each = 120 flits through a 4-credit window.
    for (int i = 0; i < 20; ++i)
        h.bridge0.sendPacket(h.makePacket(0, 1, 4));
    h.eq.run();
    EXPECT_EQ(h.at1.size(), 20u);
    EXPECT_GT(h.bridge0.creditReadsSent(), 0u);
    EXPECT_TRUE(h.bridge0.sendIdle());
}

TEST(InterNodeBridge, CreditsNeverExceedConfigured)
{
    TwoNodeHarness h(8);
    for (int i = 0; i < 50; ++i)
        h.bridge0.sendPacket(h.makePacket(0, 1, 2));
    h.eq.run();
    EXPECT_LE(h.bridge0.creditsAvailable(1, noc::NocIndex::kNoc1), 8u);
    EXPECT_EQ(h.at1.size(), 50u);
}

TEST(InterNodeBridge, FourNodeAllToAll)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    bridge::BridgeConfig cfg;
    cfg.creditsPerNoc = 16;
    cfg.creditPollInterval = 16;

    std::vector<std::unique_ptr<bridge::InterNodeBridge>> bridges;
    std::map<NodeId, std::vector<noc::Packet>> received;
    for (NodeId n = 0; n < 4; ++n) {
        bridges.push_back(std::make_unique<bridge::InterNodeBridge>(
            n, n, static_cast<Addr>(n) * 0x1000000, eq, fabric, cfg,
            &stats));
    }
    for (NodeId n = 0; n < 4; ++n) {
        for (NodeId m = 0; m < 4; ++m) {
            if (n != m)
                bridges[n]->addPeer(m, bridges[m]->windowBase());
        }
        bridges[n]->setDeliverFn([&received, n](const noc::Packet &p) {
            received[n].push_back(p);
        });
    }

    sim::Xoroshiro rng(99);
    std::map<NodeId, int> expected;
    for (int i = 0; i < 200; ++i) {
        auto src = static_cast<NodeId>(rng.below(4));
        auto dst = static_cast<NodeId>(rng.below(4));
        if (dst == src)
            dst = (dst + 1) % 4;
        noc::Packet p;
        p.noc = static_cast<noc::NocIndex>(rng.below(3));
        p.srcNode = src;
        p.srcTile = static_cast<TileId>(rng.below(12));
        p.dstNode = dst;
        p.dstTile = static_cast<TileId>(rng.below(12));
        p.type = noc::MsgType::kDataResp;
        p.addr = rng.next();
        for (std::uint64_t k = 0; k < rng.below(8); ++k)
            p.payload.push_back(rng.next());
        bridges[src]->sendPacket(p);
        expected[dst] += 1;
    }
    eq.run();
    for (NodeId n = 0; n < 4; ++n)
        EXPECT_EQ(static_cast<int>(received[n].size()), expected[n])
            << "node " << n;
}

TEST(InterNodeBridge, MisroutedPacketPanics)
{
    TwoNodeHarness h;
    noc::Packet p = h.makePacket(0, 0, 0); // dst == own node.
    EXPECT_THROW(h.bridge0.sendPacket(p), PanicError);
}

} // namespace
} // namespace smappic
