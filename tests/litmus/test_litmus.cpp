/**
 * @file
 * Litmus suite acceptance tests: every standard test's outcomes stay
 * inside its allowed-outcome table on real multi-core / multi-node
 * prototypes, under the sequential engine and the phased engine at 1, 2
 * and 4 workers, always with the online coherence checker attached. The
 * self-test arms a deliberately broken directory transition (lost
 * invalidation) and demands that BOTH the litmus run and the checker
 * catch it — and that the identical setup passes unmutated.
 */

#include <gtest/gtest.h>

#include "check/litmus.hpp"
#include "riscv/assembler.hpp"
#include "sim/types.hpp"

namespace smappic::check
{
namespace
{

TEST(Litmus, EmitterProducesAssemblableProgramsWithMangledLabels)
{
    riscv::Assembler as;
    for (const LitmusTest &t : standardLitmusSuite()) {
        auto harts = litmusPlacement(
            platform::PrototypeConfig::parse("2x1x2"), t.threads.size());
        std::vector<std::uint32_t> skews(t.threads.size(), 3);
        std::string src = emitLitmusAsm(t, harts, skews);
        EXPECT_EQ(src.find("%t"), std::string::npos) << t.name;
        EXPECT_NO_THROW(as.assemble(src)) << t.name << ":\n" << src;
    }
}

TEST(Litmus, PlacementRoundRobinsAcrossNodes)
{
    auto cfg = platform::PrototypeConfig::parse("2x1x2");
    EXPECT_EQ(litmusPlacement(cfg, 2),
              (std::vector<GlobalTileId>{0, 2}));
    EXPECT_EQ(litmusPlacement(cfg, 4),
              (std::vector<GlobalTileId>{0, 2, 1, 3}));
    EXPECT_THROW(litmusPlacement(cfg, 5), FatalError);
}

/** Engine sweep: threads = 0 means the plain sequential engine. */
class LitmusEngines : public ::testing::TestWithParam<int>
{
  protected:
    LitmusConfig
    config() const
    {
        LitmusConfig cfg;
        cfg.spec = "2x1x2";
        cfg.seed = 7 + static_cast<std::uint64_t>(GetParam());
        cfg.iterations = 4;
        if (GetParam() > 0) {
            cfg.parallel.threads =
                static_cast<std::uint32_t>(GetParam());
            cfg.parallel.quantum = 63;
        }
        return cfg;
    }
};

TEST_P(LitmusEngines, StandardSuiteStaysWithinAllowedOutcomes)
{
    for (const LitmusTest &t : standardLitmusSuite()) {
        LitmusResult r = runLitmus(t, config());
        EXPECT_TRUE(r.passed)
            << t.name << " observed " << r.histogram() << " ("
            << r.checkerViolations << " checker violations)";
        EXPECT_EQ(r.outcomes.size(), 4u);
    }
}

INSTANTIATE_TEST_SUITE_P(Engines, LitmusEngines,
                         ::testing::Values(0, 1, 2, 4));

/** SB/MP/IRIW with the L1D fast path forced on AND off, sequential and
 *  phased at 2/4 workers: deterministic seeds mean every pairing must
 *  observe the identical outcome sequence — and both must pass. The
 *  checker is detached for these runs; an attached observer makes the
 *  fast path bail everywhere, which would compare the slow path against
 *  itself. The sequential comparison uses the cross-node 2x1x2 spec;
 *  the phased comparisons confine all harts to one node (1x1x4),
 *  because the phased determinism contract only covers node-disjoint
 *  mid-quantum footprints — cross-node sharing resolves miss races in
 *  worker-interleaving order, so two runs of *either* path can
 *  legitimately diverge there (outcome-table membership still holds
 *  and is covered by LitmusEngines). */
TEST(Litmus, DataFastPathOnAndOffObserveIdenticalOutcomes)
{
    for (const LitmusTest &t : standardLitmusSuite()) {
        if (t.name != "SB" && t.name != "MP" && t.name != "IRIW")
            continue;
        for (std::uint32_t threads : {0u, 2u, 4u}) {
            if (threads > 0 && t.threads.size() > 4)
                continue;
            LitmusConfig cfg;
            cfg.spec = threads == 0 ? "2x1x2" : "1x1x4";
            cfg.seed = 31 + threads;
            cfg.iterations = 4;
            cfg.check.enabled = false;
            if (threads > 0) {
                cfg.parallel.threads = threads;
                cfg.parallel.quantum = 63;
            }

            cfg.dataFastPath = true;
            LitmusResult on = runLitmus(t, cfg);
            cfg.dataFastPath = false;
            LitmusResult off = runLitmus(t, cfg);

            EXPECT_TRUE(on.passed) << t.name << " fastpath on, "
                                   << threads << " workers: "
                                   << on.histogram();
            EXPECT_TRUE(off.passed) << t.name << " fastpath off, "
                                    << threads << " workers: "
                                    << off.histogram();
            ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
            for (std::size_t i = 0; i < on.outcomes.size(); ++i)
                EXPECT_EQ(on.outcomes[i].values, off.outcomes[i].values)
                    << t.name << " iteration " << i << ", " << threads
                    << " workers";
        }
    }
}

/** The mutation self-test's shared setup: MP+preload with the writer
 *  skewed late so the reader's preload always lands first. */
LitmusConfig
mutationConfig()
{
    LitmusConfig cfg;
    cfg.spec = "2x1x2";
    cfg.iterations = 2;
    cfg.fixedSkews = {40, 0}; // thread 0 = writer (late), 1 = reader
    return cfg;
}

TEST(Litmus, MutationCatchTestPassesOnUnmutatedPlatform)
{
    LitmusResult r = runLitmus(mutationCatchTest(), mutationConfig());
    EXPECT_TRUE(r.passed) << r.histogram() << " / "
                          << r.checkerViolations << " violations";
    // The reader must actually have seen the flag (spin succeeded) in
    // every iteration, or the test would vacuously pass.
    for (const LitmusOutcome &o : r.outcomes) {
        ASSERT_EQ(o.values.size(), 2u);
        EXPECT_EQ(o.values[0], 1u) << "reader never saw the flag";
        EXPECT_EQ(o.values[1], 1u);
    }
}

TEST(Litmus, LostInvalidationIsCaughtByLitmusAndChecker)
{
    LitmusConfig cfg = mutationConfig();
    cfg.preRun = [](platform::Prototype &proto,
                    const riscv::Program &prog) {
        proto.memorySystem().setTestMutation(
            cache::TestMutation::kLostInvalidation,
            lineAlign(prog.symbol("x")));
    };

    LitmusResult r = runLitmus(mutationCatchTest(), cfg);

    // Caught by the litmus outcome table: the reader saw the flag yet
    // read stale data — the forbidden (1, 0).
    EXPECT_FALSE(r.passed);
    bool forbidden_seen = false;
    for (const LitmusOutcome &o : r.outcomes)
        forbidden_seen |=
            !o.allowed &&
            o.values == std::vector<std::uint64_t>{1, 0};
    EXPECT_TRUE(forbidden_seen) << "observed " << r.histogram();

    // And caught independently by the online invariant checker.
    EXPECT_GT(r.checkerViolations, 0u);
}

} // namespace
} // namespace smappic::check
