/**
 * @file
 * Tests of the phased parallel execution engine: the ParallelExecutor /
 * MailboxRouter primitives, quantum-boundary delivery of deferred
 * cross-node interactions, and the headline contract — a cross-node
 * ping-pong workload whose final stats, exit codes and guest memory are
 * bit-identical for any worker count.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "pcie/pcie_fabric.hpp"
#include "platform/prototype.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/parallel.hpp"
#include "sim/stats.hpp"

namespace smappic::platform
{
namespace
{

TEST(ParallelExecutor, RunsEveryGroupEachEpochAndStopsOnBarrier)
{
    const std::uint32_t groups = 6;
    const std::uint64_t epochs = 4;
    // One slot per group: written only by the worker owning the group.
    std::vector<std::uint64_t> runs(groups, 0);
    std::uint64_t barriers = 0;

    sim::ParallelExecutor exec(3);
    exec.run(
        groups, [&](std::uint32_t g) { runs[g] += 1; },
        [&](std::uint64_t epoch) {
            EXPECT_EQ(epoch, barriers);
            // Every group advanced exactly once since the last barrier.
            for (std::uint32_t g = 0; g < groups; ++g)
                EXPECT_EQ(runs[g], epoch + 1);
            return ++barriers < epochs;
        });

    EXPECT_EQ(barriers, epochs);
    for (std::uint32_t g = 0; g < groups; ++g)
        EXPECT_EQ(runs[g], epochs);
}

TEST(ParallelExecutor, SerialPathMatchesThreadedPath)
{
    for (std::uint32_t workers : {1u, 2u, 8u}) {
        std::vector<std::uint64_t> runs(4, 0);
        std::uint64_t barriers = 0;
        sim::ParallelExecutor exec(workers);
        exec.run(
            4, [&](std::uint32_t g) { runs[g] += 1; },
            [&](std::uint64_t) { return ++barriers < 3; });
        EXPECT_EQ(barriers, 3u);
        for (auto r : runs)
            EXPECT_EQ(r, 3u);
    }
}

TEST(ParallelExecutor, GroupExceptionsPropagate)
{
    sim::ParallelExecutor exec(2);
    EXPECT_THROW(
        exec.run(
            4,
            [&](std::uint32_t g) {
                if (g == 2)
                    panic("boom");
            },
            [&](std::uint64_t) { return true; }),
        PanicError);
}

TEST(ParallelMailboxRouter, DrainsInSourceThenPostOrder)
{
    sim::MailboxRouter router;
    router.configure(3);
    std::vector<int> order;
    {
        sim::ActingNodeScope acting(2);
        router.post([&] { order.push_back(20); });
    }
    {
        sim::ActingNodeScope acting(0);
        router.post([&] { order.push_back(0); });
        router.post([&] { order.push_back(1); });
    }
    {
        sim::ActingNodeScope acting(1);
        router.post([&] { order.push_back(10); });
    }
    EXPECT_EQ(router.pending(), 4u);
    EXPECT_EQ(router.drain(), 4u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 10, 20}));
    EXPECT_EQ(router.pending(), 0u);
    EXPECT_EQ(router.delivered(), 4u);
}

TEST(ParallelMailboxRouter, PostOutsideNodePhasePanics)
{
    sim::MailboxRouter router;
    router.configure(2);
    EXPECT_THROW(router.post([] {}), PanicError);
}

/** AXI target recording write arrivals. */
class CaptureTarget : public axi::Target
{
  public:
    axi::WriteResp
    write(const axi::WriteReq &req) override
    {
        writes += 1;
        return {axi::Resp::kOkay, req.id};
    }

    axi::ReadResp
    read(const axi::ReadReq &req) override
    {
        axi::ReadResp r;
        r.id = req.id;
        r.data.resize(req.bytes);
        return r;
    }

    int writes = 0;
};

TEST(ParallelFabric, NodePhaseTrafficDefersToQuantumBoundary)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    sim::MailboxRouter router;
    router.configure(2);
    fabric.setRouter(&router);

    CaptureTarget target;
    fabric.addWindow(0x0, 0x1000, &target, 1, "peer");

    axi::WriteReq req;
    req.addr = 0x100;
    req.data = {1, 2, 3, 4};
    {
        // Issued from inside a node phase: must not touch the fabric (or
        // the event queue) until the barrier drains the mailbox.
        sim::ActingNodeScope acting(0);
        fabric.write(0, req, nullptr);
        EXPECT_EQ(router.pending(), 1u);
        EXPECT_TRUE(eq.empty());
        EXPECT_EQ(fabric.transfers(), 0u);
    }
    // Barrier: the drain re-issues in serial context, then events fly.
    EXPECT_EQ(router.drain(), 1u);
    EXPECT_GT(eq.pending(), 0u);
    eq.run();
    EXPECT_EQ(target.writes, 1);
    EXPECT_EQ(stats.counterValue("pcie.deferred"), 1u);

    // Serial-context traffic is never deferred.
    fabric.write(0, req, nullptr);
    EXPECT_EQ(router.pending(), 0u);
    eq.run();
    EXPECT_EQ(target.writes, 2);
}

TEST(ParallelStats, ShardsRedirectAndMergeDeterministically)
{
    sim::StatRegistry root;
    root.counter("a").increment(5);
    root.summaryStat("s").sample(1.0);

    sim::StatRegistry shard0;
    sim::StatRegistry shard1;
    {
        sim::StatRegistry::Redirect r(&root, &shard0);
        root.counter("a").increment(2); // Lands in shard0.
        root.summaryStat("s").sample(3.0);
    }
    {
        sim::StatRegistry::Redirect r(&root, &shard1);
        root.counter("a").increment(1); // Lands in shard1.
    }
    EXPECT_EQ(root.counterValue("a"), 5u);
    EXPECT_EQ(shard0.counterValue("a"), 2u);
    EXPECT_EQ(shard1.counterValue("a"), 1u);

    root.mergeFrom(shard0);
    root.mergeFrom(shard1);
    EXPECT_EQ(root.counterValue("a"), 8u);
    EXPECT_EQ(root.summaries().at("s").count(), 2u);
    EXPECT_DOUBLE_EQ(root.summaries().at("s").sum(), 4.0);
}

/**
 * Cross-node ping-pong: hart 0 (node 0) rings hart 2's (node 1) MSIP
 * doorbell and parks in wfi; hart 2 wakes, stores a node-local flag,
 * rings back, and exits; hart 0 wakes and exits. Harts 1 and 3 run a
 * node-local compute loop (sum 0..1999 = 1999000; exit 1999000 & 63 =
 * 24). All data references are `la`-relative, so the replicated loader
 * keeps every hart's footprint on its own node's DRAM.
 */
constexpr const char *kPingPongSource = R"(
_start:
    csrr t0, 0xf14       # mhartid
    li t1, 2
    beq t0, zero, pinger
    beq t0, t1, ponger
compute:                 # Harts 1 and 3: node-local work.
    li t2, 0
    li t3, 0
    li t4, 2000
loop:
    add t3, t3, t2
    addi t2, t2, 1
    bne t2, t4, loop
    la t5, sum
    sd t3, 0(t5)
    andi a0, t3, 0x3f
    li a7, 93
    ecall
pinger:
    la t0, h0
    csrw 0x305, t0       # mtvec
    li t2, 0x8
    csrw 0x304, t2       # mie.MSIE
    csrr t3, 0x300
    ori t3, t3, 8
    csrw 0x300, t3       # mstatus.MIE
    li t1, 0x02000008    # CLINT MSIP of hart 2
    li t2, 1
    sw t2, 0(t1)
w0: wfi
    j w0
h0:
    li a0, 5
    li a7, 93
    ecall
ponger:
    la t0, h1
    csrw 0x305, t0
    li t2, 0x8
    csrw 0x304, t2
    csrr t3, 0x300
    ori t3, t3, 8
    csrw 0x300, t3
w1: wfi
    j w1
h1:
    la t3, flag
    li t4, 1
    sd t4, 0(t3)
    li t1, 0x02000000    # CLINT MSIP of hart 0
    li t2, 1
    sw t2, 0(t1)
    li a0, 7
    li a7, 93
    ecall

.data
.align 3
flag: .dword 0
sum:  .dword 0
)";

struct PingPongRun
{
    std::vector<std::int64_t> exits;
    std::uint64_t irqDeferred = 0;
    std::uint64_t flagNode1 = 0;
    std::uint64_t sumNode0 = 0;
    std::uint64_t sumNode1 = 0;
    std::string dump;
};

PingPongRun
runPingPong(std::uint32_t threads, Cycles quantum)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = quantum;
    Prototype proto(cfg);
    riscv::Program prog = proto.loadSourceReplicated(kPingPongSource);
    proto.runCores({0, 1, 2, 3}, 500000);

    PingPongRun out;
    for (GlobalTileId g = 0; g < 4; ++g) {
        EXPECT_TRUE(proto.core(g).exited()) << "hart " << g;
        out.exits.push_back(proto.core(g).exitCode());
    }
    out.irqDeferred = proto.stats().counterValue("platform.irqDeferred");
    // The ponger (node 1) stored through its node-local replica of `flag`,
    // one DRAM channel above node 0's copy.
    std::uint64_t stride = cfg.memPerNode;
    out.flagNode1 = proto.memory().load(prog.symbol("flag") + stride, 8);
    out.sumNode0 = proto.memory().load(prog.symbol("sum"), 8);
    out.sumNode1 = proto.memory().load(prog.symbol("sum") + stride, 8);
    std::ostringstream os;
    proto.stats().dump(os);
    out.dump = os.str();
    return out;
}

TEST(ParallelPlatform, PingPongBitIdenticalAcrossThreadCounts)
{
    // The acceptance contract: identical seeds and quantum, threads in
    // {1, 2, 4} — final stats, exit codes and guest memory must match bit
    // for bit. threads=1 with a non-zero quantum is the phased engine run
    // serially (the reference schedule).
    PingPongRun ref = runPingPong(1, 63);
    EXPECT_EQ(ref.exits, (std::vector<std::int64_t>{5, 24, 7, 24}));
    EXPECT_EQ(ref.flagNode1, 1u);
    EXPECT_EQ(ref.sumNode0, 1999000u);
    EXPECT_EQ(ref.sumNode1, 1999000u);
    EXPECT_GE(ref.irqDeferred, 2u) << "cross-node irqs must defer";

    for (std::uint32_t threads : {2u, 4u}) {
        PingPongRun got = runPingPong(threads, 63);
        EXPECT_EQ(got.exits, ref.exits) << threads << " threads";
        EXPECT_EQ(got.flagNode1, ref.flagNode1);
        EXPECT_EQ(got.sumNode0, ref.sumNode0);
        EXPECT_EQ(got.sumNode1, ref.sumNode1);
        EXPECT_EQ(got.dump, ref.dump)
            << "stat dump diverged at " << threads << " threads";
    }
}

TEST(ParallelPlatform, PhasedMatchesSequentialFunctionalResults)
{
    // The phased engine must agree with the sequential engine on
    // architectural outcomes (exit codes, guest memory); timing stats may
    // differ, since cross-node delivery is quantized to barriers.
    PrototypeConfig seq_cfg = PrototypeConfig::parse("2x1x2");
    ASSERT_FALSE(seq_cfg.parallel.active());
    Prototype seq(seq_cfg);
    riscv::Program prog = seq.loadSourceReplicated(kPingPongSource);
    seq.runCores({0, 1, 2, 3}, 500000);

    PingPongRun phased = runPingPong(2, 63);
    for (GlobalTileId g = 0; g < 4; ++g) {
        EXPECT_TRUE(seq.core(g).exited());
        EXPECT_EQ(seq.core(g).exitCode(), phased.exits[g]) << "hart " << g;
    }
    std::uint64_t stride = seq_cfg.memPerNode;
    EXPECT_EQ(seq.memory().load(prog.symbol("flag") + stride, 8),
              phased.flagNode1);
    EXPECT_EQ(seq.memory().load(prog.symbol("sum"), 8), phased.sumNode0);
    // The sequential engine delivers cross-node irqs inline.
    EXPECT_EQ(seq.stats().counterValue("platform.irqDeferred"), 0u);
}

TEST(ParallelPlatform, DefaultConfigKeepsSequentialEngine)
{
    PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
    EXPECT_FALSE(cfg.parallel.active());
    cfg.parallel.quantum = 63;
    EXPECT_TRUE(cfg.parallel.active());
    cfg.parallel.quantum = 0;
    cfg.parallel.threads = 4;
    EXPECT_TRUE(cfg.parallel.active());
}

} // namespace
} // namespace smappic::platform
