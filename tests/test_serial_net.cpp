/**
 * @file
 * Tests for the serial networking stack (section 3.4.1): SLIP codec
 * properties, host peer service dispatch, and guest-driver round trips
 * through the prototype's timed MMIO path.
 */

#include <gtest/gtest.h>

#include "io/serial_net.hpp"
#include "io/uart_tunnel.hpp"
#include "platform/prototype.hpp"
#include "sim/random.hpp"

namespace smappic::io
{
namespace
{

std::vector<std::uint8_t>
decodeAll(const std::vector<std::uint8_t> &wire)
{
    std::vector<std::uint8_t> out;
    SlipCodec::Decoder d([&](const std::vector<std::uint8_t> &f) {
        out = f;
    });
    for (auto b : wire)
        d.feed(b);
    return out;
}

TEST(Slip, SimpleFrameRoundTrip)
{
    std::vector<std::uint8_t> frame = {'h', 'i', '!', 0x00, 0x7f};
    EXPECT_EQ(decodeAll(SlipCodec::encode(frame)), frame);
}

TEST(Slip, EscapesEndAndEscBytes)
{
    std::vector<std::uint8_t> frame = {kSlipEnd, kSlipEsc, kSlipEnd};
    auto wire = SlipCodec::encode(frame);
    // No raw END byte inside the body (only the two delimiters).
    int ends = 0;
    for (auto b : wire)
        ends += b == kSlipEnd;
    EXPECT_EQ(ends, 2);
    EXPECT_EQ(decodeAll(wire), frame);
}

TEST(Slip, PropertyRandomFramesRoundTrip)
{
    sim::Xoroshiro rng(33);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> frame;
        std::uint64_t len = 1 + rng.below(120);
        for (std::uint64_t i = 0; i < len; ++i)
            frame.push_back(static_cast<std::uint8_t>(rng.below(256)));
        EXPECT_EQ(decodeAll(SlipCodec::encode(frame)), frame)
            << "trial " << trial;
    }
}

TEST(Slip, BackToBackFramesSeparate)
{
    std::vector<std::vector<std::uint8_t>> got;
    SlipCodec::Decoder d([&](const std::vector<std::uint8_t> &f) {
        got.push_back(f);
    });
    for (auto b : SlipCodec::encode({'a'}))
        d.feed(b);
    for (auto b : SlipCodec::encode({'b', 'c'}))
        d.feed(b);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], (std::vector<std::uint8_t>{'a'}));
    EXPECT_EQ(got[1], (std::vector<std::uint8_t>{'b', 'c'}));
}

TEST(Slip, MalformedEscapeCounted)
{
    SlipCodec::Decoder d([](const std::vector<std::uint8_t> &) {});
    d.feed(kSlipEsc);
    d.feed(0x42); // Not a valid escape code.
    EXPECT_EQ(d.protocolErrors(), 1u);
}

TEST(HostNetPeer, DispatchesByPrefix)
{
    Uart16550 uart(1'000'000);
    HostNetPeer peer(uart);
    peer.addService("GET ", [](const std::string &req) {
        return "200 " + req.substr(4);
    });
    peer.addService("PING", [](const std::string &) { return "PONG"; });

    // Drive the UART's TX as a guest would.
    for (auto b : SlipCodec::encode({'P', 'I', 'N', 'G'}))
        uart.writeReg({kUartRbrThr, b, 1});
    EXPECT_EQ(peer.framesReceived(), 1u);
    EXPECT_EQ(peer.framesSent(), 1u);

    // The response is waiting in the UART RX FIFO, SLIP framed.
    std::vector<std::uint8_t> resp;
    SlipCodec::Decoder d([&](const std::vector<std::uint8_t> &f) {
        resp = f;
    });
    while (!uart.rxEmpty()) {
        std::uint32_t b = 0;
        uart.readReg(kUartRbrThr, b);
        d.feed(static_cast<std::uint8_t>(b));
    }
    EXPECT_EQ(std::string(resp.begin(), resp.end()), "PONG");
}

TEST(HostNetPeer, UnknownFramesLoggedNotAnswered)
{
    Uart16550 uart(1'000'000);
    HostNetPeer peer(uart);
    peer.addService("GET ", [](const std::string &) { return "x"; });
    for (auto b : SlipCodec::encode({'?', '?'}))
        uart.writeReg({kUartRbrThr, b, 1});
    EXPECT_EQ(peer.framesReceived(), 1u);
    EXPECT_EQ(peer.framesSent(), 0u);
    ASSERT_EQ(peer.log().size(), 1u);
    EXPECT_EQ(peer.log()[0], "??");
}

TEST(GuestNetDriver, EndToEndRequestResponseThroughPrototype)
{
    // The full paper stack: guest driver -> timed NC MMIO -> tunnelled
    // data UART -> host peer ("the Internet") -> response frames back.
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    HostNetPeer internet(proto.dataUart(0));
    internet.addService("GET ", [](const std::string &req) {
        return "HTTP/1.0 200 OK body-for:" + req.substr(4);
    });

    Addr window = platform::kUartBase + 1 * platform::kUartStride;
    GuestNetDriver driver(proto.memorySystem(), window, 0);

    Cycles t = 0;
    t += driver.sendString("GET /index.html", t);
    t += driver.pollReceive(t);

    ASSERT_EQ(driver.inbox().size(), 1u);
    EXPECT_EQ(driver.firstFrameText(),
              "HTTP/1.0 200 OK body-for:/index.html");
    EXPECT_EQ(internet.framesReceived(), 1u);
    // The driver paid real MMIO latency for every byte moved.
    EXPECT_GT(t, 50u * 20u);
}

TEST(GuestNetDriver, MultipleTransactions)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    HostNetPeer internet(proto.dataUart(0));
    int hits = 0;
    internet.addService("PING", [&](const std::string &) {
        ++hits;
        return "PONG";
    });

    Addr window = platform::kUartBase + 1 * platform::kUartStride;
    GuestNetDriver driver(proto.memorySystem(), window, 1);
    Cycles t = 0;
    for (int i = 0; i < 5; ++i) {
        t += driver.sendString("PING", t);
        t += driver.pollReceive(t);
    }
    EXPECT_EQ(hits, 5);
    EXPECT_EQ(driver.inbox().size(), 5u);
}

TEST(GuestNetDriver, PollWithoutTrafficTerminates)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    Addr window = platform::kUartBase + 1 * platform::kUartStride;
    GuestNetDriver driver(proto.memorySystem(), window, 0);
    Cycles spent = driver.pollReceive(0);
    EXPECT_GT(spent, 0u); // One LSR read.
    EXPECT_TRUE(driver.inbox().empty());
}

} // namespace
} // namespace smappic::io

namespace smappic::io
{
namespace
{

TEST(UartTunnel, GuestOutputDrainsThroughPcie)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    Uart16550 uart;
    UartTunnelTarget tunnel(uart);
    fabric.addWindow(0x9000, 0x100, &tunnel, 0, "uart-tunnel");

    HostUartDaemon daemon(eq, fabric, 0x9000, 100);
    daemon.start();

    // The guest writes a message through the UART's THR.
    for (char c : std::string("boot: ok\n"))
        uart.writeReg({kUartRbrThr, static_cast<std::uint32_t>(c), 1});

    eq.run(200000);
    daemon.stop();
    EXPECT_EQ(daemon.captured(), "boot: ok\n");
    // Every byte cost PCIe round trips (count poll + pop per byte).
    EXPECT_GE(eq.now(), 2u * 63u * 9u);
}

TEST(UartTunnel, HostInputReachesGuestRx)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    Uart16550 uart;
    UartTunnelTarget tunnel(uart);
    fabric.addWindow(0x9000, 0x100, &tunnel, 0, "uart-tunnel");

    HostUartDaemon daemon(eq, fabric, 0x9000, 100);
    daemon.start();
    daemon.type("hi");
    eq.run(100000);
    daemon.stop();

    ASSERT_EQ(uart.rxPending(), 2u);
    std::uint32_t b = 0;
    uart.readReg(kUartRbrThr, b);
    EXPECT_EQ(b, static_cast<std::uint32_t>('h'));
    uart.readReg(kUartRbrThr, b);
    EXPECT_EQ(b, static_cast<std::uint32_t>('i'));
}

TEST(UartTunnel, BidirectionalConversation)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    Uart16550 uart;
    UartTunnelTarget tunnel(uart);
    fabric.addWindow(0x9000, 0x100, &tunnel, 0, "uart-tunnel");
    HostUartDaemon daemon(eq, fabric, 0x9000, 50);
    daemon.start();
    daemon.type("?");
    eq.run(50000);

    // "Guest" firmware: on seeing '?', reply "!".
    ASSERT_FALSE(uart.rxEmpty());
    std::uint32_t b = 0;
    uart.readReg(kUartRbrThr, b);
    ASSERT_EQ(b, static_cast<std::uint32_t>('?'));
    uart.writeReg({kUartRbrThr, '!', 1});
    eq.run(200000);
    daemon.stop();
    EXPECT_EQ(daemon.captured(), "!");
}

TEST(UartTunnel, BadRegisterAccessErrors)
{
    Uart16550 uart;
    UartTunnelTarget tunnel(uart);
    auto w = tunnel.write(axi::WriteReq{0x40, {1}, 0});
    EXPECT_EQ(w.resp, axi::Resp::kSlvErr);
    auto r = tunnel.read(axi::ReadReq{0x40, 4, 0});
    EXPECT_EQ(r.resp, axi::Resp::kSlvErr);
}

} // namespace
} // namespace smappic::io
