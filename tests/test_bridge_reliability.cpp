/**
 * @file
 * Tests for the bridge's reliable link layer: exactly-once in-order
 * delivery under seeded drop/corrupt/delay storms, CRC-triggered
 * retransmission, duplicate suppression, graceful degradation of an
 * unresponsive peer (with recovery), replay exhaustion panics, and the
 * end-to-end 2-FPGA prototype under a >= 1% fault plan.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "bridge/inter_node_bridge.hpp"
#include "pcie/pcie_fabric.hpp"
#include "platform/prototype.hpp"
#include "sim/fault.hpp"
#include "sim/log.hpp"

namespace smappic
{
namespace
{

/** Two bridges with the reliable link layer on, plus a fault injector. */
struct ReliableHarness
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric;
    sim::FaultInjector fi;
    bridge::BridgeConfig cfg;
    bridge::InterNodeBridge bridge0;
    bridge::InterNodeBridge bridge1;
    std::vector<noc::Packet> at0;
    std::vector<noc::Packet> at1;

    explicit ReliableHarness(const sim::FaultPlan &plan,
                             bridge::ReliabilityConfig rel = makeRel(),
                             std::uint32_t credits = 8)
        : fabric(eq, 63, 16.0, &stats), fi(plan, &stats),
          cfg(makeCfg(credits, rel)),
          bridge0(0, 0, 0x0000000, eq, fabric, cfg, &stats),
          bridge1(1, 1, 0x1000000, eq, fabric, cfg, &stats)
    {
        fabric.setFaultInjector(&fi);
        bridge0.setFaultInjector(&fi);
        bridge1.setFaultInjector(&fi);
        bridge0.addPeer(1, bridge1.windowBase());
        bridge1.addPeer(0, bridge0.windowBase());
        bridge0.setDeliverFn(
            [this](const noc::Packet &p) { at0.push_back(p); });
        bridge1.setDeliverFn(
            [this](const noc::Packet &p) { at1.push_back(p); });
    }

    static bridge::ReliabilityConfig
    makeRel()
    {
        bridge::ReliabilityConfig r;
        r.enabled = true;
        r.replayDepth = 16;
        r.maxRetries = 32;
        r.ackTimeout = 32;
        r.creditRetryLimit = 3;
        r.reprobeInterval = 64;
        return r;
    }

    static bridge::BridgeConfig
    makeCfg(std::uint32_t credits, bridge::ReliabilityConfig rel)
    {
        bridge::BridgeConfig c;
        c.creditsPerNoc = credits;
        c.creditPollInterval = 16;
        c.reliability = rel;
        return c;
    }

    /** Packet whose addr encodes (src, noc, sequence) for order checks. */
    noc::Packet
    makePacket(NodeId src, NodeId dst, std::uint64_t seq,
               noc::NocIndex idx, std::size_t payload = 2)
    {
        noc::Packet p;
        p.noc = idx;
        p.srcNode = src;
        p.srcTile = 1;
        p.dstNode = dst;
        p.dstTile = 0;
        p.type = noc::MsgType::kDataResp;
        p.addr = (static_cast<Addr>(src) << 40) |
                 (static_cast<Addr>(idx) << 32) | seq;
        for (std::size_t i = 0; i < payload; ++i)
            p.payload.push_back(seq * 31 + i);
        return p;
    }
};

/** Asserts @p got is every sequence 0..n-1 exactly once, in order, per
 *  (src, noc) stream. */
void
expectExactlyOnceInOrder(const std::vector<noc::Packet> &got,
                         std::size_t expected_total)
{
    ASSERT_EQ(got.size(), expected_total);
    std::map<std::pair<NodeId, int>, std::uint64_t> next;
    for (const noc::Packet &p : got) {
        auto key = std::make_pair(p.srcNode, static_cast<int>(p.noc));
        std::uint64_t seq = p.addr & 0xffffffff;
        EXPECT_EQ(seq, next[key])
            << "src " << p.srcNode << " noc " << static_cast<int>(p.noc);
        next[key] = seq + 1;
    }
}

TEST(BridgeReliability, CleanLinkDeliversWithoutRetransmits)
{
    ReliableHarness h((sim::FaultPlan{}));
    for (std::uint64_t i = 0; i < 30; ++i)
        h.bridge0.sendPacket(h.makePacket(0, 1, i, noc::NocIndex::kNoc1));
    h.eq.run();
    expectExactlyOnceInOrder(h.at1, 30);
    EXPECT_EQ(h.bridge0.retransmits(), 0u);
    EXPECT_EQ(h.bridge1.crcErrors(), 0u);
    EXPECT_EQ(h.bridge1.duplicatesSuppressed(), 0u);
    EXPECT_TRUE(h.bridge0.sendIdle());
}

TEST(BridgeReliability, SurvivesDropStormExactlyOnce)
{
    sim::FaultPlan plan;
    plan.seed = 1234;
    plan.drop("pcie.write", 0.05); // 5% of frames lost in flight.
    ReliableHarness h(plan);
    for (std::uint64_t i = 0; i < 80; ++i) {
        h.bridge0.sendPacket(h.makePacket(
            0, 1, i, static_cast<noc::NocIndex>(i % 3)));
    }
    h.eq.run();
    // Per-NoC streams interleave per arrival; check per-stream order.
    std::map<int, std::vector<std::uint64_t>> streams;
    for (const noc::Packet &p : h.at1)
        streams[static_cast<int>(p.noc)].push_back(p.addr & 0xffffffff);
    std::size_t total = 0;
    for (auto &[nocidx, seqs] : streams) {
        for (std::size_t k = 1; k < seqs.size(); ++k)
            EXPECT_LT(seqs[k - 1], seqs[k]) << "noc " << nocidx;
        total += seqs.size();
    }
    EXPECT_EQ(total, 80u);
    EXPECT_GT(h.fi.dropsInjected(), 0u);
    EXPECT_GT(h.bridge0.retransmits(), 0u);
    EXPECT_TRUE(h.bridge0.sendIdle());
}

TEST(BridgeReliability, CrcCatchesCorruptionAndRetransmits)
{
    sim::FaultPlan plan;
    plan.seed = 7;
    plan.corrupt("bridge.tx", 0.1); // 10% of frames take a bit flip.
    ReliableHarness h(plan);
    for (std::uint64_t i = 0; i < 60; ++i)
        h.bridge0.sendPacket(h.makePacket(0, 1, i, noc::NocIndex::kNoc2));
    h.eq.run();
    expectExactlyOnceInOrder(h.at1, 60);
    // Every injected corruption was caught by the receiver's CRC and
    // repaired by replay; the payloads above must therefore be intact.
    EXPECT_GT(h.fi.corruptionsInjected(), 0u);
    EXPECT_GE(h.bridge1.crcErrors(), h.fi.corruptionsInjected());
    EXPECT_GT(h.bridge0.retransmits(), 0u);
    EXPECT_EQ(h.stats.counterValue("bridge.crcErrors"),
              h.bridge1.crcErrors());
    for (const noc::Packet &p : h.at1) {
        std::uint64_t seq = p.addr & 0xffffffff;
        ASSERT_EQ(p.payload.size(), 2u);
        EXPECT_EQ(p.payload[0], seq * 31);
        EXPECT_EQ(p.payload[1], seq * 31 + 1);
    }
}

TEST(BridgeReliability, ReorderingDelaysForceDuplicateSuppression)
{
    // Delaying a fraction of frames makes later frames arrive first: the
    // receiver NACKs the gap, the sender goes back, and the late original
    // finally lands as a duplicate that must be suppressed, not
    // redelivered.
    sim::FaultPlan plan;
    plan.seed = 99;
    plan.delay("pcie.write", 0.15, 400);
    plan.drop("pcie.write", 0.03);
    ReliableHarness h(plan);
    for (std::uint64_t i = 0; i < 100; ++i)
        h.bridge0.sendPacket(h.makePacket(0, 1, i, noc::NocIndex::kNoc1));
    h.eq.run();
    expectExactlyOnceInOrder(h.at1, 100);
    EXPECT_GT(h.bridge1.outOfOrderRejected() +
                  h.bridge1.duplicatesSuppressed(),
              0u);
    EXPECT_TRUE(h.bridge0.sendIdle());
}

TEST(BridgeReliability, BidirectionalStormBothDirectionsExactlyOnce)
{
    sim::FaultPlan plan;
    plan.seed = 5;
    plan.drop("pcie.write", 0.04);
    plan.corrupt("bridge.tx", 0.04);
    ReliableHarness h(plan);
    for (std::uint64_t i = 0; i < 50; ++i) {
        h.bridge0.sendPacket(h.makePacket(
            0, 1, i, static_cast<noc::NocIndex>(i % 3)));
        h.bridge1.sendPacket(h.makePacket(
            1, 0, i, static_cast<noc::NocIndex>((i + 1) % 3)));
    }
    h.eq.run();
    EXPECT_EQ(h.at0.size(), 50u);
    EXPECT_EQ(h.at1.size(), 50u);
    EXPECT_TRUE(h.bridge0.sendIdle());
    EXPECT_TRUE(h.bridge1.sendIdle());
}

TEST(BridgeReliability, ReplayExhaustionPanics)
{
    // A permanently corrupting link is unrecoverable by design: after
    // maxRetries replays of the same frame the bridge must fail loudly.
    sim::FaultPlan plan;
    plan.corrupt("bridge.tx", 1.0);
    bridge::ReliabilityConfig rel = ReliableHarness::makeRel();
    rel.maxRetries = 3;
    ReliableHarness h(plan, rel);
    h.bridge0.sendPacket(h.makePacket(0, 1, 0, noc::NocIndex::kNoc1));
    EXPECT_THROW(h.eq.run(), PanicError);
    EXPECT_GE(h.bridge1.crcErrors(), 3u);
}

TEST(BridgeReliability, UnresponsivePeerDegradesThenRecovers)
{
    // The first run of credit reads is dropped before reaching the wire;
    // after creditRetryLimit failures the peer degrades (no spinning),
    // probes keep going while traffic waits, and the first answered probe
    // recovers the link and drains the queue.
    sim::FaultPlan plan;
    // Events 0..5 at the credit-read site all fail.
    plan.add(sim::FaultRule{"bridge.creditRead", sim::FaultKind::kDrop,
                            1.0, 0, 0, 5});
    bridge::ReliabilityConfig rel = ReliableHarness::makeRel();
    ReliableHarness h(plan, rel, 2); // 2 credits: polls start early.
    for (std::uint64_t i = 0; i < 20; ++i)
        h.bridge0.sendPacket(h.makePacket(0, 1, i, noc::NocIndex::kNoc1));
    h.eq.run();
    expectExactlyOnceInOrder(h.at1, 20);
    EXPECT_EQ(h.bridge0.degradeEvents(), 1u);
    EXPECT_EQ(h.bridge0.recoverEvents(), 1u);
    EXPECT_FALSE(h.bridge0.peerDegraded(1));
    EXPECT_GE(h.bridge0.creditTimeouts(),
              static_cast<std::uint64_t>(rel.creditRetryLimit));
    EXPECT_EQ(h.stats.counterValue("bridge.peerDegraded"), 1u);
    EXPECT_EQ(h.stats.counterValue("bridge.peerRecovered"), 1u);
    EXPECT_TRUE(h.bridge0.sendIdle());
}

TEST(BridgeReliability, LegacyWireFormatUnchangedWhenDisabled)
{
    // Reliability off must keep the paper's exact wire format: a 10-flit
    // packet still costs 10 flits / 4 writes and no trailer bytes, so the
    // seed benchmarks see identical traffic.
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    bridge::BridgeConfig cfg; // reliability.enabled defaults to false.
    bridge::InterNodeBridge b0(0, 0, 0x0, eq, fabric, cfg, &stats);
    bridge::InterNodeBridge b1(1, 1, 0x1000000, eq, fabric, cfg, &stats);
    b0.addPeer(1, b1.windowBase());
    b1.addPeer(0, b0.windowBase());
    std::vector<noc::Packet> got;
    b1.setDeliverFn([&](const noc::Packet &p) { got.push_back(p); });

    noc::Packet p;
    p.noc = noc::NocIndex::kNoc1;
    p.srcNode = 0;
    p.dstNode = 1;
    p.dstTile = 5;
    p.type = noc::MsgType::kReqRd;
    p.addr = 0xabc000;
    p.payload.assign(8, 3);
    b0.sendPacket(p);
    eq.run();
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(b0.flitsSent(), 10u);
    EXPECT_EQ(b0.retransmits(), 0u);
    EXPECT_EQ(b1.crcErrors(), 0u);
    EXPECT_EQ(stats.counterValue("bridge.retransmits"), 0u);
}

TEST(BridgeReliability, TwoFpgaPrototypeUnderOnePercentFaults)
{
    // Acceptance scenario: a 2-FPGA prototype with a seeded >= 1% fault
    // plan on the inter-FPGA path still delivers every inter-node packet
    // exactly once, in per-(src, NoC) order, with the reliability
    // counters visible in the platform StatRegistry.
    platform::PrototypeConfig cfg = platform::PrototypeConfig::parse("2x1x2");
    cfg.faultPlan.seed = 2026;
    cfg.faultPlan.drop("pcie.write", 0.01);
    cfg.faultPlan.corrupt("bridge.tx", 0.01);
    cfg.reliability.enabled = true;
    cfg.reliability.ackTimeout = 32;
    platform::Prototype proto(cfg);
    ASSERT_NE(proto.faultInjector(), nullptr);

    std::vector<noc::Packet> at0, at1;
    proto.bridge(0).setDeliverFn(
        [&](const noc::Packet &p) { at0.push_back(p); });
    proto.bridge(1).setDeliverFn(
        [&](const noc::Packet &p) { at1.push_back(p); });

    auto make = [](NodeId src, NodeId dst, std::uint64_t seq,
                   noc::NocIndex idx) {
        noc::Packet p;
        p.noc = idx;
        p.srcNode = src;
        p.srcTile = 0;
        p.dstNode = dst;
        p.dstTile = 1;
        p.type = noc::MsgType::kDataResp;
        p.addr = (static_cast<Addr>(src) << 40) |
                 (static_cast<Addr>(idx) << 32) | seq;
        p.payload.push_back(seq);
        return p;
    };
    for (std::uint64_t i = 0; i < 120; ++i) {
        proto.bridge(0).sendPacket(
            make(0, 1, i, static_cast<noc::NocIndex>(i % 3)));
        proto.bridge(1).sendPacket(
            make(1, 0, i, static_cast<noc::NocIndex>(i % 3)));
    }
    proto.eventQueue().run();

    auto check = [](const std::vector<noc::Packet> &got) {
        ASSERT_EQ(got.size(), 120u);
        // Sequence numbers are global but streams are per NoC, so each
        // NoC's stream must be strictly increasing and 40 deep.
        std::map<int, std::vector<std::uint64_t>> streams;
        for (const noc::Packet &p : got) {
            streams[static_cast<int>(p.noc)].push_back(p.addr &
                                                       0xffffffff);
        }
        for (auto &[nocidx, seqs] : streams) {
            EXPECT_EQ(seqs.size(), 40u) << "noc " << nocidx;
            for (std::size_t k = 1; k < seqs.size(); ++k)
                EXPECT_LT(seqs[k - 1], seqs[k]) << "noc " << nocidx;
        }
    };
    check(at0);
    check(at1);

    // Faults actually fired, the link repaired them, and the registry
    // exposes the whole story.
    EXPECT_GT(proto.faultInjector()->dropsInjected() +
                  proto.faultInjector()->corruptionsInjected(),
              0u);
    const sim::StatRegistry &stats = proto.stats();
    EXPECT_GT(stats.counterValue("bridge.retransmits"), 0u);
    EXPECT_EQ(stats.counterValue("bridge.peerDegraded"), 0u);
    EXPECT_TRUE(proto.bridge(0).sendIdle());
    EXPECT_TRUE(proto.bridge(1).sendIdle());
}

} // namespace
} // namespace smappic
