/**
 * @file
 * Unit and property tests for the set-associative CacheArray.
 */

#include <gtest/gtest.h>

#include <set>

#include "cache/cache_array.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic::cache
{
namespace
{

TEST(CacheArray, GeometryDerivation)
{
    CacheArray c(8 << 10, 4, 64); // Table 2 L1D: 8 KB, 4 ways.
    EXPECT_EQ(c.sets(), 32u);
    EXPECT_EQ(c.ways(), 4u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(CacheArray, RejectsBadGeometry)
{
    EXPECT_THROW(CacheArray(1000, 3, 64), FatalError);
    EXPECT_THROW(CacheArray(8 << 10, 0, 64), FatalError);
    EXPECT_THROW(CacheArray(8 << 10, 4, 48), FatalError);
}

TEST(CacheArray, InsertThenHit)
{
    CacheArray c(4 << 10, 4);
    EXPECT_FALSE(c.lookup(0x1000));
    EXPECT_FALSE(c.insert(0x1000, 7).has_value());
    EXPECT_TRUE(c.lookup(0x1000));
    EXPECT_TRUE(c.lookup(0x103f)); // Same line.
    EXPECT_FALSE(c.lookup(0x1040)); // Next line.
    EXPECT_EQ(c.state(0x1000), 7u);
}

TEST(CacheArray, LookupIfStateMatchesProbeStateLookupFusion)
{
    CacheArray c(256, 4, 64); // One set, 4 ways.
    c.insert(0x000, 2);
    c.insert(0x100, 3);
    // State mismatch: no hit, and crucially no LRU movement.
    EXPECT_FALSE(c.lookupIfState(0x000, 3));
    EXPECT_FALSE(c.lookupIfState(0x200, 2)); // Not resident.
    // Matching state hits and touches LRU exactly like lookup():
    // after touching only line 0x100, line 0x000 must be the victim.
    EXPECT_TRUE(c.lookupIfState(0x100, 3));
    c.insert(0x200, 0);
    c.insert(0x300, 0);
    auto victim = c.insert(0x400, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 0x000u);
}

TEST(CacheArray, LruEviction)
{
    CacheArray c(256, 4, 64); // One set, 4 ways.
    // Fill the set; all map to set 0.
    for (Addr a = 0; a < 4; ++a)
        EXPECT_FALSE(c.insert(a * 256 * 1, 0).has_value());
    // Touch lines 1..3, leaving line 0 LRU.
    for (Addr a = 1; a < 4; ++a)
        EXPECT_TRUE(c.lookup(a * 256));
    auto victim = c.insert(4 * 256, 0);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->line, 0u);
}

TEST(CacheArray, VictimCarriesState)
{
    CacheArray c(64, 1, 64); // Direct-mapped, one set.
    c.insert(0x0, 42);
    auto victim = c.insert(0x40 * 1, 0); // Same set? sets=1, yes.
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->state, 42u);
}

TEST(CacheArray, InvalidateReturnsState)
{
    CacheArray c(4 << 10, 4);
    c.insert(0x2000, 3);
    auto st = c.invalidate(0x2000);
    ASSERT_TRUE(st.has_value());
    EXPECT_EQ(*st, 3u);
    EXPECT_FALSE(c.lookup(0x2000));
    EXPECT_FALSE(c.invalidate(0x2000).has_value());
}

TEST(CacheArray, DoubleInsertPanics)
{
    CacheArray c(4 << 10, 4);
    c.insert(0x3000);
    EXPECT_THROW(c.insert(0x3000), PanicError);
}

TEST(CacheArray, FlushAndOccupancy)
{
    CacheArray c(4 << 10, 4);
    for (Addr a = 0; a < 10; ++a)
        c.insert(a * 64);
    EXPECT_EQ(c.occupancy(), 10u);
    c.flush();
    EXPECT_EQ(c.occupancy(), 0u);
}

TEST(CacheArray, ForEachLineEnumerates)
{
    CacheArray c(4 << 10, 4);
    std::set<Addr> inserted;
    for (Addr a = 0; a < 16; ++a) {
        c.insert(a * 64, static_cast<std::uint32_t>(a));
        inserted.insert(a * 64);
    }
    std::set<Addr> seen;
    c.forEachLine([&](Addr line, std::uint32_t state) {
        seen.insert(line);
        EXPECT_EQ(state, line / 64);
    });
    EXPECT_EQ(seen, inserted);
}

/** Property: occupancy never exceeds capacity; a hit after insert-without-
 *  eviction is guaranteed. */
TEST(CacheArray, PropertyRandomizedOccupancyBound)
{
    sim::Xoroshiro rng(123);
    CacheArray c(2 << 10, 2);
    std::uint64_t capacity = c.sets() * c.ways();
    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.below(1 << 20) & ~0x3fULL;
        if (!c.probe(addr))
            c.insert(addr);
        ASSERT_LE(c.occupancy(), capacity);
        ASSERT_TRUE(c.probe(addr)); // Just-inserted line is resident.
    }
}

/** Property: a working set no larger than one set's ways never thrashes. */
TEST(CacheArray, PropertyNoConflictWithinAssociativity)
{
    CacheArray c(8 << 10, 4);
    // Four lines in the same set must all stay resident.
    std::uint64_t set_stride = 64ULL * c.sets();
    for (int w = 0; w < 4; ++w)
        c.insert(0x100000 + w * set_stride);
    for (int w = 0; w < 4; ++w)
        EXPECT_TRUE(c.probe(0x100000 + w * set_stride));
}

} // namespace
} // namespace smappic::cache
