/**
 * @file
 * Randomized RISC-V ALU torture test: generates random arithmetic
 * instruction sequences, runs them through the assembler + decoder +
 * interpreter pipeline, and checks the final register file against an
 * independent golden model implemented directly in this test. Catches
 * encode/decode/execute disagreements the targeted tests would miss.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "mem/main_memory.hpp"
#include "riscv/assembler.hpp"
#include "riscv/core.hpp"
#include "sim/random.hpp"

namespace smappic::riscv
{
namespace
{

class FlatPort : public MemPort
{
  public:
    std::uint64_t
    load(Addr a, std::uint32_t b, Cycles, Cycles &lat) override
    {
        lat = 1;
        return mem.load(a, b);
    }
    void
    store(Addr a, std::uint32_t b, std::uint64_t v, Cycles,
          Cycles &lat) override
    {
        lat = 1;
        mem.store(a, b, v);
    }
    std::uint32_t
    fetch(Addr a, Cycles, Cycles &lat) override
    {
        lat = 1;
        return static_cast<std::uint32_t>(mem.load(a, 4));
    }
    std::uint64_t
    atomic(Addr a, std::uint32_t b,
           const std::function<std::uint64_t(std::uint64_t)> &rmw, Cycles,
           Cycles &lat) override
    {
        lat = 1;
        std::uint64_t old = mem.load(a, b);
        mem.store(a, b, rmw(old));
        return old;
    }
    mem::MainMemory mem;
};

/** Golden model: straightforward two-operand evaluation, written
 *  independently of the interpreter's switch. */
std::uint64_t
golden(const std::string &op, std::uint64_t a, std::uint64_t b,
       std::int64_t imm)
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    auto w = [](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    };
    if (op == "add") return a + b;
    if (op == "sub") return a - b;
    if (op == "and") return a & b;
    if (op == "or") return a | b;
    if (op == "xor") return a ^ b;
    if (op == "sll") return a << (b & 63);
    if (op == "srl") return a >> (b & 63);
    if (op == "sra") return static_cast<std::uint64_t>(sa >> (b & 63));
    if (op == "slt") return sa < sb ? 1 : 0;
    if (op == "sltu") return a < b ? 1 : 0;
    if (op == "mul") return a * b;
    if (op == "addw") return w(a + b);
    if (op == "subw") return w(a - b);
    if (op == "sllw") return w(a << (b & 31));
    if (op == "srlw")
        return w(static_cast<std::uint32_t>(a) >> (b & 31));
    if (op == "sraw")
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(a) >> (b & 31)));
    if (op == "addi") return a + static_cast<std::uint64_t>(imm);
    if (op == "andi") return a & static_cast<std::uint64_t>(imm);
    if (op == "ori") return a | static_cast<std::uint64_t>(imm);
    if (op == "xori") return a ^ static_cast<std::uint64_t>(imm);
    if (op == "slti") return sa < imm ? 1 : 0;
    if (op == "sltiu")
        return a < static_cast<std::uint64_t>(imm) ? 1 : 0;
    if (op == "addiw") return w(a + static_cast<std::uint64_t>(imm));
    ADD_FAILURE() << "golden model missing op " << op;
    return 0;
}

class TortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TortureSweep, RandomAluSequenceMatchesGoldenModel)
{
    sim::Xoroshiro rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);

    // Registers x18..x28 participate (clear of the exit stub's
    // a0/a7); golden state mirrors them.
    std::uint64_t state[32] = {};
    std::ostringstream src;
    src << "_start:\n";
    // Seed registers with random constants.
    for (int r = 18; r <= 28; ++r) {
        std::uint64_t v = rng.next();
        state[r] = v;
        src << "  li x" << r << ", " << static_cast<std::int64_t>(v)
            << "\n";
    }

    const char *two_op[] = {"add", "sub", "and", "or",  "xor",
                            "sll", "srl", "sra", "slt", "sltu",
                            "mul", "addw", "subw", "sllw", "srlw",
                            "sraw"};
    const char *imm_op[] = {"addi", "andi", "ori", "xori",
                            "slti", "sltiu", "addiw"};

    for (int i = 0; i < 300; ++i) {
        int rd = 18 + static_cast<int>(rng.below(11));
        int rs1 = 18 + static_cast<int>(rng.below(11));
        if (rng.chance(0.6)) {
            int rs2 = 18 + static_cast<int>(rng.below(11));
            const char *op = two_op[rng.below(std::size(two_op))];
            src << "  " << op << " x" << rd << ", x" << rs1 << ", x"
                << rs2 << "\n";
            state[rd] = golden(op, state[rs1], state[rs2], 0);
        } else {
            const char *op = imm_op[rng.below(std::size(imm_op))];
            auto imm = static_cast<std::int64_t>(rng.below(4096)) - 2048;
            src << "  " << op << " x" << rd << ", x" << rs1 << ", " << imm
                << "\n";
            state[rd] = golden(op, state[rs1], 0, imm);
        }
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    for (const auto &seg : prog.segments)
        port.mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    core.setEcallHandler([](RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(0);
            return true;
        }
        return false;
    });
    ASSERT_EQ(core.run(10000), HaltReason::kExited);

    for (int r = 18; r <= 28; ++r)
        EXPECT_EQ(core.reg(static_cast<unsigned>(r)), state[r])
            << "x" << r << " diverged (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureSweep, ::testing::Range(0, 12));

} // namespace
} // namespace smappic::riscv

namespace smappic::riscv
{
namespace
{

/** Memory torture: random-width loads/stores against a golden byte
 *  image, exercising the assembler's memory operands, sign extension and
 *  the L1/BPC write-through path. */
class MemTortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MemTortureSweep, RandomLoadsStoresMatchGoldenImage)
{
    sim::Xoroshiro rng(static_cast<std::uint64_t>(GetParam()) * 104729 +
                       11);
    constexpr Addr kScratch = 0x80500000;
    constexpr std::uint64_t kWindow = 256;

    std::uint8_t image[kWindow] = {};
    std::ostringstream src;
    src << "_start:\n  li x31, " << kScratch << "\n";

    const struct
    {
        const char *st;
        const char *ld;
        unsigned bytes;
    } widths[] = {
        {"sb", "lbu", 1}, {"sh", "lhu", 2}, {"sw", "lwu", 4},
        {"sd", "ld", 8},
    };

    std::uint64_t reg28 = 0;
    for (int i = 0; i < 200; ++i) {
        const auto &w = widths[rng.below(4)];
        Addr off = (rng.below(kWindow - 8) / w.bytes) * w.bytes;
        if (rng.chance(0.5)) {
            std::uint64_t v = rng.next();
            src << "  li x28, " << static_cast<std::int64_t>(v) << "\n";
            src << "  " << w.st << " x28, " << off << "(x31)\n";
            for (unsigned b = 0; b < w.bytes; ++b)
                image[off + b] = static_cast<std::uint8_t>(v >> (8 * b));
            reg28 = v;
        } else {
            src << "  " << w.ld << " x28, " << off << "(x31)\n";
            std::uint64_t v = 0;
            for (unsigned b = 0; b < w.bytes; ++b)
                v |= static_cast<std::uint64_t>(image[off + b]) << (8 * b);
            reg28 = v;
        }
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    for (const auto &seg : prog.segments)
        port.mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    core.setEcallHandler([](RvCore &c) {
        if (c.reg(17) == 93) {
            c.requestExit(0);
            return true;
        }
        return false;
    });
    ASSERT_EQ(core.run(20000), HaltReason::kExited);

    // Final register value and the entire memory image must match.
    EXPECT_EQ(core.reg(28), reg28) << "seed " << GetParam();
    for (std::uint64_t b = 0; b < kWindow; ++b)
        ASSERT_EQ(port.mem.load(kScratch + b, 1), image[b])
            << "byte " << b << " (seed " << GetParam() << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemTortureSweep, ::testing::Range(0, 8));

} // namespace
} // namespace smappic::riscv
