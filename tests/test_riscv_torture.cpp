/**
 * @file
 * Randomized RISC-V torture tests: generate random instruction
 * sequences, run them through the assembler + decoder + interpreter
 * pipeline, and check the final architectural state against an
 * independent golden model implemented directly in this test. Catches
 * encode/decode/execute disagreements the targeted tests would miss.
 *
 * Coverage: base-ISA ALU ops, the full M extension (including the
 * div-by-zero and signed-overflow corner semantics), pure memory
 * sequences, and mixed ALU + load/store programs. Every case records
 * its seed (gtest property + failure messages) so a red run replays
 * deterministically.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "check/lockstep.hpp"
#include "riscv/assembler.hpp"
#include "riscv/core.hpp"
#include "sim/random.hpp"
#include "support/flat_port.hpp"

namespace smappic::riscv
{
namespace
{

using test::FlatPort;

/** Golden model: straightforward two-operand evaluation, written
 *  independently of the interpreter's switch. */
std::uint64_t
golden(const std::string &op, std::uint64_t a, std::uint64_t b,
       std::int64_t imm)
{
    auto sa = static_cast<std::int64_t>(a);
    auto sb = static_cast<std::int64_t>(b);
    auto w = [](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    };
    if (op == "add") return a + b;
    if (op == "sub") return a - b;
    if (op == "and") return a & b;
    if (op == "or") return a | b;
    if (op == "xor") return a ^ b;
    if (op == "sll") return a << (b & 63);
    if (op == "srl") return a >> (b & 63);
    if (op == "sra") return static_cast<std::uint64_t>(sa >> (b & 63));
    if (op == "slt") return sa < sb ? 1 : 0;
    if (op == "sltu") return a < b ? 1 : 0;
    if (op == "addw") return w(a + b);
    if (op == "subw") return w(a - b);
    if (op == "sllw") return w(a << (b & 31));
    if (op == "srlw")
        return w(static_cast<std::uint32_t>(a) >> (b & 31));
    if (op == "sraw")
        return static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(a) >> (b & 31)));
    if (op == "addi") return a + static_cast<std::uint64_t>(imm);
    if (op == "andi") return a & static_cast<std::uint64_t>(imm);
    if (op == "ori") return a | static_cast<std::uint64_t>(imm);
    if (op == "xori") return a ^ static_cast<std::uint64_t>(imm);
    if (op == "slti") return sa < imm ? 1 : 0;
    if (op == "sltiu")
        return a < static_cast<std::uint64_t>(imm) ? 1 : 0;
    if (op == "addiw") return w(a + static_cast<std::uint64_t>(imm));

    // M extension. Division corner cases follow the RISC-V spec: x/0 is
    // all-ones (quotient) and x (remainder); INT_MIN/-1 is INT_MIN and 0.
    if (op == "mul") return a * b;
    if (op == "mulh") {
        auto p = static_cast<__int128>(sa) * static_cast<__int128>(sb);
        return static_cast<std::uint64_t>(p >> 64);
    }
    if (op == "mulhu") {
        auto p = static_cast<unsigned __int128>(a) *
                 static_cast<unsigned __int128>(b);
        return static_cast<std::uint64_t>(p >> 64);
    }
    if (op == "mulhsu") {
        auto p = static_cast<__int128>(sa) *
                 static_cast<__int128>(static_cast<unsigned __int128>(b));
        return static_cast<std::uint64_t>(p >> 64);
    }
    if (op == "mulw") return w(a * b);
    if (op == "div") {
        if (b == 0) return ~0ULL;
        if (sa == INT64_MIN && sb == -1)
            return static_cast<std::uint64_t>(INT64_MIN);
        return static_cast<std::uint64_t>(sa / sb);
    }
    if (op == "divu") return b == 0 ? ~0ULL : a / b;
    if (op == "rem") {
        if (b == 0) return a;
        if (sa == INT64_MIN && sb == -1) return 0;
        return static_cast<std::uint64_t>(sa % sb);
    }
    if (op == "remu") return b == 0 ? a : a % b;
    if (op == "divw" || op == "divuw" || op == "remw" || op == "remuw") {
        auto aw = static_cast<std::int32_t>(a);
        auto bw = static_cast<std::int32_t>(b);
        auto auw = static_cast<std::uint32_t>(a);
        auto buw = static_cast<std::uint32_t>(b);
        if (op == "divw") {
            if (bw == 0) return ~0ULL;
            if (aw == INT32_MIN && bw == -1) return w(INT32_MIN);
            return w(static_cast<std::uint32_t>(aw / bw));
        }
        if (op == "divuw")
            return buw == 0 ? ~0ULL : w(auw / buw);
        if (op == "remw") {
            if (bw == 0) return w(auw);
            if (aw == INT32_MIN && bw == -1) return 0;
            return w(static_cast<std::uint32_t>(aw % bw));
        }
        return buw == 0 ? w(auw) : w(auw % buw);
    }
    ADD_FAILURE() << "golden model missing op " << op;
    return 0;
}

class TortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TortureSweep, RandomAluSequenceMatchesGoldenModel)
{
    std::uint64_t seed = static_cast<std::uint64_t>(GetParam()) * 7919 + 3;
    RecordProperty("seed", std::to_string(seed));
    sim::Xoroshiro rng(seed);

    // Registers x18..x28 participate (clear of the exit stub's
    // a0/a7); golden state mirrors them.
    std::uint64_t state[32] = {};
    std::ostringstream src;
    src << "_start:\n";
    for (int r = 18; r <= 28; ++r) {
        std::uint64_t v = rng.next();
        state[r] = v;
        src << "  li x" << r << ", " << static_cast<std::int64_t>(v)
            << "\n";
    }

    const char *two_op[] = {"add", "sub", "and", "or",  "xor",
                            "sll", "srl", "sra", "slt", "sltu",
                            "mul", "addw", "subw", "sllw", "srlw",
                            "sraw"};
    const char *imm_op[] = {"addi", "andi", "ori", "xori",
                            "slti", "sltiu", "addiw"};

    for (int i = 0; i < 300; ++i) {
        int rd = 18 + static_cast<int>(rng.below(11));
        int rs1 = 18 + static_cast<int>(rng.below(11));
        if (rng.chance(0.6)) {
            int rs2 = 18 + static_cast<int>(rng.below(11));
            const char *op = two_op[rng.below(std::size(two_op))];
            src << "  " << op << " x" << rd << ", x" << rs1 << ", x"
                << rs2 << "\n";
            state[rd] = golden(op, state[rs1], state[rs2], 0);
        } else {
            const char *op = imm_op[rng.below(std::size(imm_op))];
            auto imm = static_cast<std::int64_t>(rng.below(4096)) - 2048;
            src << "  " << op << " x" << rd << ", x" << rs1 << ", " << imm
                << "\n";
            state[rd] = golden(op, state[rs1], 0, imm);
        }
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    test::loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    test::installExitHandler(core);
    ASSERT_EQ(core.run(10000), HaltReason::kExited);

    for (int r = 18; r <= 28; ++r)
        EXPECT_EQ(core.reg(static_cast<unsigned>(r)), state[r])
            << "x" << r << " diverged (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, TortureSweep, ::testing::Range(0, 12));

/** M-extension torture: the multiply/divide families, with the operand
 *  mix biased toward the spec's corner cases (0, -1, INT_MIN). */
class MulDivTortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MulDivTortureSweep, RandomMulDivSequenceMatchesGoldenModel)
{
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 50021 + 7;
    RecordProperty("seed", std::to_string(seed));
    sim::Xoroshiro rng(seed);

    std::uint64_t state[32] = {};
    std::ostringstream src;
    src << "_start:\n";
    for (int r = 18; r <= 27; ++r) {
        // Bias operands toward corner values so div-by-zero and the
        // INT_MIN/-1 overflow actually occur in most sequences.
        std::uint64_t v;
        switch (rng.below(6)) {
          case 0: v = 0; break;
          case 1: v = ~0ULL; break;
          case 2: v = static_cast<std::uint64_t>(INT64_MIN); break;
          case 3: v = static_cast<std::uint64_t>(INT32_MIN); break;
          default: v = rng.next(); break;
        }
        state[r] = v;
        src << "  li x" << r << ", " << static_cast<std::int64_t>(v)
            << "\n";
    }

    const char *m_op[] = {"mul",  "mulh",  "mulhu", "mulhsu", "mulw",
                          "div",  "divu",  "rem",   "remu",   "divw",
                          "divuw", "remw", "remuw"};
    for (int i = 0; i < 250; ++i) {
        int rd = 18 + static_cast<int>(rng.below(10));
        int rs1 = 18 + static_cast<int>(rng.below(10));
        int rs2 = 18 + static_cast<int>(rng.below(10));
        const char *op = m_op[rng.below(std::size(m_op))];
        src << "  " << op << " x" << rd << ", x" << rs1 << ", x" << rs2
            << "\n";
        state[rd] = golden(op, state[rs1], state[rs2], 0);
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    test::loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    test::installExitHandler(core);
    ASSERT_EQ(core.run(10000), HaltReason::kExited);

    for (int r = 18; r <= 27; ++r)
        EXPECT_EQ(core.reg(static_cast<unsigned>(r)), state[r])
            << "x" << r << " diverged (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MulDivTortureSweep,
                         ::testing::Range(0, 10));

} // namespace
} // namespace smappic::riscv

namespace smappic::riscv
{
namespace
{

using test::FlatPort;

/** Memory torture: random-width loads/stores against a golden byte
 *  image, exercising the assembler's memory operands, sign extension and
 *  the L1/BPC write-through path. */
class MemTortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MemTortureSweep, RandomLoadsStoresMatchGoldenImage)
{
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 104729 + 11;
    RecordProperty("seed", std::to_string(seed));
    sim::Xoroshiro rng(seed);
    constexpr Addr kScratch = 0x80500000;
    constexpr std::uint64_t kWindow = 256;

    std::uint8_t image[kWindow] = {};
    std::ostringstream src;
    src << "_start:\n  li x31, " << kScratch << "\n";

    const struct
    {
        const char *st;
        const char *ld;
        unsigned bytes;
    } widths[] = {
        {"sb", "lbu", 1}, {"sh", "lhu", 2}, {"sw", "lwu", 4},
        {"sd", "ld", 8},
    };

    std::uint64_t reg28 = 0;
    for (int i = 0; i < 200; ++i) {
        const auto &w = widths[rng.below(4)];
        Addr off = (rng.below(kWindow - 8) / w.bytes) * w.bytes;
        if (rng.chance(0.5)) {
            std::uint64_t v = rng.next();
            src << "  li x28, " << static_cast<std::int64_t>(v) << "\n";
            src << "  " << w.st << " x28, " << off << "(x31)\n";
            for (unsigned b = 0; b < w.bytes; ++b)
                image[off + b] = static_cast<std::uint8_t>(v >> (8 * b));
            reg28 = v;
        } else {
            src << "  " << w.ld << " x28, " << off << "(x31)\n";
            std::uint64_t v = 0;
            for (unsigned b = 0; b < w.bytes; ++b)
                v |= static_cast<std::uint64_t>(image[off + b]) << (8 * b);
            reg28 = v;
        }
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    test::loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    test::installExitHandler(core);
    ASSERT_EQ(core.run(20000), HaltReason::kExited);

    // Final register value and the entire memory image must match.
    EXPECT_EQ(core.reg(28), reg28) << "seed " << seed;
    for (std::uint64_t b = 0; b < kWindow; ++b)
        ASSERT_EQ(port.memory.load(kScratch + b, 1), image[b])
            << "byte " << b << " (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemTortureSweep, ::testing::Range(0, 8));

/** Mixed torture: interleaved ALU (incl. M) and load/store traffic over
 *  a golden register file plus a golden byte image — the combination a
 *  real program actually produces. */
class MixedTortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(MixedTortureSweep, RandomMixedSequenceMatchesGoldenState)
{
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 65537 + 29;
    RecordProperty("seed", std::to_string(seed));
    sim::Xoroshiro rng(seed);
    constexpr Addr kScratch = 0x80500000;
    constexpr std::uint64_t kWindow = 128;

    std::uint8_t image[kWindow] = {};
    std::uint64_t state[32] = {};
    std::ostringstream src;
    src << "_start:\n  li x31, " << kScratch << "\n";
    for (int r = 18; r <= 26; ++r) {
        std::uint64_t v = rng.next();
        state[r] = v;
        src << "  li x" << r << ", " << static_cast<std::int64_t>(v)
            << "\n";
    }

    const char *alu_op[] = {"add", "sub", "xor", "sll", "srl",
                            "mul", "divu", "remu", "addw", "mulw"};
    auto pick = [&] { return 18 + static_cast<int>(rng.below(9)); };

    for (int i = 0; i < 220; ++i) {
        switch (rng.below(3)) {
          case 0: { // ALU
            int rd = pick(), rs1 = pick(), rs2 = pick();
            const char *op = alu_op[rng.below(std::size(alu_op))];
            src << "  " << op << " x" << rd << ", x" << rs1 << ", x"
                << rs2 << "\n";
            state[rd] = golden(op, state[rs1], state[rs2], 0);
            break;
          }
          case 1: { // store a live register (dword, aligned)
            int rs = pick();
            Addr off = rng.below(kWindow / 8) * 8;
            src << "  sd x" << rs << ", " << off << "(x31)\n";
            for (unsigned b = 0; b < 8; ++b)
                image[off + b] =
                    static_cast<std::uint8_t>(state[rs] >> (8 * b));
            break;
          }
          default: { // load back into a live register
            int rd = pick();
            Addr off = rng.below(kWindow / 8) * 8;
            src << "  ld x" << rd << ", " << off << "(x31)\n";
            std::uint64_t v = 0;
            for (unsigned b = 0; b < 8; ++b)
                v |= static_cast<std::uint64_t>(image[off + b]) << (8 * b);
            state[rd] = v;
            break;
          }
        }
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    test::loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    test::installExitHandler(core);
    ASSERT_EQ(core.run(20000), HaltReason::kExited);

    for (int r = 18; r <= 26; ++r)
        EXPECT_EQ(core.reg(static_cast<unsigned>(r)), state[r])
            << "x" << r << " diverged (seed " << seed << ")";
    for (std::uint64_t b = 0; b < kWindow; ++b)
        ASSERT_EQ(port.memory.load(kScratch + b, 1), image[b])
            << "byte " << b << " (seed " << seed << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedTortureSweep, ::testing::Range(0, 8));

} // namespace
} // namespace smappic::riscv

namespace smappic::riscv
{
namespace
{

using test::FlatPort;

/**
 * A-extension torture: random AMO traffic and contiguous LR/SC pairs
 * over a golden byte image and register file, double-checked by the
 * lockstep golden-model checker (src/check/lockstep.hpp) riding on the
 * same run. Word AMOs deliberately feed operands with dirty upper
 * halves — the 32-bit min/max comparison must ignore them.
 */
class AmoTortureSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(AmoTortureSweep, RandomAtomicSequenceMatchesGoldenState)
{
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) * 2097593 + 17;
    RecordProperty("seed", std::to_string(seed));
    sim::Xoroshiro rng(seed);
    constexpr Addr kScratch = 0x80500000;
    constexpr std::uint64_t kWindow = 128;

    auto sext32 = [](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
    };

    std::uint8_t image[kWindow] = {};
    std::uint64_t state[32] = {};
    std::ostringstream src;
    src << "_start:\n  li x31, " << kScratch << "\n";
    for (int r = 18; r <= 26; ++r) {
        std::uint64_t v = rng.next();
        state[r] = v;
        src << "  li x" << r << ", " << static_cast<std::int64_t>(v)
            << "\n";
    }

    auto pick = [&] { return 18 + static_cast<int>(rng.below(9)); };
    auto imageLoad = [&](Addr off, unsigned bytes) {
        std::uint64_t v = 0;
        for (unsigned b = 0; b < bytes; ++b)
            v |= static_cast<std::uint64_t>(image[off + b]) << (8 * b);
        return v;
    };
    auto imageStore = [&](Addr off, unsigned bytes, std::uint64_t v) {
        for (unsigned b = 0; b < bytes; ++b)
            image[off + b] = static_cast<std::uint8_t>(v >> (8 * b));
    };

    const char *amo_op[] = {"amoswap", "amoadd",  "amoxor",
                            "amoand",  "amoor",   "amomin",
                            "amomax",  "amominu", "amomaxu"};
    for (int i = 0; i < 200; ++i) {
        switch (rng.below(4)) {
          case 0: { // AMO (both widths)
            bool dbl = rng.chance(0.5);
            unsigned bytes = dbl ? 8 : 4;
            Addr off = rng.below(kWindow / bytes) * bytes;
            int rd = pick(), rs2 = pick();
            const char *op = amo_op[rng.below(std::size(amo_op))];
            src << "  addi x30, x31, " << off << "\n";
            src << "  " << op << (dbl ? ".d" : ".w") << " x" << rd
                << ", x" << rs2 << ", (x30)\n";
            std::uint64_t old = imageLoad(off, bytes);
            // 32-bit AMOs compare/combine sign-extended words; sext32
            // preserves both signed and unsigned 32-bit order.
            std::uint64_t a = dbl ? old : sext32(old);
            std::uint64_t s = dbl ? state[rs2] : sext32(state[rs2]);
            auto sa = static_cast<std::int64_t>(a);
            auto ss = static_cast<std::int64_t>(s);
            std::uint64_t next = a;
            if (std::string(op) == "amoswap") next = s;
            else if (std::string(op) == "amoadd") next = a + s;
            else if (std::string(op) == "amoxor") next = a ^ s;
            else if (std::string(op) == "amoand") next = a & s;
            else if (std::string(op) == "amoor") next = a | s;
            else if (std::string(op) == "amomin") next = sa < ss ? a : s;
            else if (std::string(op) == "amomax") next = sa > ss ? a : s;
            else if (std::string(op) == "amominu") next = a < s ? a : s;
            else next = a > s ? a : s;
            imageStore(off, bytes, next);
            state[rd] = dbl ? old : sext32(old);
            break;
          }
          case 1: { // Contiguous LR/SC pair (always succeeds bare-core)
            bool dbl = rng.chance(0.5);
            unsigned bytes = dbl ? 8 : 4;
            Addr off = rng.below(kWindow / bytes) * bytes;
            int rd = pick(), rs = pick(), rt = pick();
            const char *sfx = dbl ? ".d" : ".w";
            src << "  addi x30, x31, " << off << "\n";
            src << "  lr" << sfx << " x" << rd << ", (x30)\n";
            src << "  sc" << sfx << " x" << rt << ", x" << rs
                << ", (x30)\n";
            std::uint64_t v = imageLoad(off, bytes);
            state[rd] = dbl ? v : sext32(v);
            imageStore(off, bytes, state[rs]);
            state[rt] = 0; // Reservation held: SC succeeds.
            break;
          }
          case 2: { // ALU churn
            int rd = pick(), rs1 = pick(), rs2 = pick();
            static const char *alu[] = {"add", "sub", "xor", "mul"};
            const char *op = alu[rng.below(std::size(alu))];
            src << "  " << op << " x" << rd << ", x" << rs1 << ", x"
                << rs2 << "\n";
            state[rd] = golden(op, state[rs1], state[rs2], 0);
            break;
          }
          default: { // Plain dword load
            int rd = pick();
            Addr off = rng.below(kWindow / 8) * 8;
            src << "  ld x" << rd << ", " << off << "(x31)\n";
            state[rd] = imageLoad(off, 8);
            break;
          }
        }
    }
    src << "  li a7, 93\n  li a0, 0\n  ecall\n";

    FlatPort port;
    Assembler as;
    Program prog = as.assemble(src.str());
    test::loadProgram(port.memory, prog);
    CoreConfig cfg;
    cfg.resetPc = prog.entry;
    RvCore core(cfg, port);
    test::installExitHandler(core);

    check::LockstepConfig lcfg;
    check::LockstepChecker checker(lcfg);
    checker.attach(core);
    for (const auto &seg : prog.segments)
        checker.loadImage(seg.base, seg.bytes.data(), seg.bytes.size());

    ASSERT_EQ(core.run(20000), HaltReason::kExited);

    for (int r = 18; r <= 26; ++r)
        EXPECT_EQ(core.reg(static_cast<unsigned>(r)), state[r])
            << "x" << r << " diverged (seed " << seed << ")";
    for (std::uint64_t b = 0; b < kWindow; ++b)
        ASSERT_EQ(port.memory.load(kScratch + b, 1), image[b])
            << "byte " << b << " (seed " << seed << ")";
    EXPECT_TRUE(checker.divergences().empty())
        << "seed " << seed << "\n" << checker.report();
    EXPECT_GT(checker.commits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AmoTortureSweep, ::testing::Range(0, 10));

} // namespace
} // namespace smappic::riscv
