/**
 * @file
 * Tests for the multi-core memory torture harness (src/check/torture):
 * the generator is a pure function of its seed, clean runs match the
 * flat golden model under the sequential engine, the phased engine and
 * a faulty-substrate + reliable-bridge configuration, and an armed
 * directory mutation produces a failing report that minimizes and
 * carries a deterministically reproducing seed.
 */

#include <gtest/gtest.h>

#include "check/torture.hpp"
#include "sim/types.hpp"

namespace smappic::check
{
namespace
{

TEST(TortureGenerator, IsAPureFunctionOfTheSeed)
{
    TortureConfig cfg;
    cfg.seed = 99;
    TortureProgram a = generateTorture(cfg);
    TortureProgram b = generateTorture(cfg);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.finalSlots, b.finalSlots);
    EXPECT_EQ(a.checksums, b.checksums);

    cfg.seed = 100;
    TortureProgram c = generateTorture(cfg);
    EXPECT_NE(a.source, c.source);
}

TEST(TortureGenerator, RejectsDegenerateShapes)
{
    TortureConfig cfg;
    cfg.sharedLines = 0;
    EXPECT_THROW(generateTorture(cfg), FatalError);
    cfg.sharedLines = 33; // past imm12-addressable window
    EXPECT_THROW(generateTorture(cfg), FatalError);
    cfg.sharedLines = 4;
    cfg.opsPerCore = 0;
    EXPECT_THROW(generateTorture(cfg), FatalError);
}

TEST(TortureHarness, SequentialRunMatchesGoldenModel)
{
    TortureConfig cfg;
    cfg.seed = 5;
    TortureReport rep = runTorture(cfg);
    EXPECT_TRUE(rep.passed)
        << (rep.mismatches.empty() ? "checker" : rep.mismatches[0]);
    EXPECT_EQ(rep.checkerViolations, 0u);
    EXPECT_NE(rep.repro.find("--seed 5"), std::string::npos);
}

TEST(TortureHarness, SeedSweepPassesSequentially)
{
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        TortureConfig cfg;
        cfg.seed = seed;
        cfg.opsPerCore = 48;
        TortureReport rep = runTorture(cfg);
        EXPECT_TRUE(rep.passed)
            << "seed " << seed << ": "
            << (rep.mismatches.empty() ? "checker violations"
                                       : rep.mismatches[0]);
    }
}

TEST(TortureHarness, ParallelEngineMatchesGoldenModel)
{
    for (std::uint32_t threads : {1u, 2u, 4u}) {
        TortureConfig cfg;
        cfg.seed = 11;
        cfg.parallel.threads = threads;
        cfg.parallel.quantum = 63;
        TortureReport rep = runTorture(cfg);
        EXPECT_TRUE(rep.passed)
            << threads << " workers: "
            << (rep.mismatches.empty() ? "checker violations"
                                       : rep.mismatches[0]);
        EXPECT_NE(rep.repro.find("--threads"), std::string::npos);
    }
}

TEST(TortureHarness, SurvivesFaultySubstrateWithReliableBridge)
{
    TortureConfig cfg;
    cfg.seed = 21;
    cfg.faultPlan.seed = 77;
    cfg.faultPlan.drop("bridge.tx", 0.02);
    cfg.faultPlan.corrupt("bridge.tx", 0.02);
    cfg.reliability.enabled = true;
    TortureReport rep = runTorture(cfg);
    EXPECT_TRUE(rep.passed)
        << (rep.mismatches.empty() ? "checker violations"
                                   : rep.mismatches[0]);
}

TEST(TortureHarness, MutationFailsMinimizesAndReproduces)
{
    TortureConfig cfg;
    cfg.seed = 31;
    cfg.opsPerCore = 64;
    cfg.sharedLines = 8;
    // Arm the lost-invalidation mutation on the first shared line; the
    // harness must fail (stale data and/or checker violations), shrink,
    // and hand back a seed that still reproduces the failure.
    cfg.preRun = [](platform::Prototype &proto,
                    const riscv::Program &prog) {
        proto.memorySystem().setTestMutation(
            cache::TestMutation::kLostInvalidation,
            lineAlign(prog.symbol("shared")));
    };

    TortureReport rep = runAndMinimize(cfg);
    EXPECT_FALSE(rep.passed);
    EXPECT_GT(rep.shrinkSteps, 0u);
    EXPECT_LE(rep.opsPerCore, cfg.opsPerCore);
    EXPECT_LE(rep.sharedLines, cfg.sharedLines);
    EXPECT_EQ(rep.seed, cfg.seed);
    EXPECT_NE(rep.repro.find("--seed 31"), std::string::npos);

    // Deterministic replay: rebuild the minimized config from the
    // report and re-run — the failure must reproduce identically.
    TortureConfig replay = cfg;
    replay.opsPerCore = rep.opsPerCore;
    replay.sharedLines = rep.sharedLines;
    TortureReport again = runTorture(replay);
    EXPECT_FALSE(again.passed);
    EXPECT_EQ(again.checkerViolations, rep.checkerViolations);
    EXPECT_EQ(again.mismatches, rep.mismatches);
}

} // namespace
} // namespace smappic::check
