/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering, stats,
 * deterministic RNG, queueing servers and traffic shapers.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"

namespace smappic::sim
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] { order.push_back(2); });
    eq.schedule(5, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 20u);
}

TEST(EventQueue, SameCycleFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.schedule(1, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.now(), 2u);
}

TEST(EventQueue, RunUntilAdvancesTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(eq.now(), 50u);
    eq.runUntil(150);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 150u);
}

TEST(EventQueue, ScheduleInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_THROW(eq.scheduleAt(5, [] {}), PanicError);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
}

TEST(Random, Deterministic)
{
    Xoroshiro a(42);
    Xoroshiro b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiffer)
{
    Xoroshiro a(1);
    Xoroshiro b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Random, BelowStaysInRange)
{
    Xoroshiro rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(13), 13u);
}

TEST(Random, UniformCoversUnitInterval)
{
    Xoroshiro rng(9);
    double lo = 1.0;
    double hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Stats, SummaryMoments)
{
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        s.sample(v);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.25);
}

TEST(Stats, HistogramBucketsAndPercentiles)
{
    Histogram h(10, 10.0);
    for (int i = 0; i < 100; ++i)
        h.sample(i);
    EXPECT_EQ(h.bucketCount(0), 10u);
    EXPECT_EQ(h.bucketCount(9), 10u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 50.0);
    h.sample(1e9);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Stats, RegistryDumpAndReset)
{
    StatRegistry reg;
    reg.counter("a.hits").increment(5);
    reg.counter("a.misses").increment();
    EXPECT_EQ(reg.counterValue("a.hits"), 5u);
    EXPECT_EQ(reg.counterValue("absent"), 0u);

    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("a.hits 5"), std::string::npos);

    reg.resetAll();
    EXPECT_EQ(reg.counterValue("a.hits"), 0u);
}

TEST(QueueServer, NoContentionNoQueueing)
{
    QueueServer s;
    auto g = s.offer(100, 10);
    EXPECT_EQ(g.start, 100u);
    EXPECT_EQ(g.done, 110u);
    EXPECT_EQ(g.queued, 0u);
}

TEST(QueueServer, BackToBackRequestsQueue)
{
    QueueServer s;
    s.offer(0, 10);
    auto g = s.offer(2, 10);
    EXPECT_EQ(g.start, 10u);
    EXPECT_EQ(g.done, 20u);
    EXPECT_EQ(g.queued, 8u);
    EXPECT_EQ(s.requests(), 2u);
    EXPECT_EQ(s.queuedCycles(), 8u);
}

TEST(QueueServer, IdleGapResetsQueueing)
{
    QueueServer s;
    s.offer(0, 10);
    auto g = s.offer(1000, 10);
    EXPECT_EQ(g.queued, 0u);
    EXPECT_EQ(g.start, 1000u);
}

TEST(TrafficShaper, LatencyOnlyPath)
{
    TrafficShaper shaper(125, 0.0);
    EXPECT_EQ(shaper.send(0, 64), 125u);
    EXPECT_EQ(shaper.send(10, 64), 135u);
}

TEST(TrafficShaper, BandwidthSerializes)
{
    // 8 bytes/cycle: a 64-byte message needs 8 cycles of link occupancy.
    TrafficShaper shaper(100, 8.0);
    EXPECT_EQ(shaper.send(0, 64), 108u);
    // Second message queues behind the first.
    EXPECT_EQ(shaper.send(0, 64), 116u);
    EXPECT_EQ(shaper.bytesSent(), 128u);
}

TEST(TrafficShaper, SaturationGrowsQueueLinearly)
{
    TrafficShaper shaper(0, 1.0); // 1 byte/cycle.
    Cycles last = 0;
    for (int i = 0; i < 10; ++i)
        last = shaper.send(0, 100);
    EXPECT_EQ(last, 1000u);
}

TEST(Log, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("x"), PanicError);
    EXPECT_THROW(fatal("y"), FatalError);
    EXPECT_THROW(panicIf(true, "x"), PanicError);
    EXPECT_NO_THROW(panicIf(false, "x"));
    EXPECT_THROW(fatalIf(true, "y"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "y"));
}

TEST(Log, StrfmtFormats)
{
    EXPECT_EQ(strfmt("a=%d b=%s", 3, "xyz"), "a=3 b=xyz");
    EXPECT_EQ(strfmt("%08x", 0x1234), "00001234");
}

} // namespace
} // namespace smappic::sim

namespace smappic::sim
{
namespace
{

TEST(Stats, JsonDumpIsWellFormed)
{
    StatRegistry reg;
    reg.counter("a.hits").increment(5);
    reg.summaryStat("lat").sample(10.0);
    reg.summaryStat("lat").sample(20.0);
    reg.histogram("h", 4, 10.0).sample(15.0);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string json = os.str();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"a.hits\":5"), std::string::npos);
    EXPECT_NE(json.find("\"lat.mean\":15"), std::string::npos);
    EXPECT_NE(json.find("\"h.p50\":20"), std::string::npos);
    // No trailing comma before the closing brace.
    EXPECT_EQ(json.find(",}"), std::string::npos);
}

TEST(Stats, JsonDumpKeepsLargeCountersExact)
{
    // Regression: counters used to flow through the double emitter with
    // default ostream precision, so anything above ~1e6 printed as
    // "1.23457e+06" — lossy and invalid for strict JSON integer readers.
    StatRegistry reg;
    const std::uint64_t big = (1ULL << 32) + 12345;  // > 2^32.
    const std::uint64_t huge = 1234567890123456789ULL;
    reg.counter("cs.bytes").increment(big);
    reg.counter("cs.more").increment(huge);
    reg.summaryStat("lat").sample(1048576.0);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"cs.bytes\":4294979641"), std::string::npos);
    EXPECT_NE(json.find("\"cs.more\":1234567890123456789"),
              std::string::npos);
    EXPECT_EQ(json.find("e+"), std::string::npos) << json;
    // Floats still round-trip: 2^20 prints as an exact value.
    EXPECT_NE(json.find("\"lat.mean\":1048576"), std::string::npos);
    EXPECT_NE(json.find("\"lat.count\":1"), std::string::npos);
}

TEST(Stats, HistogramUnderflowBinKeepsNegativesOutOfBucketZero)
{
    // Regression: negative samples used to be folded into bucket 0, so
    // percentile() reported them as positive values in [0, width).
    Histogram h(4, 10.0);
    h.sample(-25.0);
    h.sample(-5.0);
    h.sample(3.0);
    h.sample(35.0);
    EXPECT_EQ(h.underflow(), 2u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    // The lower percentiles fall in the underflow bin and report the true
    // minimum rather than a fabricated [0, 10) value.
    EXPECT_DOUBLE_EQ(h.percentile(0.25), -25.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), -25.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.75), 10.0);

    Histogram other(4, 10.0);
    other.sample(-1.0);
    h.merge(other);
    EXPECT_EQ(h.underflow(), 3u);
    h.reset();
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Stats, HistogramPercentileEdgeCases)
{
    Histogram empty(4, 10.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(empty.percentile(1.0), 0.0);

    Histogram h(4, 10.0);
    h.sample(5.0);
    h.sample(15.0);
    // p = 0 still needs at least one observation (threshold clamps to 1).
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 20.0);
    // Out-of-range p clamps instead of misbehaving.
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));

    Histogram over(4, 10.0);
    over.sample(100.0);
    over.sample(200.0);
    EXPECT_EQ(over.overflow(), 2u);
    // Every bucket is empty: percentiles fall through to the true max.
    EXPECT_DOUBLE_EQ(over.percentile(0.5), 200.0);
    EXPECT_DOUBLE_EQ(over.percentile(0.99), 200.0);
}

TEST(Stats, MergeFromCopiesHistogramsMissingInDestination)
{
    StatRegistry shard;
    shard.histogram("only.in.shard", 4, 10.0).sample(15.0);
    shard.histogram("only.in.shard", 4, 10.0).sample(-2.0);

    StatRegistry root;
    root.histogram("both", 4, 10.0).sample(5.0);
    shard.histogram("both", 4, 10.0).sample(25.0);

    root.mergeFrom(shard);
    std::ostringstream os;
    root.dump(os);
    std::string dump = os.str();
    // Half the shard's samples sit in the underflow bin, so p50 reports
    // the true minimum.
    EXPECT_NE(dump.find("only.in.shard.p50 -2"), std::string::npos);
    EXPECT_NE(dump.find("only.in.shard.underflow 1"), std::string::npos);
    EXPECT_NE(dump.find("both.p50 10"), std::string::npos);
    EXPECT_NE(dump.find("both.p99 30"), std::string::npos);
}

} // namespace
} // namespace smappic::sim
