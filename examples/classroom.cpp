/**
 * @file
 * Education use case (paper section 4.7): a tiny fleet manager launches
 * many cost-efficient 1x4x2 prototypes on demand — four independent
 * student instances per FPGA — runs each student's submission against a
 * grading harness, and reports per-student results plus the dollar cost
 * of the whole session from the cost model.
 *
 *   $ ./classroom [students]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cost/cost_model.hpp"
#include "platform/prototype.hpp"

using namespace smappic;

namespace
{

/** A student's submission: compute sum(1..n) for the assigned n. */
std::string
submission(int quality, int n)
{
    // Three archetypes: correct loop, off-by-one bug, and clever formula.
    char buf[512];
    if (quality == 0) {
        std::snprintf(buf, sizeof buf, R"(
_start:
    li t0, 0
    li t1, 1
loop:
    add t0, t0, t1
    addi t1, t1, 1
    li t2, %d
    ble t1, t2, loop
    mv a0, t0
    li a7, 93
    ecall
)", n);
    } else if (quality == 1) {
        std::snprintf(buf, sizeof buf, R"(
_start:
    li t0, 0
    li t1, 1
loop:
    add t0, t0, t1
    addi t1, t1, 1
    li t2, %d
    blt t1, t2, loop      # off-by-one: stops at n-1
    mv a0, t0
    li a7, 93
    ecall
)", n);
    } else {
        std::snprintf(buf, sizeof buf, R"(
_start:
    li t0, %d
    addi t1, t0, 1
    mul a0, t0, t1
    srli a0, a0, 1        # n(n+1)/2
    li a7, 93
    ecall
)", n);
    }
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    int students = argc > 1 ? std::atoi(argv[1]) : 8;
    const int kAssignedN = 100;
    const std::int64_t kExpected = kAssignedN * (kAssignedN + 1) / 2;

    // Each 1x4x2 prototype carries 4 independent single-student nodes
    // (the paper's cost-efficient configuration).
    int fpgas = (students + 3) / 4;
    std::printf("grading %d submissions on %d FPGA(s) (1x4x2, 4 students "
                "per FPGA)\n\n", students, fpgas);

    int passed = 0;
    Cycles max_cycles = 0;
    for (int f = 0; f < fpgas; ++f) {
        platform::PrototypeConfig cfg =
            platform::PrototypeConfig::parse("1x4x2");
        cfg.interNodeInterconnect = false; // Independent student nodes.
        platform::Prototype proto(cfg);
        for (int slot = 0; slot < 4; ++slot) {
            int s = f * 4 + slot;
            if (s >= students)
                break;
            // Students get rotating submission archetypes.
            proto.loadSource(submission(s % 3, kAssignedN));
            GlobalTileId core = static_cast<GlobalTileId>(slot) * 2;
            proto.runCore(core, 100000);
            bool ok = proto.core(core).exited() &&
                      proto.core(core).exitCode() == kExpected;
            std::printf("student %2d on fpga %d node %d: %s "
                        "(result %lld, %llu cycles)\n",
                        s, f, slot, ok ? "PASS" : "FAIL",
                        static_cast<long long>(
                            proto.core(core).exitCode()),
                        static_cast<unsigned long long>(
                            proto.core(core).cycles()));
            passed += ok;
            max_cycles = std::max(max_cycles, proto.core(core).cycles());
        }
    }

    // Session economics: a one-hour lab slot on on-demand F1.
    double dollars =
        fpgas * cost::instanceNamed("f1.2xlarge").pricePerHour;
    std::printf("\n%d/%d submissions passed\n", passed, students);
    std::printf("lab session cost (1 hour, on demand): $%.2f total, "
                "$%.3f per student\n",
                dollars, dollars / students);
    std::printf("the same capacity on-premises: $%.0f upfront\n",
                fpgas * cost::instanceNamed("f1.2xlarge").hardwarePrice);
    return 0;
}
