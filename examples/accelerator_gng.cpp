/**
 * @file
 * Accelerator integration example (paper section 4.2): attaches the
 * Gaussian Noise Generator to tile 1 of a 1x1x2 prototype, drives it from
 * a guest RISC-V program with non-cacheable loads, verifies the samples'
 * statistics, and compares fetch-packing modes from the guest-OS layer —
 * the paper's "one workday" accelerator-evaluation loop.
 */

#include <cmath>
#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/noise.hpp"

using namespace smappic;
using namespace smappic::workload;

int
main()
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    auto &gng = proto.addGng(1);
    Addr window = proto.accelWindow(1);
    std::printf("GNG accelerator mapped at 0x%llx (tile 1)\n",
                static_cast<unsigned long long>(window));

    // Guest program: fetch 256 packed sample pairs with NC loads into a
    // buffer, then exit. The load of 4 bytes returns 2 samples.
    proto.loadSource(R"(
_start:
    li t0, 0xf0000000   # GNG window
    li t1, 0x80600000   # destination buffer
    li t2, 256
loop:
    lwu t3, 0(t0)       # two packed 16-bit samples
    sw t3, 0(t1)
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    li a0, 0
    li a7, 93
    ecall
)");
    proto.runCore(0);
    std::printf("guest fetched %llu samples in %llu cycles\n",
                static_cast<unsigned long long>(gng.samplesServed()),
                static_cast<unsigned long long>(proto.core(0).cycles()));

    // Host-side verification of the samples the guest stored.
    double sum = 0;
    double sumsq = 0;
    const int n = 512;
    for (int i = 0; i < n; ++i) {
        auto raw = static_cast<std::int16_t>(
            proto.memory().load(0x80600000 + static_cast<Addr>(i) * 2, 2));
        double v = static_cast<double>(raw) /
                   (1 << accel::GngAccelerator::kFracBits);
        sum += v;
        sumsq += v * v;
    }
    double mean = sum / n;
    double sigma = std::sqrt(sumsq / n - mean * mean);
    std::printf("sample statistics: mean %.3f, sigma %.3f "
                "(expect ~0, ~1)\n", mean, sigma);

    // Packing-mode comparison at the guest-OS level (Fig 10's sweep).
    std::printf("\nfetch-packing sweep (%u samples):\n", 1u << 14);
    Cycles sw_cycles = 0;
    for (GngMode m : {GngMode::kSoftware, GngMode::kFetch1,
                      GngMode::kFetch2, GngMode::kFetch4}) {
        platform::Prototype p(platform::PrototypeConfig::parse("1x1x2"));
        p.addGng(1);
        auto guest = p.makeGuest(os::NumaMode::kOn);
        NoiseConfig cfg;
        cfg.samples = 1 << 14;
        cfg.deviceBase = p.accelWindow(1);
        Cycles c = runNoiseGenerator(*guest, 0, m, cfg).cycles;
        if (m == GngMode::kSoftware)
            sw_cycles = c;
        std::printf("  mode %-3s %10llu cycles  (%.1fx)\n", gngModeName(m),
                    static_cast<unsigned long long>(c),
                    static_cast<double>(sw_cycles) /
                        static_cast<double>(c));
    }
    return 0;
}
