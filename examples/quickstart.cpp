/**
 * @file
 * Quickstart: build a SMAPPIC prototype from a configuration string,
 * assemble a guest RISC-V program, run it on a core and observe console
 * output through the PCIe-tunnelled UART — the whole user-facing flow in
 * ~40 lines.
 *
 *   $ ./quickstart [AxBxC]
 */

#include <cstdio>

#include "platform/prototype.hpp"

using namespace smappic;

int
main(int argc, char **argv)
{
    const char *spec = argc > 1 ? argv[1] : "1x1x2";
    platform::Prototype proto(platform::PrototypeConfig::parse(spec));
    std::printf("prototype %s: %u node(s), %u tiles/node, %u cores\n",
                proto.config().name().c_str(), proto.config().totalNodes(),
                proto.config().tilesPerNode, proto.coreCount());

    // Guest program: compute 6*7 and print through the console UART.
    proto.loadSource(R"(
.data
msg:  .asciiz "6 * 7 = "
.text
_start:
    li a0, 1
    la a1, msg
    li a2, 8
    li a7, 64          # write(1, msg, 8)
    ecall

    li t0, 6
    li t1, 7
    mul t2, t0, t1
    addi t2, t2, -42   # 42 -> "0" offset trick below
    addi t2, t2, 52    # '4' == 52
    li t3, 0x10000000  # console UART THR
    sb t2, 0(t3)
    li t2, 50          # '2'
    sb t2, 0(t3)
    li t2, 10          # newline
    sb t2, 0(t3)

    li a0, 0
    li a7, 93          # exit(0)
    ecall
)");

    auto halt = proto.runCore(0);
    std::printf("core 0 halted: %s, exit code %lld\n",
                halt == riscv::HaltReason::kExited ? "exited" : "other",
                static_cast<long long>(proto.core(0).exitCode()));
    std::printf("console: %s", proto.console(0).captured().c_str());
    std::printf("cycles: %llu, instructions: %llu (CPI %.2f)\n",
                static_cast<unsigned long long>(proto.core(0).cycles()),
                static_cast<unsigned long long>(proto.core(0).instret()),
                static_cast<double>(proto.core(0).cycles()) /
                    static_cast<double>(proto.core(0).instret()));
    return proto.core(0).exitCode() == 0 ? 0 : 1;
}
