/**
 * @file
 * Headline-contribution demo: the 48-core, 4-node, unified-memory RISC-V
 * system (paper section 4.1 / contribution list). All 48 cores boot the
 * same image, discover their hart id, atomically join a barrier in shared
 * memory that lives on node 0, and each records its hart id in a shared
 * table — cross-node cache coherence, atomics and ordering all exercised
 * by real guest code. Hart 0 verifies the roster and reports per-node
 * cycle counts.
 */

#include <cstdio>

#include "platform/prototype.hpp"

using namespace smappic;

int
main()
{
    platform::Prototype proto(platform::PrototypeConfig::parse("4x1x12"));
    std::printf("booting %u cores across %u nodes (unified memory)...\n",
                proto.coreCount(), proto.config().totalNodes());

    auto prog = proto.loadSource(R"(
.data
.align 3
counter: .dword 0
roster:  .space 384        # 48 x 8 bytes
.text
_start:
    csrr t0, 0xf14         # hart id
    # roster[hart] = hart + 1000 (via cross-node coherent stores).
    la t1, roster
    slli t2, t0, 3
    add t1, t1, t2
    addi t3, t0, 1000
    sd t3, 0(t1)
    # Atomically join the barrier (lives in node 0 memory).
    la t4, counter
    li t5, 1
    amoadd.d t6, t5, (t4)
    # Hart 0 waits for everyone, then validates the roster.
    bnez t0, done
wait:
    ld t6, 0(t4)
    li t5, 48
    blt t6, t5, wait
    # Validate roster entries.
    la t1, roster
    li t2, 0
check:
    slli t3, t2, 3
    add t3, t1, t3
    ld t5, 0(t3)
    addi t6, t2, 1000
    bne t5, t6, fail
    addi t2, t2, 1
    li t3, 48
    blt t2, t3, check
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
done:
    mv a0, zero
    li a7, 93
    ecall
)");
    (void)prog;

    std::vector<GlobalTileId> all;
    for (GlobalTileId g = 0; g < proto.coreCount(); ++g)
        all.push_back(g);
    proto.runCores(all, 2'000'000);

    bool all_exited = true;
    for (GlobalTileId g = 0; g < proto.coreCount(); ++g)
        all_exited = all_exited && proto.core(g).exited();

    std::printf("all cores exited: %s; hart 0 roster check: %s\n",
                all_exited ? "yes" : "NO",
                proto.core(0).exitCode() == 0 ? "PASS" : "FAIL");

    for (NodeId n = 0; n < proto.config().totalNodes(); ++n) {
        Cycles max_c = 0;
        for (TileId t = 0; t < proto.config().tilesPerNode; ++t)
            max_c = std::max(max_c,
                             proto.core(n * 12 + t).cycles());
        std::printf("node %u: slowest core %llu cycles\n", n,
                    static_cast<unsigned long long>(max_c));
    }
    std::printf("inter-node bridge crossings: %llu\n",
                static_cast<unsigned long long>(
                    proto.stats().counterValue("cs.bridge.crossings")));
    return proto.core(0).exitCode() == 0 && all_exited ? 0 : 1;
}
