/**
 * @file
 * "Bring your own core" via TRI (paper section 2.2): integrates a custom
 * compute unit — a streaming vector-add engine — against the Transaction
 * Response Interface, without touching the cache subsystem. The same
 * computation also runs as RISC-V code on the Ariane tile, and the demo
 * compares the two: the workflow a researcher follows when evaluating a
 * custom design inside a SMAPPIC prototype.
 */

#include <cstdio>
#include <vector>

#include "platform/prototype.hpp"
#include "platform/tri.hpp"

using namespace smappic;
using namespace smappic::platform;

namespace
{

/** The custom unit: c[i] = a[i] + b[i] with double-word streaming. */
class VectorAddUnit : public TriClient
{
  public:
    VectorAddUnit(Addr a, Addr b, Addr c, std::uint64_t n)
        : a_(a), b_(b), c_(c), n_(n)
    {
    }

    Cycles
    run(TriPort &port, Cycles start) override
    {
        Cycles now = start;
        for (std::uint64_t i = 0; i < n_; ++i) {
            TriResponse ra = port.request(
                TriRequest{TriOp::kLoad, a_ + i * 8, 8, 0}, now);
            now += ra.latency;
            TriResponse rb = port.request(
                TriRequest{TriOp::kLoad, b_ + i * 8, 8, 0}, now);
            now += rb.latency;
            now += 1; // Single-cycle adder.
            TriResponse rc = port.request(
                TriRequest{TriOp::kStore, c_ + i * 8, 8,
                           ra.data + rb.data},
                now);
            now += rc.latency;
        }
        return now;
    }

    std::string name() const override { return "vector-add unit"; }

  private:
    Addr a_, b_, c_;
    std::uint64_t n_;
};

} // namespace

int
main()
{
    const std::uint64_t kN = 512;
    const Addr kA = kDramBase + 0x100000;
    const Addr kB = kDramBase + 0x120000;
    const Addr kC = kDramBase + 0x140000;

    Prototype proto(PrototypeConfig::parse("1x1x2"));
    for (std::uint64_t i = 0; i < kN; ++i) {
        proto.memory().store(kA + i * 8, 8, i * 3);
        proto.memory().store(kB + i * 8, 8, i * 4);
    }

    // --- the custom unit on tile 1 via TRI ---
    TriPort port(proto.memorySystem(), 1);
    VectorAddUnit unit(kA, kB, kC, kN);
    Cycles unit_cycles = unit.run(port, 0);
    bool ok = true;
    for (std::uint64_t i = 0; i < kN; ++i)
        ok = ok && proto.memory().load(kC + i * 8, 8) == i * 7;
    std::printf("%s: %llu elements in %llu cycles (%.1f cyc/elem), "
                "results %s\n",
                unit.name().c_str(),
                static_cast<unsigned long long>(kN),
                static_cast<unsigned long long>(unit_cycles),
                static_cast<double>(unit_cycles) / kN,
                ok ? "correct" : "WRONG");

    // --- the same kernel as guest RISC-V code on tile 0 ---
    proto.loadSource(R"(
_start:
    li t0, 0x80100000    # a
    li t1, 0x80120000    # b
    li t2, 0x80160000    # c' (separate output)
    li t3, 512
loop:
    ld t4, 0(t0)
    ld t5, 0(t1)
    add t4, t4, t5
    sd t4, 0(t2)
    addi t0, t0, 8
    addi t1, t1, 8
    addi t2, t2, 8
    addi t3, t3, -1
    bnez t3, loop
    li a0, 0
    li a7, 93
    ecall
)");
    proto.runCore(0);
    bool sw_ok = true;
    for (std::uint64_t i = 0; i < kN; ++i)
        sw_ok = sw_ok &&
                proto.memory().load(kDramBase + 0x160000 + i * 8, 8) ==
                    i * 7;
    Cycles sw_cycles = proto.core(0).cycles();
    std::printf("Ariane software loop: %llu cycles (%.1f cyc/elem), "
                "results %s\n",
                static_cast<unsigned long long>(sw_cycles),
                static_cast<double>(sw_cycles) / kN,
                sw_ok ? "correct" : "WRONG");

    std::printf("custom unit vs software: %.2fx\n",
                static_cast<double>(sw_cycles) /
                    static_cast<double>(unit_cycles));
    std::printf("TRI transactions issued by the unit: %llu\n",
                static_cast<unsigned long long>(port.transactions()));
    return ok && sw_ok ? 0 : 1;
}
