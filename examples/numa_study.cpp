/**
 * @file
 * NUMA study on the 48-core multi-node prototype (paper section 4.1):
 * probes the inter-core latency structure, then runs the parallel integer
 * sort under both kernel NUMA modes and reports the placement breakdown —
 * the workflow a systems researcher would use SMAPPIC for.
 *
 *   $ ./numa_study [threads]
 */

#include <cstdio>
#include <cstdlib>

#include "platform/prototype.hpp"
#include "workload/intsort.hpp"

using namespace smappic;
using namespace smappic::workload;

int
main(int argc, char **argv)
{
    std::uint32_t threads = argc > 1
                                ? static_cast<std::uint32_t>(
                                      std::atoi(argv[1]))
                                : 16;

    std::printf("== latency structure (4x1x12) ==\n");
    platform::Prototype probe(platform::PrototypeConfig::parse("4x1x12"));
    Cycles same = probe.measureRoundTrip(0, 5);
    Cycles cross = probe.measureRoundTrip(0, 12 + 5);
    std::printf("round trip to a same-node LLC slice:  %llu cycles\n",
                static_cast<unsigned long long>(same));
    std::printf("round trip to a cross-node LLC slice: %llu cycles "
                "(%.1fx)\n",
                static_cast<unsigned long long>(cross),
                static_cast<double>(cross) / static_cast<double>(same));

    std::printf("\n== parallel integer sort, %u threads ==\n", threads);
    IntSortConfig cfg;
    cfg.keys = 1 << 16;
    std::vector<GlobalTileId> tiles;
    for (std::uint32_t i = 0; i < threads; ++i)
        tiles.push_back((i % 4) * 12 + i / 4);

    for (auto mode : {os::NumaMode::kOn, os::NumaMode::kOff}) {
        platform::Prototype proto(
            platform::PrototypeConfig::parse("4x1x12"));
        auto guest = proto.makeGuest(mode);
        auto r = runIntSort(*guest, tiles, cfg);
        std::printf("NUMA %-3s: %9llu cycles (%s), %4.1f%% of misses "
                    "serviced remotely\n",
                    mode == os::NumaMode::kOn ? "on" : "off",
                    static_cast<unsigned long long>(r.cycles),
                    r.sorted ? "sorted" : "SORT FAILED",
                    r.remoteFraction * 100);
        auto pages = guest->pagesPerNode();
        std::printf("          pages per node:");
        for (auto p : pages)
            std::printf(" %llu", static_cast<unsigned long long>(p));
        std::printf("\n");
    }
    return 0;
}
