/**
 * @file
 * In situ cloud-pipeline example (paper section 4.4, Fig 12): the
 * prototype runs a tiny web server as a first-class citizen of a cloud
 * pipeline. A Lambda-stub forwards an HTTP request into the prototype's
 * serial interface; the guest fetches the requested object (staged into
 * the virtual SD card by the host-side driver, standing in for S3),
 * attaches the current time and returns an HTTP response, which the
 * Lambda returns to the client.
 *
 * Every byte really moves through the modeled substrate: the S3 object
 * rides the PCIe fabric into SD memory; the request and response ride the
 * tunnelled UART; the guest executes real RISC-V instructions.
 */

#include <cstdio>
#include <string>

#include "io/sd_card.hpp"
#include "platform/prototype.hpp"

using namespace smappic;

int
main()
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x4"));

    // --- "S3": the host driver stages the object into the virtual SD ---
    std::string object = "{\"bucket\":\"demo\",\"body\":\"hello from S3\"}";
    std::vector<std::uint8_t> image(io::VirtualSdCard::kBlockBytes, 0);
    for (std::size_t i = 0; i < object.size(); ++i)
        image[i] = static_cast<std::uint8_t>(object[i]);
    io::HostSdLoader loader(proto.fabric(), 0x100000000ULL);
    loader.loadImage(image);
    proto.eventQueue().run();
    std::printf("[host] staged %llu-byte S3 object into the virtual SD "
                "card over PCIe\n",
                static_cast<unsigned long long>(loader.bytesWritten()));

    // --- the guest web server (nginx + PHP stand-in) ---
    proto.loadSource(R"(
.data
req:    .space 64
hdr:    .asciiz "HTTP/1.0 200 OK\n\n"
tail:   .asciiz "\ntime="
buf:    .space 512
digits: .space 24
.text
_start:
    # Read the request line from the console UART (CGI stdin).
    li a0, 0
    la a1, req
    li a2, 63
    li a7, 63              # read()
    ecall

    # Fetch the S3 object: SD block 0 -> buf.
    li t0, 0x03000000      # SD controller MMIO
    sd zero, 0(t0)         # LBA 0
    la t1, buf
    sd t1, 8(t0)           # DMA buffer
    li t2, 1
    sd t2, 16(t0)          # CMD read

    # Respond: header.
    li a0, 1
    la a1, hdr
    li a2, 17
    li a7, 64              # write()
    ecall

    # Body: the object (NUL-terminated), length via strlen.
    la t0, buf
    li t1, 0
strlen:
    add t2, t0, t1
    lbu t3, 0(t2)
    beqz t3, strdone
    addi t1, t1, 1
    j strlen
strdone:
    li a0, 1
    la a1, buf
    mv a2, t1
    li a7, 64
    ecall

    # Attach the date (cycle counter) like the paper's PHP script.
    li a0, 1
    la a1, tail
    li a2, 6
    li a7, 64
    ecall
    csrr t0, 0xc00         # cycle
    la t1, digits
    addi t1, t1, 20
    sb zero, 0(t1)         # NUL
itoa:
    addi t1, t1, -1
    li t2, 10
    remu t3, t0, t2
    addi t3, t3, 48
    sb t3, 0(t1)
    divu t0, t0, t2
    bnez t0, itoa
    # strlen of the digit string.
    mv t4, t1
    li t5, 0
dlen:
    add t6, t4, t5
    lbu t2, 0(t6)
    beqz t2, ddone
    addi t5, t5, 1
    j dlen
ddone:
    li a0, 1
    mv a1, t4
    mv a2, t5
    li a7, 64
    ecall
    li t2, 0x10000000
    li t3, 10
    sb t3, 0(t2)           # final newline straight to the UART

    li a0, 0
    li a7, 93
    ecall
)");

    // --- "Lambda": forward the client's HTTP request into the UART ---
    std::string request = "GET /object?bucket=demo HTTP/1.0\n";
    proto.console(0).type(proto.consoleUart(0), request);
    std::printf("[lambda] forwarded: %s", request.c_str());

    auto halt = proto.runCore(0);
    if (halt != riscv::HaltReason::kExited) {
        std::printf("guest did not exit cleanly\n");
        return 1;
    }

    // --- "Lambda" returns the response to the client ---
    std::printf("[lambda] response from the prototype:\n");
    std::printf("----------------------------------------\n");
    std::printf("%s", proto.console(0).captured().c_str());
    std::printf("----------------------------------------\n");

    bool ok = proto.console(0).captured().find("hello from S3") !=
                  std::string::npos &&
              proto.console(0).captured().find("time=") !=
                  std::string::npos;
    std::printf("pipeline check: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
