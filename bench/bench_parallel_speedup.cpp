/**
 * @file
 * Parallel-engine speedup bench: wall-clock scaling of the phased
 * execution engine as worker threads are added, across prototype sizes
 * (1, 2, 4 and 8 nodes with 4 tiles each — the paper's scaling axis).
 *
 * Every node runs a replicated, node-local pointer-chasing/compute loop
 * for a fixed instruction budget, so the work per run is identical no
 * matter how it is scheduled. For each config the bench runs the phased
 * engine with 1, 2, 4 and 8 workers at the same quantum (the PCIe
 * one-way lookahead), reports wall time and speedup over the 1-worker
 * phased run, and cross-checks determinism: the final stat dump of every
 * thread count must be byte-identical to the 1-worker dump.
 *
 * Speedup depends on the host: with fewer hardware threads than workers
 * there is nothing to win, so the JSON block carries hw_concurrency and
 * the perf gate only enforces speedup floors on hosts that can show them.
 */

#include <chrono>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "platform/prototype.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

/** Node-local workload: every hart hammers a private slice of a small
 *  buffer (all `la`-relative, so replicas stay on their own node's DRAM)
 *  until the instruction budget expires. */
constexpr const char *kWorkloadSource = R"(
_start:
    csrr t0, 0xf14       # mhartid
    andi t0, t0, 3       # local tile: private buffer slice
    slli t0, t0, 4       # 2 dwords per tile
    la t1, buf
    add t1, t1, t0
    li t2, 0
loop:
    andi t3, t2, 0x8
    add t4, t1, t3
    ld t5, 0(t4)
    add t5, t5, t2
    sd t5, 0(t4)
    addi t2, t2, 1
    j loop

.data
.align 3
buf: .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
)";

struct Run
{
    std::uint32_t threads = 1;
    double wallMs = 0;
    double speedup = 1.0;
    bool deterministic = true;
};

struct ConfigResult
{
    std::string config;
    std::uint32_t nodes = 0;
    std::vector<Run> runs;
};

/** Runs @p spec with the phased engine and @p threads workers; fills
 *  wall time and the final stat dump. */
double
timeRun(const std::string &spec, std::uint32_t threads,
        std::uint64_t budget, std::string &dump_out)
{
    PrototypeConfig cfg = PrototypeConfig::parse(spec);
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = cfg.timing.pcieOneWay();
    Prototype proto(cfg);
    proto.loadSourceReplicated(kWorkloadSource);

    std::vector<GlobalTileId> gids;
    for (GlobalTileId g = 0; g < cfg.totalTiles(); ++g)
        gids.push_back(g);

    auto t0 = std::chrono::steady_clock::now();
    proto.runCores(gids, budget);
    auto t1 = std::chrono::steady_clock::now();

    std::ostringstream os;
    proto.stats().dump(os);
    dump_out = os.str();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main()
{
    const std::uint64_t kBudget = 200'000; // Instructions per core.
    const std::vector<std::string> configs = {"1x1x4", "2x1x4", "4x1x4",
                                              "4x2x4"};
    const std::vector<std::uint32_t> threadCounts = {1, 2, 4, 8};
    const unsigned hw = std::thread::hardware_concurrency();

    std::printf("=== Parallel speedup: phased engine, %llu instructions "
                "per core, quantum = PCIe one-way (hw threads: %u) ===\n\n",
                static_cast<unsigned long long>(kBudget), hw);
    std::printf("%8s %6s %8s %10s %9s %6s\n", "config", "nodes", "threads",
                "wall ms", "speedup", "det");

    std::vector<ConfigResult> results;
    bool all_deterministic = true;
    for (const std::string &spec : configs) {
        ConfigResult cr;
        cr.config = spec;
        cr.nodes = PrototypeConfig::parse(spec).totalNodes();
        std::string ref_dump;
        double ref_ms = 0;
        for (std::uint32_t threads : threadCounts) {
            Run r;
            r.threads = threads;
            std::string dump;
            r.wallMs = timeRun(spec, threads, kBudget, dump);
            if (threads == 1) {
                ref_dump = dump;
                ref_ms = r.wallMs;
            }
            r.speedup = r.wallMs > 0 ? ref_ms / r.wallMs : 1.0;
            r.deterministic = dump == ref_dump;
            all_deterministic = all_deterministic && r.deterministic;
            std::printf("%8s %6u %8u %10.2f %8.2fx %6s\n", spec.c_str(),
                        cr.nodes, threads, r.wallMs, r.speedup,
                        r.deterministic ? "yes" : "NO");
            cr.runs.push_back(r);
        }
        results.push_back(cr);
    }

    std::printf("\njson: {\"bench\": \"parallel_speedup\", "
                "\"budget\": %llu, \"hw_concurrency\": %u, "
                "\"all_deterministic\": %s, \"configs\": [",
                static_cast<unsigned long long>(kBudget), hw,
                all_deterministic ? "true" : "false");
    for (std::size_t c = 0; c < results.size(); ++c) {
        const ConfigResult &cr = results[c];
        std::printf("%s{\"config\": \"%s\", \"nodes\": %u, \"runs\": [",
                    c ? ", " : "", cr.config.c_str(), cr.nodes);
        for (std::size_t i = 0; i < cr.runs.size(); ++i) {
            const Run &r = cr.runs[i];
            std::printf("%s{\"threads\": %u, \"wall_ms\": %.3f, "
                        "\"speedup\": %.3f, \"deterministic\": %s}",
                        i ? ", " : "", r.threads, r.wallMs, r.speedup,
                        r.deterministic ? "true" : "false");
        }
        std::printf("]}");
    }
    std::printf("]}\n");

    std::printf("\nexpected: speedup approaches the node count while "
                "workers <= min(nodes, hw threads); determinism holds at "
                "every thread count\n");
    std::printf("determinism check (all dumps match 1-worker dump): %s\n",
                all_deterministic ? "PASS" : "FAIL");
    return all_deterministic ? 0 : 1;
}
