/**
 * @file
 * Ablation: SMAPPIC's line-homing change. The paper replaces BYOC's
 * Coherence Domain Restriction with homing that "distributes cache lines
 * across all nodes and works out of the box". This bench compares the
 * three implementable policies on the NUMA sort:
 *   - address-node homing (SMAPPIC default: home = node owning the DRAM),
 *   - global hash homing (lines spread over every tile of every node),
 *   - node-0 homing (single-home baseline).
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/intsort.hpp"

using namespace smappic;
using namespace smappic::workload;

int
main()
{
    IntSortConfig cfg;
    cfg.keys = 1 << 15;
    std::vector<GlobalTileId> tiles;
    for (std::uint32_t i = 0; i < 16; ++i)
        tiles.push_back((i % 4) * 12 + i / 4);

    struct Policy
    {
        cache::HomingPolicy policy;
        const char *name;
    };
    const Policy policies[] = {
        {cache::HomingPolicy::kAddressNode, "address-node (SMAPPIC)"},
        {cache::HomingPolicy::kGlobalHash, "global hash"},
        {cache::HomingPolicy::kNode0, "node-0 home"},
        {cache::HomingPolicy::kCoherenceDomains, "CDR (BYOC original)"},
    };

    std::printf("=== Ablation: homing policy (16 threads, 4x1x12, NUMA "
                "on) ===\n\n");
    std::printf("%-24s %16s %16s\n", "Homing", "cycles",
                "bridge crossings");
    Cycles address_node = 0;
    Cycles node0 = 0;
    for (const Policy &p : policies) {
        platform::PrototypeConfig pc =
            platform::PrototypeConfig::parse("4x1x12");
        pc.homing = p.policy;
        platform::Prototype proto(pc);
        auto guest = proto.makeGuest(os::NumaMode::kOn);
        auto r = runIntSort(*guest, tiles, cfg);
        std::printf("%-24s %16llu %16llu%s\n", p.name,
                    static_cast<unsigned long long>(r.cycles),
                    static_cast<unsigned long long>(
                        proto.stats().counterValue("cs.bridge.crossings")),
                    r.sorted ? "" : "  UNSORTED!");
        if (p.policy == cache::HomingPolicy::kAddressNode)
            address_node = r.cycles;
        if (p.policy == cache::HomingPolicy::kNode0)
            node0 = r.cycles;
    }

    std::printf("\nexpected: address-node homing (the SMAPPIC change) "
                "beats both the single-home baseline and BYOC's original "
                "Coherence Domain Restriction (whose cross-domain "
                "accesses bypass the caches) under NUMA workloads\n");
    std::printf("shape check: %s (%.2fx advantage)\n",
                address_node < node0 ? "PASS" : "FAIL",
                static_cast<double>(node0) /
                    static_cast<double>(address_node));
    return 0;
}
