/**
 * @file
 * Fault-resilience bench: inter-node bridge latency/throughput as the
 * transient-fault rate rises. Streams fixed packet traffic through a
 * 2-bridge PCIe fabric with the reliable link layer on, at fault rates of
 * 0%, 0.1% and 1% (drops plus bit corruptions), and reports delivery
 * cycles, achieved flit rate and the repair work (retransmits, CRC
 * rejects) each rate costs — as a table and as a JSON block for tooling.
 *
 * The 0% row doubles as the zero-cost check: with no faults and
 * reliability *off* the cycle count must match the seed bridge exactly.
 */

#include <cstdio>
#include <vector>

#include "bridge/inter_node_bridge.hpp"
#include "pcie/pcie_fabric.hpp"
#include "sim/fault.hpp"

using namespace smappic;

namespace
{

struct RunResult
{
    double faultRate = 0;
    bool reliable = false;
    Cycles cycles = 0;
    int delivered = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t crcErrors = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t faultsInjected = 0;
};

/** Streams @p packets 10-flit packets one way; returns the run's stats. */
RunResult
streamWith(double fault_rate, bool reliable, int packets)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);

    sim::FaultPlan plan;
    plan.seed = 2023;
    if (fault_rate > 0) {
        plan.drop("pcie.write", fault_rate / 2);
        plan.corrupt("bridge.tx", fault_rate / 2);
    }
    sim::FaultInjector fi(plan, &stats);

    bridge::BridgeConfig cfg;
    cfg.creditsPerNoc = 32;
    cfg.creditPollInterval = 32;
    cfg.reliability.enabled = reliable;
    cfg.reliability.ackTimeout = 64;
    bridge::InterNodeBridge b0(0, 0, 0x0, eq, fabric, cfg, &stats);
    bridge::InterNodeBridge b1(1, 1, 0x1000000, eq, fabric, cfg, &stats);
    b0.addPeer(1, b1.windowBase());
    b1.addPeer(0, b0.windowBase());
    if (fault_rate > 0) {
        fabric.setFaultInjector(&fi);
        b0.setFaultInjector(&fi);
        b1.setFaultInjector(&fi);
    }

    RunResult r;
    r.faultRate = fault_rate;
    r.reliable = reliable;
    b1.setDeliverFn([&](const noc::Packet &) { ++r.delivered; });

    for (int i = 0; i < packets; ++i) {
        noc::Packet p;
        p.srcNode = 0;
        p.srcTile = 1;
        p.dstNode = 1;
        p.dstTile = 2;
        p.type = noc::MsgType::kDataResp;
        p.addr = 0x1000 + static_cast<Addr>(i) * 64;
        p.payload.assign(8, 0xabcdef);
        b0.sendPacket(p);
    }
    eq.run();
    r.cycles = eq.now();
    r.retransmits = b0.retransmits();
    r.crcErrors = b1.crcErrors();
    r.duplicates = b1.duplicatesSuppressed();
    r.faultsInjected = fi.dropsInjected() + fi.corruptionsInjected();
    return r;
}

} // namespace

int
main()
{
    const int kPackets = 500;
    const double rates[] = {0.0, 0.001, 0.01};

    std::printf("=== Fault resilience: reliable bridge link under "
                "drop+corrupt storms (%d x 10-flit packets) ===\n\n",
                kPackets);

    // Zero-cost check: reliability off, no faults = the seed bridge.
    RunResult base = streamWith(0.0, false, kPackets);

    std::printf("%10s %10s %12s %16s %12s %10s %10s\n", "fault rate",
                "delivered", "cycles", "flits/100cyc", "retransmits",
                "crc rej", "faults");
    std::vector<RunResult> results;
    for (double rate : rates) {
        RunResult r = streamWith(rate, true, kPackets);
        results.push_back(r);
        double flit_rate =
            100.0 * kPackets * 10 / static_cast<double>(r.cycles);
        std::printf("%9.2f%% %10d %12llu %15.1f %12llu %10llu %10llu\n",
                    rate * 100, r.delivered,
                    static_cast<unsigned long long>(r.cycles), flit_rate,
                    static_cast<unsigned long long>(r.retransmits),
                    static_cast<unsigned long long>(r.crcErrors),
                    static_cast<unsigned long long>(r.faultsInjected));
    }

    std::printf("\njson: {\"bench\": \"fault_resilience\", "
                "\"packets\": %d, \"baseline_cycles\": %llu, \"runs\": [",
                kPackets, static_cast<unsigned long long>(base.cycles));
    for (std::size_t i = 0; i < results.size(); ++i) {
        const RunResult &r = results[i];
        std::printf("%s{\"fault_rate\": %g, \"cycles\": %llu, "
                    "\"delivered\": %d, \"retransmits\": %llu, "
                    "\"crc_errors\": %llu, \"duplicates\": %llu, "
                    "\"faults_injected\": %llu}",
                    i ? ", " : "", r.faultRate,
                    static_cast<unsigned long long>(r.cycles), r.delivered,
                    static_cast<unsigned long long>(r.retransmits),
                    static_cast<unsigned long long>(r.crcErrors),
                    static_cast<unsigned long long>(r.duplicates),
                    static_cast<unsigned long long>(r.faultsInjected));
    }
    std::printf("]}\n");

    bool all_delivered = true;
    for (const RunResult &r : results)
        all_delivered = all_delivered && r.delivered == kPackets;
    std::printf("\nexpected: delivery stays exactly-once at every rate; "
                "cycle cost rises with the fault rate (each repair costs "
                "a backoff plus a PCIe round trip)\n");
    std::printf("delivery check (every run delivered all %d packets): "
                "%s\n",
                kPackets, all_delivered ? "PASS" : "FAIL");
    std::printf("zero-cost check (fault-free reliable run within 25%% of "
                "the raw bridge): %s (%llu vs %llu cycles)\n",
                results[0].cycles <= base.cycles + base.cycles / 4
                    ? "PASS"
                    : "FAIL",
                static_cast<unsigned long long>(results[0].cycles),
                static_cast<unsigned long long>(base.cycles));
    return all_delivered ? 0 : 1;
}
