/**
 * @file
 * Regenerates Fig 13: modeling cost in dollars per SPECint 2017 benchmark
 * ("test" input) for SMAPPIC, FireSim single-node/supernode, Sniper and
 * gem5. Paper: SMAPPIC is the most cost-efficient cloud method; FireSim
 * single-node costs ~4x more; gem5 is 4-5 orders of magnitude worse and
 * is excluded from the chart.
 */

#include <cmath>
#include <cstdio>

#include "cost/cost_model.hpp"

using namespace smappic;

int
main()
{
    const char *tools[] = {"SMAPPIC", "FireSim single-node",
                           "FireSim supernode", "Sniper", "gem5"};

    std::printf("=== Fig 13: modeling cost in dollars (SPECint 2017, "
                "test input) ===\n\n");
    std::printf("%-12s %12s %12s %12s %12s %12s\n", "Benchmark",
                "SMAPPIC", "FS-single", "FS-super", "Sniper", "gem5");

    double totals[5] = {};
    for (const auto &b : cost::specint2017()) {
        std::printf("%-12s", b.name.c_str());
        for (int t = 0; t < 5; ++t) {
            double c = cost::modelingCostDollars(cost::toolNamed(tools[t]),
                                                 b);
            totals[t] += c;
            std::printf(" %11.3f$", c);
        }
        std::printf("\n");
    }
    std::printf("%-12s", "SPECint2017");
    for (int t = 0; t < 5; ++t)
        std::printf(" %11.3f$", totals[t]);
    std::printf("\n\n");

    double fs_ratio = totals[1] / totals[0];
    double super_ratio = totals[2] / totals[0];
    double gem5_orders = std::log10(totals[4] / totals[0]);
    std::printf("measured: FireSim single-node / SMAPPIC = %.1fx "
                "(paper ~4x)\n", fs_ratio);
    std::printf("measured: FireSim supernode / SMAPPIC = %.1fx "
                "(between 1x and single-node)\n", super_ratio);
    std::printf("measured: gem5 / SMAPPIC = 10^%.1f (paper: 4-5 orders; "
                "excluded from the chart)\n", gem5_orders);
    bool ok = fs_ratio > 3.0 && fs_ratio < 5.0 && super_ratio > 1.0 &&
              super_ratio < fs_ratio && gem5_orders > 2.5;
    std::printf("shape check: %s\n", ok ? "PASS" : "FAIL");
    return 0;
}
