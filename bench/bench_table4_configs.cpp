/**
 * @file
 * Regenerates Table 4: SMAPPIC configurations (BxC) with achievable
 * frequency and LUT utilization on the F1 VU9P, from the calibrated
 * resource model.
 */

#include <cstdio>

#include "fpga/resource_model.hpp"

using namespace smappic;

int
main()
{
    fpga::ResourceModel model;
    struct Row
    {
        std::uint32_t b, c;
        double paper_util;
        std::uint32_t paper_freq;
    };
    const Row rows[] = {
        {1, 12, 0.97, 75}, {1, 10, 0.83, 100}, {2, 4, 0.73, 100},
        {2, 5, 0.88, 75},  {4, 2, 0.87, 100},
    };

    std::printf("=== Table 4: configurations, frequency, utilization ===\n");
    std::printf("%-8s %10s %12s | %10s %12s\n", "Config", "Freq(MHz)",
                "LUT util", "paper freq", "paper util");
    for (const Row &r : rows) {
        auto e = model.estimate(r.b, r.c);
        std::printf("%ux%-6u %10u %11.0f%% | %10u %11.0f%%\n", r.b, r.c,
                    e.freqMhz, e.utilization * 100, r.paper_freq,
                    r.paper_util * 100);
    }
    std::printf("\nModel: %llu kLUT shell + %llu kLUT/node + %llu kLUT/tile"
                " on a %llu kLUT VU9P; >87.5%% utilization derates "
                "100 MHz -> 75 MHz\n",
                static_cast<unsigned long long>(
                    fpga::ResourceModel::kShellLuts / 1000),
                static_cast<unsigned long long>(
                    fpga::ResourceModel::kNodeLuts / 1000),
                static_cast<unsigned long long>(
                    fpga::ResourceModel::kTileLuts / 1000),
                static_cast<unsigned long long>(model.part().luts / 1000));
    std::printf("paper check: at most %u Ariane tiles fit (75 MHz), "
                "%u at 100 MHz\n",
                model.maxTilesPerNode(75), model.maxTilesPerNode(100));

    fpga::BuildFlow flow;
    std::printf("build flow: %.0fh local synthesis (%.0f GB), %.0fh AWS "
                "ingestion, %.0fs bitstream load\n",
                flow.synthesisHours, flow.synthesisMemoryGb,
                flow.awsIngestionHours, flow.bitstreamLoadSeconds);
    return 0;
}
