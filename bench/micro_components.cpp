/**
 * @file
 * google-benchmark microbenchmarks of the substrate components: packet
 * (de)serialization, mesh routing, cache arrays, the coherent-system
 * access walk, the event queue and the RISC-V interpreter. These guard
 * the simulator's own performance (host-side), not target metrics.
 */

#include <benchmark/benchmark.h>

#include "cache/coherent_system.hpp"
#include "mem/main_memory.hpp"
#include "noc/network.hpp"
#include "riscv/assembler.hpp"
#include "riscv/core.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

using namespace smappic;

namespace
{

void
BM_PacketSerializeRoundTrip(benchmark::State &state)
{
    noc::Packet p;
    p.srcTile = 1;
    p.dstTile = 9;
    p.type = noc::MsgType::kDataResp;
    p.addr = 0x123456789a;
    p.payload.assign(8, 0xdead);
    for (auto _ : state) {
        auto flits = noc::serialize(p);
        benchmark::DoNotOptimize(noc::deserialize(flits));
    }
}
BENCHMARK(BM_PacketSerializeRoundTrip);

void
BM_MeshNetworkTick(benchmark::State &state)
{
    noc::MeshNetwork net(noc::MeshTopology(12));
    sim::Xoroshiro rng(1);
    int sink = 0;
    for (TileId t = 0; t < 12; ++t)
        net.setDeliverFn(t, [&](const noc::Packet &) { ++sink; });
    for (auto _ : state) {
        // Keep traffic flowing.
        noc::Packet p;
        p.srcTile = static_cast<TileId>(rng.below(12));
        p.dstTile = static_cast<TileId>(rng.below(12));
        if (p.dstTile == p.srcTile)
            p.dstTile = (p.dstTile + 1) % 12;
        p.payload.assign(8, 7);
        net.inject(p);
        net.tick();
        net.tick();
    }
    benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MeshNetworkTick);

void
BM_MeshNetworkIdleTick(benchmark::State &state)
{
    // The uncore idle-skip fast path: a drained mesh ticks in O(1)
    // (flits-in-flight early-out), so cycle-accurate spans between
    // sparse packets cost almost nothing even when not bulk-skipped.
    noc::MeshNetwork net(noc::MeshTopology(12));
    for (auto _ : state)
        net.tick();
    benchmark::DoNotOptimize(net.now());
}
BENCHMARK(BM_MeshNetworkIdleTick);

void
BM_CacheArrayLookup(benchmark::State &state)
{
    cache::CacheArray c(64 << 10, 4);
    for (Addr a = 0; a < 512; ++a)
        c.insert(a * 64);
    sim::Xoroshiro rng(2);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.lookup(rng.below(512) * 64));
}
BENCHMARK(BM_CacheArrayLookup);

void
BM_CoherentAccessL1Hit(benchmark::State &state)
{
    cache::Geometry geo;
    geo.nodes = 1;
    geo.tilesPerNode = 2;
    cache::CoherentSystem cs(geo, cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    cs.access(0, 0x1000, cache::AccessType::kLoad, 8, 0);
    Cycles now = 1000;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            cs.access(0, 0x1000, cache::AccessType::kLoad, 8, now));
        now += 10;
    }
}
BENCHMARK(BM_CoherentAccessL1Hit);

void
BM_CoherentAccessMissStream(benchmark::State &state)
{
    cache::Geometry geo;
    geo.nodes = 4;
    geo.tilesPerNode = 4;
    geo.memPerNode = 1ULL << 30;
    cache::CoherentSystem cs(geo, cache::TimingParams{},
                             cache::HomingPolicy::kAddressNode);
    sim::Xoroshiro rng(3);
    Cycles now = 0;
    for (auto _ : state) {
        Addr addr = rng.below(1 << 22) * 64 +
                    (rng.below(4) << 30);
        now += 50;
        benchmark::DoNotOptimize(
            cs.access(static_cast<GlobalTileId>(rng.below(16)), addr,
                      cache::AccessType::kLoad, 8, now));
    }
}
BENCHMARK(BM_CoherentAccessMissStream);

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    sim::EventQueue eq;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        for (int i = 0; i < 16; ++i)
            eq.schedule(static_cast<Cycles>(i % 5), [&] { ++fired; });
        eq.run();
    }
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleRun);

void
BM_EventQueueNextDeadline(benchmark::State &state)
{
    // Horizon query cost: nextDeadline() is consulted by every WFI wait
    // iteration and every phased idle barrier, so it must stay a heap
    // peek, not a scan.
    sim::EventQueue eq;
    for (int i = 0; i < 64; ++i)
        eq.schedule(static_cast<Cycles>(1 + i * 7), [] {});
    for (auto _ : state)
        benchmark::DoNotOptimize(eq.nextDeadline());
}
BENCHMARK(BM_EventQueueNextDeadline);

void
BM_RiscvInterpreterMips(benchmark::State &state)
{
    /** Flat port with fixed latency: measures raw interpreter speed. */
    class Port : public riscv::MemPort
    {
      public:
        std::uint64_t
        load(Addr a, std::uint32_t b, Cycles, Cycles &lat) override
        {
            lat = 1;
            return mem.load(a, b);
        }
        void
        store(Addr a, std::uint32_t b, std::uint64_t v, Cycles,
              Cycles &lat) override
        {
            lat = 1;
            mem.store(a, b, v);
        }
        std::uint32_t
        fetch(Addr a, Cycles, Cycles &lat) override
        {
            lat = 1;
            return static_cast<std::uint32_t>(mem.load(a, 4));
        }
        std::uint64_t
        atomic(Addr a, std::uint32_t b,
               const std::function<std::uint64_t(std::uint64_t)> &rmw,
               Cycles, Cycles &lat) override
        {
            lat = 1;
            std::uint64_t old = mem.load(a, b);
            mem.store(a, b, rmw(old));
            return old;
        }
        mem::MainMemory mem;
    };

    Port port;
    riscv::Assembler as;
    auto prog = as.assemble(R"(
_start:
    li t0, 0
loop:
    addi t0, t0, 1
    andi t1, t0, 255
    xor t2, t1, t0
    j loop
)");
    for (const auto &seg : prog.segments)
        port.mem.writeBytes(seg.base, seg.bytes.data(), seg.bytes.size());
    riscv::CoreConfig cfg;
    cfg.resetPc = prog.entry;
    riscv::RvCore core(cfg, port);
    for (auto _ : state)
        core.run(1000);
    state.SetItemsProcessed(
        static_cast<std::int64_t>(core.instret()));
}
BENCHMARK(BM_RiscvInterpreterMips);

} // namespace

BENCHMARK_MAIN();
