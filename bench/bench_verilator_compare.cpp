/**
 * @file
 * Regenerates the section 4.5 Verilator comparison: a "Hello World"
 * program takes 65 s under Verilator RTL simulation and 4 ms on SMAPPIC;
 * combined with Table 3 prices, SMAPPIC is ~1600x more cost-efficient.
 * The hello-world run is actually executed on the prototype (core +
 * assembler + UART) to ground the SMAPPIC side of the claim.
 */

#include <cstdio>

#include "cost/cost_model.hpp"
#include "platform/prototype.hpp"

using namespace smappic;

int
main()
{
    // Run hello-world on the prototype and convert cycles to wall time at
    // the 100 MHz FPGA clock.
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    proto.loadSource(R"(
.data
msg: .asciiz "Hello World\n"
.text
_start:
    li a0, 1
    la a1, msg
    li a2, 12
    li a7, 64
    ecall
    li a0, 0
    li a7, 93
    ecall
)");
    proto.runCore(0);
    double cycles = static_cast<double>(proto.core(0).cycles());
    double smappic_seconds = cycles / 100e6;

    std::printf("=== Section 4.5: Verilator vs SMAPPIC hello world ===\n");
    std::printf("guest console: %s", proto.console(0).captured().c_str());
    std::printf("SMAPPIC: %.0f cycles at 100 MHz = %.2f ms "
                "(paper: 4 ms)\n", cycles, smappic_seconds * 1e3);
    std::printf("Verilator: %.0f s (paper measurement)\n",
                cost::verilatorHelloSeconds());

    double ratio = cost::verilatorCostEfficiencyRatio();
    std::printf("cost-efficiency advantage (time ratio / price ratio * 4 "
                "prototypes per FPGA): %.0fx\n", ratio);
    std::printf("paper: ~1600x\n");
    std::printf("shape check (ratio in [1200, 2100] and guest printed "
                "hello): %s\n",
                (ratio > 1200 && ratio < 2100 &&
                 proto.console(0).captured() == "Hello World\n")
                    ? "PASS"
                    : "FAIL");
    return 0;
}
