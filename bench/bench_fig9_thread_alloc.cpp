/**
 * @file
 * Regenerates Fig 9: the thread-allocation study. 12 threads are pinned
 * (taskset-style) to 1, 2, 3 or 4 active nodes of the 4x1x12 prototype.
 * Paper: with NUMA mode on, spreading threads over more nodes increases
 * memory latency and runtime slightly; with NUMA mode off the trend
 * reverses (spreading relieves the single node's inter-node links).
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/intsort.hpp"

using namespace smappic;
using namespace smappic::workload;

namespace
{

std::vector<GlobalTileId>
pinTo(std::uint32_t threads, std::uint32_t active_nodes,
      std::uint32_t tiles_per_node)
{
    std::vector<GlobalTileId> v;
    for (std::uint32_t i = 0; i < threads; ++i) {
        std::uint32_t node = i % active_nodes;
        std::uint32_t tile = i / active_nodes;
        v.push_back(node * tiles_per_node + tile);
    }
    return v;
}

} // namespace

int
main()
{
    IntSortConfig cfg;
    cfg.keys = 1 << 19;
    cfg.buckets = 1 << 13; // NPB IS ranks over a large key range: the
                           // rank/histogram arrays stream like the keys.
    const std::uint32_t kThreads = 12;

    // Scaling: NPB class C's 500 MB working set exceeds per-node LLC by
    // ~170x, so cache capacity plays no role in the paper's trends. The
    // scaled-down key count would not preserve that regime with Table 2
    // LLC sizes, so the LLC is scaled with the working set (per-node
    // ws:LLC stays >> 1 under every thread placement); latencies are
    // unchanged.
    platform::PrototypeConfig base =
        platform::PrototypeConfig::parse("4x1x12");
    base.llcSliceBytes = 8 << 10;

    std::printf("=== Fig 9: thread allocation, 12 threads on 1-4 active "
                "nodes (4x1x12) ===\n\n");
    std::printf("%14s %16s %16s\n", "Active nodes", "NUMA on (cyc)",
                "NUMA off (cyc)");

    Cycles on[5] = {};
    Cycles off[5] = {};
    for (std::uint32_t nodes = 1; nodes <= 4; ++nodes) {
        auto tiles = pinTo(kThreads, nodes, 12);
        platform::Prototype p_on(base);
        auto g_on = p_on.makeGuest(os::NumaMode::kOn);
        on[nodes] = runIntSort(*g_on, tiles, cfg).cycles;

        platform::Prototype p_off(base);
        auto g_off = p_off.makeGuest(os::NumaMode::kOff);
        off[nodes] = runIntSort(*g_off, tiles, cfg).cycles;

        std::printf("%14u %16llu %16llu\n", nodes,
                    static_cast<unsigned long long>(on[nodes]),
                    static_cast<unsigned long long>(off[nodes]));
    }

    bool on_degrades = on[4] > on[1];
    bool off_improves = off[4] < off[1];
    std::printf("\npaper: NUMA on degrades with more active nodes; NUMA "
                "off slightly improves\n");
    std::printf("measured: NUMA on 4-node/1-node = %.2fx (>1 expected), "
                "NUMA off 4-node/1-node = %.2fx (<1 expected)\n",
                static_cast<double>(on[4]) / static_cast<double>(on[1]),
                static_cast<double>(off[4]) /
                    static_cast<double>(off[1]));
    std::printf("shape check: %s\n",
                (on_degrades && off_improves) ? "PASS" : "FAIL");
    return 0;
}
