/**
 * @file
 * Decode-cache bench: steady-state fetch/decode throughput with the
 * per-core decoded-instruction cache on versus off, a self-modifying
 * code stress run, and the observability contract — stats dump, trace
 * binary and SMCK checkpoint must be byte-identical with the cache on
 * or off and across 1/2/4 phased workers.
 *
 * The speedup phase runs a Fig. 7-style compute kernel (node-local ALU
 * + load loop, no stores in the hot loop) on a sequential 1x1x2
 * prototype. Each variant runs the identical deterministic workload on
 * its own prototype; the timer covers runCores() only. Min over kReps
 * runs, and kPasses passes each measure both variants back to back —
 * host noise can only inflate a pass's ratio, never deflate it, so the
 * gate takes the best pass. The perf gate requires >= 1.3x steady-state
 * instructions per host second.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "platform/prototype.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

namespace fs = std::filesystem;

constexpr int kReps = 5;
constexpr int kPasses = 5;
constexpr std::uint64_t kBudget = 600'000;   // Instructions per core.
constexpr std::uint64_t kIdentityBudget = 60'000;

/** Steady-state kernel: a short ALU + load loop that lives entirely in
 *  one I-cache set's worth of lines and never stores (stores to the
 *  code page would bump its write stamp and defeat the decode cache —
 *  that case is covered by the SMC phase instead). */
constexpr const char *kComputeSource = R"(
_start:
    csrr t0, 0xf14       # mhartid seeds the mix so harts diverge
    la t6, buf
    li t1, 0
    li t2, 1
    li t3, 7
loop:
    ld t4, 0(t6)
    add t1, t1, t4
    xor t2, t2, t1
    slli t4, t1, 1
    srli t5, t2, 2
    add t1, t1, t3
    andi t2, t2, 2047
    or t1, t1, t0
    sub t4, t4, t5
    j loop

.data
.align 3
buf: .dword 13
)";

/** Self-modifying stress: every iteration rewrites the instruction at
 *  `site` through the hart's own store port, then immediately executes
 *  it. With t1 counting 64..1, the 32 even iterations add 5 and the 32
 *  odd ones add 1, so a0 must exit as 32*5 + 32*1 = 192 — any stale
 *  decoded instruction shifts the sum. */
constexpr const char *kSmcSource = R"(
_start:
    li t1, 64
    li t2, 0
    la t3, site
    li a2, 0x00138393    # addi t2, t2, 1
    li a4, 0x00538393    # addi t2, t2, 5
loop:
    andi a1, t1, 1
    bne a1, zero, odd
    sw a4, 0(t3)
    j site
odd:
    sw a2, 0(t3)
site:
    addi t2, t2, 0       # patched before every execution
    addi t1, t1, -1
    bne t1, zero, loop
    addi a0, t2, 0
    li a7, 93
    ecall
)";

constexpr std::int64_t kSmcExpected = 32 * 5 + 32 * 1;

struct VariantResult
{
    double ms = 0;
    std::uint64_t instret = 0;
    riscv::DecodeCacheStats decode;
};

/** One timed run of the compute kernel; min wall ms over kReps. */
VariantResult
timeVariant(bool enabled)
{
    VariantResult out;
    for (int rep = 0; rep < kReps; ++rep) {
        PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
        cfg.core.decodeCache.enabled = enabled;
        Prototype proto(cfg);
        proto.loadSourceReplicated(kComputeSource);
        auto t0 = std::chrono::steady_clock::now();
        proto.runCores({0, 1}, kBudget);
        auto t1 = std::chrono::steady_clock::now();
        double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::uint64_t instret =
            proto.core(0).instret() + proto.core(1).instret();
        if (rep == 0 || ms < out.ms) {
            out.ms = ms;
            out.instret = instret;
        }
        out.decode = proto.core(0).decodeCache().stats();
    }
    return out;
}

struct IdentityRun
{
    std::string stats;
    std::string trace;
    std::string snapshot;
};

/** The full observable surface of one phased run: stats dump, binary
 *  trace, and an SMCK checkpoint taken after the budget expires. */
IdentityRun
runIdentity(bool enabled, std::uint32_t threads, const fs::path &snapPath)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.core.decodeCache.enabled = enabled;
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = 63;
    cfg.trace.enabled = true;
    Prototype proto(cfg);
    proto.loadSourceReplicated(kComputeSource);
    proto.runCores({0, 1, 2, 3}, kIdentityBudget);

    IdentityRun out;
    std::ostringstream stats;
    proto.stats().dump(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    obs::writeBinary(proto.tracer(), trace);
    out.trace = trace.str();
    proto.checkpoint(snapPath.string());
    std::ifstream in(snapPath, std::ios::binary);
    std::ostringstream snap;
    snap << in.rdbuf();
    out.snapshot = snap.str();
    fs::remove(snapPath);
    return out;
}

} // namespace

int
main()
{
    // --- Speedup: paired passes, best-pass ratio. ---
    double bestSpeedup = 0;
    double onMips = 0;
    double offMips = 0;
    double hitRate = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
        VariantResult off = timeVariant(false);
        VariantResult on = timeVariant(true);
        double speedup = off.ms / on.ms;
        if (speedup > bestSpeedup) {
            bestSpeedup = speedup;
            onMips = static_cast<double>(on.instret) / (on.ms * 1e3);
            offMips = static_cast<double>(off.instret) / (off.ms * 1e3);
        }
        std::uint64_t looks =
            on.decode.hits + on.decode.misses + on.decode.bypasses;
        hitRate = looks == 0
                      ? 0.0
                      : static_cast<double>(on.decode.hits) /
                            static_cast<double>(looks);
        std::printf("pass %d: off %.2f ms, on %.2f ms, speedup %.3fx, "
                    "hit rate %.4f\n",
                    pass, off.ms, on.ms, speedup, hitRate);
    }

    // --- Self-modifying code stress (cache on). ---
    bool smcOk = false;
    std::uint64_t smcInvalidations = 0;
    {
        PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
        cfg.core.decodeCache.enabled = true;
        Prototype proto(cfg);
        proto.loadSource(kSmcSource);
        proto.runCores({0}, 100'000);
        smcOk = proto.core(0).exited() &&
                proto.core(0).exitCode() == kSmcExpected;
        smcInvalidations = proto.core(0).decodeCache().stats().invalidations;
        std::printf("smc: exited %d code %lld (want %lld), "
                    "invalidations %llu\n",
                    proto.core(0).exited() ? 1 : 0,
                    static_cast<long long>(proto.core(0).exitCode()),
                    static_cast<long long>(kSmcExpected),
                    static_cast<unsigned long long>(smcInvalidations));
    }

    // --- Byte-identity: on/off x 1/2/4 workers, one reference. ---
    fs::path snapPath =
        fs::temp_directory_path() / "bench_decode_cache_identity.smck";
    IdentityRun ref = runIdentity(true, 1, snapPath);
    bool statsIdentical = true;
    bool traceIdentical = true;
    bool snapIdentical = true;
    for (bool enabled : {true, false}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            if (enabled && threads == 1)
                continue; // The reference itself.
            IdentityRun got = runIdentity(enabled, threads, snapPath);
            statsIdentical = statsIdentical && got.stats == ref.stats;
            traceIdentical = traceIdentical && got.trace == ref.trace;
            snapIdentical = snapIdentical && got.snapshot == ref.snapshot;
        }
    }
    std::printf("identity: stats %d trace %d snapshot %d\n",
                statsIdentical ? 1 : 0, traceIdentical ? 1 : 0,
                snapIdentical ? 1 : 0);

    std::printf("json: {\"speedup\": %.4f, \"on_mips\": %.3f, "
                "\"off_mips\": %.3f, \"hit_rate\": %.4f, "
                "\"smc_ok\": %s, \"smc_invalidations\": %llu, "
                "\"identical_stats\": %s, \"identical_trace\": %s, "
                "\"identical_snapshots\": %s}\n",
                bestSpeedup, onMips, offMips, hitRate,
                smcOk ? "true" : "false",
                static_cast<unsigned long long>(smcInvalidations),
                statsIdentical ? "true" : "false",
                traceIdentical ? "true" : "false",
                snapIdentical ? "true" : "false");

    bool ok = smcOk && statsIdentical && traceIdentical && snapIdentical &&
              bestSpeedup >= 1.0;
    return ok ? 0 : 1;
}
