/**
 * @file
 * Regenerates Fig 7: the 48x48 inter-core round-trip latency heatmap of
 * the 4x1x12 prototype. Paper: four clearly visible NUMA domains,
 * ~100-cycle round trips inside a node, ~250 cycles (2.5x) across nodes.
 */

#include <cstdio>

#include "platform/prototype.hpp"

using namespace smappic;

int
main()
{
    platform::Prototype proto(platform::PrototypeConfig::parse("4x1x12"));
    const std::uint32_t n = proto.config().totalTiles();

    std::vector<std::vector<Cycles>> lat(n, std::vector<Cycles>(n, 0));
    double intra_sum = 0;
    double inter_sum = 0;
    std::uint64_t intra_n = 0;
    std::uint64_t inter_n = 0;

    for (GlobalTileId s = 0; s < n; ++s) {
        for (GlobalTileId r = 0; r < n; ++r) {
            if (s == r)
                continue;
            Cycles c = proto.measureRoundTrip(s, r);
            lat[s][r] = c;
            bool same_node = s / proto.config().tilesPerNode ==
                             r / proto.config().tilesPerNode;
            if (same_node) {
                intra_sum += static_cast<double>(c);
                ++intra_n;
            } else {
                inter_sum += static_cast<double>(c);
                ++inter_n;
            }
        }
    }

    std::printf("=== Fig 7: inter-core round-trip latency heatmap "
                "(cycles), 4x1x12 ===\n");
    std::printf("rows = sender core, cols = receiver core\n");
    for (GlobalTileId s = 0; s < n; ++s) {
        for (GlobalTileId r = 0; r < n; ++r)
            std::printf("%4llu%s",
                        static_cast<unsigned long long>(lat[s][r]),
                        r + 1 == n ? "" : " ");
        std::printf("\n");
    }

    double intra = intra_sum / static_cast<double>(intra_n);
    double inter = inter_sum / static_cast<double>(inter_n);
    std::printf("\nmeasured: intra-node mean %.1f cycles, inter-node mean "
                "%.1f cycles, ratio %.2fx\n",
                intra, inter, inter / intra);
    std::printf("paper:    intra-node ~100 cycles, inter-node ~250 cycles,"
                " ratio ~2.5x\n");
    std::printf("shape check: four NUMA domains visible, ratio in "
                "[2.0, 3.0]: %s\n",
                (inter / intra >= 2.0 && inter / intra <= 3.0) ? "PASS"
                                                               : "FAIL");
    return 0;
}
