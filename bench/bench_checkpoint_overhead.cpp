/**
 * @file
 * Checkpoint overhead bench: the cost of running a fixed-budget memory
 * hammering workload (2x1x2, phased engine) with periodic SMCK
 * checkpoints versus checkpointing disabled, plus the
 * checkpoint-size/interval trade-off.
 *
 * Each variant runs the identical deterministic workload on its own
 * prototype; the timer covers runCores() only, so prototype construction
 * and assembly are excluded. Min over kReps runs, and several passes
 * each measure the baseline and the default-interval variant back to
 * back — host noise can only inflate a pass's ratio, never deflate it,
 * so the gate takes the best pass. The perf gate requires the default
 * snapshot interval to stay within 5% of the no-checkpoint baseline.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "platform/prototype.hpp"
#include "snap/snapshot.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

namespace fs = std::filesystem;

constexpr int kReps = 5;
constexpr int kPasses = 3;
constexpr Cycles kDefaultInterval = 100'000;
constexpr std::uint64_t kBudget = 200'000; // Instructions per core.

/** Node-local workload: every hart hammers a private slice of a small
 *  buffer until the instruction budget expires (same kernel as the
 *  parallel speedup bench, so run length is budget-controlled). */
constexpr const char *kWorkloadSource = R"(
_start:
    csrr t0, 0xf14       # mhartid
    andi t0, t0, 3       # local tile: private buffer slice
    slli t0, t0, 4       # 2 dwords per tile
    la t1, buf
    add t1, t1, t0
    li t2, 0
loop:
    andi t3, t2, 0x8
    add t4, t1, t3
    ld t5, 0(t4)
    add t5, t5, t2
    sd t5, 0(t4)
    addi t2, t2, 1
    j loop

.data
.align 3
buf: .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
     .dword 0
)";

struct RunResult
{
    double ms = 0;
    std::uint64_t files = 0;
    std::uint64_t totalBytes = 0;
};

/** One full workload run at @p interval; min wall ms over kReps. */
RunResult
runVariant(Cycles interval, const std::string &dir)
{
    RunResult best;
    for (int rep = 0; rep < kReps; ++rep) {
        fs::remove_all(dir);
        PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
        cfg.seed = 7;
        cfg.parallel.threads = 2;
        cfg.parallel.quantum = cfg.timing.pcieOneWay();
        cfg.snapshot.interval = interval;
        cfg.snapshot.dir = dir;
        cfg.snapshot.keep = 0; // Keep all: the bench reports totals.
        Prototype proto(cfg);
        proto.loadSourceReplicated(kWorkloadSource);
        std::vector<GlobalTileId> gids;
        for (std::uint32_t c = 0; c < proto.coreCount(); ++c)
            gids.push_back(c);

        auto t0 = std::chrono::steady_clock::now();
        proto.runCores(gids, kBudget);
        auto t1 = std::chrono::steady_clock::now();
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < best.ms)
            best.ms = ms;
    }
    for (const std::string &f : snap::listCheckpoints(dir)) {
        best.files += 1;
        best.totalBytes += fs::file_size(f);
    }
    fs::remove_all(dir);
    return best;
}

} // namespace

int
main()
{
    constexpr double kBound = 1.05;
    const std::string dir =
        (fs::temp_directory_path() / "bench_ckpt_overhead").string();

    std::printf("=== Checkpoint overhead: 2x1x2 hammer kernel, phased "
                "engine, %llu instructions per core, min of %d reps x "
                "%d passes ===\n",
                static_cast<unsigned long long>(kBudget), kReps,
                kPasses);

    // Paired passes for the gated comparison at the default interval.
    double base_ms = 0;
    double snap_ms = 0;
    double ratio = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
        double b = runVariant(0, dir).ms;
        double s = runVariant(kDefaultInterval, dir).ms;
        double r = b > 0 ? s / b : 1.0;
        if (pass == 0 || r < ratio) {
            ratio = r;
            base_ms = b;
            snap_ms = s;
        }
        std::printf("pass %d: off %.3f ms, interval %llu %.3f ms "
                    "(ratio %.4f)\n", pass, b,
                    static_cast<unsigned long long>(kDefaultInterval), s,
                    r);
    }
    bool ok = ratio <= kBound;

    // Size/frequency trade-off at shorter intervals (informational).
    std::printf("\n%-10s %8s %12s %10s\n", "interval", "files",
                "total_bytes", "ms");
    const Cycles intervals[] = {20'000, 50'000, kDefaultInterval};
    std::vector<RunResult> sweep;
    for (Cycles iv : intervals) {
        RunResult r = runVariant(iv, dir);
        sweep.push_back(r);
        std::printf("%-10llu %8llu %12llu %10.3f\n",
                    static_cast<unsigned long long>(iv),
                    static_cast<unsigned long long>(r.files),
                    static_cast<unsigned long long>(r.totalBytes), r.ms);
    }

    std::printf("\noff %.3f ms, default interval %.3f ms, overhead "
                "%.1f%% (bound %.0f%%)\n", base_ms, snap_ms,
                (ratio - 1.0) * 100.0, (kBound - 1.0) * 100.0);
    std::printf("json: {\"bench\": \"checkpoint_overhead\", "
                "\"baseline_ms\": %.3f, \"default_ms\": %.3f, "
                "\"overhead_ratio\": %.4f, \"overhead_ok\": %s, "
                "\"intervals\": [", base_ms, snap_ms, ratio,
                ok ? "true" : "false");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        std::printf("%s{\"interval\": %llu, \"files\": %llu, "
                    "\"total_bytes\": %llu, \"ms\": %.3f}",
                    i ? ", " : "",
                    static_cast<unsigned long long>(intervals[i]),
                    static_cast<unsigned long long>(sweep[i].files),
                    static_cast<unsigned long long>(sweep[i].totalBytes),
                    sweep[i].ms);
    }
    std::printf("]}\n");
    std::printf("overhead within bound: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
