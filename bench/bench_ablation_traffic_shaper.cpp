/**
 * @file
 * Ablation: the traffic shaper (paper section 3.5). Off-node interfaces
 * cannot be mapped into FPGA gates, so SMAPPIC attaches configurable
 * bandwidth/latency performance models to the memory controller and the
 * inter-node bridge. This bench demonstrates those knobs: sweeping the
 * modeled DRAM latency and the inter-node link bandwidth and reporting
 * their effect on a memory-bound workload.
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/intsort.hpp"

using namespace smappic;
using namespace smappic::workload;

int
main()
{
    IntSortConfig cfg;
    cfg.keys = 1 << 15;

    std::printf("=== Ablation: traffic shaper knobs (section 3.5) ===\n\n");

    // --- DRAM latency shaping (single node, 8 workers) ---
    std::printf("DRAM latency shaping (1x1x12, 8 threads):\n");
    std::printf("%16s %16s\n", "latency (cyc)", "sort cycles");
    std::vector<GlobalTileId> local_tiles = {0, 1, 2, 3, 4, 5, 6, 7};
    Cycles prev = 0;
    bool monotonic = true;
    for (Cycles lat : {20u, 80u, 160u, 320u}) {
        platform::PrototypeConfig pc =
            platform::PrototypeConfig::parse("1x1x12");
        pc.timing.dramLatency = lat;
        platform::Prototype proto(pc);
        auto guest = proto.makeGuest(os::NumaMode::kOn);
        Cycles c = runIntSort(*guest, local_tiles, cfg).cycles;
        std::printf("%16llu %16llu\n",
                    static_cast<unsigned long long>(lat),
                    static_cast<unsigned long long>(c));
        monotonic = monotonic && c > prev;
        prev = c;
    }

    // --- inter-node bandwidth shaping (4 nodes, NUMA-off traffic) ---
    std::printf("\ninter-node bandwidth shaping (4x1x12, 16 threads, "
                "NUMA off):\n");
    std::printf("%22s %16s\n", "PCIe bytes/cycle", "sort cycles");
    std::vector<GlobalTileId> spread_tiles;
    for (std::uint32_t i = 0; i < 16; ++i)
        spread_tiles.push_back((i % 4) * 12 + i / 4);
    Cycles slowest = 0;
    Cycles fastest = 0;
    for (double bw : {2.0, 8.0, 64.0, 256.0}) {
        platform::PrototypeConfig pc =
            platform::PrototypeConfig::parse("4x1x12");
        pc.timing.pcieBytesPerCycle = bw;
        pc.timing.bridgeBytesPerCycle = bw;
        platform::Prototype proto(pc);
        auto guest = proto.makeGuest(os::NumaMode::kOff);
        Cycles c = runIntSort(*guest, spread_tiles, cfg).cycles;
        std::printf("%22.0f %16llu\n", bw,
                    static_cast<unsigned long long>(c));
        if (bw == 2.0)
            slowest = c;
        fastest = c;
    }

    std::printf("\nexpected: runtime rises monotonically with shaped DRAM "
                "latency; starving the inter-node link slows "
                "communication-heavy runs substantially\n");
    bool bw_matters = slowest > fastest * 3 / 2;
    std::printf("shape check (both knobs bite): %s\n",
                (monotonic && bw_matters) ? "PASS" : "FAIL");
    return 0;
}
