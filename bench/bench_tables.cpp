/**
 * @file
 * Regenerates the paper's static tables:
 *   Table 1 - available F1 instances (specs, prices, hardware cost),
 *   Table 2 - prototyped system parameters,
 *   Table 3 - host requirements and cheapest suitable instances per tool.
 */

#include <cstdio>

#include "cache/coherent_system.hpp"
#include "cost/cost_model.hpp"
#include "platform/prototype.hpp"

using namespace smappic;

int
main()
{
    std::printf("=== Table 1: Available AWS EC2 F1 instances ===\n");
    std::printf("%-14s %7s %9s %9s %7s %9s %10s %10s\n", "Instance",
                "#vCPUs", "HostMem", "Storage", "#FPGAs", "FPGA Mem",
                "Price/hr", "HW price");
    for (const auto &i : cost::instanceCatalog()) {
        if (i.fpgas == 0)
            continue;
        std::printf("%-14s %7u %7.0fGB %7.0fGB %7u %7.0fGB %9.2f$ %9.0f$\n",
                    i.name.c_str(), i.vcpus, i.memGb, i.storageGb, i.fpgas,
                    i.fpgaMemGb, i.pricePerHour, i.hardwarePrice);
    }
    std::printf("paper check: $1.65 per FPGA-hour across the family\n\n");

    std::printf("=== Table 2: Prototyped system parameters ===\n");
    cache::Geometry geo;
    cache::TimingParams timing;
    std::printf("%-34s %s\n", "Instruction set", "RISC-V 64-bit (RV64IMA)");
    std::printf("%-34s %s\n", "Core", "Ariane (in-order, 6 stages)");
    std::printf("%-34s %s\n", "Frequency", "100 MHz");
    std::printf("%-34s %u\n", "Branch history table entries", 128);
    std::printf("%-34s %u / %u\n", "ITLB / DTLB entries", 16, 16);
    std::printf("%-34s %llu KB, %u ways\n", "L1D cache",
                static_cast<unsigned long long>(geo.l1dBytes >> 10),
                geo.l1dWays);
    std::printf("%-34s %llu KB, %u ways\n", "L1I cache",
                static_cast<unsigned long long>(geo.l1iBytes >> 10),
                geo.l1iWays);
    std::printf("%-34s %llu KB, %u ways\n", "BPC cache",
                static_cast<unsigned long long>(geo.bpcBytes >> 10),
                geo.bpcWays);
    std::printf("%-34s %llu KB, %u ways\n", "LLC cache slice",
                static_cast<unsigned long long>(geo.llcSliceBytes >> 10),
                geo.llcWays);
    std::printf("%-34s %llu cycles\n", "DRAM latency",
                static_cast<unsigned long long>(timing.dramLatency));
    std::printf("%-34s %llu cycles\n", "Inter-node round-trip latency",
                static_cast<unsigned long long>(timing.pcieRtt));
    std::printf("\n");

    std::printf("=== Table 3: Tool requirements -> cheapest instance ===\n");
    std::printf("%-22s %7s %8s %6s %-14s %9s\n", "Tool", "#vCPUs",
                "Memory", "FPGAs", "Instance", "Price/hr");
    for (const auto &t : cost::toolCatalog()) {
        const auto &inst = cost::cheapestInstanceFor(
            t.vcpusNeeded, t.memGbNeeded, t.fpgasNeeded);
        std::printf("%-22s %7u %6.0fGB %6u %-14s %8.3f$\n",
                    t.name.c_str(), t.vcpusNeeded, t.memGbNeeded,
                    t.fpgasNeeded, inst.name.c_str(), inst.pricePerHour);
    }
    std::printf("paper check: Sniper/Verilator -> t3 class, gem5 -> r5.2xl,"
                " SMAPPIC/FireSim -> f1.2xl\n");
    return 0;
}
