/**
 * @file
 * Regenerates Fig 11: MAPLE engine evaluation in a 1x1x6 prototype
 * (Ariane cores in tiles 0,1,4,5; MAPLE engines in tiles 2,3). Each
 * kernel runs single-threaded, with MAPLE, and with two threads.
 * Paper speedups vs 1 thread: SPMV 2.4/1.6, SPMM 1.9/2.2, SDHP 2.2/1.4,
 * BFS 1.6/1.8 (MAPLE / 2 threads).
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/dae_kernels.hpp"

using namespace smappic;
using namespace smappic::workload;

int
main()
{
    DaeConfig cfg;
    cfg.elements = 20000;

    std::printf("=== Fig 11: MAPLE engine speedups (1x1x6) ===\n");
    std::printf("%-6s %12s %12s %12s | %9s %9s\n", "Kernel", "1 thread",
                "MAPLE", "2 threads", "MAPLE x", "2-thr x");

    bool shape_ok = true;
    for (DaeKernel k : {DaeKernel::kSpmv, DaeKernel::kSpmm,
                        DaeKernel::kSdhp, DaeKernel::kBfs}) {
        Cycles cycles[3];
        std::uint64_t checksum[3];
        int i = 0;
        for (DaeMode m : {DaeMode::kSingleThread, DaeMode::kMaple,
                          DaeMode::kTwoThreads}) {
            platform::Prototype proto(
                platform::PrototypeConfig::parse("1x1x6"));
            auto &maple = proto.addMaple(2);
            auto guest = proto.makeGuest(os::NumaMode::kOn);
            auto r = runDaeKernel(*guest, k, m, {0, 1}, &maple, cfg);
            cycles[i] = r.cycles;
            checksum[i] = r.checksum;
            ++i;
        }
        double s_maple = static_cast<double>(cycles[0]) /
                         static_cast<double>(cycles[1]);
        double s_two = static_cast<double>(cycles[0]) /
                       static_cast<double>(cycles[2]);
        bool functional = checksum[0] == checksum[1] &&
                          checksum[0] == checksum[2];
        std::printf("%-6s %12llu %12llu %12llu | %8.2fx %8.2fx%s\n",
                    daeKernelName(k).c_str(),
                    static_cast<unsigned long long>(cycles[0]),
                    static_cast<unsigned long long>(cycles[1]),
                    static_cast<unsigned long long>(cycles[2]), s_maple,
                    s_two, functional ? "" : "  CHECKSUM MISMATCH!");

        shape_ok = shape_ok && functional && s_maple > 1.2 && s_two > 1.2;
        // Latency-bound kernels: MAPLE beats the second thread.
        if (k == DaeKernel::kSpmv || k == DaeKernel::kSdhp)
            shape_ok = shape_ok && s_maple > s_two;
        // Compute-heavier SPMM: the second thread wins (paper).
        if (k == DaeKernel::kSpmm)
            shape_ok = shape_ok && s_two > s_maple;
    }

    std::printf("\npaper shape: MAPLE more efficient than a second thread "
                "in latency-bound kernels (SPMV, SDHP); the second thread "
                "wins for SPMM\n");
    std::printf("shape check: %s\n", shape_ok ? "PASS" : "FAIL");
    return 0;
}
