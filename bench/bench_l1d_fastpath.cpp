/**
 * @file
 * L1D fast-path bench: steady-state load/store throughput with the data
 * fast path (PrototypeConfig::core.dataFastPath) on versus off, and the
 * observability contract — stats dump, trace binary and SMCK checkpoint
 * must be byte-identical with the fast path on or off and across 1/2/4
 * phased workers.
 *
 * The speedup phase runs a memory-streaming kernel (read-modify-write
 * sweep over a few private cache lines — every access an L1D/BPC-M hit
 * in steady state) on a sequential 1x1x2 prototype. The decode cache is
 * on in both variants so the measured delta is the data path alone.
 * Each variant runs the identical deterministic workload on its own
 * prototype; the timer covers runCores() only. Min over kReps runs, and
 * kPasses passes each measure both variants back to back — host noise
 * can only inflate a pass's ratio, never deflate it, so the gate takes
 * the best pass. The perf gate requires >= 1.4x steady-state
 * instructions per host second.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "platform/prototype.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

namespace fs = std::filesystem;

constexpr int kReps = 5;
constexpr int kPasses = 7;
constexpr std::uint64_t kBudget = 600'000;   // Instructions per core.
constexpr std::uint64_t kIdentityBudget = 60'000;

/** Memory-streaming kernel: a read-modify-write sweep over four dwords
 *  of the hart's private cache line. After the first iteration the line
 *  sits in BPC-M, so every load is an L1D hit and every store an
 *  M-state hit — the case the fast path short-circuits. Harts are 128
 *  bytes apart so no line is ever shared or recalled. */
constexpr const char *kStreamSource = R"(
_start:
    csrr t0, 0xf14       # mhartid picks the hart's private line
    andi t0, t0, 3
    slli t0, t0, 7
    la t6, buf
    add t6, t6, t0
    li t1, 0
loop:
    ld t2, 0(t6)
    sd t2, 0(t6)
    ld t3, 8(t6)
    sd t3, 8(t6)
    ld t4, 16(t6)
    sd t4, 16(t6)
    ld t5, 24(t6)
    sd t5, 24(t6)
    ld t2, 0(t6)
    sd t2, 0(t6)
    ld t3, 8(t6)
    sd t3, 8(t6)
    ld t4, 16(t6)
    sd t4, 16(t6)
    ld t5, 24(t6)
    sd t5, 24(t6)
    addi t1, t1, 1
    j loop

.data
.align 7
buf: .dword 1
     .dword 2
     .dword 3
     .dword 4
.align 7
     .dword 5
     .dword 6
     .dword 7
     .dword 8
.align 7
     .dword 9
     .dword 10
     .dword 11
     .dword 12
.align 7
     .dword 13
     .dword 14
     .dword 15
     .dword 16
)";

struct VariantResult
{
    double ms = 0;
    std::uint64_t instret = 0;
};

/** One timed run of the streaming kernel; min wall ms over kReps. */
VariantResult
timeVariant(bool enabled)
{
    VariantResult out;
    for (int rep = 0; rep < kReps; ++rep) {
        PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
        cfg.core.dataFastPath = enabled;
        Prototype proto(cfg);
        proto.loadSourceReplicated(kStreamSource);
        auto t0 = std::chrono::steady_clock::now();
        proto.runCores({0, 1}, kBudget);
        auto t1 = std::chrono::steady_clock::now();
        double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::uint64_t instret =
            proto.core(0).instret() + proto.core(1).instret();
        if (rep == 0 || ms < out.ms) {
            out.ms = ms;
            out.instret = instret;
        }
    }
    return out;
}

struct IdentityRun
{
    std::string stats;
    std::string trace;
    std::string snapshot;
};

/** The full observable surface of one phased run: stats dump, binary
 *  trace, and an SMCK checkpoint taken after the budget expires. */
IdentityRun
runIdentity(bool enabled, std::uint32_t threads, const fs::path &snapPath)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.core.dataFastPath = enabled;
    cfg.parallel.threads = threads;
    cfg.parallel.quantum = 63;
    cfg.trace.enabled = true;
    Prototype proto(cfg);
    proto.loadSourceReplicated(kStreamSource);
    proto.runCores({0, 1, 2, 3}, kIdentityBudget);

    IdentityRun out;
    std::ostringstream stats;
    proto.stats().dump(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    obs::writeBinary(proto.tracer(), trace);
    out.trace = trace.str();
    proto.checkpoint(snapPath.string());
    std::ifstream in(snapPath, std::ios::binary);
    std::ostringstream snap;
    snap << in.rdbuf();
    out.snapshot = snap.str();
    fs::remove(snapPath);
    return out;
}

} // namespace

int
main()
{
    // --- Speedup: paired passes, best-pass ratio. ---
    double bestSpeedup = 0;
    double onMips = 0;
    double offMips = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
        VariantResult off = timeVariant(false);
        VariantResult on = timeVariant(true);
        double speedup = off.ms / on.ms;
        if (speedup > bestSpeedup) {
            bestSpeedup = speedup;
            onMips = static_cast<double>(on.instret) / (on.ms * 1e3);
            offMips = static_cast<double>(off.instret) / (off.ms * 1e3);
        }
        std::printf("pass %d: off %.2f ms, on %.2f ms, speedup %.3fx\n",
                    pass, off.ms, on.ms, speedup);
    }

    // --- Byte-identity: on/off x 1/2/4 workers, one reference. ---
    fs::path snapPath =
        fs::temp_directory_path() / "bench_l1d_fastpath_identity.smck";
    IdentityRun ref = runIdentity(true, 1, snapPath);
    bool statsIdentical = true;
    bool traceIdentical = true;
    bool snapIdentical = true;
    for (bool enabled : {true, false}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            if (enabled && threads == 1)
                continue; // The reference itself.
            IdentityRun got = runIdentity(enabled, threads, snapPath);
            statsIdentical = statsIdentical && got.stats == ref.stats;
            traceIdentical = traceIdentical && got.trace == ref.trace;
            snapIdentical = snapIdentical && got.snapshot == ref.snapshot;
        }
    }
    std::printf("identity: stats %d trace %d snapshot %d\n",
                statsIdentical ? 1 : 0, traceIdentical ? 1 : 0,
                snapIdentical ? 1 : 0);

    std::printf("json: {\"speedup\": %.4f, \"on_mips\": %.3f, "
                "\"off_mips\": %.3f, "
                "\"identical_stats\": %s, \"identical_trace\": %s, "
                "\"identical_snapshots\": %s}\n",
                bestSpeedup, onMips, offMips,
                statsIdentical ? "true" : "false",
                traceIdentical ? "true" : "false",
                snapIdentical ? "true" : "false");

    bool ok = statsIdentical && traceIdentical && snapIdentical &&
              bestSpeedup >= 1.0;
    return ok ? 0 : 1;
}
