/**
 * @file
 * Uncore idle-skip bench: host time spent crossing guest idle spans with
 * event-horizon skipping (PrototypeConfig::uncore.idleSkip) on versus
 * off, and the observability contract — stats dump, trace binary and
 * SMCK checkpoint must be byte-identical with the skip on or off, for
 * the sequential engine and across 1/2/4 phased workers.
 *
 * Two timed workloads, both dominated by idle time:
 *  - Timer-driven WFI: one hart sleeps in wfi between CLINT timer
 *    interrupts, its handler re-arming mtimecmp each wakeup. Off, every
 *    idle cycle is a setTime()/runUntil() pair; on, each wait is one
 *    jump to the timer horizon. The perf gate requires >= 2x here.
 *  - Sparse-miss mesh: a standalone NodeChipset serving memory reads
 *    injected thousands of cycles apart. Off, the chipset ticks through
 *    the gaps cycle by cycle; on, runUntilIdle() bulk-advances to the
 *    next scheduled event.
 *
 * Min over kReps runs, and kPasses passes each measure both variants
 * back to back — host noise can only inflate a pass's ratio, never
 * deflate it, so the gate takes the best pass.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_io.hpp"
#include "platform/node_chipset.hpp"
#include "platform/prototype.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

namespace fs = std::filesystem;

constexpr int kReps = 3;
constexpr int kPasses = 5;
constexpr std::uint64_t kBudget = 200'000;   // Instructions per core.
constexpr std::uint64_t kIdentityBudget = 60'000;

/**
 * Timer-driven WFI kernel. Hart 0 programs its mtimecmp, sleeps in wfi,
 * and counts wakeups in its interrupt handler, which re-arms the timer
 * until the target count is reached; the final wakeup redirects mepc to
 * the exit stub and disarms the timer. Every other hart exits at once,
 * so the run is one parked core waiting on a timer horizon — the case
 * the WFI fast-forward collapses. 20 wakeups, 8000 cycles apart.
 */
constexpr const char *kWfiSource = R"(
_start:
    csrr t0, 0xf14       # mhartid
    bnez t0, finish      # only hart 0 runs the timer loop
    la t0, handler
    csrw 0x305, t0       # mtvec
    li t1, 0x80
    csrw 0x304, t1       # mie.MTIE
    csrr t2, 0x300
    ori t2, t2, 8
    csrw 0x300, t2       # mstatus.MIE
    li s0, 0             # wakeups so far
    li s1, 20            # target wakeups
    li s2, 0x0200bff8    # CLINT mtime
    li s3, 0x02004000    # CLINT mtimecmp[0]
    li s4, 8000          # interval
    ld t3, 0(s2)
    add t3, t3, s4
    sd t3, 0(s3)
idle:
    wfi
    j idle
handler:
    addi s0, s0, 1
    bge s0, s1, last
    ld t3, 0(s2)
    add t3, t3, s4
    sd t3, 0(s3)
    mret
last:
    la t3, finish
    csrw 0x341, t3       # mepc = finish
    li t3, -1
    sd t3, 0(s3)         # disarm the timer
    mret
finish:
    li a0, 0
    li a7, 93
    ecall
)";

struct VariantResult
{
    double ms = 0;
    std::uint64_t instret = 0;
};

/** One timed run of the WFI kernel; min wall ms over kReps. */
VariantResult
timeWfiVariant(bool enabled)
{
    VariantResult out;
    for (int rep = 0; rep < kReps; ++rep) {
        PrototypeConfig cfg = PrototypeConfig::parse("1x1x2");
        cfg.uncore.idleSkip = enabled;
        Prototype proto(cfg);
        proto.loadSourceReplicated(kWfiSource);
        auto t0 = std::chrono::steady_clock::now();
        proto.runCores({0, 1}, kBudget);
        auto t1 = std::chrono::steady_clock::now();
        double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        std::uint64_t instret =
            proto.core(0).instret() + proto.core(1).instret();
        if (rep == 0 || ms < out.ms) {
            out.ms = ms;
            out.instret = instret;
        }
    }
    return out;
}

/**
 * Sparse-miss mesh workload: a standalone chipset (mesh + NoC-AXI4
 * memory controller + DRAM) serving one read every 5000 cycles. The
 * result also cross-checks that both variants deliver every response.
 */
VariantResult
timeMeshVariant(bool enabled)
{
    constexpr int kRequests = 64;
    constexpr Cycles kGap = 5000;
    VariantResult out;
    for (int rep = 0; rep < kReps; ++rep) {
        sim::EventQueue eq;
        sim::StatRegistry stats;
        mem::MainMemory memory;
        mem::AxiDram dram(eq, memory, 0, 1 << 30, mem::DramTiming{});
        mem::NocAxiMemController memctrl(0, eq, dram, mem::MemCtrlConfig{},
                                         &stats);
        platform::NodeChipset chipset(0, 4, eq, memctrl, nullptr);
        chipset.setIdleSkip(enabled);
        std::uint64_t delivered = 0;
        for (TileId t = 0; t < 4; ++t)
            chipset.setTileDeliverFn(
                t, [&delivered](const noc::Packet &) { ++delivered; });
        for (int i = 0; i < kRequests; ++i) {
            Addr addr = 0x10000 + static_cast<Addr>(i) * 64;
            memory.store(addr, 8, addr);
            eq.scheduleAt(static_cast<Cycles>(i) * kGap + 1,
                          [&chipset, addr, i] {
                              noc::Packet p;
                              p.noc = noc::NocIndex::kNoc1;
                              p.srcNode = 0;
                              p.dstNode = 0;
                              p.srcTile = static_cast<TileId>(i % 4);
                              p.dstTile = noc::kOffChipTile;
                              p.type = noc::MsgType::kMemRd;
                              p.mshr = static_cast<std::uint8_t>(i % 16);
                              p.sizeLog2 = 6;
                              p.addr = addr;
                              chipset.injectFromTile(p);
                          });
        }
        auto t0 = std::chrono::steady_clock::now();
        bool drained = chipset.runUntilIdle(2'000'000);
        auto t1 = std::chrono::steady_clock::now();
        if (!drained || delivered != kRequests) {
            std::fprintf(stderr,
                         "mesh workload failed: drained=%d delivered=%llu\n",
                         drained ? 1 : 0,
                         static_cast<unsigned long long>(delivered));
            std::exit(1);
        }
        double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (rep == 0 || ms < out.ms) {
            out.ms = ms;
            out.instret = delivered;
        }
    }
    return out;
}

struct IdentityRun
{
    std::string stats;
    std::string trace;
    std::string snapshot;
};

/** The full observable surface of one run: stats dump, binary trace,
 *  and an SMCK checkpoint taken after the run. threads == 0 selects the
 *  sequential engine; otherwise the phased engine with that many
 *  workers. */
IdentityRun
runIdentity(bool enabled, std::uint32_t threads, const fs::path &snapPath)
{
    PrototypeConfig cfg = PrototypeConfig::parse("2x1x2");
    cfg.uncore.idleSkip = enabled;
    if (threads > 0) {
        cfg.parallel.threads = threads;
        cfg.parallel.quantum = 63;
    }
    cfg.trace.enabled = true;
    Prototype proto(cfg);
    proto.loadSourceReplicated(kWfiSource);
    proto.runCores({0, 1, 2, 3}, kIdentityBudget);

    IdentityRun out;
    std::ostringstream stats;
    proto.stats().dump(stats);
    out.stats = stats.str();
    std::ostringstream trace;
    obs::writeBinary(proto.tracer(), trace);
    out.trace = trace.str();
    proto.checkpoint(snapPath.string());
    std::ifstream in(snapPath, std::ios::binary);
    std::ostringstream snap;
    snap << in.rdbuf();
    out.snapshot = snap.str();
    fs::remove(snapPath);
    return out;
}

} // namespace

int
main()
{
    // --- Speedup: paired passes, best-pass ratio. ---
    double bestSpeedup = 0;
    double bestMeshSpeedup = 0;
    double onMips = 0;
    double offMips = 0;
    for (int pass = 0; pass < kPasses; ++pass) {
        VariantResult off = timeWfiVariant(false);
        VariantResult on = timeWfiVariant(true);
        VariantResult moff = timeMeshVariant(false);
        VariantResult mon = timeMeshVariant(true);
        double speedup = off.ms / on.ms;
        double meshSpeedup = moff.ms / mon.ms;
        if (speedup > bestSpeedup) {
            bestSpeedup = speedup;
            onMips = static_cast<double>(on.instret) / (on.ms * 1e3);
            offMips = static_cast<double>(off.instret) / (off.ms * 1e3);
        }
        bestMeshSpeedup = std::max(bestMeshSpeedup, meshSpeedup);
        std::printf("pass %d: wfi off %.2f ms, on %.2f ms, %.3fx; "
                    "mesh off %.2f ms, on %.2f ms, %.3fx\n",
                    pass, off.ms, on.ms, speedup, moff.ms, mon.ms,
                    meshSpeedup);
    }

    // --- Byte-identity: engine x knob x workers, two references. ---
    fs::path snapPath =
        fs::temp_directory_path() / "bench_uncore_idleskip_identity.smck";
    bool statsIdentical = true;
    bool traceIdentical = true;
    bool snapIdentical = true;
    // Sequential engine: skip on vs off.
    {
        IdentityRun ref = runIdentity(true, 0, snapPath);
        IdentityRun got = runIdentity(false, 0, snapPath);
        statsIdentical = statsIdentical && got.stats == ref.stats;
        traceIdentical = traceIdentical && got.trace == ref.trace;
        snapIdentical = snapIdentical && got.snapshot == ref.snapshot;
    }
    // Phased engine: skip on/off x 1/2/4 workers against one reference.
    IdentityRun ref = runIdentity(true, 1, snapPath);
    for (bool enabled : {true, false}) {
        for (std::uint32_t threads : {1u, 2u, 4u}) {
            if (enabled && threads == 1)
                continue; // The reference itself.
            IdentityRun got = runIdentity(enabled, threads, snapPath);
            statsIdentical = statsIdentical && got.stats == ref.stats;
            traceIdentical = traceIdentical && got.trace == ref.trace;
            snapIdentical = snapIdentical && got.snapshot == ref.snapshot;
        }
    }
    std::printf("identity: stats %d trace %d snapshot %d\n",
                statsIdentical ? 1 : 0, traceIdentical ? 1 : 0,
                snapIdentical ? 1 : 0);

    std::printf("json: {\"speedup\": %.4f, \"mesh_speedup\": %.4f, "
                "\"on_mips\": %.3f, \"off_mips\": %.3f, "
                "\"identical_stats\": %s, \"identical_trace\": %s, "
                "\"identical_snapshots\": %s}\n",
                bestSpeedup, bestMeshSpeedup, onMips, offMips,
                statsIdentical ? "true" : "false",
                traceIdentical ? "true" : "false",
                snapIdentical ? "true" : "false");

    bool ok = statsIdentical && traceIdentical && snapIdentical &&
              bestSpeedup >= 2.0 && bestMeshSpeedup >= 1.0;
    return ok ? 0 : 1;
}
