/**
 * @file
 * Ablation: inter-node bridge credit-window depth. The credit-based flow
 * control (section 3.1) guarantees deadlock freedom; the window depth
 * trades receive-buffer area against sustained throughput (shallow
 * windows stall the sender while credits ride back over PCIe). Runs the
 * packet-level bridge + fabric model.
 */

#include <cstdio>

#include "bridge/inter_node_bridge.hpp"
#include "pcie/pcie_fabric.hpp"

using namespace smappic;

namespace
{

/** Streams @p packets 10-flit packets through a 2-bridge fabric;
 *  returns cycles until full delivery. */
Cycles
streamWith(std::uint32_t credits, int packets)
{
    sim::EventQueue eq;
    sim::StatRegistry stats;
    pcie::PcieFabric fabric(eq, 63, 16.0, &stats);
    bridge::BridgeConfig cfg;
    cfg.creditsPerNoc = credits;
    cfg.creditPollInterval = 32;
    bridge::InterNodeBridge b0(0, 0, 0x0, eq, fabric, cfg, &stats);
    bridge::InterNodeBridge b1(1, 1, 0x1000000, eq, fabric, cfg, &stats);
    b0.addPeer(1, b1.windowBase());
    b1.addPeer(0, b0.windowBase());
    int delivered = 0;
    b1.setDeliverFn([&](const noc::Packet &) { ++delivered; });

    for (int i = 0; i < packets; ++i) {
        noc::Packet p;
        p.srcNode = 0;
        p.srcTile = 1;
        p.dstNode = 1;
        p.dstTile = 2;
        p.type = noc::MsgType::kDataResp;
        p.addr = 0x1000 + static_cast<Addr>(i) * 64;
        p.payload.assign(8, 0xabcdef);
        b0.sendPacket(p);
    }
    eq.run();
    if (delivered != packets)
        return 0;
    return eq.now();
}

} // namespace

int
main()
{
    const std::uint32_t credit_depths[] = {2, 4, 8, 16, 32, 64, 128};
    const int kPackets = 200;

    std::printf("=== Ablation: bridge credit-window depth (200 x 10-flit "
                "packets, one direction) ===\n\n");
    std::printf("%10s %14s %18s\n", "Credits", "cycles",
                "flits/100 cycles");
    Cycles first = 0;
    Cycles last = 0;
    for (std::uint32_t c : credit_depths) {
        Cycles cycles = streamWith(c, kPackets);
        if (first == 0)
            first = cycles;
        last = cycles;
        double rate = 100.0 * kPackets * 10 /
                      static_cast<double>(cycles);
        std::printf("%10u %14llu %17.1f\n", c,
                    static_cast<unsigned long long>(cycles), rate);
    }

    std::printf("\nexpected: shallow windows stall on credit-return round "
                "trips; throughput saturates once the window covers the "
                "PCIe RTT (bandwidth-delay product)\n");
    std::printf("shape check (deep window at least 3x faster than "
                "2-credit window): %s\n",
                (last * 3 <= first) ? "PASS" : "FAIL");
    return 0;
}
