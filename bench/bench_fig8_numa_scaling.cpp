/**
 * @file
 * Regenerates Fig 8: multithreaded integer-sort runtime with the Linux
 * NUMA mode on vs off, for 3/6/12/24/48 threads on the 48-core 4x1x12
 * prototype. Paper: NUMA mode reduces runtime by 1.6-2.8x, strongest at
 * high thread counts.
 *
 * Scaling note: NPB IS class C sorts 134M keys; the simulated substrate
 * runs a scaled-down key count, which preserves the bulk-synchronous
 * communication shape (and therefore the NUMA on/off ratio) but not
 * absolute seconds.
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/intsort.hpp"

using namespace smappic;
using namespace smappic::workload;

namespace
{

/** Threads spread round-robin across nodes (default Linux balancing). */
std::vector<GlobalTileId>
spreadTiles(std::uint32_t threads, std::uint32_t nodes,
            std::uint32_t tiles_per_node)
{
    std::vector<GlobalTileId> v;
    for (std::uint32_t i = 0; i < threads; ++i) {
        std::uint32_t node = i % nodes;
        std::uint32_t tile = i / nodes;
        v.push_back(node * tiles_per_node + tile);
    }
    return v;
}

} // namespace

int
main()
{
    const std::uint32_t kThreads[] = {3, 6, 12, 24, 48};
    IntSortConfig cfg;
    cfg.keys = 1 << 16;

    std::printf("=== Fig 8: integer sort, NUMA mode on vs off (4x1x12) "
                "===\n");
    std::printf("keys = %llu (scaled from NPB class C's 134M)\n\n",
                static_cast<unsigned long long>(cfg.keys));
    std::printf("%8s %16s %16s %10s\n", "Threads", "NUMA on (cyc)",
                "NUMA off (cyc)", "off/on");

    bool shape_ok = true;
    double prev_on = 0;
    for (std::uint32_t t : kThreads) {
        platform::Prototype p_on(
            platform::PrototypeConfig::parse("4x1x12"));
        auto g_on = p_on.makeGuest(os::NumaMode::kOn);
        auto tiles = spreadTiles(t, 4, 12);
        auto r_on = runIntSort(*g_on, tiles, cfg);

        platform::Prototype p_off(
            platform::PrototypeConfig::parse("4x1x12"));
        auto g_off = p_off.makeGuest(os::NumaMode::kOff);
        auto r_off = runIntSort(*g_off, tiles, cfg);

        double ratio = static_cast<double>(r_off.cycles) /
                       static_cast<double>(r_on.cycles);
        std::printf("%8u %16llu %16llu %9.2fx%s\n", t,
                    static_cast<unsigned long long>(r_on.cycles),
                    static_cast<unsigned long long>(r_off.cycles), ratio,
                    (r_on.sorted && r_off.sorted) ? "" : "  UNSORTED!");
        shape_ok = shape_ok && r_on.sorted && r_off.sorted &&
                   ratio > 1.2 && ratio < 4.0;
        if (prev_on > 0)
            shape_ok = shape_ok &&
                       static_cast<double>(r_on.cycles) < prev_on;
        prev_on = static_cast<double>(r_on.cycles);
    }

    std::printf("\npaper: NUMA mode reduces runtime 1.6-2.8x; runtime "
                "falls with thread count\n");
    std::printf("shape check (ratio in band, runtime scales): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return 0;
}
