/**
 * @file
 * Regenerates Fig 10: GNG accelerator evaluation in a 1x1x2 prototype
 * (Ariane in tile 0, GNG in tile 1). Benchmark A generates noise;
 * benchmark B applies noise to a byte sequence. Four modes: software,
 * and hardware fetches of 1/2/4 packed samples.
 * Paper speedups: A: 12 / 21 / 32; B: 7.4 / 10 / 13.
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/noise.hpp"

using namespace smappic;
using namespace smappic::workload;

namespace
{

Cycles
runOne(GngMode mode, bool applier, std::uint64_t samples)
{
    platform::Prototype proto(platform::PrototypeConfig::parse("1x1x2"));
    proto.addGng(1);
    auto guest = proto.makeGuest(os::NumaMode::kOn);
    NoiseConfig cfg;
    cfg.samples = samples;
    cfg.deviceBase = proto.accelWindow(1);
    return applier ? runNoiseApplier(*guest, 0, mode, cfg).cycles
                   : runNoiseGenerator(*guest, 0, mode, cfg).cycles;
}

} // namespace

int
main()
{
    const std::uint64_t kSamples = 1 << 15; // Scaled from 64 MB / 32 MB.
    const GngMode kModes[] = {GngMode::kSoftware, GngMode::kFetch1,
                              GngMode::kFetch2, GngMode::kFetch4};
    const double kPaperA[] = {1.0, 12.0, 21.0, 32.0};
    const double kPaperB[] = {1.0, 7.4, 10.0, 13.0};

    std::printf("=== Fig 10: GNG accelerator speedups (1x1x2) ===\n");
    std::printf("samples = %llu (scaled from the paper's 64 MB / 32 MB)\n\n",
                static_cast<unsigned long long>(kSamples));

    bool shape_ok = true;
    for (int bench = 0; bench < 2; ++bench) {
        bool applier = bench == 1;
        std::printf("Benchmark %s:\n",
                    applier ? "B (noise applier)" : "A (noise generator)");
        std::printf("  %-6s %14s %10s %12s\n", "Mode", "cycles", "speedup",
                    "paper");
        Cycles sw = 0;
        double prev_speedup = 0;
        for (int m = 0; m < 4; ++m) {
            Cycles c = runOne(kModes[m], applier, kSamples);
            if (m == 0)
                sw = c;
            double speedup = static_cast<double>(sw) /
                             static_cast<double>(c);
            std::printf("  %-6s %14llu %9.1fx %11.1fx\n",
                        gngModeName(kModes[m]),
                        static_cast<unsigned long long>(c), speedup,
                        applier ? kPaperB[m] : kPaperA[m]);
            shape_ok = shape_ok && speedup > prev_speedup;
            prev_speedup = speedup;
        }
        std::printf("\n");
    }

    std::printf("paper shape: hardware >> software; packing 2/4 samples "
                "per fetch increases speedup further; benchmark B gains "
                "less than A\n");
    std::printf("shape check (monotonic speedup in packing width): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return 0;
}
