/**
 * @file
 * Ablation: inter-node link latency sweep. Section 4.1 notes that the
 * 125-cycle PCIe round trip matches multi-socket Intel platforms and that
 * the link latency "can be adjusted to represent systems with a slower
 * interconnect, e.g., Ampere Altra". This bench sweeps the modeled
 * round-trip latency and reports both the Fig-7 probe and the NUMA sort.
 */

#include <cstdio>

#include "platform/prototype.hpp"
#include "workload/intsort.hpp"

using namespace smappic;
using namespace smappic::workload;

int
main()
{
    const Cycles rtts[] = {60, 125, 250, 500};
    IntSortConfig cfg;
    cfg.keys = 1 << 15;
    std::vector<GlobalTileId> tiles;
    for (std::uint32_t i = 0; i < 16; ++i)
        tiles.push_back((i % 4) * 12 + i / 4);

    std::printf("=== Ablation: inter-node link round-trip latency "
                "(4x1x12) ===\n\n");
    std::printf("%10s %16s %16s %18s\n", "RTT (cyc)", "intra probe",
                "inter probe", "sort off/on ratio");

    Cycles prev_inter = 0;
    bool shape_ok = true;
    for (Cycles rtt : rtts) {
        platform::PrototypeConfig pc =
            platform::PrototypeConfig::parse("4x1x12");
        pc.timing.pcieRtt = rtt;
        platform::Prototype proto(pc);
        Cycles intra = proto.measureRoundTrip(0, 5);
        Cycles inter = proto.measureRoundTrip(0, 17);

        platform::PrototypeConfig pc_on = pc;
        platform::Prototype p_on(pc_on);
        auto g_on = p_on.makeGuest(os::NumaMode::kOn);
        auto r_on = runIntSort(*g_on, tiles, cfg);
        platform::Prototype p_off(pc);
        auto g_off = p_off.makeGuest(os::NumaMode::kOff);
        auto r_off = runIntSort(*g_off, tiles, cfg);
        double ratio = static_cast<double>(r_off.cycles) /
                       static_cast<double>(r_on.cycles);

        std::printf("%10llu %16llu %16llu %17.2fx\n",
                    static_cast<unsigned long long>(rtt),
                    static_cast<unsigned long long>(intra),
                    static_cast<unsigned long long>(inter), ratio);
        shape_ok = shape_ok && inter > prev_inter;
        prev_inter = inter;
    }

    std::printf("\nexpected: inter-node probe latency grows with the link "
                "RTT; intra-node latency is unaffected; the NUMA penalty "
                "grows with slower links\n");
    std::printf("shape check (inter-node latency monotonic in RTT): %s\n",
                shape_ok ? "PASS" : "FAIL");
    return 0;
}
