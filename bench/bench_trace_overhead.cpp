/**
 * @file
 * Tracer overhead bench: the cost of running the Fig 7 latency kernel
 * (the full 4x1x12 inter-core round-trip sweep) with the platform tracer
 * enabled versus disabled.
 *
 * The sweep drives the cache miss path and the transaction-level NoC —
 * the two hottest trace points — for every core pair. Each variant is
 * measured on its own prototype, min over kReps sweeps (two live
 * prototypes alternating would evict each other's working set and
 * masquerade as tracer cost); the traced variant clears the rings
 * between reps so every rep writes warm pages. Several passes each
 * measure both variants back to back and the gate takes the best pass's
 * ratio — host noise can only inflate a pass, never deflate it. The
 * perf gate requires that ratio to stay within 5%.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>

#include "platform/prototype.hpp"

using namespace smappic;
using platform::Prototype;
using platform::PrototypeConfig;

namespace
{

constexpr int kReps = 11;

/** One full inter-core round-trip sweep; returns wall milliseconds. */
double
sweep(Prototype &proto)
{
    const std::uint32_t n = proto.config().totalTiles();
    auto t0 = std::chrono::steady_clock::now();
    for (GlobalTileId s = 0; s < n; ++s) {
        for (GlobalTileId r = 0; r < n; ++r) {
            if (s != r)
                proto.measureRoundTrip(s, r);
        }
    }
    auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/** Min-of-kReps sweep time on a fresh prototype; fills @p events with
 *  the per-sweep trace volume when tracing. */
double
timeVariant(bool traced, std::uint64_t &events)
{
    PrototypeConfig cfg = PrototypeConfig::parse("4x1x12");
    cfg.trace.enabled = traced;
    Prototype proto(cfg);
    double best = 0;
    for (int rep = 0; rep < kReps; ++rep) {
        if (traced)
            proto.tracer().clear();
        double ms = sweep(proto);
        if (rep == 0 || ms < best)
            best = ms;
    }
    events = traced ? proto.tracer().recorded() : 0;
    return best;
}

} // namespace

int
main()
{
    constexpr double kBound = 1.05;

    constexpr int kPasses = 6;
    std::printf("=== Tracer overhead: Fig 7 sweep, 4x1x12, min of %d "
                "reps x %d passes per variant ===\n", kReps, kPasses);
    std::uint64_t ignored = 0;
    std::uint64_t events = 0;
    double untraced_ms = 0;
    double traced_ms = 0;
    double ratio = 0;
    // Each pass measures both variants back to back and yields its own
    // ratio; the gate takes the best pass. Host noise landing on either
    // window can only inflate a pass's ratio, never deflate it, so the
    // minimum over passes is the cleanest paired measurement available.
    for (int pass = 0; pass < kPasses; ++pass) {
        double u = timeVariant(false, ignored);
        double t = timeVariant(true, events);
        double r = u > 0 ? t / u : 1.0;
        if (pass == 0 || r < ratio) {
            ratio = r;
            untraced_ms = u;
            traced_ms = t;
        }
        std::printf("pass %d: untraced %.3f ms, traced %.3f ms "
                    "(ratio %.4f)\n", pass, u, t, r);
    }

    bool ok = ratio <= kBound;

    std::printf("\nuntraced %.3f ms, traced %.3f ms, overhead %.1f%% "
                "(bound %.0f%%), %llu events per sweep\n",
                untraced_ms, traced_ms, (ratio - 1.0) * 100.0,
                (kBound - 1.0) * 100.0,
                static_cast<unsigned long long>(events));
    std::printf("json: {\"bench\": \"trace_overhead\", "
                "\"untraced_ms\": %.3f, \"traced_ms\": %.3f, "
                "\"overhead_ratio\": %.4f, \"overhead_ok\": %s, "
                "\"events\": %llu}\n",
                untraced_ms, traced_ms, ratio, ok ? "true" : "false",
                static_cast<unsigned long long>(events));
    std::printf("overhead within bound: %s\n", ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}
