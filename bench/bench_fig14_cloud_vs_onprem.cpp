/**
 * @file
 * Regenerates Fig 14: the cost of FPGA modeling in the cloud vs a
 * purchased on-premises setup, as a function of continuous modeling days.
 * Paper: the cloud is more cost-efficient for up to ~200 days.
 */

#include <cstdio>

#include "cost/cost_model.hpp"

using namespace smappic;

int
main()
{
    std::printf("=== Fig 14: cloud vs on-premises FPGA modeling cost "
                "===\n\n");
    std::printf("%8s %12s %14s\n", "Days", "Cloud ($)", "On-prem ($)");
    for (int days = 0; days <= 350; days += 25) {
        std::printf("%8d %12.0f %14.0f\n", days,
                    cost::cloudCostDollars(days),
                    cost::onPremCostDollars(days));
    }

    double crossover = cost::crossoverDays();
    std::printf("\nmeasured crossover: %.0f days of continuous modeling\n",
                crossover);
    std::printf("paper: cloud cheaper for up to ~200 days\n");
    std::printf("shape check (crossover in [180, 220]): %s\n",
                (crossover >= 180 && crossover <= 220) ? "PASS" : "FAIL");
    return 0;
}
