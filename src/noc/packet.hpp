/**
 * @file
 * OpenPiton-style NoC packet and flit definitions.
 *
 * BYOC interconnects tiles with three physical 64-bit-flit networks (NoC1:
 * requests, NoC2: responses/data, NoC3: writebacks/acks) to guarantee
 * protocol-level deadlock freedom. SMAPPIC's inter-node bridge and NoC-AXI4
 * memory controller both (de)serialize these packets, so the flit encoding
 * here is an explicit, round-trippable bit layout.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace smappic::noc
{

/** Index of the physical network a packet travels on. */
enum class NocIndex : std::uint8_t
{
    kNoc1 = 0, ///< Requests (BPC -> LLC, LLC -> memory).
    kNoc2 = 1, ///< Responses and data fills.
    kNoc3 = 2, ///< Writebacks, invalidation acks.
};

inline constexpr std::uint32_t kNumNocs = 3;

/** Message classes carried by the networks. */
enum class MsgType : std::uint8_t
{
    kReqRd = 0,       ///< Read-shared request (BPC load miss).
    kReqEx = 1,       ///< Read-exclusive / upgrade request (store miss).
    kReqWb = 2,       ///< BPC victim writeback request.
    kDataResp = 3,    ///< Data fill response.
    kAckResp = 4,     ///< Dataless acknowledgement.
    kInv = 5,         ///< Directory-initiated invalidation.
    kInvAck = 6,      ///< Invalidation acknowledgement.
    kDowngrade = 7,   ///< Directory-initiated M->S downgrade.
    kMemRd = 8,       ///< LLC miss read to the memory controller.
    kMemWr = 9,       ///< LLC victim write to the memory controller.
    kMemRdResp = 10,  ///< Memory controller read response.
    kMemWrResp = 11,  ///< Memory controller write acknowledgement.
    kNcLoad = 12,     ///< Non-cacheable load (device/accelerator fetch).
    kNcStore = 13,    ///< Non-cacheable store.
    kNcLoadResp = 14, ///< Non-cacheable load response.
    kNcStoreResp = 15, ///< Non-cacheable store acknowledgement.
    kInterrupt = 16,  ///< Interrupt packetizer notification.
    kCreditReturn = 17, ///< Inter-node bridge credit accounting.
};

/** Tile id that addresses a node's off-mesh chipset/bridge hub. */
inline constexpr TileId kOffChipTile = 0xff;

/** A single 64-bit flit with wormhole framing metadata. */
struct Flit
{
    std::uint64_t data = 0;
    bool head = false;
    bool tail = false;
};

/** Transaction-level NoC packet, serializable to flits and back. */
struct Packet
{
    NocIndex noc = NocIndex::kNoc1;
    NodeId srcNode = 0;
    TileId srcTile = 0;
    NodeId dstNode = 0;
    TileId dstTile = 0;
    MsgType type = MsgType::kReqRd;
    std::uint8_t mshr = 0;      ///< Requester's MSHR tag.
    std::uint8_t sizeLog2 = 6;  ///< log2 of the access size in bytes.
    Addr addr = 0;
    std::vector<std::uint64_t> payload; ///< Data flits (e.g. a cache line).

    /** Total flits when serialized: header + address + payload. */
    std::uint32_t
    flitCount() const
    {
        return 2 + static_cast<std::uint32_t>(payload.size());
    }

    /** Total wire footprint in bytes. */
    std::uint32_t bytesOnWire() const { return flitCount() * 8; }

    bool operator==(const Packet &other) const = default;
};

/**
 * Serializes @p pkt into 64-bit flits.
 *
 * Header layout (bit 63 downto 0):
 *   [63:56] dstNode  [55:48] dstTile  [47:40] srcNode  [39:32] srcTile
 *   [31:26] type     [25:18] mshr     [17:10] payload flits
 *   [9:8]   noc index [7:0]  sizeLog2
 */
std::vector<Flit> serialize(const Packet &pkt);

/**
 * Reassembles a packet from flits produced by serialize().
 * @throws PanicError on malformed framing.
 */
Packet deserialize(const std::vector<Flit> &flits);

/** Deserializes from raw 64-bit words (head/tail inferred from layout). */
Packet deserializeWords(const std::vector<std::uint64_t> &words);

} // namespace smappic::noc
