#include "noc/network.hpp"

#include <algorithm>

#include "obs/tracer.hpp"
#include "sim/event_queue.hpp"
#include "sim/log.hpp"

namespace smappic::noc
{

namespace
{

Dir
opposite(Dir d)
{
    switch (d) {
      case Dir::kNorth:
        return Dir::kSouth;
      case Dir::kSouth:
        return Dir::kNorth;
      case Dir::kEast:
        return Dir::kWest;
      case Dir::kWest:
        return Dir::kEast;
      default:
        panic("local port has no opposite");
    }
}

} // namespace

MeshNetwork::MeshNetwork(MeshTopology topo, std::uint32_t buffer_depth)
    : topo_(topo), bufferDepth_(buffer_depth)
{
    fatalIf(buffer_depth == 0, "NoC buffer depth must be positive");
    routers_.resize(topo_.tiles());
    for (auto &r : routers_) {
        r.credits.fill(buffer_depth);
        r.rrNext.fill(0);
    }
    // One endpoint per tile plus the off-chip hub at the end.
    endpoints_.resize(topo_.tiles() + 1);
    routerFlits_.assign(topo_.tiles(), 0);
    inActive_.assign(topo_.tiles(), 0);
}

void
MeshNetwork::setDeliverFn(TileId tile, DeliverFn fn)
{
    std::size_t idx =
        (tile == kOffChipTile) ? topo_.tiles() : static_cast<std::size_t>(tile);
    panicIf(idx >= endpoints_.size(), "deliver fn for unknown tile");
    endpoints_[idx].deliver = std::move(fn);
}

void
MeshNetwork::queuePacketFlits(Endpoint &ep, const Packet &pkt)
{
    bool to_off_chip = pkt.dstTile == kOffChipTile ||
                       (hasLocalNode_ && pkt.dstNode != localNode_);
    for (const Flit &f : serialize(pkt)) {
        ep.injectQueue.push_back(RoutedFlit{f, pkt.dstTile, to_off_chip});
        ++flitsInFlight_;
        ++injectableFlits_;
    }
}

void
MeshNetwork::inject(const Packet &pkt)
{
    panicIf(pkt.srcTile >= topo_.tiles() && pkt.srcTile != kOffChipTile,
            "inject from unknown tile");
    if (pkt.srcTile == kOffChipTile) {
        injectFromOffChip(pkt);
        return;
    }
    queuePacketFlits(endpoints_[pkt.srcTile], pkt);
}

void
MeshNetwork::injectFromOffChip(const Packet &pkt)
{
    panicIf(pkt.dstTile == kOffChipTile,
            "off-chip hub cannot send to itself");
    queuePacketFlits(endpoints_[topo_.tiles()], pkt);
}

std::uint32_t
MeshNetwork::routerIndex(TileId tile) const
{
    panicIf(tile >= topo_.tiles(), "router index out of range");
    return tile;
}

bool
MeshNetwork::hasNeighbor(std::uint32_t router, Dir d) const
{
    Coord c = topo_.coordOf(static_cast<TileId>(router));
    switch (d) {
      case Dir::kNorth:
        return c.y > 0;
      case Dir::kSouth:
        return c.y + 1 < static_cast<int>(topo_.rows()) &&
               static_cast<std::uint32_t>((c.y + 1) * topo_.cols() + c.x) <
                   topo_.tiles();
      case Dir::kEast:
        return c.x + 1 < static_cast<int>(topo_.cols()) &&
               static_cast<std::uint32_t>(c.y * topo_.cols() + c.x + 1) <
                   topo_.tiles();
      case Dir::kWest:
        return c.x > 0;
      default:
        return false;
    }
}

std::uint32_t
MeshNetwork::neighborIndex(std::uint32_t router, Dir d) const
{
    Coord c = topo_.coordOf(static_cast<TileId>(router));
    switch (d) {
      case Dir::kNorth:
        return topo_.tileAt(Coord{c.x, c.y - 1});
      case Dir::kSouth:
        return topo_.tileAt(Coord{c.x, c.y + 1});
      case Dir::kEast:
        return topo_.tileAt(Coord{c.x + 1, c.y});
      case Dir::kWest:
        return topo_.tileAt(Coord{c.x - 1, c.y});
      default:
        panic("local port has no neighbor");
    }
}

Dir
MeshNetwork::routeDir(std::uint32_t router, const RoutedFlit &f) const
{
    Coord here = topo_.coordOf(static_cast<TileId>(router));
    if (f.toOffChip) {
        // Route to column 0 first, then north; the final northbound move
        // out of tile 0 exits the mesh into the hub.
        if (here.x > 0)
            return Dir::kWest;
        return Dir::kNorth;
    }
    Coord dst = topo_.coordOf(f.dstTile);
    Dir choice = Dir::kLocal;
    if (here.x < dst.x)
        choice = Dir::kEast;
    else if (here.x > dst.x)
        choice = Dir::kWest;
    else if (here.y < dst.y)
        choice = Dir::kSouth;
    else if (here.y > dst.y)
        choice = Dir::kNorth;
    // Non-rectangular meshes (partial last row): an eastbound move from
    // the partial row may target a missing tile; detour north first (the
    // row above is always complete), which preserves deadlock freedom
    // because it only ever moves packets out of the unique partial row.
    if (choice != Dir::kLocal && !hasNeighbor(router, choice) &&
        here.y > 0)
        return Dir::kNorth;
    return choice;
}

void
MeshNetwork::activate(std::uint32_t r)
{
    if (inActive_[r])
        return;
    inActive_[r] = 1;
    active_.insert(std::lower_bound(active_.begin(), active_.end(), r), r);
}

void
MeshNetwork::compactActive()
{
    auto keep = [this](std::uint32_t r) {
        if (routerFlits_[r] > 0)
            return true;
        inActive_[r] = 0;
        return false;
    };
    active_.erase(
        std::partition(active_.begin(), active_.end(), keep),
        active_.end());
    // partition() can reorder the survivors; the worklist must visit
    // routers in ascending index like the full sweep does.
    std::sort(active_.begin(), active_.end());
}

void
MeshNetwork::pushFlit(std::uint32_t router, Dir port, const RoutedFlit &f)
{
    routers_[router].in[static_cast<std::size_t>(port)].fifo.push_back(f);
    ++routerFlits_[router];
    activate(router);
}

void
MeshNetwork::proposeRouter(std::uint32_t r)
{
    Router &router = routers_[r];
    for (std::size_t o = 0; o < kNumDirs; ++o) {
        Dir out = static_cast<Dir>(o);
        std::optional<Dir> chosen;
        if (router.outLock[o]) {
            Dir in = *router.outLock[o];
            if (!router.in[static_cast<std::size_t>(in)].fifo.empty())
                chosen = in;
        } else {
            // Round-robin over inputs whose head flit starts a packet
            // routed to this output.
            for (std::size_t k = 0; k < kNumDirs; ++k) {
                auto i = static_cast<std::size_t>(
                    (router.rrNext[o] + k) % kNumDirs);
                InputPort &port = router.in[i];
                if (port.fifo.empty() || port.lockedOut)
                    continue;
                const RoutedFlit &front = port.fifo.front();
                if (!front.flit.head)
                    continue;
                if (routeDir(r, front) != out)
                    continue;
                chosen = static_cast<Dir>(i);
                router.rrNext[o] =
                    static_cast<std::uint8_t>((i + 1) % kNumDirs);
                break;
            }
        }
        if (!chosen)
            continue;

        bool is_mesh_link = out != Dir::kLocal && hasNeighbor(r, out);
        bool is_hub_link =
            out == Dir::kNorth && r == 0 && !hasNeighbor(r, out);
        if (is_mesh_link && router.credits[o] == 0)
            continue;
        if (!is_mesh_link && !is_hub_link && out != Dir::kLocal)
            continue; // Route points off the mesh edge: drop-proof guard.
        moves_.push_back(Move{r, *chosen, out});
    }
}

void
MeshNetwork::tick()
{
    // Fully idle tick: nothing buffered anywhere, so no router, endpoint
    // or injection step can act — only the clock moves. O(1).
    if (flitsInFlight_ == 0 && !sweepTick_) {
        ++now_;
        return;
    }

    // Phase A: propose at most one flit movement per output port, based on
    // state at the start of the cycle. A router whose input FIFOs are all
    // empty proposes nothing and mutates no lock or round-robin state, so
    // the active-router worklist (ascending, like the sweep) is exact.
    moves_.clear();
    if (sweepTick_) {
        for (std::uint32_t r = 0; r < routers_.size(); ++r)
            proposeRouter(r);
    } else {
        compactActive();
        for (std::uint32_t r : active_)
            proposeRouter(r);
    }

    // Phase B: commit all proposed moves.
    for (const Move &m : moves_) {
        Router &router = routers_[m.router];
        auto in_idx = static_cast<std::size_t>(m.inPort);
        auto out_idx = static_cast<std::size_t>(m.outPort);
        InputPort &in = router.in[in_idx];
        RoutedFlit flit = in.fifo.front();
        in.fifo.pop_front();
        --routerFlits_[m.router];
        ++flitHops_;
        if (tracer_ && flit.flit.head) {
            obs::TraceEvent ev = obs::event(obs::EventKind::kNocHop);
            ev.cycle = now_;
            ev.arg = flit.dstTile;
            ev.extra = static_cast<std::uint32_t>(m.outPort);
            ev.node = static_cast<std::uint16_t>(localNode_);
            ev.tile = static_cast<std::uint16_t>(m.router);
            ev.flags = flit.toOffChip ? 1 : 0;
            tracer_->record(ev);
        }

        // Maintain wormhole locks.
        if (flit.flit.head && !flit.flit.tail) {
            router.outLock[out_idx] = m.inPort;
            in.lockedOut = m.outPort;
        }
        if (flit.flit.tail) {
            router.outLock[out_idx].reset();
            in.lockedOut.reset();
        }

        // Return a credit upstream for the buffer slot we just freed.
        if (m.inPort != Dir::kLocal) {
            bool from_hub = m.inPort == Dir::kNorth && m.router == 0 &&
                            !hasNeighbor(m.router, Dir::kNorth);
            if (!from_hub) {
                std::uint32_t up = neighborIndex(m.router, m.inPort);
                auto up_out =
                    static_cast<std::size_t>(opposite(m.inPort));
                routers_[up].credits[up_out] += 1;
            }
            // Hub->router0 injection checks FIFO occupancy directly.
        }

        if (m.outPort == Dir::kLocal) {
            Endpoint &ep = endpoints_[m.router];
            ep.assembling.push_back(flit.flit);
            if (flit.flit.tail) {
                Packet pkt = deserialize(ep.assembling);
                flitsInFlight_ -= ep.assembling.size();
                ep.assembling.clear();
                ++deliveredPackets_;
                if (tracer_)
                    traceDeliver(pkt,
                                 static_cast<std::uint16_t>(m.router));
                if (ep.deliver)
                    ep.deliver(pkt);
            }
        } else if (m.outPort == Dir::kNorth && m.router == 0 &&
                   !hasNeighbor(m.router, Dir::kNorth)) {
            // Northbound out of tile 0: exit to the off-chip hub.
            Endpoint &hub = endpoints_[topo_.tiles()];
            hub.assembling.push_back(flit.flit);
            if (flit.flit.tail) {
                Packet pkt = deserialize(hub.assembling);
                flitsInFlight_ -= hub.assembling.size();
                hub.assembling.clear();
                ++deliveredPackets_;
                if (tracer_)
                    traceDeliver(pkt, obs::kTraceOffChip);
                if (hub.deliver)
                    hub.deliver(pkt);
            }
        } else {
            std::uint32_t nb = neighborIndex(m.router, m.outPort);
            pushFlit(nb, opposite(m.outPort), flit);
            router.credits[out_idx] -= 1;
        }
    }

    // Injection: one flit per endpoint per cycle, as buffer space allows.
    if (injectableFlits_ > 0) {
        for (std::uint32_t t = 0; t < topo_.tiles(); ++t) {
            Endpoint &ep = endpoints_[t];
            if (ep.injectQueue.empty())
                continue;
            InputPort &local = routers_[t].in[static_cast<std::size_t>(
                Dir::kLocal)];
            if (local.fifo.size() < bufferDepth_) {
                pushFlit(t, Dir::kLocal, ep.injectQueue.front());
                ep.injectQueue.pop_front();
                --injectableFlits_;
            }
        }
        Endpoint &hub = endpoints_[topo_.tiles()];
        if (!hub.injectQueue.empty()) {
            InputPort &north =
                routers_[0].in[static_cast<std::size_t>(Dir::kNorth)];
            if (north.fifo.size() < bufferDepth_) {
                pushFlit(0, Dir::kNorth, hub.injectQueue.front());
                hub.injectQueue.pop_front();
                --injectableFlits_;
            }
        }
    }

    ++now_;
}

void
MeshNetwork::run(Cycles cycles)
{
    for (Cycles c = 0; c < cycles; ++c)
        tick();
}

Cycles
MeshNetwork::nextBusyCycle() const
{
    return flitsInFlight_ > 0 ? now_ : sim::kNoDeadline;
}

void
MeshNetwork::advance(Cycles target)
{
    panicIf(flitsInFlight_ != 0,
            "bulk advance over a mesh with flits in flight");
    panicIf(target < now_, "mesh clock cannot rewind");
    now_ = target;
}

void
MeshNetwork::setTracer(obs::Tracer *tracer)
{
    tracer_ = tracer ? tracer->handleFor(obs::Component::kNoc) : nullptr;
}

void
MeshNetwork::traceDeliver(const Packet &pkt, std::uint16_t tile)
{
    obs::TraceEvent ev = obs::event(obs::EventKind::kNocDeliver);
    ev.cycle = now_;
    ev.arg = pkt.addr;
    ev.extra = (static_cast<std::uint32_t>(pkt.srcNode) << 16) |
               static_cast<std::uint32_t>(pkt.srcTile);
    ev.node = static_cast<std::uint16_t>(localNode_);
    ev.tile = tile;
    ev.flags = static_cast<std::uint8_t>(pkt.type);
    tracer_->record(ev);
}

std::uint64_t
MeshNetwork::bufferedFlits() const
{
    std::uint64_t total = 0;
    for (const auto &r : routers_) {
        for (const auto &p : r.in)
            total += p.fifo.size();
    }
    return total;
}

} // namespace smappic::noc
