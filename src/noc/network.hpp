/**
 * @file
 * Flit-level 2D-mesh network with wormhole routing and credit-based flow
 * control, modelling one physical NoC of a BYOC node.
 *
 * Dimension-ordered (X then Y) routing plus per-link credits make each
 * physical network deadlock-free; protocol deadlock is avoided by BYOC's
 * three-network split, which the platform layer preserves by instantiating
 * one MeshNetwork per NocIndex.
 *
 * The network is cycle-ticked with a two-phase (propose/commit) update so
 * router evaluation order cannot affect results.
 */

#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "noc/packet.hpp"
#include "noc/topology.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::obs
{
class Tracer;
}

namespace smappic::noc
{

/** Router port directions. */
enum class Dir : std::uint8_t
{
    kLocal = 0,
    kNorth = 1,
    kEast = 2,
    kSouth = 3,
    kWest = 4,
};

inline constexpr std::size_t kNumDirs = 5;

/** Callback invoked when a fully reassembled packet leaves the network. */
using DeliverFn = std::function<void(const Packet &)>;

/**
 * One physical mesh NoC. Tiles inject packets through inject(); ejected
 * packets are handed to per-tile delivery callbacks. Tile kOffChipTile is
 * the off-mesh hub north of tile 0 (chipset + inter-node bridge).
 */
class MeshNetwork
{
  public:
    /**
     * @param topo Mesh geometry.
     * @param buffer_depth Input FIFO depth per port, in flits.
     */
    MeshNetwork(MeshTopology topo, std::uint32_t buffer_depth = 4);

    /** Registers the packet sink for @p tile (or kOffChipTile). */
    void setDeliverFn(TileId tile, DeliverFn fn);

    /**
     * Tells the network which node it belongs to: packets whose dstNode
     * differs are routed to the off-chip hub (toward the inter-node
     * bridge) regardless of their dstTile.
     */
    void
    setLocalNode(NodeId node)
    {
        localNode_ = node;
        hasLocalNode_ = true;
    }

    /**
     * Queues @p pkt for injection at its source tile. Injection moves flits
     * into the local input port as credits allow.
     */
    void inject(const Packet &pkt);

    /** Injects at the off-chip hub (bridge/chipset pushing into the mesh). */
    void injectFromOffChip(const Packet &pkt);

    /**
     * Attaches the platform tracer (null to detach). The mesh emits
     * kNocHop for every head-flit router traversal and kNocDeliver for
     * every ejected packet; one null test per event when disabled.
     */
    void setTracer(obs::Tracer *tracer);

    /** Advances the network by one cycle. */
    void tick();

    /** Runs @p cycles ticks. */
    void run(Cycles cycles);

    /** True when no flit is buffered or in flight anywhere. O(1): the
     *  network keeps a flits-in-flight count across inject queues,
     *  router FIFOs and reassembly buffers. */
    bool idle() const { return flitsInFlight_ == 0; }

    /**
     * Horizon query for idle skipping: the earliest cycle at which the
     * network can move a flit — now() while any flit is in flight (the
     * mesh is self-timed: a buffered flit can move every cycle), or
     * sim::kNoDeadline when idle. New work only arrives via inject()/
     * injectFromOffChip(), which re-arm the horizon immediately.
     */
    Cycles nextBusyCycle() const;

    /**
     * Bulk clock advance over a provably inert span: sets now() to
     * @p target without ticking. Exactly equivalent to target - now()
     * tick() calls while idle — an idle tick mutates nothing but the
     * cycle counter. Panics when the network is not idle or @p target
     * is in the past.
     */
    void advance(Cycles target);

    /**
     * Test hook: forces the original full-router sweep in tick() instead
     * of the active-router worklist. The two are exactly equivalent — a
     * router with empty input FIFOs proposes nothing and mutates no
     * round-robin or lock state — and the randomized equivalence test
     * pins that by diffing delivery order, traces and stats.
     */
    void setSweepTick(bool sweep) { sweepTick_ = sweep; }

    /** Current network cycle. */
    Cycles now() const { return now_; }

    const MeshTopology &topology() const { return topo_; }

    std::uint64_t deliveredPackets() const { return deliveredPackets_; }
    std::uint64_t flitHops() const { return flitHops_; }

    /** Sum of buffered flits (for credit-conservation checks). */
    std::uint64_t bufferedFlits() const;

    /** Buffer depth per input port, in flits. */
    std::uint32_t bufferDepth() const { return bufferDepth_; }

  private:
    struct RoutedFlit
    {
        Flit flit;
        // Routing state is carried with every flit of a packet; hardware
        // keeps it per-wormhole, which is equivalent.
        TileId dstTile = 0;
        bool toOffChip = false;
    };

    struct InputPort
    {
        std::deque<RoutedFlit> fifo;
        std::optional<Dir> lockedOut; ///< Wormhole output lock.
    };

    struct Router
    {
        std::array<InputPort, kNumDirs> in;
        std::array<std::uint32_t, kNumDirs> credits; ///< Toward neighbors.
        std::array<std::optional<Dir>, kNumDirs> outLock; ///< Owning input.
        std::array<std::uint8_t, kNumDirs> rrNext; ///< Round-robin pointers.
    };

    struct Move
    {
        std::uint32_t router;
        Dir inPort;
        Dir outPort;
    };

    /** Per-tile packet-reassembly and injection state. */
    struct Endpoint
    {
        std::deque<RoutedFlit> injectQueue;
        std::vector<Flit> assembling;
        DeliverFn deliver;
    };

    std::uint32_t routerIndex(TileId tile) const;
    bool hasNeighbor(std::uint32_t router, Dir d) const;
    std::uint32_t neighborIndex(std::uint32_t router, Dir d) const;
    Dir routeDir(std::uint32_t router, const RoutedFlit &f) const;
    void queuePacketFlits(Endpoint &ep, const Packet &pkt);

    /** Phase A for one router: proposes at most one flit movement per
     *  output port into moves_, based on state at the cycle start. */
    void proposeRouter(std::uint32_t r);
    /** Adds @p r to the active-router worklist (keeps it sorted so the
     *  worklist visits routers in the same ascending order as the full
     *  sweep — proposal order is commit order). */
    void activate(std::uint32_t r);
    /** Drops worklist entries whose router drained since the last tick. */
    void compactActive();
    /** FIFO push with worklist/occupancy bookkeeping. */
    void pushFlit(std::uint32_t router, Dir port, const RoutedFlit &f);

    MeshTopology topo_;
    std::uint32_t bufferDepth_;
    std::vector<Router> routers_;
    std::vector<Endpoint> endpoints_; ///< One per tile + off-chip hub last.
    /** Emits a kNocDeliver event for @p pkt ejected at @p tile. */
    void traceDeliver(const Packet &pkt, std::uint16_t tile);

    NodeId localNode_ = 0;
    bool hasLocalNode_ = false;
    obs::Tracer *tracer_ = nullptr;
    Cycles now_ = 0;
    std::uint64_t deliveredPackets_ = 0;
    std::uint64_t flitHops_ = 0;

    // Activity tracking: tick() visits only routers that can move a flit.
    std::vector<std::uint32_t> routerFlits_; ///< Flits across a router's FIFOs.
    std::vector<std::uint8_t> inActive_;     ///< Worklist membership.
    std::vector<std::uint32_t> active_;      ///< Sorted active routers.
    std::uint64_t flitsInFlight_ = 0; ///< Inject + FIFO + reassembly flits.
    std::uint64_t injectableFlits_ = 0; ///< Flits waiting in inject queues.
    bool sweepTick_ = false;            ///< Test hook: full-sweep tick().
    std::vector<Move> moves_;           ///< Phase A scratch (reused).
};

} // namespace smappic::noc
