#include "noc/packet.hpp"

#include "sim/log.hpp"

namespace smappic::noc
{

namespace
{

constexpr std::uint64_t
field(std::uint64_t value, unsigned shift, unsigned bits)
{
    return (value & ((1ULL << bits) - 1)) << shift;
}

constexpr std::uint64_t
extract(std::uint64_t word, unsigned shift, unsigned bits)
{
    return (word >> shift) & ((1ULL << bits) - 1);
}

} // namespace

std::vector<Flit>
serialize(const Packet &pkt)
{
    panicIf(pkt.payload.size() > 255, "NoC packet payload too long");
    std::uint64_t header = 0;
    header |= field(pkt.dstNode, 56, 8);
    header |= field(pkt.dstTile, 48, 8);
    header |= field(pkt.srcNode, 40, 8);
    header |= field(pkt.srcTile, 32, 8);
    header |= field(static_cast<std::uint64_t>(pkt.type), 26, 6);
    header |= field(pkt.mshr, 18, 8);
    header |= field(pkt.payload.size(), 10, 8);
    header |= field(static_cast<std::uint64_t>(pkt.noc), 8, 2);
    header |= field(pkt.sizeLog2, 0, 8);

    std::vector<Flit> flits;
    flits.reserve(pkt.flitCount());
    flits.push_back(Flit{header, true, false});
    flits.push_back(Flit{pkt.addr, false, pkt.payload.empty()});
    for (std::size_t i = 0; i < pkt.payload.size(); ++i) {
        flits.push_back(
            Flit{pkt.payload[i], false, i + 1 == pkt.payload.size()});
    }
    return flits;
}

Packet
deserialize(const std::vector<Flit> &flits)
{
    panicIf(flits.size() < 2, "NoC packet needs header and address flits");
    panicIf(!flits.front().head, "first flit must be a head flit");
    panicIf(!flits.back().tail, "last flit must be a tail flit");
    std::vector<std::uint64_t> words;
    words.reserve(flits.size());
    for (const auto &f : flits)
        words.push_back(f.data);
    return deserializeWords(words);
}

Packet
deserializeWords(const std::vector<std::uint64_t> &words)
{
    panicIf(words.size() < 2, "NoC packet needs header and address words");
    std::uint64_t header = words[0];
    Packet pkt;
    pkt.dstNode = static_cast<NodeId>(extract(header, 56, 8));
    pkt.dstTile = static_cast<TileId>(extract(header, 48, 8));
    pkt.srcNode = static_cast<NodeId>(extract(header, 40, 8));
    pkt.srcTile = static_cast<TileId>(extract(header, 32, 8));
    pkt.type = static_cast<MsgType>(extract(header, 26, 6));
    pkt.mshr = static_cast<std::uint8_t>(extract(header, 18, 8));
    auto payload_flits = static_cast<std::size_t>(extract(header, 10, 8));
    pkt.noc = static_cast<NocIndex>(extract(header, 8, 2));
    pkt.sizeLog2 = static_cast<std::uint8_t>(extract(header, 0, 8));
    pkt.addr = words[1];
    panicIf(words.size() != 2 + payload_flits,
            "NoC packet length does not match header length field");
    pkt.payload.assign(words.begin() + 2, words.end());
    return pkt;
}

} // namespace smappic::noc
