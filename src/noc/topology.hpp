/**
 * @file
 * 2D-mesh geometry shared by the flit-level router network and the
 * transaction-level timing model (which converts routes to hop counts).
 */

#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "noc/packet.hpp"
#include "sim/log.hpp"
#include "sim/types.hpp"

namespace smappic::noc
{

/** Coordinates of a router in the mesh. */
struct Coord
{
    int x = 0;
    int y = 0;

    bool operator==(const Coord &other) const = default;
};

/**
 * Near-square 2D mesh holding @p tiles tiles, numbered row-major. Tile 0 is
 * at (0,0); the off-chip port (chipset + inter-node bridge) hangs off tile
 * 0's north edge, matching SMAPPIC's "route inter-node packets into tile 0,
 * then northbound" scheme.
 */
class MeshTopology
{
  public:
    explicit MeshTopology(std::uint32_t tiles)
        : tiles_(tiles)
    {
        fatalIf(tiles == 0, "mesh must contain at least one tile");
        cols_ = 1;
        while (cols_ * cols_ < tiles)
            ++cols_;
        rows_ = (tiles + cols_ - 1) / cols_;
    }

    std::uint32_t tiles() const { return tiles_; }
    std::uint32_t cols() const { return cols_; }
    std::uint32_t rows() const { return rows_; }

    /** Mesh coordinate of @p tile. */
    Coord
    coordOf(TileId tile) const
    {
        panicIf(tile >= tiles_ && tile != kOffChipTile,
                "tile id out of range");
        if (tile == kOffChipTile)
            return Coord{0, -1};
        return Coord{static_cast<int>(tile % cols_),
                     static_cast<int>(tile / cols_)};
    }

    /** Tile at mesh coordinate @p c; must be a valid tile. */
    TileId
    tileAt(Coord c) const
    {
        panicIf(c.x < 0 || c.y < 0, "coordinate off mesh");
        auto tile = static_cast<TileId>(c.y) * cols_ + static_cast<TileId>(c.x);
        panicIf(tile >= tiles_, "coordinate maps past last tile");
        return tile;
    }

    /** Manhattan (XY-route) hop count between two tiles. */
    std::uint32_t
    hops(TileId from, TileId to) const
    {
        Coord a = coordOf(from);
        Coord b = coordOf(to);
        return static_cast<std::uint32_t>(std::abs(a.x - b.x) +
                                          std::abs(a.y - b.y));
    }

    /** Hops from @p tile to the off-chip port (tile 0 then one north hop). */
    std::uint32_t
    hopsToOffChip(TileId tile) const
    {
        return hops(tile, 0) + 1;
    }

  private:
    std::uint32_t tiles_;
    std::uint32_t cols_ = 1;
    std::uint32_t rows_ = 1;
};

} // namespace smappic::noc
