/**
 * @file
 * Checkpoint policy and checkpoint-file utilities on top of the SMCK
 * container (snap/state_io.hpp): the SnapshotConfig knob carried by
 * PrototypeConfig, deterministic checkpoint naming, retention pruning,
 * and the inspect/validate/diff primitives behind tools/snap_ctl.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"
#include "snap/state_io.hpp"

namespace smappic::snap
{

/** Periodic-checkpoint knobs carried by PrototypeConfig. */
struct SnapshotConfig
{
    /** Cycles between automatic barrier checkpoints; 0 disables them.
     *  Checkpoints land on the first quantum barrier at or past each
     *  interval mark, so the set of checkpoint cycles is a pure function
     *  of (config, workload), never of worker count. */
    Cycles interval = 0;
    /** Directory receiving smck-<cycle>.smck files (created on demand). */
    std::string dir = "checkpoints";
    /** Newest checkpoints kept on disk; older ones are pruned. 0 keeps
     *  everything. */
    std::uint32_t keep = 2;

    bool enabled() const { return interval > 0; }
};

/** Parsed kMeta section plus the file's section table. */
struct SnapshotInfo
{
    std::uint32_t version = 0;
    std::uint64_t configHash = 0;
    std::string configName; ///< AxBxC spec of the writing prototype.
    std::uint64_t seed = 0;
    std::uint32_t nodes = 0;
    std::uint32_t tilesPerNode = 0;
    Cycles cycle = 0;            ///< Virtual time of the checkpoint.
    std::uint64_t instret = 0;   ///< Committed instructions, all harts.
    std::vector<Reader::SectionDesc> sections;
};

/** Reads header + kMeta of @p path. @throws FatalError when malformed. */
SnapshotInfo inspect(const std::string &path);

/**
 * Full-file validation: header, every section's CRC, and kMeta sanity.
 * @param error Receives a description of the first failure (may be null).
 * @return True when the file is a well-formed checkpoint.
 */
bool validate(const std::string &path, std::string *error = nullptr);

/**
 * Section-level comparison of two checkpoints. Returns human-readable
 * difference lines ("cache: 1324 vs 1388 bytes, payloads differ"), empty
 * when the files are equivalent. @throws FatalError on malformed input.
 */
std::vector<std::string> diff(const std::string &path_a,
                              const std::string &path_b);

/** Canonical file name for a checkpoint at @p cycle. */
std::string checkpointFileName(Cycles cycle);

/** Newest checkpoint file in @p dir ("" when none exist). */
std::string latestCheckpoint(const std::string &dir);

/** All checkpoint files in @p dir, oldest first. */
std::vector<std::string> listCheckpoints(const std::string &dir);

/** Deletes all but the newest @p keep checkpoints (0 keeps everything). */
void pruneCheckpoints(const std::string &dir, std::uint32_t keep);

} // namespace smappic::snap
