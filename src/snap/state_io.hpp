/**
 * @file
 * SMCK: the platform's versioned, checksummed binary checkpoint format.
 *
 * A checkpoint file is a flat container of tagged sections:
 *
 *   header:  magic "SMCK" | u32 version | u64 config hash |
 *            u32 section count | u32 reserved
 *   section: u32 tag | u32 reserved | u64 payload size |
 *            u32 payload CRC-32 | u32 reserved | payload bytes
 *
 * Everything is little-endian. The config hash fingerprints the
 * PrototypeConfig that produced the file, so a restore into a differently
 * shaped prototype fails up front instead of corrupting state. Each
 * section payload carries its own CRC-32 (the same polynomial the
 * reliable bridge uses), verified on open, so torn or bit-rotted files
 * are rejected deterministically.
 *
 * Determinism rules for writers of section payloads:
 *  - no wall-clock timestamps or host-dependent values anywhere — files
 *    written at the same quantum barrier must be byte-identical across
 *    1/2/4-worker runs;
 *  - unordered containers are serialized in sorted key order;
 *  - doubles are serialized as raw bit patterns (f64), never re-derived.
 *
 * Layering: this module sits directly above sim/ (for types, logging,
 * crc32 and the sim-type helpers below) and below every other module, so
 * components implement saveState(Writer&)/restoreState(Reader&) members
 * in their own .cpp files without layering violations.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::snap
{

inline constexpr std::uint32_t kSmckVersion = 1;

/** Section tags. Values are part of the on-disk format: never renumber. */
enum class Section : std::uint32_t
{
    kMeta = 1,    ///< Config name, seed, geometry, checkpoint cycle.
    kTime = 2,    ///< Event-queue clock, CLINT mtime, probe clock.
    kResume = 3,  ///< Phased-run bookkeeping (budgets, boundary, shards).
    kCores = 4,   ///< Architectural + microarchitectural core state.
    kMemory = 5,  ///< Sparse MainMemory pages.
    kCache = 6,   ///< Directory, cache arrays, servers/shapers.
    kBridges = 7, ///< Inter-node bridge link-layer state.
    kFabric = 8,  ///< PCIe fabric links + counters.
    kDevices = 9, ///< CLINT, PLIC, UARTs, serials, SD cards.
    kStats = 10,  ///< Root StatRegistry + per-node shards.
    kTracer = 11, ///< Tracer ring contents and cursors.
    kFault = 12,  ///< Fault-injector site streams + counters.
};

/** Streams one SMCK file. Sections are buffered in memory until end()
 *  so the size/CRC header fields are exact; finish() patches the file
 *  header. All errors surface as FatalError via the stream state. */
class Writer
{
  public:
    explicit Writer(std::ostream &os);

    void setConfigHash(std::uint64_t hash) { configHash_ = hash; }

    /** Opens a section; all puts until end() land in its payload. */
    void begin(Section tag);
    /** Closes the open section and flushes it to the stream. */
    void end();
    /** Patches the header; call once after the last section. */
    void finish();

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void f64(double v);
    void boolean(bool v) { u8(v ? 1 : 0); }
    void bytes(const void *data, std::size_t len);
    void str(const std::string &s);

  private:
    std::ostream &os_;
    std::uint64_t configHash_ = 0;
    std::uint32_t sections_ = 0;
    bool open_ = false;
    std::uint32_t tag_ = 0;
    std::vector<std::uint8_t> buf_;
};

/** Loads and validates one SMCK file. The constructor parses the header
 *  and indexes the sections; open() CRC-verifies a section and positions
 *  the read cursor. Malformed input throws FatalError. */
class Reader
{
  public:
    struct SectionDesc
    {
        std::uint32_t tag = 0;
        std::uint64_t size = 0;
        std::uint32_t crc = 0;
        std::uint64_t offset = 0; ///< Payload offset within the file.
    };

    explicit Reader(const std::string &path);

    std::uint32_t version() const { return version_; }
    std::uint64_t configHash() const { return configHash_; }
    const std::vector<SectionDesc> &sections() const { return sections_; }

    bool has(Section tag) const;

    /** Positions the cursor at @p tag's payload after CRC-verifying it.
     *  @throws FatalError when missing or corrupt. */
    void open(Section tag);

    /** Unread payload bytes of the open section. */
    std::uint64_t remaining() const { return end_ - cursor_; }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    double f64();
    bool boolean() { return u8() != 0; }
    void bytes(void *out, std::size_t len);
    std::string str();

  private:
    const SectionDesc *find(Section tag) const;
    void need(std::size_t len) const;

    std::vector<std::uint8_t> data_;
    std::uint32_t version_ = 0;
    std::uint64_t configHash_ = 0;
    std::vector<SectionDesc> sections_;
    std::uint64_t cursor_ = 0;
    std::uint64_t end_ = 0;
};

// Serialization helpers for sim-layer types (sim/ stays snap-free; these
// use the restore accessors the sim classes expose).

void saveServer(Writer &w, const sim::QueueServer &server);
void restoreServer(Reader &r, sim::QueueServer &server);

void saveShaper(Writer &w, const sim::TrafficShaper &shaper);
void restoreShaper(Reader &r, sim::TrafficShaper &shaper);

void saveRegistry(Writer &w, const sim::StatRegistry &reg);
/** Resets @p reg, then rebuilds every stat recorded in the payload. */
void restoreRegistry(Reader &r, sim::StatRegistry &reg);

void saveFaultInjector(Writer &w, const sim::FaultInjector &fi);
void restoreFaultInjector(Reader &r, sim::FaultInjector &fi);

} // namespace smappic::snap
