#include "snap/state_io.hpp"

#include <cstring>
#include <fstream>
#include <ostream>

#include "sim/log.hpp"

namespace smappic::snap
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'S', 'M', 'C', 'K'};
constexpr std::size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4;
constexpr std::size_t kSectionHeaderBytes = 4 + 4 + 8 + 4 + 4;

void
putLe(std::vector<std::uint8_t> &buf, std::uint64_t v, std::size_t bytes)
{
    for (std::size_t i = 0; i < bytes; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
writeLe(std::ostream &os, std::uint64_t v, std::size_t bytes)
{
    std::uint8_t raw[8];
    for (std::size_t i = 0; i < bytes; ++i)
        raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    os.write(reinterpret_cast<const char *>(raw),
             static_cast<std::streamsize>(bytes));
}

std::uint64_t
bitsOf(double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

double
doubleOf(std::uint64_t bits)
{
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

} // namespace

Writer::Writer(std::ostream &os) : os_(os)
{
    // Placeholder header; finish() patches section count and config hash.
    os_.write(reinterpret_cast<const char *>(kMagic), 4);
    writeLe(os_, kSmckVersion, 4);
    writeLe(os_, 0, 8);
    writeLe(os_, 0, 4);
    writeLe(os_, 0, 4);
}

void
Writer::begin(Section tag)
{
    panicIf(open_, "SMCK writer: begin() with a section already open");
    open_ = true;
    tag_ = static_cast<std::uint32_t>(tag);
    buf_.clear();
}

void
Writer::end()
{
    panicIf(!open_, "SMCK writer: end() without begin()");
    open_ = false;
    std::uint32_t crc =
        buf_.empty() ? 0 : sim::crc32(buf_.data(), buf_.size());
    writeLe(os_, tag_, 4);
    writeLe(os_, 0, 4);
    writeLe(os_, buf_.size(), 8);
    writeLe(os_, crc, 4);
    writeLe(os_, 0, 4);
    if (!buf_.empty())
        os_.write(reinterpret_cast<const char *>(buf_.data()),
                  static_cast<std::streamsize>(buf_.size()));
    ++sections_;
    buf_.clear();
}

void
Writer::finish()
{
    panicIf(open_, "SMCK writer: finish() with a section open");
    os_.seekp(8, std::ios::beg);
    writeLe(os_, configHash_, 8);
    writeLe(os_, sections_, 4);
    os_.seekp(0, std::ios::end);
    os_.flush();
}

void
Writer::u16(std::uint16_t v)
{
    putLe(buf_, v, 2);
}

void
Writer::u32(std::uint32_t v)
{
    putLe(buf_, v, 4);
}

void
Writer::u64(std::uint64_t v)
{
    putLe(buf_, v, 8);
}

void
Writer::f64(double v)
{
    putLe(buf_, bitsOf(v), 8);
}

void
Writer::bytes(const void *data, std::size_t len)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    buf_.insert(buf_.end(), p, p + len);
}

void
Writer::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    bytes(s.data(), s.size());
}

Reader::Reader(const std::string &path)
{
    std::ifstream is(path, std::ios::binary | std::ios::ate);
    fatalIf(!is, "SMCK: cannot open '" + path + "'");
    std::streamsize size = is.tellg();
    is.seekg(0, std::ios::beg);
    data_.resize(static_cast<std::size_t>(size));
    if (size > 0)
        is.read(reinterpret_cast<char *>(data_.data()), size);
    fatalIf(!is, "SMCK: short read on '" + path + "'");

    fatalIf(data_.size() < kHeaderBytes,
            "SMCK: '" + path + "' is too small to be a checkpoint");
    fatalIf(std::memcmp(data_.data(), kMagic, 4) != 0,
            "SMCK: '" + path + "' has no SMCK magic");

    auto le = [&](std::uint64_t off, std::size_t bytes) {
        std::uint64_t v = 0;
        for (std::size_t i = 0; i < bytes; ++i)
            v |= static_cast<std::uint64_t>(data_[off + i]) << (8 * i);
        return v;
    };
    version_ = static_cast<std::uint32_t>(le(4, 4));
    fatalIf(version_ != kSmckVersion,
            strfmt("SMCK: '%s' is format version %u, this build reads %u",
                   path.c_str(), version_, kSmckVersion));
    configHash_ = le(8, 8);
    auto count = static_cast<std::uint32_t>(le(16, 4));

    std::uint64_t at = kHeaderBytes;
    for (std::uint32_t s = 0; s < count; ++s) {
        fatalIf(at + kSectionHeaderBytes > data_.size(),
                "SMCK: '" + path + "' is truncated in a section header");
        SectionDesc d;
        d.tag = static_cast<std::uint32_t>(le(at, 4));
        d.size = le(at + 8, 8);
        d.crc = static_cast<std::uint32_t>(le(at + 16, 4));
        d.offset = at + kSectionHeaderBytes;
        fatalIf(d.offset + d.size > data_.size(),
                "SMCK: '" + path + "' is truncated in a section payload");
        sections_.push_back(d);
        at = d.offset + d.size;
    }
}

const Reader::SectionDesc *
Reader::find(Section tag) const
{
    for (const SectionDesc &d : sections_) {
        if (d.tag == static_cast<std::uint32_t>(tag))
            return &d;
    }
    return nullptr;
}

bool
Reader::has(Section tag) const
{
    return find(tag) != nullptr;
}

void
Reader::open(Section tag)
{
    const SectionDesc *d = find(tag);
    fatalIf(!d, strfmt("SMCK: checkpoint has no section %u",
                       static_cast<std::uint32_t>(tag)));
    std::uint32_t crc =
        d->size == 0 ? 0
                     : sim::crc32(data_.data() + d->offset,
                                  static_cast<std::size_t>(d->size));
    fatalIf(crc != d->crc,
            strfmt("SMCK: section %u fails its CRC (stored %08x, "
                   "computed %08x) — the checkpoint is corrupt",
                   d->tag, d->crc, crc));
    cursor_ = d->offset;
    end_ = d->offset + d->size;
}

void
Reader::need(std::size_t len) const
{
    fatalIf(cursor_ + len > end_,
            "SMCK: section payload ends mid-field (corrupt or "
            "version-skewed checkpoint)");
}

std::uint8_t
Reader::u8()
{
    need(1);
    return data_[cursor_++];
}

std::uint16_t
Reader::u16()
{
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i)
        v = static_cast<std::uint16_t>(v |
                                       (data_[cursor_ + i] << (8 * i)));
    cursor_ += 2;
    return v;
}

std::uint32_t
Reader::u32()
{
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(data_[cursor_ + i]) << (8 * i);
    cursor_ += 4;
    return v;
}

std::uint64_t
Reader::u64()
{
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(data_[cursor_ + i]) << (8 * i);
    cursor_ += 8;
    return v;
}

double
Reader::f64()
{
    return doubleOf(u64());
}

void
Reader::bytes(void *out, std::size_t len)
{
    need(len);
    std::memcpy(out, data_.data() + cursor_, len);
    cursor_ += len;
}

std::string
Reader::str()
{
    std::uint32_t len = u32();
    need(len);
    std::string s(reinterpret_cast<const char *>(data_.data() + cursor_),
                  len);
    cursor_ += len;
    return s;
}

void
saveServer(Writer &w, const sim::QueueServer &server)
{
    const auto &lanes = server.lanes();
    w.u32(static_cast<std::uint32_t>(lanes.size()));
    for (Cycles c : lanes)
        w.u64(c);
    w.u64(server.busyCycles());
    w.u64(server.requests());
    w.u64(server.queuedCycles());
}

void
restoreServer(Reader &r, sim::QueueServer &server)
{
    std::uint32_t ways = r.u32();
    fatalIf(ways != server.ways(),
            "SMCK: queue-server way count mismatch (config skew)");
    std::vector<Cycles> lanes(ways);
    for (Cycles &c : lanes)
        c = r.u64();
    Cycles busy = r.u64();
    std::uint64_t requests = r.u64();
    Cycles queued = r.u64();
    server.restore(std::move(lanes), busy, requests, queued);
}

void
saveShaper(Writer &w, const sim::TrafficShaper &shaper)
{
    saveServer(w, shaper.server());
    w.u64(shaper.bytesSent());
}

void
restoreShaper(Reader &r, sim::TrafficShaper &shaper)
{
    restoreServer(r, shaper.server());
    shaper.setBytesSent(r.u64());
}

void
saveRegistry(Writer &w, const sim::StatRegistry &reg)
{
    // std::map iteration is already name-sorted: deterministic layout.
    w.u32(static_cast<std::uint32_t>(reg.counters().size()));
    for (const auto &[name, c] : reg.counters()) {
        w.str(name);
        w.u64(c.value());
    }
    w.u32(static_cast<std::uint32_t>(reg.summaries().size()));
    for (const auto &[name, s] : reg.summaries()) {
        w.str(name);
        w.u64(s.count());
        w.f64(s.sum());
        w.f64(s.sumSquares());
        w.f64(s.rawMin());
        w.f64(s.rawMax());
    }
    w.u32(static_cast<std::uint32_t>(reg.histograms().size()));
    for (const auto &[name, h] : reg.histograms()) {
        w.str(name);
        w.u32(static_cast<std::uint32_t>(h.buckets()));
        w.f64(h.bucketWidth());
        for (std::size_t i = 0; i < h.buckets(); ++i)
            w.u64(h.bucketCount(i));
        w.u64(h.overflow());
        w.u64(h.underflow());
        const sim::Summary &s = h.summary();
        w.u64(s.count());
        w.f64(s.sum());
        w.f64(s.sumSquares());
        w.f64(s.rawMin());
        w.f64(s.rawMax());
    }
}

void
restoreRegistry(Reader &r, sim::StatRegistry &reg)
{
    reg.resetAll();
    std::uint32_t counters = r.u32();
    for (std::uint32_t i = 0; i < counters; ++i) {
        std::string name = r.str();
        reg.counter(name).increment(r.u64());
    }
    std::uint32_t summaries = r.u32();
    for (std::uint32_t i = 0; i < summaries; ++i) {
        std::string name = r.str();
        std::uint64_t count = r.u64();
        double sum = r.f64();
        double sum_sq = r.f64();
        double raw_min = r.f64();
        double raw_max = r.f64();
        reg.summaryStat(name).restore(count, sum, sum_sq, raw_min,
                                      raw_max);
    }
    std::uint32_t histograms = r.u32();
    for (std::uint32_t i = 0; i < histograms; ++i) {
        std::string name = r.str();
        std::uint32_t buckets = r.u32();
        double width = r.f64();
        std::vector<std::uint64_t> counts(buckets);
        for (std::uint64_t &c : counts)
            c = r.u64();
        std::uint64_t overflow = r.u64();
        std::uint64_t underflow = r.u64();
        std::uint64_t scount = r.u64();
        double ssum = r.f64();
        double ssum_sq = r.f64();
        double smin = r.f64();
        double smax = r.f64();
        sim::Summary s;
        s.restore(scount, ssum, ssum_sq, smin, smax);
        sim::Histogram &h = reg.histogram(name, buckets, width);
        fatalIf(h.buckets() != buckets,
                "SMCK: histogram shape mismatch for '" + name + "'");
        h.restore(std::move(counts), overflow, underflow, s);
    }
}

void
saveFaultInjector(Writer &w, const sim::FaultInjector &fi)
{
    std::uint32_t sites = 0;
    fi.forEachSite([&](const std::string &, std::uint64_t, std::uint64_t,
                       std::uint64_t) { ++sites; });
    w.u32(sites);
    fi.forEachSite([&](const std::string &name, std::uint64_t s0,
                       std::uint64_t s1, std::uint64_t events) {
        w.str(name);
        w.u64(s0);
        w.u64(s1);
        w.u64(events);
    });
    w.u64(fi.dropsInjected());
    w.u64(fi.corruptionsInjected());
    w.u64(fi.delaysInjected());
    w.u64(fi.slvErrsInjected());
}

void
restoreFaultInjector(Reader &r, sim::FaultInjector &fi)
{
    fi.resetSites();
    std::uint32_t sites = r.u32();
    for (std::uint32_t i = 0; i < sites; ++i) {
        std::string name = r.str();
        std::uint64_t s0 = r.u64();
        std::uint64_t s1 = r.u64();
        std::uint64_t events = r.u64();
        fi.restoreSite(name, s0, s1, events);
    }
    std::uint64_t drops = r.u64();
    std::uint64_t corruptions = r.u64();
    std::uint64_t delays = r.u64();
    std::uint64_t slv_errs = r.u64();
    fi.restoreCounters(drops, corruptions, delays, slv_errs);
}

} // namespace smappic::snap
