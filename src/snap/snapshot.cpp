#include "snap/snapshot.hpp"

#include <algorithm>
#include <filesystem>

#include "sim/log.hpp"

namespace smappic::snap
{

namespace fs = std::filesystem;

namespace
{

const char *
sectionName(std::uint32_t tag)
{
    switch (static_cast<Section>(tag)) {
      case Section::kMeta: return "meta";
      case Section::kTime: return "time";
      case Section::kResume: return "resume";
      case Section::kCores: return "cores";
      case Section::kMemory: return "memory";
      case Section::kCache: return "cache";
      case Section::kBridges: return "bridges";
      case Section::kFabric: return "fabric";
      case Section::kDevices: return "devices";
      case Section::kStats: return "stats";
      case Section::kTracer: return "tracer";
      case Section::kFault: return "fault";
    }
    return "?";
}

/** True when @p name looks like smck-<digits>.smck; extracts the cycle. */
bool
parseCheckpointName(const std::string &name, Cycles &cycle)
{
    const std::string prefix = "smck-";
    const std::string suffix = ".smck";
    if (name.size() <= prefix.size() + suffix.size())
        return false;
    if (name.compare(0, prefix.size(), prefix) != 0)
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0)
        return false;
    std::string digits = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (digits.empty())
        return false;
    cycle = 0;
    for (char c : digits) {
        if (c < '0' || c > '9')
            return false;
        cycle = cycle * 10 + static_cast<Cycles>(c - '0');
    }
    return true;
}

} // namespace

SnapshotInfo
inspect(const std::string &path)
{
    Reader r(path);
    SnapshotInfo info;
    info.version = r.version();
    info.configHash = r.configHash();
    info.sections = r.sections();
    r.open(Section::kMeta);
    info.configName = r.str();
    info.seed = r.u64();
    info.nodes = r.u32();
    info.tilesPerNode = r.u32();
    info.cycle = r.u64();
    info.instret = r.u64();
    return info;
}

bool
validate(const std::string &path, std::string *error)
{
    try {
        Reader r(path);
        for (const Reader::SectionDesc &d : r.sections())
            r.open(static_cast<Section>(d.tag)); // CRC check per section.
        SnapshotInfo info = inspect(path);
        fatalIf(info.nodes == 0 || info.tilesPerNode == 0,
                "SMCK: meta section carries an empty geometry");
        fatalIf(!r.has(Section::kCores) || !r.has(Section::kMemory),
                "SMCK: checkpoint lacks the core or memory section");
    } catch (const FatalError &e) {
        if (error)
            *error = e.what();
        return false;
    }
    return true;
}

std::vector<std::string>
diff(const std::string &path_a, const std::string &path_b)
{
    std::vector<std::string> out;
    SnapshotInfo a = inspect(path_a);
    SnapshotInfo b = inspect(path_b);
    if (a.configHash != b.configHash)
        out.push_back(strfmt("config hash: %016llx vs %016llx",
                             static_cast<unsigned long long>(a.configHash),
                             static_cast<unsigned long long>(b.configHash)));
    if (a.cycle != b.cycle)
        out.push_back(strfmt("checkpoint cycle: %llu vs %llu",
                             static_cast<unsigned long long>(a.cycle),
                             static_cast<unsigned long long>(b.cycle)));
    if (a.instret != b.instret)
        out.push_back(strfmt("committed instructions: %llu vs %llu",
                             static_cast<unsigned long long>(a.instret),
                             static_cast<unsigned long long>(b.instret)));

    auto find = [](const SnapshotInfo &info, std::uint32_t tag)
        -> const Reader::SectionDesc * {
        for (const auto &d : info.sections) {
            if (d.tag == tag)
                return &d;
        }
        return nullptr;
    };
    for (const auto &da : a.sections) {
        const Reader::SectionDesc *db = find(b, da.tag);
        if (!db) {
            out.push_back(strfmt("%s: only in %s", sectionName(da.tag),
                                 path_a.c_str()));
            continue;
        }
        if (da.size != db->size) {
            out.push_back(strfmt(
                "%s: %llu vs %llu bytes", sectionName(da.tag),
                static_cast<unsigned long long>(da.size),
                static_cast<unsigned long long>(db->size)));
        } else if (da.crc != db->crc) {
            out.push_back(strfmt("%s: %llu bytes, payloads differ",
                                 sectionName(da.tag),
                                 static_cast<unsigned long long>(da.size)));
        }
    }
    for (const auto &db : b.sections) {
        if (!find(a, db.tag))
            out.push_back(strfmt("%s: only in %s", sectionName(db.tag),
                                 path_b.c_str()));
    }
    return out;
}

std::string
checkpointFileName(Cycles cycle)
{
    return strfmt("smck-%012llu.smck",
                  static_cast<unsigned long long>(cycle));
}

std::vector<std::string>
listCheckpoints(const std::string &dir)
{
    std::vector<std::pair<Cycles, std::string>> found;
    std::error_code ec;
    for (const auto &entry : fs::directory_iterator(dir, ec)) {
        Cycles cycle = 0;
        std::string name = entry.path().filename().string();
        if (entry.is_regular_file(ec) && parseCheckpointName(name, cycle))
            found.emplace_back(cycle, entry.path().string());
    }
    std::sort(found.begin(), found.end());
    std::vector<std::string> out;
    out.reserve(found.size());
    for (auto &[cycle, path] : found)
        out.push_back(std::move(path));
    return out;
}

std::string
latestCheckpoint(const std::string &dir)
{
    std::vector<std::string> all = listCheckpoints(dir);
    return all.empty() ? std::string() : all.back();
}

void
pruneCheckpoints(const std::string &dir, std::uint32_t keep)
{
    if (keep == 0)
        return;
    std::vector<std::string> all = listCheckpoints(dir);
    if (all.size() <= keep)
        return;
    std::error_code ec;
    for (std::size_t i = 0; i + keep < all.size(); ++i)
        fs::remove(all[i], ec);
}

} // namespace smappic::snap
