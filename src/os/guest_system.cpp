#include "os/guest_system.hpp"

#include <ucontext.h>

#include <algorithm>
#include <memory>

#include "sim/log.hpp"

namespace smappic::os
{

/**
 * Phase scheduler: runs each worker's phase body on its own fiber
 * (ucontext) and interleaves fibers in virtual-time order with a small
 * quantum. This keeps request arrival times at shared resources (LLC
 * slices, DRAM channels, PCIe links) approximately sorted, so the
 * next-free-time servers model *contention* rather than accidentally
 * serializing one worker behind another.
 */
struct GuestSystem::PhaseScheduler
{
    struct Task
    {
        ucontext_t ctx{};
        std::vector<std::uint8_t> stack;
        Worker worker;
        bool done = false;
        std::exception_ptr error;
        const std::function<void(Worker &)> *body = nullptr;
        PhaseScheduler *sched = nullptr;

        Task(GuestSystem &os, GlobalTileId tile, Cycles start)
            : worker(os, tile, start)
        {
        }
    };

    ucontext_t main{};
    Task *current = nullptr;
    Cycles threshold = ~Cycles{0};
    std::vector<std::unique_ptr<Task>> tasks;

    static void
    trampoline(unsigned hi, unsigned lo)
    {
        auto ptr = (static_cast<std::uintptr_t>(hi) << 32) |
                   static_cast<std::uintptr_t>(lo);
        auto *task = reinterpret_cast<Task *>(ptr);
        try {
            (*task->body)(task->worker);
        } catch (...) {
            task->error = std::current_exception();
        }
        task->done = true;
        // Returning transfers to uc_link (the scheduler's main context).
    }
};

void
Worker::maybeYield()
{
    GuestSystem::PhaseScheduler *s = os_.scheduler_;
    if (!s || !s->current || &s->current->worker != this)
        return;
    if (clock_ <= s->threshold)
        return;
    swapcontext(&s->current->ctx, &s->main);
}

NodeId
Worker::node() const
{
    return tile_ / os_.memorySystem().geometry().tilesPerNode;
}

std::uint64_t
Worker::load(Addr va, std::uint32_t bytes)
{
    Addr pa = os_.translate(va, node());
    auto r = os_.memorySystem().access(tile_, pa, cache::AccessType::kLoad,
                                       bytes, clock_);
    clock_ += r.latency;
    std::uint64_t value =
        os_.memorySystem().memory().load(pa, std::min(bytes, 8u));
    maybeYield();
    return value;
}

void
Worker::store(Addr va, std::uint64_t value, std::uint32_t bytes)
{
    Addr pa = os_.translate(va, node());
    // Functional store first so device windows observe the new value.
    os_.memorySystem().memory().store(pa, std::min(bytes, 8u), value);
    auto r = os_.memorySystem().access(tile_, pa, cache::AccessType::kStore,
                                       bytes, clock_);
    clock_ += r.latency;
    maybeYield();
}

std::uint64_t
Worker::amoAdd(Addr va, std::uint64_t delta)
{
    Addr pa = os_.translate(va, node());
    auto r = os_.memorySystem().access(tile_, pa, cache::AccessType::kAtomic,
                                       8, clock_);
    clock_ += r.latency;
    std::uint64_t old = os_.memorySystem().memory().load(pa, 8);
    os_.memorySystem().memory().store(pa, 8, old + delta);
    maybeYield();
    return old;
}

std::uint64_t
Worker::ncLoad(Addr va, std::uint32_t bytes)
{
    Addr pa = os_.translate(va, node());
    auto r = os_.memorySystem().access(tile_, pa, cache::AccessType::kNcLoad,
                                       bytes, clock_);
    clock_ += r.latency;
    std::uint64_t value =
        os_.memorySystem().memory().load(pa, std::min(bytes, 8u));
    maybeYield();
    return value;
}

GuestSystem::GuestSystem(cache::CoherentSystem &cs, NumaMode mode,
                         std::uint64_t seed)
    : cs_(cs), mode_(mode), rng_(seed)
{
    const auto &geo = cs.geometry();
    nextFrame_.resize(geo.nodes);
    pagesOnNode_.assign(geo.nodes, 0);
    for (NodeId n = 0; n < geo.nodes; ++n) {
        // Reserve the first 16 MiB of each node for images/IO; the top
        // half of each node's DRAM belongs to the virtual SD card.
        nextFrame_[n] = geo.dramBase +
                        static_cast<Addr>(n) * geo.memPerNode + (16 << 20);
    }
}

Addr
GuestSystem::frameOn(NodeId node)
{
    const auto &geo = cs_.geometry();
    panicIf(node >= geo.nodes, "frame request for unknown node");
    Addr frame = nextFrame_[node];
    Addr limit = geo.dramBase + static_cast<Addr>(node) * geo.memPerNode +
                 geo.memPerNode / 2; // Top half is the virtual SD card.
    fatalIf(frame + kPageBytes > limit, "node out of physical memory");
    nextFrame_[node] += kPageBytes;
    pagesOnNode_[node] += 1;
    return frame;
}

Addr
GuestSystem::vmAlloc(std::uint64_t bytes, AllocPolicy policy, NodeId node)
{
    fatalIf(bytes == 0, "vmAlloc of zero bytes");
    std::uint64_t pages = (bytes + kPageBytes - 1) / kPageBytes;
    Addr base = nextVa_;
    nextVa_ += (pages + 1) * kPageBytes; // Guard page between ranges.

    if (policy == AllocPolicy::kDefault)
        policy = AllocPolicy::kFirstTouch; // NumaMode decides at touch.

    ranges_.push_back(VmRange{base, pages, policy, node});

    // Eager binding for explicit placement policies.
    if (policy == AllocPolicy::kInterleave) {
        for (std::uint64_t p = 0; p < pages; ++p) {
            NodeId n = interleaveNext_++ % cs_.geometry().nodes;
            pageTable_[(base / kPageBytes) + p] = frameOn(n);
        }
    } else if (policy == AllocPolicy::kOnNode) {
        for (std::uint64_t p = 0; p < pages; ++p)
            pageTable_[(base / kPageBytes) + p] = frameOn(node);
    }
    return base;
}

const GuestSystem::VmRange *
GuestSystem::rangeOf(Addr va) const
{
    for (const auto &r : ranges_) {
        if (va >= r.base && va < r.base + r.pages * kPageBytes)
            return &r;
    }
    return nullptr;
}

void
GuestSystem::mapDeviceIdentity(Addr base, std::uint64_t size)
{
    deviceRanges_.emplace_back(base, size);
}

Addr
GuestSystem::translate(Addr va, NodeId toucher)
{
    for (const auto &[base, size] : deviceRanges_) {
        if (va >= base && va - base < size)
            return va;
    }
    std::uint64_t vpn = va / kPageBytes;
    auto it = pageTable_.find(vpn);
    if (it == pageTable_.end()) {
        const VmRange *range = rangeOf(va);
        fatalIf(range == nullptr,
                strfmt("access to unmapped address 0x%llx",
                       static_cast<unsigned long long>(va)));
        NodeId target;
        if (range->policy == AllocPolicy::kOnNode) {
            target = range->node;
        } else if (mode_ == NumaMode::kOn) {
            // First touch: the kernel allocates from the toucher's node.
            target = toucher;
        } else {
            // NUMA-oblivious kernel: the frame comes from wherever the
            // global free list points, uncorrelated with the toucher.
            target = static_cast<NodeId>(
                rng_.below(cs_.geometry().nodes));
        }
        it = pageTable_.emplace(vpn, frameOn(target)).first;
    }
    return it->second + (va % kPageBytes);
}

std::int32_t
GuestSystem::pageNode(Addr va) const
{
    auto it = pageTable_.find(va / kPageBytes);
    if (it == pageTable_.end())
        return -1;
    return static_cast<std::int32_t>(cs_.addrNode(it->second));
}

void
GuestSystem::parallelPhase(const std::vector<GlobalTileId> &tiles,
                           const std::function<void(Worker &)> &body)
{
    fatalIf(tiles.empty(), "parallel phase with no workers");
    panicIf(scheduler_ != nullptr, "nested parallel phases");

    PhaseScheduler sched;
    scheduler_ = &sched;
    constexpr std::size_t kStackBytes = 256 << 10;
    for (GlobalTileId t : tiles) {
        auto task =
            std::make_unique<PhaseScheduler::Task>(*this, t, clock_);
        task->body = &body;
        task->sched = &sched;
        task->stack.resize(kStackBytes);
        getcontext(&task->ctx);
        task->ctx.uc_stack.ss_sp = task->stack.data();
        task->ctx.uc_stack.ss_size = task->stack.size();
        task->ctx.uc_link = &sched.main;
        auto ptr = reinterpret_cast<std::uintptr_t>(task.get());
        makecontext(&task->ctx,
                    reinterpret_cast<void (*)()>(
                        &PhaseScheduler::trampoline),
                    2, static_cast<unsigned>(ptr >> 32),
                    static_cast<unsigned>(ptr & 0xffffffffu));
        sched.tasks.push_back(std::move(task));
    }

    // Resume the lagging fiber until everyone finishes; each runs for at
    // most one quantum past the next-slowest worker's clock.
    std::exception_ptr first_error;
    while (true) {
        PhaseScheduler::Task *next = nullptr;
        Cycles second = ~Cycles{0};
        for (auto &t : sched.tasks) {
            if (t->done)
                continue;
            if (!next || t->worker.clock_ < next->worker.clock_) {
                if (next)
                    second = std::min(second, next->worker.clock_);
                next = t.get();
            } else {
                second = std::min(second, t->worker.clock_);
            }
        }
        if (!next || first_error)
            break;
        sched.threshold =
            second == ~Cycles{0} ? ~Cycles{0} : second + quantum_;
        sched.current = next;
        swapcontext(&sched.main, &next->ctx);
        sched.current = nullptr;
        if (next->done && next->error && !first_error)
            first_error = next->error;
    }
    scheduler_ = nullptr;
    if (first_error)
        std::rethrow_exception(first_error);

    Cycles end = clock_;
    for (auto &t : sched.tasks)
        end = std::max(end, t->worker.clock_);
    clock_ = end + barrierCost_;
}

void
GuestSystem::serialSection(GlobalTileId tile,
                           const std::function<void(Worker &)> &body)
{
    Worker w(*this, tile, clock_);
    body(w);
    clock_ = w.clock_;
}

std::vector<std::uint64_t>
GuestSystem::pagesPerNode() const
{
    return pagesOnNode_;
}

} // namespace smappic::os
