/**
 * @file
 * Guest operating-system model: the software layer whose behaviour the
 * paper's NUMA studies (sections 4.1, Figs 8-9) actually measure.
 *
 * Full Linux is out of scope for a simulated substrate; the observable
 * quantities in those experiments depend on exactly two kernel policies,
 * which this model implements faithfully:
 *
 *  1. Page placement. NUMA mode ON = first-touch allocation on the
 *     toucher's node (plus explicit on-node/interleave policies, as
 *     numactl offers). NUMA mode OFF = the kernel is oblivious to
 *     locality; pages land on nodes without regard to the toucher
 *     (modeled as seeded-random placement across nodes).
 *  2. Thread placement. Workers are pinned to tiles (taskset).
 *
 * Workers execute phase-structured workloads: within a phase each worker
 * runs with its own virtual clock, accumulating memory latencies from the
 * coherent system and explicit compute cycles; phases end with a barrier
 * (max of clocks + barrier cost), which is also where cross-thread data
 * handoff happens — matching the bulk-synchronous structure of the NPB
 * integer sort the paper runs.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/coherent_system.hpp"
#include "sim/random.hpp"
#include "sim/types.hpp"

namespace smappic::os
{

/** Kernel NUMA awareness (Fig 8/9's "NUMA mode"). */
enum class NumaMode : std::uint8_t
{
    kOn,  ///< First-touch local allocation.
    kOff, ///< Locality-oblivious allocation.
};

/** Explicit placement policies (numactl-style). */
enum class AllocPolicy : std::uint8_t
{
    kDefault,    ///< Follow the NumaMode.
    kFirstTouch, ///< Frame lands on the first toucher's node.
    kInterleave, ///< Round-robin across nodes.
    kOnNode,     ///< All frames on a fixed node.
};

class GuestSystem;

/**
 * One guest thread pinned to a tile. All memory operations go through the
 * coherent system and advance the worker's virtual clock.
 */
class Worker
{
  public:
    Worker(GuestSystem &os, GlobalTileId tile, Cycles start)
        : os_(os), tile_(tile), clock_(start)
    {
    }

    /** 64-bit load (data value from the functional store). */
    std::uint64_t load(Addr va, std::uint32_t bytes = 8);

    /** Store. */
    void store(Addr va, std::uint64_t value, std::uint32_t bytes = 8);

    /** Atomic fetch-add; returns the old value. */
    std::uint64_t amoAdd(Addr va, std::uint64_t delta);

    /** Non-cacheable load (device fetch). */
    std::uint64_t ncLoad(Addr va, std::uint32_t bytes = 8);

    /** Charges pure compute work (ALU cycles between memory ops). */
    void
    compute(Cycles cycles)
    {
        clock_ += cycles;
        maybeYield();
    }

    GlobalTileId tile() const { return tile_; }
    NodeId node() const;
    Cycles now() const { return clock_; }
    GuestSystem &os() { return os_; }

  private:
    friend class GuestSystem;

    /** Hands control back to the phase scheduler when another worker's
     *  virtual clock has fallen behind (keeps shared-resource arrival
     *  times approximately sorted). */
    void maybeYield();

    GuestSystem &os_;
    GlobalTileId tile_;
    Cycles clock_;
};

/** The guest system: one address space plus a phase scheduler. */
class GuestSystem
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    GuestSystem(cache::CoherentSystem &cs, NumaMode mode,
                std::uint64_t seed = 1);

    /**
     * Reserves a virtual range. Frames are bound lazily on first touch
     * according to @p policy (or eagerly for kInterleave/kOnNode).
     * @return Base virtual address (page aligned).
     */
    Addr vmAlloc(std::uint64_t bytes, AllocPolicy policy =
                                          AllocPolicy::kDefault,
                 NodeId node = 0);

    /** Node currently backing @p va, or -1 if untouched. */
    std::int32_t pageNode(Addr va) const;

    /**
     * Runs one bulk-synchronous parallel phase: @p body is executed once
     * per tile in @p tiles, each on its own Worker. The phase ends with a
     * barrier; the system clock advances to max(worker clocks) + barrier
     * cost.
     */
    void parallelPhase(const std::vector<GlobalTileId> &tiles,
                       const std::function<void(Worker &)> &body);

    /** Runs @p body on a single tile (sequential section). */
    void serialSection(GlobalTileId tile,
                       const std::function<void(Worker &)> &body);

    /** Virtual time elapsed since construction. */
    Cycles elapsed() const { return clock_; }

    NumaMode mode() const { return mode_; }
    cache::CoherentSystem &memorySystem() { return cs_; }

    /** Translates; binds a frame if unmapped (first touch by @p toucher). */
    Addr translate(Addr va, NodeId toucher);

    /**
     * Identity-maps a device window (MMIO is not paged); accesses within
     * it translate to themselves.
     */
    void mapDeviceIdentity(Addr base, std::uint64_t size);

    /** Pages bound on each node so far (for tests/ablation). */
    std::vector<std::uint64_t> pagesPerNode() const;

    /** Barrier overhead added at each phase boundary. */
    Cycles barrierCost() const { return barrierCost_; }
    void setBarrierCost(Cycles c) { barrierCost_ = c; }

  private:
    struct VmRange
    {
        Addr base;
        std::uint64_t pages;
        AllocPolicy policy;
        NodeId node; ///< For kOnNode.
    };

    Addr frameOn(NodeId node);
    const VmRange *rangeOf(Addr va) const;

    cache::CoherentSystem &cs_;
    NumaMode mode_;
    sim::Xoroshiro rng_;

    Addr nextVa_ = 0x40000000; ///< Clear of the platform MMIO map.
    std::vector<VmRange> ranges_;
    std::vector<std::pair<Addr, std::uint64_t>> deviceRanges_;
    std::unordered_map<std::uint64_t, Addr> pageTable_; ///< vpn -> frame.
    std::vector<Addr> nextFrame_; ///< Bump allocator per node.
    std::vector<std::uint64_t> pagesOnNode_;
    std::uint32_t interleaveNext_ = 0;

    Cycles clock_ = 0;
    Cycles barrierCost_ = 200;

    // Phase-scheduler state (fiber interleaving; see .cpp).
    friend class Worker;
    struct PhaseScheduler;
    PhaseScheduler *scheduler_ = nullptr;

    /** Virtual-time quantum between scheduler yields within a phase. */
    Cycles quantum_ = 150;
};

} // namespace smappic::os
