#include "io/uart_tunnel.hpp"

#include <cstring>

#include "sim/log.hpp"

namespace smappic::io
{

UartTunnelTarget::UartTunnelTarget(Uart16550 &uart) : uart_(uart)
{
    uart_.setTxFn([this](std::uint8_t b) { txFifo_.push_back(b); });
}

axi::WriteResp
UartTunnelTarget::write(const axi::WriteReq &req)
{
    if ((req.addr & 0xff) == kTunnelRxPush && !req.data.empty()) {
        uart_.pushRx(req.data[0]);
        return {axi::Resp::kOkay, req.id};
    }
    return {axi::Resp::kSlvErr, req.id};
}

axi::ReadResp
UartTunnelTarget::read(const axi::ReadReq &req)
{
    axi::ReadResp r;
    r.id = req.id;
    r.data.assign(4, 0);
    switch (req.addr & 0xff) {
      case kTunnelTxCount: {
          auto count = static_cast<std::uint32_t>(txFifo_.size());
          std::memcpy(r.data.data(), &count, 4);
          return r;
      }
      case kTunnelTxPop: {
          std::uint32_t value = 0xffffffff; // Empty marker.
          if (!txFifo_.empty()) {
              value = txFifo_.front();
              txFifo_.pop_front();
          }
          std::memcpy(r.data.data(), &value, 4);
          return r;
      }
      default:
        r.resp = axi::Resp::kSlvErr;
        return r;
    }
}

HostUartDaemon::HostUartDaemon(sim::EventQueue &eq,
                               pcie::PcieFabric &fabric, Addr window_base,
                               Cycles poll_interval)
    : eq_(eq), fabric_(fabric), base_(window_base),
      pollInterval_(poll_interval)
{
}

void
HostUartDaemon::start()
{
    if (running_)
        return;
    running_ = true;
    eq_.schedule(1, [this] { pollOnce(); });
}

void
HostUartDaemon::type(const std::string &text)
{
    for (char c : text)
        toGuest_.push_back(static_cast<std::uint8_t>(c));
}

void
HostUartDaemon::pollOnce()
{
    if (!running_ || busy_)
        return;
    // Host input takes priority; otherwise check for guest output.
    if (!toGuest_.empty()) {
        pushOne();
        return;
    }
    busy_ = true;
    ++polls_;
    fabric_.read(pcie::kHostId,
                 axi::ReadReq{base_ + kTunnelTxCount, 4, 0},
                 [this](pcie::Completion c) {
                     busy_ = false;
                     std::uint32_t count = 0;
                     if (c.resp == axi::Resp::kOkay && c.data.size() >= 4)
                         std::memcpy(&count, c.data.data(), 4);
                     if (count > 0) {
                         drainOne();
                     } else if (running_) {
                         eq_.schedule(pollInterval_,
                                      [this] { pollOnce(); });
                     }
                 });
}

void
HostUartDaemon::drainOne()
{
    busy_ = true;
    fabric_.read(pcie::kHostId, axi::ReadReq{base_ + kTunnelTxPop, 4, 0},
                 [this](pcie::Completion c) {
                     busy_ = false;
                     std::uint32_t value = 0xffffffff;
                     if (c.resp == axi::Resp::kOkay && c.data.size() >= 4)
                         std::memcpy(&value, c.data.data(), 4);
                     if (value != 0xffffffff)
                         captured_ += static_cast<char>(value & 0xff);
                     // Keep draining back-to-back while data remains.
                     if (running_)
                         eq_.schedule(1, [this] { pollOnce(); });
                 });
}

void
HostUartDaemon::pushOne()
{
    busy_ = true;
    axi::WriteReq req;
    req.addr = base_ + kTunnelRxPush;
    req.data = {toGuest_.front()};
    toGuest_.pop_front();
    fabric_.write(pcie::kHostId, std::move(req),
                  [this](pcie::Completion) {
                      busy_ = false;
                      if (running_)
                          eq_.schedule(1, [this] { pollOnce(); });
                  });
}

} // namespace smappic::io
