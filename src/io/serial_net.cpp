#include "io/serial_net.hpp"

#include "sim/log.hpp"

namespace smappic::io
{

std::vector<std::uint8_t>
SlipCodec::encode(const std::vector<std::uint8_t> &frame)
{
    std::vector<std::uint8_t> out;
    out.reserve(frame.size() + 2);
    out.push_back(kSlipEnd); // Flush any line noise (RFC 1055 practice).
    for (std::uint8_t b : frame) {
        if (b == kSlipEnd) {
            out.push_back(kSlipEsc);
            out.push_back(kSlipEscEnd);
        } else if (b == kSlipEsc) {
            out.push_back(kSlipEsc);
            out.push_back(kSlipEscEsc);
        } else {
            out.push_back(b);
        }
    }
    out.push_back(kSlipEnd);
    return out;
}

void
SlipCodec::Decoder::feed(std::uint8_t byte)
{
    if (escaped_) {
        escaped_ = false;
        if (byte == kSlipEscEnd) {
            current_.push_back(kSlipEnd);
        } else if (byte == kSlipEscEsc) {
            current_.push_back(kSlipEsc);
        } else {
            // Protocol violation: RFC 1055 says leave the byte in.
            ++errors_;
            current_.push_back(byte);
        }
        return;
    }
    if (byte == kSlipEsc) {
        escaped_ = true;
        return;
    }
    if (byte == kSlipEnd) {
        if (!current_.empty()) {
            if (onFrame_)
                onFrame_(current_);
            current_.clear();
        }
        return;
    }
    current_.push_back(byte);
}

HostNetPeer::HostNetPeer(Uart16550 &uart)
    : uart_(uart), decoder_([this](const std::vector<std::uint8_t> &f) {
          handleFrame(f);
      })
{
    uart_.setTxFn([this](std::uint8_t b) { decoder_.feed(b); });
}

void
HostNetPeer::addService(
    const std::string &prefix,
    std::function<std::string(const std::string &)> handler)
{
    services_.emplace_back(prefix, std::move(handler));
}

void
HostNetPeer::handleFrame(const std::vector<std::uint8_t> &frame)
{
    ++framesReceived_;
    std::string payload(frame.begin(), frame.end());
    log_.push_back(payload);
    for (const auto &[prefix, handler] : services_) {
        if (payload.rfind(prefix, 0) == 0) {
            std::string resp = handler(payload);
            std::vector<std::uint8_t> bytes(resp.begin(), resp.end());
            for (std::uint8_t b : SlipCodec::encode(bytes))
                uart_.pushRx(b);
            ++framesSent_;
            return;
        }
    }
}

Cycles
GuestNetDriver::mmioRead(Addr reg, Cycles now, std::uint32_t &value)
{
    auto r = cs_.access(tile_, window_ + reg, cache::AccessType::kNcLoad,
                        1, now);
    value = static_cast<std::uint32_t>(cs_.memory().load(window_ + reg, 1));
    return r.latency;
}

Cycles
GuestNetDriver::mmioWrite(Addr reg, std::uint32_t value, Cycles now)
{
    cs_.memory().store(window_ + reg, 1, value);
    auto r = cs_.access(tile_, window_ + reg, cache::AccessType::kNcStore,
                        1, now);
    return r.latency;
}

Cycles
GuestNetDriver::sendFrame(const std::vector<std::uint8_t> &frame,
                          Cycles now)
{
    Cycles spent = 0;
    for (std::uint8_t b : SlipCodec::encode(frame))
        spent += mmioWrite(kUartRbrThr, b, now + spent);
    return spent;
}

Cycles
GuestNetDriver::sendString(const std::string &s, Cycles now)
{
    return sendFrame(std::vector<std::uint8_t>(s.begin(), s.end()), now);
}

Cycles
GuestNetDriver::pollReceive(Cycles now)
{
    Cycles spent = 0;
    std::size_t frames_before = inbox_.size();
    while (inbox_.size() == frames_before) {
        std::uint32_t lsr = 0;
        spent += mmioRead(kUartLsr, now + spent, lsr);
        if (!(lsr & kLsrDataReady))
            break; // FIFO drained without completing a frame.
        std::uint32_t byte = 0;
        spent += mmioRead(kUartRbrThr, now + spent, byte);
        decoder_.feed(static_cast<std::uint8_t>(byte));
    }
    return spent;
}

std::string
GuestNetDriver::firstFrameText() const
{
    if (inbox_.empty())
        return {};
    return std::string(inbox_[0].begin(), inbox_[0].end());
}

} // namespace smappic::io
