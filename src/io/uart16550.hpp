/**
 * @file
 * UART16550-compatible register model plus SMAPPIC's host tunnelling
 * (paper section 3.4.1).
 *
 * F1 exposes no physical UART, so SMAPPIC encapsulates the UART into
 * AXI-Lite and tunnels the bytes through the hard shell to a host program
 * that exposes a virtual serial device. Each BYOC node instantiates two
 * UARTs: the standard 115200-baud console and an "overclocked" ~1 Mbit/s
 * data device used for networking (pppd).
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "sim/types.hpp"

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::io
{

// 16550 register offsets (byte addressing, reg shift 0).
inline constexpr Addr kUartRbrThr = 0; ///< RX buffer / TX holding.
inline constexpr Addr kUartIer = 1;    ///< Interrupt enable.
inline constexpr Addr kUartIirFcr = 2; ///< Interrupt id / FIFO control.
inline constexpr Addr kUartLcr = 3;    ///< Line control (DLAB bit 7).
inline constexpr Addr kUartMcr = 4;
inline constexpr Addr kUartLsr = 5;    ///< Line status.
inline constexpr Addr kUartScr = 7;

// LSR bits.
inline constexpr std::uint32_t kLsrDataReady = 1 << 0;
inline constexpr std::uint32_t kLsrThrEmpty = 1 << 5;
inline constexpr std::uint32_t kLsrTxIdle = 1 << 6;

/**
 * One UART16550. The register file is accessed through AXI-Lite (it is a
 * LiteTarget); TX bytes are handed to a sink callback (the host tunnel),
 * RX bytes are pushed by the host side.
 */
class Uart16550 : public axi::LiteTarget
{
  public:
    using TxFn = std::function<void(std::uint8_t)>;
    /** Fires when the (level-triggered) interrupt output changes. */
    using IrqFn = std::function<void(bool)>;

    /**
     * @param baud Modeled line rate in bits/second at a 100 MHz clock;
     *        governs TX pacing stats only (data is never dropped).
     */
    explicit Uart16550(std::uint32_t baud = 115200) : baud_(baud) {}

    void setTxFn(TxFn fn) { tx_ = std::move(fn); }
    void setIrqFn(IrqFn fn) { irq_ = std::move(fn); }

    // axi::LiteTarget — window-relative register access.
    axi::Resp writeReg(const axi::LiteWrite &req) override;
    axi::Resp readReg(Addr addr, std::uint32_t &data) override;

    /** Host side: queue a byte toward the guest. */
    void pushRx(std::uint8_t byte);

    /** Host side: queue a whole string. */
    void pushRxString(const std::string &s);

    bool rxEmpty() const { return rxFifo_.empty(); }
    std::size_t rxPending() const { return rxFifo_.size(); }
    std::uint64_t bytesTransmitted() const { return txCount_; }
    std::uint32_t baud() const { return baud_; }

    /** Divisor latch as programmed by the guest (for baud checks). */
    std::uint16_t divisor() const { return divisor_; }

    /** Serialized transmit time of one byte (10 bits) in cycles@100MHz. */
    Cycles byteTime() const { return 1'000'000'000ULL / baud_ / 10; }

    /** Serializes registers, RX FIFO and IRQ level. */
    void saveState(snap::Writer &w) const;
    /** Restores WITHOUT firing the IRQ callback (restored elsewhere). */
    void restoreState(snap::Reader &r);

  private:
    void updateIrq();

    std::uint32_t baud_;
    std::deque<std::uint8_t> rxFifo_;
    TxFn tx_;
    IrqFn irq_;
    bool irqLevel_ = false;
    std::uint8_t ier_ = 0;
    std::uint8_t lcr_ = 0;
    std::uint8_t mcr_ = 0;
    std::uint8_t scr_ = 0;
    std::uint16_t divisor_ = 0;
    std::uint64_t txCount_ = 0;
};

/**
 * Host-side virtual serial device: the program SMAPPIC runs on the host to
 * bridge the PCIe-tunnelled UART into a pty-like byte stream. Captures
 * guest output and lets host software inject input.
 */
class VirtualSerial
{
  public:
    /** Attaches to @p uart's TX path. */
    void attach(Uart16550 &uart);

    /** Everything the guest wrote so far. */
    const std::string &captured() const { return captured_; }

    /** Clears the capture buffer. */
    void clear() { captured_.clear(); }

    /** Host types a string into the guest. */
    void type(Uart16550 &uart, const std::string &s) { uart.pushRxString(s); }

    /** Lines seen so far (split on '\n'). */
    std::vector<std::string> lines() const;

    /** Serializes the capture buffer. */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    std::string captured_;
};

} // namespace smappic::io
