#include "io/sd_card.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::io
{

VirtualSdCard::VirtualSdCard(mem::MainMemory &memory, Addr region_base,
                             std::uint64_t region_size)
    : memory_(memory), regionBase_(region_base), regionSize_(region_size)
{
    fatalIf(region_size < kBlockBytes, "SD region smaller than one block");
    fatalIf(region_size % kBlockBytes != 0,
            "SD region must be block aligned");
}

std::uint64_t
VirtualSdCard::ncLoad(Addr offset, std::uint32_t, Cycles, Cycles &service)
{
    service = 8;
    switch (offset) {
      case kSdRegLba:
        return lba_;
      case kSdRegBuffer:
        return buffer_;
      case kSdRegStatus:
        return status_;
      default:
        return 0;
    }
}

void
VirtualSdCard::ncStore(Addr offset, std::uint32_t, std::uint64_t value,
                       Cycles, Cycles &service)
{
    service = 8;
    switch (offset) {
      case kSdRegLba:
        lba_ = value;
        break;
      case kSdRegBuffer:
        buffer_ = value;
        break;
      case kSdRegCommand:
        execute(value);
        // Functional-only device: the block copy itself is free, the
        // guest pays only the MMIO round trips (paper section 3.4.2).
        break;
      default:
        break;
    }
}

void
VirtualSdCard::execute(std::uint64_t cmd)
{
    if (lba_ >= blocks()) {
        status_ = 0; // Error.
        return;
    }
    Addr block_addr = regionBase_ + lba_ * kBlockBytes;
    std::vector<std::uint8_t> tmp(kBlockBytes);
    if (cmd == kSdCmdRead) {
        memory_.readBytes(block_addr, tmp.data(), kBlockBytes);
        memory_.writeBytes(buffer_, tmp.data(), kBlockBytes);
    } else if (cmd == kSdCmdWrite) {
        memory_.readBytes(buffer_, tmp.data(), kBlockBytes);
        memory_.writeBytes(block_addr, tmp.data(), kBlockBytes);
    } else {
        status_ = 0;
        return;
    }
    status_ = 1;
    ++commands_;
}

void
VirtualSdCard::readBlock(std::uint64_t lba,
                         std::vector<std::uint8_t> &out) const
{
    panicIf(lba >= blocks(), "SD read past end of card");
    out.resize(kBlockBytes);
    memory_.readBytes(regionBase_ + lba * kBlockBytes, out.data(),
                      kBlockBytes);
}

void
VirtualSdCard::writeBlock(std::uint64_t lba,
                          const std::vector<std::uint8_t> &in)
{
    panicIf(lba >= blocks(), "SD write past end of card");
    panicIf(in.size() != kBlockBytes, "SD block must be 512 bytes");
    memory_.writeBytes(regionBase_ + lba * kBlockBytes, in.data(),
                       kBlockBytes);
}

void
HostSdLoader::loadImage(const std::vector<std::uint8_t> &image,
                        std::uint64_t first_lba, std::uint32_t chunk)
{
    fatalIf(chunk == 0, "chunk size must be positive");
    Addr cursor = windowBase_ + first_lba * VirtualSdCard::kBlockBytes;
    std::uint64_t offset = 0;
    while (offset < image.size()) {
        std::uint64_t n = std::min<std::uint64_t>(chunk,
                                                  image.size() - offset);
        axi::WriteReq req;
        req.addr = cursor;
        req.data.assign(image.begin() + static_cast<std::ptrdiff_t>(offset),
                        image.begin() +
                            static_cast<std::ptrdiff_t>(offset + n));
        ++writesIssued_;
        fabric_.write(pcie::kHostId, std::move(req),
                      [this, n](pcie::Completion c) {
                          if (c.resp == axi::Resp::kOkay) {
                              bytesWritten_ += n;
                              ++writesCompleted_;
                          }
                      });
        cursor += n;
        offset += n;
    }
}

void
VirtualSdCard::saveState(snap::Writer &w) const
{
    w.u64(lba_);
    w.u64(buffer_);
    w.u64(status_);
    w.u64(commands_);
}

void
VirtualSdCard::restoreState(snap::Reader &r)
{
    lba_ = r.u64();
    buffer_ = r.u64();
    status_ = r.u64();
    commands_ = r.u64();
}

} // namespace smappic::io
