/**
 * @file
 * Host side of the UART tunnel (paper section 3.4.1).
 *
 * In SMAPPIC the guest-facing UART16550 lives in the custom logic; its
 * serial side is exposed to the host through an AXI-Lite window that the
 * hard shell tunnels over PCIe. On the host, SMAPPIC runs a program that
 * polls that window through the PCIe driver and bridges the bytes into a
 * virtual serial device (/dev/pts-style). This module models both ends:
 *
 *  - UartTunnelTarget: the CL-side register block (TX-FIFO status/pop,
 *    RX push) wired to a Uart16550's serial side, mapped into the PCIe
 *    fabric.
 *  - HostUartDaemon: the host program; polls over the fabric (paying real
 *    PCIe round trips), drains guest output into a capture buffer, and
 *    injects host input.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "axi/axi.hpp"
#include "io/uart16550.hpp"
#include "pcie/pcie_fabric.hpp"
#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace smappic::io
{

// Tunnel register offsets (host-facing).
inline constexpr Addr kTunnelTxCount = 0x0; ///< Guest->host bytes waiting.
inline constexpr Addr kTunnelTxPop = 0x4;   ///< Pop one TX byte.
inline constexpr Addr kTunnelRxPush = 0x8;  ///< Push one RX byte.

/** CL-side tunnel endpoint: couples a UART's serial side to AXI4. */
class UartTunnelTarget : public axi::Target
{
  public:
    /** Attaches to @p uart's TX stream; RX pushes go into its FIFO. */
    explicit UartTunnelTarget(Uart16550 &uart);

    axi::WriteResp write(const axi::WriteReq &req) override;
    axi::ReadResp read(const axi::ReadReq &req) override;

    std::size_t txPending() const { return txFifo_.size(); }

  private:
    Uart16550 &uart_;
    std::deque<std::uint8_t> txFifo_;
};

/**
 * The host program. Drives the tunnel registers through the PCIe fabric
 * with asynchronous reads/writes on the shared event queue, so every byte
 * pays the measured PCIe round trip.
 */
class HostUartDaemon
{
  public:
    /**
     * @param window_base Fabric address of the tunnel register block.
     * @param poll_interval Cycles between TX-count polls.
     */
    HostUartDaemon(sim::EventQueue &eq, pcie::PcieFabric &fabric,
                   Addr window_base, Cycles poll_interval = 1000);

    /** Starts the polling loop (runs while the event queue runs). */
    void start();

    /** Stops polling after the in-flight transaction completes. */
    void stop() { running_ = false; }

    /** Queues host input for injection into the guest's RX FIFO. */
    void type(const std::string &text);

    /** Everything the guest transmitted, as drained by the daemon. */
    const std::string &captured() const { return captured_; }

    std::uint64_t pciePolls() const { return polls_; }

  private:
    void pollOnce();
    void drainOne();
    void pushOne();

    sim::EventQueue &eq_;
    pcie::PcieFabric &fabric_;
    Addr base_;
    Cycles pollInterval_;
    bool running_ = false;
    bool busy_ = false;

    std::deque<std::uint8_t> toGuest_;
    std::string captured_;
    std::uint64_t polls_ = 0;
};

} // namespace smappic::io
