/**
 * @file
 * SMAPPIC's "virtual device" mechanism, instantiated for the SD card
 * (paper section 3.4.2).
 *
 * F1 has no SD slot, but BYOC needs one to provide a filesystem. SMAPPIC
 * maps a virtual SD card into the top half of the FPGA's DRAM (the bottom
 * half is the prototype's main memory). A host-side Linux driver
 * initializes the card by writing into the FPGA's PCIe address space;
 * those writes arrive on the inbound AXI4 bus and are converted to NoC
 * stores that land in the SD region of memory. The device is functional
 * only — it does not model SD timing (per the paper).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "axi/axi.hpp"
#include "cache/coherent_system.hpp"
#include "mem/main_memory.hpp"
#include "pcie/pcie_fabric.hpp"
#include "sim/types.hpp"

namespace smappic::io
{

/** SD controller MMIO register offsets (guest-visible). */
inline constexpr Addr kSdRegLba = 0x00;    ///< Block index.
inline constexpr Addr kSdRegBuffer = 0x08; ///< DMA target in main memory.
inline constexpr Addr kSdRegCommand = 0x10; ///< 1 = read, 2 = write.
inline constexpr Addr kSdRegStatus = 0x18;  ///< 1 = ready.
inline constexpr std::uint64_t kSdCmdRead = 1;
inline constexpr std::uint64_t kSdCmdWrite = 2;

/**
 * Guest-visible SD block controller. Blocks live in the SD region of the
 * prototype's DRAM; commands DMA between that region and main memory.
 */
class VirtualSdCard : public cache::NcDevice
{
  public:
    static constexpr std::uint64_t kBlockBytes = 512;

    /**
     * @param memory Functional backing store.
     * @param region_base Start of the SD region (top half of node DRAM).
     * @param region_size Capacity in bytes.
     */
    VirtualSdCard(mem::MainMemory &memory, Addr region_base,
                  std::uint64_t region_size);

    // cache::NcDevice — MMIO register access from the guest.
    std::uint64_t ncLoad(Addr offset, std::uint32_t bytes, Cycles now,
                         Cycles &service) override;
    void ncStore(Addr offset, std::uint32_t bytes, std::uint64_t value,
                 Cycles now, Cycles &service) override;

    /** Direct block access (host/test convenience). */
    void readBlock(std::uint64_t lba, std::vector<std::uint8_t> &out) const;
    void writeBlock(std::uint64_t lba, const std::vector<std::uint8_t> &in);

    std::uint64_t blocks() const { return regionSize_ / kBlockBytes; }
    Addr regionBase() const { return regionBase_; }
    std::uint64_t commandsServed() const { return commands_; }

    /** Serializes controller registers (card data lives in MainMemory). */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    void execute(std::uint64_t cmd);

    mem::MainMemory &memory_;
    Addr regionBase_;
    std::uint64_t regionSize_;

    std::uint64_t lba_ = 0;
    Addr buffer_ = 0;
    std::uint64_t status_ = 1;
    std::uint64_t commands_ = 0;
};

/**
 * Host-side SD initialization driver: streams a card image through the
 * PCIe fabric into the FPGA's SD memory window, mirroring the specialized
 * Linux driver the paper describes.
 */
class HostSdLoader
{
  public:
    /**
     * @param fabric The instance's PCIe fabric.
     * @param window_base Fabric address of the SD region window.
     */
    HostSdLoader(pcie::PcieFabric &fabric, Addr window_base)
        : fabric_(fabric), windowBase_(window_base)
    {
    }

    /**
     * Writes @p image into the card starting at block @p first_lba using
     * @p chunk-byte PCIe writes. Completion is asynchronous; run the event
     * queue and check bytesWritten().
     */
    void loadImage(const std::vector<std::uint8_t> &image,
                   std::uint64_t first_lba = 0, std::uint32_t chunk = 4096);

    std::uint64_t bytesWritten() const { return bytesWritten_; }
    std::uint64_t writesIssued() const { return writesIssued_; }
    std::uint64_t writesCompleted() const { return writesCompleted_; }

  private:
    pcie::PcieFabric &fabric_;
    Addr windowBase_;
    std::uint64_t bytesWritten_ = 0;
    std::uint64_t writesIssued_ = 0;
    std::uint64_t writesCompleted_ = 0;
};

} // namespace smappic::io
