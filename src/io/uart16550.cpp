#include "io/uart16550.hpp"

#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::io
{

namespace
{
constexpr std::uint8_t kLcrDlab = 0x80;
}

axi::Resp
Uart16550::writeReg(const axi::LiteWrite &req)
{
    bool dlab = lcr_ & kLcrDlab;
    switch (req.addr) {
      case kUartRbrThr:
        if (dlab) {
            divisor_ = static_cast<std::uint16_t>(
                (divisor_ & 0xff00) | (req.data & 0xff));
        } else {
            ++txCount_;
            if (tx_)
                tx_(static_cast<std::uint8_t>(req.data));
        }
        break;
      case kUartIer:
        if (dlab) {
            divisor_ = static_cast<std::uint16_t>(
                (divisor_ & 0x00ff) | ((req.data & 0xff) << 8));
        } else {
            ier_ = static_cast<std::uint8_t>(req.data);
            updateIrq();
        }
        break;
      case kUartIirFcr:
        break; // FIFO control: FIFOs always on in this model.
      case kUartLcr:
        lcr_ = static_cast<std::uint8_t>(req.data);
        break;
      case kUartMcr:
        mcr_ = static_cast<std::uint8_t>(req.data);
        break;
      case kUartScr:
        scr_ = static_cast<std::uint8_t>(req.data);
        break;
      default:
        break;
    }
    return axi::Resp::kOkay;
}

axi::Resp
Uart16550::readReg(Addr addr, std::uint32_t &data)
{
    bool dlab = lcr_ & kLcrDlab;
    data = 0;
    switch (addr) {
      case kUartRbrThr:
        if (dlab) {
            data = divisor_ & 0xff;
        } else if (!rxFifo_.empty()) {
            data = rxFifo_.front();
            rxFifo_.pop_front();
            updateIrq();
        }
        break;
      case kUartIer:
        data = dlab ? ((divisor_ >> 8) & 0xff) : ier_;
        break;
      case kUartIirFcr:
        // IIR: 0x1 = no interrupt pending, 0x4 = RX data available.
        data = irqLevel_ ? 0x4 : 0x1;
        break;
      case kUartLcr:
        data = lcr_;
        break;
      case kUartMcr:
        data = mcr_;
        break;
      case kUartLsr:
        data = kLsrThrEmpty | kLsrTxIdle |
               (rxFifo_.empty() ? 0 : kLsrDataReady);
        break;
      case kUartScr:
        data = scr_;
        break;
      default:
        break;
    }
    return axi::Resp::kOkay;
}

void
Uart16550::pushRx(std::uint8_t byte)
{
    rxFifo_.push_back(byte);
    updateIrq();
}

void
Uart16550::pushRxString(const std::string &s)
{
    for (char c : s)
        pushRx(static_cast<std::uint8_t>(c));
}

void
Uart16550::updateIrq()
{
    // Only the RX-data-available interrupt (IER bit 0) is modeled.
    bool level = (ier_ & 1) && !rxFifo_.empty();
    if (level != irqLevel_) {
        irqLevel_ = level;
        if (irq_)
            irq_(level);
    }
}

void
VirtualSerial::attach(Uart16550 &uart)
{
    uart.setTxFn([this](std::uint8_t b) {
        captured_ += static_cast<char>(b);
    });
}

std::vector<std::string>
VirtualSerial::lines() const
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : captured_) {
        if (c == '\n') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    if (!cur.empty())
        out.push_back(cur);
    return out;
}

void
Uart16550::saveState(snap::Writer &w) const
{
    w.u64(rxFifo_.size());
    for (std::uint8_t byte : rxFifo_)
        w.u8(byte);
    w.boolean(irqLevel_);
    w.u8(ier_);
    w.u8(lcr_);
    w.u8(mcr_);
    w.u8(scr_);
    w.u16(divisor_);
    w.u64(txCount_);
}

void
Uart16550::restoreState(snap::Reader &r)
{
    rxFifo_.clear();
    std::uint64_t pending = r.u64();
    for (std::uint64_t i = 0; i < pending; ++i)
        rxFifo_.push_back(r.u8());
    irqLevel_ = r.boolean();
    ier_ = r.u8();
    lcr_ = r.u8();
    mcr_ = r.u8();
    scr_ = r.u8();
    divisor_ = r.u16();
    txCount_ = r.u64();
}

void
VirtualSerial::saveState(snap::Writer &w) const
{
    w.str(captured_);
}

void
VirtualSerial::restoreState(snap::Reader &r)
{
    captured_ = r.str();
}

} // namespace smappic::io
