/**
 * @file
 * Serial networking over the overclocked data UART (paper section 3.4.1).
 *
 * SMAPPIC connects prototypes to the Internet by running pppd over a
 * second, ~1 Mbit/s UART tunnelled through AXI-Lite/PCIe to the host.
 * This module models that stack: a SLIP-style framing codec (RFC 1055 —
 * the framing layer pppd-class links use), the host-side network peer
 * that terminates frames and forwards them to services, and a guest-side
 * driver that moves frames through the UART's MMIO registers via timed
 * non-cacheable accesses to the coherent system.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "cache/coherent_system.hpp"
#include "io/uart16550.hpp"
#include "sim/types.hpp"

namespace smappic::io
{

/** RFC 1055 (SLIP) framing constants. */
inline constexpr std::uint8_t kSlipEnd = 0xc0;
inline constexpr std::uint8_t kSlipEsc = 0xdb;
inline constexpr std::uint8_t kSlipEscEnd = 0xdc;
inline constexpr std::uint8_t kSlipEscEsc = 0xdd;

/** Stateless SLIP encoder / incremental decoder. */
class SlipCodec
{
  public:
    /** Encodes one frame (leading + trailing END, escapes inside). */
    static std::vector<std::uint8_t>
    encode(const std::vector<std::uint8_t> &frame);

    /** Incremental decoder: feed bytes, collect completed frames. */
    class Decoder
    {
      public:
        using FrameFn =
            std::function<void(const std::vector<std::uint8_t> &)>;

        explicit Decoder(FrameFn on_frame) : onFrame_(std::move(on_frame))
        {
        }

        /** Consumes one received byte. */
        void feed(std::uint8_t byte);

        /** Malformed escape sequences seen (dropped per RFC 1055). */
        std::uint64_t protocolErrors() const { return errors_; }

      private:
        FrameFn onFrame_;
        std::vector<std::uint8_t> current_;
        bool escaped_ = false;
        std::uint64_t errors_ = 0;
    };
};

/**
 * Host-side peer: terminates SLIP frames from the data UART and answers
 * them from a registered request->response service table (the "Internet"
 * the paper's prototype talks to via pppd).
 */
class HostNetPeer
{
  public:
    /** Attaches to @p uart's TX stream; responses go into its RX FIFO. */
    explicit HostNetPeer(Uart16550 &uart);

    /**
     * Registers a service: frames whose payload starts with @p prefix are
     * answered with handler(payload).
     */
    void addService(const std::string &prefix,
                    std::function<std::string(const std::string &)> handler);

    std::uint64_t framesReceived() const { return framesReceived_; }
    std::uint64_t framesSent() const { return framesSent_; }

    /** Raw frames seen (for tests). */
    const std::vector<std::string> &log() const { return log_; }

  private:
    void handleFrame(const std::vector<std::uint8_t> &frame);

    Uart16550 &uart_;
    SlipCodec::Decoder decoder_;
    std::vector<std::pair<std::string,
                          std::function<std::string(const std::string &)>>>
        services_;
    std::vector<std::string> log_;
    std::uint64_t framesReceived_ = 0;
    std::uint64_t framesSent_ = 0;
};

/**
 * Guest-side driver: sends/receives SLIP frames by driving the data
 * UART's MMIO registers with timed non-cacheable accesses through the
 * coherent system — the cost a real guest driver would pay.
 */
class GuestNetDriver
{
  public:
    /**
     * @param window MMIO base of the node's data UART.
     * @param tile The core tile executing the driver.
     */
    GuestNetDriver(cache::CoherentSystem &cs, Addr window,
                   GlobalTileId tile)
        : cs_(cs), window_(window), tile_(tile),
          decoder_([this](const std::vector<std::uint8_t> &f) {
              inbox_.push_back(f);
          })
    {
    }

    /**
     * Transmits one frame; returns the cycles consumed (MMIO register
     * writes through the NC path, one per encoded byte).
     */
    Cycles sendFrame(const std::vector<std::uint8_t> &frame, Cycles now);

    /** Convenience: sends a string payload. */
    Cycles sendString(const std::string &s, Cycles now);

    /**
     * Polls the UART until a full frame arrives or the RX FIFO drains.
     * @return Cycles consumed; the frame (if any) lands in inbox().
     */
    Cycles pollReceive(Cycles now);

    const std::vector<std::vector<std::uint8_t>> &inbox() const
    {
        return inbox_;
    }

    /** First inbox frame as a string (empty when none). */
    std::string firstFrameText() const;

  private:
    Cycles mmioRead(Addr reg, Cycles now, std::uint32_t &value);
    Cycles mmioWrite(Addr reg, std::uint32_t value, Cycles now);

    cache::CoherentSystem &cs_;
    Addr window_;
    GlobalTileId tile_;
    SlipCodec::Decoder decoder_;
    std::vector<std::vector<std::uint8_t>> inbox_;
};

} // namespace smappic::io
