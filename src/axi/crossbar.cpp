#include "axi/crossbar.hpp"

#include "sim/log.hpp"

namespace smappic::axi
{

void
Crossbar::addWindow(Addr base, std::uint64_t size, Target *target,
                    std::string name)
{
    fatalIf(size == 0, "crossbar window '" + name + "' has zero size");
    fatalIf(target == nullptr, "crossbar window '" + name + "' has no target");
    for (const auto &w : windows_) {
        bool disjoint = base + size <= w.base || w.base + w.size <= base;
        fatalIf(!disjoint, "crossbar windows '" + name + "' and '" + w.name +
                               "' overlap");
    }
    windows_.push_back(Window{base, size, target, std::move(name)});
}

const Window *
Crossbar::decode(Addr addr) const
{
    for (const auto &w : windows_) {
        if (w.contains(addr))
            return &w;
    }
    return nullptr;
}

void
Crossbar::setFaultInjector(sim::FaultInjector *fi, std::string site_prefix)
{
    fault_ = fi;
    faultSitePrefix_ = std::move(site_prefix);
}

WriteResp
Crossbar::write(const WriteReq &req)
{
    const Window *w = decode(req.addr);
    if (!w) {
        ++decodeErrors_;
        return WriteResp{Resp::kDecErr, req.id};
    }
    if (fault_) {
        std::string site = faultSitePrefix_ + ".write";
        sim::FaultDecision fd = fault_->decide(site);
        if (fd.slvErr) {
            ++faultedAccesses_;
            return WriteResp{Resp::kSlvErr, req.id};
        }
        if (fd.drop) {
            ++faultedAccesses_;
            return WriteResp{Resp::kDecErr, req.id};
        }
        if (fd.corrupt && !req.data.empty()) {
            ++faultedAccesses_;
            WriteReq bad = req;
            fault_->corruptBytes(site, bad.data.data(), bad.data.size());
            ++routedWrites_;
            return w->target->write(bad);
        }
    }
    ++routedWrites_;
    return w->target->write(req);
}

ReadResp
Crossbar::read(const ReadReq &req)
{
    const Window *w = decode(req.addr);
    if (!w) {
        ++decodeErrors_;
        return ReadResp{Resp::kDecErr, {}, req.id};
    }
    sim::FaultDecision fd;
    std::string site;
    if (fault_) {
        site = faultSitePrefix_ + ".read";
        fd = fault_->decide(site);
        if (fd.slvErr) {
            ++faultedAccesses_;
            return ReadResp{Resp::kSlvErr, {}, req.id};
        }
        if (fd.drop) {
            ++faultedAccesses_;
            return ReadResp{Resp::kDecErr, {}, req.id};
        }
    }
    ++routedReads_;
    ReadResp resp = w->target->read(req);
    if (fd.corrupt && !resp.data.empty()) {
        ++faultedAccesses_;
        fault_->corruptBytes(site, resp.data.data(), resp.data.size());
    }
    return resp;
}

void
LiteCrossbar::addWindow(Addr base, std::uint64_t size, LiteTarget *target,
                        std::string name)
{
    fatalIf(size == 0, "lite window '" + name + "' has zero size");
    fatalIf(target == nullptr, "lite window '" + name + "' has no target");
    for (const auto &w : windows_) {
        bool disjoint = base + size <= w.base || w.base + w.size <= base;
        fatalIf(!disjoint,
                "lite windows '" + name + "' and '" + w.name + "' overlap");
    }
    windows_.push_back(LiteWindow{base, size, target, std::move(name)});
}

const LiteCrossbar::LiteWindow *
LiteCrossbar::decode(Addr addr) const
{
    for (const auto &w : windows_) {
        if (addr >= w.base && addr - w.base < w.size)
            return &w;
    }
    return nullptr;
}

Resp
LiteCrossbar::writeReg(const LiteWrite &req)
{
    const LiteWindow *w = decode(req.addr);
    if (!w)
        return Resp::kDecErr;
    LiteWrite relative = req;
    relative.addr = req.addr - w->base;
    return w->target->writeReg(relative);
}

Resp
LiteCrossbar::readReg(Addr addr, std::uint32_t &data)
{
    const LiteWindow *w = decode(addr);
    if (!w)
        return Resp::kDecErr;
    return w->target->readReg(addr - w->base, data);
}

} // namespace smappic::axi
