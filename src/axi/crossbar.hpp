/**
 * @file
 * Address-windowed AXI4 and AXI-Lite crossbars.
 *
 * The hard shell and the custom logic both use crossbars to steer
 * transactions: the HS routes outbound AXI4 requests to peer FPGAs or the
 * host by address window, and the CL routes inbound requests to per-node
 * bridges, memory controllers and device tunnels.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "axi/axi.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"

namespace smappic::axi
{

/** One address window of a crossbar. */
struct Window
{
    Addr base = 0;
    std::uint64_t size = 0;
    Target *target = nullptr;
    std::string name;

    bool
    contains(Addr addr) const
    {
        return addr >= base && addr - base < size;
    }
};

/**
 * AXI4 crossbar. Routes each transaction to the unique window containing
 * its address; unmapped addresses complete with DECERR, mirroring real AXI
 * interconnect behaviour.
 */
class Crossbar : public Target
{
  public:
    /**
     * Adds an address window. Windows must not overlap.
     * @throws FatalError on overlap.
     */
    void addWindow(Addr base, std::uint64_t size, Target *target,
                   std::string name);

    /** Returns the window containing @p addr, or nullptr. */
    const Window *decode(Addr addr) const;

    WriteResp write(const WriteReq &req) override;
    ReadResp read(const ReadReq &req) override;

    /**
     * Attaches a fault injector (null to detach). Sites "<prefix>.write"
     * and "<prefix>.read": slverr answers SLVERR without routing, drop
     * answers DECERR without routing (a decode fault), corrupt flips one
     * bit of the write payload / read response.
     */
    void setFaultInjector(sim::FaultInjector *fi,
                          std::string site_prefix = "xbar");

    std::uint64_t decodeErrors() const { return decodeErrors_; }
    std::uint64_t faultedAccesses() const { return faultedAccesses_; }
    std::uint64_t routedWrites() const { return routedWrites_; }
    std::uint64_t routedReads() const { return routedReads_; }
    const std::vector<Window> &windows() const { return windows_; }

  private:
    std::vector<Window> windows_;
    sim::FaultInjector *fault_ = nullptr;
    std::string faultSitePrefix_;
    std::uint64_t decodeErrors_ = 0;
    std::uint64_t routedWrites_ = 0;
    std::uint64_t routedReads_ = 0;
    std::uint64_t faultedAccesses_ = 0;
};

/** AXI-Lite variant of the crossbar (configuration plane). */
class LiteCrossbar : public LiteTarget
{
  public:
    struct LiteWindow
    {
        Addr base = 0;
        std::uint64_t size = 0;
        LiteTarget *target = nullptr;
        std::string name;
    };

    /** Adds a window; lite targets see window-relative addresses. */
    void addWindow(Addr base, std::uint64_t size, LiteTarget *target,
                   std::string name);

    Resp writeReg(const LiteWrite &req) override;
    Resp readReg(Addr addr, std::uint32_t &data) override;

  private:
    const LiteWindow *decode(Addr addr) const;

    std::vector<LiteWindow> windows_;
};

} // namespace smappic::axi
