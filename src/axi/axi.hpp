/**
 * @file
 * Transaction-level AXI4 and AXI-Lite protocol definitions.
 *
 * The F1 hard shell exposes AXI4 (bulk data, inter-FPGA tunnelling) and
 * AXI-Lite (configuration, UART tunnelling) interfaces to the custom logic.
 * We model transactions, not per-beat channel signals, but we preserve the
 * fields SMAPPIC's bridges rely on: the full 64-bit address (which encodes
 * node IDs and flit-valid bits during NoC encapsulation), transaction IDs,
 * and the burst payload.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace smappic::axi
{

/** AXI response codes (subset used by the platform). */
enum class Resp : std::uint8_t
{
    kOkay = 0,   ///< Normal success.
    kSlvErr = 2, ///< Target signalled an error.
    kDecErr = 3, ///< No target mapped at the address.
};

/** AXI4 write transaction: AW + W channels folded together. */
struct WriteReq
{
    Addr addr = 0;                   ///< AW channel address.
    std::vector<std::uint8_t> data;  ///< W channel payload.
    std::uint16_t id = 0;            ///< AWID.
};

/** AXI4 write response: B channel. */
struct WriteResp
{
    Resp resp = Resp::kOkay;
    std::uint16_t id = 0;
};

/** AXI4 read request: AR channel. */
struct ReadReq
{
    Addr addr = 0;        ///< AR channel address.
    std::uint32_t bytes = 0; ///< Total burst length in bytes.
    std::uint16_t id = 0; ///< ARID.
};

/** AXI4 read response: R channel. */
struct ReadResp
{
    Resp resp = Resp::kOkay;
    std::vector<std::uint8_t> data;
    std::uint16_t id = 0;
};

/**
 * An AXI4 subordinate (target). Handlers are synchronous at the functional
 * level; timing is layered on by the caller (hard shell, crossbar, bench
 * harness) using sim::QueueServer / sim::TrafficShaper.
 */
class Target
{
  public:
    virtual ~Target() = default;

    /** Handles a write transaction. */
    virtual WriteResp write(const WriteReq &req) = 0;

    /** Handles a read transaction. */
    virtual ReadResp read(const ReadReq &req) = 0;
};

/** AXI-Lite write (32-bit data, no bursts, no IDs). */
struct LiteWrite
{
    Addr addr = 0;
    std::uint32_t data = 0;
    std::uint8_t strb = 0xf; ///< Byte strobes.
};

/** AXI-Lite subordinate (e.g. UART16550 register file). */
class LiteTarget
{
  public:
    virtual ~LiteTarget() = default;

    /** Handles a register write. */
    virtual Resp writeReg(const LiteWrite &req) = 0;

    /** Handles a register read; @p data receives the value. */
    virtual Resp readReg(Addr addr, std::uint32_t &data) = 0;
};

} // namespace smappic::axi
