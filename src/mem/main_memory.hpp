/**
 * @file
 * Sparse functional backing store for the prototype's unified physical
 * address space. Timing is handled elsewhere (CoherentSystem / DRAM model);
 * this class only holds bytes.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::mem
{

/** Flat sparse byte-addressable memory. */
class MainMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Reads @p len bytes at @p addr into @p out. Unwritten bytes are 0. */
    void readBytes(Addr addr, void *out, std::uint64_t len) const;

    /** Writes @p len bytes from @p in at @p addr. */
    void writeBytes(Addr addr, const void *in, std::uint64_t len);

    /** Zero-extending little-endian load of @p bytes (1..8). */
    std::uint64_t load(Addr addr, std::uint32_t bytes) const;

    /** Little-endian store of the low @p bytes of @p value (1..8). */
    void store(Addr addr, std::uint32_t bytes, std::uint64_t value);

    /** Number of materialized 4 KiB pages (for footprint checks). */
    std::size_t pagesAllocated() const { return pages_.size(); }

    /** Drops all contents (and invalidates every page write stamp). */
    void clear();

    /**
     * Monotonic write stamp of @p addr's page, bumped *before* every
     * overlapping write — stores, atomics, DMA, bridge traffic and
     * loaders all funnel through writeBytes/store, so a reader holding
     * {&stamp, observed value} (riscv::CodeRef) can prove bytes it read
     * are still current. Stamp slots are never deallocated and survive
     * clear()/restoreState() (both bump every slot), so the reference
     * outlives any page image and never dangles. Stamps are transient
     * bookkeeping like the dirty epochs: saveState does not write them.
     */
    const std::atomic<std::uint64_t> &pageWriteStamp(Addr addr);

    /**
     * Enables (or disables) internal locking so node phases of the phased
     * engine may load/store concurrently: reads share, writes (which may
     * materialize pages and rehash the page table) are exclusive. Off by
     * default — the sequential engine pays nothing.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

    /**
     * Starts a new dirty-tracking epoch and returns its id. Pages written
     * from now on carry the new epoch, so checkpoint tooling can ask how
     * much of the image changed between snapshots without hashing it.
     */
    std::uint64_t beginEpoch() { return ++epoch_; }

    /** Current dirty-tracking epoch (0 until the first beginEpoch()). */
    std::uint64_t epoch() const { return epoch_; }

    /** Pages whose last write happened at epoch >= @p since. */
    std::size_t pagesDirtySince(std::uint64_t since) const;

    /** Serializes every materialized page, sorted by page index. Dirty
     *  epochs are bookkeeping, not state: they are not written. */
    void saveState(snap::Writer &w) const;
    /** Replaces the entire contents with the serialized image and resets
     *  dirty tracking to epoch 0. */
    void restoreState(snap::Reader &r);

  private:
    struct PageEntry
    {
        std::vector<std::uint8_t> bytes;
        std::uint64_t epoch = 0; ///< Epoch of the last write.
        /** Cached pointer into stamps_ (lazily wired by touchPage). */
        std::atomic<std::uint64_t> *stamp = nullptr;
    };

    const PageEntry *findPage(std::uint64_t idx) const;
    PageEntry &touchPage(std::uint64_t idx);
    std::atomic<std::uint64_t> &stampSlot(std::uint64_t idx);
    void bumpAllStamps();

    std::shared_lock<std::shared_mutex>
    readLock() const
    {
        return concurrent_ ? std::shared_lock(mu_)
                           : std::shared_lock<std::shared_mutex>();
    }
    std::unique_lock<std::shared_mutex>
    writeLock()
    {
        return concurrent_ ? std::unique_lock(mu_)
                           : std::unique_lock<std::shared_mutex>();
    }

    void readBytesImpl(Addr addr, void *out, std::uint64_t len) const;
    void writeBytesImpl(Addr addr, const void *in, std::uint64_t len);

    std::unordered_map<std::uint64_t, PageEntry> pages_;
    /** Per-page write stamps; slots are created on demand and never
     *  destroyed, so pointers handed out stay valid forever. */
    std::unordered_map<std::uint64_t,
                       std::unique_ptr<std::atomic<std::uint64_t>>>
        stamps_;
    std::uint64_t epoch_ = 0;
    bool concurrent_ = false;
    mutable std::shared_mutex mu_;
};

} // namespace smappic::mem
