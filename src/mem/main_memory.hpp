/**
 * @file
 * Sparse functional backing store for the prototype's unified physical
 * address space. Timing is handled elsewhere (CoherentSystem / DRAM model);
 * this class only holds bytes.
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace smappic::mem
{

/** Flat sparse byte-addressable memory. */
class MainMemory
{
  public:
    static constexpr std::uint64_t kPageBytes = 4096;

    /** Reads @p len bytes at @p addr into @p out. Unwritten bytes are 0. */
    void readBytes(Addr addr, void *out, std::uint64_t len) const;

    /** Writes @p len bytes from @p in at @p addr. */
    void writeBytes(Addr addr, const void *in, std::uint64_t len);

    /** Zero-extending little-endian load of @p bytes (1..8). */
    std::uint64_t load(Addr addr, std::uint32_t bytes) const;

    /** Little-endian store of the low @p bytes of @p value (1..8). */
    void store(Addr addr, std::uint32_t bytes, std::uint64_t value);

    /** Number of materialized 4 KiB pages (for footprint checks). */
    std::size_t pagesAllocated() const { return pages_.size(); }

    /** Drops all contents. */
    void clear() { pages_.clear(); }

    /**
     * Enables (or disables) internal locking so node phases of the phased
     * engine may load/store concurrently: reads share, writes (which may
     * materialize pages and rehash the page table) are exclusive. Off by
     * default — the sequential engine pays nothing.
     */
    void setConcurrent(bool on) { concurrent_ = on; }

  private:
    using Page = std::vector<std::uint8_t>;

    const Page *findPage(std::uint64_t idx) const;
    Page &touchPage(std::uint64_t idx);

    std::shared_lock<std::shared_mutex>
    readLock() const
    {
        return concurrent_ ? std::shared_lock(mu_)
                           : std::shared_lock<std::shared_mutex>();
    }
    std::unique_lock<std::shared_mutex>
    writeLock()
    {
        return concurrent_ ? std::unique_lock(mu_)
                           : std::unique_lock<std::shared_mutex>();
    }

    void readBytesImpl(Addr addr, void *out, std::uint64_t len) const;
    void writeBytesImpl(Addr addr, const void *in, std::uint64_t len);

    std::unordered_map<std::uint64_t, Page> pages_;
    bool concurrent_ = false;
    mutable std::shared_mutex mu_;
};

} // namespace smappic::mem
