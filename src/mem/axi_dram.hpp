/**
 * @file
 * AXI4-attached DRAM device modelling one F1 DDR4 channel: a functional
 * window into MainMemory plus a latency/bandwidth performance model.
 */

#pragma once

#include <cstdint>
#include <functional>

#include "axi/axi.hpp"
#include "mem/main_memory.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/server.hpp"
#include "sim/types.hpp"

namespace smappic::mem
{

/** Timing knobs of one DDR4 channel. */
struct DramTiming
{
    Cycles latency = 80;        ///< Closed-page access latency (Table 2).
    double bytesPerCycle = 160.0; ///< DDR4 bandwidth per 100 MHz cycle.
};

/**
 * One DRAM channel with asynchronous completion. Reads/writes address a
 * window of the shared MainMemory starting at @p base.
 */
class AxiDram
{
  public:
    using ReadFn = std::function<void(axi::ReadResp)>;
    using WriteFn = std::function<void(axi::WriteResp)>;

    AxiDram(sim::EventQueue &eq, MainMemory &memory, Addr base,
            std::uint64_t size, const DramTiming &timing);

    /** Issues a read; @p done fires when data returns from the channel. */
    void read(const axi::ReadReq &req, ReadFn done);

    /** Issues a write; @p done fires when the channel acknowledges. */
    void write(const axi::WriteReq &req, WriteFn done);

    /**
     * Attaches a fault injector (null to detach). Sites "dram.read" /
     * "dram.write": corrupt flips a single data bit (an uncorrected DRAM
     * error), delay adds service cycles, slverr fails the transaction.
     */
    void setFaultInjector(sim::FaultInjector *fi) { fault_ = fi; }

    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    Addr base() const { return base_; }
    std::uint64_t size() const { return size_; }

    /** Functional store behind this channel (for read-modify-write). */
    MainMemory &memory() { return memory_; }

    /** Serializes the channel server and access counters (the data lives
     *  in MainMemory, captured separately). */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    Cycles serviceCycles(std::uint64_t bytes) const;

    sim::EventQueue &eq_;
    MainMemory &memory_;
    Addr base_;
    std::uint64_t size_;
    DramTiming timing_;
    sim::FaultInjector *fault_ = nullptr;
    sim::QueueServer channel_;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

} // namespace smappic::mem
