#include "mem/noc_axi_memctrl.hpp"

#include <algorithm>
#include <cstring>

#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::mem
{

NocAxiMemController::NocAxiMemController(NodeId node, sim::EventQueue &eq,
                                         AxiDram &dram,
                                         const MemCtrlConfig &cfg,
                                         sim::StatRegistry *stats)
    : node_(node), eq_(eq), dram_(dram), cfg_(cfg), stats_(stats)
{
    fatalIf(cfg.mshrs == 0, "memory controller needs at least one MSHR");
    fatalIf(cfg.axiIds == 0, "memory controller needs at least one AXI ID");
    mshrTable_.resize(cfg.mshrs);
    idToMshr_.resize(cfg.axiIds, 0);
    for (std::uint32_t i = 0; i < cfg.axiIds; ++i)
        freeIds_.push_back(static_cast<std::uint16_t>(i));
}

void
NocAxiMemController::handlePacket(const noc::Packet &pkt)
{
    bool is_read = pkt.type == noc::MsgType::kMemRd ||
                   pkt.type == noc::MsgType::kNcLoad;
    bool is_write = pkt.type == noc::MsgType::kMemWr ||
                    pkt.type == noc::MsgType::kNcStore;
    panicIf(!is_read && !is_write,
            "memory controller received a non-memory packet");
    if (stats_)
        stats_->counter("memctrl.requests").increment();

    buffer_.push_back(pkt);
    if (stats_ && buffer_.size() > cfg_.bufferDepth)
        stats_->counter("memctrl.bufferOverflows").increment();
    eq_.schedule(cfg_.pipelineLatency, [this] { tryIssue(); });
}

void
NocAxiMemController::tryIssue()
{
    while (!buffer_.empty() && mshrsInUse_ < cfg_.mshrs &&
           !freeIds_.empty()) {
        noc::Packet pkt = buffer_.front();
        buffer_.pop_front();
        issue(pkt);
    }
}

void
NocAxiMemController::issue(const noc::Packet &pkt)
{
    bool is_read = pkt.type == noc::MsgType::kMemRd ||
                   pkt.type == noc::MsgType::kNcLoad;
    auto req_bytes = static_cast<std::uint32_t>(1u << pkt.sizeLog2);

    // Align to the 64-byte boundary the AXI4 interface requires.
    Addr aligned_base = pkt.addr & ~static_cast<Addr>(kCacheLineBytes - 1);
    Addr end = pkt.addr + req_bytes;
    Addr aligned_end =
        (end + kCacheLineBytes - 1) & ~static_cast<Addr>(kCacheLineBytes - 1);
    auto aligned_bytes = static_cast<std::uint32_t>(aligned_end -
                                                    aligned_base);

    // Allocate an MSHR and an AXI ID; record the ID->MSHR mapping.
    std::size_t mshr_idx = 0;
    while (mshr_idx < mshrTable_.size() && mshrTable_[mshr_idx].has_value())
        ++mshr_idx;
    panicIf(mshr_idx >= mshrTable_.size(), "issue() without a free MSHR");
    std::uint16_t axi_id = freeIds_.back();
    freeIds_.pop_back();
    idToMshr_[axi_id] = mshr_idx;

    mshrTable_[mshr_idx] =
        Mshr{pkt, aligned_base, aligned_bytes, is_read};
    ++mshrsInUse_;
    peakMshrs_ = std::max<std::uint64_t>(peakMshrs_, mshrsInUse_);

    if (is_read) {
        axi::ReadReq req;
        req.addr = aligned_base;
        req.bytes = aligned_bytes;
        req.id = axi_id;
        dram_.read(req, [this, axi_id](axi::ReadResp resp) {
            std::size_t idx = idToMshr_[axi_id];
            freeIds_.push_back(axi_id);
            complete(idx, std::move(resp.data), resp.resp);
        });
    } else {
        // Sub-line writes are aligned by read-modify-write; hardware uses
        // byte strobes to the same effect.
        axi::WriteReq req;
        req.addr = aligned_base;
        req.id = axi_id;
        req.data.resize(aligned_bytes);
        dram_.memory().readBytes(aligned_base, req.data.data(),
                                 aligned_bytes);
        std::size_t offset = pkt.addr - aligned_base;
        std::size_t copy = std::min<std::size_t>(
            req_bytes, pkt.payload.size() * 8);
        std::memcpy(req.data.data() + offset, pkt.payload.data(), copy);
        dram_.write(req, [this, axi_id](axi::WriteResp resp) {
            std::size_t idx = idToMshr_[axi_id];
            freeIds_.push_back(axi_id);
            complete(idx, {}, resp.resp);
        });
    }
}

void
NocAxiMemController::complete(std::size_t mshr_idx,
                              std::vector<std::uint8_t> data, axi::Resp resp)
{
    panicIf(!mshrTable_[mshr_idx].has_value(),
            "completion for an idle MSHR");
    Mshr mshr = *mshrTable_[mshr_idx];
    mshrTable_[mshr_idx].reset();
    --mshrsInUse_;
    ++served_;
    panicIf(resp != axi::Resp::kOkay,
            "DRAM returned an error to the memory controller");

    const noc::Packet &req = mshr.request;
    noc::Packet reply;
    reply.noc = noc::NocIndex::kNoc2;
    reply.srcNode = node_;
    reply.srcTile = noc::kOffChipTile;
    reply.dstNode = req.srcNode;
    reply.dstTile = req.srcTile;
    reply.mshr = req.mshr;
    reply.sizeLog2 = req.sizeLog2;
    reply.addr = req.addr;

    if (mshr.isRead) {
        reply.type = req.type == noc::MsgType::kNcLoad
                         ? noc::MsgType::kNcLoadResp
                         : noc::MsgType::kMemRdResp;
        // Select the requested bytes out of the aligned burst.
        auto req_bytes = static_cast<std::uint32_t>(1u << req.sizeLog2);
        std::size_t offset = req.addr - mshr.alignedBase;
        std::size_t flits = (req_bytes + 7) / 8;
        reply.payload.assign(flits, 0);
        std::memcpy(reply.payload.data(), data.data() + offset, req_bytes);
        if (fault_ && fault_->decide("memctrl.resp").corrupt) {
            fault_->corruptBytes(
                "memctrl.resp",
                reinterpret_cast<std::uint8_t *>(reply.payload.data()),
                reply.payload.size() * 8);
        }
    } else {
        reply.type = req.type == noc::MsgType::kNcStore
                         ? noc::MsgType::kNcStoreResp
                         : noc::MsgType::kMemWrResp;
    }

    if (stats_)
        stats_->counter("memctrl.responses").increment();
    if (send_) {
        eq_.schedule(cfg_.pipelineLatency,
                     [this, reply = std::move(reply)] { send_(reply); });
    }
    // A freed MSHR may unblock buffered requests.
    tryIssue();
}

bool
NocAxiMemController::idle() const
{
    return buffer_.empty() && mshrsInUse_ == 0;
}

Cycles
NocAxiMemController::nextDeadline() const
{
    return idle() ? sim::kNoDeadline : eq_.nextDeadline();
}

void
NocAxiMemController::saveState(snap::Writer &w) const
{
    fatalIf(!idle(), "memory controller checkpointed with in-flight "
                     "requests; checkpoints must be quiescent");
    w.u64(freeIds_.size());
    for (std::uint16_t id : freeIds_)
        w.u16(id);
    w.u64(peakMshrs_);
    w.u64(served_);
}

void
NocAxiMemController::restoreState(snap::Reader &r)
{
    std::uint64_t free_count = r.u64();
    fatalIf(free_count != freeIds_.size(),
            strfmt("checkpoint AXI-ID pool has %llu ids, controller "
                   "expects %llu",
                   static_cast<unsigned long long>(free_count),
                   static_cast<unsigned long long>(freeIds_.size())));
    for (std::uint16_t &id : freeIds_)
        id = r.u16();
    peakMshrs_ = r.u64();
    served_ = r.u64();
    buffer_.clear();
    for (auto &mshr : mshrTable_)
        mshr.reset();
    mshrsInUse_ = 0;
}

} // namespace smappic::mem
