#include "mem/axi_dram.hpp"

#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::mem
{

AxiDram::AxiDram(sim::EventQueue &eq, MainMemory &memory, Addr base,
                 std::uint64_t size, const DramTiming &timing)
    : eq_(eq), memory_(memory), base_(base), size_(size), timing_(timing)
{
    fatalIf(size == 0, "DRAM channel must have nonzero size");
}

Cycles
AxiDram::serviceCycles(std::uint64_t bytes) const
{
    if (timing_.bytesPerCycle <= 0.0)
        return 1;
    auto c = static_cast<Cycles>(static_cast<double>(bytes) /
                                     timing_.bytesPerCycle +
                                 0.999999);
    return c == 0 ? 1 : c;
}

void
AxiDram::read(const axi::ReadReq &req, ReadFn done)
{
    ++reads_;
    if (req.addr < base_ || req.addr - base_ + req.bytes > size_) {
        eq_.schedule(1, [done, id = req.id] {
            done(axi::ReadResp{axi::Resp::kSlvErr, {}, id});
        });
        return;
    }
    sim::FaultDecision fd;
    if (fault_)
        fd = fault_->decide("dram.read");
    if (fd.slvErr) {
        eq_.schedule(timing_.latency, [done, id = req.id] {
            done(axi::ReadResp{axi::Resp::kSlvErr, {}, id});
        });
        return;
    }
    auto grant = channel_.offer(eq_.now(), serviceCycles(req.bytes));
    Cycles completion = grant.done + timing_.latency + fd.extraDelay;
    bool corrupt = fd.corrupt;
    eq_.scheduleAt(completion, [this, req, done, corrupt] {
        axi::ReadResp resp;
        resp.id = req.id;
        resp.data.resize(req.bytes);
        memory_.readBytes(req.addr, resp.data.data(), req.bytes);
        if (corrupt && fault_ && !resp.data.empty())
            fault_->corruptBytes("dram.read", resp.data.data(),
                                 resp.data.size());
        done(std::move(resp));
    });
}

void
AxiDram::write(const axi::WriteReq &req, WriteFn done)
{
    ++writes_;
    if (req.addr < base_ || req.addr - base_ + req.data.size() > size_) {
        eq_.schedule(1, [done, id = req.id] {
            done(axi::WriteResp{axi::Resp::kSlvErr, id});
        });
        return;
    }
    sim::FaultDecision fd;
    if (fault_)
        fd = fault_->decide("dram.write");
    if (fd.slvErr) {
        eq_.schedule(timing_.latency, [done, id = req.id] {
            done(axi::WriteResp{axi::Resp::kSlvErr, id});
        });
        return;
    }
    auto grant = channel_.offer(eq_.now(), serviceCycles(req.data.size()));
    Cycles completion = grant.done + timing_.latency + fd.extraDelay;
    bool corrupt = fd.corrupt;
    eq_.scheduleAt(completion, [this, req = req, done, corrupt]() mutable {
        if (corrupt && fault_ && !req.data.empty())
            fault_->corruptBytes("dram.write", req.data.data(),
                                 req.data.size());
        memory_.writeBytes(req.addr, req.data.data(), req.data.size());
        done(axi::WriteResp{axi::Resp::kOkay, req.id});
    });
}

void
AxiDram::saveState(snap::Writer &w) const
{
    saveServer(w, channel_);
    w.u64(reads_);
    w.u64(writes_);
}

void
AxiDram::restoreState(snap::Reader &r)
{
    restoreServer(r, channel_);
    reads_ = r.u64();
    writes_ = r.u64();
}

} // namespace smappic::mem
