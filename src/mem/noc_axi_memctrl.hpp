/**
 * @file
 * SMAPPIC's NoC-AXI4 memory controller (paper section 3.2, Fig. 5).
 *
 * BYOC's native memory controller speaks the NoC protocol; F1 exposes
 * AXI4 DRAM interfaces. This controller transduces between them:
 *
 *   NoC deserializer -> management module (request buffering for
 *   non-blocking operation) -> read/write engines (AXI-ID assignment,
 *   MSHR + ID->MSHR mapping, 64-byte alignment) -> AXI4 -> responses are
 *   un-aligned (byte selection for sub-line reads), matched back to their
 *   MSHR, and re-serialized onto the NoC.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "mem/axi_dram.hpp"
#include "noc/packet.hpp"
#include "sim/event_queue.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::mem
{

/** Tunables of the NoC-AXI4 memory controller. */
struct MemCtrlConfig
{
    std::uint32_t mshrs = 16;        ///< Outstanding misses per engine.
    std::uint32_t axiIds = 16;       ///< AXI-ID pool per engine.
    std::uint32_t bufferDepth = 32;  ///< Management-module buffer depth.
    Cycles pipelineLatency = 4;      ///< Deserialize+steer+serialize cost.
};

/**
 * The controller. Requests arrive as NoC packets (kMemRd / kMemWr / NC
 * accesses targeted at memory); responses leave through a caller-provided
 * send function (typically the node's off-chip hub injecting into the
 * response NoC).
 */
class NocAxiMemController
{
  public:
    using SendFn = std::function<void(const noc::Packet &)>;

    NocAxiMemController(NodeId node, sim::EventQueue &eq, AxiDram &dram,
                        const MemCtrlConfig &cfg, sim::StatRegistry *stats);

    /** Response path back into the node's NoC. */
    void setSendFn(SendFn fn) { send_ = std::move(fn); }

    /**
     * Attaches a fault injector (null to detach). Site "memctrl.resp":
     * corrupt flips one bit of a read response's payload on its way back
     * to the NoC serializer (a transducer datapath upset).
     */
    void setFaultInjector(sim::FaultInjector *fi) { fault_ = fi; }

    /**
     * Accepts one request packet from the NoC (deserializer input).
     * Requests beyond the management buffer are queued without loss; real
     * hardware would exert NoC backpressure, which the credit-carrying
     * mesh models upstream.
     */
    void handlePacket(const noc::Packet &pkt);

    std::uint32_t mshrsInUse() const { return mshrsInUse_; }
    std::uint64_t peakMshrsInUse() const { return peakMshrs_; }
    std::uint64_t requestsServed() const { return served_; }
    bool idle() const;

    /**
     * Horizon query for idle skipping: the earliest cycle at which the
     * controller can make progress, or sim::kNoDeadline when idle. All
     * of the controller's timing — DRAM completions, response
     * serialization — is scheduled on the shared event queue, so a
     * non-idle controller's horizon is exactly the queue's next
     * deadline; there is no private timer that could fire sooner.
     */
    Cycles nextDeadline() const;

    /**
     * Serializes the AXI-ID free-list order (a permutation of usage
     * history) and counters. Checkpoints are quiescent, so the request
     * buffer and MSHR table are empty by construction (checked).
     */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    struct Mshr
    {
        noc::Packet request; ///< Original request (origin, tag, size).
        Addr alignedBase = 0;
        std::uint32_t alignedBytes = 0;
        bool isRead = true;
    };

    void tryIssue();
    void issue(const noc::Packet &pkt);
    void complete(std::size_t mshr_idx, std::vector<std::uint8_t> data,
                  axi::Resp resp);

    NodeId node_;
    sim::EventQueue &eq_;
    AxiDram &dram_;
    MemCtrlConfig cfg_;
    sim::StatRegistry *stats_;
    sim::FaultInjector *fault_ = nullptr;
    SendFn send_;

    std::deque<noc::Packet> buffer_; ///< Management-module queue.
    std::vector<std::optional<Mshr>> mshrTable_;
    std::vector<std::uint16_t> freeIds_;
    std::vector<std::size_t> idToMshr_; ///< AXI-ID -> MSHR index.
    std::uint32_t mshrsInUse_ = 0;
    std::uint64_t peakMshrs_ = 0;
    std::uint64_t served_ = 0;
};

} // namespace smappic::mem
