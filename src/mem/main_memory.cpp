#include "mem/main_memory.hpp"

#include <algorithm>

namespace smappic::mem
{

const MainMemory::Page *
MainMemory::findPage(std::uint64_t idx) const
{
    auto it = pages_.find(idx);
    return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page &
MainMemory::touchPage(std::uint64_t idx)
{
    auto it = pages_.find(idx);
    if (it == pages_.end())
        it = pages_.emplace(idx, Page(kPageBytes, 0)).first;
    return it->second;
}

void
MainMemory::readBytes(Addr addr, void *out, std::uint64_t len) const
{
    auto lock = readLock();
    readBytesImpl(addr, out, len);
}

void
MainMemory::readBytesImpl(Addr addr, void *out, std::uint64_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        std::uint64_t page = addr / kPageBytes;
        std::uint64_t off = addr % kPageBytes;
        std::uint64_t chunk = std::min(len, kPageBytes - off);
        if (const Page *p = findPage(page))
            std::memcpy(dst, p->data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MainMemory::writeBytes(Addr addr, const void *in, std::uint64_t len)
{
    auto lock = writeLock();
    writeBytesImpl(addr, in, len);
}

void
MainMemory::writeBytesImpl(Addr addr, const void *in, std::uint64_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        std::uint64_t page = addr / kPageBytes;
        std::uint64_t off = addr % kPageBytes;
        std::uint64_t chunk = std::min(len, kPageBytes - off);
        std::memcpy(touchPage(page).data() + off, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

std::uint64_t
MainMemory::load(Addr addr, std::uint32_t bytes) const
{
    panicIf(bytes == 0 || bytes > 8, "load width must be 1..8 bytes");
    std::uint64_t value = 0;
    auto lock = readLock();
    // Host is little-endian like RISC-V.
    readBytesImpl(addr, &value, bytes);
    return value;
}

void
MainMemory::store(Addr addr, std::uint32_t bytes, std::uint64_t value)
{
    panicIf(bytes == 0 || bytes > 8, "store width must be 1..8 bytes");
    auto lock = writeLock();
    writeBytesImpl(addr, &value, bytes);
}

} // namespace smappic::mem
