#include "mem/main_memory.hpp"

#include <algorithm>

#include "snap/state_io.hpp"

namespace smappic::mem
{

const MainMemory::PageEntry *
MainMemory::findPage(std::uint64_t idx) const
{
    auto it = pages_.find(idx);
    return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::PageEntry &
MainMemory::touchPage(std::uint64_t idx)
{
    auto it = pages_.find(idx);
    if (it == pages_.end()) {
        it = pages_.emplace(idx, PageEntry{}).first;
        it->second.bytes.assign(kPageBytes, 0);
    }
    PageEntry &page = it->second;
    page.epoch = epoch_;
    if (page.stamp == nullptr)
        page.stamp = &stampSlot(idx);
    // Bumped before the caller mutates the bytes: a CodeRef sampled
    // around the write can only go conservatively stale, never miss it.
    page.stamp->fetch_add(1, std::memory_order_release);
    return page;
}

std::atomic<std::uint64_t> &
MainMemory::stampSlot(std::uint64_t idx)
{
    auto &slot = stamps_[idx];
    if (!slot)
        slot = std::make_unique<std::atomic<std::uint64_t>>(0);
    return *slot;
}

void
MainMemory::bumpAllStamps()
{
    for (auto &[idx, slot] : stamps_)
        slot->fetch_add(1, std::memory_order_release);
}

const std::atomic<std::uint64_t> &
MainMemory::pageWriteStamp(Addr addr)
{
    // Write lock: the slot may have to be created, rehashing stamps_.
    auto lock = writeLock();
    return stampSlot(addr / kPageBytes);
}

void
MainMemory::clear()
{
    auto lock = writeLock();
    pages_.clear();
    bumpAllStamps();
}

void
MainMemory::readBytes(Addr addr, void *out, std::uint64_t len) const
{
    auto lock = readLock();
    readBytesImpl(addr, out, len);
}

void
MainMemory::readBytesImpl(Addr addr, void *out, std::uint64_t len) const
{
    auto *dst = static_cast<std::uint8_t *>(out);
    while (len > 0) {
        std::uint64_t page = addr / kPageBytes;
        std::uint64_t off = addr % kPageBytes;
        std::uint64_t chunk = std::min(len, kPageBytes - off);
        if (const PageEntry *p = findPage(page))
            std::memcpy(dst, p->bytes.data() + off, chunk);
        else
            std::memset(dst, 0, chunk);
        dst += chunk;
        addr += chunk;
        len -= chunk;
    }
}

void
MainMemory::writeBytes(Addr addr, const void *in, std::uint64_t len)
{
    auto lock = writeLock();
    writeBytesImpl(addr, in, len);
}

void
MainMemory::writeBytesImpl(Addr addr, const void *in, std::uint64_t len)
{
    const auto *src = static_cast<const std::uint8_t *>(in);
    while (len > 0) {
        std::uint64_t page = addr / kPageBytes;
        std::uint64_t off = addr % kPageBytes;
        std::uint64_t chunk = std::min(len, kPageBytes - off);
        std::memcpy(touchPage(page).bytes.data() + off, src, chunk);
        src += chunk;
        addr += chunk;
        len -= chunk;
    }
}

std::uint64_t
MainMemory::load(Addr addr, std::uint32_t bytes) const
{
    panicIf(bytes == 0 || bytes > 8, "load width must be 1..8 bytes");
    std::uint64_t value = 0;
    auto lock = readLock();
    // Host is little-endian like RISC-V.
    readBytesImpl(addr, &value, bytes);
    return value;
}

void
MainMemory::store(Addr addr, std::uint32_t bytes, std::uint64_t value)
{
    panicIf(bytes == 0 || bytes > 8, "store width must be 1..8 bytes");
    auto lock = writeLock();
    writeBytesImpl(addr, &value, bytes);
}

std::size_t
MainMemory::pagesDirtySince(std::uint64_t since) const
{
    auto lock = readLock();
    std::size_t n = 0;
    for (const auto &[idx, page] : pages_) {
        if (page.epoch >= since)
            ++n;
    }
    return n;
}

void
MainMemory::saveState(snap::Writer &w) const
{
    auto lock = readLock();
    std::vector<std::uint64_t> indices;
    indices.reserve(pages_.size());
    for (const auto &[idx, page] : pages_)
        indices.push_back(idx);
    std::sort(indices.begin(), indices.end());
    w.u64(indices.size());
    for (std::uint64_t idx : indices) {
        const PageEntry &page = pages_.at(idx);
        w.u64(idx);
        w.bytes(page.bytes.data(), page.bytes.size());
    }
}

void
MainMemory::restoreState(snap::Reader &r)
{
    auto lock = writeLock();
    pages_.clear();
    // Every memoized reader (decode caches) must drop bytes read from
    // the pre-restore image, including from pages absent afterwards.
    bumpAllStamps();
    epoch_ = 0;
    std::uint64_t count = r.u64();
    pages_.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t idx = r.u64();
        PageEntry &page = pages_[idx];
        page.bytes.resize(kPageBytes);
        r.bytes(page.bytes.data(), kPageBytes);
    }
}

} // namespace smappic::mem
