#include "check/torture.hpp"

#include <sstream>

#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic::check
{
namespace
{

constexpr std::uint32_t kSlotsPerLine = kCacheLineBytes / 8;

std::string
reproCommand(const TortureConfig &cfg)
{
    std::ostringstream os;
    os << "litmus_run --torture --spec " << cfg.spec << " --seed "
       << cfg.seed << " --ops " << cfg.opsPerCore << " --lines "
       << cfg.sharedLines;
    if (cfg.parallel.threads > 1 || cfg.parallel.quantum > 0)
        os << " --threads " << cfg.parallel.threads << " --quantum "
           << cfg.parallel.quantum;
    return os.str();
}

} // namespace

TortureProgram
generateTorture(const TortureConfig &cfg)
{
    fatalIf(cfg.sharedLines == 0 || cfg.sharedLines > 32,
            "torture: sharedLines must be in 1..32 (imm12 addressing)");
    fatalIf(cfg.opsPerCore == 0, "torture: opsPerCore must be positive");

    platform::PrototypeConfig pcfg =
        platform::PrototypeConfig::parse(cfg.spec);
    std::uint32_t ncores = pcfg.totalTiles();
    std::uint32_t nslots = cfg.sharedLines * kSlotsPerLine;

    TortureProgram out;
    out.finalSlots.assign(nslots, 0);
    out.checksums.assign(ncores, 0);

    std::ostringstream os;
    os << "_start:\n    csrr a0, 0xf14\n";
    for (std::uint32_t c = 0; c < ncores; ++c) {
        os << "    li a1, " << c << "\n";
        os << "    beq a0, a1, core_" << c << "\n";
    }
    os << "    li a0, 0\n    li a7, 93\n    ecall\n";

    for (std::uint32_t c = 0; c < ncores; ++c) {
        // Slot ownership: global slot G belongs to core G % ncores, so
        // every shared line is written by several cores (false sharing)
        // while no two cores ever write the same byte.
        std::vector<std::uint32_t> own;
        std::vector<std::uint32_t> foreign;
        for (std::uint32_t g = 0; g < nslots; ++g)
            (g % ncores == c ? own : foreign).push_back(g);
        panicIf(own.empty(), "torture: a core owns no slots");
        if (foreign.empty())
            foreign = own; // single-core degenerate case

        // Golden replay runs alongside emission: a core's own slots are
        // written only by itself, so the value an own-slot load returns
        // is its last own store regardless of global interleaving.
        std::vector<std::uint64_t> image(nslots, 0);

        sim::Xoroshiro rng(cfg.seed * 0x9e3779b97f4a7c15ULL + c + 1);
        os << "core_" << c << ":\n";
        os << "    la s0, shared\n";
        os << "    li s1, 0\n";
        for (std::uint32_t i = 0; i < cfg.opsPerCore; ++i) {
            std::uint64_t kind = rng.next() % 100;
            if (kind < 45) { // store to an own slot
                std::uint32_t g = own[rng.next() % own.size()];
                std::uint64_t val = rng.next() & 0xffffffffULL;
                os << "    li a3, " << val << "\n";
                os << "    sd a3, " << g * 8 << "(s0)\n";
                image[g] = val;
                out.finalSlots[g] = val;
            } else if (kind < 75) { // load an own slot into the checksum
                std::uint32_t g = own[rng.next() % own.size()];
                os << "    ld a3, " << g * 8 << "(s0)\n";
                os << "    xor s1, s1, a3\n";
                out.checksums[c] ^= image[g];
            } else { // load a foreign slot: coherence traffic only
                std::uint32_t g = foreign[rng.next() % foreign.size()];
                os << "    ld a2, " << g * 8 << "(s0)\n";
            }
        }
        os << "    la a4, chk\n";
        os << "    sd s1, " << c * 8 << "(a4)\n";
        os << "    li a0, 0\n    li a7, 93\n    ecall\n";
    }

    os << "\n.data\n.align 6\nshared:\n";
    os << "    .space " << nslots * 8 << "\n";
    os << ".align 6\nchk:\n";
    os << "    .space " << ncores * 8 << "\n";
    out.source = os.str();
    return out;
}

TortureReport
runTorture(const TortureConfig &cfg)
{
    platform::PrototypeConfig pcfg =
        platform::PrototypeConfig::parse(cfg.spec);
    pcfg.parallel = cfg.parallel;
    pcfg.faultPlan = cfg.faultPlan;
    pcfg.reliability = cfg.reliability;
    pcfg.check = cfg.check;
    std::uint32_t ncores = pcfg.totalTiles();

    TortureProgram gen = generateTorture(cfg);

    TortureReport rep;
    rep.seed = cfg.seed;
    rep.opsPerCore = cfg.opsPerCore;
    rep.sharedLines = cfg.sharedLines;
    rep.repro = reproCommand(cfg);

    platform::Prototype proto(pcfg);
    riscv::Program prog = proto.loadSource(gen.source);
    if (cfg.preRun)
        cfg.preRun(proto, prog);

    std::vector<GlobalTileId> gids;
    for (std::uint32_t c = 0; c < ncores; ++c)
        gids.push_back(c);
    proto.runCores(gids, cfg.maxInstructions);

    auto mismatch = [&](const std::string &what) {
        if (rep.mismatches.size() < 32)
            rep.mismatches.push_back(what);
        else if (rep.mismatches.size() == 32)
            rep.mismatches.push_back("... (further mismatches elided)");
    };

    for (std::uint32_t c = 0; c < ncores; ++c) {
        if (!proto.core(c).exited())
            mismatch(strfmt("core %u did not exit", c));
        else if (proto.core(c).exitCode() != 0)
            mismatch(strfmt("core %u exited with %lld", c,
                            static_cast<long long>(
                                proto.core(c).exitCode())));
    }

    Addr shared = prog.symbol("shared");
    for (std::uint32_t g = 0; g < gen.finalSlots.size(); ++g) {
        std::uint64_t got = proto.memory().load(shared + g * 8, 8);
        if (got != gen.finalSlots[g])
            mismatch(strfmt("slot %u (line %u, owner %u): got 0x%llx, "
                            "golden 0x%llx",
                            g, g / kSlotsPerLine, g % ncores,
                            static_cast<unsigned long long>(got),
                            static_cast<unsigned long long>(
                                gen.finalSlots[g])));
    }
    Addr chk = prog.symbol("chk");
    for (std::uint32_t c = 0; c < ncores; ++c) {
        std::uint64_t got = proto.memory().load(chk + c * 8, 8);
        if (got != gen.checksums[c])
            mismatch(strfmt("core %u checksum: got 0x%llx, golden 0x%llx",
                            c, static_cast<unsigned long long>(got),
                            static_cast<unsigned long long>(
                                gen.checksums[c])));
    }

    if (CoherenceChecker *chkr = proto.checker()) {
        chkr->sweep();
        rep.checkerViolations = chkr->violationCount();
    }

    rep.passed = rep.mismatches.empty() && rep.checkerViolations == 0;
    return rep;
}

TortureReport
runAndMinimize(TortureConfig cfg)
{
    TortureReport rep = runTorture(cfg);
    if (rep.passed)
        return rep;

    std::uint32_t steps = 0;
    // Shrink the program first: a shorter failing program localizes the
    // bug better than a smaller address set.
    while (cfg.opsPerCore > 4) {
        TortureConfig trial = cfg;
        trial.opsPerCore = cfg.opsPerCore / 2;
        TortureReport r = runTorture(trial);
        ++steps;
        if (r.passed)
            break;
        cfg = trial;
        rep = r;
    }
    while (cfg.sharedLines > 1) {
        TortureConfig trial = cfg;
        trial.sharedLines = cfg.sharedLines / 2;
        TortureReport r = runTorture(trial);
        ++steps;
        if (r.passed)
            break;
        cfg = trial;
        rep = r;
    }
    rep.shrinkSteps = steps;
    return rep;
}

} // namespace smappic::check
