#include "check/coherence_checker.hpp"

#include "sim/log.hpp"

namespace smappic::check
{

CoherenceChecker::CoherenceChecker(cache::CoherentSystem &cs,
                                   CheckConfig cfg,
                                   sim::StatRegistry *stats)
    : cs_(cs), cfg_(cfg), stats_(stats)
{
}

void
CoherenceChecker::report(Addr line, const std::string &what)
{
    ++violationCount_;
    if (stats_)
        stats_->counter("check.violations").increment();
    std::string msg =
        strfmt("coherence violation at line 0x%llx: ",
               static_cast<unsigned long long>(line)) +
        what;
    if (cfg_.panicOnViolation)
        panic(msg);
    if (violations_.size() < cfg_.maxViolations)
        violations_.push_back(Violation{msg, line, eventsChecked_});
}

std::uint64_t
CoherenceChecker::checkLine(Addr line)
{
    using cache::CoherentSystem;
    std::uint64_t before = violationCount_;
    cache::LineView v = cs_.inspectLine(line);

    // 1. SWMR over actual cache states.
    std::uint32_t copies = 0;
    std::uint32_t modified = 0;
    for (std::uint32_t g = 0; g < v.tiles.size(); ++g) {
        if (!v.tiles[g].inBpc)
            continue;
        ++copies;
        if (v.tiles[g].bpcState == CoherentSystem::kLineModified)
            ++modified;
    }
    if (modified > 1)
        report(line, strfmt("%u modified private copies (SWMR)", modified));
    else if (modified == 1 && copies > 1)
        report(line, strfmt("modified copy coexists with %u other "
                            "copies (SWMR)",
                            copies - 1));

    // 2. Directory precision.
    if (v.owner >= 0 &&
        (v.sharers & ~(1ULL << static_cast<std::uint32_t>(v.owner))) != 0)
        report(line, "directory lists sharers alongside an owner");
    for (std::uint32_t g = 0; g < v.tiles.size(); ++g) {
        bool dir_owner = v.owner == static_cast<std::int32_t>(g);
        bool dir_member = dir_owner || ((v.sharers >> g) & 1) != 0;
        const cache::TileLineView &t = v.tiles[g];
        if (dir_member && !t.inBpc) {
            report(line, strfmt("directory names tile %u but its BPC "
                                "lacks the line",
                                g));
        } else if (!dir_member && t.inBpc) {
            report(line, strfmt("tile %u holds a copy the directory "
                                "does not name (stale?)",
                                g));
        } else if (t.inBpc) {
            std::uint32_t want = dir_owner ? CoherentSystem::kLineModified
                                           : CoherentSystem::kLineShared;
            if (t.bpcState != want)
                report(line,
                       strfmt("tile %u BPC state %u disagrees with "
                              "directory (%s expected)",
                              g, t.bpcState,
                              dir_owner ? "modified" : "shared"));
        }
    }

    // 3. Inclusion: L1 within BPC; private copies within the home LLC;
    //    directory LLC bit vs the home slice tag array.
    bool any_private = false;
    for (std::uint32_t g = 0; g < v.tiles.size(); ++g) {
        const cache::TileLineView &t = v.tiles[g];
        any_private = any_private || t.inBpc;
        if ((t.inL1d || t.inL1i) && !t.inBpc)
            report(line,
                   strfmt("tile %u L1 holds the line outside its BPC "
                          "(inclusion)",
                          g));
    }
    if (any_private && !(v.hasDirEntry && v.inLlc && v.homeSliceHolds))
        report(line, "private copies without a resident home-LLC line "
                     "(inclusion)");
    if (v.hasDirEntry && v.inLlc != v.homeSliceHolds)
        report(line, "directory LLC-residency bit disagrees with the "
                     "home slice");
    if (!v.hasDirEntry && v.homeSliceHolds)
        report(line, "home slice holds a line without a directory entry");

    return violationCount_ - before;
}

void
CoherenceChecker::onEvent(const cache::CoherenceEvent &ev)
{
    ++eventsChecked_;
    checkLine(ev.line);
}

std::uint64_t
CoherenceChecker::sweep()
{
    std::uint64_t found = 0;
    cs_.forEachKnownLine([&](Addr line) { found += checkLine(line); });
    return found;
}

void
CoherenceChecker::reset()
{
    violations_.clear();
    violationCount_ = 0;
    eventsChecked_ = 0;
}

} // namespace smappic::check
