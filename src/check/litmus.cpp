#include "check/litmus.hpp"

#include <algorithm>
#include <sstream>

#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic::check
{
namespace
{

/** Replaces every `%t` in @p body with the thread index @p t. */
std::string
mangle(const std::string &body, std::size_t t)
{
    std::string out;
    out.reserve(body.size());
    for (std::size_t i = 0; i < body.size(); ++i) {
        if (body[i] == '%' && i + 1 < body.size() && body[i + 1] == 't') {
            out += std::to_string(t);
            ++i;
        } else {
            out += body[i];
        }
    }
    return out;
}

} // namespace

std::string
emitLitmusAsm(const LitmusTest &test,
              const std::vector<GlobalTileId> &harts,
              const std::vector<std::uint32_t> &skews)
{
    fatalIf(test.locations.empty() || test.locations.size() > 4,
            "litmus test '" + test.name + "': need 1..4 locations");
    fatalIf(test.threads.empty() || test.threads.size() > harts.size(),
            "litmus test '" + test.name + "': bad thread/hart count");
    fatalIf(skews.size() != test.threads.size(),
            "litmus test '" + test.name + "': one skew per thread");

    static const char *kLocRegs[4] = {"s2", "s3", "s4", "s5"};

    std::ostringstream os;
    os << "_start:\n";
    os << "    csrr a0, 0xf14\n"; // mhartid
    for (std::size_t j = 0; j < test.threads.size(); ++j) {
        os << "    li a1, " << harts[j] << "\n";
        os << "    beq a0, a1, entry_" << j << "\n";
    }
    // A hart outside the placement just exits cleanly.
    os << "    li a0, 0\n    li a7, 93\n    ecall\n";

    for (std::size_t j = 0; j < test.threads.size(); ++j) {
        const LitmusThread &th = test.threads[j];
        os << "entry_" << j << ":\n";
        // Start skew: a short counted delay loop shifts this thread's
        // first racing access relative to the others.
        os << "    li a5, " << skews[j] << "\n";
        os << "skew_" << j << ":\n";
        os << "    beqz a5, go_" << j << "\n";
        os << "    addi a5, a5, -1\n";
        os << "    j skew_" << j << "\n";
        os << "go_" << j << ":\n";
        for (std::size_t l = 0; l < test.locations.size(); ++l)
            os << "    la " << kLocRegs[l] << ", " << test.locations[l]
               << "\n";
        os << mangle(th.body, j);
        if (!th.body.empty() && th.body.back() != '\n')
            os << "\n";
        if (!th.observed.empty()) {
            os << "    la a4, res_" << j << "\n";
            for (std::size_t k = 0; k < th.observed.size(); ++k)
                os << "    sd " << th.observed[k] << ", " << 8 * k
                   << "(a4)\n";
        }
        os << "    li a0, 0\n    li a7, 93\n    ecall\n";
    }

    os << "\n.data\n";
    for (const std::string &loc : test.locations)
        os << ".align 6\n" << loc << ": .dword 0\n"; // own cache line
    for (std::size_t j = 0; j < test.threads.size(); ++j) {
        if (test.threads[j].observed.empty())
            continue;
        os << ".align 6\nres_" << j << ":\n";
        for (std::size_t k = 0; k < test.threads[j].observed.size(); ++k)
            os << "    .dword 0\n";
    }
    return os.str();
}

std::vector<GlobalTileId>
litmusPlacement(const platform::PrototypeConfig &cfg, std::size_t threads)
{
    fatalIf(threads > cfg.totalTiles(),
            "litmus placement: more threads than harts");
    std::uint32_t nodes = cfg.totalNodes();
    std::vector<GlobalTileId> harts;
    for (std::size_t j = 0; j < threads; ++j) {
        std::uint32_t node = static_cast<std::uint32_t>(j) % nodes;
        std::uint32_t tile = static_cast<std::uint32_t>(j) / nodes;
        harts.push_back(node * cfg.tilesPerNode + tile);
    }
    return harts;
}

std::string
LitmusResult::histogram() const
{
    // Outcome tuple -> count, first-seen order.
    std::vector<std::pair<std::vector<std::uint64_t>, std::uint64_t>> h;
    for (const LitmusOutcome &o : outcomes) {
        auto it = std::find_if(h.begin(), h.end(), [&](const auto &e) {
            return e.first == o.values;
        });
        if (it == h.end())
            h.emplace_back(o.values, 1);
        else
            it->second += 1;
    }
    std::ostringstream os;
    for (std::size_t i = 0; i < h.size(); ++i) {
        if (i)
            os << "  ";
        for (std::size_t k = 0; k < h[i].first.size(); ++k)
            os << (k ? "," : "") << h[i].first[k];
        os << " x" << h[i].second;
    }
    return os.str();
}

LitmusResult
runLitmus(const LitmusTest &test, const LitmusConfig &cfg)
{
    platform::PrototypeConfig pcfg =
        platform::PrototypeConfig::parse(cfg.spec);
    pcfg.parallel = cfg.parallel;
    pcfg.check = cfg.check;
    pcfg.core.dataFastPath = cfg.dataFastPath;
    pcfg.uncore.idleSkip = cfg.idleSkip;

    std::vector<GlobalTileId> harts =
        litmusPlacement(pcfg, test.threads.size());
    sim::Xoroshiro rng(cfg.seed);

    LitmusResult res;
    res.test = test.name;
    for (std::uint32_t it = 0; it < cfg.iterations; ++it) {
        std::vector<std::uint32_t> skews = cfg.fixedSkews;
        if (skews.empty()) {
            for (std::size_t j = 0; j < test.threads.size(); ++j)
                skews.push_back(
                    static_cast<std::uint32_t>(rng.next() % 48));
        }

        platform::Prototype proto(pcfg);
        // One single copy (not replicated): every thread races over the
        // same physical locations, crossing the bridge from remote nodes.
        riscv::Program prog =
            proto.loadSource(emitLitmusAsm(test, harts, skews));
        if (cfg.preRun)
            cfg.preRun(proto, prog);
        proto.runCores(harts, cfg.maxInstructions);

        LitmusOutcome out;
        for (std::size_t j = 0; j < test.threads.size(); ++j) {
            if (test.threads[j].observed.empty())
                continue;
            Addr base = prog.symbol("res_" + std::to_string(j));
            for (std::size_t k = 0; k < test.threads[j].observed.size();
                 ++k)
                out.values.push_back(proto.memory().load(base + 8 * k, 8));
        }
        out.allowed = std::find(test.allowed.begin(), test.allowed.end(),
                                out.values) != test.allowed.end();
        res.outcomes.push_back(std::move(out));

        if (CoherenceChecker *chk = proto.checker()) {
            chk->sweep(); // end-of-run whole-state validation
            res.checkerViolations += chk->violationCount();
        }
    }

    res.passed = res.checkerViolations == 0 &&
                 std::all_of(res.outcomes.begin(), res.outcomes.end(),
                             [](const LitmusOutcome &o) {
                                 return o.allowed;
                             });
    return res;
}

namespace
{

/** All 2^n binary tuples except the listed forbidden ones. */
std::vector<std::vector<std::uint64_t>>
allBinaryExcept(std::size_t n,
                const std::vector<std::vector<std::uint64_t>> &forbidden)
{
    std::vector<std::vector<std::uint64_t>> out;
    for (std::uint64_t bits = 0; bits < (1ULL << n); ++bits) {
        std::vector<std::uint64_t> tuple;
        for (std::size_t k = 0; k < n; ++k)
            tuple.push_back((bits >> k) & 1);
        if (std::find(forbidden.begin(), forbidden.end(), tuple) ==
            forbidden.end())
            out.push_back(tuple);
    }
    return out;
}

} // namespace

std::vector<LitmusTest>
standardLitmusSuite()
{
    std::vector<LitmusTest> suite;

    // SB: both store then read the other's location; SC forbids both
    // reads missing both stores.
    suite.push_back(LitmusTest{
        "SB",
        {"x", "y"},
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n"
          "    ld t0, 0(s3)\n",
          {"t0"}},
         {"    li t1, 1\n"
          "    sd t1, 0(s3)\n"
          "    ld t0, 0(s2)\n",
          {"t0"}}},
        allBinaryExcept(2, {{0, 0}}),
    });

    // MP: writer publishes data then flag; a reader that saw the flag
    // must see the data.
    suite.push_back(LitmusTest{
        "MP",
        {"x", "y"}, // x = data, y = flag
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n"
          "    sd t1, 0(s3)\n",
          {}},
         {"    ld t0, 0(s3)\n"
          "    ld t1, 0(s2)\n",
          {"t0", "t1"}}},
        allBinaryExcept(2, {{1, 0}}),
    });

    // MP+spin: the reader spins (bounded) on the flag, making the
    // forbidden stale-data window much more likely to be exercised.
    suite.push_back(LitmusTest{
        "MP+spin",
        {"x", "y"},
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n"
          "    sd t1, 0(s3)\n",
          {}},
         {"    li a2, 0\n"
          "spin%t:\n"
          "    ld t0, 0(s3)\n"
          "    bnez t0, seen%t\n"
          "    addi a2, a2, 1\n"
          "    li a3, 2000\n"
          "    blt a2, a3, spin%t\n"
          "seen%t:\n"
          "    ld t1, 0(s2)\n",
          {"t0", "t1"}}},
        allBinaryExcept(2, {{1, 0}}),
    });

    // LB: both read then store the other's location; SC forbids both
    // reads observing the (program-order later) stores.
    suite.push_back(LitmusTest{
        "LB",
        {"x", "y"},
        {{"    ld t0, 0(s3)\n"
          "    li t1, 1\n"
          "    sd t1, 0(s2)\n",
          {"t0"}},
         {"    ld t0, 0(s2)\n"
          "    li t1, 1\n"
          "    sd t1, 0(s3)\n",
          {"t0"}}},
        allBinaryExcept(2, {{1, 1}}),
    });

    // CoRR: two reads of one location may not observe a write then
    // un-observe it.
    suite.push_back(LitmusTest{
        "CoRR",
        {"x"},
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n",
          {}},
         {"    ld t0, 0(s2)\n"
          "    ld t1, 0(s2)\n",
          {"t0", "t1"}}},
        allBinaryExcept(2, {{1, 0}}),
    });

    // CoWW: same-location writes are totally ordered; reads observe a
    // non-decreasing prefix 0 -> 1 -> 2.
    suite.push_back(LitmusTest{
        "CoWW",
        {"x"},
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n"
          "    li t1, 2\n"
          "    sd t1, 0(s2)\n",
          {}},
         {"    ld t0, 0(s2)\n"
          "    ld t1, 0(s2)\n",
          {"t0", "t1"}}},
        {{0, 0}, {0, 1}, {0, 2}, {1, 1}, {1, 2}, {2, 2}},
    });

    // IRIW: two independent writers, two readers reading in opposite
    // order; SC forbids the readers disagreeing on the write order.
    suite.push_back(LitmusTest{
        "IRIW",
        {"x", "y"},
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n",
          {}},
         {"    li t1, 1\n"
          "    sd t1, 0(s3)\n",
          {}},
         {"    ld t0, 0(s2)\n"
          "    ld t1, 0(s3)\n",
          {"t0", "t1"}},
         {"    ld t0, 0(s3)\n"
          "    ld t1, 0(s2)\n",
          {"t0", "t1"}}},
        allBinaryExcept(4, {{1, 0, 1, 0}}),
    });

    return suite;
}

LitmusTest
mutationCatchTest()
{
    // MP where the reader first pulls the data line into its private
    // caches. With TestMutation::kLostInvalidation armed on the data
    // line, the writer's store fails to invalidate that copy, so the
    // reader sees the flag yet still reads stale data = 0: the forbidden
    // (1, 0) outcome. On unmutated code this is plain MP and must pass.
    return LitmusTest{
        "MP+preload",
        {"x", "y"}, // x = data, y = flag
        {{"    li t1, 1\n"
          "    sd t1, 0(s2)\n"
          "    sd t1, 0(s3)\n",
          {}},
         {"    ld t2, 0(s2)\n" // preload the data line (shared copy)
          "    li a2, 0\n"
          "spin%t:\n"
          "    ld t0, 0(s3)\n"
          "    bnez t0, seen%t\n"
          "    addi a2, a2, 1\n"
          "    li a3, 4000\n"
          "    blt a2, a3, spin%t\n"
          "seen%t:\n"
          "    ld t1, 0(s2)\n",
          {"t0", "t1"}}},
        allBinaryExcept(2, {{1, 0}}),
    };
}

} // namespace smappic::check
