/**
 * @file
 * Multi-core memory torture generator with golden-model cross-checking
 * and failing-seed minimization.
 *
 * From one seed the generator emits a per-core random load/store program
 * (AMO-free) over a small set of shared, false-sharing-prone cache
 * lines: every 8-byte slot of the shared region is owned by exactly one
 * core; cores store random values only to their own slots, fold loads of
 * their own slots into a running checksum, and load other cores' slots
 * purely to provoke coherence traffic. Because slot ownership is
 * disjoint, the final memory image and every per-core checksum are
 * deterministic functions of the seed alone — a flat golden replay
 * predicts both exactly, for any engine, thread count or interleaving.
 *
 * A run executes the program on a real prototype (sequential or phased
 * engine, optionally under a FaultPlan and the reliable bridge) with the
 * online coherence checker attached, then cross-checks the image, the
 * checksums, the exit codes and the checker verdict. On failure,
 * runAndMinimize() shrinks the program (ops first, then address set)
 * while the failure reproduces, and reports the minimal seed/size combo
 * plus a copy-pasteable repro command.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bridge/inter_node_bridge.hpp"
#include "check/coherence_checker.hpp"
#include "platform/prototype.hpp"
#include "sim/fault.hpp"
#include "sim/parallel.hpp"

namespace smappic::check
{

/** One torture run's shape. Everything observable derives from these. */
struct TortureConfig
{
    std::string spec = "2x1x2"; ///< Prototype geometry (all harts run).
    std::uint64_t seed = 1;
    std::uint32_t opsPerCore = 64;
    /** Shared cache lines (8 slots each). Max 32 (imm12 addressing). */
    std::uint32_t sharedLines = 4;
    sim::ParallelConfig parallel;
    sim::FaultPlan faultPlan;
    bridge::ReliabilityConfig reliability;
    CheckConfig check{true, false, 64};
    std::uint64_t maxInstructions = 2'000'000;
    /** Runs after program load, before the cores start (arm mutations). */
    std::function<void(platform::Prototype &, const riscv::Program &)>
        preRun;
};

/** Verdict + replay recipe for one torture run. */
struct TortureReport
{
    bool passed = false;
    std::uint64_t seed = 0;
    std::uint32_t opsPerCore = 0;
    std::uint32_t sharedLines = 0;
    std::uint64_t checkerViolations = 0;
    /** Human-readable golden-model mismatches (bounded). */
    std::vector<std::string> mismatches;
    /** Minimization rounds that led to this report (0 = first run). */
    std::uint32_t shrinkSteps = 0;
    /** Copy-pasteable `litmus_run` command reproducing this run. */
    std::string repro;
};

/** Deterministic program + golden expectation for one config. */
struct TortureProgram
{
    std::string source; ///< RV64 asm (mhartid-dispatched, one per core).
    std::vector<std::uint64_t> finalSlots; ///< Expected slot values.
    std::vector<std::uint64_t> checksums;  ///< Expected per-core chk.
};

/** Generates the program and its golden expectation (pure function of
 *  seed, opsPerCore, sharedLines and the spec's hart count). */
TortureProgram generateTorture(const TortureConfig &cfg);

/** Runs one torture config to a verdict. */
TortureReport runTorture(const TortureConfig &cfg);

/**
 * Runs @p cfg; on failure, greedily halves opsPerCore then sharedLines
 * while the failure still reproduces, and returns the minimized failing
 * report. On success returns the passing report unchanged.
 */
TortureReport runAndMinimize(TortureConfig cfg);

} // namespace smappic::check
