/**
 * @file
 * Online MESI invariant checker.
 *
 * A CoherenceChecker observes every protocol state transition of a
 * CoherentSystem (via cache::CoherenceObserver) and re-validates the
 * coherence invariants for the touched line:
 *
 *   1. Single-writer / multiple-reader: at most one modified private
 *      copy system-wide, and never a modified copy coexisting with any
 *      other copy.
 *   2. Directory precision: a tile holds a line in its private hierarchy
 *      exactly when the directory names it (as owner or sharer), with
 *      matching M/S state, and an owned line has no other sharers.
 *   3. Inclusion: every L1 line is in its BPC, every private copy is
 *      backed by a resident home-LLC copy, and the directory's
 *      LLC-residency bit agrees with the home slice's tag array.
 *
 * Checks are line-scoped (O(tiles) per transition), so the checker can
 * stay enabled during torture runs. Violations are recorded (bounded)
 * and counted; panicOnViolation upgrades the first one to a panic().
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cache/coherent_system.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::check
{

/** Checker configuration (PrototypeConfig::check). */
struct CheckConfig
{
    bool enabled = false;          ///< Attach a checker to the prototype.
    bool panicOnViolation = false; ///< panic() on the first violation.
    std::size_t maxViolations = 64; ///< Recording cap (counting continues).
};

/** One recorded invariant violation. */
struct Violation
{
    std::string message;
    Addr line = 0;
    std::uint64_t eventIndex = 0; ///< Ordinal of the triggering event.
};

/** The online checker; attach with cs.setObserver(&checker). */
class CoherenceChecker : public cache::CoherenceObserver
{
  public:
    explicit CoherenceChecker(cache::CoherentSystem &cs,
                              CheckConfig cfg = {},
                              sim::StatRegistry *stats = nullptr);

    void onEvent(const cache::CoherenceEvent &ev) override;

    /**
     * Validates every line known to any structure (end-of-run sweep).
     * @return The number of violations found by this sweep.
     */
    std::uint64_t sweep();

    /** Total violations seen (including ones beyond the recording cap). */
    std::uint64_t violationCount() const { return violationCount_; }
    const std::vector<Violation> &violations() const { return violations_; }
    std::uint64_t eventsChecked() const { return eventsChecked_; }
    bool ok() const { return violationCount_ == 0; }

    /** Forgets recorded violations and counters (not the attachment). */
    void reset();

  private:
    /** Runs all line-scoped invariants; returns violations found. */
    std::uint64_t checkLine(Addr line);

    void report(Addr line, const std::string &what);

    cache::CoherentSystem &cs_;
    CheckConfig cfg_;
    sim::StatRegistry *stats_;

    std::vector<Violation> violations_;
    std::uint64_t violationCount_ = 0;
    std::uint64_t eventsChecked_ = 0;
};

} // namespace smappic::check
