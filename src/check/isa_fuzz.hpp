/**
 * @file
 * Seeded ISA fuzzing for the lockstep differential checker.
 *
 * generateFuzzProgram() builds a self-terminating random RV64 assembly
 * program from a (seed, count, mix) triple: an mhartid dispatch header
 * sends each hart into its own instruction stream (disjoint 512-byte
 * data regions, optional cross-hart shared lines), every branch is
 * forward-only over a bounded filler window so termination needs no
 * reasoning, and each stream funnels into the standard
 * `a7=93 ecall` exit stub. Generation is a pure function of the config,
 * so any divergence reproduces from its command line alone.
 *
 * runFuzz() stands up a Prototype with the lockstep checker enabled,
 * runs the generated program under the configured engine (sequential or
 * phased at N workers, decode cache on or off, optionally with a
 * test-only defect armed) and returns the divergence evidence.
 * runFuzzAndMinimize() shrinks a diverging config by halving the
 * instruction count while the failure still reproduces — the
 * torture-harness runAndMinimize discipline — and renders the final
 * `repro:` line.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/lockstep.hpp"
#include "riscv/core.hpp"
#include "sim/types.hpp"

namespace smappic::check
{

/** Instruction mix of a fuzz program. */
enum class FuzzMix : std::uint8_t
{
    kAlu, ///< Base-ISA ALU ops, lui, forward branches.
    kMul, ///< M extension (with ALU operand churn).
    kMem, ///< Loads/stores over the hart's private region.
    kAmo, ///< LR/SC pairs and AMOs (plus loads/stores).
    kCsr, ///< CSR read/modify/write traffic incl. counter reads.
    kAll, ///< Weighted blend of all of the above.
    kSmc, ///< Self-modifying patch loop (decode-invalidation stress).
};

const char *mixName(FuzzMix mix);
/** @throws FatalError on an unknown mix name. */
FuzzMix parseMix(const std::string &name);

/** One fuzz run, fully determined by its field values. */
struct FuzzConfig
{
    std::string spec = "1x1x2"; ///< Prototype geometry ("FxNxT").
    std::uint64_t seed = 1;
    std::uint32_t count = 256; ///< Instruction slots per hart.
    FuzzMix mix = FuzzMix::kAll;
    bool shared = false;   ///< Sprinkle cross-hart shared-line accesses.
    std::uint32_t threads = 0; ///< 0 = sequential engine; >=1 = phased.
    Cycles quantum = 256;      ///< Phased quantum (threads >= 1 only).
    bool decodeCache = true;
    bool dataFastPath = true; ///< L1D hit fast path (core.dataFastPath).
    bool idleSkip = true;     ///< Uncore idle skip (uncore.idleSkip).
    riscv::CoreTestMutation defect = riscv::CoreTestMutation::kNone;
};

/** Outcome of one fuzz run. */
struct FuzzResult
{
    bool diverged = false;
    std::uint64_t commits = 0;
    bool exitedCleanly = false; ///< Every hart reached the exit stub.
    std::vector<Divergence> divergences;
};

/** Outcome of runFuzzAndMinimize. */
struct MinimizeResult
{
    FuzzResult result;     ///< Final run of the minimized config.
    FuzzConfig minimized;  ///< Smallest config still diverging.
    std::uint32_t shrinkSteps = 0;
    std::string repro;     ///< "repro: diff_run ..." (empty if clean).
};

/** Renders the diff_run command line reproducing @p cfg. */
std::string reproCommand(const FuzzConfig &cfg);

/** Deterministic program text for @p cfg on @p harts harts. */
std::string generateFuzzProgram(const FuzzConfig &cfg,
                                std::uint32_t harts);

/** Builds the platform, runs the program, returns the evidence. */
FuzzResult runFuzz(const FuzzConfig &cfg);

/** runFuzz + halving-count shrink while the divergence reproduces. */
MinimizeResult runFuzzAndMinimize(const FuzzConfig &cfg);

} // namespace smappic::check
