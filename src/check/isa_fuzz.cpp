#include "check/isa_fuzz.hpp"

#include <algorithm>
#include <sstream>

#include "platform/prototype.hpp"
#include "sim/log.hpp"
#include "sim/random.hpp"

namespace smappic::check
{

namespace
{

// Data layout inside node 0's DRAM channel, clear of the code window
// (the assembler places .text at the DRAM base and .data 4 MiB in).
constexpr Addr kPrivateBase = 0x8030'0000; ///< 512 B per hart.
constexpr std::uint64_t kPrivateStride = 512;
constexpr Addr kSharedBase = 0x8038'0000;
constexpr std::uint64_t kSharedBytes = 256;

/** Scratch registers the generator may clobber. x8/x9 hold the data
 *  base pointers, x29/x30 are address temporaries, and a0/a7 belong to
 *  the exit stub — none of them are in the pool. */
constexpr unsigned kWork[] = {5, 6, 7, 20, 21, 22, 23,
                              24, 25, 26, 27, 28, 31};

/** Per-hart generation state: one deterministic stream per hart. */
struct HartGen
{
    std::ostringstream &os;
    sim::Xoroshiro rng;
    std::uint32_t hart;
    std::uint32_t label = 0;

    HartGen(std::ostringstream &out, std::uint64_t seed, std::uint32_t h)
        : os(out), rng(seed ^ (0x9e3779b97f4a7c15ULL * (h + 1))), hart(h)
    {
    }

    unsigned reg() { return kWork[rng.below(std::size(kWork))]; }

    void
    aluSlot()
    {
        static const char *two[] = {"add",  "sub",  "and",  "or",
                                    "xor",  "sll",  "srl",  "sra",
                                    "slt",  "sltu", "addw", "subw",
                                    "sllw", "srlw", "sraw"};
        static const char *immop[] = {"addi", "andi",  "ori", "xori",
                                      "slti", "sltiu", "addiw"};
        static const char *br[] = {"beq", "bne",  "blt",
                                   "bge", "bltu", "bgeu"};
        std::uint64_t roll = rng.below(10);
        if (roll < 5) {
            os << "  " << two[rng.below(std::size(two))] << " x" << reg()
               << ", x" << reg() << ", x" << reg() << "\n";
        } else if (roll < 8) {
            auto imm = static_cast<std::int64_t>(rng.below(4096)) - 2048;
            os << "  " << immop[rng.below(std::size(immop))] << " x"
               << reg() << ", x" << reg() << ", " << imm << "\n";
        } else if (roll < 9) {
            os << "  lui x" << reg() << ", " << rng.below(1ULL << 20)
               << "\n";
        } else {
            // Forward-only branch over a bounded filler window: taken or
            // not, control flow reconverges and termination is trivial.
            std::string lbl = "fz_h" + std::to_string(hart) + "_l" +
                              std::to_string(label++);
            os << "  " << br[rng.below(std::size(br))] << " x" << reg()
               << ", x" << reg() << ", " << lbl << "\n";
            std::uint64_t fill = 1 + rng.below(3);
            for (std::uint64_t i = 0; i < fill; ++i)
                os << "  addi x" << reg() << ", x" << reg() << ", "
                   << static_cast<std::int64_t>(rng.below(64)) - 32
                   << "\n";
            os << lbl << ":\n";
        }
    }

    void
    mulSlot()
    {
        static const char *m[] = {"mul",   "mulh", "mulhu", "mulhsu",
                                  "mulw",  "div",  "divu",  "rem",
                                  "remu",  "divw", "divuw", "remw",
                                  "remuw"};
        if (rng.chance(0.2)) {
            // Re-bias an operand toward the spec's corner values so the
            // div-by-zero / INT_MIN overflow semantics keep firing.
            static const std::int64_t corner[] = {0, -1, INT64_MIN,
                                                  INT32_MIN};
            os << "  li x" << reg() << ", "
               << corner[rng.below(std::size(corner))] << "\n";
        }
        os << "  " << m[rng.below(std::size(m))] << " x" << reg()
           << ", x" << reg() << ", x" << reg() << "\n";
    }

    void
    memSlot()
    {
        static const char *ld[] = {"lb", "lh",  "lw",  "ld",
                                   "lbu", "lhu", "lwu"};
        static const char *st[] = {"sb", "sh", "sw", "sd"};
        static const std::uint32_t ldsz[] = {1, 2, 4, 8, 1, 2, 4};
        static const std::uint32_t stsz[] = {1, 2, 4, 8};
        if (rng.chance(0.5)) {
            std::uint64_t i = rng.below(std::size(ld));
            std::uint64_t off =
                rng.below(kPrivateStride - 8) & ~(ldsz[i] - 1ULL);
            os << "  " << ld[i] << " x" << reg() << ", " << off
               << "(x8)\n";
        } else {
            std::uint64_t i = rng.below(std::size(st));
            std::uint64_t off =
                rng.below(kPrivateStride - 8) & ~(stsz[i] - 1ULL);
            os << "  " << st[i] << " x" << reg() << ", " << off
               << "(x8)\n";
        }
    }

    void
    amoSlot()
    {
        static const char *amo[] = {"amoswap", "amoadd",  "amoxor",
                                    "amoand",  "amoor",   "amomin",
                                    "amomax",  "amominu", "amomaxu"};
        std::uint64_t roll = rng.below(8);
        bool dbl = rng.chance(0.5);
        const char *sfx = dbl ? "d" : "w";
        std::uint64_t off =
            rng.below(kPrivateStride - 8) & ~(dbl ? 7ULL : 3ULL);
        if (roll < 3) {
            os << "  addi x29, x8, " << off << "\n";
            os << "  " << amo[rng.below(std::size(amo))] << "." << sfx
               << " x" << reg() << ", x" << reg() << ", (x29)\n";
        } else if (roll < 5) {
            // LR/SC pairs stay contiguous: a filler between them could
            // clobber the address register or the reservation.
            os << "  addi x29, x8, " << off << "\n";
            os << "  lr." << sfx << " x" << reg() << ", (x29)\n";
            os << "  sc." << sfx << " x" << reg() << ", x" << reg()
               << ", (x29)\n";
        } else {
            memSlot();
        }
    }

    void
    csrSlot()
    {
        static const std::uint16_t counters[] = {0xc00, 0xc01, 0xc02,
                                                 0xf14, 0x344};
        switch (rng.below(9)) {
          case 0:
            os << "  csrw 0x340, x" << reg() << "\n"; // mscratch
            break;
          case 1:
            os << "  csrr x" << reg() << ", 0x340\n";
            break;
          case 2:
            os << "  csrrw x" << reg() << ", 0x341, x" << reg()
               << "\n"; // mepc: exercises the IALIGN WARL mask.
            break;
          case 3:
            os << "  csrrs x" << reg() << ", 0x343, x" << reg()
               << "\n"; // mtval
            break;
          case 4:
            os << "  csrrc x" << reg() << ", 0x342, x" << reg()
               << "\n"; // mcause
            break;
          case 5:
            // mstatus: exercises the writable-field mask and the MPP
            // legalizer. mie stays 0, so flipping MIE is inert.
            os << "  csrw 0x300, x" << reg() << "\n";
            break;
          case 6:
            // Env-synced reads: counters, mhartid, mip.
            os << "  csrr x" << reg() << ", 0x"
               << std::hex << counters[rng.below(std::size(counters))]
               << std::dec << "\n";
            break;
          case 7: {
              // satp with a known-bare mode nibble (never 8: enabling
              // Sv39 would park the checker in sync-only mode for the
              // rest of the stream). Reserved modes exercise the WARL
              // ignore-write choice.
              std::uint64_t v = rng.next();
              if ((v >> 60) == 8)
                  v &= 0x0fff'ffff'ffff'ffffULL;
              os << "  li x7, " << static_cast<std::int64_t>(v) << "\n";
              os << "  csrw 0x180, x7\n";
              break;
          }
          default:
            // mtvec: arbitrary values are safe (fuzz bodies never trap)
            // and exercise the mode legalizer.
            os << "  csrw 0x305, x" << reg() << "\n";
            break;
        }
    }

    void
    sharedSlot()
    {
        std::uint64_t roll = rng.below(6);
        bool dbl = rng.chance(0.5);
        std::uint64_t off =
            rng.below(kSharedBytes - 8) & ~(dbl ? 7ULL : 3ULL);
        os << "  addi x30, x9, " << off << "\n";
        if (roll < 3) {
            os << "  " << (dbl ? "ld" : "lw") << " x" << reg()
               << ", 0(x30)\n";
        } else if (roll < 5) {
            os << "  " << (dbl ? "sd" : "sw") << " x" << reg()
               << ", 0(x30)\n";
        } else {
            os << "  " << (dbl ? "amoadd.d" : "amoadd.w") << " x"
               << reg() << ", x" << reg() << ", (x30)\n";
        }
    }

    void
    slot(FuzzMix mix, bool shared)
    {
        if (shared && rng.chance(0.15)) {
            sharedSlot();
            return;
        }
        switch (mix) {
          case FuzzMix::kAlu: aluSlot(); break;
          case FuzzMix::kMul: mulSlot(); break;
          case FuzzMix::kMem: memSlot(); break;
          case FuzzMix::kAmo: amoSlot(); break;
          case FuzzMix::kCsr: csrSlot(); break;
          default: {
              std::uint64_t roll = rng.below(100);
              if (roll < 35)
                  aluSlot();
              else if (roll < 55)
                  mulSlot();
              else if (roll < 75)
                  memSlot();
              else if (roll < 90)
                  amoSlot();
              else
                  csrSlot();
              break;
          }
        }
    }
};

/** Encoding of `addi x20, x20, k` (the SMC patch-table payload). */
std::uint32_t
addiX20(std::uint32_t k)
{
    return 0x13u | (20u << 7) | (20u << 15) | (k << 20);
}

/**
 * Per-hart self-modifying patch loop: each round loads the next word
 * from the hart's patch table, stores it over the patch point, then
 * executes it. The platform's write stamps must invalidate the decode
 * cache entry every round — exactly the defect class kStaleDecode
 * suppresses (a hart's own store never recalls its own L1I line; only
 * the stamps catch it).
 */
void
emitSmcBody(std::ostringstream &os, std::uint32_t hart,
            std::uint32_t rounds)
{
    std::string h = std::to_string(hart);
    os << "  la x8, fz_words_" << h << "\n";
    os << "  la x25, fz_patch_" << h << "\n";
    os << "  li x20, 0\n";
    os << "  li x21, 0\n";
    os << "  li x22, " << rounds << "\n";
    os << "fz_loop_" << h << ":\n";
    os << "  slli x23, x21, 2\n";
    os << "  add x23, x23, x8\n";
    os << "  lw x24, 0(x23)\n";
    os << "  sw x24, 0(x25)\n";
    os << "fz_patch_" << h << ":\n";
    os << "  addi x20, x20, 1\n"; // Overwritten before every round.
    os << "  addi x21, x21, 1\n";
    os << "  blt x21, x22, fz_loop_" << h << "\n";
    os << "  j fz_exit\n";
    os << "fz_words_" << h << ":\n";
    for (std::uint32_t r = 0; r < rounds; ++r)
        os << "  .word " << addiX20(1 + (r % 31)) << "\n";
}

} // namespace

const char *
mixName(FuzzMix mix)
{
    switch (mix) {
      case FuzzMix::kAlu: return "alu";
      case FuzzMix::kMul: return "mul";
      case FuzzMix::kMem: return "mem";
      case FuzzMix::kAmo: return "amo";
      case FuzzMix::kCsr: return "csr";
      case FuzzMix::kAll: return "all";
      case FuzzMix::kSmc: return "smc";
    }
    return "?";
}

FuzzMix
parseMix(const std::string &name)
{
    for (FuzzMix m : {FuzzMix::kAlu, FuzzMix::kMul, FuzzMix::kMem,
                      FuzzMix::kAmo, FuzzMix::kCsr, FuzzMix::kAll,
                      FuzzMix::kSmc}) {
        if (name == mixName(m))
            return m;
    }
    fatal("unknown fuzz mix: " + name);
}

std::string
reproCommand(const FuzzConfig &cfg)
{
    std::ostringstream os;
    os << "diff_run --spec " << cfg.spec << " --seed " << cfg.seed
       << " --count " << cfg.count << " --mix " << mixName(cfg.mix);
    if (cfg.shared)
        os << " --shared";
    if (cfg.threads >= 1)
        os << " --threads " << cfg.threads << " --quantum "
           << cfg.quantum;
    if (!cfg.decodeCache)
        os << " --no-decode-cache";
    if (!cfg.dataFastPath)
        os << " --no-data-fastpath";
    if (!cfg.idleSkip)
        os << " --no-idle-skip";
    if (cfg.defect == riscv::CoreTestMutation::kMulhCorrupt)
        os << " --defect mulh";
    else if (cfg.defect == riscv::CoreTestMutation::kStaleDecode)
        os << " --defect stale-decode";
    return os.str();
}

std::string
generateFuzzProgram(const FuzzConfig &cfg, std::uint32_t harts)
{
    std::ostringstream os;
    // mhartid dispatch header, torture style: each hart branches to its
    // own stream; unknown harts fall through to the exit stub. The
    // conditional branch lands on a nearby `j` trampoline because hart
    // bodies can grow past the +-4 KiB B-type range (jal reaches
    // +-1 MiB).
    os << "  csrr x5, 0xf14\n";
    for (std::uint32_t h = 0; h < harts; ++h) {
        os << "  li x6, " << h << "\n";
        os << "  beq x5, x6, fz_tramp_" << h << "\n";
    }
    os << "  j fz_exit\n";
    for (std::uint32_t h = 0; h < harts; ++h) {
        os << "fz_tramp_" << h << ":\n";
        os << "  j fz_core_" << h << "\n";
    }

    for (std::uint32_t h = 0; h < harts; ++h) {
        os << "fz_core_" << h << ":\n";
        if (cfg.mix == FuzzMix::kSmc) {
            std::uint32_t rounds = std::clamp<std::uint32_t>(
                cfg.count / 8, 2, 64);
            emitSmcBody(os, h, rounds);
            continue;
        }
        HartGen gen(os, cfg.seed, h);
        os << "  li x8, "
           << (kPrivateBase + static_cast<std::uint64_t>(h) *
                                  kPrivateStride)
           << "\n";
        os << "  li x9, " << kSharedBase << "\n";
        for (unsigned r : kWork)
            os << "  li x" << r << ", "
               << static_cast<std::int64_t>(gen.rng.next()) << "\n";
        for (std::uint32_t i = 0; i < cfg.count; ++i)
            gen.slot(cfg.mix, cfg.shared);
        os << "  j fz_exit\n";
    }

    os << "fz_exit:\n";
    os << "  li x10, 0\n";
    os << "  li x17, 93\n";
    os << "  ecall\n";
    os << "fz_spin:\n";
    os << "  j fz_spin\n";
    return os.str();
}

FuzzResult
runFuzz(const FuzzConfig &cfg)
{
    platform::PrototypeConfig pcfg =
        platform::PrototypeConfig::parse(cfg.spec);
    pcfg.core.decodeCache.enabled = cfg.decodeCache;
    pcfg.core.dataFastPath = cfg.dataFastPath;
    pcfg.uncore.idleSkip = cfg.idleSkip;
    pcfg.lockstep.enabled = true;
    if (cfg.shared)
        pcfg.lockstep.shared.emplace_back(kSharedBase, kSharedBytes);
    if (cfg.threads >= 1) {
        pcfg.parallel.threads = cfg.threads;
        pcfg.parallel.quantum = cfg.quantum;
    }

    platform::Prototype proto(pcfg);
    for (GlobalTileId g = 0; g < proto.coreCount(); ++g)
        proto.core(g).setTestMutation(cfg.defect);
    proto.loadSource(generateFuzzProgram(cfg, proto.coreCount()));

    std::vector<GlobalTileId> gids;
    for (GlobalTileId g = 0; g < proto.coreCount(); ++g)
        gids.push_back(g);
    proto.runCores(gids, 2'000'000);

    FuzzResult r;
    r.commits = proto.lockstep()->commits();
    r.divergences = proto.lockstep()->divergences();
    r.diverged = !r.divergences.empty();
    r.exitedCleanly = true;
    for (GlobalTileId g = 0; g < proto.coreCount(); ++g)
        r.exitedCleanly = r.exitedCleanly && proto.core(g).exited();
    return r;
}

MinimizeResult
runFuzzAndMinimize(const FuzzConfig &cfg)
{
    MinimizeResult m;
    m.minimized = cfg;
    m.result = runFuzz(cfg);
    if (!m.result.diverged)
        return m;

    // Halve the slot count while the divergence still reproduces; keep
    // the last failing config (runAndMinimize discipline).
    while (m.minimized.count > 8) {
        FuzzConfig trial = m.minimized;
        trial.count = std::max<std::uint32_t>(8, trial.count / 2);
        FuzzResult tr = runFuzz(trial);
        if (!tr.diverged)
            break;
        m.minimized = trial;
        m.result = std::move(tr);
        ++m.shrinkSteps;
    }
    m.repro = "repro: " + reproCommand(m.minimized);
    return m;
}

} // namespace smappic::check
