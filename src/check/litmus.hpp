/**
 * @file
 * Litmus-test DSL and runner.
 *
 * A LitmusTest names a handful of shared memory locations and a few
 * threads of RV64 assembly that race over them; the runner lowers the
 * test to one program (mhartid dispatch, locations bound to callee-saved
 * registers, observed registers stored to a results area), executes it on
 * a real multi-core / multi-node prototype many times under varying
 * per-thread start skews, and validates every observed outcome against
 * the test's allowed-outcome table.
 *
 * The platform's data plane is sequentially consistent by construction
 * (cores interleave instruction by instruction over one functional
 * memory), so the shipped suite (SB, MP, LB, CoRR, CoWW, IRIW) uses
 * SC/coherence outcome tables: a forbidden outcome on unmutated code is
 * always a bug. A pre-run hook lets tests arm CoherentSystem test
 * mutations so the suite can demonstrate it actually catches one.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "check/coherence_checker.hpp"
#include "platform/prototype.hpp"
#include "sim/parallel.hpp"

namespace smappic::check
{

/** One racing thread: an asm body plus its observable registers. */
struct LitmusThread
{
    /**
     * Assembly body. Shared locations are pre-bound to s2, s3, s4, s5
     * (in LitmusTest::locations order) and every label must embed the
     * `%t` placeholder (mangled to the thread index) so bodies can be
     * instantiated more than once per program.
     */
    std::string body;
    /** Registers whose final values form this thread's outcome slice. */
    std::vector<std::string> observed;
};

/** One litmus test: locations, threads and the allowed-outcome table. */
struct LitmusTest
{
    std::string name;
    /** Shared dword locations, each on its own cache line. Max 4. */
    std::vector<std::string> locations;
    std::vector<LitmusThread> threads;
    /**
     * Allowed outcomes: each entry concatenates the threads' observed
     * registers in declaration order. Any observed tuple outside this
     * table fails the run.
     */
    std::vector<std::vector<std::uint64_t>> allowed;
};

/** How to run a litmus test. */
struct LitmusConfig
{
    /** Prototype geometry; needs >= threads harts. */
    std::string spec = "2x1x2";
    /** Engine selection (default: sequential interleaved). */
    sim::ParallelConfig parallel;
    /** Runs per test; each gets fresh caches and new start skews. */
    std::uint32_t iterations = 8;
    /** Seed for the per-iteration skew draw. */
    std::uint64_t seed = 1;
    /** When non-empty (one entry per thread), used verbatim every
     *  iteration instead of the seeded draw — e.g. to pin the writer
     *  after the reader's preload in the mutation-catch test. */
    std::vector<std::uint32_t> fixedSkews;
    /** Checker attachment for every iteration's prototype. */
    CheckConfig check{true, false, 64};
    /** L1D hit fast path (core.dataFastPath). Note an attached checker
     *  makes the fast path bail anyway; disable `check` to genuinely
     *  exercise it. */
    bool dataFastPath = true;
    /** Uncore event-horizon idle skip (uncore.idleSkip). */
    bool idleSkip = true;
    std::uint64_t maxInstructions = 200'000;
    /** Runs after program load, before the cores start (arm mutations,
     *  warm caches, ...). */
    std::function<void(platform::Prototype &, const riscv::Program &)>
        preRun;
};

/** One iteration's observation. */
struct LitmusOutcome
{
    std::vector<std::uint64_t> values;
    bool allowed = false;
};

/** Aggregate verdict for one test under one config. */
struct LitmusResult
{
    std::string test;
    std::vector<LitmusOutcome> outcomes; ///< One per iteration.
    std::uint64_t checkerViolations = 0; ///< Summed over iterations.
    bool passed = false; ///< Every outcome allowed and zero violations.

    /** Human-readable outcome histogram ("1,0 x3  0,0 x5"). */
    std::string histogram() const;
};

/**
 * Lowers @p test to one RV64 program for the given hart placement and
 * per-thread start-skew delays. Exposed for unit tests; runLitmus() is
 * the normal entry point.
 */
std::string emitLitmusAsm(const LitmusTest &test,
                          const std::vector<GlobalTileId> &harts,
                          const std::vector<std::uint32_t> &skews);

/**
 * Round-robins @p threads over the nodes of an AxBxC prototype so a
 * 2-thread test on a 2-node box really crosses the inter-node bridge.
 */
std::vector<GlobalTileId> litmusPlacement(const platform::PrototypeConfig &,
                                          std::size_t threads);

/** Runs @p test under @p cfg; see LitmusResult. */
LitmusResult runLitmus(const LitmusTest &test, const LitmusConfig &cfg);

/** The standard suite: SB, MP (plain + spin), LB, CoRR, CoWW, IRIW. */
std::vector<LitmusTest> standardLitmusSuite();

/**
 * The mutation-demonstration test: MP where the reader preloads the data
 * line so a lost invalidation (TestMutation::kLostInvalidation armed on
 * that line) leaves it reading stale data after it saw the flag — the
 * forbidden (flag=1, data=0) outcome.
 */
LitmusTest mutationCatchTest();

} // namespace smappic::check
