/**
 * @file
 * Golden-model lock-step differential checker.
 *
 * check::LockstepChecker attaches to one or more riscv::RvCore harts
 * through the per-commit observer callback (RvCore::setCommitFn) and
 * replays every committed instruction on a private ref::GoldenCore — a
 * timing-free spec interpreter with its own flat memory image. After each
 * replay the two architectural post-states are diffed field by field
 * (pc, x1..x31, privilege, the machine-mode CSR file); the first
 * mismatch per occurrence is recorded as a Divergence carrying full
 * context (hart, commit index, cycle, pc, disassembly, both register
 * files) and the checker resynchronizes the golden hart from the DUT so
 * later real divergences are still visible.
 *
 * Environment synchronization: results the spec cannot predict — reads
 * of free-running counter CSRs and mip, loads from device space or from
 * configured cross-hart shared ranges — are taken from the DUT's
 * post-state rd (the DUT is trusted as the *input source* but not as the
 * *semantics*). Interrupt redirects, environment-absorbed ecalls and
 * instructions under active Sv39 translation fall outside the golden
 * model and trigger a sync instead of a diff.
 *
 * Thread model: the commit callback runs on whatever thread steps the
 * core. All per-hart state is confined to that thread (the phased
 * engine never migrates a core mid-quantum); only the shared divergence
 * list and the commit counter are synchronized.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ref/golden.hpp"
#include "riscv/core.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::check
{

/** Lockstep checker knobs (PrototypeConfig::lockstep). */
struct LockstepConfig
{
    /** Master switch; a disabled checker installs no commit observers. */
    bool enabled = false;
    /**
     * The DRAM window the golden model replays from its own image.
     * Loads outside [memBase, memBase + memSize) are environment-synced
     * from the DUT and stores there are dropped. memSize == 0 means the
     * entire address space is modeled (bare-core unit tests).
     */
    Addr memBase = 0;
    std::uint64_t memSize = 0;
    /**
     * Cross-hart shared ranges (base, size). Each golden hart owns a
     * private memory image, so data genuinely written by other harts is
     * unknowable to it; loads from these ranges are environment-synced
     * like device space. The ISA fuzzer's shared-line variants set this.
     */
    std::vector<std::pair<Addr, std::uint64_t>> shared;
    /** Recording cap; checking and resync continue past it. */
    std::size_t maxDivergences = 8;
};

/** One observed DUT/golden mismatch, with enough context to act on. */
struct Divergence
{
    std::uint32_t hart = 0;
    std::uint64_t commitIndex = 0; ///< Per-hart architectural step count.
    Cycles cycle = 0;              ///< DUT core cycle at detection.
    Addr pc = 0;
    std::uint32_t word = 0;
    std::string message; ///< Multi-line report (field diff + reg files).
};

/** The differential checker; owns one golden hart per attached core. */
class LockstepChecker
{
  public:
    explicit LockstepChecker(const LockstepConfig &cfg,
                             sim::StatRegistry *stats = nullptr);
    ~LockstepChecker();

    LockstepChecker(const LockstepChecker &) = delete;
    LockstepChecker &operator=(const LockstepChecker &) = delete;

    /**
     * Attaches to @p core: builds a golden hart mirroring its hart id
     * and reset pc and installs the commit observer. The core must
     * outlive the checker's last callback (i.e. stop stepping before the
     * checker is destroyed).
     */
    void attach(riscv::RvCore &core);

    /** Copies a program/data image into every golden hart's memory.
     *  Call after attach and before the first step. */
    void loadImage(Addr addr, const void *data, std::uint64_t len);

    std::uint64_t commits() const
    {
        return commits_.load(std::memory_order_relaxed);
    }
    std::vector<Divergence> divergences() const;
    /** Human-readable report of every recorded divergence. */
    std::string report() const;

  private:
    struct Hart;

    void onCommit(std::size_t idx, riscv::RvCore &core,
                  const riscv::CommitRecord &rec);
    void syncFromDut(Hart &h, riscv::RvCore &core);
    void recordDivergence(Hart &h, riscv::RvCore &core,
                          const riscv::CommitRecord &rec,
                          const std::string &what);
    bool envOwned(Addr addr, std::uint32_t bytes) const;

    LockstepConfig cfg_;
    sim::StatRegistry *stats_;
    std::vector<std::unique_ptr<Hart>> harts_;
    std::atomic<std::uint64_t> commits_{0};

    mutable std::mutex mutex_; ///< Guards divergences_ (and lazy stat).
    std::vector<Divergence> divergences_;
};

} // namespace smappic::check
