#include "check/lockstep.hpp"

#include <iomanip>
#include <sstream>

namespace smappic::check
{

namespace
{

constexpr std::uint16_t kDiffCsrs[] = {
    riscv::kCsrMstatus, riscv::kCsrMie,     riscv::kCsrMtvec,
    riscv::kCsrMepc,    riscv::kCsrMcause,  riscv::kCsrMtval,
    riscv::kCsrMscratch, riscv::kCsrSatp,
};

const char *
csrName(std::uint16_t num)
{
    switch (num) {
      case riscv::kCsrMstatus: return "mstatus";
      case riscv::kCsrMie: return "mie";
      case riscv::kCsrMtvec: return "mtvec";
      case riscv::kCsrMepc: return "mepc";
      case riscv::kCsrMcause: return "mcause";
      case riscv::kCsrMtval: return "mtval";
      case riscv::kCsrMscratch: return "mscratch";
      case riscv::kCsrSatp: return "satp";
      default: return "?";
    }
}

std::string
hex(std::uint64_t v)
{
    std::ostringstream os;
    os << "0x" << std::hex << v;
    return os.str();
}

} // namespace

/** All checker state private to one attached hart. */
struct LockstepChecker::Hart
{
    riscv::RvCore *core;
    ref::GoldenMemory mem;
    ref::GoldenCore golden;
    bool primed = false;          ///< Golden state synced at least once.
    std::uint64_t commitIndex = 0;
    /** DUT post-state rd of the instruction being replayed; the value
     *  every env hook resolves to (see header). */
    std::uint64_t envRd = 0;

    Hart(riscv::RvCore &c, const ref::GoldenConfig &gcfg)
        : core(&c), golden(gcfg, mem)
    {
    }
};

LockstepChecker::LockstepChecker(const LockstepConfig &cfg,
                                 sim::StatRegistry *stats)
    : cfg_(cfg), stats_(stats)
{
}

LockstepChecker::~LockstepChecker() = default;

bool
LockstepChecker::envOwned(Addr addr, std::uint32_t bytes) const
{
    if (cfg_.memSize != 0 &&
        (addr < cfg_.memBase || addr + bytes > cfg_.memBase + cfg_.memSize))
        return true;
    for (const auto &[base, size] : cfg_.shared) {
        if (addr + bytes > base && addr < base + size)
            return true;
    }
    return false;
}

void
LockstepChecker::attach(riscv::RvCore &core)
{
    ref::GoldenConfig gcfg;
    gcfg.hartId = core.hartId();
    gcfg.resetPc = core.config().resetPc;
    harts_.push_back(std::make_unique<Hart>(core, gcfg));
    Hart *h = harts_.back().get();
    std::size_t idx = harts_.size() - 1;

    h->golden.setEnvCsrFn([h](std::uint16_t) { return h->envRd; });
    h->golden.setEnvLoadFn(
        [h](Addr, std::uint32_t, std::uint64_t &rd) {
            rd = h->envRd;
            return true;
        });
    h->golden.setEnvRangeFn([this](Addr addr, std::uint32_t bytes) {
        return envOwned(addr, bytes);
    });

    core.setCommitFn(
        [this, idx](riscv::RvCore &c, const riscv::CommitRecord &rec) {
            onCommit(idx, c, rec);
        });
}

void
LockstepChecker::loadImage(Addr addr, const void *data, std::uint64_t len)
{
    for (auto &h : harts_)
        h->mem.writeBytes(addr, data, len);
}

void
LockstepChecker::syncFromDut(Hart &h, riscv::RvCore &core)
{
    h.golden.setPc(core.pc());
    h.golden.setPrivilege(core.privilege());
    for (unsigned i = 1; i < 32; ++i)
        h.golden.setReg(i, core.reg(i));
    for (std::uint16_t num : kDiffCsrs)
        h.golden.setCsrRaw(num, core.csr(num));
    h.golden.setCsrRaw(riscv::kCsrMip, core.csr(riscv::kCsrMip));
}

void
LockstepChecker::recordDivergence(Hart &h, riscv::RvCore &core,
                                  const riscv::CommitRecord &rec,
                                  const std::string &what)
{
    std::ostringstream os;
    os << "lockstep divergence: hart " << core.hartId() << " commit #"
       << h.commitIndex << " cycle " << core.cycles() << "\n"
       << "  pc=" << hex(rec.pc) << " word=" << hex(rec.word) << " inst=";
    if (rec.inst)
        os << riscv::mnemonic(rec.inst->op);
    else if (rec.interrupt)
        os << "<interrupt>";
    else
        os << "<fetch trap>";
    os << "\n" << what;
    os << "  register file (golden | dut):\n";
    for (unsigned i = 1; i < 32; ++i) {
        if (h.golden.reg(i) == core.reg(i))
            continue; // Print only rows that differ; the diff is above.
        os << "    x" << i << ": " << hex(h.golden.reg(i)) << " | "
           << hex(core.reg(i)) << "\n";
    }

    Divergence d;
    d.hart = core.hartId();
    d.commitIndex = h.commitIndex;
    d.cycle = core.cycles();
    d.pc = rec.pc;
    d.word = rec.word;
    d.message = os.str();

    std::lock_guard<std::mutex> lock(mutex_);
    // The stat is created lazily on the first divergence so clean runs
    // keep their stat dumps byte-identical with the checker on or off.
    if (stats_)
        stats_->counter("lockstep.divergences").increment();
    if (divergences_.size() < cfg_.maxDivergences)
        divergences_.push_back(std::move(d));
}

void
LockstepChecker::onCommit(std::size_t idx, riscv::RvCore &core,
                          const riscv::CommitRecord &rec)
{
    Hart &h = *harts_[idx];
    ++h.commitIndex;
    commits_.fetch_add(1, std::memory_order_relaxed);

    // First observed commit: the callback fires post-step, so all we can
    // do is adopt the DUT state and start checking from the next one.
    if (!h.primed) {
        syncFromDut(h, core);
        h.primed = true;
        return;
    }

    // Outside the golden model's scope: async interrupt redirects,
    // environment-absorbed ecalls, anything under Sv39 translation, and
    // translation-driven fetch faults. Adopt the DUT state and move on.
    if (rec.interrupt || rec.envAbsorbed ||
        h.golden.translationActive() ||
        (rec.inst == nullptr && rec.trapped && (rec.pc & 3) == 0)) {
        syncFromDut(h, core);
        return;
    }

    // Control flow first: if the golden hart would not even have been at
    // this pc, diffing the replay is meaningless.
    if (h.golden.pc() != rec.pc) {
        std::ostringstream what;
        what << "  control flow: golden pc=" << hex(h.golden.pc())
             << " dut pc=" << hex(rec.pc) << "\n";
        recordDivergence(h, core, rec, what.str());
        syncFromDut(h, core);
        return;
    }

    h.envRd = (rec.inst != nullptr && rec.inst->rd != 0)
                  ? core.reg(rec.inst->rd)
                  : 0;
    ref::GoldenCore::Step gs = h.golden.step();

    std::ostringstream what;
    if (rec.inst != nullptr && gs.word != rec.word) {
        what << "  fetched word: golden=" << hex(gs.word)
             << " dut=" << hex(rec.word) << " (stale decode?)\n";
    }
    if (h.golden.pc() != core.pc()) {
        what << "  next pc: golden=" << hex(h.golden.pc())
             << " dut=" << hex(core.pc()) << "\n";
    }
    for (unsigned i = 1; i < 32; ++i) {
        if (h.golden.reg(i) != core.reg(i)) {
            what << "  x" << i << ": golden=" << hex(h.golden.reg(i))
                 << " dut=" << hex(core.reg(i)) << "\n";
        }
    }
    if (h.golden.privilege() != core.privilege()) {
        what << "  privilege: golden=" << h.golden.privilege()
             << " dut=" << core.privilege() << "\n";
    }
    for (std::uint16_t num : kDiffCsrs) {
        if (h.golden.csr(num) != core.csr(num)) {
            what << "  " << csrName(num)
                 << ": golden=" << hex(h.golden.csr(num))
                 << " dut=" << hex(core.csr(num)) << "\n";
        }
    }

    if (!what.str().empty()) {
        recordDivergence(h, core, rec, what.str());
        syncFromDut(h, core);
    }

    // mip is device-driven between instructions; adopt the DUT's view so
    // a later csrr mip replay starts from the right value.
    h.golden.setCsrRaw(riscv::kCsrMip, core.csr(riscv::kCsrMip));
}

std::vector<Divergence>
LockstepChecker::divergences() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return divergences_;
}

std::string
LockstepChecker::report() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::ostringstream os;
    for (const auto &d : divergences_)
        os << d.message << "\n";
    return os.str();
}

} // namespace smappic::check
