#include "fpga/resource_model.hpp"

#include "sim/log.hpp"

namespace smappic::fpga
{

ResourceEstimate
ResourceModel::estimate(std::uint32_t nodes_per_fpga,
                        std::uint32_t tiles_per_node) const
{
    fatalIf(nodes_per_fpga == 0 || tiles_per_node == 0,
            "configuration dimensions must be positive");
    ResourceEstimate e;
    e.luts = kShellLuts +
             static_cast<std::uint64_t>(nodes_per_fpga) * kNodeLuts +
             static_cast<std::uint64_t>(nodes_per_fpga) * tiles_per_node *
                 kTileLuts;
    e.utilization = static_cast<double>(e.luts) /
                    static_cast<double>(part_.luts);
    e.fits = e.utilization <= 1.0;
    if (!e.fits)
        e.freqMhz = 0;
    else
        e.freqMhz = e.utilization > kDerateThreshold ? 75 : 100;
    return e;
}

std::uint32_t
ResourceModel::maxTilesPerNode(std::uint32_t min_freq) const
{
    std::uint32_t best = 0;
    for (std::uint32_t c = 1; c <= 64; ++c) {
        ResourceEstimate e = estimate(1, c);
        if (e.fits && e.freqMhz >= min_freq)
            best = c;
    }
    return best;
}

} // namespace smappic::fpga
