/**
 * @file
 * FPGA resource and frequency model for SMAPPIC configurations on the F1
 * VU9P part (paper Table 4 and section 4.8).
 *
 * The additive LUT model (shell/chipset + per-node overhead + per-tile
 * cost) is least-squares calibrated against the five configurations the
 * paper reports; the achievable frequency derates from 100 MHz to 75 MHz
 * once utilization crosses the congestion threshold the paper's data
 * exhibits (between 87% and 88%).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace smappic::fpga
{

/** An FPGA part with its usable logic capacity. */
struct FpgaPart
{
    std::string name = "xcvu9p";
    std::uint64_t luts = 1'182'240; ///< Xilinx VU9P CLB LUTs.
};

/** Resource/timing estimate for one configuration. */
struct ResourceEstimate
{
    std::uint64_t luts = 0;
    double utilization = 0.0;
    std::uint32_t freqMhz = 0;
    bool fits = false;
};

/** Additive LUT + frequency-derating model. */
class ResourceModel
{
  public:
    explicit ResourceModel(FpgaPart part = {}) : part_(part) {}

    /**
     * Estimates a BxC configuration (B nodes per FPGA, C Ariane tiles per
     * node, Table 2 tile parameters).
     */
    ResourceEstimate estimate(std::uint32_t nodes_per_fpga,
                              std::uint32_t tiles_per_node) const;

    /** Largest tile count for one node at >= @p min_freq MHz. */
    std::uint32_t maxTilesPerNode(std::uint32_t min_freq) const;

    const FpgaPart &part() const { return part_; }

    // Calibrated constants (kLUTs), exposed for tests.
    static constexpr std::uint64_t kShellLuts = 45'000;
    static constexpr std::uint64_t kNodeLuts = 80'000;
    static constexpr std::uint64_t kTileLuts = 83'000;
    static constexpr double kDerateThreshold = 0.875;

  private:
    FpgaPart part_;
};

/**
 * Build-flow time model (paper section 4.1): local synthesis on a desktop
 * machine, AWS datacenter postprocessing, and bitstream load.
 */
struct BuildFlow
{
    double synthesisHours = 2.0;
    double awsIngestionHours = 2.0;
    double bitstreamLoadSeconds = 10.0;
    double synthesisMemoryGb = 32.0;

    double totalHours() const
    {
        return synthesisHours + awsIngestionHours +
               bitstreamLoadSeconds / 3600.0;
    }
};

} // namespace smappic::fpga
