/**
 * @file
 * Per-core decoded-instruction cache for the interpreter hot loop.
 *
 * The simulator's single hottest path is RvCore::step(): every retired
 * instruction re-walks the memory system for its fetch and re-runs the
 * decoder switch. On the dominant steady-state case — an untranslated
 * fetch whose line sits in the L1I — both walks are pure recomputation:
 * the timing outcome is always the L1I hit latency and the bytes cannot
 * have changed without a visible write. The decode cache memoizes exactly
 * that case: a direct-mapped, PC-indexed array of {fetched word, decoded
 * instruction} entries, each tied to a per-page write stamp of the
 * backing store (see mem::MainMemory::pageWriteStamp).
 *
 * Correctness contract (see docs/INTERNALS.md "Decode cache"):
 *  - An entry is served only while its page write stamp is unchanged, so
 *    any overlapping store/atomic/DMA/bridge write — all of which funnel
 *    through MainMemory — invalidates it functionally.
 *  - The core only consults the cache when the fetch would hit the L1I
 *    (MemPort::fetchFastHit), which replicates the hit path's timing and
 *    stat side effects exactly and inherits the coherence protocol's
 *    cross-tile invalidations (a remote store recalls the L1I line).
 *  - FENCE.I, SFENCE.VMA, satp writes and checkpoint restore flush the
 *    whole cache (O(1) generation bump).
 *  - The cache is transient state: RvCore::saveState writes nothing for
 *    it, restoreState flushes it, and its counters live outside the
 *    StatRegistry — checkpoint bytes, stat dumps and traces are
 *    byte-identical with the cache on or off.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "riscv/isa.hpp"
#include "sim/types.hpp"

namespace smappic::riscv
{

/**
 * A validity handle onto the bytes behind one fetched word: a pointer to
 * the backing page's monotonic write stamp plus the value observed when
 * the word was read. current() is false as soon as anything overwrote
 * the page. The stamp object outlives every page image (MainMemory keeps
 * stamp slots alive across restore/clear and bumps them), so the pointer
 * never dangles.
 */
struct CodeRef
{
    const std::atomic<std::uint64_t> *stamp = nullptr;
    std::uint64_t seen = 0;

    bool
    current() const
    {
        return stamp != nullptr &&
               stamp->load(std::memory_order_acquire) == seen;
    }
};

/** Decode-cache knobs (PrototypeConfig::core.decodeCache). */
struct DecodeCacheConfig
{
    bool enabled = true;
    /** Direct-mapped entry count; must be a power of two. The default
     *  covers a 16 KiB instruction working set per core. */
    std::uint32_t sets = 4096;
};

/**
 * Hit/miss bookkeeping. Deliberately plain counters, not StatRegistry
 * entries: registering them would change the stat dump's contents
 * depending on whether the cache is enabled, breaking the byte-identity
 * contract. Benches and tests read them through DecodeCache::stats().
 */
struct DecodeCacheStats
{
    std::uint64_t hits = 0;    ///< Fast path taken (entry + L1I hit).
    std::uint64_t misses = 0;  ///< No usable entry (cold or conflict).
    std::uint64_t bypasses = 0; ///< Entry current but L1I missed.
    std::uint64_t invalidations = 0; ///< Entry dropped on a stale stamp.
    std::uint64_t fills = 0;
    std::uint64_t flushes = 0; ///< Whole-cache flushes (FENCE.I, ...).
};

/** The per-core decoded-instruction cache. */
class DecodeCache
{
  public:
    struct Entry
    {
        Addr pc = 0;
        std::uint32_t word = 0;
        std::uint64_t gen = 0; ///< Valid only while == generation().
        DecodedInst inst{};
        CodeRef ref{};
        bool valid = false;
    };

    explicit DecodeCache(const DecodeCacheConfig &cfg);

    bool enabled() const { return enabled_; }
    std::uint32_t sets() const { return mask_ + 1; }

    /**
     * Returns the live entry for @p pc, or nullptr. A tag match with a
     * stale write stamp is invalidated (and counted) on the way out.
     * Counts a miss on nullptr; the caller counts the hit or bypass once
     * it knows whether the L1I agreed (countHit / countBypass).
     */
    const Entry *
    find(Addr pc)
    {
        Entry &e = entries_[(pc >> 2) & mask_];
        if (e.valid && e.pc == pc && e.gen == gen_) {
            if (e.ref.current() || ignoreStaleStamps_)
                return &e;
            e.valid = false;
            ++stats_.invalidations;
        }
        ++stats_.misses;
        return nullptr;
    }

    /**
     * Test-only defeat switch (CoreTestMutation::kStaleDecode): serve
     * tag-matching entries even when their page write stamp is stale,
     * simulating a lost self-modifying-code invalidation so the lockstep
     * checker can prove it catches the defect class. Never set in
     * production.
     */
    void setIgnoreStaleStamps(bool on) { ignoreStaleStamps_ = on; }

    void countHit() { ++stats_.hits; }
    void countBypass() { ++stats_.bypasses; }

    /**
     * Installs @p pc's decoded word. @p ref must have been sampled
     * *before* the word was fetched, so a racing write can only make the
     * entry conservatively stale. A null-stamp ref (ports without
     * write-stamp support) is not cacheable and is dropped.
     */
    void
    fill(Addr pc, std::uint32_t word, const DecodedInst &inst,
         const CodeRef &ref)
    {
        if (!enabled_ || ref.stamp == nullptr)
            return;
        Entry &e = entries_[(pc >> 2) & mask_];
        e.pc = pc;
        e.word = word;
        e.inst = inst;
        e.ref = ref;
        e.gen = gen_;
        e.valid = true;
        ++stats_.fills;
    }

    /** Drops every entry (generation bump — O(1)). */
    void
    flush()
    {
        if (!enabled_)
            return;
        ++gen_;
        ++stats_.flushes;
    }

    const DecodeCacheStats &stats() const { return stats_; }

  private:
    bool enabled_;
    bool ignoreStaleStamps_ = false;
    std::uint32_t mask_ = 0;
    std::uint64_t gen_ = 0;
    DecodeCacheStats stats_;
    std::vector<Entry> entries_;
};

} // namespace smappic::riscv
