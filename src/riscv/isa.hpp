/**
 * @file
 * RV64IMA(+Zicsr) instruction-set definitions: opcodes, decoded form,
 * CSR numbers, trap causes and interrupt bits.
 */

#pragma once

#include <cstdint>
#include <string>

#include "sim/types.hpp"

namespace smappic::riscv
{

/** Decoded operation kinds. */
enum class Op : std::uint16_t
{
    kIllegal = 0,
    // RV32I/RV64I base.
    kLui, kAuipc, kJal, kJalr,
    kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
    kLb, kLh, kLw, kLd, kLbu, kLhu, kLwu,
    kSb, kSh, kSw, kSd,
    kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
    kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd,
    kAddiw, kSlliw, kSrliw, kSraiw,
    kAddw, kSubw, kSllw, kSrlw, kSraw,
    kFence, kFenceI, kEcall, kEbreak,
    // Zicsr.
    kCsrrw, kCsrrs, kCsrrc, kCsrrwi, kCsrrsi, kCsrrci,
    // Privileged.
    kMret, kSret, kWfi, kSfenceVma,
    // M extension.
    kMul, kMulh, kMulhsu, kMulhu, kDiv, kDivu, kRem, kRemu,
    kMulw, kDivw, kDivuw, kRemw, kRemuw,
    // A extension.
    kLrW, kScW, kLrD, kScD,
    kAmoSwapW, kAmoAddW, kAmoXorW, kAmoAndW, kAmoOrW,
    kAmoMinW, kAmoMaxW, kAmoMinuW, kAmoMaxuW,
    kAmoSwapD, kAmoAddD, kAmoXorD, kAmoAndD, kAmoOrD,
    kAmoMinD, kAmoMaxD, kAmoMinuD, kAmoMaxuD,
};

/** One decoded instruction. */
struct DecodedInst
{
    Op op = Op::kIllegal;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int64_t imm = 0;    ///< Sign-extended immediate.
    std::uint16_t csr = 0;   ///< CSR number for Zicsr ops.
    std::uint32_t raw = 0;   ///< Raw encoding.

    bool isLoad() const;
    bool isStore() const;
    bool isAmo() const;
    bool isBranch() const;
};

/** Decodes one 32-bit instruction word. */
DecodedInst decode(std::uint32_t word);

/** Human-readable mnemonic (for traces and tests). */
std::string mnemonic(Op op);

// CSR numbers used by the model.
inline constexpr std::uint16_t kCsrMstatus = 0x300;
inline constexpr std::uint16_t kCsrMisa = 0x301;
inline constexpr std::uint16_t kCsrMie = 0x304;
inline constexpr std::uint16_t kCsrMtvec = 0x305;
inline constexpr std::uint16_t kCsrMscratch = 0x340;
inline constexpr std::uint16_t kCsrMepc = 0x341;
inline constexpr std::uint16_t kCsrMcause = 0x342;
inline constexpr std::uint16_t kCsrMtval = 0x343;
inline constexpr std::uint16_t kCsrMip = 0x344;
inline constexpr std::uint16_t kCsrMhartid = 0xf14;
inline constexpr std::uint16_t kCsrSatp = 0x180;
inline constexpr std::uint16_t kCsrCycle = 0xc00;
inline constexpr std::uint16_t kCsrTime = 0xc01;
inline constexpr std::uint16_t kCsrInstret = 0xc02;
inline constexpr std::uint16_t kCsrMcycle = 0xb00;
inline constexpr std::uint16_t kCsrMinstret = 0xb02;

// Trap causes (mcause values).
inline constexpr std::uint64_t kCauseMisalignedFetch = 0;
inline constexpr std::uint64_t kCauseIllegalInst = 2;
inline constexpr std::uint64_t kCauseBreakpoint = 3;
inline constexpr std::uint64_t kCauseLoadFault = 5;
inline constexpr std::uint64_t kCauseStoreFault = 7;
inline constexpr std::uint64_t kCauseEcallU = 8;
inline constexpr std::uint64_t kCauseEcallM = 11;
inline constexpr std::uint64_t kCauseInstPageFault = 12;
inline constexpr std::uint64_t kCauseLoadPageFault = 13;
inline constexpr std::uint64_t kCauseStorePageFault = 15;
inline constexpr std::uint64_t kInterruptBit = 1ULL << 63;

// Interrupt numbers (mip/mie bit positions).
inline constexpr std::uint32_t kIrqMsi = 3;  ///< Machine software.
inline constexpr std::uint32_t kIrqMti = 7;  ///< Machine timer.
inline constexpr std::uint32_t kIrqMei = 11; ///< Machine external.

// mstatus fields.
inline constexpr std::uint64_t kMstatusSie = 1ULL << 1;
inline constexpr std::uint64_t kMstatusMie = 1ULL << 3;
inline constexpr std::uint64_t kMstatusSpie = 1ULL << 5;
inline constexpr std::uint64_t kMstatusMpie = 1ULL << 7;
inline constexpr std::uint64_t kMstatusSpp = 1ULL << 8;
inline constexpr unsigned kMstatusMppShift = 11;

// WARL legalization of CSR writes. These helpers are the single source
// of truth for which bits the model implements: both RvCore and the
// golden reference interpreter (ref::GoldenCore) funnel CSR writes
// through them, so a WARL choice can never silently differ between the
// timing model and the specification model.

/** mstatus bits writable through the CSR interface (M/S/U privilege
 *  stack only — no FS/XS/MPRV/TVM/TSR/SUM/MXR state is modeled). */
inline constexpr std::uint64_t kMstatusWritableMask =
    kMstatusSie | kMstatusMie | kMstatusSpie | kMstatusMpie | kMstatusSpp |
    (3ULL << kMstatusMppShift);

/** Masks reserved mstatus bits and legalizes MPP (2 is reserved → U). */
constexpr std::uint64_t
legalizeMstatusWrite(std::uint64_t value)
{
    std::uint64_t v = value & kMstatusWritableMask;
    if (((v >> kMstatusMppShift) & 3) == 2)
        v &= ~(3ULL << kMstatusMppShift);
    return v;
}

/** mtvec: 4-aligned base, mode 0 (direct) or 1 (vectored); reserved
 *  modes legalize to direct. */
constexpr std::uint64_t
legalizeMtvecWrite(std::uint64_t value)
{
    std::uint64_t mode = value & 3;
    return (value & ~3ULL) | (mode <= 1 ? mode : 0);
}

/** mepc: IALIGN=32 (no C extension), so bits [1:0] read as zero. */
constexpr std::uint64_t
legalizeMepcWrite(std::uint64_t value)
{
    return value & ~3ULL;
}

/** satp: only Bare (0) and Sv39 (8) are supported; a write with a
 *  reserved mode takes no effect and the old value is retained. */
constexpr std::uint64_t
legalizeSatpWrite(std::uint64_t old, std::uint64_t value)
{
    std::uint64_t mode = value >> 60;
    return (mode == 0 || mode == 8) ? value : old;
}

} // namespace smappic::riscv
