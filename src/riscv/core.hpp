/**
 * @file
 * RV64IMA core model with Ariane-like timing.
 *
 * The functional layer is a full interpreter (RV64IMA + Zicsr, M/S/U
 * privilege with traps to M, Sv39 translation); the timing layer models the
 * paper's Table 2 core: in-order single-issue 6-stage pipeline, 128-entry
 * branch history table, 16-entry I/D TLBs. Memory operation latencies come
 * from the attached MemPort (usually the platform's coherent memory
 * system), so cache/NoC/inter-node behaviour shows up directly in core
 * cycle counts.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "riscv/decode_cache.hpp"
#include "riscv/isa.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::obs
{
class Tracer;
}

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::riscv
{

/** Memory access types as seen by the translation/permission logic. */
enum class MemAccess : std::uint8_t
{
    kFetch,
    kLoad,
    kStore,
};

/**
 * The core's window onto the memory system. Latencies returned through
 * @p lat are in core cycles and include the full miss path.
 */
class MemPort
{
  public:
    virtual ~MemPort() = default;

    virtual std::uint64_t load(Addr addr, std::uint32_t bytes, Cycles now,
                               Cycles &lat) = 0;
    virtual void store(Addr addr, std::uint32_t bytes, std::uint64_t value,
                       Cycles now, Cycles &lat) = 0;
    virtual std::uint32_t fetch(Addr addr, Cycles now, Cycles &lat) = 0;

    /**
     * Atomic read-modify-write: returns the old value and stores
     * @p rmw(old).
     */
    virtual std::uint64_t
    atomic(Addr addr, std::uint32_t bytes,
           const std::function<std::uint64_t(std::uint64_t)> &rmw,
           Cycles now, Cycles &lat) = 0;

    /**
     * Decode-cache fast path: when the fetch of @p addr would hit the
     * L1I, performs the hit path's side effects (LRU touch, hit counter)
     * and returns true with @p lat set to the hit latency; otherwise
     * returns false having changed nothing, and the caller must issue
     * the full fetch(). The default (ports without a timing hierarchy)
     * never takes the fast path.
     */
    virtual bool
    fetchFastHit(Addr addr, Cycles now, Cycles &lat)
    {
        (void)addr;
        (void)now;
        (void)lat;
        return false;
    }

    /**
     * Write-stamp handle covering the bytes behind @p addr (see
     * CodeRef). Must be sampled before the corresponding fetch(). The
     * default returns a null ref, which DecodeCache::fill refuses to
     * cache — ports without stamp support stay correct for free.
     */
    virtual CodeRef
    codeRef(Addr addr)
    {
        (void)addr;
        return {};
    }

    /**
     * Data fast path for scalar loads: when a load of @p bytes at
     * @p addr would hit the L1D, performs the hit path's exact side
     * effects (LRU touch, hit counter), reads the data into @p value
     * and returns true with @p lat set to the hit latency; otherwise
     * returns false having changed nothing, and the caller must issue
     * the full load(). Only called for naturally aligned accesses.
     * The default (ports without a timing hierarchy) never takes the
     * fast path.
     */
    virtual bool
    loadFastHit(Addr addr, std::uint32_t bytes, Cycles now, Cycles &lat,
                std::uint64_t &value)
    {
        (void)addr;
        (void)bytes;
        (void)now;
        (void)lat;
        (void)value;
        return false;
    }

    /**
     * Data fast path for scalar stores: when a store of @p bytes at
     * @p addr would complete at L1 speed (the private hierarchy already
     * owns the line in M), performs the hit path's exact side effects,
     * writes @p value to backing memory and returns true with @p lat
     * set to the hit latency; otherwise returns false having changed
     * nothing — not even memory — and the caller must issue the full
     * store(). Only called for naturally aligned accesses.
     */
    virtual bool
    storeFastHit(Addr addr, std::uint32_t bytes, std::uint64_t value,
                 Cycles now, Cycles &lat)
    {
        (void)addr;
        (void)bytes;
        (void)value;
        (void)now;
        (void)lat;
        return false;
    }
};

/** Static configuration of one core (Table 2 defaults). */
struct CoreConfig
{
    std::uint32_t hartId = 0;
    Addr resetPc = 0x80000000;
    Cycles baseCycles = 1;        ///< Cycles per instruction before stalls.
    std::uint32_t bhtEntries = 128;
    std::uint32_t itlbEntries = 16;
    std::uint32_t dtlbEntries = 16;
    Cycles mispredictPenalty = 5; ///< 6-stage frontend flush.
    Cycles jalrPenalty = 3;       ///< Indirect target redirect.
    Cycles mulLatency = 2;
    Cycles divLatency = 20;
    Cycles tlbWalkBase = 6;       ///< Walker overhead beyond PTE loads.
    /** Decoded-instruction cache (decode_cache.hpp). Timing-neutral by
     *  construction; disable to run the original fetch/decode path. */
    DecodeCacheConfig decodeCache;
    /** L1D hit fast path for aligned scalar loads/stores
     *  (MemPort::loadFastHit/storeFastHit). Timing-neutral by
     *  construction; disable to run every access down the full walk. */
    bool dataFastPath = true;
};

/** Why run() returned. */
enum class HaltReason : std::uint8_t
{
    kInstrBudget, ///< Instruction budget exhausted; call run() again.
    kExited,      ///< Environment requested exit (see exitCode()).
    kEbreak,      ///< Hit an ebreak.
    kWfi,         ///< Waiting for interrupt with none pending.
};

/**
 * One architecturally visible step, as reported to the commit observer
 * (see RvCore::setCommitFn). Three shapes:
 *  - a retired instruction: @p inst points at the decoded form (valid
 *    only for the duration of the callback), @p trapped tells whether it
 *    redirected into the trap handler, @p envAbsorbed whether an ecall
 *    was consumed by the environment instead of trapping;
 *  - a synchronous fetch-side trap that retired nothing (@p inst null,
 *    @p trapped true): misaligned pc or instruction page fault;
 *  - an asynchronous interrupt redirect (@p interrupt true, @p inst
 *    null): pc/mstatus changed with no instruction retired.
 * The callback runs after the core's state update, so the core exposes
 * the post-step architectural state.
 */
struct CommitRecord
{
    Addr pc = 0;               ///< pc the step started at.
    std::uint32_t word = 0;    ///< Raw instruction word (0 if none).
    const DecodedInst *inst = nullptr;
    bool trapped = false;
    bool envAbsorbed = false;
    bool interrupt = false;
};

/**
 * Test-only defeat switches proving the lockstep checker catches real
 * defect classes (mirrors cache::TestMutation). Never set in production.
 */
enum class CoreTestMutation : std::uint8_t
{
    kNone,
    /** mulh returns a wrong high word (silent ALU corruption). */
    kMulhCorrupt,
    /** The decode cache serves entries whose page write stamp is stale
     *  (suppressed self-modifying-code invalidation). */
    kStaleDecode,
};

/** RV64IMA hart. */
class RvCore
{
  public:
    /** Environment-call hook: return true when the ecall was absorbed. */
    using EcallHandler = std::function<bool(RvCore &)>;

    /** Instruction trace hook, fired once per decoded instruction. */
    using TraceFn = std::function<void(Addr pc, const DecodedInst &)>;

    /** Commit observer, fired after every architectural step. */
    using CommitFn = std::function<void(RvCore &, const CommitRecord &)>;

    RvCore(const CoreConfig &cfg, MemPort &port,
           sim::StatRegistry *stats = nullptr);

    /** Executes instructions until a halt condition. */
    HaltReason run(std::uint64_t max_instructions);

    /** Executes one instruction; returns the cycles it consumed. */
    Cycles step();

    // Architectural state access.
    std::uint64_t reg(unsigned idx) const { return regs_[idx]; }
    void setReg(unsigned idx, std::uint64_t v);
    Addr pc() const { return pc_; }
    void setPc(Addr pc) { pc_ = pc; }
    std::uint64_t csr(std::uint16_t num) const;
    void setCsr(std::uint16_t num, std::uint64_t value);

    Cycles cycles() const { return cycles_; }
    std::uint64_t instret() const { return instret_; }
    bool exited() const { return exited_; }
    std::int64_t exitCode() const { return exitCode_; }
    std::uint32_t hartId() const { return cfg_.hartId; }
    unsigned privilege() const { return priv_; }

    /** Requests environment exit (used by ecall handlers). */
    void requestExit(std::int64_t code)
    {
        exited_ = true;
        exitCode_ = code;
    }

    void setEcallHandler(EcallHandler h) { ecall_ = std::move(h); }

    /** Installs an instruction-trace callback (empty to disable). */
    void setTraceFn(TraceFn fn) { trace_ = std::move(fn); }

    /**
     * Installs the commit observer (empty to disable). Fired once per
     * architectural step — retired instruction, fetch-side trap, or
     * interrupt redirect (see CommitRecord) — after the state update.
     * EBREAK stalls and parked WFIs make no architectural progress and
     * are not reported. Costs one branch per step when unset.
     */
    void setCommitFn(CommitFn fn) { commit_ = std::move(fn); }

    /** Arms a test-only defeat switch (see CoreTestMutation). */
    void setTestMutation(CoreTestMutation m);

    /**
     * Attaches the platform tracer (null to detach). Every retired
     * instruction emits kCoreCommit (arg = pc, duration = cycles
     * consumed); retirements spanning at least @p stall_cycles also emit
     * kCoreStall, flagging long memory latencies. @p node tags the events
     * with the core's node (the core itself only knows its hart id).
     */
    void setTracer(obs::Tracer *tracer, NodeId node, Cycles stall_cycles);

    /**
     * Drives an interrupt wire (from the interrupt depacketizer).
     * @param irq One of kIrqMsi / kIrqMti / kIrqMei.
     */
    void setIrqLine(std::uint32_t irq, bool level);

    /** True when an enabled interrupt is pending. */
    bool interruptPending() const;

    const CoreConfig &config() const { return cfg_; }

    /** The decoded-instruction cache (hit/miss counters for benches). */
    const DecodeCache &decodeCache() const { return decodeCache_; }

    /** Serializes the full architectural + microarchitectural state
     *  (registers, CSRs, reservation, BHT, TLBs, halt bookkeeping). The
     *  decode cache is transient derived state and is deliberately not
     *  written: checkpoints are byte-identical with it on or off. */
    void saveState(snap::Writer &w) const;
    /** Restores into a core built from the same CoreConfig; flushes the
     *  decode cache (the restored memory image may differ arbitrarily
     *  from the one the entries were decoded against). */
    void restoreState(snap::Reader &r);

  private:
    struct TlbEntry
    {
        std::uint64_t vpn = 0;
        std::uint64_t pageBase = 0; ///< Physical base of the page.
        std::uint64_t pageSize = 0;
        std::uint8_t perms = 0;     ///< PTE R/W/X/U bits.
        bool valid = false;
        std::uint64_t lastUse = 0;
    };

    struct TranslateResult
    {
        Addr paddr = 0;
        bool fault = false;
        std::uint64_t cause = 0;
    };

    bool translationActive() const;
    /** Flushes the decode cache, emitting the kDecodeFlush trace event. */
    void flushDecodeCache();
    TranslateResult translate(Addr vaddr, MemAccess access, Cycles &lat);
    TlbEntry *tlbLookup(std::vector<TlbEntry> &tlb, Addr vaddr);
    void tlbFill(std::vector<TlbEntry> &tlb, std::uint64_t vpn,
                 std::uint64_t page_base, std::uint64_t page_size,
                 std::uint8_t perms);
    void tlbFlush();

    void takeTrap(std::uint64_t cause, std::uint64_t tval);
    bool maybeTakeInterrupt();
    bool predictTaken(Addr pc);
    void trainBht(Addr pc, bool taken);

    std::uint64_t readCsr(std::uint16_t num) const;
    void writeCsr(std::uint16_t num, std::uint64_t value);

    CoreConfig cfg_;
    MemPort &port_;
    sim::StatRegistry *stats_;
    obs::Tracer *tracer_ = nullptr;
    obs::Tracer *tracerDecode_ = nullptr;
    std::uint16_t traceNode_ = 0;
    Cycles traceStallCycles_ = 8;
    DecodeCache decodeCache_;

    std::uint64_t regs_[32] = {};
    Addr pc_;
    Cycles cycles_ = 0;
    std::uint64_t instret_ = 0;
    unsigned priv_ = 3; ///< M-mode at reset.

    // CSRs.
    std::uint64_t mstatus_ = 0;
    std::uint64_t mie_ = 0;
    std::uint64_t mip_ = 0;
    std::uint64_t mtvec_ = 0;
    std::uint64_t mepc_ = 0;
    std::uint64_t mcause_ = 0;
    std::uint64_t mtval_ = 0;
    std::uint64_t mscratch_ = 0;
    std::uint64_t satp_ = 0;

    // Reservation for LR/SC.
    bool hasReservation_ = false;
    Addr reservation_ = 0;

    // Predictors and TLBs.
    std::vector<std::uint8_t> bht_; ///< 2-bit counters.
    std::vector<TlbEntry> itlb_;
    std::vector<TlbEntry> dtlb_;
    std::uint64_t tlbClock_ = 0;

    /** Why the last step() made no forward progress. */
    enum class Stall : std::uint8_t
    {
        kNone,
        kWfi,
        kEbreak,
    };

    bool exited_ = false;
    std::int64_t exitCode_ = 0;
    std::uint32_t lastWord_ = 0; ///< Last fetched instruction (halt info).
    Stall lastStall_ = Stall::kNone;
    EcallHandler ecall_;
    TraceFn trace_;
    CommitFn commit_;
    CoreTestMutation mutation_ = CoreTestMutation::kNone;
};

} // namespace smappic::riscv
