#include "riscv/interrupts.hpp"

#include <algorithm>

#include "sim/event_queue.hpp"
#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::riscv
{

ClintController::ClintController(std::uint32_t harts)
{
    fatalIf(harts == 0, "CLINT needs at least one hart");
    msip_.assign(harts, false);
    mtip_.assign(harts, false);
    meip_.assign(harts, false);
    mtimecmp_.assign(harts, ~0ULL);
}

void
ClintController::setWire(std::vector<bool> &wires, std::uint32_t hart,
                         std::uint32_t irq, bool level)
{
    panicIf(hart >= wires.size(), "CLINT hart index out of range");
    if (wires[hart] == level)
        return;
    wires[hart] = level;
    if (wireFn_)
        wireFn_(hart, irq, level);
}

std::uint64_t
ClintController::read(Addr offset) const
{
    if (offset >= kClintMsipBase && offset < kClintMsipBase + 4 * harts())
        return msip_[(offset - kClintMsipBase) / 4] ? 1 : 0;
    if (offset >= kClintMtimecmpBase &&
        offset < kClintMtimecmpBase + 8 * harts())
        return mtimecmp_[(offset - kClintMtimecmpBase) / 8];
    if (offset == kClintMtime)
        return mtime_;
    return 0;
}

void
ClintController::write(Addr offset, std::uint64_t value, std::uint32_t)
{
    if (offset >= kClintMsipBase && offset < kClintMsipBase + 4 * harts()) {
        auto hart = static_cast<std::uint32_t>((offset - kClintMsipBase) /
                                               4);
        setWire(msip_, hart, kIrqMsi, (value & 1) != 0);
        return;
    }
    if (offset >= kClintMtimecmpBase &&
        offset < kClintMtimecmpBase + 8 * harts()) {
        auto hart = static_cast<std::uint32_t>(
            (offset - kClintMtimecmpBase) / 8);
        mtimecmp_[hart] = value;
        evaluateTimers();
        return;
    }
    if (offset == kClintMtime) {
        mtime_ = value;
        evaluateTimers();
        return;
    }
}

void
ClintController::setTime(std::uint64_t mtime)
{
    mtime_ = mtime;
    evaluateTimers();
}

void
ClintController::evaluateTimers()
{
    for (std::uint32_t h = 0; h < harts(); ++h)
        setWire(mtip_, h, kIrqMti, mtime_ >= mtimecmp_[h]);
}

std::uint64_t
ClintController::nextTimerCycle() const
{
    std::uint64_t next = sim::kNoDeadline;
    for (std::uint64_t cmp : mtimecmp_) {
        if (cmp > mtime_)
            next = std::min(next, cmp);
    }
    return next;
}

void
ClintController::setExternal(std::uint32_t hart, bool level)
{
    setWire(meip_, hart, kIrqMei, level);
}

void
IrqPacketizer::onWireChange(std::uint32_t hart, std::uint32_t irq,
                            bool level)
{
    auto [node, tile] = loc_(hart);
    noc::Packet pkt = encode(node_, node, tile, hart, irq, level);
    if (send_)
        send_(pkt);
}

noc::Packet
IrqPacketizer::encode(NodeId src_node, NodeId dst_node, TileId dst_tile,
                      std::uint32_t hart, std::uint32_t irq, bool level)
{
    noc::Packet pkt;
    pkt.noc = noc::NocIndex::kNoc2;
    pkt.srcNode = src_node;
    pkt.srcTile = noc::kOffChipTile;
    pkt.dstNode = dst_node;
    pkt.dstTile = dst_tile;
    pkt.type = noc::MsgType::kInterrupt;
    pkt.sizeLog2 = 3;
    // Payload flit: [16:1] hart, [8 bits at 17] irq, [0] level.
    pkt.payload.push_back((static_cast<std::uint64_t>(hart) << 1) |
                          (static_cast<std::uint64_t>(irq) << 17) |
                          (level ? 1 : 0));
    return pkt;
}

IrqDepacketizer::Decoded
IrqDepacketizer::decode(const noc::Packet &pkt)
{
    panicIf(pkt.type != noc::MsgType::kInterrupt,
            "depacketizer got a non-interrupt packet");
    panicIf(pkt.payload.empty(), "interrupt packet without payload");
    std::uint64_t w = pkt.payload[0];
    Decoded d;
    d.level = (w & 1) != 0;
    d.hart = static_cast<std::uint32_t>((w >> 1) & 0xffff);
    d.irq = static_cast<std::uint32_t>((w >> 17) & 0xff);
    return d;
}

void
IrqDepacketizer::apply(const noc::Packet &pkt, RvCore &core)
{
    Decoded d = decode(pkt);
    core.setIrqLine(d.irq, d.level);
}

namespace
{

void
saveBoolVec(snap::Writer &w, const std::vector<bool> &v)
{
    w.u64(v.size());
    for (bool b : v)
        w.boolean(b);
}

void
restoreBoolVec(snap::Reader &r, std::vector<bool> &v)
{
    std::uint64_t size = r.u64();
    fatalIf(size != v.size(), "checkpoint wire vector size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = r.boolean();
}

} // namespace

void
ClintController::saveState(snap::Writer &w) const
{
    saveBoolVec(w, msip_);
    saveBoolVec(w, mtip_);
    saveBoolVec(w, meip_);
    w.u64(mtimecmp_.size());
    for (std::uint64_t cmp : mtimecmp_)
        w.u64(cmp);
    w.u64(mtime_);
}

void
ClintController::restoreState(snap::Reader &r)
{
    restoreBoolVec(r, msip_);
    restoreBoolVec(r, mtip_);
    restoreBoolVec(r, meip_);
    std::uint64_t harts = r.u64();
    fatalIf(
        harts != mtimecmp_.size(),
        strfmt("checkpoint CLINT has %llu harts, controller expects %llu",
               static_cast<unsigned long long>(harts),
               static_cast<unsigned long long>(mtimecmp_.size())));
    for (std::uint64_t &cmp : mtimecmp_)
        cmp = r.u64();
    mtime_ = r.u64();
}

} // namespace smappic::riscv
