#include "riscv/core.hpp"

#include "obs/tracer.hpp"
#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::riscv
{

namespace
{

// PTE bits.
constexpr std::uint64_t kPteV = 1 << 0;
constexpr std::uint64_t kPteR = 1 << 1;
constexpr std::uint64_t kPteW = 1 << 2;
constexpr std::uint64_t kPteX = 1 << 3;
constexpr std::uint64_t kPteU = 1 << 4;
constexpr std::uint64_t kPteA = 1 << 6;
constexpr std::uint64_t kPteD = 1 << 7;

// TLB perm flags (mirror PTE bits, plus dirty tracking).
constexpr std::uint8_t kPermR = 1;
constexpr std::uint8_t kPermW = 2;
constexpr std::uint8_t kPermX = 4;
constexpr std::uint8_t kPermU = 8;
constexpr std::uint8_t kPermD = 16;

std::int64_t
asSigned(std::uint64_t v)
{
    return static_cast<std::int64_t>(v);
}

std::uint64_t
sext32(std::uint64_t v)
{
    return static_cast<std::uint64_t>(
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
}

std::uint64_t
faultCause(MemAccess access)
{
    switch (access) {
      case MemAccess::kFetch:
        return kCauseInstPageFault;
      case MemAccess::kLoad:
        return kCauseLoadPageFault;
      case MemAccess::kStore:
        return kCauseStorePageFault;
    }
    return kCauseLoadPageFault;
}

} // namespace

RvCore::RvCore(const CoreConfig &cfg, MemPort &port,
               sim::StatRegistry *stats)
    : cfg_(cfg), port_(port), stats_(stats), decodeCache_(cfg.decodeCache),
      pc_(cfg.resetPc)
{
    fatalIf(cfg.bhtEntries == 0 || (cfg.bhtEntries & (cfg.bhtEntries - 1)),
            "BHT entry count must be a power of two");
    bht_.assign(cfg.bhtEntries, 1); // Weakly not-taken.
    itlb_.resize(cfg.itlbEntries);
    dtlb_.resize(cfg.dtlbEntries);
}

void
RvCore::setReg(unsigned idx, std::uint64_t v)
{
    panicIf(idx >= 32, "register index out of range");
    if (idx != 0)
        regs_[idx] = v;
}

void
RvCore::setTracer(obs::Tracer *tracer, NodeId node, Cycles stall_cycles)
{
    tracer_ = tracer ? tracer->handleFor(obs::Component::kCore) : nullptr;
    tracerDecode_ =
        tracer ? tracer->handleFor(obs::Component::kDecodeCache) : nullptr;
    traceNode_ = static_cast<std::uint16_t>(node);
    traceStallCycles_ = stall_cycles;
}

bool
RvCore::translationActive() const
{
    return (satp_ >> 60) == 8 && priv_ != 3;
}

void
RvCore::flushDecodeCache()
{
    if (!decodeCache_.enabled())
        return;
    decodeCache_.flush();
    if (tracerDecode_) {
        obs::TraceEvent ev = obs::event(obs::EventKind::kDecodeFlush);
        ev.cycle = cycles_;
        ev.arg = pc_;
        ev.node = traceNode_;
        ev.tile = static_cast<std::uint16_t>(cfg_.hartId);
        tracerDecode_->record(ev);
    }
}

RvCore::TlbEntry *
RvCore::tlbLookup(std::vector<TlbEntry> &tlb, Addr vaddr)
{
    for (auto &e : tlb) {
        if (!e.valid)
            continue;
        std::uint64_t base = vaddr & ~(e.pageSize - 1);
        if ((base >> 12) == e.vpn) {
            e.lastUse = ++tlbClock_;
            return &e;
        }
    }
    return nullptr;
}

void
RvCore::tlbFill(std::vector<TlbEntry> &tlb, std::uint64_t vpn,
                std::uint64_t page_base, std::uint64_t page_size,
                std::uint8_t perms)
{
    TlbEntry *slot = &tlb[0];
    for (auto &e : tlb) {
        if (!e.valid) {
            slot = &e;
            break;
        }
        if (e.lastUse < slot->lastUse)
            slot = &e;
    }
    slot->valid = true;
    slot->vpn = vpn;
    slot->pageBase = page_base;
    slot->pageSize = page_size;
    slot->perms = perms;
    slot->lastUse = ++tlbClock_;
}

void
RvCore::tlbFlush()
{
    for (auto &e : itlb_)
        e.valid = false;
    for (auto &e : dtlb_)
        e.valid = false;
}

RvCore::TranslateResult
RvCore::translate(Addr vaddr, MemAccess access, Cycles &lat)
{
    if (!translationActive())
        return TranslateResult{vaddr, false, 0};

    auto &tlb = access == MemAccess::kFetch ? itlb_ : dtlb_;
    if (TlbEntry *e = tlbLookup(tlb, vaddr)) {
        bool perm_ok = true;
        if (access == MemAccess::kFetch)
            perm_ok = e->perms & kPermX;
        else if (access == MemAccess::kLoad)
            perm_ok = e->perms & kPermR;
        else
            perm_ok = e->perms & kPermW;
        if (priv_ == 0 && !(e->perms & kPermU))
            perm_ok = false;
        // A store through a clean entry must re-walk to set the D bit.
        bool need_rewalk =
            access == MemAccess::kStore && !(e->perms & kPermD);
        if (perm_ok && !need_rewalk) {
            Addr offset = vaddr & (e->pageSize - 1);
            return TranslateResult{e->pageBase + offset, false, 0};
        }
        if (!perm_ok)
            return TranslateResult{0, true, faultCause(access)};
        e->valid = false; // Fall through to the walker for the D bit.
    }

    // Sv39 three-level walk; PTE loads go through the memory port so they
    // show up in the timing model.
    if (stats_)
        stats_->counter("core.tlbMisses").increment();
    lat += cfg_.tlbWalkBase;
    std::uint64_t root = (satp_ & ((1ULL << 44) - 1)) << 12;
    std::uint64_t table = root;
    for (int level = 2; level >= 0; --level) {
        std::uint64_t vpn_i = (vaddr >> (12 + 9 * level)) & 0x1ff;
        Addr pte_addr = table + vpn_i * 8;
        Cycles pte_lat = 0;
        std::uint64_t pte = port_.load(pte_addr, 8, cycles_ + lat, pte_lat);
        lat += pte_lat;

        if (!(pte & kPteV) || (!(pte & kPteR) && (pte & kPteW)))
            return TranslateResult{0, true, faultCause(access)};

        if (pte & (kPteR | kPteX)) {
            // Leaf PTE; check permissions and superpage alignment.
            bool perm_ok = true;
            if (access == MemAccess::kFetch)
                perm_ok = pte & kPteX;
            else if (access == MemAccess::kLoad)
                perm_ok = pte & kPteR;
            else
                perm_ok = pte & kPteW;
            if (priv_ == 0 && !(pte & kPteU))
                perm_ok = false;
            if (!perm_ok)
                return TranslateResult{0, true, faultCause(access)};

            std::uint64_t ppn = pte >> 10;
            std::uint64_t page_size = 1ULL << (12 + 9 * level);
            if (level > 0 && (ppn & ((1ULL << (9 * level)) - 1)) != 0)
                return TranslateResult{0, true, faultCause(access)};

            // Update A/D bits in memory.
            std::uint64_t new_pte = pte | kPteA;
            if (access == MemAccess::kStore)
                new_pte |= kPteD;
            if (new_pte != pte) {
                Cycles st_lat = 0;
                port_.store(pte_addr, 8, new_pte, cycles_ + lat, st_lat);
                lat += st_lat;
            }

            std::uint64_t page_base = (ppn << 12) & ~(page_size - 1);
            std::uint8_t perms = 0;
            if (pte & kPteR)
                perms |= kPermR;
            if (new_pte & kPteW)
                perms |= kPermW;
            if (pte & kPteX)
                perms |= kPermX;
            if (pte & kPteU)
                perms |= kPermU;
            if (new_pte & kPteD)
                perms |= kPermD;
            std::uint64_t vbase = vaddr & ~(page_size - 1);
            tlbFill(tlb, vbase >> 12, page_base, page_size, perms);
            return TranslateResult{page_base + (vaddr & (page_size - 1)),
                                   false, 0};
        }
        table = (pte >> 10) << 12;
    }
    return TranslateResult{0, true, faultCause(access)};
}

void
RvCore::takeTrap(std::uint64_t cause, std::uint64_t tval)
{
    mepc_ = pc_;
    mcause_ = cause;
    mtval_ = tval;
    // Save and mask interrupt enable; remember the source privilege.
    std::uint64_t mie_bit = (mstatus_ & kMstatusMie) ? 1 : 0;
    mstatus_ &= ~(kMstatusMie | kMstatusMpie |
                  (3ULL << kMstatusMppShift));
    mstatus_ |= mie_bit << 7;
    mstatus_ |= static_cast<std::uint64_t>(priv_) << kMstatusMppShift;
    priv_ = 3;

    Addr base = mtvec_ & ~3ULL;
    if ((mtvec_ & 3) == 1 && (cause & kInterruptBit))
        pc_ = base + 4 * (cause & 0xff);
    else
        pc_ = base;
    if (stats_)
        stats_->counter("core.traps").increment();
}

bool
RvCore::interruptPending() const
{
    std::uint64_t pending = mip_ & mie_;
    if (!pending)
        return false;
    return priv_ < 3 || (mstatus_ & kMstatusMie);
}

bool
RvCore::maybeTakeInterrupt()
{
    if (!interruptPending())
        return false;
    std::uint64_t pending = mip_ & mie_;
    std::uint32_t irq;
    if (pending & (1ULL << kIrqMei))
        irq = kIrqMei;
    else if (pending & (1ULL << kIrqMsi))
        irq = kIrqMsi;
    else
        irq = kIrqMti;
    takeTrap(kInterruptBit | irq, 0);
    if (stats_)
        stats_->counter("core.interruptsTaken").increment();
    return true;
}

void
RvCore::setIrqLine(std::uint32_t irq, bool level)
{
    if (level)
        mip_ |= 1ULL << irq;
    else
        mip_ &= ~(1ULL << irq);
}

bool
RvCore::predictTaken(Addr pc)
{
    return bht_[(pc >> 2) & (cfg_.bhtEntries - 1)] >= 2;
}

void
RvCore::trainBht(Addr pc, bool taken)
{
    std::uint8_t &ctr = bht_[(pc >> 2) & (cfg_.bhtEntries - 1)];
    if (taken && ctr < 3)
        ++ctr;
    else if (!taken && ctr > 0)
        --ctr;
}

std::uint64_t
RvCore::readCsr(std::uint16_t num) const
{
    switch (num) {
      case kCsrMstatus: return mstatus_;
      case kCsrMisa:
        // RV64 (MXL=2) with I, M, A, S, U.
        return (2ULL << 62) | (1 << 0) | (1 << 8) | (1 << 12) | (1 << 18) |
               (1 << 20);
      case kCsrMie: return mie_;
      case kCsrMip: return mip_;
      case kCsrMtvec: return mtvec_;
      case kCsrMepc: return mepc_;
      case kCsrMcause: return mcause_;
      case kCsrMtval: return mtval_;
      case kCsrMscratch: return mscratch_;
      case kCsrMhartid: return cfg_.hartId;
      case kCsrSatp: return satp_;
      case kCsrCycle:
      case kCsrMcycle:
      case kCsrTime:
        return cycles_;
      case kCsrInstret:
      case kCsrMinstret:
        return instret_;
      default:
        return 0;
    }
}

void
RvCore::writeCsr(std::uint16_t num, std::uint64_t value)
{
    switch (num) {
      case kCsrMstatus:
        mstatus_ = legalizeMstatusWrite(value);
        break;
      case kCsrMie:
        mie_ = value;
        break;
      case kCsrMip:
        // Software-settable bits only (MSIP is set via the CLINT).
        mip_ = value;
        break;
      case kCsrMtvec:
        mtvec_ = legalizeMtvecWrite(value);
        break;
      case kCsrMepc:
        mepc_ = legalizeMepcWrite(value);
        break;
      case kCsrMcause:
        mcause_ = value;
        break;
      case kCsrMtval:
        mtval_ = value;
        break;
      case kCsrMscratch:
        mscratch_ = value;
        break;
      case kCsrSatp:
        satp_ = legalizeSatpWrite(satp_, value);
        tlbFlush();
        flushDecodeCache();
        break;
      default:
        break; // Writes to unimplemented/read-only CSRs are ignored.
    }
}

std::uint64_t
RvCore::csr(std::uint16_t num) const
{
    return readCsr(num);
}

void
RvCore::setCsr(std::uint16_t num, std::uint64_t value)
{
    writeCsr(num, value);
}

HaltReason
RvCore::run(std::uint64_t max_instructions)
{
    for (std::uint64_t i = 0; i < max_instructions; ++i) {
        if (exited_)
            return HaltReason::kExited;
        step();
        if (exited_)
            return HaltReason::kExited;
        if (lastStall_ == Stall::kEbreak)
            return HaltReason::kEbreak;
        if (lastStall_ == Stall::kWfi)
            return HaltReason::kWfi;
    }
    return HaltReason::kInstrBudget;
}

Cycles
RvCore::step()
{
    if (exited_)
        return 0;
    lastStall_ = Stall::kNone;
    if (maybeTakeInterrupt()) {
        cycles_ += cfg_.mispredictPenalty; // Redirect cost.
        if (commit_) {
            CommitRecord rec;
            rec.pc = pc_;
            rec.interrupt = true;
            commit_(*this, rec);
        }
        return cfg_.mispredictPenalty;
    }

    Cycles total = cfg_.baseCycles; // Pipeline base CPI.
    Addr pc = pc_;

    // Fetch-side traps retire nothing but still redirect control; the
    // commit observer hears about them so a lockstep follower can track
    // the pc.
    auto commitFetchTrap = [&] {
        if (!commit_)
            return;
        CommitRecord rec;
        rec.pc = pc;
        rec.trapped = true;
        commit_(*this, rec);
    };

    if (pc & 3) {
        takeTrap(kCauseMisalignedFetch, pc);
        cycles_ += total;
        commitFetchTrap();
        return total;
    }

    // Fetch (with translation).
    Cycles xlat_lat = 0;
    TranslateResult tr = translate(pc, MemAccess::kFetch, xlat_lat);
    total += xlat_lat;
    if (tr.fault) {
        takeTrap(tr.cause, pc);
        cycles_ += total;
        commitFetchTrap();
        return total;
    }
    std::uint32_t word = 0;
    DecodedInst d;
    bool decoded = false;
    // Decode-cache fast path. Only untranslated fetches qualify: a
    // translated fetch's iTLB lookup mutates checkpointed replacement
    // state, which the fast path must not skip. The L1I-hit gate
    // (fetchFastHit) replicates the hit path's timing and side effects
    // exactly and inherits coherence invalidations; the entry's write
    // stamp catches same-hart stores, DMA and loader writes.
    if (decodeCache_.enabled() && !translationActive()) {
        if (const DecodeCache::Entry *e = decodeCache_.find(pc)) {
            Cycles hit_lat = 0;
            if (port_.fetchFastHit(tr.paddr, cycles_, hit_lat)) {
                if (hit_lat > 1)
                    total += hit_lat - 1;
                word = e->word;
                d = e->inst;
                decoded = true;
                decodeCache_.countHit();
            } else {
                decodeCache_.countBypass();
            }
        }
        if (!decoded) {
            // The stamp is sampled before the fetch so a write racing
            // the fill can only make the entry conservatively stale.
            CodeRef ref = port_.codeRef(tr.paddr);
            Cycles fetch_lat = 0;
            word = port_.fetch(tr.paddr, cycles_, fetch_lat);
            if (fetch_lat > 1)
                total += fetch_lat - 1;
            d = decode(word);
            decoded = true;
            decodeCache_.fill(pc, word, d, ref);
            if (tracerDecode_) {
                obs::TraceEvent ev =
                    obs::event(obs::EventKind::kDecodeFill);
                ev.cycle = cycles_;
                ev.arg = pc;
                ev.node = traceNode_;
                ev.tile = static_cast<std::uint16_t>(cfg_.hartId);
                tracerDecode_->record(ev);
            }
        }
    }
    if (!decoded) {
        Cycles fetch_lat = 0;
        word = port_.fetch(tr.paddr, cycles_, fetch_lat);
        if (fetch_lat > 1)
            total += fetch_lat - 1; // L1I hit is covered by the base cycle.
        d = decode(word);
    }
    lastWord_ = word;

    if (trace_)
        trace_(pc, d);
    Addr next_pc = pc + 4;
    bool redirect = false;
    bool env_absorbed = false;

    auto rs1 = [&] { return regs_[d.rs1]; };
    auto rs2 = [&] { return regs_[d.rs2]; };
    auto wr = [&](std::uint64_t v) {
        if (d.rd != 0)
            regs_[d.rd] = v;
    };

    // Data access helper: translate + access, with fault handling.
    bool trapped = false;
    auto dataAddr = [&](MemAccess acc, Addr vaddr) -> Addr {
        Cycles lat = 0;
        TranslateResult r = translate(vaddr, acc, lat);
        total += lat;
        if (r.fault) {
            takeTrap(r.cause, vaddr);
            trapped = true;
            return 0;
        }
        return r.paddr;
    };

    switch (d.op) {
      case Op::kLui:
        wr(static_cast<std::uint64_t>(d.imm));
        break;
      case Op::kAuipc:
        wr(pc + static_cast<std::uint64_t>(d.imm));
        break;
      case Op::kJal:
        wr(pc + 4);
        next_pc = pc + static_cast<std::uint64_t>(d.imm);
        break;
      case Op::kJalr: {
          Addr target = (rs1() + static_cast<std::uint64_t>(d.imm)) & ~1ULL;
          wr(pc + 4);
          next_pc = target;
          total += cfg_.jalrPenalty;
          break;
      }
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu: {
          bool taken = false;
          switch (d.op) {
            case Op::kBeq: taken = rs1() == rs2(); break;
            case Op::kBne: taken = rs1() != rs2(); break;
            case Op::kBlt: taken = asSigned(rs1()) < asSigned(rs2()); break;
            case Op::kBge: taken = asSigned(rs1()) >= asSigned(rs2()); break;
            case Op::kBltu: taken = rs1() < rs2(); break;
            case Op::kBgeu: taken = rs1() >= rs2(); break;
            default: break;
          }
          bool predicted = predictTaken(pc);
          if (predicted != taken) {
              total += cfg_.mispredictPenalty;
              if (stats_)
                  stats_->counter("core.mispredicts").increment();
          }
          trainBht(pc, taken);
          if (stats_)
              stats_->counter("core.branches").increment();
          if (taken)
              next_pc = pc + static_cast<std::uint64_t>(d.imm);
          break;
      }
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
      case Op::kLbu: case Op::kLhu: case Op::kLwu: {
          Addr va = rs1() + static_cast<std::uint64_t>(d.imm);
          Addr pa = dataAddr(MemAccess::kLoad, va);
          if (trapped)
              break;
          std::uint32_t bytes = 1;
          if (d.op == Op::kLh || d.op == Op::kLhu)
              bytes = 2;
          else if (d.op == Op::kLw || d.op == Op::kLwu)
              bytes = 4;
          else if (d.op == Op::kLd)
              bytes = 8;
          // Data fast path (dataFastPath knob): aligned untranslated
          // scalar loads may short-circuit the full memory-system walk
          // when the port can prove an L1D hit. loadFastHit replicates
          // the hit path's timing and side effects exactly, so taking
          // it is observably invisible; a false return changed nothing
          // and the full load() runs as before. Translated accesses
          // stay slow, like the decode fast path.
          Cycles lat = 0;
          std::uint64_t v = 0;
          if (!(cfg_.dataFastPath && !translationActive() &&
                (pa & (bytes - 1)) == 0 &&
                port_.loadFastHit(pa, bytes, cycles_, lat, v)))
              v = port_.load(pa, bytes, cycles_, lat);
          total += lat;
          switch (d.op) {
            case Op::kLb:
              v = static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(static_cast<std::int8_t>(v)));
              break;
            case Op::kLh:
              v = static_cast<std::uint64_t>(
                  static_cast<std::int64_t>(static_cast<std::int16_t>(v)));
              break;
            case Op::kLw:
              v = sext32(v);
              break;
            default:
              break;
          }
          wr(v);
          break;
      }
      case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd: {
          Addr va = rs1() + static_cast<std::uint64_t>(d.imm);
          Addr pa = dataAddr(MemAccess::kStore, va);
          if (trapped)
              break;
          std::uint32_t bytes = 1;
          if (d.op == Op::kSh)
              bytes = 2;
          else if (d.op == Op::kSw)
              bytes = 4;
          else if (d.op == Op::kSd)
              bytes = 8;
          // Same contract as the load fast path: a true return already
          // performed the full store (timing, stats and data); false
          // changed nothing, not even backing memory.
          Cycles lat = 0;
          if (!(cfg_.dataFastPath && !translationActive() &&
                (pa & (bytes - 1)) == 0 &&
                port_.storeFastHit(pa, bytes, rs2(), cycles_, lat)))
              port_.store(pa, bytes, rs2(), cycles_, lat);
          total += lat;
          hasReservation_ = false;
          break;
      }
      case Op::kAddi: wr(rs1() + static_cast<std::uint64_t>(d.imm)); break;
      case Op::kSlti:
        wr(asSigned(rs1()) < d.imm ? 1 : 0);
        break;
      case Op::kSltiu:
        wr(rs1() < static_cast<std::uint64_t>(d.imm) ? 1 : 0);
        break;
      case Op::kXori: wr(rs1() ^ static_cast<std::uint64_t>(d.imm)); break;
      case Op::kOri: wr(rs1() | static_cast<std::uint64_t>(d.imm)); break;
      case Op::kAndi: wr(rs1() & static_cast<std::uint64_t>(d.imm)); break;
      case Op::kSlli: wr(rs1() << d.imm); break;
      case Op::kSrli: wr(rs1() >> d.imm); break;
      case Op::kSrai:
        wr(static_cast<std::uint64_t>(asSigned(rs1()) >> d.imm));
        break;
      case Op::kAdd: wr(rs1() + rs2()); break;
      case Op::kSub: wr(rs1() - rs2()); break;
      case Op::kSll: wr(rs1() << (rs2() & 63)); break;
      case Op::kSlt: wr(asSigned(rs1()) < asSigned(rs2()) ? 1 : 0); break;
      case Op::kSltu: wr(rs1() < rs2() ? 1 : 0); break;
      case Op::kXor: wr(rs1() ^ rs2()); break;
      case Op::kSrl: wr(rs1() >> (rs2() & 63)); break;
      case Op::kSra:
        wr(static_cast<std::uint64_t>(asSigned(rs1()) >> (rs2() & 63)));
        break;
      case Op::kOr: wr(rs1() | rs2()); break;
      case Op::kAnd: wr(rs1() & rs2()); break;
      case Op::kAddiw:
        wr(sext32(rs1() + static_cast<std::uint64_t>(d.imm)));
        break;
      case Op::kSlliw: wr(sext32(rs1() << d.imm)); break;
      case Op::kSrliw:
        wr(sext32(static_cast<std::uint32_t>(rs1()) >> d.imm));
        break;
      case Op::kSraiw:
        wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1()) >> d.imm)));
        break;
      case Op::kAddw: wr(sext32(rs1() + rs2())); break;
      case Op::kSubw: wr(sext32(rs1() - rs2())); break;
      case Op::kSllw: wr(sext32(rs1() << (rs2() & 31))); break;
      case Op::kSrlw:
        wr(sext32(static_cast<std::uint32_t>(rs1()) >> (rs2() & 31)));
        break;
      case Op::kSraw:
        wr(static_cast<std::uint64_t>(static_cast<std::int64_t>(
            static_cast<std::int32_t>(rs1()) >> (rs2() & 31))));
        break;
      case Op::kMul:
        wr(rs1() * rs2());
        total += cfg_.mulLatency - 1;
        break;
      case Op::kMulh: {
          auto a = static_cast<__int128>(asSigned(rs1()));
          auto b = static_cast<__int128>(asSigned(rs2()));
          std::uint64_t hi = static_cast<std::uint64_t>((a * b) >> 64);
          if (mutation_ == CoreTestMutation::kMulhCorrupt)
              hi ^= 0x4000000000000000ULL;
          wr(hi);
          total += cfg_.mulLatency - 1;
          break;
      }
      case Op::kMulhsu: {
          auto a = static_cast<__int128>(asSigned(rs1()));
          auto b = static_cast<__int128>(
              static_cast<unsigned __int128>(rs2()));
          wr(static_cast<std::uint64_t>((a * b) >> 64));
          total += cfg_.mulLatency - 1;
          break;
      }
      case Op::kMulhu: {
          auto a = static_cast<unsigned __int128>(rs1());
          auto b = static_cast<unsigned __int128>(rs2());
          wr(static_cast<std::uint64_t>((a * b) >> 64));
          total += cfg_.mulLatency - 1;
          break;
      }
      case Op::kDiv: {
          std::int64_t a = asSigned(rs1());
          std::int64_t b = asSigned(rs2());
          if (b == 0)
              wr(~0ULL);
          else if (a == INT64_MIN && b == -1)
              wr(static_cast<std::uint64_t>(a));
          else
              wr(static_cast<std::uint64_t>(a / b));
          total += cfg_.divLatency - 1;
          break;
      }
      case Op::kDivu:
        wr(rs2() == 0 ? ~0ULL : rs1() / rs2());
        total += cfg_.divLatency - 1;
        break;
      case Op::kRem: {
          std::int64_t a = asSigned(rs1());
          std::int64_t b = asSigned(rs2());
          if (b == 0)
              wr(static_cast<std::uint64_t>(a));
          else if (a == INT64_MIN && b == -1)
              wr(0);
          else
              wr(static_cast<std::uint64_t>(a % b));
          total += cfg_.divLatency - 1;
          break;
      }
      case Op::kRemu:
        wr(rs2() == 0 ? rs1() : rs1() % rs2());
        total += cfg_.divLatency - 1;
        break;
      case Op::kMulw:
        wr(sext32(rs1() * rs2()));
        total += cfg_.mulLatency - 1;
        break;
      case Op::kDivw: {
          auto a = static_cast<std::int32_t>(rs1());
          auto b = static_cast<std::int32_t>(rs2());
          if (b == 0)
              wr(~0ULL);
          else if (a == INT32_MIN && b == -1)
              wr(sext32(static_cast<std::uint32_t>(a)));
          else
              wr(sext32(static_cast<std::uint32_t>(a / b)));
          total += cfg_.divLatency - 1;
          break;
      }
      case Op::kDivuw: {
          auto a = static_cast<std::uint32_t>(rs1());
          auto b = static_cast<std::uint32_t>(rs2());
          wr(b == 0 ? ~0ULL : sext32(a / b));
          total += cfg_.divLatency - 1;
          break;
      }
      case Op::kRemw: {
          auto a = static_cast<std::int32_t>(rs1());
          auto b = static_cast<std::int32_t>(rs2());
          if (b == 0)
              wr(sext32(static_cast<std::uint32_t>(a)));
          else if (a == INT32_MIN && b == -1)
              wr(0);
          else
              wr(sext32(static_cast<std::uint32_t>(a % b)));
          total += cfg_.divLatency - 1;
          break;
      }
      case Op::kRemuw: {
          auto a = static_cast<std::uint32_t>(rs1());
          auto b = static_cast<std::uint32_t>(rs2());
          wr(b == 0 ? sext32(a) : sext32(a % b));
          total += cfg_.divLatency - 1;
          break;
      }
      case Op::kFence:
      case Op::kFenceI:
      case Op::kSfenceVma:
        if (d.op == Op::kSfenceVma)
            tlbFlush();
        // FENCE.I is the architectural store->fetch synchronization
        // point; SFENCE.VMA retires mapping changes. Both drop every
        // memoized decode (plain FENCE does not order fetches).
        if (d.op != Op::kFence)
            flushDecodeCache();
        break;
      case Op::kEcall: {
          if (ecall_ && ecall_(*this)) {
              env_absorbed = true;
              break;
          }
          std::uint64_t cause = priv_ == 3 ? kCauseEcallM
                                           : kCauseEcallU + priv_;
          takeTrap(cause, 0);
          redirect = true;
          break;
      }
      case Op::kEbreak:
        // Leave pc at the ebreak; run() reports it to the caller.
        lastStall_ = Stall::kEbreak;
        cycles_ += total;
        return total;
      case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci: {
          std::uint64_t old = readCsr(d.csr);
          std::uint64_t src =
              (d.op == Op::kCsrrwi || d.op == Op::kCsrrsi ||
               d.op == Op::kCsrrci)
                  ? static_cast<std::uint64_t>(d.imm)
                  : rs1();
          std::uint64_t next = old;
          if (d.op == Op::kCsrrw || d.op == Op::kCsrrwi)
              next = src;
          else if (d.op == Op::kCsrrs || d.op == Op::kCsrrsi)
              next = old | src;
          else
              next = old & ~src;
          if (next != old)
              writeCsr(d.csr, next);
          wr(old);
          break;
      }
      case Op::kMret:
      case Op::kSret: {
          // Return to the saved privilege; sret is treated as mret since
          // all traps are taken in M mode in this model.
          unsigned mpp =
              static_cast<unsigned>((mstatus_ >> kMstatusMppShift) & 3);
          if (mstatus_ & kMstatusMpie)
              mstatus_ |= kMstatusMie;
          else
              mstatus_ &= ~kMstatusMie;
          mstatus_ |= kMstatusMpie;
          mstatus_ &= ~(3ULL << kMstatusMppShift);
          priv_ = mpp;
          next_pc = mepc_;
          break;
      }
      case Op::kWfi:
        if (!(mip_ & mie_)) {
            // Stall: report the wait to run() without retiring.
            lastStall_ = Stall::kWfi;
            cycles_ += total;
            return total;
        }
        break;
      case Op::kLrW: case Op::kLrD: {
          Addr pa = dataAddr(MemAccess::kLoad, rs1());
          if (trapped)
              break;
          std::uint32_t bytes = d.op == Op::kLrW ? 4 : 8;
          Cycles lat = 0;
          std::uint64_t v = port_.load(pa, bytes, cycles_, lat);
          total += lat;
          if (d.op == Op::kLrW)
              v = sext32(v);
          wr(v);
          hasReservation_ = true;
          reservation_ = lineAlign(pa);
          break;
      }
      case Op::kScW: case Op::kScD: {
          Addr pa = dataAddr(MemAccess::kStore, rs1());
          if (trapped)
              break;
          std::uint32_t bytes = d.op == Op::kScW ? 4 : 8;
          if (hasReservation_ && reservation_ == lineAlign(pa)) {
              Cycles lat = 0;
              port_.store(pa, bytes, rs2(), cycles_, lat);
              total += lat;
              wr(0);
          } else {
              wr(1);
          }
          hasReservation_ = false;
          break;
      }
      default: {
          if (d.isAmo()) {
              Addr pa = dataAddr(MemAccess::kStore, rs1());
              if (trapped)
                  break;
              bool is64 = d.op >= Op::kAmoSwapD;
              std::uint32_t bytes = is64 ? 8 : 4;
              // Word AMOs operate on 32-bit values: both operands are
              // sign-extended so the min/max comparisons preserve the
              // 32-bit order regardless of rs2's upper bits.
              std::uint64_t src = is64 ? rs2() : sext32(rs2());
              Cycles lat = 0;
              std::uint64_t old = port_.atomic(
                  pa, bytes,
                  [&](std::uint64_t mem) -> std::uint64_t {
                      std::uint64_t a = is64 ? mem : sext32(mem);
                      switch (d.op) {
                        case Op::kAmoSwapW: case Op::kAmoSwapD:
                          return src;
                        case Op::kAmoAddW: case Op::kAmoAddD:
                          return a + src;
                        case Op::kAmoXorW: case Op::kAmoXorD:
                          return a ^ src;
                        case Op::kAmoAndW: case Op::kAmoAndD:
                          return a & src;
                        case Op::kAmoOrW: case Op::kAmoOrD:
                          return a | src;
                        case Op::kAmoMinW: case Op::kAmoMinD:
                          return asSigned(a) < asSigned(src) ? a : src;
                        case Op::kAmoMaxW: case Op::kAmoMaxD:
                          return asSigned(a) > asSigned(src) ? a : src;
                        case Op::kAmoMinuW: case Op::kAmoMinuD:
                          return a < src ? a : src;
                        case Op::kAmoMaxuW: case Op::kAmoMaxuD:
                          return a > src ? a : src;
                        default:
                          return a;
                      }
                  },
                  cycles_, lat);
              total += lat;
              wr(is64 ? old : sext32(old));
              hasReservation_ = false;
              break;
          }
          takeTrap(kCauseIllegalInst, word);
          redirect = true;
          break;
      }
    }

    if (!redirect && !trapped)
        pc_ = next_pc;
    ++instret_;
    cycles_ += total;
    if (stats_)
        stats_->counter("core.instret").increment();
    if (tracer_) {
        obs::TraceEvent ev = obs::event(obs::EventKind::kCoreCommit);
        ev.cycle = cycles_ - total;
        ev.duration = static_cast<std::uint32_t>(total);
        ev.arg = pc;
        ev.node = traceNode_;
        ev.tile = static_cast<std::uint16_t>(cfg_.hartId);
        tracer_->record(ev);
        if (total >= traceStallCycles_) {
            ev.kind = static_cast<std::uint8_t>(obs::EventKind::kCoreStall);
            tracer_->record(ev);
        }
    }
    if (commit_) {
        CommitRecord rec;
        rec.pc = pc;
        rec.word = word;
        rec.inst = &d;
        rec.trapped = redirect || trapped;
        rec.envAbsorbed = env_absorbed;
        commit_(*this, rec);
    }
    return total;
}

void
RvCore::setTestMutation(CoreTestMutation m)
{
    mutation_ = m;
    decodeCache_.setIgnoreStaleStamps(m == CoreTestMutation::kStaleDecode);
}

void
RvCore::saveState(snap::Writer &w) const
{
    for (std::uint64_t reg : regs_)
        w.u64(reg);
    w.u64(pc_);
    w.u64(cycles_);
    w.u64(instret_);
    w.u32(priv_);

    w.u64(mstatus_);
    w.u64(mie_);
    w.u64(mip_);
    w.u64(mtvec_);
    w.u64(mepc_);
    w.u64(mcause_);
    w.u64(mtval_);
    w.u64(mscratch_);
    w.u64(satp_);

    w.boolean(hasReservation_);
    w.u64(reservation_);

    w.u64(bht_.size());
    w.bytes(bht_.data(), bht_.size());

    auto save_tlb = [&w](const std::vector<TlbEntry> &tlb) {
        w.u64(tlb.size());
        for (const TlbEntry &e : tlb) {
            w.u64(e.vpn);
            w.u64(e.pageBase);
            w.u64(e.pageSize);
            w.u8(e.perms);
            w.boolean(e.valid);
            w.u64(e.lastUse);
        }
    };
    save_tlb(itlb_);
    save_tlb(dtlb_);
    w.u64(tlbClock_);

    w.boolean(exited_);
    w.u64(static_cast<std::uint64_t>(exitCode_));
    w.u32(lastWord_);
    w.u8(static_cast<std::uint8_t>(lastStall_));
}

void
RvCore::restoreState(snap::Reader &r)
{
    for (std::uint64_t &reg : regs_)
        reg = r.u64();
    pc_ = r.u64();
    cycles_ = r.u64();
    instret_ = r.u64();
    priv_ = r.u32();

    mstatus_ = r.u64();
    mie_ = r.u64();
    mip_ = r.u64();
    mtvec_ = r.u64();
    mepc_ = r.u64();
    mcause_ = r.u64();
    mtval_ = r.u64();
    mscratch_ = r.u64();
    satp_ = r.u64();

    hasReservation_ = r.boolean();
    reservation_ = r.u64();

    std::uint64_t bht_size = r.u64();
    fatalIf(bht_size != bht_.size(),
            strfmt("checkpoint BHT has %llu entries, core expects %llu",
                   static_cast<unsigned long long>(bht_size),
                   static_cast<unsigned long long>(bht_.size())));
    r.bytes(bht_.data(), bht_.size());

    auto restore_tlb = [&r](std::vector<TlbEntry> &tlb) {
        std::uint64_t size = r.u64();
        fatalIf(size != tlb.size(),
                strfmt("checkpoint TLB has %llu entries, core expects %llu",
                       static_cast<unsigned long long>(size),
                       static_cast<unsigned long long>(tlb.size())));
        for (TlbEntry &e : tlb) {
            e.vpn = r.u64();
            e.pageBase = r.u64();
            e.pageSize = r.u64();
            e.perms = r.u8();
            e.valid = r.boolean();
            e.lastUse = r.u64();
        }
    };
    restore_tlb(itlb_);
    restore_tlb(dtlb_);
    tlbClock_ = r.u64();

    exited_ = r.boolean();
    exitCode_ = static_cast<std::int64_t>(r.u64());
    lastWord_ = r.u32();
    lastStall_ = static_cast<Stall>(r.u8());

    // The restored memory image may differ arbitrarily from the one the
    // memoized decodes were taken against.
    flushDecodeCache();
}

} // namespace smappic::riscv
