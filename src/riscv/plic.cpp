#include "riscv/plic.hpp"

#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::riscv
{

PlicController::PlicController(std::uint32_t sources, std::uint32_t harts)
{
    fatalIf(sources == 0 || sources > 63,
            "PLIC supports 1..63 sources (source 0 is reserved)");
    fatalIf(harts == 0, "PLIC needs at least one hart context");
    priority_.assign(sources + 1, 0);
    level_.assign(sources + 1, false);
    pending_.assign(sources + 1, false);
    inService_.assign(sources + 1, false);
    enable_.assign(harts, 0);
    threshold_.assign(harts, 0);
    wireLevel_.assign(harts, false);
}

void
PlicController::setSourceLevel(std::uint32_t src, bool level)
{
    panicIf(src == 0 || src >= level_.size(),
            "PLIC source index out of range");
    bool was = level_[src];
    level_[src] = level;
    // Level-triggered gateway: a rising edge latches pending unless the
    // source is still in service.
    if (!was && level && !inService_[src])
        pending_[src] = true;
    evaluate();
}

std::uint32_t
PlicController::bestPending(std::uint32_t hart) const
{
    // Highest-priority enabled pending source above the hart's
    // threshold; ties break toward the lowest source id (spec behavior).
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < pending_.size(); ++s) {
        if (!pending_[s] || inService_[s])
            continue;
        if (!(enable_.at(hart) & (1ULL << s)))
            continue;
        if (priority_[s] <= threshold_.at(hart))
            continue;
        if (best == 0 || priority_[s] > priority_[best])
            best = s;
    }
    return best;
}

std::uint32_t
PlicController::claim(std::uint32_t hart)
{
    std::uint32_t src = bestPending(hart);
    if (src != 0) {
        pending_[src] = false;
        inService_[src] = true;
    }
    evaluate();
    return src;
}

void
PlicController::complete(std::uint32_t hart, std::uint32_t src)
{
    (void)hart;
    if (src == 0 || src >= inService_.size())
        return;
    inService_[src] = false;
    // Still-asserted level re-latches immediately (level triggered).
    if (level_[src])
        pending_[src] = true;
    evaluate();
}

void
PlicController::evaluate()
{
    for (std::uint32_t h = 0; h < harts(); ++h) {
        bool level = bestPending(h) != 0;
        if (level != wireLevel_[h]) {
            wireLevel_[h] = level;
            if (wireFn_)
                wireFn_(h, level);
        }
    }
}

std::uint32_t
PlicController::read(Addr offset, std::uint32_t hart_hint)
{
    if (offset >= kPlicPriorityBase &&
        offset < kPlicPriorityBase + 4 * (sources() + 1)) {
        return priority_[offset / 4];
    }
    if (offset >= kPlicPendingBase && offset < kPlicPendingBase + 8) {
        std::uint32_t word = static_cast<std::uint32_t>(
            (offset - kPlicPendingBase) / 4);
        std::uint32_t bits = 0;
        for (std::uint32_t s = word * 32; s < (word + 1) * 32 &&
                                          s < pending_.size();
             ++s) {
            if (pending_[s])
                bits |= 1u << (s % 32);
        }
        return bits;
    }
    if (offset >= kPlicEnableBase &&
        offset < kPlicEnableBase + kPlicEnableStride * harts()) {
        auto hart = static_cast<std::uint32_t>(
            (offset - kPlicEnableBase) / kPlicEnableStride);
        std::uint32_t word = ((offset - kPlicEnableBase) %
                              kPlicEnableStride) / 4;
        return static_cast<std::uint32_t>(enable_[hart] >> (32 * word));
    }
    if (offset >= kPlicContextBase) {
        auto hart = static_cast<std::uint32_t>(
            (offset - kPlicContextBase) / kPlicContextStride);
        if (hart >= harts())
            return 0;
        Addr reg = (offset - kPlicContextBase) % kPlicContextStride;
        if (reg == 0)
            return threshold_[hart];
        if (reg == 4)
            return claim(hart);
    }
    (void)hart_hint;
    return 0;
}

void
PlicController::write(Addr offset, std::uint32_t value)
{
    if (offset >= kPlicPriorityBase &&
        offset < kPlicPriorityBase + 4 * (sources() + 1)) {
        std::uint32_t src = static_cast<std::uint32_t>(offset / 4);
        if (src != 0)
            priority_[src] = value;
        evaluate();
        return;
    }
    if (offset >= kPlicEnableBase &&
        offset < kPlicEnableBase + kPlicEnableStride * harts()) {
        auto hart = static_cast<std::uint32_t>(
            (offset - kPlicEnableBase) / kPlicEnableStride);
        std::uint32_t word = ((offset - kPlicEnableBase) %
                              kPlicEnableStride) / 4;
        std::uint64_t mask = 0xffffffffULL << (32 * word);
        enable_[hart] = (enable_[hart] & ~mask) |
                        (static_cast<std::uint64_t>(value) << (32 * word));
        enable_[hart] &= ~1ULL; // Source 0 cannot be enabled.
        evaluate();
        return;
    }
    if (offset >= kPlicContextBase) {
        auto hart = static_cast<std::uint32_t>(
            (offset - kPlicContextBase) / kPlicContextStride);
        if (hart >= harts())
            return;
        Addr reg = (offset - kPlicContextBase) % kPlicContextStride;
        if (reg == 0) {
            threshold_[hart] = value;
            evaluate();
        } else if (reg == 4) {
            complete(hart, value);
        }
    }
}

namespace
{

void
saveBoolVec(snap::Writer &w, const std::vector<bool> &v)
{
    w.u64(v.size());
    for (bool b : v)
        w.boolean(b);
}

void
restoreBoolVec(snap::Reader &r, std::vector<bool> &v)
{
    std::uint64_t size = r.u64();
    fatalIf(size != v.size(), "checkpoint PLIC vector size mismatch");
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = r.boolean();
}

} // namespace

void
PlicController::saveState(snap::Writer &w) const
{
    w.u64(priority_.size());
    for (std::uint32_t p : priority_)
        w.u32(p);
    saveBoolVec(w, level_);
    saveBoolVec(w, pending_);
    saveBoolVec(w, inService_);
    w.u64(enable_.size());
    for (std::uint64_t e : enable_)
        w.u64(e);
    w.u64(threshold_.size());
    for (std::uint32_t t : threshold_)
        w.u32(t);
    saveBoolVec(w, wireLevel_);
}

void
PlicController::restoreState(snap::Reader &r)
{
    std::uint64_t sources = r.u64();
    fatalIf(
        sources != priority_.size(),
        strfmt("checkpoint PLIC has %llu sources, controller expects %llu",
               static_cast<unsigned long long>(sources),
               static_cast<unsigned long long>(priority_.size())));
    for (std::uint32_t &p : priority_)
        p = r.u32();
    restoreBoolVec(r, level_);
    restoreBoolVec(r, pending_);
    restoreBoolVec(r, inService_);
    std::uint64_t harts = r.u64();
    fatalIf(harts != enable_.size(),
            strfmt("checkpoint PLIC has %llu harts, controller expects %llu",
                   static_cast<unsigned long long>(harts),
                   static_cast<unsigned long long>(enable_.size())));
    for (std::uint64_t &e : enable_)
        e = r.u64();
    std::uint64_t thresholds = r.u64();
    fatalIf(thresholds != threshold_.size(),
            "checkpoint PLIC threshold count mismatch");
    for (std::uint32_t &t : threshold_)
        t = r.u32();
    restoreBoolVec(r, wireLevel_);
}

} // namespace smappic::riscv
