#include "riscv/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "sim/log.hpp"

namespace smappic::riscv
{

Addr
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    fatalIf(it == symbols.end(), "undefined symbol: " + name);
    return it->second;
}

namespace
{

/** Parse-time context shared by both passes. */
struct Context
{
    std::map<std::string, Addr> symbols;
    int line = 0;

    [[noreturn]] void
    error(const std::string &msg) const
    {
        fatal(strfmt("asm line %d: %s", line, msg.c_str()));
    }
};

int
regNumber(const std::string &name, const Context &ctx)
{
    static const std::map<std::string, int> kAbi = {
        {"zero", 0}, {"ra", 1},  {"sp", 2},  {"gp", 3},  {"tp", 4},
        {"t0", 5},   {"t1", 6},  {"t2", 7},  {"s0", 8},  {"fp", 8},
        {"s1", 9},   {"a0", 10}, {"a1", 11}, {"a2", 12}, {"a3", 13},
        {"a4", 14},  {"a5", 15}, {"a6", 16}, {"a7", 17}, {"s2", 18},
        {"s3", 19},  {"s4", 20}, {"s5", 21}, {"s6", 22}, {"s7", 23},
        {"s8", 24},  {"s9", 25}, {"s10", 26}, {"s11", 27}, {"t3", 28},
        {"t4", 29},  {"t5", 30}, {"t6", 31},
    };
    auto it = kAbi.find(name);
    if (it != kAbi.end())
        return it->second;
    if (name.size() >= 2 && name[0] == 'x') {
        int n = 0;
        for (std::size_t i = 1; i < name.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(name[i])))
                ctx.error("bad register name: " + name);
            n = n * 10 + (name[i] - '0');
        }
        if (n < 32)
            return n;
    }
    ctx.error("bad register name: " + name);
}

bool
looksLikeNumber(const std::string &tok)
{
    if (tok.empty())
        return false;
    std::size_t i = (tok[0] == '-' || tok[0] == '+') ? 1 : 0;
    return i < tok.size() && std::isdigit(static_cast<unsigned char>(tok[i]));
}

std::int64_t
parseNumber(const std::string &tok, const Context &ctx)
{
    try {
        std::size_t pos = 0;
        long long v = std::stoll(tok, &pos, 0);
        if (pos != tok.size())
            ctx.error("bad number: " + tok);
        return v;
    } catch (const std::out_of_range &) {
        // Large unsigned constants (e.g. 0xdeadbeefcafebabe) wrap to the
        // same 64-bit pattern.
        try {
            std::size_t pos = 0;
            unsigned long long v = std::stoull(tok, &pos, 0);
            if (pos != tok.size())
                ctx.error("bad number: " + tok);
            return static_cast<std::int64_t>(v);
        } catch (const std::exception &) {
            ctx.error("bad number: " + tok);
        }
    } catch (const std::exception &) {
        ctx.error("bad number: " + tok);
    }
}

/** Immediate: numeric literal or a (defined-by-pass-2) symbol. */
std::int64_t
parseImm(const std::string &tok, const Context &ctx, bool resolve)
{
    if (looksLikeNumber(tok))
        return parseNumber(tok, ctx);
    if (!resolve)
        return 0;
    auto it = ctx.symbols.find(tok);
    if (it == ctx.symbols.end())
        ctx.error("undefined symbol: " + tok);
    return static_cast<std::int64_t>(it->second);
}

// --- encoders ---

std::uint32_t
encR(std::uint32_t opcode, int rd, std::uint32_t f3, int rs1, int rs2,
     std::uint32_t f7)
{
    return opcode | (static_cast<std::uint32_t>(rd) << 7) | (f3 << 12) |
           (static_cast<std::uint32_t>(rs1) << 15) |
           (static_cast<std::uint32_t>(rs2) << 20) | (f7 << 25);
}

std::uint32_t
encI(std::uint32_t opcode, int rd, std::uint32_t f3, int rs1,
     std::int64_t imm, const Context &ctx)
{
    if (imm < -2048 || imm > 2047)
        ctx.error(strfmt("I-immediate out of range: %lld",
                         static_cast<long long>(imm)));
    return opcode | (static_cast<std::uint32_t>(rd) << 7) | (f3 << 12) |
           (static_cast<std::uint32_t>(rs1) << 15) |
           (static_cast<std::uint32_t>(imm & 0xfff) << 20);
}

std::uint32_t
encS(std::uint32_t opcode, std::uint32_t f3, int rs1, int rs2,
     std::int64_t imm, const Context &ctx)
{
    if (imm < -2048 || imm > 2047)
        ctx.error("S-immediate out of range");
    auto u = static_cast<std::uint32_t>(imm & 0xfff);
    return opcode | ((u & 0x1f) << 7) | (f3 << 12) |
           (static_cast<std::uint32_t>(rs1) << 15) |
           (static_cast<std::uint32_t>(rs2) << 20) | ((u >> 5) << 25);
}

std::uint32_t
encB(std::uint32_t opcode, std::uint32_t f3, int rs1, int rs2,
     std::int64_t off, const Context &ctx)
{
    if (off < -4096 || off > 4095 || (off & 1))
        ctx.error("branch target out of range");
    auto u = static_cast<std::uint32_t>(off & 0x1fff);
    std::uint32_t w = opcode | (f3 << 12) |
                      (static_cast<std::uint32_t>(rs1) << 15) |
                      (static_cast<std::uint32_t>(rs2) << 20);
    w |= ((u >> 11) & 1) << 7;
    w |= ((u >> 1) & 0xf) << 8;
    w |= ((u >> 5) & 0x3f) << 25;
    w |= ((u >> 12) & 1) << 31;
    return w;
}

std::uint32_t
encU(std::uint32_t opcode, int rd, std::int64_t imm)
{
    return opcode | (static_cast<std::uint32_t>(rd) << 7) |
           (static_cast<std::uint32_t>(imm) & 0xfffff000u);
}

std::uint32_t
encJ(std::uint32_t opcode, int rd, std::int64_t off, const Context &ctx)
{
    if (off < -(1 << 20) || off >= (1 << 20) || (off & 1))
        ctx.error("jump target out of range");
    auto u = static_cast<std::uint32_t>(off & 0x1fffff);
    std::uint32_t w = opcode | (static_cast<std::uint32_t>(rd) << 7);
    w |= ((u >> 12) & 0xff) << 12;
    w |= ((u >> 11) & 1) << 20;
    w |= ((u >> 1) & 0x3ff) << 21;
    w |= ((u >> 20) & 1) << 31;
    return w;
}

/** Emits the canonical li expansion for an arbitrary 64-bit constant. */
void
emitLi(std::vector<std::uint32_t> &out, int rd, std::int64_t value,
       const Context &ctx)
{
    if (value >= -2048 && value <= 2047) {
        out.push_back(encI(0x13, rd, 0, 0, value, ctx)); // addi rd, x0, v
        return;
    }
    if (value >= INT32_MIN && value <= INT32_MAX) {
        std::int64_t hi = (value + 0x800) & ~0xfffLL;
        std::int64_t lo = value - hi;
        out.push_back(encU(0x37, rd, hi)); // lui
        if (lo != 0)
            out.push_back(encI(0x1b, rd, 0, rd, lo, ctx)); // addiw
        return;
    }
    // General 64-bit constant: build the upper 32 bits, shift, then OR in
    // the lower bits 11 at a time.
    std::int64_t high = value >> 32;
    std::uint64_t low = static_cast<std::uint64_t>(value) & 0xffffffffULL;
    emitLi(out, rd, high, ctx);
    out.push_back(encI(0x13, rd, 1, rd, 11, ctx)); // slli rd, rd, 11
    out.push_back(encI(0x13, rd, 6, rd,
                       static_cast<std::int64_t>((low >> 21) & 0x7ff),
                       ctx)); // ori
    out.push_back(encI(0x13, rd, 1, rd, 11, ctx));
    out.push_back(encI(0x13, rd, 6, rd,
                       static_cast<std::int64_t>((low >> 10) & 0x7ff),
                       ctx));
    out.push_back(encI(0x13, rd, 1, rd, 10, ctx));
    out.push_back(encI(0x13, rd, 6, rd,
                       static_cast<std::int64_t>(low & 0x3ff), ctx));
}

/** Number of instructions emitLi will produce (needed in pass 1). */
std::size_t
liLength(std::int64_t value)
{
    if (value >= -2048 && value <= 2047)
        return 1;
    if (value >= INT32_MIN && value <= INT32_MAX) {
        std::int64_t hi = (value + 0x800) & ~0xfffLL;
        return (value - hi) != 0 ? 2 : 1;
    }
    return liLength(value >> 32) + 6;
}

/** Splits "lw a0, 8(sp)"-style memory operand into offset and base. */
void
parseMemOperand(const std::string &tok, std::string &off, std::string &base,
                const Context &ctx)
{
    auto open = tok.find('(');
    auto close = tok.find(')');
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        ctx.error("bad memory operand: " + tok);
    off = tok.substr(0, open);
    if (off.empty())
        off = "0";
    base = tok.substr(open + 1, close - open - 1);
}

/** Tokenized source line. */
struct Line
{
    std::string label;
    std::string op;
    std::vector<std::string> args;
    int number = 0;
};

std::vector<Line>
tokenize(const std::string &source)
{
    std::vector<Line> lines;
    std::istringstream in(source);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        // Strip comments (# and //), respecting string literals.
        std::string text;
        bool in_str = false;
        for (std::size_t i = 0; i < raw.size(); ++i) {
            char c = raw[i];
            if (c == '"' && (i == 0 || raw[i - 1] != '\\'))
                in_str = !in_str;
            if (!in_str) {
                if (c == '#')
                    break;
                if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/')
                    break;
            }
            text += c;
        }

        Line line;
        line.number = number;

        // Leading label(s).
        std::size_t pos = 0;
        auto skipWs = [&] {
            while (pos < text.size() &&
                   std::isspace(static_cast<unsigned char>(text[pos])))
                ++pos;
        };
        skipWs();
        std::size_t colon = text.find(':');
        if (colon != std::string::npos) {
            std::string candidate = text.substr(pos, colon - pos);
            bool is_label = !candidate.empty();
            for (char c : candidate) {
                if (!(std::isalnum(static_cast<unsigned char>(c)) ||
                      c == '_' || c == '.'))
                    is_label = false;
            }
            if (is_label) {
                line.label = candidate;
                pos = colon + 1;
                skipWs();
            }
        }

        // Mnemonic.
        std::size_t start = pos;
        while (pos < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
        line.op = text.substr(start, pos - start);
        skipWs();

        // Arguments: comma-separated, strings kept whole.
        std::string rest = text.substr(pos);
        if (!rest.empty() && line.op == ".asciiz") {
            line.args.push_back(rest);
        } else if (!rest.empty() && line.op == ".string") {
            line.args.push_back(rest);
        } else {
            std::string cur;
            for (char c : rest) {
                if (c == ',') {
                    line.args.push_back(cur);
                    cur.clear();
                } else {
                    cur += c;
                }
            }
            if (!cur.empty())
                line.args.push_back(cur);
            for (auto &a : line.args) {
                auto b = a.find_first_not_of(" \t");
                auto e = a.find_last_not_of(" \t");
                a = (b == std::string::npos) ? "" : a.substr(b, e - b + 1);
            }
            std::erase_if(line.args,
                          [](const std::string &a) { return a.empty(); });
        }

        if (!line.label.empty() || !line.op.empty())
            lines.push_back(std::move(line));
    }
    return lines;
}

std::vector<std::uint8_t>
parseStringLiteral(const std::string &tok, const Context &ctx)
{
    auto first = tok.find('"');
    auto last = tok.rfind('"');
    if (first == std::string::npos || last == first)
        ctx.error("bad string literal");
    std::vector<std::uint8_t> bytes;
    for (std::size_t i = first + 1; i < last; ++i) {
        char c = tok[i];
        if (c == '\\' && i + 1 < last) {
            ++i;
            switch (tok[i]) {
              case 'n': c = '\n'; break;
              case 't': c = '\t'; break;
              case 'r': c = '\r'; break;
              case '0': c = '\0'; break;
              case '\\': c = '\\'; break;
              case '"': c = '"'; break;
              default: ctx.error("bad escape in string");
            }
        }
        bytes.push_back(static_cast<std::uint8_t>(c));
    }
    bytes.push_back(0);
    return bytes;
}

/**
 * Expands one instruction line to machine words. `resolve` is false in
 * pass 1 (symbols unknown; only the count matters, which must not depend
 * on symbol values).
 */
void
encodeInstr(const Line &line, Addr pc, Context &ctx, bool resolve,
            std::vector<std::uint32_t> &out)
{
    const std::string &op = line.op;
    const auto &a = line.args;

    auto need = [&](std::size_t n) {
        if (a.size() != n)
            ctx.error(op + strfmt(": expected %zu operands, got %zu", n,
                                  a.size()));
    };
    auto reg = [&](std::size_t i) { return regNumber(a[i], ctx); };
    auto imm = [&](std::size_t i) { return parseImm(a[i], ctx, resolve); };
    auto relTarget = [&](std::size_t i) -> std::int64_t {
        if (!resolve)
            return 0;
        return static_cast<std::int64_t>(
                   static_cast<std::uint64_t>(parseImm(a[i], ctx, true))) -
               static_cast<std::int64_t>(pc);
    };

    // R-type table: op -> {f3, f7, opcode}.
    struct RSpec { std::uint32_t f3, f7, opcode; };
    static const std::map<std::string, RSpec> kRType = {
        {"add", {0, 0x00, 0x33}},  {"sub", {0, 0x20, 0x33}},
        {"sll", {1, 0x00, 0x33}},  {"slt", {2, 0x00, 0x33}},
        {"sltu", {3, 0x00, 0x33}}, {"xor", {4, 0x00, 0x33}},
        {"srl", {5, 0x00, 0x33}},  {"sra", {5, 0x20, 0x33}},
        {"or", {6, 0x00, 0x33}},   {"and", {7, 0x00, 0x33}},
        {"addw", {0, 0x00, 0x3b}}, {"subw", {0, 0x20, 0x3b}},
        {"sllw", {1, 0x00, 0x3b}}, {"srlw", {5, 0x00, 0x3b}},
        {"sraw", {5, 0x20, 0x3b}},
        {"mul", {0, 0x01, 0x33}},  {"mulh", {1, 0x01, 0x33}},
        {"mulhsu", {2, 0x01, 0x33}}, {"mulhu", {3, 0x01, 0x33}},
        {"div", {4, 0x01, 0x33}},  {"divu", {5, 0x01, 0x33}},
        {"rem", {6, 0x01, 0x33}},  {"remu", {7, 0x01, 0x33}},
        {"mulw", {0, 0x01, 0x3b}}, {"divw", {4, 0x01, 0x3b}},
        {"divuw", {5, 0x01, 0x3b}}, {"remw", {6, 0x01, 0x3b}},
        {"remuw", {7, 0x01, 0x3b}},
    };
    // I-type ALU ops.
    static const std::map<std::string, std::uint32_t> kIType = {
        {"addi", 0}, {"slti", 2}, {"sltiu", 3}, {"xori", 4},
        {"ori", 6},  {"andi", 7},
    };
    static const std::map<std::string, std::uint32_t> kLoads = {
        {"lb", 0}, {"lh", 1}, {"lw", 2}, {"ld", 3},
        {"lbu", 4}, {"lhu", 5}, {"lwu", 6},
    };
    static const std::map<std::string, std::uint32_t> kStores = {
        {"sb", 0}, {"sh", 1}, {"sw", 2}, {"sd", 3},
    };
    static const std::map<std::string, std::uint32_t> kBranches = {
        {"beq", 0}, {"bne", 1}, {"blt", 4}, {"bge", 5},
        {"bltu", 6}, {"bgeu", 7},
    };
    struct AmoSpec { std::uint32_t f5; };
    static const std::map<std::string, std::uint32_t> kAmo = {
        {"lr", 0x02},      {"sc", 0x03},      {"amoswap", 0x01},
        {"amoadd", 0x00},  {"amoxor", 0x04},  {"amoand", 0x0c},
        {"amoor", 0x08},   {"amomin", 0x10},  {"amomax", 0x14},
        {"amominu", 0x18}, {"amomaxu", 0x1c},
    };

    if (auto it = kRType.find(op); it != kRType.end()) {
        need(3);
        out.push_back(encR(it->second.opcode, reg(0), it->second.f3, reg(1),
                           reg(2), it->second.f7));
        return;
    }
    if (auto it = kIType.find(op); it != kIType.end()) {
        need(3);
        out.push_back(encI(0x13, reg(0), it->second, reg(1), imm(2), ctx));
        return;
    }
    if (op == "addiw") {
        need(3);
        out.push_back(encI(0x1b, reg(0), 0, reg(1), imm(2), ctx));
        return;
    }
    if (op == "slli" || op == "srli" || op == "srai") {
        need(3);
        std::int64_t sh = imm(2);
        if (sh < 0 || sh > 63)
            ctx.error("shift amount out of range");
        std::uint32_t f3 = op == "slli" ? 1 : 5;
        std::uint32_t top = op == "srai" ? 0x400 : 0;
        out.push_back(encI(0x13, reg(0), f3, reg(1),
                           static_cast<std::int64_t>(top | sh), ctx));
        return;
    }
    if (op == "slliw" || op == "srliw" || op == "sraiw") {
        need(3);
        std::int64_t sh = imm(2);
        if (sh < 0 || sh > 31)
            ctx.error("shift amount out of range");
        std::uint32_t f3 = op == "slliw" ? 1 : 5;
        std::uint32_t top = op == "sraiw" ? 0x400 : 0;
        out.push_back(encI(0x1b, reg(0), f3, reg(1),
                           static_cast<std::int64_t>(top | sh), ctx));
        return;
    }
    if (auto it = kLoads.find(op); it != kLoads.end()) {
        need(2);
        std::string off, base;
        parseMemOperand(a[1], off, base, ctx);
        out.push_back(encI(0x03, reg(0), it->second,
                           regNumber(base, ctx),
                           parseImm(off, ctx, resolve), ctx));
        return;
    }
    if (auto it = kStores.find(op); it != kStores.end()) {
        need(2);
        std::string off, base;
        parseMemOperand(a[1], off, base, ctx);
        out.push_back(encS(0x23, it->second, regNumber(base, ctx), reg(0),
                           parseImm(off, ctx, resolve), ctx));
        return;
    }
    if (auto it = kBranches.find(op); it != kBranches.end()) {
        need(3);
        out.push_back(encB(0x63, it->second, reg(0), reg(1), relTarget(2),
                           ctx));
        return;
    }
    if (op == "lui" || op == "auipc") {
        need(2);
        std::int64_t v = imm(1);
        if (v < 0 || v > 0xfffff)
            ctx.error("20-bit immediate out of range");
        out.push_back(encU(op == "lui" ? 0x37 : 0x17, reg(0), v << 12));
        return;
    }
    if (op == "jal") {
        if (a.size() == 1) {
            out.push_back(encJ(0x6f, 1, relTarget(0), ctx));
        } else {
            need(2);
            out.push_back(encJ(0x6f, reg(0), relTarget(1), ctx));
        }
        return;
    }
    if (op == "jalr") {
        if (a.size() == 1) {
            out.push_back(encI(0x67, 1, 0, reg(0), 0, ctx));
        } else {
            need(3);
            out.push_back(encI(0x67, reg(0), 0, reg(1), imm(2), ctx));
        }
        return;
    }
    // Size-suffixed atomics: lr.w, amoadd.d, ...
    if (auto dot = op.find('.');
        dot != std::string::npos && kAmo.count(op.substr(0, dot))) {
        std::string base_op = op.substr(0, dot);
        std::string suffix = op.substr(dot + 1);
        if (suffix != "w" && suffix != "d")
            ctx.error("bad atomic width: " + op);
        std::uint32_t f3 = suffix == "d" ? 3 : 2;
        std::uint32_t f5 = kAmo.at(base_op);
        if (base_op == "lr") {
            need(2);
            std::string off, base;
            parseMemOperand(a[1], off, base, ctx);
            out.push_back(encR(0x2f, reg(0), f3, regNumber(base, ctx), 0,
                               f5 << 2));
        } else {
            need(3);
            std::string off, base;
            parseMemOperand(a[2], off, base, ctx);
            out.push_back(encR(0x2f, reg(0), f3, regNumber(base, ctx),
                               reg(1), f5 << 2));
        }
        return;
    }
    // CSR instructions.
    if (op == "csrrw" || op == "csrrs" || op == "csrrc") {
        need(3);
        std::uint32_t f3 = op == "csrrw" ? 1 : (op == "csrrs" ? 2 : 3);
        std::int64_t csr = imm(1);
        out.push_back(
            encR(0x73, reg(0), f3, reg(2),
                 static_cast<int>(csr & 0x1f), 0) |
            (static_cast<std::uint32_t>(csr & 0xfff) << 20));
        return;
    }
    if (op == "csrrwi" || op == "csrrsi" || op == "csrrci") {
        need(3);
        std::uint32_t f3 = op == "csrrwi" ? 5 : (op == "csrrsi" ? 6 : 7);
        std::int64_t csr = imm(1);
        std::int64_t z = imm(2);
        std::uint32_t w = 0x73 | (static_cast<std::uint32_t>(reg(0)) << 7) |
                          (f3 << 12) |
                          (static_cast<std::uint32_t>(z & 0x1f) << 15) |
                          (static_cast<std::uint32_t>(csr & 0xfff) << 20);
        out.push_back(w);
        return;
    }
    // System / misc.
    if (op == "ecall") { out.push_back(0x00000073); return; }
    if (op == "ebreak") { out.push_back(0x00100073); return; }
    if (op == "mret") { out.push_back(0x30200073); return; }
    if (op == "sret") { out.push_back(0x10200073); return; }
    if (op == "wfi") { out.push_back(0x10500073); return; }
    if (op == "fence") { out.push_back(0x0ff0000f); return; }
    if (op == "fence.i") { out.push_back(0x0000100f); return; }
    if (op == "sfence.vma") { out.push_back(0x12000073); return; }

    // --- pseudo-instructions ---
    if (op == "nop") { out.push_back(0x00000013); return; }
    if (op == "li") {
        need(2);
        // Symbolic li would make the expansion length depend on the symbol
        // value, which pass 1 cannot know; la covers that use case.
        if (!looksLikeNumber(a[1]))
            ctx.error("li needs a numeric literal; use la for symbols");
        emitLi(out, reg(0), parseNumber(a[1], ctx), ctx);
        return;
    }
    if (op == "la") {
        need(2);
        std::int64_t off = relTarget(1);
        std::int64_t hi = (off + 0x800) & ~0xfffLL;
        out.push_back(encU(0x17, reg(0), hi));            // auipc
        out.push_back(encI(0x13, reg(0), 0, reg(0), off - hi, ctx));
        return;
    }
    if (op == "mv") {
        need(2);
        out.push_back(encI(0x13, reg(0), 0, reg(1), 0, ctx));
        return;
    }
    if (op == "not") {
        need(2);
        out.push_back(encI(0x13, reg(0), 4, reg(1), -1, ctx));
        return;
    }
    if (op == "neg") {
        need(2);
        out.push_back(encR(0x33, reg(0), 0, 0, reg(1), 0x20));
        return;
    }
    if (op == "seqz") {
        need(2);
        out.push_back(encI(0x13, reg(0), 3, reg(1), 1, ctx)); // sltiu
        return;
    }
    if (op == "snez") {
        need(2);
        out.push_back(encR(0x33, reg(0), 3, 0, reg(1), 0)); // sltu x0,rs
        return;
    }
    if (op == "beqz" || op == "bnez" || op == "blez" || op == "bgez" ||
        op == "bltz" || op == "bgtz") {
        need(2);
        std::int64_t off = relTarget(1);
        if (op == "beqz")
            out.push_back(encB(0x63, 0, reg(0), 0, off, ctx));
        else if (op == "bnez")
            out.push_back(encB(0x63, 1, reg(0), 0, off, ctx));
        else if (op == "blez")
            out.push_back(encB(0x63, 5, 0, reg(0), off, ctx)); // bge x0,rs
        else if (op == "bgez")
            out.push_back(encB(0x63, 5, reg(0), 0, off, ctx));
        else if (op == "bltz")
            out.push_back(encB(0x63, 4, reg(0), 0, off, ctx));
        else
            out.push_back(encB(0x63, 4, 0, reg(0), off, ctx)); // blt x0,rs
        return;
    }
    if (op == "bgt" || op == "ble" || op == "bgtu" || op == "bleu") {
        need(3);
        std::int64_t off = relTarget(2);
        if (op == "bgt")
            out.push_back(encB(0x63, 4, reg(1), reg(0), off, ctx));
        else if (op == "ble")
            out.push_back(encB(0x63, 5, reg(1), reg(0), off, ctx));
        else if (op == "bgtu")
            out.push_back(encB(0x63, 6, reg(1), reg(0), off, ctx));
        else
            out.push_back(encB(0x63, 7, reg(1), reg(0), off, ctx));
        return;
    }
    if (op == "j") {
        need(1);
        out.push_back(encJ(0x6f, 0, relTarget(0), ctx));
        return;
    }
    if (op == "jr") {
        need(1);
        out.push_back(encI(0x67, 0, 0, reg(0), 0, ctx));
        return;
    }
    if (op == "call") {
        need(1);
        std::int64_t off = relTarget(0);
        std::int64_t hi = (off + 0x800) & ~0xfffLL;
        out.push_back(encU(0x17, 1, hi));                 // auipc ra
        out.push_back(encI(0x67, 1, 0, 1, off - hi, ctx)); // jalr ra
        return;
    }
    if (op == "ret") {
        out.push_back(encI(0x67, 0, 0, 1, 0, ctx)); // jalr x0, ra, 0
        return;
    }
    if (op == "csrr") {
        need(2);
        std::int64_t csr = imm(1);
        out.push_back(0x73 | (static_cast<std::uint32_t>(reg(0)) << 7) |
                      (2u << 12) |
                      (static_cast<std::uint32_t>(csr & 0xfff) << 20));
        return;
    }
    if (op == "csrw") {
        need(2);
        std::int64_t csr = imm(0);
        out.push_back(0x73 | (1u << 12) |
                      (static_cast<std::uint32_t>(reg(1)) << 15) |
                      (static_cast<std::uint32_t>(csr & 0xfff) << 20));
        return;
    }

    ctx.error("unknown mnemonic: " + op);
}

/** Fixed instruction count of a line (must match encodeInstr's output). */
std::size_t
instrLength(const Line &line, Context &ctx)
{
    if (line.op == "li") {
        if (line.args.size() == 2 && looksLikeNumber(line.args[1]))
            return liLength(parseNumber(line.args[1], ctx));
        ctx.error("li needs a numeric literal; use la for symbols");
    }
    if (line.op == "la" || line.op == "call")
        return 2;
    return 1;
}

} // namespace

Program
Assembler::assemble(const std::string &source) const
{
    std::vector<Line> lines = tokenize(source);
    Context ctx;

    // Pass 1: lay out sections and collect symbols.
    // Pass 2: encode with symbols resolved.
    Program prog;
    for (int pass = 0; pass < 2; ++pass) {
        bool resolve = pass == 1;
        Addr text_pc = textBase_;
        Addr data_pc = dataBase_;
        bool in_text = true;
        std::vector<std::uint8_t> text_bytes;
        std::vector<std::uint8_t> data_bytes;

        auto pc = [&]() -> Addr & { return in_text ? text_pc : data_pc; };
        auto bytes = [&]() -> std::vector<std::uint8_t> & {
            return in_text ? text_bytes : data_bytes;
        };
        auto emitByte = [&](std::uint8_t b) {
            bytes().push_back(b);
            pc() += 1;
        };
        auto emitData = [&](std::uint64_t v, unsigned n) {
            for (unsigned i = 0; i < n; ++i)
                emitByte(static_cast<std::uint8_t>(v >> (8 * i)));
        };

        for (const Line &line : lines) {
            ctx.line = line.number;
            if (!line.label.empty()) {
                if (!resolve) {
                    fatalIf(ctx.symbols.count(line.label),
                            strfmt("asm line %d: duplicate label %s",
                                   line.number, line.label.c_str()));
                    ctx.symbols[line.label] = pc();
                }
            }
            if (line.op.empty())
                continue;

            if (line.op[0] == '.') {
                const std::string &d = line.op;
                if (d == ".text") {
                    in_text = true;
                } else if (d == ".data") {
                    in_text = false;
                } else if (d == ".align") {
                    std::int64_t n = parseNumber(line.args.at(0), ctx);
                    Addr align = 1ULL << n;
                    while (pc() % align)
                        emitByte(0);
                } else if (d == ".byte" || d == ".half" || d == ".word" ||
                           d == ".dword") {
                    unsigned n = d == ".byte" ? 1
                                 : d == ".half" ? 2
                                 : d == ".word" ? 4 : 8;
                    for (const auto &arg : line.args)
                        emitData(static_cast<std::uint64_t>(
                                     parseImm(arg, ctx, resolve)),
                                 n);
                } else if (d == ".asciiz" || d == ".string") {
                    for (std::uint8_t b :
                         parseStringLiteral(line.args.at(0), ctx))
                        emitByte(b);
                } else if (d == ".space") {
                    std::int64_t n = parseNumber(line.args.at(0), ctx);
                    for (std::int64_t i = 0; i < n; ++i)
                        emitByte(0);
                } else if (d == ".globl" || d == ".global" ||
                           d == ".section") {
                    // Accepted and ignored.
                } else if (d == ".equ") {
                    if (!resolve)
                        ctx.symbols[line.args.at(0)] = static_cast<Addr>(
                            parseNumber(line.args.at(1), ctx));
                } else {
                    ctx.error("unknown directive: " + d);
                }
                continue;
            }

            if (!in_text)
                ctx.error("instructions must be in .text");
            if (!resolve) {
                pc() += 4 * instrLength(line, ctx);
            } else {
                std::vector<std::uint32_t> words;
                encodeInstr(line, pc(), ctx, true, words);
                for (std::uint32_t w : words) {
                    emitData(w, 4);
                }
            }
        }

        if (resolve) {
            if (!text_bytes.empty())
                prog.segments.push_back(
                    Program::Segment{textBase_, std::move(text_bytes)});
            if (!data_bytes.empty())
                prog.segments.push_back(
                    Program::Segment{dataBase_, std::move(data_bytes)});
        }
    }

    prog.symbols = ctx.symbols;
    auto start = ctx.symbols.find("_start");
    prog.entry = start != ctx.symbols.end() ? start->second : textBase_;
    return prog;
}

} // namespace smappic::riscv
