#include "riscv/decode_cache.hpp"

#include "sim/log.hpp"

namespace smappic::riscv
{

DecodeCache::DecodeCache(const DecodeCacheConfig &cfg)
    : enabled_(cfg.enabled)
{
    if (!enabled_) {
        // One permanently-invalid entry keeps find() memory-safe even
        // when a caller skips the enabled() check.
        entries_.resize(1);
        return;
    }
    fatalIf(cfg.sets == 0 || (cfg.sets & (cfg.sets - 1)) != 0,
            "decode cache entry count must be a power of two");
    mask_ = cfg.sets - 1;
    entries_.resize(cfg.sets);
}

} // namespace smappic::riscv
