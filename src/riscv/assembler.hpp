/**
 * @file
 * Two-pass RV64IMA assembler.
 *
 * The prototype has no cross-compiler dependency: examples and tests author
 * guest programs in assembly and load the resulting Program image into the
 * platform's memory. Supports the full instruction set implemented by
 * RvCore, the usual pseudo-instructions (li, la, mv, call, ret, branch
 * aliases), sections (.text/.data) and data directives.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace smappic::riscv
{

/** Assembled image: one or more loadable segments plus symbols. */
struct Program
{
    struct Segment
    {
        Addr base = 0;
        std::vector<std::uint8_t> bytes;
    };

    std::vector<Segment> segments;
    Addr entry = 0;
    std::map<std::string, Addr> symbols;

    /** Address of @p name. @throws FatalError when undefined. */
    Addr symbol(const std::string &name) const;
};

/** The assembler. Stateless between assemble() calls except bases. */
class Assembler
{
  public:
    explicit Assembler(Addr text_base = 0x80000000,
                       Addr data_base = 0x80400000)
        : textBase_(text_base), dataBase_(data_base)
    {
    }

    /**
     * Assembles @p source.
     * @throws FatalError with a line-numbered message on any syntax error.
     */
    Program assemble(const std::string &source) const;

  private:
    Addr textBase_;
    Addr dataBase_;
};

} // namespace smappic::riscv
