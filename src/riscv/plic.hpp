/**
 * @file
 * Platform-Level Interrupt Controller (PLIC) model.
 *
 * The CLINT covers software and timer interrupts; external device
 * interrupts (UARTs, SD controller, accelerators) go through a PLIC:
 * per-source priorities and pending bits, per-hart enable masks and
 * priority thresholds, and the claim/complete protocol. The PLIC's
 * hart-facing external lines feed the same interrupt packetizer as the
 * CLINT, so its notifications also scale across tiles and nodes
 * (paper section 3.3).
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/types.hpp"

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::riscv
{

// PLIC register map offsets (standard layout, word registers).
inline constexpr Addr kPlicPriorityBase = 0x000000; ///< 4 bytes/source.
inline constexpr Addr kPlicPendingBase = 0x001000;  ///< Bit per source.
inline constexpr Addr kPlicEnableBase = 0x002000;   ///< Per hart, 0x80.
inline constexpr Addr kPlicContextBase = 0x200000;  ///< Per hart, 0x1000.
inline constexpr Addr kPlicContextStride = 0x1000;
inline constexpr Addr kPlicEnableStride = 0x80;
// Within a context: +0 threshold, +4 claim/complete.

/** The controller. Source 0 is reserved (as in the spec). */
class PlicController
{
  public:
    /** Fires when a hart's external-interrupt level changes. */
    using WireFn = std::function<void(std::uint32_t hart, bool level)>;

    PlicController(std::uint32_t sources, std::uint32_t harts);

    void setWireFn(WireFn fn) { wireFn_ = std::move(fn); }

    /** Device side: raises/clears interrupt source @p src (level). */
    void setSourceLevel(std::uint32_t src, bool level);

    /** Memory-mapped register read. */
    std::uint32_t read(Addr offset, std::uint32_t hart_hint = 0);

    /** Memory-mapped register write. */
    void write(Addr offset, std::uint32_t value);

    /** Hart-facing: highest-priority pending+enabled source, or 0. */
    std::uint32_t bestPending(std::uint32_t hart) const;

    /** Claim: atomically take the best pending source (0 if none). */
    std::uint32_t claim(std::uint32_t hart);

    /** Complete: re-enables gating for @p src after handling. */
    void complete(std::uint32_t hart, std::uint32_t src);

    bool pending(std::uint32_t src) const { return pending_.at(src); }
    std::uint32_t sources() const
    {
        return static_cast<std::uint32_t>(priority_.size());
    }
    std::uint32_t harts() const
    {
        return static_cast<std::uint32_t>(threshold_.size());
    }

    /** Serializes the full controller state. */
    void saveState(snap::Writer &w) const;
    /** Restores WITHOUT firing the wire callback — the downstream
     *  packetizer/core wires are restored from their own sections. */
    void restoreState(snap::Reader &r);

  private:
    void evaluate();

    std::vector<std::uint32_t> priority_; ///< Per source.
    std::vector<bool> level_;             ///< Device line levels.
    std::vector<bool> pending_;           ///< Latched pending bits.
    std::vector<bool> inService_;         ///< Claimed, not completed.
    std::vector<std::uint64_t> enable_;   ///< Per hart bitmask (<=64 src).
    std::vector<std::uint32_t> threshold_; ///< Per hart.
    std::vector<bool> wireLevel_;          ///< Per hart output.
    WireFn wireFn_;
};

} // namespace smappic::riscv
