/**
 * @file
 * RISC-V interrupt delivery for SMAPPIC (paper section 3.3, Fig. 6).
 *
 * The RISC-V spec notifies cores via dedicated wires from the interrupt
 * controller. That does not scale to manycore nodes (long wires) and cannot
 * cross node boundaries at all, so SMAPPIC adds an interrupt *packetizer*
 * that watches the controller's output wires and, on a change, sends a NoC
 * packet to the owning core's tile, where a *depacketizer* sniffs the
 * traffic and (de)asserts the physical wire into the core.
 *
 * The controller itself is CLINT-compatible: per-hart MSIP and MTIMECMP
 * plus a global MTIME.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "noc/packet.hpp"
#include "riscv/core.hpp"
#include "sim/types.hpp"

namespace smappic::riscv
{

// CLINT register map offsets (standard layout).
inline constexpr Addr kClintMsipBase = 0x0;      ///< 4 bytes per hart.
inline constexpr Addr kClintMtimecmpBase = 0x4000; ///< 8 bytes per hart.
inline constexpr Addr kClintMtime = 0xbff8;

/** CLINT-style interrupt controller for one node. */
class ClintController
{
  public:
    /** Fires on any output-wire level change. */
    using WireFn =
        std::function<void(std::uint32_t hart, std::uint32_t irq,
                           bool level)>;

    explicit ClintController(std::uint32_t harts);

    void setWireFn(WireFn fn) { wireFn_ = std::move(fn); }

    /** Memory-mapped register read at @p offset. */
    std::uint64_t read(Addr offset) const;

    /** Memory-mapped register write. */
    void write(Addr offset, std::uint64_t value, std::uint32_t bytes);

    /** Advances MTIME (typically wired to the node clock). */
    void setTime(std::uint64_t mtime);

    /** Raises/clears an external interrupt line toward @p hart. */
    void setExternal(std::uint32_t hart, bool level);

    /**
     * Horizon query for idle skipping: the smallest MTIME value at which
     * any hart's timer wire can rise, i.e. min over harts of MTIMECMP
     * values strictly above the current MTIME; sim::kNoDeadline when no
     * timer is armed. Covers *all* harts — any wire flip emits an
     * interrupt packet (and stats), so skipping past one would be
     * observable even for harts outside the current run.
     */
    std::uint64_t nextTimerCycle() const;

    bool msip(std::uint32_t hart) const { return msip_.at(hart); }
    bool mtip(std::uint32_t hart) const { return mtip_.at(hart); }
    bool meip(std::uint32_t hart) const { return meip_.at(hart); }
    std::uint64_t mtime() const { return mtime_; }
    std::uint32_t harts() const
    {
        return static_cast<std::uint32_t>(msip_.size());
    }

    /** Serializes wires, compare registers and MTIME. */
    void saveState(snap::Writer &w) const;
    /** Restores wire/register state WITHOUT firing the wire callback —
     *  the cores' own mip bits are restored separately. */
    void restoreState(snap::Reader &r);

  private:
    void setWire(std::vector<bool> &wires, std::uint32_t hart,
                 std::uint32_t irq, bool level);
    void evaluateTimers();

    std::vector<bool> msip_;
    std::vector<bool> mtip_;
    std::vector<bool> meip_;
    std::vector<std::uint64_t> mtimecmp_;
    std::uint64_t mtime_ = 0;
    WireFn wireFn_;
};

/**
 * Interrupt packetizer: encodes a wire change into a NoC packet routed to
 * the owning core's tile (possibly across nodes).
 */
class IrqPacketizer
{
  public:
    using SendFn = std::function<void(const noc::Packet &)>;
    /** Maps a hart id to its (node, tile). */
    using HartLocFn =
        std::function<std::pair<NodeId, TileId>(std::uint32_t hart)>;

    IrqPacketizer(NodeId node, SendFn send, HartLocFn loc)
        : node_(node), send_(std::move(send)), loc_(std::move(loc))
    {
    }

    /** Hook this into ClintController::setWireFn. */
    void onWireChange(std::uint32_t hart, std::uint32_t irq, bool level);

    /** Builds the interrupt packet without sending (for tests). */
    static noc::Packet encode(NodeId src_node, NodeId dst_node,
                              TileId dst_tile, std::uint32_t hart,
                              std::uint32_t irq, bool level);

  private:
    NodeId node_;
    SendFn send_;
    HartLocFn loc_;
};

/** Interrupt depacketizer: applies an interrupt packet to a core's wires. */
class IrqDepacketizer
{
  public:
    /** Decoded interrupt notification. */
    struct Decoded
    {
        std::uint32_t hart = 0;
        std::uint32_t irq = 0;
        bool level = false;
    };

    /** Decodes a kInterrupt packet. @throws PanicError on other types. */
    static Decoded decode(const noc::Packet &pkt);

    /** Decodes and drives @p core's interrupt wire. */
    static void apply(const noc::Packet &pkt, RvCore &core);
};

} // namespace smappic::riscv
