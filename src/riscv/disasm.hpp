/**
 * @file
 * RISC-V disassembler for traces and debugging: renders decoded
 * instructions in standard assembly syntax with ABI register names.
 */

#pragma once

#include <string>

#include "riscv/isa.hpp"

namespace smappic::riscv
{

/** ABI name of integer register @p idx ("zero", "ra", "a0", ...). */
const char *regName(unsigned idx);

/** Renders @p inst as assembly text, e.g. "addi a0, a1, -3". */
std::string disassemble(const DecodedInst &inst);

} // namespace smappic::riscv
