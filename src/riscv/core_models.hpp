/**
 * @file
 * Core model presets. BYOC integrates many cores (Ariane, OpenSPARC T1,
 * PicoRV32, ao486, AnyCore, BlackParrot — paper section 2.2); SMAPPIC
 * ships a couple out of the box and lets users pick per-tile. The presets
 * here parameterize the RV64 timing model to match the distinct
 * microarchitectural characters of the RISC-V cores in that list.
 */

#pragma once

#include <string>

#include "riscv/core.hpp"

namespace smappic::riscv
{

/** Selectable core models. */
enum class CoreModel : std::uint8_t
{
    /** Ariane: 6-stage in-order application core (Table 2 default). */
    kAriane,
    /**
     * PicoRV32-class: a tiny multi-cycle microcontroller core — no branch
     * prediction to speak of, several cycles per instruction, long
     * multiply/divide.
     */
    kPicoRv32,
    /**
     * BlackParrot-class: in-order superscalar-ish application core with a
     * better frontend than Ariane.
     */
    kBlackParrot,
};

/** Timing preset for @p model (hart id / reset pc left to the caller). */
inline CoreConfig
corePreset(CoreModel model)
{
    CoreConfig cfg;
    switch (model) {
      case CoreModel::kAriane:
        // Table 2 defaults.
        break;
      case CoreModel::kPicoRv32:
        cfg.baseCycles = 4;        // Multi-cycle FSM core.
        cfg.bhtEntries = 1;        // Effectively unpredicted branches.
        cfg.mispredictPenalty = 3; // Short pipeline to refill...
        cfg.jalrPenalty = 3;
        cfg.mulLatency = 32;       // Iterative multiplier.
        cfg.divLatency = 64;
        cfg.tlbWalkBase = 0;       // No MMU: bare physical mode.
        cfg.itlbEntries = 1;
        cfg.dtlbEntries = 1;
        break;
      case CoreModel::kBlackParrot:
        cfg.bhtEntries = 512;
        cfg.mispredictPenalty = 7;
        cfg.jalrPenalty = 2;
        cfg.mulLatency = 3;
        cfg.divLatency = 16;
        break;
    }
    return cfg;
}

inline std::string
coreModelName(CoreModel model)
{
    switch (model) {
      case CoreModel::kAriane:
        return "ariane";
      case CoreModel::kPicoRv32:
        return "picorv32";
      case CoreModel::kBlackParrot:
        return "blackparrot";
    }
    return "?";
}

} // namespace smappic::riscv
