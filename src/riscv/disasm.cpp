#include "riscv/disasm.hpp"

#include "sim/log.hpp"

namespace smappic::riscv
{

const char *
regName(unsigned idx)
{
    static const char *kNames[32] = {
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
        "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6",
    };
    panicIf(idx >= 32, "register index out of range");
    return kNames[idx];
}

std::string
disassemble(const DecodedInst &d)
{
    const std::string m = mnemonic(d.op);
    auto rd = regName(d.rd);
    auto rs1 = regName(d.rs1);
    auto rs2 = regName(d.rs2);
    long long imm = static_cast<long long>(d.imm);

    switch (d.op) {
      case Op::kIllegal:
        return strfmt("illegal 0x%08x", d.raw);
      case Op::kLui:
      case Op::kAuipc:
        return strfmt("%s %s, 0x%llx", m.c_str(), rd,
                      static_cast<unsigned long long>(
                          (static_cast<std::uint64_t>(d.imm) >> 12) &
                          0xfffff));
      case Op::kJal:
        return strfmt("%s %s, %lld", m.c_str(), rd, imm);
      case Op::kJalr:
        return strfmt("%s %s, %lld(%s)", m.c_str(), rd, imm, rs1);
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        return strfmt("%s %s, %s, %lld", m.c_str(), rs1, rs2, imm);
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
      case Op::kLbu: case Op::kLhu: case Op::kLwu:
        return strfmt("%s %s, %lld(%s)", m.c_str(), rd, imm, rs1);
      case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
        return strfmt("%s %s, %lld(%s)", m.c_str(), rs2, imm, rs1);
      case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
      case Op::kOri: case Op::kAndi: case Op::kSlli: case Op::kSrli:
      case Op::kSrai: case Op::kAddiw: case Op::kSlliw: case Op::kSrliw:
      case Op::kSraiw:
        return strfmt("%s %s, %s, %lld", m.c_str(), rd, rs1, imm);
      case Op::kFence: case Op::kFenceI: case Op::kEcall:
      case Op::kEbreak: case Op::kMret: case Op::kSret: case Op::kWfi:
      case Op::kSfenceVma:
        return m;
      case Op::kCsrrw: case Op::kCsrrs: case Op::kCsrrc:
        return strfmt("%s %s, 0x%x, %s", m.c_str(), rd, d.csr, rs1);
      case Op::kCsrrwi: case Op::kCsrrsi: case Op::kCsrrci:
        return strfmt("%s %s, 0x%x, %lld", m.c_str(), rd, d.csr, imm);
      case Op::kLrW: case Op::kLrD:
        return strfmt("%s %s, (%s)", m.c_str(), rd, rs1);
      default:
        break;
    }
    if (d.isAmo() || d.op == Op::kScW || d.op == Op::kScD)
        return strfmt("%s %s, %s, (%s)", m.c_str(), rd, rs2, rs1);
    // R-type default.
    return strfmt("%s %s, %s, %s", m.c_str(), rd, rs1, rs2);
}

} // namespace smappic::riscv
