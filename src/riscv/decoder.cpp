#include "riscv/isa.hpp"

namespace smappic::riscv
{

namespace
{

std::int64_t
signExtend(std::uint64_t value, unsigned bits)
{
    std::uint64_t mask = 1ULL << (bits - 1);
    return static_cast<std::int64_t>((value ^ mask) - mask);
}

std::int64_t
immI(std::uint32_t w)
{
    return signExtend(w >> 20, 12);
}

std::int64_t
immS(std::uint32_t w)
{
    return signExtend(((w >> 25) << 5) | ((w >> 7) & 0x1f), 12);
}

std::int64_t
immB(std::uint32_t w)
{
    std::uint64_t v = (((w >> 31) & 1) << 12) | (((w >> 7) & 1) << 11) |
                      (((w >> 25) & 0x3f) << 5) | (((w >> 8) & 0xf) << 1);
    return signExtend(v, 13);
}

std::int64_t
immU(std::uint32_t w)
{
    return signExtend(w & 0xfffff000u, 32);
}

std::int64_t
immJ(std::uint32_t w)
{
    std::uint64_t v = (((w >> 31) & 1) << 20) | (((w >> 12) & 0xff) << 12) |
                      (((w >> 20) & 1) << 11) | (((w >> 21) & 0x3ff) << 1);
    return signExtend(v, 21);
}

} // namespace

bool
DecodedInst::isLoad() const
{
    switch (op) {
      case Op::kLb: case Op::kLh: case Op::kLw: case Op::kLd:
      case Op::kLbu: case Op::kLhu: case Op::kLwu:
      case Op::kLrW: case Op::kLrD:
        return true;
      default:
        return false;
    }
}

bool
DecodedInst::isStore() const
{
    switch (op) {
      case Op::kSb: case Op::kSh: case Op::kSw: case Op::kSd:
      case Op::kScW: case Op::kScD:
        return true;
      default:
        return false;
    }
}

bool
DecodedInst::isAmo() const
{
    switch (op) {
      case Op::kAmoSwapW: case Op::kAmoAddW: case Op::kAmoXorW:
      case Op::kAmoAndW: case Op::kAmoOrW: case Op::kAmoMinW:
      case Op::kAmoMaxW: case Op::kAmoMinuW: case Op::kAmoMaxuW:
      case Op::kAmoSwapD: case Op::kAmoAddD: case Op::kAmoXorD:
      case Op::kAmoAndD: case Op::kAmoOrD: case Op::kAmoMinD:
      case Op::kAmoMaxD: case Op::kAmoMinuD: case Op::kAmoMaxuD:
        return true;
      default:
        return false;
    }
}

bool
DecodedInst::isBranch() const
{
    switch (op) {
      case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBge:
      case Op::kBltu: case Op::kBgeu:
        return true;
      default:
        return false;
    }
}

DecodedInst
decode(std::uint32_t w)
{
    DecodedInst d;
    d.raw = w;
    d.rd = static_cast<std::uint8_t>((w >> 7) & 0x1f);
    d.rs1 = static_cast<std::uint8_t>((w >> 15) & 0x1f);
    d.rs2 = static_cast<std::uint8_t>((w >> 20) & 0x1f);
    std::uint32_t opcode = w & 0x7f;
    std::uint32_t f3 = (w >> 12) & 0x7;
    std::uint32_t f7 = (w >> 25) & 0x7f;

    switch (opcode) {
      case 0x37:
        d.op = Op::kLui;
        d.imm = immU(w);
        return d;
      case 0x17:
        d.op = Op::kAuipc;
        d.imm = immU(w);
        return d;
      case 0x6f:
        d.op = Op::kJal;
        d.imm = immJ(w);
        return d;
      case 0x67:
        if (f3 == 0) {
            d.op = Op::kJalr;
            d.imm = immI(w);
        }
        return d;
      case 0x63: {
          d.imm = immB(w);
          switch (f3) {
            case 0: d.op = Op::kBeq; break;
            case 1: d.op = Op::kBne; break;
            case 4: d.op = Op::kBlt; break;
            case 5: d.op = Op::kBge; break;
            case 6: d.op = Op::kBltu; break;
            case 7: d.op = Op::kBgeu; break;
            default: break;
          }
          return d;
      }
      case 0x03: {
          d.imm = immI(w);
          switch (f3) {
            case 0: d.op = Op::kLb; break;
            case 1: d.op = Op::kLh; break;
            case 2: d.op = Op::kLw; break;
            case 3: d.op = Op::kLd; break;
            case 4: d.op = Op::kLbu; break;
            case 5: d.op = Op::kLhu; break;
            case 6: d.op = Op::kLwu; break;
            default: break;
          }
          return d;
      }
      case 0x23: {
          d.imm = immS(w);
          switch (f3) {
            case 0: d.op = Op::kSb; break;
            case 1: d.op = Op::kSh; break;
            case 2: d.op = Op::kSw; break;
            case 3: d.op = Op::kSd; break;
            default: break;
          }
          return d;
      }
      case 0x13: {
          d.imm = immI(w);
          switch (f3) {
            case 0: d.op = Op::kAddi; break;
            case 2: d.op = Op::kSlti; break;
            case 3: d.op = Op::kSltiu; break;
            case 4: d.op = Op::kXori; break;
            case 6: d.op = Op::kOri; break;
            case 7: d.op = Op::kAndi; break;
            case 1:
              if ((w >> 26) == 0) {
                  d.op = Op::kSlli;
                  d.imm = (w >> 20) & 0x3f;
              }
              break;
            case 5:
              if ((w >> 26) == 0) {
                  d.op = Op::kSrli;
                  d.imm = (w >> 20) & 0x3f;
              } else if ((w >> 26) == 0x10) {
                  d.op = Op::kSrai;
                  d.imm = (w >> 20) & 0x3f;
              }
              break;
            default: break;
          }
          return d;
      }
      case 0x1b: {
          d.imm = immI(w);
          switch (f3) {
            case 0: d.op = Op::kAddiw; break;
            case 1:
              if (f7 == 0) {
                  d.op = Op::kSlliw;
                  d.imm = (w >> 20) & 0x1f;
              }
              break;
            case 5:
              if (f7 == 0) {
                  d.op = Op::kSrliw;
                  d.imm = (w >> 20) & 0x1f;
              } else if (f7 == 0x20) {
                  d.op = Op::kSraiw;
                  d.imm = (w >> 20) & 0x1f;
              }
              break;
            default: break;
          }
          return d;
      }
      case 0x33: {
          if (f7 == 0x01) {
              switch (f3) {
                case 0: d.op = Op::kMul; break;
                case 1: d.op = Op::kMulh; break;
                case 2: d.op = Op::kMulhsu; break;
                case 3: d.op = Op::kMulhu; break;
                case 4: d.op = Op::kDiv; break;
                case 5: d.op = Op::kDivu; break;
                case 6: d.op = Op::kRem; break;
                case 7: d.op = Op::kRemu; break;
                default: break;
              }
              return d;
          }
          switch (f3) {
            case 0: d.op = (f7 == 0x20) ? Op::kSub : Op::kAdd; break;
            case 1: d.op = Op::kSll; break;
            case 2: d.op = Op::kSlt; break;
            case 3: d.op = Op::kSltu; break;
            case 4: d.op = Op::kXor; break;
            case 5: d.op = (f7 == 0x20) ? Op::kSra : Op::kSrl; break;
            case 6: d.op = Op::kOr; break;
            case 7: d.op = Op::kAnd; break;
            default: break;
          }
          return d;
      }
      case 0x3b: {
          if (f7 == 0x01) {
              switch (f3) {
                case 0: d.op = Op::kMulw; break;
                case 4: d.op = Op::kDivw; break;
                case 5: d.op = Op::kDivuw; break;
                case 6: d.op = Op::kRemw; break;
                case 7: d.op = Op::kRemuw; break;
                default: break;
              }
              return d;
          }
          switch (f3) {
            case 0: d.op = (f7 == 0x20) ? Op::kSubw : Op::kAddw; break;
            case 1: d.op = Op::kSllw; break;
            case 5: d.op = (f7 == 0x20) ? Op::kSraw : Op::kSrlw; break;
            default: break;
          }
          return d;
      }
      case 0x0f:
        d.op = (f3 == 1) ? Op::kFenceI : Op::kFence;
        return d;
      case 0x73: {
          d.csr = static_cast<std::uint16_t>(w >> 20);
          switch (f3) {
            case 0:
              if (w == 0x00000073)
                  d.op = Op::kEcall;
              else if (w == 0x00100073)
                  d.op = Op::kEbreak;
              else if (w == 0x30200073)
                  d.op = Op::kMret;
              else if (w == 0x10200073)
                  d.op = Op::kSret;
              else if (w == 0x10500073)
                  d.op = Op::kWfi;
              else if (f7 == 0x09)
                  d.op = Op::kSfenceVma;
              break;
            case 1: d.op = Op::kCsrrw; break;
            case 2: d.op = Op::kCsrrs; break;
            case 3: d.op = Op::kCsrrc; break;
            case 5: d.op = Op::kCsrrwi; d.imm = d.rs1; break;
            case 6: d.op = Op::kCsrrsi; d.imm = d.rs1; break;
            case 7: d.op = Op::kCsrrci; d.imm = d.rs1; break;
            default: break;
          }
          return d;
      }
      case 0x2f: {
          std::uint32_t f5 = w >> 27;
          bool is64 = f3 == 3;
          if (f3 != 2 && f3 != 3)
              return d;
          switch (f5) {
            case 0x02: d.op = is64 ? Op::kLrD : Op::kLrW; break;
            case 0x03: d.op = is64 ? Op::kScD : Op::kScW; break;
            case 0x01: d.op = is64 ? Op::kAmoSwapD : Op::kAmoSwapW; break;
            case 0x00: d.op = is64 ? Op::kAmoAddD : Op::kAmoAddW; break;
            case 0x04: d.op = is64 ? Op::kAmoXorD : Op::kAmoXorW; break;
            case 0x0c: d.op = is64 ? Op::kAmoAndD : Op::kAmoAndW; break;
            case 0x08: d.op = is64 ? Op::kAmoOrD : Op::kAmoOrW; break;
            case 0x10: d.op = is64 ? Op::kAmoMinD : Op::kAmoMinW; break;
            case 0x14: d.op = is64 ? Op::kAmoMaxD : Op::kAmoMaxW; break;
            case 0x18: d.op = is64 ? Op::kAmoMinuD : Op::kAmoMinuW; break;
            case 0x1c: d.op = is64 ? Op::kAmoMaxuD : Op::kAmoMaxuW; break;
            default: break;
          }
          return d;
      }
      default:
        return d;
    }
}

std::string
mnemonic(Op op)
{
    switch (op) {
      case Op::kIllegal: return "illegal";
      case Op::kLui: return "lui";
      case Op::kAuipc: return "auipc";
      case Op::kJal: return "jal";
      case Op::kJalr: return "jalr";
      case Op::kBeq: return "beq";
      case Op::kBne: return "bne";
      case Op::kBlt: return "blt";
      case Op::kBge: return "bge";
      case Op::kBltu: return "bltu";
      case Op::kBgeu: return "bgeu";
      case Op::kLb: return "lb";
      case Op::kLh: return "lh";
      case Op::kLw: return "lw";
      case Op::kLd: return "ld";
      case Op::kLbu: return "lbu";
      case Op::kLhu: return "lhu";
      case Op::kLwu: return "lwu";
      case Op::kSb: return "sb";
      case Op::kSh: return "sh";
      case Op::kSw: return "sw";
      case Op::kSd: return "sd";
      case Op::kAddi: return "addi";
      case Op::kSlti: return "slti";
      case Op::kSltiu: return "sltiu";
      case Op::kXori: return "xori";
      case Op::kOri: return "ori";
      case Op::kAndi: return "andi";
      case Op::kSlli: return "slli";
      case Op::kSrli: return "srli";
      case Op::kSrai: return "srai";
      case Op::kAdd: return "add";
      case Op::kSub: return "sub";
      case Op::kSll: return "sll";
      case Op::kSlt: return "slt";
      case Op::kSltu: return "sltu";
      case Op::kXor: return "xor";
      case Op::kSrl: return "srl";
      case Op::kSra: return "sra";
      case Op::kOr: return "or";
      case Op::kAnd: return "and";
      case Op::kAddiw: return "addiw";
      case Op::kSlliw: return "slliw";
      case Op::kSrliw: return "srliw";
      case Op::kSraiw: return "sraiw";
      case Op::kAddw: return "addw";
      case Op::kSubw: return "subw";
      case Op::kSllw: return "sllw";
      case Op::kSrlw: return "srlw";
      case Op::kSraw: return "sraw";
      case Op::kFence: return "fence";
      case Op::kFenceI: return "fence.i";
      case Op::kEcall: return "ecall";
      case Op::kEbreak: return "ebreak";
      case Op::kCsrrw: return "csrrw";
      case Op::kCsrrs: return "csrrs";
      case Op::kCsrrc: return "csrrc";
      case Op::kCsrrwi: return "csrrwi";
      case Op::kCsrrsi: return "csrrsi";
      case Op::kCsrrci: return "csrrci";
      case Op::kMret: return "mret";
      case Op::kSret: return "sret";
      case Op::kWfi: return "wfi";
      case Op::kSfenceVma: return "sfence.vma";
      case Op::kMul: return "mul";
      case Op::kMulh: return "mulh";
      case Op::kMulhsu: return "mulhsu";
      case Op::kMulhu: return "mulhu";
      case Op::kDiv: return "div";
      case Op::kDivu: return "divu";
      case Op::kRem: return "rem";
      case Op::kRemu: return "remu";
      case Op::kMulw: return "mulw";
      case Op::kDivw: return "divw";
      case Op::kDivuw: return "divuw";
      case Op::kRemw: return "remw";
      case Op::kRemuw: return "remuw";
      case Op::kLrW: return "lr.w";
      case Op::kScW: return "sc.w";
      case Op::kLrD: return "lr.d";
      case Op::kScD: return "sc.d";
      case Op::kAmoSwapW: return "amoswap.w";
      case Op::kAmoAddW: return "amoadd.w";
      case Op::kAmoXorW: return "amoxor.w";
      case Op::kAmoAndW: return "amoand.w";
      case Op::kAmoOrW: return "amoor.w";
      case Op::kAmoMinW: return "amomin.w";
      case Op::kAmoMaxW: return "amomax.w";
      case Op::kAmoMinuW: return "amominu.w";
      case Op::kAmoMaxuW: return "amomaxu.w";
      case Op::kAmoSwapD: return "amoswap.d";
      case Op::kAmoAddD: return "amoadd.d";
      case Op::kAmoXorD: return "amoxor.d";
      case Op::kAmoAndD: return "amoand.d";
      case Op::kAmoOrD: return "amoor.d";
      case Op::kAmoMinD: return "amomin.d";
      case Op::kAmoMaxD: return "amomax.d";
      case Op::kAmoMinuD: return "amominu.d";
      case Op::kAmoMaxuD: return "amomaxu.d";
    }
    return "?";
}

} // namespace smappic::riscv
