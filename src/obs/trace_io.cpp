#include "obs/trace_io.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>

#include "sim/log.hpp"

namespace smappic::obs
{

namespace
{

constexpr char kMagic[4] = {'S', 'M', 'T', 'R'};
constexpr std::size_t kRecordBytes = 32;

void
put(std::ostream &os, std::uint64_t v, std::size_t bytes)
{
    char buf[8];
    for (std::size_t i = 0; i < bytes; ++i)
        buf[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    os.write(buf, static_cast<std::streamsize>(bytes));
}

std::uint64_t
get(std::istream &is, std::size_t bytes)
{
    char buf[8];
    is.read(buf, static_cast<std::streamsize>(bytes));
    fatalIf(!is, "trace file truncated");
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < bytes; ++i)
        v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(buf[i]))
             << (8 * i);
    return v;
}

void
putEvent(std::ostream &os, const TraceEvent &ev)
{
    put(os, ev.cycle, 8);
    put(os, ev.arg, 8);
    put(os, ev.duration, 4);
    put(os, ev.extra, 4);
    put(os, ev.node, 2);
    put(os, ev.tile, 2);
    put(os, ev.component, 1);
    put(os, ev.kind, 1);
    put(os, ev.flags, 1);
    put(os, ev.pad, 1);
}

TraceEvent
getEvent(std::istream &is)
{
    TraceEvent ev;
    ev.cycle = get(is, 8);
    ev.arg = get(is, 8);
    ev.duration = static_cast<std::uint32_t>(get(is, 4));
    ev.extra = static_cast<std::uint32_t>(get(is, 4));
    ev.node = static_cast<std::uint16_t>(get(is, 2));
    ev.tile = static_cast<std::uint16_t>(get(is, 2));
    ev.component = static_cast<std::uint8_t>(get(is, 1));
    ev.kind = static_cast<std::uint8_t>(get(is, 1));
    ev.flags = static_cast<std::uint8_t>(get(is, 1));
    ev.pad = static_cast<std::uint8_t>(get(is, 1));
    return ev;
}

} // namespace

void
writeBinary(const Tracer &tracer, std::ostream &os)
{
    os.write(kMagic, sizeof kMagic);
    put(os, kTraceFormatVersion, 4);
    put(os, tracer.nodes(), 4);
    put(os, kRecordBytes, 4);
    for (NodeId n = 0; n < tracer.nodes(); ++n) {
        put(os, tracer.heldOn(n), 8);
        put(os, tracer.droppedOn(n), 8);
    }
    for (const TraceEvent &ev : tracer.merged())
        putEvent(os, ev);
}

TraceData
readBinary(std::istream &is)
{
    char magic[4];
    is.read(magic, sizeof magic);
    fatalIf(!is || std::memcmp(magic, kMagic, sizeof magic) != 0,
            "not a SMAPPIC trace file (bad magic)");
    TraceData td;
    td.version = static_cast<std::uint32_t>(get(is, 4));
    fatalIf(td.version != kTraceFormatVersion,
            "unsupported trace format version");
    td.nodes = static_cast<std::uint32_t>(get(is, 4));
    fatalIf(td.nodes == 0 || td.nodes > 0x10000,
            "trace file has an implausible node count");
    auto record = static_cast<std::uint32_t>(get(is, 4));
    fatalIf(record != kRecordBytes, "trace record size mismatch");
    std::uint64_t total = 0;
    for (std::uint32_t n = 0; n < td.nodes; ++n) {
        td.perNodeHeld.push_back(get(is, 8));
        td.perNodeDropped.push_back(get(is, 8));
        total += td.perNodeHeld.back();
    }
    fatalIf(total > (1ull << 32), "trace file holds too many events");
    td.events.reserve(total);
    for (std::uint64_t i = 0; i < total; ++i)
        td.events.push_back(getEvent(is));
    return td;
}

void
writeChromeJson(const std::vector<TraceEvent> &events, std::ostream &os)
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    char buf[256];
    for (const TraceEvent &ev : events) {
        auto kind = static_cast<EventKind>(ev.kind);
        auto comp = static_cast<Component>(ev.component);
        if (!first)
            os << ",";
        first = false;
        if (ev.duration > 0) {
            std::snprintf(
                buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                "\"ts\":%" PRIu64 ",\"dur\":%u,\"pid\":%u,\"tid\":%u,",
                kindName(kind), componentName(comp), ev.cycle,
                ev.duration, ev.node, ev.tile);
        } else {
            std::snprintf(
                buf, sizeof buf,
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                "\"s\":\"t\",\"ts\":%" PRIu64 ",\"pid\":%u,\"tid\":%u,",
                kindName(kind), componentName(comp), ev.cycle, ev.node,
                ev.tile);
        }
        os << buf;
        std::snprintf(buf, sizeof buf,
                      "\"args\":{\"arg\":\"0x%" PRIx64
                      "\",\"extra\":%u,\"flags\":%u}}",
                      ev.arg, ev.extra, ev.flags);
        os << buf;
    }
    os << "]}";
}

} // namespace smappic::obs
