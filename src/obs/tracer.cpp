#include "obs/tracer.hpp"

#include <algorithm>

#include "sim/log.hpp"
#include "sim/parallel.hpp"
#include "snap/state_io.hpp"

namespace smappic::obs
{

const char *
componentName(Component c)
{
    switch (c) {
      case Component::kCache: return "cache";
      case Component::kNoc: return "noc";
      case Component::kPcie: return "pcie";
      case Component::kBridge: return "bridge";
      case Component::kCore: return "core";
      case Component::kDecodeCache: return "decodeCache";
    }
    panic("unknown trace component");
}

const char *
kindName(EventKind kind)
{
    switch (kind) {
      case EventKind::kCacheMiss: return "cacheMiss";
      case EventKind::kCacheAtomic: return "cacheAtomic";
      case EventKind::kNocPath: return "nocPath";
      case EventKind::kNocHop: return "nocHop";
      case EventKind::kNocDeliver: return "nocDeliver";
      case EventKind::kPcieWrite: return "pcieWrite";
      case EventKind::kPcieRead: return "pcieRead";
      case EventKind::kBridgeTx: return "bridgeTx";
      case EventKind::kBridgeRx: return "bridgeRx";
      case EventKind::kCoreCommit: return "coreCommit";
      case EventKind::kCoreStall: return "coreStall";
      case EventKind::kDecodeFill: return "decodeFill";
      case EventKind::kDecodeFlush: return "decodeFlush";
    }
    panic("unknown trace event kind");
}

void
Tracer::configure(const TraceConfig &cfg, std::uint32_t nodes)
{
    fatalIf(cfg.enabled && nodes == 0, "tracer needs at least one node");
    fatalIf(cfg.enabled && cfg.ringCapacity == 0,
            "tracer ring capacity must be positive");
    enabled_ = cfg.enabled;
    mask_ = cfg.components & kEveryComponent;
    capacity_ = cfg.ringCapacity;
    coreStallCycles_ = cfg.coreStallCycles;
    rings_.clear();
    if (enabled_) {
        rings_.resize(nodes);
        // Size the whole ring upfront: record() must never pay an
        // allocation (the copy would dwarf the per-event cost and show
        // up as traced-run overhead). The fill level is tracked through
        // Ring::total, not the vector's size.
        for (Ring &r : rings_)
            r.buf.resize(capacity_);
    }
}

std::uint64_t
Tracer::recorded() const
{
    std::uint64_t n = 0;
    for (const Ring &r : rings_)
        n += r.total;
    return n;
}

std::uint64_t
Tracer::droppedOn(NodeId node) const
{
    const Ring &r = rings_.at(node);
    return r.total > capacity_ ? r.total - capacity_ : 0;
}

std::uint64_t
Tracer::dropped() const
{
    std::uint64_t n = 0;
    for (NodeId node = 0; node < rings_.size(); ++node)
        n += droppedOn(node);
    return n;
}

std::uint64_t
Tracer::heldOn(NodeId node) const
{
    return std::min<std::uint64_t>(rings_.at(node).total, capacity_);
}

std::vector<TraceEvent>
Tracer::merged() const
{
    std::vector<TraceEvent> out;
    std::size_t total = 0;
    for (NodeId node = 0; node < rings_.size(); ++node)
        total += heldOn(node);
    out.reserve(total);
    for (NodeId node = 0; node < rings_.size(); ++node) {
        const Ring &r = rings_[node];
        std::size_t held = heldOn(node);
        // Once a ring wrapped, buf[next] is the oldest retained event;
        // until then the oldest sits at index 0.
        std::size_t start = r.total <= capacity_ ? 0 : r.next;
        for (std::size_t i = 0; i < held; ++i)
            out.push_back(r.buf[(start + i) % capacity_]);
    }
    return out;
}

void
Tracer::clear()
{
    // Keeps the rings sized (and their pages warm): stale entries are
    // unreachable because the fill level derives from Ring::total.
    for (Ring &r : rings_) {
        r.next = 0;
        r.total = 0;
    }
}

void
Tracer::saveState(snap::Writer &w) const
{
    w.u64(rings_.size());
    w.u64(capacity_);
    for (NodeId node = 0; node < rings_.size(); ++node) {
        const Ring &ring = rings_[node];
        std::size_t held = heldOn(node);
        std::size_t start = ring.total <= capacity_ ? 0 : ring.next;
        w.u64(ring.total);
        w.u64(held);
        for (std::size_t i = 0; i < held; ++i) {
            const TraceEvent &ev = ring.buf[(start + i) % capacity_];
            w.u64(ev.cycle);
            w.u64(ev.arg);
            w.u32(ev.duration);
            w.u32(ev.extra);
            w.u16(ev.node);
            w.u16(ev.tile);
            w.u8(ev.component);
            w.u8(ev.kind);
            w.u8(ev.flags);
        }
    }
}

void
Tracer::restoreState(snap::Reader &r)
{
    std::uint64_t nodes = r.u64();
    std::uint64_t capacity = r.u64();
    fatalIf(nodes != rings_.size() || capacity != capacity_,
            strfmt("checkpoint tracer shape (%llu rings x %llu) does not "
                   "match the live tracer (%llu x %llu)",
                   static_cast<unsigned long long>(nodes),
                   static_cast<unsigned long long>(capacity),
                   static_cast<unsigned long long>(rings_.size()),
                   static_cast<unsigned long long>(capacity_)));
    for (Ring &ring : rings_) {
        std::uint64_t total = r.u64();
        std::uint64_t held = r.u64();
        fatalIf(held > capacity_, "checkpoint tracer ring overflows");
        // Refill from index 0, oldest first: the cursor phase differs
        // from the writing tracer's but merged() order is identical.
        for (std::uint64_t i = 0; i < held; ++i) {
            TraceEvent ev;
            ev.cycle = r.u64();
            ev.arg = r.u64();
            ev.duration = r.u32();
            ev.extra = r.u32();
            ev.node = r.u16();
            ev.tile = r.u16();
            ev.component = r.u8();
            ev.kind = r.u8();
            ev.flags = r.u8();
            ring.buf[i] = ev;
        }
        ring.next = held % (capacity_ == 0 ? 1 : capacity_);
        ring.total = total;
    }
}

} // namespace smappic::obs
