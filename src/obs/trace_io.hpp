/**
 * @file
 * Trace serialization: a compact binary container for Tracer output and
 * an exporter to Chrome's trace_event JSON (load via chrome://tracing or
 * https://ui.perfetto.dev).
 *
 * Binary layout (all fields little-endian):
 *   "SMTR"                     4-byte magic
 *   u32 version (currently 1)
 *   u32 nodes
 *   u32 record size (32)
 *   per node: u64 held, u64 dropped
 *   then sum(held) 32-byte records, rings concatenated in node order
 *
 * The writer consumes Tracer::merged(), so the byte stream inherits the
 * tracer's worker-count-independence: same seed + same quantum => the
 * same file, bit for bit, for any number of phased workers.
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "obs/tracer.hpp"

namespace smappic::obs
{

inline constexpr std::uint32_t kTraceFormatVersion = 1;

/** Parsed contents of a binary trace file. */
struct TraceData
{
    std::uint32_t version = 0;
    std::uint32_t nodes = 0;
    std::vector<std::uint64_t> perNodeHeld;
    std::vector<std::uint64_t> perNodeDropped;
    /** Events in node order (node 0's ring first), oldest first. */
    std::vector<TraceEvent> events;

    std::uint64_t
    dropped() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t d : perNodeDropped)
            n += d;
        return n;
    }
};

/**
 * Half-open window test shared by every trace consumer: a cycle is in
 * the window [from, to) iff from <= cycle < to. The start is inclusive
 * and the end exclusive so adjacent windows <A:B> and <B:C> tile a
 * trace without overlap or gap; an event stamped exactly at `to` is
 * NOT selected. `from >= to` selects nothing.
 */
inline bool
cycleInWindow(Cycles cycle, Cycles from, Cycles to)
{
    return cycle >= from && cycle < to;
}

/** Serializes @p tracer's retained events to @p os. */
void writeBinary(const Tracer &tracer, std::ostream &os);

/** Parses a binary trace. @throws FatalError on malformed input. */
TraceData readBinary(std::istream &is);

/**
 * Exports @p events as Chrome trace_event JSON: events with a duration
 * become complete ("X") slices, instantaneous ones become instants
 * ("i"); pid = node, tid = tile.
 */
void writeChromeJson(const std::vector<TraceEvent> &events,
                     std::ostream &os);

} // namespace smappic::obs
