/**
 * @file
 * Platform-wide event tracer: the observability counterpart of the
 * StatRegistry. Components carry compile-time-cheap trace points (one
 * branch on a cached pointer when tracing is off) that emit fixed-size
 * TraceEvents into per-node ring buffers.
 *
 * Determinism discipline mirrors the stat shards (see sim/parallel.hpp):
 * inside a node phase every record() lands in the acting node's ring, so
 * each ring has a single writer per phase; serial-context events (event
 * queue, barriers, setup) pick their ring from the event's own node tag
 * and are produced in a fixed order by construction. Merging concatenates
 * the rings in ascending node order, so the merged trace — and its binary
 * serialization — is bit-identical for any worker count.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/parallel.hpp"
#include "sim/types.hpp"

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::obs
{

/** Traceable subsystems; doubles as the bit index for TraceConfig. */
enum class Component : std::uint8_t
{
    kCache = 0,  ///< CoherentSystem miss path.
    kNoc = 1,    ///< NoC paths (transaction) and router hops (flit).
    kPcie = 2,   ///< PCIe fabric transactions.
    kBridge = 3, ///< Inter-node bridge frames.
    kCore = 4,   ///< Core commit/stall events.
    kDecodeCache = 5, ///< Decode-cache fills/flushes (opt-in).
};

inline constexpr std::uint32_t kNumComponents = 6;

/** Bit for @p c in a component mask. */
constexpr std::uint32_t
componentBit(Component c)
{
    return 1u << static_cast<std::uint32_t>(c);
}

/** Every selectable component (the configure-time clamp). */
inline constexpr std::uint32_t kEveryComponent =
    (1u << kNumComponents) - 1;

/**
 * The default component mask. The decode cache is deliberately not in
 * it: its fill/flush events only exist while the cache is enabled, so
 * tracing them by default would break the contract that the trace
 * binary is byte-identical with the decode cache on or off. Opt in with
 * `components |= componentBit(Component::kDecodeCache)`.
 */
inline constexpr std::uint32_t kAllComponents =
    kEveryComponent & ~componentBit(Component::kDecodeCache);

/** What happened at a trace point. Each kind belongs to one Component. */
enum class EventKind : std::uint8_t
{
    kCacheMiss = 0,   ///< Miss-path walk (arg=line, extra=ServiceLevel).
    kCacheAtomic = 1, ///< Atomic executed at the home LLC.
    kNocPath = 2,     ///< Transaction-level NoC traversal (arg=route).
    kNocHop = 3,      ///< Flit-level head-flit router hop.
    kNocDeliver = 4,  ///< Flit-level packet ejection.
    kPcieWrite = 5,   ///< Fabric write issued (duration=one-way transit).
    kPcieRead = 6,    ///< Fabric read issued.
    kBridgeTx = 7,    ///< Encapsulated AXI frame sent (extra=valid mask).
    kBridgeRx = 8,    ///< Packet reassembled on the receive side.
    kCoreCommit = 9,  ///< Instruction retired (arg=pc, duration=cycles).
    kCoreStall = 10,  ///< Retirement took >= the configured threshold.
    kDecodeFill = 11, ///< Decode-cache fill (arg=pc).
    kDecodeFlush = 12, ///< Whole-cache flush (FENCE.I/SFENCE/restore).
};

inline constexpr std::uint32_t kNumEventKinds = 13;

/** Short stable names for exporters ("cache", "cacheMiss", ...). */
const char *componentName(Component c);
const char *kindName(EventKind kind);

/**
 * One trace record. Exactly 32 bytes, trivially copyable; the binary
 * format serializes the fields little-endian in declaration order.
 *
 * TraceEvent.flags bit 0 is "crossed a node boundary" for the kinds where
 * that applies; the remaining bits are kind-specific.
 */
struct TraceEvent
{
    Cycles cycle = 0;           ///< Virtual time the event started.
    std::uint64_t arg = 0;      ///< Address / pc / packed route.
    std::uint32_t duration = 0; ///< Cycles spanned (0 = instantaneous).
    std::uint32_t extra = 0;    ///< Kind-specific (bytes, level, mask).
    std::uint16_t node = 0;     ///< Originating node.
    std::uint16_t tile = 0;     ///< Tile/hart within the node.
    std::uint8_t component = 0; ///< Component (redundant with kind).
    std::uint8_t kind = 0;      ///< EventKind.
    std::uint8_t flags = 0;     ///< Bit 0: crossed-node.
    std::uint8_t pad = 0;
};

static_assert(sizeof(TraceEvent) == 32, "trace records are 32 bytes");

/** Component that owns @p kind's trace point. Constexpr so event()
 *  constant-folds at trace points with a literal kind. */
constexpr Component
kindComponent(EventKind kind)
{
    switch (kind) {
      case EventKind::kCacheMiss:
      case EventKind::kCacheAtomic:
        return Component::kCache;
      case EventKind::kNocPath:
      case EventKind::kNocHop:
      case EventKind::kNocDeliver:
        return Component::kNoc;
      case EventKind::kPcieWrite:
      case EventKind::kPcieRead:
        return Component::kPcie;
      case EventKind::kBridgeTx:
      case EventKind::kBridgeRx:
        return Component::kBridge;
      case EventKind::kCoreCommit:
      case EventKind::kCoreStall:
        return Component::kCore;
      case EventKind::kDecodeFill:
      case EventKind::kDecodeFlush:
        return Component::kDecodeCache;
    }
    return Component::kCache; // Unreachable for valid kinds.
}

/** Zeroed event with component/kind pre-filled for @p kind. */
constexpr TraceEvent
event(EventKind kind)
{
    TraceEvent ev;
    ev.component = static_cast<std::uint8_t>(kindComponent(kind));
    ev.kind = static_cast<std::uint8_t>(kind);
    return ev;
}

/** Flit-level packet sink id used in the tile field (mirrors the NoC's
 *  off-chip hub convention). */
inline constexpr std::uint16_t kTraceOffChip = 0xffff;

/** Tracing knobs carried by PrototypeConfig. */
struct TraceConfig
{
    bool enabled = false;
    /** Bitmask of componentBit() values; default traces everything. */
    std::uint32_t components = kAllComponents;
    /** Ring capacity per node, in events; the newest events win. */
    std::size_t ringCapacity = 1u << 16;
    /** Binary trace output path ("" = caller supplies one). */
    std::string path;
    /** Commit durations >= this also emit a kCoreStall event. */
    Cycles coreStallCycles = 8;
};

/**
 * The tracer. One per prototype; components hold the pointer returned by
 * handleFor() so a disabled tracer (or deselected component) costs a
 * single null test per trace point.
 */
class Tracer
{
  public:
    Tracer() = default;

    /** (Re)configures; drops previously recorded events. */
    void configure(const TraceConfig &cfg, std::uint32_t nodes);

    bool enabled() const { return enabled_; }
    std::uint32_t nodes() const
    {
        return static_cast<std::uint32_t>(rings_.size());
    }
    std::size_t ringCapacity() const { return capacity_; }
    Cycles coreStallCycles() const { return coreStallCycles_; }

    /** True when @p c's trace points should fire. */
    bool
    wants(Component c) const
    {
        return enabled_ && (mask_ & componentBit(c)) != 0;
    }

    /** `this` when @p c is traced, else nullptr — the cached guard that
     *  components test at every trace point. */
    Tracer *handleFor(Component c) { return wants(c) ? this : nullptr; }

    /**
     * Appends @p ev. Inside a node phase the acting node's ring is used
     * (single writer per ring); otherwise the event's own node tag picks
     * the ring (clamped). Full rings overwrite their oldest entry.
     * Inline: this is the trace-point hot path.
     */
    void
    record(const TraceEvent &ev)
    {
        if (rings_.empty())
            return;
        NodeId acting = sim::currentNode();
        std::size_t idx =
            (acting != sim::kNoNode &&
             static_cast<std::size_t>(acting) < rings_.size())
                ? acting
                : std::min<std::size_t>(ev.node, rings_.size() - 1);
        // Rings are pre-sized at configure time, so accepting an event is
        // one store plus a cursor bump, never an allocation.
        Ring &r = rings_[idx];
        r.buf[r.next] = ev;
        if (++r.next == capacity_)
            r.next = 0;
        r.total += 1;
    }

    /** Events accepted over the tracer's lifetime (including ones later
     *  overwritten). */
    std::uint64_t recorded() const;

    /** Events lost to ring overwrites, total and per node. */
    std::uint64_t dropped() const;
    std::uint64_t droppedOn(NodeId node) const;

    /** Events currently held in @p node's ring. */
    std::uint64_t heldOn(NodeId node) const;

    /** All retained events: rings concatenated in ascending node order,
     *  oldest first within each ring. */
    std::vector<TraceEvent> merged() const;

    /** Drops all recorded events, keeping the configuration. */
    void clear();

    /**
     * Serializes per-ring lifetime totals and held events (oldest first).
     * restoreState() refills each ring from index 0, which phase-shifts
     * the physical cursor but preserves merged() order exactly.
     */
    void saveState(snap::Writer &w) const;
    void restoreState(snap::Reader &r);

  private:
    struct Ring
    {
        std::vector<TraceEvent> buf; ///< Pre-sized to capacity_.
        std::size_t next = 0;        ///< Write cursor (wraps).
        std::uint64_t total = 0;     ///< Lifetime events accepted.
    };

    bool enabled_ = false;
    std::uint32_t mask_ = 0;
    std::size_t capacity_ = 0;
    Cycles coreStallCycles_ = 8;
    std::vector<Ring> rings_;
};

} // namespace smappic::obs
