/**
 * @file
 * Generic set-associative tag array with true-LRU replacement.
 *
 * Used for every cache structure in the platform: L1I/L1D, the BYOC private
 * cache (BPC), LLC slices, and the TLBs of the RISC-V core model. The array
 * tracks tags and a per-line auxiliary state word; data is kept in the
 * functional backing store, as is usual for timing-directory models.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sim/log.hpp"
#include "sim/types.hpp"

namespace smappic::snap
{
class Writer;
class Reader;
} // namespace smappic::snap

namespace smappic::cache
{

/** Result of probing or filling a CacheArray. */
struct Victim
{
    Addr line = 0;            ///< Base address of the evicted line.
    std::uint32_t state = 0;  ///< Its auxiliary state at eviction.
};

/** Set-associative array of line-granular entries. */
class CacheArray
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param ways Associativity.
     * @param line_bytes Line size (power of two).
     */
    CacheArray(std::uint64_t size_bytes, std::uint32_t ways,
               std::uint32_t line_bytes = kCacheLineBytes);

    /** True when @p addr's line is present; updates LRU on hit. */
    bool lookup(Addr addr);

    /**
     * True when @p addr's line is resident with aux state exactly
     * @p state, updating LRU as lookup() would; a miss or a state
     * mismatch mutates nothing. Single-scan fusion of
     * probe() + state() + lookup() for hit fast paths.
     */
    bool lookupIfState(Addr addr, std::uint32_t state);

    /** True when present; does not touch LRU (snoop/inspection path). */
    bool probe(Addr addr) const;

    /** Returns the aux state of a resident line. @pre probe(addr). */
    std::uint32_t state(Addr addr) const;

    /** Sets the aux state of a resident line. @pre probe(addr). */
    void setState(Addr addr, std::uint32_t state);

    /**
     * Inserts @p addr's line (must not be resident), evicting the LRU way
     * if the set is full.
     * @return The victim, if one was evicted.
     */
    std::optional<Victim> insert(Addr addr, std::uint32_t state = 0);

    /** Removes a line if present; returns its state. */
    std::optional<std::uint32_t> invalidate(Addr addr);

    /** Drops every line. */
    void flush();

    std::uint32_t sets() const { return sets_; }
    std::uint32_t ways() const { return ways_; }
    std::uint32_t lineBytes() const { return lineBytes_; }

    /** Number of resident lines (for inclusion/occupancy checks). */
    std::uint64_t occupancy() const;

    /** Invokes @p fn(line, state) for every resident line. */
    void forEachLine(
        const std::function<void(Addr, std::uint32_t)> &fn) const;

    /** Serializes the full array (tags, aux state, exact LRU order). */
    void saveState(snap::Writer &w) const;
    /** Restores into an identically shaped array (geometry-checked). */
    void restoreState(snap::Reader &r);

  private:
    struct Entry
    {
        Addr line = 0;
        std::uint32_t state = 0;
        std::uint64_t lastUse = 0;
        bool valid = false;
    };

    std::uint32_t setIndex(Addr addr) const;
    Entry *find(Addr addr);
    const Entry *find(Addr addr) const;

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint32_t lineBytes_;
    std::uint64_t useClock_ = 0;
    std::vector<Entry> entries_; ///< sets_ * ways_, set-major.
};

} // namespace smappic::cache
