#include "cache/coherent_system.hpp"

#include <algorithm>
#include <set>

#include "obs/tracer.hpp"
#include "sim/log.hpp"
#include "snap/state_io.hpp"

namespace smappic::cache
{

namespace
{

/** Request packet wire footprint: header + address flit. */
constexpr std::uint32_t kReqBytes = 16;
/** Data packet wire footprint: header + address + 8 data flits. */
constexpr std::uint32_t kDataBytes = 16 + kCacheLineBytes;

std::uint64_t
mixLine(Addr line)
{
    std::uint64_t x = line >> 6;
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return x;
}

} // namespace

CoherentSystem::CoherentSystem(const Geometry &geo, const TimingParams &timing,
                               HomingPolicy homing, sim::StatRegistry *stats)
    : geo_(geo), timing_(timing), homing_(homing), topo_(geo.tilesPerNode)
{
    fatalIf(geo.nodes == 0 || geo.tilesPerNode == 0,
            "system needs at least one node and one tile");
    fatalIf(geo.totalTiles() > 64,
            "directory sharer mask supports at most 64 tiles");

    if (stats) {
        stats_ = stats;
    } else {
        ownedStats_ = std::make_unique<sim::StatRegistry>();
        stats_ = ownedStats_.get();
    }

    std::uint32_t total = geo.totalTiles();
    l1i_.reserve(total);
    l1d_.reserve(total);
    bpc_.reserve(total);
    llc_.reserve(total);
    for (std::uint32_t g = 0; g < total; ++g) {
        l1i_.emplace_back(geo.l1iBytes, geo.l1iWays);
        l1d_.emplace_back(geo.l1dBytes, geo.l1dWays);
        bpc_.emplace_back(geo.bpcBytes, geo.bpcWays);
        llc_.emplace_back(geo.llcSliceBytes, geo.llcWays);
    }
    tileMu_ = std::make_unique<std::mutex[]>(total);
    llcServer_.assign(total, sim::QueueServer(4));
    dramServer_.assign(geo.nodes, sim::QueueServer(timing_.dramBanks));
    for (std::uint32_t n = 0; n < geo.nodes; ++n) {
        // Several encapsulated transfers are pipelined at once (credit
        // window); 4 ways keeps the next-free-time model from charging
        // phantom queueing to slightly out-of-order arrivals.
        bridgeOut_.emplace_back(timing_.bridgeLatency,
                                timing_.bridgeBytesPerCycle, 4);
        bridgeIn_.emplace_back(timing_.bridgeLatency,
                               timing_.bridgeBytesPerCycle, 4);
        pcieOut_.emplace_back(timing_.pcieOneWay(),
                              timing_.pcieBytesPerCycle, 8);
    }
}

NodeId
CoherentSystem::addrNode(Addr addr) const
{
    Addr rel = addr >= geo_.dramBase ? addr - geo_.dramBase : 0;
    return static_cast<NodeId>((rel / geo_.memPerNode) % geo_.nodes);
}

std::pair<NodeId, TileId>
CoherentSystem::homeOf(Addr addr) const
{
    Addr line = lineAlign(addr);
    switch (homing_) {
      case HomingPolicy::kAddressNode: {
          NodeId node = addrNode(line);
          auto tile = static_cast<TileId>(mixLine(line) % geo_.tilesPerNode);
          return {node, tile};
      }
      case HomingPolicy::kGlobalHash: {
          auto gid =
              static_cast<GlobalTileId>(mixLine(line) % geo_.totalTiles());
          return {nodeOf(gid), tileOf(gid)};
      }
      case HomingPolicy::kNode0: {
          auto tile = static_cast<TileId>(mixLine(line) % geo_.tilesPerNode);
          return {0, tile};
      }
      case HomingPolicy::kCoherenceDomains: {
          // Within a domain, lines home on the owning node like the
          // SMAPPIC default; the restriction acts on out-of-domain
          // requesters (see access()).
          NodeId node = addrNode(line);
          auto tile = static_cast<TileId>(mixLine(line) % geo_.tilesPerNode);
          return {node, tile};
      }
    }
    panic("unknown homing policy");
}

void
CoherentSystem::addDevice(Addr base, std::uint64_t size, GlobalTileId gid,
                          NcDevice *dev)
{
    fatalIf(dev == nullptr, "device window without a device");
    fatalIf(gid >= geo_.totalTiles(), "device attached to unknown tile");
    for (const auto &w : devices_) {
        bool disjoint = base + size <= w.base || w.base + w.size <= base;
        fatalIf(!disjoint, "device windows overlap");
    }
    devices_.push_back(DeviceWindow{base, size, gid, dev});
}

Cycles
CoherentSystem::nocPath(NodeId sn, TileId st, NodeId dn, TileId dt,
                        std::uint32_t bytes, Cycles t, bool *crossed)
{
    const Cycles start = t;
    if (sn == dn) {
        std::uint32_t hops = (dt == noc::kOffChipTile)
                                 ? topo_.hopsToOffChip(st)
                                 : topo_.hops(st, dt);
        if (crossed)
            *crossed = false;
        Cycles done = t + timing_.nocInject + hops * timing_.hopLatency;
        if (traceNoc_)
            traceNocPath(sn, st, dn, dt, bytes, start, done, false);
        return done;
    }

    // Inter-node: mesh to tile 0, northbound into the inter-node bridge,
    // AXI4 encapsulation, PCIe peer-to-peer transfer, decapsulation, mesh
    // to the destination tile (SMAPPIC section 3.1, stages 1-10).
    if (crossed)
        *crossed = true;
    stats_->counter("cs.bridge.crossings").increment();
    stats_->counter("cs.bridge.bytes").increment(bytes);

    t += timing_.nocInject + topo_.hopsToOffChip(st) * timing_.hopLatency;
    t = bridgeOut_[sn].send(t, bytes);
    t = pcieOut_[sn].send(t, bytes);
    t = bridgeIn_[dn].send(t, bytes);
    if (dt != noc::kOffChipTile)
        t += (topo_.hops(0, dt) + 1) * timing_.hopLatency;
    if (traceNoc_)
        traceNocPath(sn, st, dn, dt, bytes, start, t, true);
    return t;
}

void
CoherentSystem::setTracer(obs::Tracer *tracer)
{
    traceCache_ =
        tracer ? tracer->handleFor(obs::Component::kCache) : nullptr;
    traceNoc_ = tracer ? tracer->handleFor(obs::Component::kNoc) : nullptr;
}

void
CoherentSystem::traceNocPath(NodeId sn, TileId st, NodeId dn, TileId dt,
                             std::uint32_t bytes, Cycles start, Cycles end,
                             bool crossed)
{
    obs::TraceEvent ev = obs::event(obs::EventKind::kNocPath);
    ev.cycle = start;
    ev.duration = static_cast<std::uint32_t>(end - start);
    ev.arg = (static_cast<std::uint64_t>(sn) << 48) |
             (static_cast<std::uint64_t>(st) << 32) |
             (static_cast<std::uint64_t>(dn) << 16) |
             static_cast<std::uint64_t>(dt);
    ev.extra = bytes;
    ev.node = static_cast<std::uint16_t>(sn);
    ev.tile = static_cast<std::uint16_t>(st);
    ev.flags = crossed ? 1 : 0;
    traceNoc_->record(ev);
}

Cycles
CoherentSystem::dramAccess(NodeId node, std::uint32_t bytes, Cycles t)
{
    auto service = static_cast<Cycles>(
        static_cast<double>(bytes) / timing_.dramBytesPerCycle + 0.999999);
    if (service == 0)
        service = 1;
    auto grant = dramServer_[node].offer(t, service);
    stats_->counter("cs.dram.accesses").increment();
    return grant.done + timing_.dramLatency;
}

void
CoherentSystem::dropPrivate(Addr line, GlobalTileId gid)
{
    {
        // The recalled tile may be running its lock-free-looking hit
        // path on another worker right now; its guard orders the two.
        auto tile_guard = tileGuard(gid);
        l1d_[gid].invalidate(line);
        l1i_[gid].invalidate(line);
        bpc_[gid].invalidate(line);
    }
    maybeClearStale(line, gid);
    auto it = directory_.find(line);
    if (it == directory_.end())
        return;
    it->second.sharers &= ~(1ULL << gid);
    if (it->second.owner == static_cast<std::int32_t>(gid))
        it->second.owner = -1;
}

void
CoherentSystem::loseInvalidation(Addr line, GlobalTileId gid)
{
    // The directory forgets the copy (as if the ack arrived) but the
    // tile's arrays are left untouched: from now on the tile serves the
    // frozen pre-store image of the line.
    auto it = directory_.find(line);
    if (it != directory_.end()) {
        it->second.sharers &= ~(1ULL << gid);
        if (it->second.owner == static_cast<std::int32_t>(gid))
            it->second.owner = -1;
    }
    staleFired_ = true;
    staleVictim_ = gid;
    staleBytes_ = armedBytes_;
    stats_->counter("cs.mutation.lostInvalidations").increment();
}

Cycles
CoherentSystem::recallPrivate(Addr line, NodeId hn, TileId ht, Cycles t,
                              bool keep_data_in_llc)
{
    DirEntry &dir = dirEntry(line);
    Cycles last_ack = t;

    auto round_trip = [&](GlobalTileId g, std::uint32_t resp_bytes) {
        Cycles tr = nocPath(hn, ht, nodeOf(g), tileOf(g), kReqBytes, t);
        tr += timing_.privLatency;
        tr = nocPath(nodeOf(g), tileOf(g), hn, ht, resp_bytes, tr);
        last_ack = std::max(last_ack, tr);
    };

    if (dir.owner >= 0) {
        auto g = static_cast<GlobalTileId>(dir.owner);
        round_trip(g, kDataBytes); // Owner returns dirty data.
        if (keep_data_in_llc)
            dir.dirty = true;
        dropPrivate(line, g);
        stats_->counter("cs.dir.ownerRecalls").increment();
    }
    std::uint64_t sharers = dir.sharers;
    while (sharers) {
        auto g = static_cast<GlobalTileId>(__builtin_ctzll(sharers));
        sharers &= sharers - 1;
        round_trip(g, kReqBytes); // Clean sharers ack without data.
        if (shouldLoseInvalidation(line))
            loseInvalidation(line, g);
        else
            dropPrivate(line, g);
        stats_->counter("cs.dir.invalidations").increment();
    }
    return last_ack;
}

Cycles
CoherentSystem::llcEnsureResident(Addr line, NodeId hn, TileId ht, Cycles t,
                                  bool &from_dram)
{
    DirEntry &dir = dirEntry(line);
    if (dir.inLlc) {
        from_dram = false;
        return t;
    }

    from_dram = true;
    NodeId dram_node = addrNode(line);
    if (dram_node != hn) {
        // Only possible under kGlobalHash homing: the home slice and the
        // backing DRAM live on different nodes, so the fill crosses again.
        t = nocPath(hn, ht, dram_node, noc::kOffChipTile, kReqBytes, t);
        t = dramAccess(dram_node, kCacheLineBytes, t);
        t = nocPath(dram_node, noc::kOffChipTile, hn, ht, kDataBytes, t);
    } else {
        // Home slice talks to its node-local memory controller through the
        // chipset (off-chip port).
        t += (topo_.hopsToOffChip(ht)) * timing_.hopLatency;
        t = dramAccess(hn, kCacheLineBytes, t);
        t += (topo_.hopsToOffChip(ht)) * timing_.hopLatency;
    }

    GlobalTileId home_gid = gidOf(hn, ht);
    auto victim = llc_[home_gid].insert(line, 0);
    if (victim) {
        // Inclusive LLC: recall every private copy of the victim line and
        // write it back if dirty anywhere.
        Addr vline = victim->line;
        auto vit = directory_.find(vline);
        bool dirty = (victim->state & 1) != 0;
        if (vit != directory_.end()) {
            DirEntry &vdir = vit->second;
            if (vdir.owner >= 0)
                dirty = true;
            std::uint64_t members =
                vdir.sharers |
                (vdir.owner >= 0 ? (1ULL << vdir.owner) : 0);
            while (members) {
                auto g =
                    static_cast<GlobalTileId>(__builtin_ctzll(members));
                members &= members - 1;
                dropPrivate(vline, g);
            }
            directory_.erase(vit);
        }
        if (dirty) {
            NodeId vnode = addrNode(vline);
            dramAccess(vnode, kCacheLineBytes, t); // Async writeback.
            stats_->counter("cs.llc.writebacks").increment();
        }
        t += timing_.llcEvictPenalty;
        stats_->counter("cs.llc.evictions").increment();
    }

    DirEntry &fresh = dirEntry(line);
    fresh.inLlc = true;
    fresh.dirty = false;
    stats_->counter("cs.llc.fills").increment();
    return t;
}

void
CoherentSystem::privateFill(Addr line, GlobalTileId gid, std::uint32_t state,
                            bool fill_l1i, Cycles t)
{
    auto victim = bpc_[gid].insert(line, state);
    if (victim) {
        Addr vline = victim->line;
        // Keep L1 inclusive in the BPC.
        l1d_[gid].invalidate(vline);
        l1i_[gid].invalidate(vline);

        auto vit = directory_.find(vline);
        if (vit == directory_.end()) {
            // Only reachable when a test mutation orphaned this copy
            // (the directory dropped it without the tile noticing and
            // the entry was since reclaimed); silently complete the
            // eviction — flagging the damage is the checker's job.
            panicIf(mutation_ == TestMutation::kNone,
                    "BPC line without a directory entry");
            maybeClearStale(vline, gid);
        } else {
            DirEntry &vdir = vit->second;
            auto [vhn, vht] = homeOf(vline);
            if (victim->state == kModified) {
                // Dirty victim: write back to the home LLC slice. The
                // writeback is buffered, so it consumes path bandwidth
                // but does not delay the current transaction.
                nocPath(nodeOf(gid), tileOf(gid), vhn, vht, kDataBytes, t);
                panicIf(vdir.owner != static_cast<std::int32_t>(gid) &&
                            mutation_ == TestMutation::kNone,
                        "dirty victim not owned by evicting tile");
                if (vdir.owner == static_cast<std::int32_t>(gid))
                    vdir.owner = -1;
                vdir.dirty = true;
                stats_->counter("cs.bpc.writebacks").increment();
            } else {
                // Clean victim: notify the directory (precise tracking).
                vdir.sharers &= ~(1ULL << gid);
                stats_->counter("cs.bpc.cleanEvicts").increment();
            }
            maybeClearStale(vline, gid);
        }
    }
    maybeClearStale(line, gid); // A proper refill ends any stale episode.

    if (fill_l1i) {
        l1i_[gid].insert(line, kShared);
    } else {
        if (!l1d_[gid].probe(line))
            l1d_[gid].insert(line, kShared);
    }
}

AccessResult
CoherentSystem::deviceAccess(const DeviceWindow &w, GlobalTileId gid,
                             Addr addr, AccessType type, std::uint32_t bytes,
                             Cycles now)
{
    auto guard = parallelGuard();
    bool crossed = false;
    Cycles t = now + timing_.l1MissDetect;
    t = nocPath(nodeOf(gid), tileOf(gid), nodeOf(w.gid), tileOf(w.gid),
                kReqBytes + (type == AccessType::kNcStore ? bytes : 0), t,
                &crossed);
    Cycles service = timing_.deviceLatency;
    if (type == AccessType::kNcStore || type == AccessType::kStore ||
        type == AccessType::kAtomic) {
        std::uint64_t value = memory_.load(addr, std::min(bytes, 8u));
        w.dev->ncStore(addr - w.base, bytes, value, t, service);
        stats_->counter("cs.device.stores").increment();
    } else {
        std::uint64_t value = w.dev->ncLoad(addr - w.base, bytes, t, service);
        memory_.store(addr, std::min(bytes, 8u), value);
        stats_->counter("cs.device.loads").increment();
    }
    t += service;
    t = nocPath(nodeOf(w.gid), tileOf(w.gid), nodeOf(gid), tileOf(gid),
                kReqBytes + (type == AccessType::kNcStore ? 0 : bytes), t);
    return AccessResult{t - now, ServiceLevel::kDevice, crossed};
}

bool
CoherentSystem::fetchFastHit(GlobalTileId gid, Addr addr, Cycles &lat)
{
    // Any armed test mutation routes everything down the slow path: the
    // stale-copy bookkeeping (stalePeek) lives there.
    if (mutation_ != TestMutation::kNone)
        return false;
    // Same guard the slow hit path holds: a peer's recall can be
    // invalidating this tile's lines on another worker (see tileGuard).
    auto tile_guard = tileGuard(gid);
    // lookup() touches the LRU on a hit — the identical (checkpointed)
    // side effect the slow path's hit branch performs — and mutates
    // nothing on a miss.
    if (!l1i_[gid].lookup(addr))
        return false;
    if (parallel_) {
        stats_->counter("cs.l1.hits").increment();
    } else {
        if (l1HitsSerial_ == nullptr)
            l1HitsSerial_ = &stats_->counter("cs.l1.hits");
        l1HitsSerial_->increment();
    }
    lat = timing_.l1HitLatency;
    return true;
}

bool
CoherentSystem::loadFastHit(GlobalTileId gid, Addr addr, Cycles &lat)
{
    // Bail conditions mirror fetchFastHit, plus the observer: armed
    // mutations need the slow path's stale-copy bookkeeping, and an
    // attached coherence checker contracts to see full transitions.
    // (Hit branches never notify observers even on the slow path, so
    // the observer bail is belt and braces, not a parity requirement.)
    if (mutation_ != TestMutation::kNone || observer_ != nullptr)
        return false;
    // Same guard the slow hit path holds: a peer's recall can be
    // invalidating this tile's lines on another worker (see tileGuard).
    auto tile_guard = tileGuard(gid);
    // lookup() touches the LRU on a hit — the identical (checkpointed)
    // side effect the slow path's L1 hit branch performs — and mutates
    // nothing on a miss.
    if (!l1d_[gid].lookup(addr))
        return false;
    if (parallel_) {
        stats_->counter("cs.l1.hits").increment();
    } else {
        if (l1HitsSerial_ == nullptr)
            l1HitsSerial_ = &stats_->counter("cs.l1.hits");
        l1HitsSerial_->increment();
    }
    lat = timing_.l1HitLatency;
    return true;
}

bool
CoherentSystem::storeFastHit(GlobalTileId gid, Addr addr, Cycles &lat)
{
    if (mutation_ != TestMutation::kNone || observer_ != nullptr)
        return false;
    Addr line = lineAlign(addr);
    // Same guard the slow hit path holds: a peer's recall can be
    // invalidating this tile's lines on another worker (see tileGuard).
    auto tile_guard = tileGuard(gid);
    // One scan settles presence + M state and performs the slow path's
    // exact BPC LRU touch; a miss or non-M state mutates nothing. The
    // discarded-result lookup matches the slow path's probe-then-touch
    // pair: LRU moves only when the line is resident.
    if (!bpc_[gid].lookupIfState(line, kModified))
        return false;
    l1d_[gid].lookup(line);
    if (parallel_) {
        stats_->counter("cs.l1.storeHits").increment();
    } else {
        if (l1StoreHitsSerial_ == nullptr)
            l1StoreHitsSerial_ = &stats_->counter("cs.l1.storeHits");
        l1StoreHitsSerial_->increment();
    }
    lat = timing_.l1HitLatency;
    return true;
}

AccessResult
CoherentSystem::access(GlobalTileId gid, Addr addr, AccessType type,
                       std::uint32_t bytes, Cycles now)
{
    panicIf(gid >= geo_.totalTiles(), "access from unknown tile");
    Addr line = lineAlign(addr);
    NodeId my_node = nodeOf(gid);
    TileId my_tile = tileOf(gid);

    // Device windows capture all access types (BYOC treats device space as
    // non-cacheable).
    for (const auto &w : devices_) {
        if (addr >= w.base && addr - w.base < w.size)
            return deviceAccess(w, gid, addr, type, bytes, now);
    }

    // Coherence Domain Restriction: a requester outside the line's
    // domain may not cache it; its loads/stores become uncached remote
    // memory operations.
    if (homing_ == HomingPolicy::kCoherenceDomains &&
        addrNode(addr) != my_node &&
        (type == AccessType::kLoad || type == AccessType::kStore ||
         type == AccessType::kFetch || type == AccessType::kAtomic)) {
        stats_->counter("cs.cdr.uncachedRemote").increment();
        type = (type == AccessType::kStore || type == AccessType::kAtomic)
                   ? AccessType::kNcStore
                   : AccessType::kNcLoad;
    }

    // Explicit NC accesses to plain memory go straight to the owning
    // node's memory controller (used by the virtual SD card).
    if (type == AccessType::kNcLoad || type == AccessType::kNcStore) {
        auto guard = parallelGuard();
        bool crossed = false;
        NodeId dn = addrNode(addr);
        Cycles t = now + timing_.l1MissDetect;
        t = nocPath(my_node, my_tile, dn, noc::kOffChipTile,
                    kReqBytes + (type == AccessType::kNcStore ? bytes : 0),
                    t, &crossed);
        t = dramAccess(dn, bytes, t);
        t = nocPath(dn, noc::kOffChipTile, my_node, my_tile,
                    kReqBytes + (type == AccessType::kNcLoad ? bytes : 0), t);
        stats_->counter("cs.nc.accesses").increment();
        return AccessResult{
            t - now,
            dn == my_node ? ServiceLevel::kDramLocal
                          : ServiceLevel::kDramRemote,
            crossed};
    }

    CacheArray &l1 = (type == AccessType::kFetch) ? l1i_[gid] : l1d_[gid];

    // Hit paths hold only this tile's guard: a peer's miss path can be
    // recalling lines from these arrays concurrently (under mu_ plus
    // this same tile guard). Released before the miss path takes mu_ —
    // the lock order is strictly mu_ -> tile.
    {
        auto tile_guard = tileGuard(gid);

        // --- L1 hit path ---
        if (type == AccessType::kLoad || type == AccessType::kFetch) {
            if (l1.lookup(addr)) {
                stats_->counter("cs.l1.hits").increment();
                AccessResult res{timing_.l1HitLatency, ServiceLevel::kL1,
                                 false};
                if (mutation_ != TestMutation::kNone)
                    res.staleData = stalePeek(gid, line, type);
                return res;
            }
        } else if (type == AccessType::kStore) {
            // Write-through L1: a store completes at L1 speed only when
            // the BPC already holds the line in M (the store buffer
            // hides the write-through).
            if (bpc_[gid].probe(line) &&
                bpc_[gid].state(line) == kModified) {
                bpc_[gid].lookup(line);
                if (l1.probe(line))
                    l1.lookup(line);
                stats_->counter("cs.l1.storeHits").increment();
                return AccessResult{timing_.l1HitLatency,
                                    ServiceLevel::kL1, false};
            }
        }

        // --- BPC hit path (loads/fetches with at least S) ---
        if ((type == AccessType::kLoad || type == AccessType::kFetch) &&
            bpc_[gid].lookup(line)) {
            if (!l1.probe(line))
                l1.insert(line, kShared);
            stats_->counter("cs.bpc.hits").increment();
            AccessResult res{timing_.l1MissDetect + timing_.privLatency,
                             ServiceLevel::kPrivate, false};
            if (mutation_ != TestMutation::kNone)
                res.staleData = stalePeek(gid, line, type);
            return res;
        }
    }

    // --- Miss: transaction to the home LLC slice ---
    // The miss path touches cross-node state (directory, home LLC/DRAM
    // servers, bridge shapers, peer private arrays on recalls), so it is
    // one critical section under the phased engine.
    auto guard = parallelGuard();
    stats_->counter("cs.bpc.misses").increment();
    auto [hn, ht] = homeOf(line);
    GlobalTileId home_gid = gidOf(hn, ht);
    bool crossed = false;
    bool upgrade = type == AccessType::kStore && bpc_[gid].probe(line);

    Cycles t = now + timing_.l1MissDetect + timing_.privLatency;
    t = nocPath(my_node, my_tile, hn, ht, kReqBytes, t, &crossed);
    auto grant = llcServer_[home_gid].offer(t, timing_.llcOccupancy);
    t = grant.start + timing_.llcLatency;

    DirEntry &dir = dirEntry(line);
    bool from_dram = false;

    switch (type) {
      case AccessType::kLoad:
      case AccessType::kFetch: {
          panicIf(dir.owner == static_cast<std::int32_t>(gid),
                  "load miss while owning the line");
          if (dir.owner >= 0) {
              // Owner forward: downgrade M -> S and pull dirty data into
              // the LLC before responding.
              auto og = static_cast<GlobalTileId>(dir.owner);
              t = nocPath(hn, ht, nodeOf(og), tileOf(og), kReqBytes, t);
              t += timing_.privLatency;
              t = nocPath(nodeOf(og), tileOf(og), hn, ht, kDataBytes, t);
              {
                  auto tile_guard = tileGuard(og);
                  bpc_[og].setState(line, kShared);
              }
              dir.sharers |= 1ULL << og;
              dir.owner = -1;
              dir.dirty = true;
              stats_->counter("cs.dir.downgrades").increment();
          } else {
              t = llcEnsureResident(line, hn, ht, t, from_dram);
          }
          t = nocPath(hn, ht, my_node, my_tile, kDataBytes, t);
          t += timing_.privFillLatency;
          privateFill(line, gid, kShared, type == AccessType::kFetch, t);
          dirEntry(line).sharers |= 1ULL << gid;
          break;
      }
      case AccessType::kStore: {
          if (dir.owner >= 0 || (dir.sharers & ~(1ULL << gid)) != 0) {
              Cycles acks = recallPrivateExcept(line, hn, ht, t, gid);
              t = std::max(t, acks);
          }
          t = llcEnsureResident(line, hn, ht, t, from_dram);
          std::uint32_t resp = upgrade ? kReqBytes : kDataBytes;
          t = nocPath(hn, ht, my_node, my_tile, resp, t);
          t += timing_.privFillLatency;
          bool drop_owner = mutation_ == TestMutation::kDropOwnerUpdate &&
                            line == mutationLine_;
          DirEntry &d = dirEntry(line);
          d.sharers &= ~(1ULL << gid);
          if (drop_owner)
              stats_->counter("cs.mutation.droppedOwnerUpdates")
                  .increment();
          else
              d.owner = static_cast<std::int32_t>(gid);
          if (bpc_[gid].probe(line)) {
              bpc_[gid].setState(line, kModified);
              bpc_[gid].lookup(line);
              maybeClearStale(line, gid); // Upgrade re-acquires the line.
          } else {
              privateFill(line, gid, kModified, false, t);
              // privateFill does not touch dir ownership; re-assert it.
              if (!drop_owner)
                  dirEntry(line).owner = static_cast<std::int32_t>(gid);
          }
          if (mutation_ != TestMutation::kNone && line == mutationLine_ &&
              !staleFired_) {
              // Keep the armed image one store behind: the functional
              // memory already holds this store's data, so refreshing
              // now captures "everything up to and including this store"
              // — exactly what a later lost invalidation must freeze.
              memory_.readBytes(mutationLine_, armedBytes_.data(),
                                kCacheLineBytes);
          }
          stats_->counter("cs.dir.storeMisses").increment();
          break;
      }
      case AccessType::kAtomic: {
          // Atomics execute at the home LLC slice; every private copy
          // (including the requester's) is recalled first.
          Cycles acks = recallPrivate(line, hn, ht, t, true);
          t = std::max(t, acks);
          t = llcEnsureResident(line, hn, ht, t, from_dram);
          DirEntry &d = dirEntry(line);
          d.dirty = true;
          t = nocPath(hn, ht, my_node, my_tile, kReqBytes + 8, t);
          stats_->counter("cs.atomics").increment();
          break;
      }
      default:
        panic("unreachable access type");
    }

    ServiceLevel level;
    if (from_dram) {
        level = addrNode(line) == my_node ? ServiceLevel::kDramLocal
                                          : ServiceLevel::kDramRemote;
    } else {
        level = hn == my_node ? ServiceLevel::kLlcLocal
                              : ServiceLevel::kLlcRemote;
    }
    switch (level) {
      case ServiceLevel::kLlcLocal:
        stats_->counter("cs.serviced.llcLocal").increment();
        break;
      case ServiceLevel::kLlcRemote:
        stats_->counter("cs.serviced.llcRemote").increment();
        break;
      case ServiceLevel::kDramLocal:
        stats_->counter("cs.serviced.dramLocal").increment();
        break;
      case ServiceLevel::kDramRemote:
        stats_->counter("cs.serviced.dramRemote").increment();
        break;
      default:
        break;
    }
    stats_->summaryStat("cs.missLatency").sample(
        static_cast<double>(t - now));
    if (traceCache_) {
        obs::TraceEvent ev =
            obs::event(type == AccessType::kAtomic
                           ? obs::EventKind::kCacheAtomic
                           : obs::EventKind::kCacheMiss);
        ev.cycle = now;
        ev.duration = static_cast<std::uint32_t>(t - now);
        ev.arg = line;
        ev.extra = static_cast<std::uint32_t>(level);
        ev.node = static_cast<std::uint16_t>(my_node);
        ev.tile = static_cast<std::uint16_t>(my_tile);
        ev.flags = static_cast<std::uint8_t>(
            (crossed ? 1 : 0) |
            (type == AccessType::kStore ? 2 : 0));
        traceCache_->record(ev);
    }
    if (observer_) {
        CoherenceEventKind kind =
            type == AccessType::kStore ? CoherenceEventKind::kStoreMiss
            : type == AccessType::kAtomic ? CoherenceEventKind::kAtomic
                                          : CoherenceEventKind::kLoadMiss;
        notify(kind, line, gid, now);
    }
    return AccessResult{t - now, level, crossed};
}

Cycles
CoherentSystem::recallPrivateExcept(Addr line, NodeId hn, TileId ht, Cycles t,
                                    GlobalTileId except)
{
    DirEntry &dir = dirEntry(line);
    Cycles last_ack = t;

    auto round_trip = [&](GlobalTileId g, std::uint32_t resp_bytes) {
        Cycles tr = nocPath(hn, ht, nodeOf(g), tileOf(g), kReqBytes, t);
        tr += timing_.privLatency;
        tr = nocPath(nodeOf(g), tileOf(g), hn, ht, resp_bytes, tr);
        last_ack = std::max(last_ack, tr);
    };

    if (dir.owner >= 0 &&
        dir.owner != static_cast<std::int32_t>(except)) {
        auto g = static_cast<GlobalTileId>(dir.owner);
        round_trip(g, kDataBytes);
        dir.dirty = true;
        dropPrivate(line, g);
        stats_->counter("cs.dir.ownerRecalls").increment();
    }
    std::uint64_t sharers = dir.sharers & ~(1ULL << except);
    while (sharers) {
        auto g = static_cast<GlobalTileId>(__builtin_ctzll(sharers));
        sharers &= sharers - 1;
        round_trip(g, kReqBytes);
        if (shouldLoseInvalidation(line))
            loseInvalidation(line, g);
        else
            dropPrivate(line, g);
        stats_->counter("cs.dir.invalidations").increment();
    }
    return last_ack;
}

void
CoherentSystem::flushPrivate(GlobalTileId gid)
{
    auto guard = parallelGuard();
    panicIf(gid >= geo_.totalTiles(), "flushPrivate of unknown tile");
    std::vector<Addr> lines;
    bpc_[gid].forEachLine(
        [&](Addr line, std::uint32_t) { lines.push_back(line); });
    for (Addr line : lines) {
        auto it = directory_.find(line);
        if (it != directory_.end() &&
            it->second.owner == static_cast<std::int32_t>(gid)) {
            it->second.dirty = true; // Writeback lands in the home LLC.
        }
        dropPrivate(line, gid);
        notify(CoherenceEventKind::kFlush, line, gid, 0);
    }
}

void
CoherentSystem::setTestMutation(TestMutation mutation, Addr line)
{
    mutation_ = mutation;
    mutationLine_ = lineAlign(line);
    staleFired_ = false;
    if (mutation != TestMutation::kNone)
        memory_.readBytes(mutationLine_, armedBytes_.data(),
                          kCacheLineBytes);
}

LineView
CoherentSystem::inspectLine(Addr addr) const
{
    Addr line = lineAlign(addr);
    LineView v;
    auto [hn, ht] = homeOf(line);
    v.homeNode = hn;
    v.homeTile = ht;
    auto it = directory_.find(line);
    if (it != directory_.end()) {
        v.hasDirEntry = true;
        v.sharers = it->second.sharers;
        v.owner = it->second.owner;
        v.inLlc = it->second.inLlc;
        v.dirty = it->second.dirty;
    }
    v.homeSliceHolds = llc_[gidOf(hn, ht)].probe(line);
    v.tiles.resize(geo_.totalTiles());
    for (std::uint32_t g = 0; g < geo_.totalTiles(); ++g) {
        TileLineView &t = v.tiles[g];
        t.inL1d = l1d_[g].probe(line);
        t.inL1i = l1i_[g].probe(line);
        t.inBpc = bpc_[g].probe(line);
        t.bpcState = t.inBpc ? bpc_[g].state(line) : 0;
    }
    return v;
}

void
CoherentSystem::flushCaches()
{
    for (auto &c : l1i_)
        c.flush();
    for (auto &c : l1d_)
        c.flush();
    for (auto &c : bpc_)
        c.flush();
    for (auto &c : llc_)
        c.flush();
    directory_.clear();
}

void
CoherentSystem::forEachKnownLine(const std::function<void(Addr)> &fn) const
{
    std::set<Addr> lines;
    for (const auto &[line, dir] : directory_)
        lines.insert(line);
    auto collect = [&](const CacheArray &arr) {
        arr.forEachLine(
            [&](Addr line, std::uint32_t) { lines.insert(line); });
    };
    for (std::uint32_t g = 0; g < geo_.totalTiles(); ++g) {
        collect(l1i_[g]);
        collect(l1d_[g]);
        collect(bpc_[g]);
        collect(llc_[g]);
    }
    for (Addr line : lines)
        fn(line);
}

bool
CoherentSystem::checkInclusion() const
{
    for (std::uint32_t g = 0; g < geo_.totalTiles(); ++g) {
        bool ok = true;
        l1d_[g].forEachLine([&](Addr line, std::uint32_t) {
            if (!bpc_[g].probe(line))
                ok = false;
        });
        l1i_[g].forEachLine([&](Addr line, std::uint32_t) {
            if (!bpc_[g].probe(line))
                ok = false;
        });
        if (!ok)
            return false;
    }
    return true;
}

bool
CoherentSystem::checkDirectory() const
{
    // Expected membership per tile from the directory.
    std::vector<std::set<Addr>> expected(geo_.totalTiles());
    for (const auto &[line, dir] : directory_) {
        if (dir.owner >= 0) {
            // An owned line must have no other sharers.
            if ((dir.sharers & ~(1ULL << dir.owner)) != 0)
                return false;
            expected[static_cast<std::size_t>(dir.owner)].insert(line);
        }
        std::uint64_t sharers = dir.sharers;
        while (sharers) {
            auto g = static_cast<GlobalTileId>(__builtin_ctzll(sharers));
            sharers &= sharers - 1;
            if (dir.owner == static_cast<std::int32_t>(g)) {
                continue;
            }
            expected[g].insert(line);
        }
        // Private copies require LLC residency (inclusive hierarchy).
        if ((dir.sharers != 0 || dir.owner >= 0) && !dir.inLlc)
            return false;
    }

    for (std::uint32_t g = 0; g < geo_.totalTiles(); ++g) {
        std::set<Addr> actual;
        bpc_[g].forEachLine(
            [&](Addr line, std::uint32_t) { actual.insert(line); });
        if (actual != expected[g])
            return false;
    }
    return true;
}

void
CoherentSystem::saveState(snap::Writer &w) const
{
    w.u32(geo_.nodes);
    w.u32(geo_.tilesPerNode);

    // Directory, sorted by line so the payload is container-order free.
    std::vector<Addr> lines;
    lines.reserve(directory_.size());
    for (const auto &[line, entry] : directory_)
        lines.push_back(line);
    std::sort(lines.begin(), lines.end());
    w.u64(lines.size());
    for (Addr line : lines) {
        const DirEntry &d = directory_.at(line);
        w.u64(line);
        w.u64(d.sharers);
        w.u32(static_cast<std::uint32_t>(d.owner));
        w.boolean(d.inLlc);
        w.boolean(d.dirty);
    }

    for (std::uint32_t g = 0; g < geo_.totalTiles(); ++g) {
        l1i_[g].saveState(w);
        l1d_[g].saveState(w);
        bpc_[g].saveState(w);
        llc_[g].saveState(w);
        saveServer(w, llcServer_[g]);
    }
    for (std::uint32_t n = 0; n < geo_.nodes; ++n) {
        saveServer(w, dramServer_[n]);
        saveShaper(w, bridgeOut_[n]);
        saveShaper(w, bridgeIn_[n]);
        saveShaper(w, pcieOut_[n]);
    }
}

void
CoherentSystem::restoreState(snap::Reader &r)
{
    std::uint32_t nodes = r.u32();
    std::uint32_t tiles = r.u32();
    fatalIf(nodes != geo_.nodes || tiles != geo_.tilesPerNode,
            strfmt("checkpoint geometry %ux%u does not match the live "
                   "system's %ux%u",
                   nodes, tiles, geo_.nodes, geo_.tilesPerNode));

    directory_.clear();
    std::uint64_t dir_count = r.u64();
    directory_.reserve(dir_count);
    for (std::uint64_t i = 0; i < dir_count; ++i) {
        Addr line = r.u64();
        DirEntry &d = directory_[line];
        d.sharers = r.u64();
        d.owner = static_cast<std::int32_t>(r.u32());
        d.inLlc = r.boolean();
        d.dirty = r.boolean();
    }

    for (std::uint32_t g = 0; g < geo_.totalTiles(); ++g) {
        l1i_[g].restoreState(r);
        l1d_[g].restoreState(r);
        bpc_[g].restoreState(r);
        llc_[g].restoreState(r);
        restoreServer(r, llcServer_[g]);
    }
    for (std::uint32_t n = 0; n < geo_.nodes; ++n) {
        restoreServer(r, dramServer_[n]);
        restoreShaper(r, bridgeOut_[n]);
        restoreShaper(r, bridgeIn_[n]);
        restoreShaper(r, pcieOut_[n]);
    }
}

} // namespace smappic::cache
