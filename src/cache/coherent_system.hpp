/**
 * @file
 * Transaction-level model of the BYOC coherent memory system as configured
 * by SMAPPIC: per-tile private caches (L1I/L1D + BPC), a distributed shared
 * LLC with a precise MESI-style directory, SMAPPIC's all-node line homing,
 * per-node NoC meshes, and the inter-node bridge + PCIe path for remote
 * transactions.
 *
 * Every memory access walks the real protocol state machines (fills,
 * invalidations, owner forwards, inclusive-LLC recalls) and accumulates
 * latency from calibrated pipeline constants plus queueing at shared
 * resources (LLC slices, DRAM channels, bridge/PCIe links). The calibration
 * targets the paper's measured numbers: ~100-cycle intra-node and ~250-cycle
 * inter-node round trips (Fig. 7) with an 80-cycle DRAM latency and a
 * 125-cycle PCIe round trip (Table 2).
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hpp"
#include "mem/main_memory.hpp"
#include "noc/topology.hpp"
#include "sim/server.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"

namespace smappic::obs
{
class Tracer;
}

namespace smappic::cache
{

/** Kind of memory operation issued by a core or accelerator. */
enum class AccessType : std::uint8_t
{
    kLoad,    ///< Cacheable read.
    kStore,   ///< Cacheable write.
    kAtomic,  ///< Atomic read-modify-write (performed at the home LLC).
    kFetch,   ///< Instruction fetch.
    kNcLoad,  ///< Non-cacheable read (devices, accelerator FIFOs).
    kNcStore, ///< Non-cacheable write.
};

/** Where an access was ultimately serviced (for stats and tests). */
enum class ServiceLevel : std::uint8_t
{
    kL1,         ///< L1I/L1D hit.
    kPrivate,    ///< BPC hit.
    kLlcLocal,   ///< Home LLC slice on the requester's node.
    kLlcRemote,  ///< Home LLC slice on another node.
    kDramLocal,  ///< Missed LLC; DRAM on the requester's node.
    kDramRemote, ///< Missed LLC; DRAM on another node.
    kDevice,     ///< Non-cacheable device window.
};

/** Line-homing policies selectable in SMAPPIC. */
enum class HomingPolicy : std::uint8_t
{
    /**
     * SMAPPIC default: the home node is the node whose DRAM backs the
     * address; the home tile within that node is a line hash. Works out of
     * the box with OS NUMA support (the device tree exposes per-node
     * memory ranges).
     */
    kAddressNode,
    /** Literal global hash across every tile of every node. */
    kGlobalHash,
    /** Everything homed on node 0 (single-home baseline/ablation). */
    kNode0,
    /**
     * Coherence Domain Restriction (Fu et al., MICRO'15): the mechanism
     * BYOC originally required for multi-chip operation and that
     * SMAPPIC's homing change replaces. Each node is a coherence domain;
     * lines are cacheable only inside their own node's domain, and
     * accesses from other nodes bypass the caches as uncached remote
     * operations (the hardware/software burden the paper's "works out of
     * the box" claim contrasts against).
     */
    kCoherenceDomains,
};

/** Geometry of the prototyped system (Table 2 defaults). */
struct Geometry
{
    std::uint32_t nodes = 1;
    std::uint32_t tilesPerNode = 1;
    Addr dramBase = 0;                      ///< Start of DRAM addressing.
    std::uint64_t memPerNode = 16ULL << 30; ///< One F1 DRAM channel.

    std::uint64_t l1iBytes = 16 << 10;
    std::uint32_t l1iWays = 4;
    std::uint64_t l1dBytes = 8 << 10;
    std::uint32_t l1dWays = 4;
    std::uint64_t bpcBytes = 8 << 10;
    std::uint32_t bpcWays = 4;
    std::uint64_t llcSliceBytes = 64 << 10;
    std::uint32_t llcWays = 4;

    std::uint32_t totalTiles() const { return nodes * tilesPerNode; }
};

/**
 * Latency/bandwidth calibration. Defaults reproduce the paper's measured
 * characteristics at 100 MHz (see file comment).
 */
struct TimingParams
{
    Cycles l1HitLatency = 1;
    Cycles l1MissDetect = 2;
    Cycles privLatency = 8;      ///< BPC lookup/response.
    Cycles privFillLatency = 8;  ///< Fill into BPC + L1 + load-to-use.
    Cycles nocInject = 4;        ///< Serializer + first router.
    Cycles hopLatency = 3;       ///< Per mesh hop (router + link).
    Cycles llcLatency = 60;      ///< LLC pipeline incl. directory.
    Cycles llcOccupancy = 1;     ///< Pipelined slice: 1 req/cycle.
    Cycles llcEvictPenalty = 12; ///< Inclusive-LLC recall overhead.
    Cycles dramLatency = 80;     ///< Table 2.
    /** DDR4-2133 moves ~17 GB/s = ~170 B per 100 MHz target cycle; FPGA
     *  prototypes are latency- not bandwidth-bound (the cores are slow
     *  relative to the memory), which Fig 9's trends depend on. */
    double dramBytesPerCycle = 160.0;
    std::uint32_t dramBanks = 16; ///< DDR4 bank-level parallelism.
    Cycles bridgeLatency = 4;    ///< NoC<->AXI4 (de)encapsulation.
    /** One 3-flit AXI write per cycle through the bridge. */
    double bridgeBytesPerCycle = 24.0;
    Cycles pcieRtt = 125;        ///< Table 2 inter-node round trip.
    /** PCIe Gen3 x16 is ~15.75 GB/s (~160 B/cycle at 100 MHz); the
     *  encapsulation overhead brings the effective rate down. */
    double pcieBytesPerCycle = 64.0;
    Cycles deviceLatency = 8;    ///< Default NC device service time.

    Cycles pcieOneWay() const { return (pcieRtt + 1) / 2; }
};

/** Outcome of one timed access. */
struct AccessResult
{
    Cycles latency = 0;
    ServiceLevel level = ServiceLevel::kL1;
    bool crossedNode = false;
    /**
     * Non-null only when a test mutation (see TestMutation) left this
     * tile with a stale private copy: points at the 64-byte line image
     * the tile still sees. Callers that carry data (the core ports) must
     * read from it instead of the up-to-date functional memory.
     */
    const std::uint8_t *staleData = nullptr;
};

/** Protocol-level transition kinds reported to a CoherenceObserver. */
enum class CoherenceEventKind : std::uint8_t
{
    kLoadMiss,  ///< Load/fetch serviced beyond the private hierarchy.
    kStoreMiss, ///< Store acquiring ownership (miss or S->M upgrade).
    kAtomic,    ///< Atomic executed at the home LLC slice.
    kFlush,     ///< flushPrivate() completed for a tile.
};

/** One protocol state transition, as seen by an observer. */
struct CoherenceEvent
{
    CoherenceEventKind kind;
    Addr line;        ///< Line the transition acted on.
    GlobalTileId gid; ///< Requesting (or flushed) tile.
    Cycles now;       ///< Virtual time the request was issued.
};

/**
 * Observer hooked into CoherentSystem: notified after every protocol
 * state transition (miss-path transactions and flushes; pure hits change
 * no protocol state). Notifications run inside the system's shared-state
 * critical section under the phased engine, so observers may inspect
 * directory/cache state without extra locking. Null observer = zero cost
 * beyond one pointer test per transition.
 */
class CoherenceObserver
{
  public:
    virtual ~CoherenceObserver() = default;
    virtual void onEvent(const CoherenceEvent &ev) = 0;
};

/** One tile's view of a line (for invariant checkers). */
struct TileLineView
{
    bool inL1d = false;
    bool inL1i = false;
    bool inBpc = false;
    std::uint32_t bpcState = 0; ///< kLineShared/kLineModified when inBpc.
};

/** Full cross-cutting snapshot of one line's coherence state. */
struct LineView
{
    bool hasDirEntry = false;
    std::uint64_t sharers = 0; ///< Directory sharer mask.
    std::int32_t owner = -1;   ///< Directory owner, or -1.
    bool inLlc = false;        ///< Directory's LLC-residency bit.
    bool dirty = false;
    bool homeSliceHolds = false; ///< Home LLC array actually has the line.
    NodeId homeNode = 0;
    TileId homeTile = 0;
    std::vector<TileLineView> tiles; ///< Indexed by GlobalTileId.
};

/**
 * Deliberate protocol bugs for harness self-tests: each mutation breaks
 * one directory transition on one specific line so the correctness
 * tooling (online checker, litmus suite) can prove it would catch a real
 * bug. kNone (the default) leaves every path untouched.
 */
enum class TestMutation : std::uint8_t
{
    kNone,
    /**
     * The first sharer invalidation on the armed line is "lost": the
     * directory believes the copy is gone but the tile keeps serving a
     * stale image of the line (classic dropped-invalidation bug).
     */
    kLostInvalidation,
    /** A store miss forgets to record the new owner in the directory. */
    kDropOwnerUpdate,
};

/** A non-cacheable device mapped into the address space at some tile. */
class NcDevice
{
  public:
    virtual ~NcDevice() = default;

    /**
     * Handles a non-cacheable load.
     * @param offset Byte offset within the device window.
     * @param bytes Access width.
     * @param now Arrival time at the device.
     * @param service Out-parameter: device service latency in cycles.
     * @return The loaded value.
     */
    virtual std::uint64_t ncLoad(Addr offset, std::uint32_t bytes, Cycles now,
                                 Cycles &service) = 0;

    /** Handles a non-cacheable store (see ncLoad for parameters). */
    virtual void ncStore(Addr offset, std::uint32_t bytes,
                         std::uint64_t value, Cycles now, Cycles &service) = 0;
};

/**
 * The coherent multi-node memory system.
 *
 * Tiles are addressed by GlobalTileId = node * tilesPerNode + tile. The
 * class is deliberately single-threaded: callers (the guest-OS thread
 * scheduler, the RISC-V cores) serialize accesses in virtual-time order.
 */
class CoherentSystem
{
  public:
    /** Private-cache line states (CacheArray aux words; also in LineView). */
    static constexpr std::uint32_t kLineShared = 1;
    static constexpr std::uint32_t kLineModified = 2;

    CoherentSystem(const Geometry &geo, const TimingParams &timing,
                   HomingPolicy homing, sim::StatRegistry *stats = nullptr);

    /** Performs the timing/state walk for one access. */
    AccessResult access(GlobalTileId gid, Addr addr, AccessType type,
                        std::uint32_t bytes, Cycles now);

    /**
     * Decode-cache fast path for instruction fetches: when @p addr hits
     * @p gid's L1I, replays exactly the side effects the full access()
     * walk would have on that hit — the L1I LRU touch and the
     * "cs.l1.hits" increment — and returns true with @p lat set to the
     * L1 hit latency. Returns false (having mutated nothing; a missing
     * lookup() leaves the LRU untouched) when the fetch must take the
     * full walk: L1I miss, or any test mutation armed (the stale-data
     * plumbing lives on the slow path). An L1I hit implies the line is
     * neither a device window nor CDR-remote — those never fill the L1I
     * — so the skipped prefix of access() is provably side-effect-free.
     */
    bool fetchFastHit(GlobalTileId gid, Addr addr, Cycles &lat);

    /**
     * Data fast path for scalar loads: when @p addr hits @p gid's L1D,
     * replays exactly the side effects the full access() walk would
     * have on that hit — the L1D LRU touch and the "cs.l1.hits"
     * increment — and returns true with @p lat set to the L1 hit
     * latency. Returns false (having mutated nothing) when the load
     * must take the full walk: L1D miss, any test mutation armed (the
     * stale-data plumbing lives on the slow path), or a coherence
     * observer attached (observers contract to see every full
     * transition). An L1D hit implies the line is neither a device
     * window nor NC nor CDR-remote — none of those ever fill the L1D —
     * so the skipped prefix of access() is provably side-effect-free.
     */
    bool loadFastHit(GlobalTileId gid, Addr addr, Cycles &lat);

    /**
     * Data fast path for scalar stores: when @p gid's BPC already owns
     * @p addr's line in M, replays exactly the side effects the full
     * access() walk would have on that store hit — the BPC (and, when
     * resident, L1D) LRU touches and the "cs.l1.storeHits" increment —
     * and returns true with @p lat set to the L1 hit latency. Returns
     * false (having mutated nothing) on any other line state, an armed
     * test mutation, or an attached observer; the caller then runs the
     * full access(). M ownership implies exclusivity, so no recall,
     * directory or tracer activity is skipped.
     */
    bool storeFastHit(GlobalTileId gid, Addr addr, Cycles &lat);

    /** Functional backing store (data plane). */
    mem::MainMemory &memory() { return memory_; }
    const mem::MainMemory &memory() const { return memory_; }

    /**
     * Maps @p dev at [base, base+size) attached to @p gid's position for
     * path-latency purposes. Cacheable accesses to the window are treated
     * as non-cacheable, as BYOC does for device space.
     */
    void addDevice(Addr base, std::uint64_t size, GlobalTileId gid,
                   NcDevice *dev);

    /** Node whose DRAM channel backs @p addr. */
    NodeId addrNode(Addr addr) const;

    /** Home (node, tile) of @p addr's line under the active policy. */
    std::pair<NodeId, TileId> homeOf(Addr addr) const;

    const Geometry &geometry() const { return geo_; }
    const TimingParams &timing() const { return timing_; }
    HomingPolicy homing() const { return homing_; }

    /** Drops all cached state (directory, arrays); keeps data. */
    void flushCaches();

    /**
     * Drops one tile's private (L1 + BPC) contents, updating the directory;
     * dirty lines are written back to their home LLC. Used by latency
     * probes that need repeatable cold private caches.
     */
    void flushPrivate(GlobalTileId gid);

    /**
     * Installs (or clears, with nullptr) the transition observer. The
     * observer is invoked synchronously from the miss path and from
     * flushPrivate(), inside the shared-state critical section.
     */
    void setObserver(CoherenceObserver *observer) { observer_ = observer; }

    /**
     * Attaches the platform tracer (null to detach). The system fires
     * kCacheMiss/kCacheAtomic events on the miss path and kNocPath events
     * for every transaction-level NoC traversal; each trace point costs
     * one null test when its component is disabled.
     */
    void setTracer(obs::Tracer *tracer);

    /** Cross-cutting snapshot of @p addr's line for invariant checks. */
    LineView inspectLine(Addr addr) const;

    /**
     * Invokes @p fn once per line known to any structure — directory
     * entries, LLC slices and private arrays (full-system sweeps).
     */
    void forEachKnownLine(const std::function<void(Addr)> &fn) const;

    /**
     * Arms a deliberate protocol bug on @p line (test-only; see
     * TestMutation). kNone disarms. Armed mutations relax the internal
     * eviction-path panics for the broken line — reporting the damage is
     * the invariant checker's job.
     */
    void setTestMutation(TestMutation mutation, Addr line);

    /** True when a lost invalidation left a tile with a stale copy. */
    bool staleCopyActive() const { return staleFired_; }

    /** Invariant: every L1 line is also in its BPC. */
    bool checkInclusion() const;

    /**
     * Invariant: the directory is precise — for every tile, the set of
     * lines resident in its BPC equals the set of lines whose directory
     * entry names the tile as sharer or owner, and owned lines have no
     * other sharers.
     */
    bool checkDirectory() const;

    /** Per-system stats live under the "cs." prefix in the registry. */
    sim::StatRegistry &stats() { return *stats_; }

    /**
     * Enables (or disables) parallel-phase locking. When on, the paths
     * that touch state shared between nodes — device windows, NC memory
     * operations and the whole miss path (directory, LLC/DRAM servers,
     * bridge shapers) — serialize on one recursive mutex, while L1/BPC
     * hits take only their own tile's lock (the phased engine confines
     * a tile's accesses to one worker, but a *peer's* miss path recalls
     * lines from this tile's arrays mid-quantum, so hits cannot go
     * entirely lock-free — see tileGuard()). Off by default: the
     * sequential engine pays one branch per access.
     */
    void setParallel(bool on) { parallel_ = on; }

    /**
     * The shared-state lock as an RAII guard (empty when parallel mode is
     * off). Exposed so platform code touching devices outside access() —
     * e.g. ecall console I/O — can join the same critical section. The
     * mutex is recursive: device handlers may re-enter (UART IRQ ->
     * PLIC -> packetizer) while the device path holds it.
     */
    std::unique_lock<std::recursive_mutex>
    parallelGuard()
    {
        return parallel_ ? std::unique_lock(mu_)
                         : std::unique_lock<std::recursive_mutex>();
    }

    /**
     * Per-tile private-array lock as an RAII guard (empty when parallel
     * mode is off). A tile's hit paths — the in-line L1/BPC hit cases of
     * access() and the fetch/load/store fast paths — hold their own
     * tile's guard; a miss path mutating a *different* tile's arrays
     * (recall invalidations, owner downgrades) holds that tile's guard.
     * Without it, a peer's recall races the owner's concurrent lookup on
     * the same CacheArray bytes — a real data race that made phased
     * cross-node-sharing runs nondeterministic. Lock order is strictly
     * mu_ -> tile (hit paths never take mu_; miss paths take tile guards
     * one at a time under mu_), so no cycle is possible.
     */
    std::unique_lock<std::mutex>
    tileGuard(GlobalTileId gid)
    {
        return parallel_ ? std::unique_lock(tileMu_[gid])
                         : std::unique_lock<std::mutex>();
    }

    /** Total DRAM-channel queueing observed (for congestion tests). */
    Cycles dramQueuedCycles(NodeId node) const
    {
        return dramServer_.at(node).queuedCycles();
    }

    /**
     * Serializes the directory, every cache array and the shared-resource
     * servers/shapers. The functional memory image is a separate
     * checkpoint section (MainMemory::saveState); test-mutation state is
     * transient harness plumbing and is not captured.
     */
    void saveState(snap::Writer &w) const;
    /** Restores into an identically configured system. */
    void restoreState(snap::Reader &r);

  private:
    // Short aliases for the public line states. LLC aux word bit 0 = dirty.
    static constexpr std::uint32_t kShared = kLineShared;
    static constexpr std::uint32_t kModified = kLineModified;

    struct DirEntry
    {
        std::uint64_t sharers = 0; ///< Bit per global tile (S copies).
        std::int32_t owner = -1;   ///< Global tile holding M, or -1.
        bool inLlc = false;        ///< Data resident in the home slice.
        bool dirty = false;        ///< LLC copy newer than DRAM.
    };

    struct DeviceWindow
    {
        Addr base;
        std::uint64_t size;
        GlobalTileId gid;
        NcDevice *dev;
    };

    GlobalTileId gidOf(NodeId node, TileId tile) const
    {
        return node * geo_.tilesPerNode + tile;
    }
    NodeId nodeOf(GlobalTileId gid) const { return gid / geo_.tilesPerNode; }
    TileId tileOf(GlobalTileId gid) const { return gid % geo_.tilesPerNode; }

    /**
     * Advances a message from (sn,st) to (dn,dt) starting at absolute time
     * @p t, consuming bandwidth on shared links.
     * @return Arrival time at the destination.
     */
    Cycles nocPath(NodeId sn, TileId st, NodeId dn, TileId dt,
                   std::uint32_t bytes, Cycles t, bool *crossed = nullptr);

    /** Emits a kNocPath trace event covering [start, end). */
    void traceNocPath(NodeId sn, TileId st, NodeId dn, TileId dt,
                      std::uint32_t bytes, Cycles start, Cycles end,
                      bool crossed);

    /** DRAM access at @p node arriving at @p t; returns completion time. */
    Cycles dramAccess(NodeId node, std::uint32_t bytes, Cycles t);

    /** Ensures the line is resident in its home LLC slice (fills on miss).
     *  Returns completion time; sets @p from_dram. */
    Cycles llcEnsureResident(Addr line, NodeId hn, TileId ht, Cycles t,
                             bool &from_dram);

    /** Recalls every private copy of @p line (invalidation fan-out).
     *  Returns the time the last ack reaches the home. */
    Cycles recallPrivate(Addr line, NodeId hn, TileId ht, Cycles t,
                         bool keep_data_in_llc);

    /** Like recallPrivate() but leaves @p except's copy untouched. */
    Cycles recallPrivateExcept(Addr line, NodeId hn, TileId ht, Cycles t,
                               GlobalTileId except);

    /** Drops @p line from one tile's private hierarchy; updates directory. */
    void dropPrivate(Addr line, GlobalTileId gid);

    /**
     * Test-mutation path: "loses" @p gid's invalidation of @p line — the
     * directory forgets the copy but the tile's arrays keep it, and the
     * pre-store line image is frozen as the tile's stale view.
     */
    void loseInvalidation(Addr line, GlobalTileId gid);

    /** True when the mutated recall of @p line must be skipped. */
    bool shouldLoseInvalidation(Addr line) const
    {
        return mutation_ == TestMutation::kLostInvalidation &&
               line == mutationLine_ && !staleFired_;
    }

    /** Ends the stale-copy episode when the victim tile drops/refills. */
    void maybeClearStale(Addr line, GlobalTileId gid)
    {
        if (staleFired_ && gid == staleVictim_ && line == mutationLine_)
            staleFired_ = false;
    }

    /** Stale line image for @p gid's load of @p line, or nullptr. */
    const std::uint8_t *stalePeek(GlobalTileId gid, Addr line,
                                  AccessType type) const
    {
        if (staleFired_ && gid == staleVictim_ && line == mutationLine_ &&
            type == AccessType::kLoad)
            return staleBytes_.data();
        return nullptr;
    }

    /** Notifies the observer, if any. */
    void notify(CoherenceEventKind kind, Addr line, GlobalTileId gid,
                Cycles now)
    {
        if (observer_)
            observer_->onEvent(CoherenceEvent{kind, line, gid, now});
    }

    /** Inserts into a private hierarchy, handling victim writebacks. */
    void privateFill(Addr line, GlobalTileId gid, std::uint32_t state,
                     bool fill_l1i, Cycles t);

    AccessResult deviceAccess(const DeviceWindow &w, GlobalTileId gid,
                              Addr addr, AccessType type, std::uint32_t bytes,
                              Cycles now);

    DirEntry &dirEntry(Addr line) { return directory_[line]; }

    Geometry geo_;
    TimingParams timing_;
    HomingPolicy homing_;
    noc::MeshTopology topo_;

    mem::MainMemory memory_;
    std::unordered_map<Addr, DirEntry> directory_;

    // Per-global-tile structures.
    std::vector<CacheArray> l1i_;
    std::vector<CacheArray> l1d_;
    std::vector<CacheArray> bpc_;
    std::vector<CacheArray> llc_;
    std::vector<sim::QueueServer> llcServer_;

    // Per-node structures.
    std::vector<sim::QueueServer> dramServer_;
    std::vector<sim::TrafficShaper> bridgeOut_;
    std::vector<sim::TrafficShaper> bridgeIn_;
    std::vector<sim::TrafficShaper> pcieOut_;

    std::vector<DeviceWindow> devices_;

    bool parallel_ = false;
    std::recursive_mutex mu_;
    /** One lock per tile's private arrays; see tileGuard(). */
    std::unique_ptr<std::mutex[]> tileMu_;

    /**
     * Cached "cs.l1.hits" counter for the serial-mode fast path (map
     * nodes are pointer-stable, and without Redirects counter() always
     * resolves to the same node). Under the phased engine lookups must
     * go through the registry every time to land in the acting node's
     * TLS shard, so the cache is bypassed while parallel_ is set.
     */
    sim::Counter *l1HitsSerial_ = nullptr;
    /** Cached "cs.l1.storeHits" counter; same rules as l1HitsSerial_. */
    sim::Counter *l1StoreHitsSerial_ = nullptr;

    CoherenceObserver *observer_ = nullptr;

    /** Cached handleFor() guards: null unless the component is traced. */
    obs::Tracer *traceCache_ = nullptr;
    obs::Tracer *traceNoc_ = nullptr;

    // Test-mutation state (inert while mutation_ == kNone).
    TestMutation mutation_ = TestMutation::kNone;
    Addr mutationLine_ = 0;
    bool staleFired_ = false;
    GlobalTileId staleVictim_ = 0;
    /** Rolling pre-next-store image of the armed line. */
    std::array<std::uint8_t, kCacheLineBytes> armedBytes_{};
    /** Frozen image the stale victim keeps seeing after the lost recall. */
    std::array<std::uint8_t, kCacheLineBytes> staleBytes_{};

    std::unique_ptr<sim::StatRegistry> ownedStats_;
    sim::StatRegistry *stats_;
};

} // namespace smappic::cache
